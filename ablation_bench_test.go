package synapse

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// per-sample barrier, sampling-rate versus replay fidelity, kernel chunk
// granularity, and profile-derived versus static I/O block sizes.

import (
	"context"
	"testing"
	"time"

	"synapse/internal/app"
	"synapse/internal/atoms"
	"synapse/internal/core"
	"synapse/internal/emulator"
	"synapse/internal/machine"
	"synapse/internal/proc"
	"synapse/internal/profile"
)

// ablationProfile profiles MDSim at the given rate on Thinkie.
func ablationProfile(b *testing.B, steps int, rate float64) *profile.Profile {
	b.Helper()
	p, err := core.ProfileWorkload(context.Background(), app.MDSim(steps), core.ProfileOptions{
		Machine:    machine.Thinkie,
		SampleRate: rate,
	})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func ablationEmulate(b *testing.B, p *profile.Profile, mod func(*core.EmulateOptions)) *emulator.Report {
	b.Helper()
	opts := core.EmulateOptions{Machine: machine.Thinkie}
	if mod != nil {
		mod(&opts)
	}
	rep, err := core.EmulateProfile(context.Background(), p, opts)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkAblationSamplingRate measures how the profiling rate feeds
// through to replay fidelity: the emulated Tx is nearly rate-independent for
// a blended workload (consumption totals are conserved at any rate), which
// is why the paper can profile at 0.1 Hz without losing emulation fidelity.
func BenchmarkAblationSamplingRate(b *testing.B) {
	var tx01, tx10 float64
	for i := 0; i < b.N; i++ {
		appTx := 0.0
		for _, rate := range []float64{0.1, 10} {
			p := ablationProfile(b, 500_000, rate)
			rep := ablationEmulate(b, p, nil)
			if rate == 0.1 {
				tx01 = rep.Tx.Seconds()
			} else {
				tx10 = rep.Tx.Seconds()
			}
			appTx = p.Duration.Seconds()
		}
		_ = appTx
	}
	b.ReportMetric(tx01/tx10, "tx_0.1Hz_over_10Hz")
}

// barrierProfile alternates compute-heavy, storage-heavy and mixed samples,
// the workload class where the per-sample barrier matters.
func barrierProfile() *profile.Profile {
	p := profile.New("barrier-ablation", nil)
	p.SampleRate = 1
	for i := 0; i < 12; i++ {
		v := map[string]float64{}
		switch i % 3 {
		case 0:
			v[profile.MetricCPUCycles] = 2.66e9
		case 1:
			v[profile.MetricIOWriteBytes] = 256 << 20
		default:
			v[profile.MetricCPUCycles] = 1.33e9
			v[profile.MetricIOWriteBytes] = 128 << 20
		}
		_ = p.Append(profile.Sample{T: time.Duration(i+1) * time.Second, Values: v})
	}
	p.Finalize(12 * time.Second)
	return p
}

// BenchmarkAblationBarrier quantifies the per-sample barrier (paper §4.4):
// emulated Tx sits strictly between the full-overlap lower bound (slowest
// resource's total busy time) and the fully-serialized upper bound (sum of
// all busy times). Removing the barrier would collapse to the lower bound
// and lose the captured cross-resource ordering.
func BenchmarkAblationBarrier(b *testing.B) {
	var barrier, overlap, serial float64
	for i := 0; i < b.N; i++ {
		rep := ablationEmulate(b, barrierProfile(), func(o *core.EmulateOptions) {
			o.StartupDelay = -1
			o.SampleOverhead = -1
		})
		barrier = rep.Tx.Seconds()
		var busies []time.Duration
		for _, atom := range []string{"compute", "storage", "memory", "network"} {
			busies = append(busies, rep.BusyTime(atom))
		}
		var max, sum time.Duration
		for _, d := range busies {
			if d > max {
				max = d
			}
			sum += d
		}
		overlap, serial = max.Seconds(), sum.Seconds()
		if barrier < overlap-1e-9 || barrier > serial+1e-9 {
			b.Fatalf("barrier Tx %v outside [overlap %v, serial %v]", barrier, overlap, serial)
		}
	}
	b.ReportMetric(barrier/overlap, "barrier_over_overlap")
	b.ReportMetric(barrier/serial, "barrier_over_serial")
}

// BenchmarkAblationChunkGranularity quantifies the kernel dispatch
// granularity's contribution to small-target cycle error (the decaying head
// of the paper's Fig 8 curves).
func BenchmarkAblationChunkGranularity(b *testing.B) {
	m := machine.MustGet(machine.Comet)
	kp, _ := m.Kernel(machine.KernelC)
	var smallErr, largeErr float64
	for i := 0; i < b.N; i++ {
		for _, target := range []float64{kp.Chunk() * 1.5, kp.Chunk() * 1000} {
			cfg := &atoms.Config{Machine: m, Kernel: machine.KernelC}
			a, err := atoms.NewSimCompute(cfg)
			if err != nil {
				b.Fatal(err)
			}
			res, err := a.Consume(context.Background(), atoms.Request{Cycles: target})
			if err != nil {
				b.Fatal(err)
			}
			errPct := (res.Consumed.Cycles/target - 1) * 100
			if target < kp.Chunk()*2 {
				smallErr = errPct
			} else {
				largeErr = errPct
			}
		}
	}
	b.ReportMetric(smallErr, "small_target_err_%")
	b.ReportMetric(largeErr, "large_target_err_%")
}

// BenchmarkAblationProfiledBlocks compares static 1 MB I/O emulation against
// the blktrace-inspired profile-derived granularity (paper §6 future work):
// for an I/O-bound workload that wrote 4 KB frames, the profiled-blocks
// replay is slower and truer to the application.
func BenchmarkAblationProfiledBlocks(b *testing.B) {
	var static, profiled float64
	for i := 0; i < b.N; i++ {
		// An I/O-bound profile: 64 MB written as 4 KB operations.
		p := profile.New("blocks-ablation", nil)
		p.SampleRate = 1
		_ = p.Append(profile.Sample{T: time.Second, Values: map[string]float64{
			profile.MetricIOWriteBytes: 64 << 20,
			profile.MetricIOWriteOps:   16384, // 4 KB each
		}})
		p.Finalize(time.Second)
		repS := ablationEmulate(b, p, func(o *core.EmulateOptions) {
			o.Machine = machine.Supermic // shared FS amplifies latency
			o.StartupDelay = -1
		})
		repP := ablationEmulate(b, p, func(o *core.EmulateOptions) {
			o.Machine = machine.Supermic
			o.UseProfiledBlocks = true
			o.StartupDelay = -1
		})
		static, profiled = repS.Tx.Seconds(), repP.Tx.Seconds()
	}
	b.ReportMetric(profiled/static, "profiled_over_static_tx")
}

// BenchmarkAblationStartupDelay isolates the modeled emulator startup
// against run length (the Fig 5 short-run effect).
func BenchmarkAblationStartupDelay(b *testing.B) {
	var short, long float64
	for i := 0; i < b.N; i++ {
		pShort := ablationProfile(b, 10_000, 10)
		pLong := ablationProfile(b, 1_000_000, 1)
		rs := ablationEmulate(b, pShort, nil)
		rl := ablationEmulate(b, pLong, nil)
		short = rs.Startup.Seconds() / rs.Tx.Seconds()
		long = rl.Startup.Seconds() / rl.Tx.Seconds()
	}
	b.ReportMetric(short*100, "startup_share_short_%")
	b.ReportMetric(long*100, "startup_share_long_%")
}

// BenchmarkSimulationThroughput reports how much simulated application time
// one wall second of simulation covers — the speedup that makes full-scale
// paper reproduction feasible on a laptop.
func BenchmarkSimulationThroughput(b *testing.B) {
	m := machine.MustGet(machine.Thinkie)
	w := app.MDSim(10_000_000)
	var simSeconds float64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		sp, err := proc.Execute(w, m, proc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		simSeconds += sp.Duration().Seconds()
	}
	wall := time.Since(start).Seconds()
	if wall > 0 {
		b.ReportMetric(simSeconds/wall, "sim_s_per_wall_s")
	}
}
