package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunProducesTrajectory(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "traj.dat")
	if err := run(500, "", out, 1, "openmp", true); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Error("trajectory file is empty")
	}
	if fi.Size()%frameBytes != 0 {
		t.Errorf("trajectory size %d is not a whole number of frames", fi.Size())
	}
}

func TestRunOutputScalesWithSteps(t *testing.T) {
	dir := t.TempDir()
	small := filepath.Join(dir, "s.dat")
	large := filepath.Join(dir, "l.dat")
	if err := run(500, "", small, 1, "openmp", true); err != nil {
		t.Fatal(err)
	}
	if err := run(5000, "", large, 1, "openmp", true); err != nil {
		t.Fatal(err)
	}
	fs, _ := os.Stat(small)
	fl, _ := os.Stat(large)
	if fl.Size() <= fs.Size() {
		t.Errorf("more steps should write more: %d vs %d", fl.Size(), fs.Size())
	}
}

func TestRunWithProvidedInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "input.dat")
	if err := os.WriteFile(in, make([]byte, 1024), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(100, in, filepath.Join(dir, "t.dat"), 1, "openmp", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingInputFails(t *testing.T) {
	if err := run(100, "/nonexistent/input.deck", filepath.Join(t.TempDir(), "t.dat"), 1, "openmp", true); err == nil {
		t.Error("missing input should fail")
	}
}

func TestRunParallelWorkers(t *testing.T) {
	if err := run(200, "", filepath.Join(t.TempDir(), "t.dat"), 2, "openmp", true); err != nil {
		t.Fatal(err)
	}
}
