// mdsim is a real, runnable synthetic molecular-dynamics application — the
// repository's stand-in for Gromacs (DESIGN.md §2). It actually burns CPU
// (Lennard-Jones force evaluations via internal/kernels), reads an input
// deck, writes trajectory frames, and holds a steady working set, with the
// same observable signature the paper relies on: -steps drives CPU and disk
// output, while input and memory stay constant.
//
// Usage:
//
//	mdsim -steps 50000 [-out traj.dat] [-in input.dat] [-workers 4 -mode openmp]
//
// Profile it for real with:
//
//	synapse profile -real -rate 10 -- mdsim -steps 50000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"synapse/internal/kernels"
	"synapse/internal/telemetry"
)

const (
	inputBytes   = 5 << 20 // fixed input deck size
	frameBytes   = 4096    // one trajectory frame
	stepsPerIter = 8       // MD steps advanced per kernel iteration
	framePeriod  = 100     // steps between trajectory frames
)

func main() {
	steps := flag.Int("steps", 10000, "number of MD iteration steps")
	input := flag.String("in", "", "input deck path (generated if absent)")
	output := flag.String("out", "", "trajectory output path (default mdsim-traj.dat)")
	workers := flag.Int("workers", 1, "parallel workers")
	mode := flag.String("mode", "openmp", "parallel mode: openmp (threads)")
	quiet := flag.Bool("q", false, "suppress progress output")
	version := flag.Bool("version", false, "print version and build information, then exit")
	flag.Parse()
	if *version {
		telemetry.PrintVersion(os.Stdout, "mdsim")
		return
	}

	if err := run(*steps, *input, *output, *workers, *mode, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "mdsim:", err)
		os.Exit(1)
	}
}

func run(steps int, input, output string, workers int, mode string, quiet bool) error {
	start := time.Now()

	// Startup: read the input deck (creating a deterministic one when no
	// path is given), like a topology + coordinates load.
	if input == "" {
		f, err := os.CreateTemp("", "mdsim-input-")
		if err != nil {
			return err
		}
		input = f.Name()
		defer os.Remove(input)
		buf := make([]byte, 1<<20)
		for i := range buf {
			buf[i] = byte(i * 31)
		}
		for w := 0; w < inputBytes/len(buf); w++ {
			if _, err := f.Write(buf); err != nil {
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	deck, err := os.ReadFile(input)
	if err != nil {
		return fmt.Errorf("read input: %w", err)
	}
	if output == "" {
		output = "mdsim-traj.dat"
	}
	traj, err := os.Create(output)
	if err != nil {
		return fmt.Errorf("create output: %w", err)
	}
	defer traj.Close()

	// The working set: particle system (constant size regardless of steps).
	k := kernels.NewLJ()
	_ = deck // the deck seeds nothing further; its read is the I/O signature

	frame := make([]byte, frameBytes)
	iters := steps / stepsPerIter
	if iters < 1 && steps > 0 {
		iters = 1
	}
	framesEvery := framePeriod / stepsPerIter
	if framesEvery < 1 {
		framesEvery = 1
	}

	var checksum float64
	for i := 0; i < iters; i++ {
		if workers > 1 && mode == "openmp" {
			if err := kernels.RunParallel("lj", workers, workers); err != nil {
				return err
			}
		} else {
			checksum += k.Run(1)
		}
		if i%framesEvery == 0 {
			for j := range frame {
				frame[j] = byte(int(checksum) + i + j)
			}
			if _, err := traj.Write(frame); err != nil {
				return fmt.Errorf("write frame: %w", err)
			}
		}
	}
	if err := traj.Sync(); err != nil {
		// Non-fatal on filesystems without fsync.
		_ = err
	}
	if !quiet {
		fmt.Printf("mdsim: %d steps in %.3fs (checksum %g)\n", steps, time.Since(start).Seconds(), checksum)
	}
	return nil
}
