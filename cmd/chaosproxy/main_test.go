package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestProxyRoundTrip boots the proxy exactly as main would, fronts a real
// HTTP server with a delay schedule, round-trips a request through it, and
// shuts down via SIGTERM.
func TestProxyRoundTrip(t *testing.T) {
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	}))
	defer upstream.Close()

	var out bytes.Buffer
	stdout = &out
	defer func() { stdout = nil }()

	ready := make(chan string, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	var runErr error
	go func() {
		defer wg.Done()
		runErr = run([]string{
			"-target", upstream.Listener.Addr().String(),
			"-schedule", "delay:10ms",
		}, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("proxy did not come up")
	}

	start := time.Now()
	resp, err := http.Get("http://" + addr + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Errorf("proxied body = %q, want pong", body)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("delay rule not applied: round trip took %v", d)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if runErr != nil {
		t.Fatalf("run returned %v", runErr)
	}
	if !bytes.Contains(out.Bytes(), []byte("delayed=1")) {
		t.Errorf("shutdown stats missing delay count: %q", out.String())
	}
}

// TestFlagsValidated: target and schedule are required, and the schedule
// script must parse.
func TestFlagsValidated(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-target", "127.0.0.1:1"},
		{"-target", "127.0.0.1:1", "-schedule", "warp:9"},
	} {
		if err := run(args, nil); err == nil {
			t.Errorf("run(%v) accepted, want error", args)
		}
	}
}
