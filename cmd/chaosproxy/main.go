// chaosproxy is the internal/chaos fault injector as a standalone daemon:
// a TCP proxy that degrades connections to one upstream on a scripted,
// deterministic schedule. It exists for integration harnesses (CI's
// dist-smoke job fronts one synapse-worker with it to manufacture a
// straggler) — unit tests should use chaos.Start in-process instead.
//
//	chaosproxy -target 127.0.0.1:9191 -schedule delay:2s
//	chaosproxy -listen 127.0.0.1:9400 -target 127.0.0.1:9191 -schedule 'ok;reset:200@GET'
//
// The schedule script is chaos.ParseSchedule syntax: rules separated by
// ';', connection i takes rule i mod len(rules). The bound address is
// printed to stdout once listening ("listening on host:port"), so callers
// using -listen :0 can scrape the port. On SIGINT/SIGTERM the proxy stops
// accepting, severs every live connection, and exits; fault counters are
// printed on the way out.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"synapse/internal/chaos"
)

// stdout is the daemon's output stream, replaceable in tests.
var stdout io.Writer = os.Stdout

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "chaosproxy:", err)
		os.Exit(1)
	}
}

// run starts the proxy and blocks until a signal (or, in tests, until the
// ready channel's consumer shuts it down). ready, when non-nil, receives
// the bound address once the proxy is listening.
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("chaosproxy", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "listen address")
	target := fs.String("target", "", "upstream host:port to proxy to (required)")
	schedule := fs.String("schedule", "", "fault schedule script, e.g. 'delay:2s' or 'ok;reset:200@GET' (required)")
	seed := fs.Uint64("seed", 0, "jitter seed for delay rules (0 = no jitter)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *target == "" {
		return fmt.Errorf("-target is required")
	}
	if *schedule == "" {
		return fmt.Errorf("-schedule is required")
	}
	sched, err := chaos.ParseSchedule(*schedule)
	if err != nil {
		return err
	}
	sched.Seed = *seed

	p, err := chaos.StartOn(*listen, *target, sched)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "listening on %s -> %s schedule %s\n", p.Addr(), *target, sched)
	if ready != nil {
		ready <- p.Addr()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	err = p.Close()
	st := p.Stats()
	fmt.Fprintf(stdout, "closed: conns=%d passed=%d delayed=%d resets=%d truncated=%d holes=%d\n",
		st.Conns, st.Passed, st.Delayed, st.Resets, st.Truncated, st.Holes)
	return err
}
