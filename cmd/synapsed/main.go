// synapsed is the Synapse profile-store daemon: it serves a profile store
// over HTTP so many profiling and emulation hosts share one database — the
// paper's shared MongoDB service (§4), "profile once, emulate anywhere".
//
//	synapsed -addr :8181 -backend sharded -shards 16
//	synapsed -addr :8181 -backend file -dir /var/lib/synapse
//	synapsed -addr 127.0.0.1:8181 -pprof      # mounts /debug/pprof/
//	synapsed -max-inflight 256 -queue 64 -request-timeout 5s
//	synapsed -read-only                       # degraded: shed writes
//	synapsed -log-format json -log-level debug
//
// Clients connect with synapse.NewRemoteStore("http://host:8181") or any
// CLI -store flag given as an http:// URL. Overload protection (bounded
// in-flight requests, admission queue, 429 shedding with Retry-After) is
// configured with -max-inflight/-queue/-request-timeout; /v1/healthz
// reports the shed and in-flight counters plus build identity, and
// GET /v1/metrics renders the daemon's instruments in Prometheus text
// exposition (see docs/observability.md). Logs are structured (log/slog):
// -log-format picks text or json, -log-level sets the floor (per-request
// lines log at debug). The daemon sheds new requests and drains in-flight
// ones on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"synapse/internal/store"
	"synapse/internal/storesrv"
	"synapse/internal/telemetry"
)

// stdout is the daemon's log stream, replaceable in tests.
var stdout io.Writer = os.Stdout

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "synapsed:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a signal (or, in tests, until the
// ready channel's consumer shuts it down via the returned server). ready,
// when non-nil, receives the bound address once the server is listening.
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("synapsed", flag.ExitOnError)
	addr := fs.String("addr", ":8181", "listen address")
	backendName := fs.String("backend", "sharded", "storage backend: mem, file, sharded")
	dir := fs.String("dir", "synapse-store", "profile directory (backend=file)")
	shards := fs.Int("shards", store.DefaultShards, "lock stripes (backend=sharded)")
	pprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	grace := fs.Duration("grace", 10*time.Second, "graceful shutdown drain timeout")
	maxInflight := fs.Int("max-inflight", 0, "max concurrently-executing requests (0 = unbounded)")
	queue := fs.Int("queue", 0, "admission queue depth for reads at capacity (0 = shed)")
	readOnly := fs.Bool("read-only", false, "degraded mode: shed writes, serve reads")
	requestTimeout := fs.Duration("request-timeout", 0, "server-side per-request deadline (0 = none)")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	logLevel := fs.String("log-level", "info", "log level floor: debug, info, warn, error (request lines log at debug)")
	version := fs.Bool("version", false, "print version and build information, then exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		telemetry.PrintVersion(stdout, "synapsed")
		return nil
	}
	logger, err := telemetry.NewLogger(stdout, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	if *maxInflight < 0 || *queue < 0 {
		return fmt.Errorf("-max-inflight and -queue must be >= 0")
	}
	if *queue > 0 && *maxInflight == 0 {
		return fmt.Errorf("-queue requires -max-inflight > 0")
	}

	var backend store.Store
	switch *backendName {
	case "mem":
		backend = store.NewMem()
	case "sharded":
		backend = store.NewSharded(*shards)
	case "file":
		f, err := store.NewFile(*dir)
		if err != nil {
			return err
		}
		backend = f
	default:
		return fmt.Errorf("unknown backend %q (want mem, file, or sharded)", *backendName)
	}

	srv := storesrv.New(backend, storesrv.Config{
		Pprof:          *pprof,
		MaxInFlight:    *maxInflight,
		Queue:          *queue,
		RequestTimeout: *requestTimeout,
		ReadOnly:       *readOnly,
		Metrics:        telemetry.NewRegistry(),
		Logger:         logger,
	})
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	logger.Info("serving",
		slog.String("backend", *backendName),
		slog.String("addr", "http://"+bound.String()),
		slog.Bool("read_only", *readOnly),
		slog.String("version", telemetry.BuildInfo().String()))
	if ready != nil {
		ready <- bound.String()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	logger.Info("draining", slog.String("signal", s.String()), slog.Duration("grace", *grace))
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	return srv.Shutdown(ctx)
}
