package main

import (
	"bytes"
	"net/http"
	"sync"
	"syscall"
	"testing"
	"time"

	"synapse/internal/store/storetest"
	"synapse/internal/storeclnt"
)

// TestDaemonRoundTrip boots the daemon exactly as main would, stores a
// profile through one Remote client, reads it back through another (a second
// "process" in the paper's profile-once-emulate-anywhere workflow), and
// shuts down via SIGTERM.
func TestDaemonRoundTrip(t *testing.T) {
	var out bytes.Buffer
	stdout = &out
	defer func() { stdout = nil }()

	ready := make(chan string, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	var runErr error
	go func() {
		defer wg.Done()
		runErr = run([]string{"-addr", "127.0.0.1:0", "-backend", "sharded", "-shards", "4"}, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not come up")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	writer := storeclnt.New(base)
	p := storetest.MkProfile("mdsim", map[string]string{"steps": "500"}, 3)
	if err := writer.Put(p); err != nil {
		t.Fatal(err)
	}
	writer.Close()

	reader := storeclnt.New(base)
	set, err := reader.Find("mdsim", map[string]string{"steps": "500"})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || set[0].ID != p.ID {
		t.Errorf("cross-client read wrong: %d profiles", len(set))
	}
	reader.Close()

	// SIGTERM drains and exits run.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if runErr != nil {
		t.Fatalf("run returned %v", runErr)
	}
	if !bytes.Contains(out.Bytes(), []byte("serving backend=sharded")) {
		t.Errorf("startup log missing: %q", out.String())
	}
}

func TestUnknownBackend(t *testing.T) {
	if err := run([]string{"-backend", "mongo"}, nil); err == nil {
		t.Fatal("unknown backend should error")
	}
}
