package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"syscall"
	"testing"
	"time"

	"synapse/internal/store/storetest"
	"synapse/internal/storeclnt"
	"synapse/internal/storesrv"
)

// TestDaemonRoundTrip boots the daemon exactly as main would, stores a
// profile through one Remote client, reads it back through another (a second
// "process" in the paper's profile-once-emulate-anywhere workflow), and
// shuts down via SIGTERM.
func TestDaemonRoundTrip(t *testing.T) {
	var out bytes.Buffer
	stdout = &out
	defer func() { stdout = nil }()

	ready := make(chan string, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	var runErr error
	go func() {
		defer wg.Done()
		runErr = run([]string{"-addr", "127.0.0.1:0", "-backend", "sharded", "-shards", "4"}, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not come up")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	writer := storeclnt.New(base)
	p := storetest.MkProfile("mdsim", map[string]string{"steps": "500"}, 3)
	if err := writer.Put(p); err != nil {
		t.Fatal(err)
	}
	writer.Close()

	reader := storeclnt.New(base)
	set, err := reader.Find("mdsim", map[string]string{"steps": "500"})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || set[0].ID != p.ID {
		t.Errorf("cross-client read wrong: %d profiles", len(set))
	}
	reader.Close()

	// SIGTERM drains and exits run.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if runErr != nil {
		t.Fatalf("run returned %v", runErr)
	}
	if !bytes.Contains(out.Bytes(), []byte("serving backend=sharded")) {
		t.Errorf("startup log missing: %q", out.String())
	}
}

func TestUnknownBackend(t *testing.T) {
	if err := run([]string{"-backend", "mongo"}, nil); err == nil {
		t.Fatal("unknown backend should error")
	}
}

// TestOverloadFlagsValidated: -queue depends on -max-inflight, and neither
// accepts negatives.
func TestOverloadFlagsValidated(t *testing.T) {
	for _, args := range [][]string{
		{"-queue", "8"}, // queue without a bound to queue against
		{"-max-inflight", "-1"},
		{"-max-inflight", "4", "-queue", "-2"},
	} {
		if err := run(args, nil); err == nil {
			t.Errorf("run(%v) accepted, want error", args)
		}
	}
}

// TestOverloadFlagsWired boots the daemon with the overload-protection
// flags and verifies they reach the server: healthz reports the limits and
// read-only status, and a write is shed with 503 while a read works.
func TestOverloadFlagsWired(t *testing.T) {
	var out bytes.Buffer
	stdout = &out
	defer func() { stdout = nil }()

	ready := make(chan string, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	var runErr error
	go func() {
		defer wg.Done()
		runErr = run([]string{
			"-addr", "127.0.0.1:0", "-backend", "mem",
			"-max-inflight", "7", "-queue", "3",
			"-read-only", "-request-timeout", "2s",
		}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not come up")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr storesrv.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hr.Status != "read_only" {
		t.Errorf("healthz status = %q, want read_only", hr.Status)
	}
	if hr.MaxInFlight != 7 || hr.Queue != 3 {
		t.Errorf("healthz limits = max %d queue %d, want 7/3", hr.MaxInFlight, hr.Queue)
	}

	// Writes shed in read-only mode; reads pass.
	c := storeclnt.New(base, storeclnt.WithRetries(0))
	if err := c.Put(storetest.MkProfile("denied", nil, 2)); err == nil {
		t.Error("write to a read-only daemon succeeded")
	}
	if _, err := c.Keys(); err != nil {
		t.Errorf("read against a read-only daemon failed: %v", err)
	}
	c.Close()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if runErr != nil {
		t.Fatalf("run returned %v", runErr)
	}
	if !bytes.Contains(out.Bytes(), []byte("read_only=true")) {
		t.Errorf("startup log missing read-only marker: %q", out.String())
	}
}

// TestLogFormatJSON: -log-format json emits structured JSON lines, and
// -log-level debug surfaces the per-request lines.
func TestLogFormatJSON(t *testing.T) {
	var out bytes.Buffer
	stdout = &out
	defer func() { stdout = nil }()

	ready := make(chan string, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = run([]string{"-addr", "127.0.0.1:0", "-backend", "mem",
			"-log-format", "json", "-log-level", "debug"}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not come up")
	}
	resp, err := http.Get("http://" + addr + "/v1/keys")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	var sawServing, sawRequest bool
	for _, line := range bytes.Split(bytes.TrimSpace(out.Bytes()), []byte("\n")) {
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("log line not JSON: %v: %s", err, line)
		}
		switch rec["msg"] {
		case "serving":
			sawServing = true
		case "request":
			if rec["route"] == "/v1/keys" && rec["method"] == "GET" {
				sawRequest = true
			}
		}
	}
	if !sawServing || !sawRequest {
		t.Errorf("json log missing serving/request lines (serving=%v request=%v):\n%s",
			sawServing, sawRequest, out.String())
	}
}

func TestBadLogFlags(t *testing.T) {
	if err := run([]string{"-log-format", "xml"}, nil); err == nil {
		t.Error("bad -log-format accepted")
	}
	if err := run([]string{"-log-level", "verbose"}, nil); err == nil {
		t.Error("bad -log-level accepted")
	}
}

func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	stdout = &out
	defer func() { stdout = nil }()
	if err := run([]string{"-version"}, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte("synapsed")) || !bytes.Contains(out.Bytes(), []byte("go1.")) {
		t.Errorf("version output incomplete: %q", out.String())
	}
}
