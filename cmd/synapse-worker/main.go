// synapse-worker is the Synapse fleet worker daemon: it serves the
// distributed scenario-execution protocol (internal/dist), compiling specs
// a coordinator ships to it and executing shards of replay jobs on the
// batched emulation engine.
//
//	synapse-worker -addr :9191
//	synapse-worker -addr :9191 -workers 8 -max-inflight 16 -queue 8
//	synapse-worker -addr 127.0.0.1:9191 -pprof
//	synapse-worker -log-format json -log-level debug
//
// A synapse-sim run points at a fleet with -workers-remote
// host:9191,host2:9191. Workers need no profile store: the coordinator
// resolves profiles and ships them inline with the spec, so a worker
// deployment is one static binary and one port. Outcomes are pure
// functions of the compiled (spec, profiles) — any worker can serve any
// chunk of any shard, any number of times (the coordinator speculatively
// re-executes straggler chunks), and the coordinator's merged report is
// byte-identical to a single-process run. Streaming execute requests get
// chunked NDJSON responses, -stream-batch outcomes per line. /v1/healthz reports liveness plus the admission
// counters, GET /v1/metrics renders Prometheus text exposition (RED
// middleware plus worker series), and the daemon sheds new shards and
// drains in-flight ones on SIGINT/SIGTERM. See docs/distributed.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"synapse/internal/dist"
	"synapse/internal/telemetry"
)

// stdout is the daemon's log stream, replaceable in tests.
var stdout io.Writer = os.Stdout

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "synapse-worker:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a signal (or, in tests, until the
// ready channel's consumer shuts it down). ready, when non-nil, receives
// the bound address once the server is listening.
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("synapse-worker", flag.ExitOnError)
	addr := fs.String("addr", ":9191", "listen address")
	workers := fs.Int("workers", 0, "parallel emulation workers per shard (0 = all cores)")
	maxSessions := fs.Int("max-sessions", 4, "compile sessions held before evicting the oldest")
	maxInflight := fs.Int("max-inflight", 0, "max concurrently-executing requests (0 = unbounded)")
	queue := fs.Int("queue", 0, "admission queue depth at capacity (0 = shed)")
	requestTimeout := fs.Duration("request-timeout", 0, "server-side per-request deadline (0 = none)")
	streamBatch := fs.Int("stream-batch", 0, "outcomes per NDJSON line on streaming execute responses (0 = 64)")
	pprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	grace := fs.Duration("grace", 10*time.Second, "graceful shutdown drain timeout")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	logLevel := fs.String("log-level", "info", "log level floor: debug, info, warn, error (request lines log at debug)")
	version := fs.Bool("version", false, "print version and build information, then exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		telemetry.PrintVersion(stdout, "synapse-worker")
		return nil
	}
	logger, err := telemetry.NewLogger(stdout, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	if *maxInflight < 0 || *queue < 0 {
		return fmt.Errorf("-max-inflight and -queue must be >= 0")
	}
	if *queue > 0 && *maxInflight == 0 {
		return fmt.Errorf("-queue requires -max-inflight > 0")
	}

	srv := dist.NewServer(dist.ServerConfig{
		Workers:        *workers,
		MaxSessions:    *maxSessions,
		MaxInFlight:    *maxInflight,
		Queue:          *queue,
		RequestTimeout: *requestTimeout,
		StreamBatch:    *streamBatch,
		Pprof:          *pprof,
		Metrics:        telemetry.NewRegistry(),
		Logger:         logger,
	})
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	logger.Info("serving",
		slog.String("addr", "http://"+bound.String()),
		slog.Int("workers", *workers),
		slog.String("version", telemetry.BuildInfo().String()))
	if ready != nil {
		ready <- bound.String()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	logger.Info("draining", slog.String("signal", s.String()), slog.Duration("grace", *grace))
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	return srv.Shutdown(ctx)
}
