package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"synapse/internal/core"
	"synapse/internal/scenario"
	"synapse/internal/store"
	"synapse/internal/telemetry"
)

// setup profiles two commands into a file store and writes a two-workload
// scenario spec, returning the store directory and the spec path.
func setup(t *testing.T) (storeDir, specPath string) {
	t.Helper()
	dir := t.TempDir()
	storeDir = filepath.Join(dir, "store")
	st, err := store.NewFile(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, cmd := range []string{"mdsim", "sleep"} {
		if _, err := core.ProfileCommandString(context.Background(), cmd, nil, core.ProfileOptions{
			Machine:    "thinkie",
			SampleRate: 1,
			Store:      st,
		}); err != nil {
			t.Fatal(err)
		}
	}
	specPath = filepath.Join(dir, "mix.json")
	spec := `{
		"version": 1,
		"name": "cli-mix",
		"seed": 7,
		"max_concurrent": 2,
		"workloads": [
			{
				"name": "md",
				"profile": {"command": "mdsim", "tags": {"steps": "10000"}},
				"arrival": {"process": "closed", "clients": 2, "iterations": 2},
				"emulation": {"machine": "stampede"}
			},
			{
				"name": "sleep",
				"profile": {"command": "sleep", "tags": {"seconds": "1"}},
				"arrival": {"process": "constant", "rate": 0.2, "count": 3},
				"emulation": {"machine": "comet", "load": 0.1, "load_jitter": 0.05}
			}
		]
	}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return storeDir, specPath
}

func TestSimRunsMixedScenario(t *testing.T) {
	storeDir, specPath := setup(t)
	outPath := filepath.Join(t.TempDir(), "report.json")

	var buf bytes.Buffer
	stdout = &buf
	defer func() { stdout = os.Stdout }()

	err := run([]string{"-scenario", specPath, "-store", storeDir, "-out", outPath})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `scenario "cli-mix"`) || !strings.Contains(out, "7 emulations") {
		t.Fatalf("summary missing headline: %q", out)
	}
	if !strings.Contains(out, "md") || !strings.Contains(out, "sleep") {
		t.Fatalf("summary missing workloads: %q", out)
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep scenario.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Emulations != 7 || len(rep.Workloads) != 2 {
		t.Fatalf("report = %d emulations / %d workloads, want 7/2", rep.Emulations, len(rep.Workloads))
	}

	// Determinism through the CLI: a second run writes a byte-identical
	// report.
	outPath2 := filepath.Join(t.TempDir(), "report2.json")
	if err := run([]string{"-scenario", specPath, "-store", storeDir, "-out", outPath2}); err != nil {
		t.Fatal(err)
	}
	data2, err := os.ReadFile(outPath2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("two CLI runs of the same spec+seed wrote different reports")
	}
}

// TestSimClusterFlag: -cluster attaches a machine pool to the mix and the
// summary and report grow the placement view; reports stay deterministic.
func TestSimClusterFlag(t *testing.T) {
	storeDir, _ := setup(t)
	dir := t.TempDir()

	// Cluster specs forbid per-workload machines (the node decides), so
	// the clustered mix leaves emulation.machine unset.
	specPath := filepath.Join(dir, "mix.json")
	spec := `{
		"version": 1,
		"name": "cluster-cli",
		"seed": 7,
		"workloads": [
			{
				"name": "md",
				"profile": {"command": "mdsim", "tags": {"steps": "10000"}},
				"arrival": {"process": "closed", "clients": 2, "iterations": 2},
				"resources": {"cores": 2}
			},
			{
				"name": "sleep",
				"profile": {"command": "sleep", "tags": {"seconds": "1"}},
				"arrival": {"process": "constant", "rate": 0.2, "count": 3},
				"emulation": {"load": 0.1, "load_jitter": 0.05}
			}
		]
	}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	clusterPath := filepath.Join(dir, "cluster.json")
	cspec := `{
		"policy": "least_loaded",
		"contention": 0.4,
		"nodes": [{"name": "n", "machine": "stampede", "count": 2, "cores": 4}]
	}`
	if err := os.WriteFile(clusterPath, []byte(cspec), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	stdout = &buf
	defer func() { stdout = os.Stdout }()

	outPath := filepath.Join(dir, "report.json")
	if err := run([]string{"-scenario", specPath, "-store", storeDir, "-cluster", clusterPath, "-out", outPath}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cluster policy least_loaded") || !strings.Contains(out, "n-0") {
		t.Fatalf("summary missing cluster view: %q", out)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep scenario.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Cluster == nil || len(rep.Cluster.Nodes) != 2 || rep.Cluster.Placements != rep.Emulations {
		t.Fatalf("report cluster block = %+v", rep.Cluster)
	}

	// Determinism holds with a cluster attached through the flag.
	buf.Reset()
	outPath2 := filepath.Join(dir, "report2.json")
	if err := run([]string{"-scenario", specPath, "-store", storeDir, "-cluster", clusterPath, "-out", outPath2}); err != nil {
		t.Fatal(err)
	}
	data2, err := os.ReadFile(outPath2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("two clustered CLI runs wrote different reports")
	}

	// Attaching a cluster to a spec that pins per-workload machines is a
	// validation error, not a silent override.
	_, pinnedSpec := setup(t)
	if err := run([]string{"-scenario", pinnedSpec, "-store", storeDir, "-cluster", clusterPath}); err == nil ||
		!strings.Contains(err.Error(), "conflicts with the cluster") {
		t.Fatalf("expected machine/cluster conflict error, got %v", err)
	}

	// A malformed cluster file fails loudly.
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte(`{"nodes": [], "polcy": "x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", specPath, "-store", storeDir, "-cluster", badPath}); err == nil {
		t.Fatal("bad cluster file accepted")
	}
}

// TestSimEventsAndTimeline: a node_down failover spec end-to-end through
// the CLI — kills surface in the summary and report, the -timeline CSV
// carries the bucketed series, and everything stays deterministic.
func TestSimEventsAndTimeline(t *testing.T) {
	storeDir, _ := setup(t)
	dir := t.TempDir()
	specPath := filepath.Join(dir, "failover.json")
	spec := `{
		"version": 1,
		"name": "failover-cli",
		"seed": 7,
		"cluster": {
			"contention": 0,
			"nodes": [
				{"name": "a", "machine": "stampede", "cores": 4},
				{"name": "b", "machine": "stampede", "cores": 4}
			]
		},
		"events": {
			"version": 1,
			"timeline": [
				{"at": "500ms", "kind": "node_down", "node": "a"}
			]
		},
		"workloads": [{
			"name": "md",
			"profile": {"command": "mdsim", "tags": {"steps": "10000"}},
			"arrival": {"process": "burst", "burst": 2, "every": "1s", "bursts": 1},
			"resources": {"cores": 2}
		}]
	}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	stdout = &buf
	defer func() { stdout = os.Stdout }()

	outPath := filepath.Join(dir, "report.json")
	csvPath := filepath.Join(dir, "series.csv")
	if err := run([]string{"-scenario", specPath, "-store", storeDir, "-out", outPath, "-timeline", csvPath}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "killed and retried") || !strings.Contains(out, "events applied") {
		t.Fatalf("summary missing failure view: %q", out)
	}
	if !strings.Contains(out, "timeline written to") {
		t.Fatalf("summary missing timeline note: %q", out)
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep scenario.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Killed == 0 || rep.Emulations != 2 {
		t.Fatalf("report killed/emulations = %d/%d, want >0/2", rep.Killed, rep.Emulations)
	}
	if rep.Timeline == nil || len(rep.Timeline.Buckets) == 0 {
		t.Fatal("report has no timeline despite -timeline")
	}

	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if len(lines) != len(rep.Timeline.Buckets)+1 {
		t.Fatalf("csv rows = %d, want %d buckets + header", len(lines), len(rep.Timeline.Buckets))
	}
	for _, col := range []string{"start_s", "kills", "occ:a", "occ:b"} {
		if !strings.Contains(lines[0], col) {
			t.Fatalf("csv header %q missing %q", lines[0], col)
		}
	}

	// Determinism: a second run writes byte-identical report and CSV.
	outPath2 := filepath.Join(dir, "report2.json")
	csvPath2 := filepath.Join(dir, "series2.csv")
	if err := run([]string{"-scenario", specPath, "-store", storeDir, "-out", outPath2, "-timeline", csvPath2}); err != nil {
		t.Fatal(err)
	}
	data2, _ := os.ReadFile(outPath2)
	csv2, _ := os.ReadFile(csvPath2)
	if !bytes.Equal(data, data2) || !bytes.Equal(csv, csv2) {
		t.Fatal("two failover CLI runs diverged")
	}
}

// TestSimEventValidationNamesIndex: a malformed events block is rejected
// with the offending event's index in the error.
func TestSimEventValidationNamesIndex(t *testing.T) {
	storeDir, _ := setup(t)
	dir := t.TempDir()
	specPath := filepath.Join(dir, "bad-events.json")
	spec := `{
		"version": 1,
		"cluster": {"nodes": [{"name": "a", "machine": "stampede"}]},
		"events": {
			"version": 1,
			"timeline": [
				{"at": "1s", "kind": "node_down", "node": "a"},
				{"at": "2s", "kind": "node_down", "node": "ghost"}
			]
		},
		"workloads": [{
			"name": "md",
			"profile": {"command": "mdsim", "tags": {"steps": "10000"}},
			"arrival": {"process": "closed", "clients": 1, "iterations": 1}
		}]
	}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-scenario", specPath, "-store", storeDir})
	if err == nil || !strings.Contains(err.Error(), `timeline[1]: node_down: unknown node "ghost"`) {
		t.Fatalf("expected positional event error, got %v", err)
	}
}

func TestSimSeedOverride(t *testing.T) {
	storeDir, specPath := setup(t)
	var buf bytes.Buffer
	stdout = &buf
	defer func() { stdout = os.Stdout }()
	if err := run([]string{"-scenario", specPath, "-store", storeDir, "-seed", "99"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(seed 99)") {
		t.Fatalf("seed override not reflected: %q", buf.String())
	}

	// The full uint64 range is addressable (Spec.Seed is uint64).
	buf.Reset()
	if err := run([]string{"-scenario", specPath, "-store", storeDir, "-seed", "18446744073709551615"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(seed 18446744073709551615)") {
		t.Fatalf("max uint64 seed not reflected: %q", buf.String())
	}

	if err := run([]string{"-scenario", specPath, "-store", storeDir, "-seed", "-5"}); err == nil ||
		!strings.Contains(err.Error(), "bad -seed") {
		t.Fatalf("negative seed should error, got %v", err)
	}
}

func TestSimErrors(t *testing.T) {
	if err := run([]string{}); err == nil || !strings.Contains(err.Error(), "-scenario") {
		t.Fatalf("expected missing-scenario error, got %v", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version": 9, "workloads": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", bad, "-store", t.TempDir()}); err == nil ||
		!strings.Contains(err.Error(), "unknown spec version") {
		t.Fatalf("expected spec version error, got %v", err)
	}
}

// TestSimTraceFlag: -trace writes valid, deterministic Chrome trace-event
// JSON alongside an unchanged report.
func TestSimTraceFlag(t *testing.T) {
	storeDir, specPath := setup(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")

	var buf bytes.Buffer
	stdout = &buf
	defer func() { stdout = os.Stdout }()

	if err := run([]string{"-scenario", specPath, "-store", storeDir, "-trace", tracePath}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trace written to") {
		t.Errorf("no trace confirmation in output: %q", buf.String())
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := telemetry.ParseTrace(data)
	if err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if sum.Phases["b"] != 7 || sum.Phases["e"] != 7 {
		t.Errorf("trace spans = %d begins / %d ends, want 7/7", sum.Phases["b"], sum.Phases["e"])
	}

	tracePath2 := filepath.Join(dir, "trace2.json")
	if err := run([]string{"-scenario", specPath, "-store", storeDir, "-trace", tracePath2}); err != nil {
		t.Fatal(err)
	}
	data2, err := os.ReadFile(tracePath2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("two CLI runs of the same spec+seed wrote different traces")
	}
}

func TestSimVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	stdout = &buf
	defer func() { stdout = os.Stdout }()
	if err := run([]string{"-version"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "synapse-sim") || !strings.Contains(buf.String(), "go1.") {
		t.Errorf("version output incomplete: %q", buf.String())
	}
}

// TestSimProfilingFlags runs a scenario with -cpuprofile and -memprofile
// and checks both pprof files come out non-empty, and that -pprof serves
// the debug index for the run's duration (the listener closes with run).
func TestSimProfilingFlags(t *testing.T) {
	storeDir, specPath := setup(t)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")

	var buf bytes.Buffer
	stdout = &buf
	defer func() { stdout = os.Stdout }()

	err := run([]string{
		"-scenario", specPath, "-store", storeDir,
		"-cpuprofile", cpu, "-memprofile", mem,
		"-pprof", "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
