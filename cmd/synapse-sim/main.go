// synapse-sim runs a declarative workload-mix scenario against a profile
// store: it resolves the spec's profile references, emulates every workload
// instance on the batched replay engine, schedules the arrivals on the
// virtual timeline, and reports aggregate latency percentiles, throughput
// and busy-time breakdowns.
//
//	synapse-sim -scenario mix.json -store http://stampede:8181 -out report.json
//	synapse-sim -scenario mix.json -store ./synapse-store -workers 4
//	synapse-sim -scenario mix.json -cluster cluster.json
//	synapse-sim -scenario failover.json -timeline series.csv
//	synapse-sim -scenario failover.json -trace out.json -progress
//	synapse-sim -scenario huge.json -workers-remote h1:9191,h2:9191 -shards 32
//	synapse-sim -scenario huge.json -workers-remote h1:9191,h2:9191 -chunk 128 -steal-after 500ms
//	synapse-sim -scenario mix.json -cpuprofile cpu.pprof
//	synapse-sim -scenario huge.json -pprof 127.0.0.1:6060
//
// The -store flag accepts a local file-store directory or the URL of a
// running synapsed daemon. -cluster attaches (or replaces) the spec's
// cluster block from a standalone JSON file, so one mix can be rerun
// against different machine pools and placement policies. -timeline
// writes the run's bucketed time-series (throughput, queue depth,
// per-node occupancy) as CSV, enabling a 1s-bucket timeline when the
// spec does not configure one. -trace streams the run as Chrome
// trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing: one span per placed instance, queue/running counter
// series, node lifecycle markers (see docs/observability.md). -progress
// paints a live stderr meter (virtual time, arrivals/s, queue depth) for
// long runs. -workers-remote distributes the emulation replays across a
// fleet of synapse-worker daemons (comma-separated host:port list; -shards
// sets the partition granularity) — the schedule stays local and the
// report stays byte-identical to a single-process run, at any fleet size.
// Shards dispatch as fixed-size job chunks (-chunk) that idle workers pull
// and, past the -steal-after straggler threshold, speculatively re-execute;
// outcomes stream back and fold incrementally within a bounded -fold-window
// (see docs/distributed.md). Reports are deterministic for a fixed spec
// and seed: same inputs, byte-identical -out file (and byte-identical
// -trace file). See docs/scenarios.md for the spec format, including the
// events block (node failures, drains, additions, autoscaling).
//
// -cpuprofile and -memprofile write pprof profiles of the run (the same
// flags synapse-exp carries); -pprof serves net/http/pprof on the given
// address for the run's duration, so long scenarios can be flame-graphed
// live (see docs/profiling.md).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"synapse/internal/cluster"
	"synapse/internal/dist"
	"synapse/internal/scenario"
	"synapse/internal/storeclnt"
	"synapse/internal/telemetry"
)

// stdout is the CLI's output stream, replaceable in tests.
var stdout io.Writer = os.Stdout

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "synapse-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("synapse-sim", flag.ExitOnError)
	specPath := fs.String("scenario", "", "scenario spec file (JSON, required)")
	storeDir := fs.String("store", "synapse-store", "profile store directory or synapsed URL (http://host:port)")
	clusterPath := fs.String("cluster", "", "cluster description file (JSON); attaches or replaces the spec's cluster block")
	workers := fs.Int("workers", 0, "parallel emulation workers (0 = all cores)")
	out := fs.String("out", "", "write the full JSON report to this file")
	timeline := fs.String("timeline", "", "write the bucketed time-series as CSV to this file (enables a 1s-bucket timeline if the spec has none)")
	seed := fs.String("seed", "", "override the spec's seed (uint64; empty keeps the spec value)")
	tracePath := fs.String("trace", "", "write the run as Chrome trace-event JSON to this file (load in Perfetto or chrome://tracing)")
	progress := fs.Bool("progress", false, "paint a live progress meter (virtual time, arrivals/s, queue depth) on stderr")
	workersRemote := fs.String("workers-remote", "", "comma-separated synapse-worker addresses (host:port or http://host:port); distributes emulation replays across the fleet")
	shards := fs.Int("shards", 0, "shard count for -workers-remote (0 = 4x fleet size)")
	chunk := fs.Int("chunk", 0, "jobs per dispatch chunk for -workers-remote — the unit of work stealing and speculation (0 = 256, negative = one chunk per shard)")
	stealAfter := fs.Duration("steal-after", 0, "straggler threshold for -workers-remote: in-flight chunks older than this are speculatively re-executed on idle workers (0 = adapt to observed p95 chunk latency, negative = disable speculation)")
	foldWindow := fs.Int("fold-window", 0, "fold window for -workers-remote: max jobs in flight or buffered ahead of the streaming fold (0 = 4096)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file at exit")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (host:port) for the run's duration")
	version := fs.Bool("version", false, "print version and build information, then exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		telemetry.PrintVersion(stdout, "synapse-sim")
		return nil
	}
	if *specPath == "" {
		return fmt.Errorf("no -scenario file given")
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "synapse-sim: mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			_ = pprof.WriteHeapProfile(f)
		}()
	}
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		defer ln.Close()
		go func() { _ = http.Serve(ln, nil) }()
		fmt.Fprintf(os.Stderr, "synapse-sim: pprof on http://%s/debug/pprof/\n", ln.Addr())
	}
	spec, err := scenario.Load(*specPath)
	if err != nil {
		return err
	}
	if *clusterPath != "" {
		data, err := os.ReadFile(*clusterPath)
		if err != nil {
			return fmt.Errorf("read cluster: %w", err)
		}
		cs, err := cluster.ParseSpec(data)
		if err != nil {
			return err
		}
		spec.Cluster = cs
		if err := spec.Validate(); err != nil {
			return err
		}
	}
	if *seed != "" {
		s, err := strconv.ParseUint(*seed, 10, 64)
		if err != nil {
			return fmt.Errorf("bad -seed %q: %w", *seed, err)
		}
		spec.Seed = s
	}
	if *timeline != "" && spec.Timeline == nil {
		spec.Timeline = &scenario.TimelineSpec{Bucket: scenario.Duration(time.Second)}
	}
	st, err := storeclnt.Open(*storeDir)
	if err != nil {
		return err
	}
	defer st.Close()

	opts := scenario.RunOptions{Workers: *workers}
	if *workersRemote != "" {
		var fleet []dist.Worker
		for _, addr := range strings.Split(*workersRemote, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			if !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://") {
				addr = "http://" + addr
			}
			fleet = append(fleet, dist.NewHTTPWorker(addr, nil))
		}
		if len(fleet) == 0 {
			return fmt.Errorf("-workers-remote lists no addresses")
		}
		co, err := dist.NewCoordinator(context.Background(), spec, st, dist.Config{
			Workers:    fleet,
			Shards:     *shards,
			ChunkSize:  *chunk,
			StealAfter: *stealAfter,
			Window:     *foldWindow,
		})
		if err != nil {
			return err
		}
		opts.Executor = co
		chunkDesc := fmt.Sprintf("chunks of %d jobs", co.ChunkSize())
		if co.ChunkSize() <= 0 {
			chunkDesc = "one chunk per shard"
		}
		fmt.Fprintf(stdout, "distributing replays across %d workers in %d shards (%s)\n",
			len(fleet), co.Shards(), chunkDesc)
	} else {
		switch {
		case *shards != 0:
			return fmt.Errorf("-shards requires -workers-remote")
		case *chunk != 0:
			return fmt.Errorf("-chunk requires -workers-remote")
		case *stealAfter != 0:
			return fmt.Errorf("-steal-after requires -workers-remote")
		case *foldWindow != 0:
			return fmt.Errorf("-fold-window requires -workers-remote")
		}
	}
	var traceFile *os.File
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		defer traceFile.Close()
		opts.Trace = traceFile
	}
	if *progress {
		opts.Progress = os.Stderr
	}
	rep, err := scenario.Run(context.Background(), spec, st, opts)
	if err != nil {
		return err
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		fmt.Fprintf(stdout, "trace written to %s\n", *tracePath)
	}

	printSummary(stdout, rep)
	if *timeline != "" {
		f, err := os.Create(*timeline)
		if err != nil {
			return fmt.Errorf("write timeline: %w", err)
		}
		if err := rep.TimelineCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("write timeline: %w", err)
		}
		fmt.Fprintf(stdout, "timeline written to %s (%d buckets of %s)\n",
			*timeline, len(rep.Timeline.Buckets), rep.Timeline.Bucket)
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
		fmt.Fprintf(stdout, "report written to %s\n", *out)
	}
	return nil
}

// printSummary renders the human-readable view of the report; the JSON file
// carries the full detail.
func printSummary(w io.Writer, rep *scenario.Report) {
	name := rep.Scenario
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(w, "scenario %q (seed %d): %d emulations in %s (%.3f/s)",
		name, rep.Seed, rep.Emulations, rep.Makespan, rep.Throughput)
	if rep.Dropped > 0 {
		fmt.Fprintf(w, ", %d dropped", rep.Dropped)
	}
	if rep.Killed > 0 {
		fmt.Fprintf(w, ", %d killed and retried", rep.Killed)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-16s %-10s %6s %6s %12s %10s %10s %10s %10s\n",
		"workload", "machine", "done", "drop", "thru/s", "p50", "p99", "max", "wait-max")
	for _, wr := range rep.Workloads {
		fmt.Fprintf(w, "%-16s %-10s %6d %6d %12.3f %10s %10s %10s %10s\n",
			wr.Name, wr.Machine, wr.Emulations, wr.Dropped, wr.Throughput,
			wr.Latency.P50, wr.Latency.P99, wr.Latency.Max, wr.Wait.Max)
	}
	for _, wr := range rep.Workloads {
		if len(wr.BusyTime) == 0 {
			continue
		}
		parts := make([]string, 0, len(wr.BusyTime))
		for _, ab := range wr.BusyTime {
			parts = append(parts, fmt.Sprintf("%s %s", ab.Atom, ab.Busy))
		}
		fmt.Fprintf(w, "busy %-12s %s\n", wr.Name, strings.Join(parts, ", "))
	}
	if cr := rep.Cluster; cr != nil {
		fmt.Fprintf(w, "cluster policy %s: %d placements", cr.Policy, cr.Placements)
		if cr.Rejections > 0 {
			fmt.Fprintf(w, ", %d full-cluster rejections", cr.Rejections)
		}
		if cr.Events > 0 {
			fmt.Fprintf(w, ", %d events applied", cr.Events)
		}
		if cr.Autoscaled > 0 {
			fmt.Fprintf(w, ", %d nodes autoscaled in", cr.Autoscaled)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-16s %-10s %6s %6s %6s %6s %12s %6s %s\n",
			"node", "machine", "cores", "placed", "peak", "killed", "busy", "util", "state")
		for _, n := range cr.Nodes {
			state := n.State
			if state == "" {
				state = "up"
			}
			fmt.Fprintf(w, "%-16s %-10s %6d %6d %6d %6d %12s %5.1f%% %s\n",
				n.Name, n.Machine, n.Cores, n.Placed, n.PeakCores, n.Killed, n.Busy, 100*n.Utilization, state)
		}
	}
}
