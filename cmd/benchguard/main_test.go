package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture renders a minimal `go test -json` stream with one benchmark
// result line per (name, value).
func capture(t *testing.T, path string, benches map[string]float64) {
	t.Helper()
	var b strings.Builder
	b.WriteString(`{"Action":"start","Package":"synapse/internal/scenario"}` + "\n")
	for name, v := range benches {
		line := fmt.Sprintf("      10\\t  1234 ns/op\\t  %.0f emulations/s\\t 99 B/op", v)
		fmt.Fprintf(&b, `{"Action":"output","Package":"p","Test":"%s","Output":"%s\n"}`+"\n", name, line)
	}
	b.WriteString(`{"Action":"pass","Package":"synapse/internal/scenario"}` + "\n")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestGuardPassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	old, fresh := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	capture(t, old, map[string]float64{
		"BenchmarkScenarioThroughput":   100000,
		"BenchmarkPlacement/first_fit":  50000,
		"BenchmarkPlacement/least_load": 40000,
	})
	capture(t, fresh, map[string]float64{
		"BenchmarkScenarioThroughput":   85000, // -15%: inside 20%
		"BenchmarkPlacement/first_fit":  60000, // improvement
		"BenchmarkPlacement/least_load": 40000,
	})
	var buf bytes.Buffer
	stdout = &buf
	defer func() { stdout = os.Stdout }()
	if err := run([]string{"-old", old, "-new", fresh}); err != nil {
		t.Fatalf("within-tolerance capture failed the guard: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "all 3 benchmarks within 20%") {
		t.Fatalf("missing pass summary: %s", buf.String())
	}
}

func TestGuardCatchesRegression(t *testing.T) {
	dir := t.TempDir()
	old, fresh := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	capture(t, old, map[string]float64{"BenchmarkScenarioThroughput": 100000})
	capture(t, fresh, map[string]float64{"BenchmarkScenarioThroughput": 70000}) // -30%
	var buf bytes.Buffer
	stdout = &buf
	defer func() { stdout = os.Stdout }()
	err := run([]string{"-old", old, "-new", fresh})
	if err == nil || !strings.Contains(err.Error(), "dropped 30.0%") {
		t.Fatalf("30%% drop not caught: %v", err)
	}
	// A looser tolerance admits the same capture.
	if err := run([]string{"-old", old, "-new", fresh, "-max-drop", "0.4"}); err != nil {
		t.Fatalf("40%% tolerance rejected a 30%% drop: %v", err)
	}
}

func TestGuardCatchesMissingBenchmark(t *testing.T) {
	dir := t.TempDir()
	old, fresh := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	capture(t, old, map[string]float64{
		"BenchmarkScenarioThroughput": 100000,
		"BenchmarkPlacement/random":   50000,
	})
	capture(t, fresh, map[string]float64{"BenchmarkScenarioThroughput": 100000})
	var buf bytes.Buffer
	stdout = &buf
	defer func() { stdout = os.Stdout }()
	err := run([]string{"-old", old, "-new", fresh})
	if err == nil || !strings.Contains(err.Error(), "BenchmarkPlacement/random: missing") {
		t.Fatalf("deleted benchmark not caught: %v", err)
	}
}

// TestBestOfRepeatedRuns: with -count > 1, `go test -json` only tags the
// first run's events with a Test field — later runs announce the name as
// a bare output line or inline in the result line. The guard must see
// every run and keep the best.
func TestBestOfRepeatedRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "multi.json")
	stream := strings.Join([]string{
		`{"Action":"start","Package":"p"}`,
		// Run 1: Test field present (name announced, then the result).
		`{"Action":"output","Test":"BenchmarkScenarioSerial","Output":"BenchmarkScenarioSerial\n"}`,
		`{"Action":"output","Test":"BenchmarkScenarioSerial","Output":"      10\t 100 ns/op\t 100000 emulations/s\n"}`,
		// Run 2: no Test field, bare announcement line precedes the result.
		`{"Action":"output","Output":"BenchmarkScenarioSerial\n"}`,
		`{"Action":"output","Output":"      10\t 80 ns/op\t 140000 emulations/s\n"}`,
		// Run 3: no Test field, name inline in the result line.
		`{"Action":"output","Output":"BenchmarkScenarioSerial-8   \t      10\t 90 ns/op\t 120000 emulations/s\n"}`,
		`{"Action":"pass","Package":"p"}`,
	}, "\n") + "\n"
	if err := os.WriteFile(path, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	ms, err := loadMetrics(path, "emulations/s", false)
	if err != nil {
		t.Fatal(err)
	}
	if got := ms["BenchmarkScenarioSerial"]; got != 140000 {
		t.Fatalf("best-of-3 = %g, want 140000 (all runs must be attributed)\nparsed: %v", got, ms)
	}
	if len(ms) != 1 {
		t.Fatalf("parsed benchmarks = %v, want one name", ms)
	}
}

func TestGuardAgainstCommittedSnapshots(t *testing.T) {
	// The committed snapshots must parse and carry the guarded metric —
	// otherwise CI's guard is vacuously green.
	for _, snap := range []string{"../../BENCH_scenario.json", "../../BENCH_placement.json"} {
		ms, err := loadMetrics(snap, "emulations/s", false)
		if err != nil {
			t.Fatalf("%s: %v", snap, err)
		}
		if len(ms) == 0 {
			t.Fatalf("%s: no emulations/s benchmarks found", snap)
		}
	}
}

func TestGuardErrors(t *testing.T) {
	if err := run([]string{}); err == nil || !strings.Contains(err.Error(), "-old and -new") {
		t.Fatalf("missing flags accepted: %v", err)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-old", bad, "-new", bad}); err == nil ||
		!strings.Contains(err.Error(), "not a `go test -json` stream") {
		t.Fatalf("garbage capture accepted: %v", err)
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"Action":"start"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-old", empty, "-new", empty}); err == nil ||
		!strings.Contains(err.Error(), "no benchmarks report") {
		t.Fatalf("metric-free baseline accepted: %v", err)
	}
}

// captureAllocs renders a stream whose result lines carry both the
// throughput metric and allocs/op.
func captureAllocs(t *testing.T, path string, benches map[string][2]float64) {
	t.Helper()
	var b strings.Builder
	b.WriteString(`{"Action":"start","Package":"p"}` + "\n")
	for name, v := range benches {
		line := fmt.Sprintf("      10\\t  1234 ns/op\\t  %.0f emulations/s\\t 99 B/op\\t %.0f allocs/op", v[0], v[1])
		fmt.Fprintf(&b, `{"Action":"output","Package":"p","Test":"%s","Output":"%s\n"}`+"\n", name, line)
	}
	b.WriteString(`{"Action":"pass","Package":"p"}` + "\n")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestAllocGateCatchesRise: throughput holds steady while allocs/op
// climbs past the tolerance — exactly the regression -metric alone
// cannot see.
func TestAllocGateCatchesRise(t *testing.T) {
	dir := t.TempDir()
	old, fresh := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	captureAllocs(t, old, map[string][2]float64{"BenchmarkScenarioThroughput": {100000, 10}})
	captureAllocs(t, fresh, map[string][2]float64{"BenchmarkScenarioThroughput": {100000, 13}}) // +30% allocs
	var buf bytes.Buffer
	stdout = &buf
	defer func() { stdout = os.Stdout }()
	err := run([]string{"-old", old, "-new", fresh, "-alloc-metric", "allocs/op"})
	if err == nil || !strings.Contains(err.Error(), "allocs/op rose 30.0%") {
		t.Fatalf("30%% alloc rise not caught: %v", err)
	}
	// Within tolerance passes, and the summary names both gates.
	buf.Reset()
	captureAllocs(t, fresh, map[string][2]float64{"BenchmarkScenarioThroughput": {100000, 11}}) // +10%
	if err := run([]string{"-old", old, "-new", fresh, "-alloc-metric", "allocs/op"}); err != nil {
		t.Fatalf("10%% alloc rise rejected at 20%% tolerance: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "allocs/op within 20% rise") {
		t.Fatalf("missing alloc summary: %s", buf.String())
	}
}

// TestAllocGateZeroBaseline: an allocation-free benchmark that starts
// allocating fails at any tolerance.
func TestAllocGateZeroBaseline(t *testing.T) {
	dir := t.TempDir()
	old, fresh := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	captureAllocs(t, old, map[string][2]float64{"BenchmarkHot": {100000, 0}})
	captureAllocs(t, fresh, map[string][2]float64{"BenchmarkHot": {100000, 1}})
	var buf bytes.Buffer
	stdout = &buf
	defer func() { stdout = os.Stdout }()
	err := run([]string{"-old", old, "-new", fresh, "-alloc-metric", "allocs/op", "-max-rise", "5"})
	if err == nil || !strings.Contains(err.Error(), "BenchmarkHot: allocs/op rose") {
		t.Fatalf("0 -> 1 allocs/op not caught: %v", err)
	}
	// Staying allocation-free passes.
	captureAllocs(t, fresh, map[string][2]float64{"BenchmarkHot": {100000, 0}})
	if err := run([]string{"-old", old, "-new", fresh, "-alloc-metric", "allocs/op"}); err != nil {
		t.Fatalf("0 -> 0 allocs/op rejected: %v", err)
	}
}

// TestAllocGateRequiresMetric: pointing -alloc-metric at a capture taken
// without -benchmem is an error, not a vacuous pass.
func TestAllocGateRequiresMetric(t *testing.T) {
	dir := t.TempDir()
	old, fresh := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	capture(t, old, map[string]float64{"BenchmarkScenarioThroughput": 100000})
	capture(t, fresh, map[string]float64{"BenchmarkScenarioThroughput": 100000})
	var buf bytes.Buffer
	stdout = &buf
	defer func() { stdout = os.Stdout }()
	err := run([]string{"-old", old, "-new", fresh, "-alloc-metric", "allocs/op"})
	if err == nil || !strings.Contains(err.Error(), `no benchmarks report "allocs/op"`) {
		t.Fatalf("metric-free alloc baseline accepted: %v", err)
	}
}

// TestLoadMetricsLowerKeepsMin: repeated runs keep the minimum when the
// metric is lower-is-better.
func TestLoadMetricsLowerKeepsMin(t *testing.T) {
	path := filepath.Join(t.TempDir(), "multi.json")
	stream := strings.Join([]string{
		`{"Action":"output","Test":"BenchmarkHot","Output":"      10\t 100 ns/op\t 7 allocs/op\n"}`,
		`{"Action":"output","Test":"BenchmarkHot","Output":"      10\t 100 ns/op\t 5 allocs/op\n"}`,
		`{"Action":"output","Test":"BenchmarkHot","Output":"      10\t 100 ns/op\t 6 allocs/op\n"}`,
	}, "\n") + "\n"
	if err := os.WriteFile(path, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	ms, err := loadMetrics(path, "allocs/op", true)
	if err != nil {
		t.Fatal(err)
	}
	if ms["BenchmarkHot"] != 5 {
		t.Fatalf("lower-is-better best = %g, want 5", ms["BenchmarkHot"])
	}
}

func TestBenchguardVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	stdout = &buf
	defer func() { stdout = os.Stdout }()
	if err := run([]string{"-version"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "benchguard") || !strings.Contains(buf.String(), "go1.") {
		t.Fatalf("version output incomplete: %q", buf.String())
	}
}

func TestParseMetric(t *testing.T) {
	v, ok := parseMetric("       3\t    919570 ns/op\t    278450 emulations/s\t  717936 B/op\n", "emulations/s")
	if !ok || v != 278450 {
		t.Fatalf("parse = %g %v", v, ok)
	}
	if _, ok := parseMetric("=== RUN   BenchmarkScenarioThroughput", "emulations/s"); ok {
		t.Fatal("non-result line parsed")
	}
	if _, ok := parseMetric("10 123 ns/op", "emulations/s"); ok {
		t.Fatal("line without the metric parsed")
	}
}

// captureKernel renders a stream shaped like the BENCH_kernel.json suite:
// result lines carrying ops/s, allocs/op and p99-ns together.
func captureKernel(t *testing.T, path string, benches map[string][3]float64) {
	t.Helper()
	var b strings.Builder
	b.WriteString(`{"Action":"start","Package":"p"}` + "\n")
	for name, v := range benches {
		line := fmt.Sprintf("    1000\\t  123 ns/op\\t  %.0f ops/s\\t %.2f p99-ns\\t 0 B/op\\t %.0f allocs/op", v[0], v[1], v[2])
		fmt.Fprintf(&b, `{"Action":"output","Package":"p","Test":"%s","Output":"%s\n"}`+"\n", name, line)
	}
	b.WriteString(`{"Action":"pass","Package":"p"}` + "\n")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLatencyGateCatchesTailRise: throughput and allocs hold steady while
// p99 climbs past the tolerance — the tail regression the other two gates
// cannot see.
func TestLatencyGateCatchesTailRise(t *testing.T) {
	dir := t.TempDir()
	old, fresh := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	captureKernel(t, old, map[string][3]float64{"BenchmarkKernelPostPop": {1000000, 100, 0}})
	captureKernel(t, fresh, map[string][3]float64{"BenchmarkKernelPostPop": {1000000, 150, 0}}) // +50% p99
	var buf bytes.Buffer
	stdout = &buf
	defer func() { stdout = os.Stdout }()
	err := run([]string{"-old", old, "-new", fresh, "-metric", "ops/s",
		"-alloc-metric", "allocs/op", "-latency-metric", "p99-ns"})
	if err == nil || !strings.Contains(err.Error(), "p99-ns rose 50.0%") {
		t.Fatalf("50%% p99 rise not caught: %v", err)
	}
	// Within its own tolerance passes, and the summary names the gate.
	buf.Reset()
	captureKernel(t, fresh, map[string][3]float64{"BenchmarkKernelPostPop": {1000000, 110, 0}})
	err = run([]string{"-old", old, "-new", fresh, "-metric", "ops/s",
		"-alloc-metric", "allocs/op", "-latency-metric", "p99-ns", "-latency-max-rise", "0.3"})
	if err != nil {
		t.Fatalf("10%% p99 rise rejected at 30%% tolerance: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "p99-ns within 30% rise") {
		t.Fatalf("missing latency summary: %s", buf.String())
	}
}

// TestLatencyGateRequiresMetric: pointing -latency-metric at a capture
// without that metric is an error, not a vacuous pass; and a negative
// tolerance is rejected.
func TestLatencyGateRequiresMetric(t *testing.T) {
	dir := t.TempDir()
	old, fresh := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	capture(t, old, map[string]float64{"BenchmarkScenarioThroughput": 100000})
	capture(t, fresh, map[string]float64{"BenchmarkScenarioThroughput": 100000})
	var buf bytes.Buffer
	stdout = &buf
	defer func() { stdout = os.Stdout }()
	err := run([]string{"-old", old, "-new", fresh, "-metric", "emulations/s", "-latency-metric", "p99-ns"})
	if err == nil || !strings.Contains(err.Error(), `no benchmarks report "p99-ns"`) {
		t.Fatalf("metric-free latency baseline accepted: %v", err)
	}
	err = run([]string{"-old", old, "-new", fresh, "-latency-max-rise", "-1"})
	if err == nil || !strings.Contains(err.Error(), "-latency-max-rise") {
		t.Fatalf("negative latency tolerance accepted: %v", err)
	}
}
