// benchguard compares two `go test -json` benchmark captures and fails
// when a tracked metric regresses beyond a tolerance — the CI gate that
// keeps the committed BENCH_*.json snapshots honest.
//
//	benchguard -old BENCH_scenario.json -new fresh.json
//	benchguard -old BENCH_placement.json -new fresh.json -metric emulations/s -max-drop 0.2
//
// Both files are the raw `go test -json` stream (the format of the
// committed snapshots and the CI artifacts). Every benchmark in -old that
// reports the metric must appear in -new at no less than (1 - max-drop)
// of its old value; a missing benchmark is a failure too (a silently
// deleted benchmark would otherwise retire its regression guard with it).
// Higher-is-better metrics only.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// stdout is the output stream, replaceable in tests.
var stdout io.Writer = os.Stdout

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchguard", flag.ExitOnError)
	oldPath := fs.String("old", "", "baseline `go test -json` capture (required)")
	newPath := fs.String("new", "", "fresh `go test -json` capture (required)")
	metric := fs.String("metric", "emulations/s", "benchmark metric to guard (higher is better)")
	maxDrop := fs.Float64("max-drop", 0.2, "largest tolerated fractional drop vs the baseline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("need both -old and -new capture files")
	}
	if *maxDrop < 0 || *maxDrop >= 1 {
		return fmt.Errorf("-max-drop %g outside [0, 1)", *maxDrop)
	}
	olds, err := loadMetrics(*oldPath, *metric)
	if err != nil {
		return err
	}
	if len(olds) == 0 {
		return fmt.Errorf("%s: no benchmarks report %q", *oldPath, *metric)
	}
	news, err := loadMetrics(*newPath, *metric)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(olds))
	for name := range olds {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(stdout, "%-40s %14s %14s %8s\n", "benchmark", "old "+*metric, "new "+*metric, "delta")
	var failures []string
	for _, name := range names {
		old := olds[name]
		fresh, ok := news[name]
		if !ok {
			fmt.Fprintf(stdout, "%-40s %14.0f %14s %8s\n", name, old, "missing", "-")
			failures = append(failures, fmt.Sprintf("%s: missing from %s", name, *newPath))
			continue
		}
		delta := fresh/old - 1
		fmt.Fprintf(stdout, "%-40s %14.0f %14.0f %+7.1f%%\n", name, old, fresh, 100*delta)
		if delta < -*maxDrop {
			failures = append(failures, fmt.Sprintf("%s: %s dropped %.1f%% (%.0f -> %.0f, tolerance %.0f%%)",
				name, *metric, -100*delta, old, fresh, 100**maxDrop))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(stdout, "all %d benchmarks within %.0f%% of baseline\n", len(names), 100**maxDrop)
	return nil
}

// loadMetrics extracts `metric` values per benchmark from a `go test
// -json` stream. A benchmark that ran multiple times (e.g. -count > 1)
// keeps its best value — the guard compares capability, not noise.
//
// Attribution is layered because `go test -json` is inconsistent across
// repeated runs: only the first run's events carry a Test field, later
// runs announce the name as a bare "BenchmarkFoo" output line (or inline
// at the head of the result line) with Test empty.
func loadMetrics(path, metric string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	cur := "" // last announced benchmark name, for Test-less result lines
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		var ev struct {
			Action string
			Test   string
			Output string
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("%s: not a `go test -json` stream: %w", path, err)
		}
		if ev.Action != "output" {
			continue
		}
		line := strings.TrimSpace(ev.Output)
		inline := ""
		if first, _, _ := strings.Cut(line, "\t"); strings.HasPrefix(first, "Benchmark") {
			inline = benchName(strings.TrimSpace(first))
		}
		value, ok := parseMetric(line, metric)
		if !ok {
			if inline != "" && len(strings.Fields(line)) == 1 {
				cur = inline // bare announcement line
			}
			continue
		}
		name := inline
		if name == "" && strings.HasPrefix(ev.Test, "Benchmark") {
			name = ev.Test
		}
		if name == "" {
			name = cur
		}
		if name == "" {
			continue
		}
		if prev, seen := out[name]; !seen || value > prev {
			out[name] = value
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// benchName strips the trailing -GOMAXPROCS suffix from an inline
// benchmark name, so captures from different machines compare.
func benchName(s string) string {
	if i := strings.LastIndex(s, "-"); i > 0 {
		if _, err := strconv.Atoi(s[i+1:]); err == nil {
			return s[:i]
		}
	}
	return s
}

// parseMetric extracts the metric's value from one benchmark result line
// ("      10  123 ns/op  456 emulations/s  ..." — the name travels in the
// event's Test field, so captures from different machines and GOMAXPROCS
// compare by name).
func parseMetric(line, metric string) (value float64, ok bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	for i := 0; i+1 < len(fields); i++ {
		if fields[i+1] != metric {
			continue
		}
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
