// benchguard compares two `go test -json` benchmark captures and fails
// when a tracked metric regresses beyond a tolerance — the CI gate that
// keeps the committed BENCH_*.json snapshots honest.
//
//	benchguard -old BENCH_scenario.json -new fresh.json
//	benchguard -old BENCH_placement.json -new fresh.json -metric emulations/s -max-drop 0.2
//	benchguard -old BENCH_scenario.json -new fresh.json -alloc-metric allocs/op -max-rise 0.2
//	benchguard -old BENCH_kernel.json -new fresh.json -metric ops/s -alloc-metric allocs/op -latency-metric p99-ns
//
// Both files are the raw `go test -json` stream (the format of the
// committed snapshots and the CI artifacts). Every benchmark in -old that
// reports the metric must appear in -new at no less than (1 - max-drop)
// of its old value; a missing benchmark is a failure too (a silently
// deleted benchmark would otherwise retire its regression guard with it).
// The primary -metric is higher-is-better; -alloc-metric adds a second,
// lower-is-better gate (allocations per op must not rise beyond
// -max-rise), so a hot path that starts boxing into the heap fails CI
// even while it is still fast enough to pass the throughput gate.
// -latency-metric adds a third gate of the same lower-is-better shape for
// tail latency (e.g. the kernel suite's p99-ns), with its own tolerance
// (-latency-max-rise): tail regressions hide inside healthy means, so the
// throughput gate alone would not catch them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"synapse/internal/telemetry"
)

// stdout is the output stream, replaceable in tests.
var stdout io.Writer = os.Stdout

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchguard", flag.ExitOnError)
	oldPath := fs.String("old", "", "baseline `go test -json` capture (required)")
	newPath := fs.String("new", "", "fresh `go test -json` capture (required)")
	metric := fs.String("metric", "emulations/s", "benchmark metric to guard (higher is better)")
	maxDrop := fs.Float64("max-drop", 0.2, "largest tolerated fractional drop vs the baseline")
	allocMetric := fs.String("alloc-metric", "", "additional lower-is-better metric to guard (e.g. allocs/op; empty disables)")
	maxRise := fs.Float64("max-rise", 0.2, "largest tolerated fractional rise of -alloc-metric vs the baseline")
	latencyMetric := fs.String("latency-metric", "", "additional lower-is-better tail-latency metric to guard (e.g. p99-ns; empty disables)")
	latencyMaxRise := fs.Float64("latency-max-rise", 0.2, "largest tolerated fractional rise of -latency-metric vs the baseline")
	version := fs.Bool("version", false, "print version and build information, then exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		telemetry.PrintVersion(stdout, "benchguard")
		return nil
	}
	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("need both -old and -new capture files")
	}
	if *maxDrop < 0 || *maxDrop >= 1 {
		return fmt.Errorf("-max-drop %g outside [0, 1)", *maxDrop)
	}
	if *maxRise < 0 {
		return fmt.Errorf("-max-rise %g must be >= 0", *maxRise)
	}
	if *latencyMaxRise < 0 {
		return fmt.Errorf("-latency-max-rise %g must be >= 0", *latencyMaxRise)
	}
	olds, err := loadMetrics(*oldPath, *metric, false)
	if err != nil {
		return err
	}
	if len(olds) == 0 {
		return fmt.Errorf("%s: no benchmarks report %q", *oldPath, *metric)
	}
	news, err := loadMetrics(*newPath, *metric, false)
	if err != nil {
		return err
	}

	failures := gate(olds, news, *metric, *maxDrop, false, *newPath)
	if *allocMetric != "" {
		oldAllocs, err := loadMetrics(*oldPath, *allocMetric, true)
		if err != nil {
			return err
		}
		if len(oldAllocs) == 0 {
			return fmt.Errorf("%s: no benchmarks report %q (run the benchmarks with -benchmem or b.ReportAllocs)", *oldPath, *allocMetric)
		}
		newAllocs, err := loadMetrics(*newPath, *allocMetric, true)
		if err != nil {
			return err
		}
		failures = append(failures, gate(oldAllocs, newAllocs, *allocMetric, *maxRise, true, *newPath)...)
	}
	if *latencyMetric != "" {
		oldLat, err := loadMetrics(*oldPath, *latencyMetric, true)
		if err != nil {
			return err
		}
		if len(oldLat) == 0 {
			return fmt.Errorf("%s: no benchmarks report %q", *oldPath, *latencyMetric)
		}
		newLat, err := loadMetrics(*newPath, *latencyMetric, true)
		if err != nil {
			return err
		}
		failures = append(failures, gate(oldLat, newLat, *latencyMetric, *latencyMaxRise, true, *newPath)...)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(stdout, "all %d benchmarks within %.0f%% of baseline\n", len(olds), 100**maxDrop)
	if *allocMetric != "" {
		fmt.Fprintf(stdout, "%s within %.0f%% rise everywhere\n", *allocMetric, 100**maxRise)
	}
	if *latencyMetric != "" {
		fmt.Fprintf(stdout, "%s within %.0f%% rise everywhere\n", *latencyMetric, 100**latencyMaxRise)
	}
	return nil
}

// gate compares one metric across the two captures and returns the
// failures. lower flips the direction: tol is then the largest tolerated
// fractional rise instead of drop. A baseline of zero tolerates only zero
// (an allocation-free hot path that starts allocating is a regression at
// any tolerance).
func gate(olds, news map[string]float64, metric string, tol float64, lower bool, newPath string) []string {
	names := make([]string, 0, len(olds))
	for name := range olds {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(stdout, "%-40s %14s %14s %8s\n", "benchmark", "old "+metric, "new "+metric, "delta")
	var failures []string
	for _, name := range names {
		old := olds[name]
		fresh, ok := news[name]
		if !ok {
			fmt.Fprintf(stdout, "%-40s %14.0f %14s %8s\n", name, old, "missing", "-")
			failures = append(failures, fmt.Sprintf("%s: missing from %s", name, newPath))
			continue
		}
		var delta float64
		if old != 0 {
			delta = fresh/old - 1
		} else if fresh != 0 {
			delta = 1 // 0 -> nonzero: worst possible rise for lower-is-better
		}
		fmt.Fprintf(stdout, "%-40s %14.0f %14.0f %+7.1f%%\n", name, old, fresh, 100*delta)
		if lower {
			if (old == 0 && fresh > 0) || delta > tol {
				failures = append(failures, fmt.Sprintf("%s: %s rose %.1f%% (%.0f -> %.0f, tolerance %.0f%%)",
					name, metric, 100*delta, old, fresh, 100*tol))
			}
		} else if delta < -tol {
			failures = append(failures, fmt.Sprintf("%s: %s dropped %.1f%% (%.0f -> %.0f, tolerance %.0f%%)",
				name, metric, -100*delta, old, fresh, 100*tol))
		}
	}
	return failures
}

// loadMetrics extracts `metric` values per benchmark from a `go test
// -json` stream. A benchmark that ran multiple times (e.g. -count > 1)
// keeps its best value — the guard compares capability, not noise. For a
// higher-is-better metric best is the max; with lower set (allocs/op,
// ns/op) it is the min.
//
// Attribution is layered because `go test -json` is inconsistent across
// repeated runs: only the first run's events carry a Test field, later
// runs announce the name as a bare "BenchmarkFoo" output line (or inline
// at the head of the result line) with Test empty.
func loadMetrics(path, metric string, lower bool) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	cur := "" // last announced benchmark name, for Test-less result lines
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		var ev struct {
			Action string
			Test   string
			Output string
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("%s: not a `go test -json` stream: %w", path, err)
		}
		if ev.Action != "output" {
			continue
		}
		line := strings.TrimSpace(ev.Output)
		inline := ""
		if first, _, _ := strings.Cut(line, "\t"); strings.HasPrefix(first, "Benchmark") {
			inline = benchName(strings.TrimSpace(first))
		}
		value, ok := parseMetric(line, metric)
		if !ok {
			if inline != "" && len(strings.Fields(line)) == 1 {
				cur = inline // bare announcement line
			}
			continue
		}
		name := inline
		if name == "" && strings.HasPrefix(ev.Test, "Benchmark") {
			name = ev.Test
		}
		if name == "" {
			name = cur
		}
		if name == "" {
			continue
		}
		if prev, seen := out[name]; !seen || (lower && value < prev) || (!lower && value > prev) {
			out[name] = value
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// benchName strips the trailing -GOMAXPROCS suffix from an inline
// benchmark name, so captures from different machines compare.
func benchName(s string) string {
	if i := strings.LastIndex(s, "-"); i > 0 {
		if _, err := strconv.Atoi(s[i+1:]); err == nil {
			return s[:i]
		}
	}
	return s
}

// parseMetric extracts the metric's value from one benchmark result line
// ("      10  123 ns/op  456 emulations/s  ..." — the name travels in the
// event's Test field, so captures from different machines and GOMAXPROCS
// compare by name).
func parseMetric(line, metric string) (value float64, ok bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	for i := 0; i+1 < len(fields); i++ {
		if fields[i+1] != metric {
			continue
		}
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
