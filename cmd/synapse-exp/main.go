// synapse-exp regenerates every table and figure of the paper's evaluation
// section (§5) and prints them as ASCII tables; with -out it also writes one
// .txt and one .csv file per artifact. -quick runs the reduced configuration
// used by the test suite; the default runs the full problem sizes (the 10M
// step configurations take a few seconds of wall time — simulated time runs
// at many orders of magnitude faster than real time).
//
// Figure cells run concurrently across -workers goroutines (all cores by
// default); the emitted tables are byte-identical at any worker count. The
// -cpuprofile/-memprofile/-blockprofile flags write pprof profiles of the
// run (see docs/profiling.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"synapse/internal/exp"
	"synapse/internal/telemetry"
)

func main() {
	// The body lives in run so its defers — which flush the pprof
	// profiles — execute on error paths too; os.Exit happens only here,
	// after everything is written.
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "synapse-exp:", err)
		os.Exit(1)
	}
}

func run() error {
	quick := flag.Bool("quick", false, "reduced sizes and repetitions")
	out := flag.String("out", "", "directory for .txt/.csv exports (optional)")
	reps := flag.Int("reps", 0, "repetitions for error bars (0 = default)")
	only := flag.String("only", "", "run only the experiment with this ID (e.g. fig7)")
	workers := flag.Int("workers", 0, "parallel figure-cell workers (0 = all cores, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	blockprofile := flag.String("blockprofile", "", "write a pprof block profile to this file")
	version := flag.Bool("version", false, "print version and build information, then exit")
	flag.Parse()
	if *version {
		telemetry.PrintVersion(os.Stdout, "synapse-exp")
		return nil
	}

	cfg := exp.DefaultConfig()
	if *quick {
		cfg = exp.QuickConfig()
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}
	cfg.Workers = *workers

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1)
		defer func() {
			f, err := os.Create(*blockprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "synapse-exp: block profile:", err)
				return
			}
			defer f.Close()
			_ = pprof.Lookup("block").WriteTo(f, 0)
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "synapse-exp: mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			_ = pprof.WriteHeapProfile(f)
		}()
	}

	start := time.Now()
	tables, err := exp.All(cfg)
	if err != nil {
		return err
	}

	for _, t := range tables {
		if *only != "" && t.ID != *only {
			continue
		}
		fmt.Println(t.String())
		if *out != "" {
			if err := export(*out, t); err != nil {
				return err
			}
		}
	}
	fmt.Printf("regenerated %d artifacts in %.1fs wall time\n", len(tables), time.Since(start).Seconds())
	return nil
}

func export(dir string, t *exp.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, t.ID+".txt"), []byte(t.String()), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, t.ID+".csv"), []byte(t.CSV()), 0o644)
}
