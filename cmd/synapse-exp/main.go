// synapse-exp regenerates every table and figure of the paper's evaluation
// section (§5) and prints them as ASCII tables; with -out it also writes one
// .txt and one .csv file per artifact. -quick runs the reduced configuration
// used by the test suite; the default runs the full problem sizes (the 10M
// step configurations take a few seconds of wall time — simulated time runs
// at many orders of magnitude faster than real time).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"synapse/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sizes and repetitions")
	out := flag.String("out", "", "directory for .txt/.csv exports (optional)")
	reps := flag.Int("reps", 0, "repetitions for error bars (0 = default)")
	only := flag.String("only", "", "run only the experiment with this ID (e.g. fig7)")
	flag.Parse()

	cfg := exp.DefaultConfig()
	if *quick {
		cfg = exp.QuickConfig()
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}

	start := time.Now()
	tables, err := exp.All(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synapse-exp:", err)
		os.Exit(1)
	}

	for _, t := range tables {
		if *only != "" && t.ID != *only {
			continue
		}
		fmt.Println(t.String())
		if *out != "" {
			if err := export(*out, t); err != nil {
				fmt.Fprintln(os.Stderr, "synapse-exp:", err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("regenerated %d artifacts in %.1fs wall time\n", len(tables), time.Since(start).Seconds())
}

func export(dir string, t *exp.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, t.ID+".txt"), []byte(t.String()), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, t.ID+".csv"), []byte(t.CSV()), 0o644)
}
