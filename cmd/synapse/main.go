// synapse is the command-line front end to the library, mirroring the
// paper's CLI wrappers around radical.synapse.profile/emulate (§4).
//
// Subcommands:
//
//	synapse profile  [flags] -- <command...>   profile an application
//	synapse emulate  [flags] -- <command...>   emulate a stored profile
//	synapse stats    [flags] -- <command...>   statistics across stored profiles
//	synapse list     [flags]                   list stored profile keys
//	synapse machines                           list machine models
//	synapse table1                             print the metric table (paper Table 1)
//
// Profiles are stored in a file store (-store DIR, default ./synapse-store)
// or, when -store is an http:// URL, in a running synapsed profile service.
// Execution is simulated on a catalog machine (-machine) unless -real is
// given, in which case the command is spawned on the host and watched
// through /proc.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"synapse/internal/app"
	"synapse/internal/core"
	"synapse/internal/machine"
	"synapse/internal/profile"
	"synapse/internal/store"
	"synapse/internal/storeclnt"
	"synapse/internal/telemetry"
)

// stdout is the CLI's output stream, replaceable in tests.
var stdout io.Writer = os.Stdout

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "profile":
		err = cmdProfile(args)
	case "emulate":
		err = cmdEmulate(args)
	case "stats":
		err = cmdStats(args)
	case "list":
		err = cmdList(args)
	case "show":
		err = cmdShow(args)
	case "timeline":
		err = cmdTimeline(args)
	case "verify":
		err = cmdVerify(args)
	case "machines":
		for _, n := range machine.Names() {
			m := machine.MustGet(n)
			fmt.Fprintf(stdout, "%-10s %2d cores  %.2f GHz  fs=%s\n", n, m.Cores, m.ClockHz/1e9, strings.Join(m.FSNames(), ","))
		}
	case "table1":
		fmt.Fprint(stdout, profile.Table1())
	case "version", "-version", "--version":
		telemetry.PrintVersion(stdout, "synapse")
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "synapse: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "synapse:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: synapse <command> [flags] [-- command...]

commands:
  profile   profile an application (simulated or -real)
  emulate   emulate a stored profile
  stats     statistics across stored profiles of one command
  show      render a stored profile's sample series as ASCII charts
  timeline  emulate and render the replay as an ASCII Gantt chart
  verify    emulate, re-profile the emulation, compare to the profile
  list      list stored profile keys
  machines  list built-in machine models
  table1    print the supported-metrics table
  version   print version and build information

run 'synapse <command> -h' for flags.
`)
}

// tagsFlag collects repeated -tag k=v flags.
type tagsFlag map[string]string

func (t tagsFlag) String() string { return fmt.Sprint(map[string]string(t)) }
func (t tagsFlag) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("tag %q is not k=v", s)
	}
	t[k] = v
	return nil
}

// splitCommand separates flags from the profiled command after "--".
func splitCommand(args []string) (flags, command []string) {
	for i, a := range args {
		if a == "--" {
			return args[:i], args[i+1:]
		}
	}
	return args, nil
}

// openStore resolves the -store flag: an http(s):// URL connects to a
// running synapsed daemon, anything else is a local file-store directory.
func openStore(dir string) (store.Store, error) { return storeclnt.Open(dir) }

// loadMachineFile registers a JSON machine description and returns its name
// ("" when no file is given).
func loadMachineFile(path string) (string, error) {
	if path == "" {
		return "", nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("read machine file: %w", err)
	}
	m, err := machine.FromJSON(data)
	if err != nil {
		return "", err
	}
	if err := machine.Register(m); err != nil {
		return "", err
	}
	return m.Name, nil
}

func cmdProfile(args []string) error {
	flagArgs, command := splitCommand(args)
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	machineName := fs.String("machine", machine.Thinkie, "machine model to simulate on (or 'host' with -real)")
	machineFile := fs.String("machine-file", "", "JSON machine description to register and use")
	rate := fs.Float64("rate", 1, "sampling rate in Hz (max 10)")
	storeDir := fs.String("store", "synapse-store", "profile store directory or synapsed URL (http://host:port)")
	real := fs.Bool("real", false, "spawn the command on the host and profile via /proc")
	concurrent := fs.Bool("concurrent", false, "one goroutine per watcher (real-clock runs)")
	adaptive := fs.Bool("adaptive", false, "adaptive sampling: 10Hz during startup, then -rate")
	seed := fs.Uint64("seed", 0, "simulation noise seed")
	load := fs.Float64("load", 0, "artificial background CPU load fraction")
	workloadFile := fs.String("workload", "", "JSON workload description to profile instead of a known command")
	tags := tagsFlag{}
	fs.Var(tags, "tag", "profile tag k=v (repeatable)")
	if err := fs.Parse(flagArgs); err != nil {
		return err
	}
	if len(command) == 0 && *workloadFile == "" {
		return fmt.Errorf("profile: no command given (use -- <command...> or -workload)")
	}
	st, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	if name, err := loadMachineFile(*machineFile); err != nil {
		return err
	} else if name != "" && *machineName == machine.Thinkie {
		*machineName = name
	}
	opts := core.ProfileOptions{
		Machine:    *machineName,
		SampleRate: *rate,
		Adaptive:   *adaptive,
		Store:      st,
		Seed:       *seed,
		Jitter:     true,
		Load:       *load,
		Real:       *real,
		Concurrent: *concurrent,
	}
	if *real {
		opts.Machine = machine.HostName
	}
	var p *profile.Profile
	if *workloadFile != "" {
		data, err := os.ReadFile(*workloadFile)
		if err != nil {
			return fmt.Errorf("profile: read workload: %w", err)
		}
		w, err := app.FromJSON(data)
		if err != nil {
			return err
		}
		for k, v := range tags {
			w.Tags[k] = v
		}
		p, err = core.ProfileWorkload(context.Background(), w, opts)
		if err != nil {
			return err
		}
	} else {
		p, err = core.ProfileCommandString(context.Background(), strings.Join(command, " "), tags, opts)
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "profiled %q on %s: Tx=%.3fs samples=%d cycles=%.3e written=%.0fB\n",
		p.Command, p.Machine, p.Duration.Seconds(), len(p.Samples),
		p.Total(profile.MetricCPUCycles), p.Total(profile.MetricIOWriteBytes))
	if p.Dropped > 0 {
		fmt.Fprintf(stdout, "warning: %d samples dropped by the store document limit\n", p.Dropped)
	}
	return nil
}

func cmdEmulate(args []string) error {
	flagArgs, command := splitCommand(args)
	fs := flag.NewFlagSet("emulate", flag.ExitOnError)
	machineName := fs.String("machine", machine.Thinkie, "machine model to emulate on (or 'host' with -real)")
	machineFile := fs.String("machine-file", "", "JSON machine description to register and use")
	storeDir := fs.String("store", "synapse-store", "profile store directory or synapsed URL (http://host:port)")
	kernel := fs.String("kernel", "asm", "compute kernel: asm, c, or registered user kernel")
	workers := fs.Int("workers", 1, "parallel workers")
	modeName := fs.String("mode", "serial", "parallel mode: serial, openmp, mpi")
	rblock := fs.Int64("rblock", 0, "read block size bytes (0 = default 1MB)")
	wblock := fs.Int64("wblock", 0, "write block size bytes (0 = default 1MB)")
	fsName := fs.String("fs", "", "target filesystem (machine default when empty)")
	profiledBlocks := fs.Bool("profiled-blocks", false, "derive I/O block sizes from the profile")
	real := fs.Bool("real", false, "consume real host resources")
	load := fs.Float64("load", 0, "artificial background CPU load fraction")
	tags := tagsFlag{}
	fs.Var(tags, "tag", "profile tag k=v (repeatable)")
	if err := fs.Parse(flagArgs); err != nil {
		return err
	}
	if len(command) == 0 {
		return fmt.Errorf("emulate: no command given (use -- <command...>)")
	}
	st, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	if name, err := loadMachineFile(*machineFile); err != nil {
		return err
	} else if name != "" && *machineName == machine.Thinkie {
		*machineName = name
	}
	var mode machine.Mode
	switch strings.ToLower(*modeName) {
	case "serial", "":
		mode = machine.ModeSerial
	case "openmp", "omp":
		mode = machine.ModeOpenMP
	case "mpi", "openmpi":
		mode = machine.ModeMPI
	default:
		return fmt.Errorf("emulate: unknown mode %q", *modeName)
	}
	opts := core.EmulateOptions{
		Machine:           *machineName,
		Kernel:            *kernel,
		Workers:           *workers,
		Mode:              mode,
		ReadBlock:         *rblock,
		WriteBlock:        *wblock,
		Filesystem:        *fsName,
		UseProfiledBlocks: *profiledBlocks,
		Load:              *load,
		Real:              *real,
	}
	if *real {
		opts.Machine = machine.HostName
	}
	rep, err := core.Emulate(context.Background(), st, strings.Join(command, " "), tags, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "emulated %q on %s (kernel=%s): Tx=%.3fs samples=%d cycles=%.3e ipc=%.2f\n",
		strings.Join(command, " "), rep.Machine, rep.Kernel,
		rep.Tx.Seconds(), rep.Samples, rep.Consumed.Cycles, rep.IPC())
	return nil
}

func cmdStats(args []string) error {
	flagArgs, command := splitCommand(args)
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	storeDir := fs.String("store", "synapse-store", "profile store directory or synapsed URL (http://host:port)")
	tags := tagsFlag{}
	fs.Var(tags, "tag", "profile tag k=v (repeatable)")
	if err := fs.Parse(flagArgs); err != nil {
		return err
	}
	if len(command) == 0 {
		return fmt.Errorf("stats: no command given (use -- <command...>)")
	}
	st, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	set, err := st.Find(strings.Join(command, " "), tags)
	if err != nil {
		return err
	}
	tx := set.TxSummary()
	fmt.Fprintf(stdout, "%d profiles of %q\n", len(set), strings.Join(command, " "))
	fmt.Fprintf(stdout, "%-24s %12s %12s %12s\n", "metric", "mean", "stddev", "ci99")
	fmt.Fprintf(stdout, "%-24s %12.3f %12.3f %12.3f\n", "Tx (s)", tx.Mean, tx.StdDev, tx.CI99)
	for _, m := range set.Metrics() {
		s := set.TotalSummary(m)
		fmt.Fprintf(stdout, "%-24s %12.4g %12.4g %12.4g\n", m, s.Mean, s.StdDev, s.CI99)
	}
	return nil
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	storeDir := fs.String("store", "synapse-store", "profile store directory or synapsed URL (http://host:port)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	keys, err := st.Keys()
	if err != nil {
		return err
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(stdout, strings.ReplaceAll(k, "\x00", " "))
	}
	return nil
}
