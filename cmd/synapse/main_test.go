package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"synapse/internal/store"
	"synapse/internal/storesrv"
)

// capture redirects the CLI's stdout for one test.
func capture(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	old := stdout
	stdout = &buf
	t.Cleanup(func() { stdout = old })
	return &buf
}

func TestTagsFlag(t *testing.T) {
	tags := tagsFlag{}
	if err := tags.Set("steps=1000"); err != nil {
		t.Fatal(err)
	}
	if err := tags.Set("cfg=a"); err != nil {
		t.Fatal(err)
	}
	if tags["steps"] != "1000" || tags["cfg"] != "a" {
		t.Errorf("tags = %v", tags)
	}
	if err := tags.Set("malformed"); err == nil {
		t.Error("tag without '=' should error")
	}
	if tags.String() == "" {
		t.Error("String() should render something")
	}
}

func TestSplitCommand(t *testing.T) {
	flags, cmd := splitCommand([]string{"-rate", "2", "--", "mdsim", "-steps", "5"})
	if len(flags) != 2 || len(cmd) != 3 {
		t.Errorf("split = %v | %v", flags, cmd)
	}
	flags, cmd = splitCommand([]string{"-rate", "2"})
	if cmd != nil {
		t.Errorf("no -- should give nil command, got %v", cmd)
	}
	if len(flags) != 2 {
		t.Errorf("flags = %v", flags)
	}
	// Everything after the first -- belongs to the command.
	_, cmd = splitCommand([]string{"--", "a", "--", "b"})
	if len(cmd) != 3 {
		t.Errorf("cmd = %v", cmd)
	}
}

func TestProfileEmulateStatsListFlow(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	buf := capture(t)

	profileArgs := []string{"-machine", "thinkie", "-rate", "2", "-store", dir,
		"-tag", "steps=100000", "--", "mdsim"}
	if err := cmdProfile(profileArgs); err != nil {
		t.Fatalf("profile: %v", err)
	}
	if !strings.Contains(buf.String(), "profiled \"mdsim\"") {
		t.Errorf("profile output = %q", buf.String())
	}

	buf.Reset()
	if err := cmdEmulate([]string{"-machine", "stampede", "-store", dir,
		"-tag", "steps=100000", "--", "mdsim"}); err != nil {
		t.Fatalf("emulate: %v", err)
	}
	if !strings.Contains(buf.String(), "emulated \"mdsim\" on stampede") {
		t.Errorf("emulate output = %q", buf.String())
	}

	buf.Reset()
	if err := cmdStats([]string{"-store", dir, "-tag", "steps=100000", "--", "mdsim"}); err != nil {
		t.Fatalf("stats: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "Tx (s)") || !strings.Contains(out, "cpu.cycles") {
		t.Errorf("stats output = %q", out)
	}

	buf.Reset()
	if err := cmdList([]string{"-store", dir}); err != nil {
		t.Fatalf("list: %v", err)
	}
	if !strings.Contains(buf.String(), "mdsim steps=100000") {
		t.Errorf("list output = %q", buf.String())
	}
}

func TestEmulateParallelModes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	buf := capture(t)
	if err := cmdProfile([]string{"-store", dir, "-tag", "steps=200000", "--", "mdsim"}); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"serial", "openmp", "mpi", "omp", "openmpi"} {
		if err := cmdEmulate([]string{"-store", dir, "-machine", "titan",
			"-workers", "8", "-mode", mode, "-tag", "steps=200000", "--", "mdsim"}); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
	if err := cmdEmulate([]string{"-store", dir, "-mode", "cuda",
		"-tag", "steps=200000", "--", "mdsim"}); err == nil {
		t.Error("unknown mode should fail")
	}
	_ = buf
}

func TestCommandsRequireTarget(t *testing.T) {
	if err := cmdProfile([]string{"-rate", "2"}); err == nil {
		t.Error("profile without -- command should fail")
	}
	if err := cmdEmulate([]string{}); err == nil {
		t.Error("emulate without -- command should fail")
	}
	if err := cmdStats([]string{}); err == nil {
		t.Error("stats without -- command should fail")
	}
}

func TestEmulateWithoutProfileFails(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	if err := cmdEmulate([]string{"-store", dir, "--", "mdsim"}); err == nil {
		t.Error("emulating with an empty store should fail")
	}
}

func TestStatsAcrossRepetitions(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	buf := capture(t)
	for seed := 0; seed < 3; seed++ {
		if err := cmdProfile([]string{"-store", dir, "-seed", string(rune('0' + seed)),
			"-tag", "steps=50000", "--", "mdsim"}); err != nil {
			t.Fatal(err)
		}
	}
	buf.Reset()
	if err := cmdStats([]string{"-store", dir, "-tag", "steps=50000", "--", "mdsim"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3 profiles") {
		t.Errorf("stats should see 3 profiles: %q", buf.String())
	}
}

func TestShowTimelineVerify(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	buf := capture(t)
	if err := cmdProfile([]string{"-store", dir, "-rate", "2", "-tag", "steps=200000", "--", "mdsim"}); err != nil {
		t.Fatal(err)
	}

	buf.Reset()
	if err := cmdShow([]string{"-store", dir, "-tag", "steps=200000", "--", "mdsim"}); err != nil {
		t.Fatalf("show: %v", err)
	}
	if !strings.Contains(buf.String(), "totals:") {
		t.Errorf("show output = %q", buf.String())
	}

	buf.Reset()
	if err := cmdShow([]string{"-store", dir, "-metric", "cpu.cycles", "-tag", "steps=200000", "--", "mdsim"}); err != nil {
		t.Fatalf("show -metric: %v", err)
	}
	if !strings.Contains(buf.String(), "cpu.cycles") {
		t.Errorf("show metric output = %q", buf.String())
	}

	buf.Reset()
	if err := cmdTimeline([]string{"-store", dir, "-machine", "supermic", "-tag", "steps=200000", "--", "mdsim"}); err != nil {
		t.Fatalf("timeline: %v", err)
	}
	if !strings.Contains(buf.String(), "barrier") {
		t.Errorf("timeline output = %q", buf.String())
	}

	buf.Reset()
	if err := cmdVerify([]string{"-store", dir, "-machine", "thinkie", "-kernel", "c", "-tag", "steps=200000", "--", "mdsim"}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "ratio") || !strings.Contains(out, "cpu.cycles") {
		t.Errorf("verify output = %q", out)
	}
}

func TestInspectCommandsRequireTarget(t *testing.T) {
	for name, fn := range map[string]func([]string) error{
		"show": cmdShow, "timeline": cmdTimeline, "verify": cmdVerify,
	} {
		if err := fn([]string{}); err == nil {
			t.Errorf("%s without -- command should fail", name)
		}
	}
}

func TestProfileWithWorkloadAndMachineFiles(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	buf := capture(t)

	workload := filepath.Join(dir, "workload.json")
	if err := os.WriteFile(workload, []byte(`{
	  "command": "custom-app", "tags": {"case": "demo"},
	  "phases": [
	    {"name": "load", "read_mb": 20, "read_block_kb": 1024, "rss_start_mb": 10},
	    {"name": "solve", "compute_units": 100000, "flops_per_unit": 50000,
	     "write_mb": 5, "write_block_kb": 64, "rss_start_mb": 10, "rss_end_mb": 40, "blend": true}
	  ]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	machineFile := filepath.Join(dir, "machine.json")
	if err := os.WriteFile(machineFile, []byte(`{
	  "name": "clitest-cluster", "clock_ghz": 3.0, "cores": 8,
	  "mem_gb": 64, "mem_bw_gbs": 40
	}`), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := cmdProfile([]string{"-store", storeDir, "-machine-file", machineFile,
		"-rate", "2", "-workload", workload}); err != nil {
		t.Fatalf("profile -workload: %v", err)
	}
	if !strings.Contains(buf.String(), "custom-app") || !strings.Contains(buf.String(), "clitest-cluster") {
		t.Errorf("output = %q", buf.String())
	}

	buf.Reset()
	if err := cmdEmulate([]string{"-store", storeDir, "-machine-file", machineFile,
		"-tag", "case=demo", "--", "custom-app"}); err != nil {
		t.Fatalf("emulate on custom machine: %v", err)
	}
	if !strings.Contains(buf.String(), "clitest-cluster") {
		t.Errorf("emulate output = %q", buf.String())
	}
}

func TestLoadMachineFileErrors(t *testing.T) {
	if _, err := loadMachineFile("/nonexistent.json"); err == nil {
		t.Error("missing machine file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadMachineFile(bad); err == nil {
		t.Error("malformed machine file should fail")
	}
	if name, err := loadMachineFile(""); err != nil || name != "" {
		t.Error("empty path should be a no-op")
	}
}

// The -store flag accepts a synapsed URL: the CLI profiles into and
// emulates out of a live daemon without any other change.
func TestRemoteStoreFlag(t *testing.T) {
	ts := httptest.NewServer(storesrv.New(store.NewSharded(4), storesrv.Config{}))
	defer ts.Close()
	buf := capture(t)

	if err := cmdProfile([]string{"-machine", "thinkie", "-store", ts.URL,
		"-tag", "steps=50000", "--", "mdsim"}); err != nil {
		t.Fatalf("profile via daemon: %v", err)
	}
	if !strings.Contains(buf.String(), "profiled \"mdsim\"") {
		t.Errorf("profile output = %q", buf.String())
	}

	buf.Reset()
	if err := cmdEmulate([]string{"-machine", "stampede", "-store", ts.URL,
		"-tag", "steps=50000", "--", "mdsim"}); err != nil {
		t.Fatalf("emulate via daemon: %v", err)
	}
	if !strings.Contains(buf.String(), "emulated \"mdsim\" on stampede") {
		t.Errorf("emulate output = %q", buf.String())
	}

	buf.Reset()
	if err := cmdList([]string{"-store", ts.URL}); err != nil {
		t.Fatalf("list via daemon: %v", err)
	}
	if !strings.Contains(buf.String(), "mdsim steps=50000") {
		t.Errorf("list output = %q", buf.String())
	}
}
