package main

import (
	"context"
	"flag"
	"fmt"
	"strings"

	"synapse/internal/core"
	"synapse/internal/machine"
	"synapse/internal/render"
)

// cmdShow renders the latest stored profile for a command as ASCII charts.
func cmdShow(args []string) error {
	flagArgs, command := splitCommand(args)
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	storeDir := fs.String("store", "synapse-store", "profile store directory or synapsed URL (http://host:port)")
	width := fs.Int("width", 60, "chart width in columns")
	metric := fs.String("metric", "", "render only this metric's series")
	tags := tagsFlag{}
	fs.Var(tags, "tag", "profile tag k=v (repeatable)")
	if err := fs.Parse(flagArgs); err != nil {
		return err
	}
	if len(command) == 0 {
		return fmt.Errorf("show: no command given (use -- <command...>)")
	}
	st, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	set, err := st.Find(strings.Join(command, " "), tags)
	if err != nil {
		return err
	}
	p := set[len(set)-1]
	if *metric != "" {
		fmt.Fprint(stdout, render.Series(p, *metric, *width))
		return nil
	}
	fmt.Fprint(stdout, render.Profile(p, *width))
	return nil
}

// cmdTimeline emulates a stored profile and renders the replay Gantt.
func cmdTimeline(args []string) error {
	flagArgs, command := splitCommand(args)
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	machineName := fs.String("machine", machine.Thinkie, "machine model to emulate on")
	storeDir := fs.String("store", "synapse-store", "profile store directory or synapsed URL (http://host:port)")
	kernel := fs.String("kernel", "asm", "compute kernel")
	fsName := fs.String("fs", "", "target filesystem")
	width := fs.Int("width", 72, "chart width in columns")
	tags := tagsFlag{}
	fs.Var(tags, "tag", "profile tag k=v (repeatable)")
	if err := fs.Parse(flagArgs); err != nil {
		return err
	}
	if len(command) == 0 {
		return fmt.Errorf("timeline: no command given (use -- <command...>)")
	}
	st, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	rep, err := core.Emulate(context.Background(), st, strings.Join(command, " "), tags,
		core.EmulateOptions{Machine: *machineName, Kernel: *kernel, Filesystem: *fsName})
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, render.Gantt(rep, *width))
	return nil
}

// cmdVerify runs the paper's E.2 sanity check: emulate a stored profile,
// profile the emulation, and compare consumption metric by metric.
func cmdVerify(args []string) error {
	flagArgs, command := splitCommand(args)
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	machineName := fs.String("machine", machine.Thinkie, "machine model to emulate on")
	storeDir := fs.String("store", "synapse-store", "profile store directory or synapsed URL (http://host:port)")
	kernel := fs.String("kernel", "asm", "compute kernel")
	rate := fs.Float64("rate", 10, "re-profiling sample rate in Hz")
	tags := tagsFlag{}
	fs.Var(tags, "tag", "profile tag k=v (repeatable)")
	if err := fs.Parse(flagArgs); err != nil {
		return err
	}
	if len(command) == 0 {
		return fmt.Errorf("verify: no command given (use -- <command...>)")
	}
	st, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	ctx := context.Background()
	cmdline := strings.Join(command, " ")
	set, err := st.Find(cmdline, tags)
	if err != nil {
		return err
	}
	p := set[len(set)-1]
	rep, err := core.EmulateProfile(ctx, p, core.EmulateOptions{Machine: *machineName, Kernel: *kernel})
	if err != nil {
		return err
	}
	rows, err := core.VerifyEmulation(ctx, p, rep, *machineName, *rate)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "verification of %q on %s (kernel=%s):\n", cmdline, *machineName, *kernel)
	fmt.Fprintf(stdout, "%-20s %14s %14s %8s\n", "metric", "application", "emulation", "ratio")
	for _, r := range rows {
		fmt.Fprintf(stdout, "%-20s %14.5g %14.5g %8.3f\n", r.Metric, r.App, r.Emulated, r.Ratio)
	}
	return nil
}
