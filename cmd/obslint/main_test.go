package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"synapse/internal/telemetry"
)

// goodExposition renders a real scrape from a live registry so the lint
// input matches what /v1/metrics serves.
func goodExposition(t *testing.T) []byte {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.Counter("synapse_http_requests_total", "requests").Add(3)
	reg.Gauge("synapse_admission_queue_depth", "queued").Set(2)
	reg.Histogram("synapse_http_request_seconds", "latency", []float64{0.01, 0.1, 1}).Observe(0.05)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLintExpositionFromStdin(t *testing.T) {
	var out bytes.Buffer
	stdout = &out
	defer func() { stdout = os.Stdout }()
	err := run([]string{"-format", "exposition",
		"-require", "synapse_http_requests_total, synapse_http_request_seconds"},
		bytes.NewReader(goodExposition(t)))
	if err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if !strings.Contains(out.String(), "exposition ok") {
		t.Fatalf("missing summary: %q", out.String())
	}
}

func TestLintExpositionMissingFamily(t *testing.T) {
	stdout = &bytes.Buffer{}
	defer func() { stdout = os.Stdout }()
	err := run([]string{"-require", "synapse_no_such_family"}, bytes.NewReader(goodExposition(t)))
	if err == nil || !strings.Contains(err.Error(), "synapse_no_such_family") {
		t.Fatalf("missing family not reported: %v", err)
	}
}

func TestLintExpositionGarbage(t *testing.T) {
	stdout = &bytes.Buffer{}
	defer func() { stdout = os.Stdout }()
	if err := run(nil, strings.NewReader("<html>not metrics</html>\n")); err == nil {
		t.Fatal("garbage accepted as exposition")
	}
}

func TestLintTraceFile(t *testing.T) {
	var buf bytes.Buffer
	w := telemetry.NewTraceWriter(&buf)
	w.MetaProcessName(1, "workloads")
	w.AsyncBegin("mdsim", "instance", 1, 7, time.Microsecond, "")
	w.AsyncEnd("mdsim", "instance", 1, 7, 2*time.Microsecond, "")
	w.Counter("queued", 1, time.Microsecond, []string{"queued"}, []float64{3})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	stdout = &out
	defer func() { stdout = os.Stdout }()
	if err := run([]string{"-format", "trace", "-require", "b,e,C,M", path}, nil); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if !strings.Contains(out.String(), "trace ok") {
		t.Fatalf("missing summary: %q", out.String())
	}
	// A phase the trace lacks fails the lint.
	err := run([]string{"-format", "trace", "-require", "X", path}, nil)
	if err == nil || !strings.Contains(err.Error(), "missing required phases: X") {
		t.Fatalf("missing phase not reported: %v", err)
	}
}

func TestLintErrors(t *testing.T) {
	stdout = &bytes.Buffer{}
	defer func() { stdout = os.Stdout }()
	if err := run([]string{"-format", "yaml"}, strings.NewReader("")); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run([]string{"a.txt", "b.txt"}, nil); err == nil {
		t.Error("two input files accepted")
	}
	if err := run([]string{"/no/such/file.txt"}, nil); err == nil {
		t.Error("unreadable file accepted")
	}
}

func TestObslintVersionFlag(t *testing.T) {
	var out bytes.Buffer
	stdout = &out
	defer func() { stdout = os.Stdout }()
	if err := run([]string{"-version"}, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "obslint") || !strings.Contains(out.String(), "go1.") {
		t.Fatalf("version output incomplete: %q", out.String())
	}
}
