// obslint validates observability artifacts in CI: a Prometheus text
// exposition scraped from /v1/metrics, or a Chrome trace-event JSON file
// written by `synapse-sim -trace`. It exits non-zero when the artifact
// fails to parse or is missing a required metric family / trace phase,
// so a smoke job catches a telemetry regression before a dashboard does.
//
//	curl -s localhost:8080/v1/metrics | obslint -format exposition -require synapse_http_requests_total,synapse_admission_queue_depth
//	obslint -format trace -require X,b,e,C trace.json
//
// With a file argument it reads the file; otherwise stdin. -require is a
// comma-separated list: metric family names for exposition, trace-event
// phases (X, b, e, i, C, M) for trace.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"synapse/internal/telemetry"
)

// stdout is the output stream, replaceable in tests.
var stdout io.Writer = os.Stdout

func main() {
	if err := run(os.Args[1:], os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "obslint:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader) error {
	fs := flag.NewFlagSet("obslint", flag.ExitOnError)
	format := fs.String("format", "exposition", "artifact format: exposition or trace")
	require := fs.String("require", "", "comma-separated metric families (exposition) or event phases (trace) that must be present")
	version := fs.Bool("version", false, "print version and build information, then exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		telemetry.PrintVersion(stdout, "obslint")
		return nil
	}

	in := stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("at most one input file, got %d", fs.NArg())
	}
	data, err := io.ReadAll(in)
	if err != nil {
		return err
	}

	var required []string
	for _, r := range strings.Split(*require, ",") {
		if r = strings.TrimSpace(r); r != "" {
			required = append(required, r)
		}
	}

	switch *format {
	case "exposition":
		return lintExposition(data, required)
	case "trace":
		return lintTrace(data, required)
	default:
		return fmt.Errorf("unknown -format %q (want exposition or trace)", *format)
	}
}

func lintExposition(data []byte, required []string) error {
	exp, err := telemetry.ParseExposition(data)
	if err != nil {
		return fmt.Errorf("invalid exposition: %w", err)
	}
	var missing []string
	for _, name := range required {
		if !exp.Has(name) {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("exposition missing required families: %s", strings.Join(missing, ", "))
	}
	fmt.Fprintf(stdout, "exposition ok: %d families, %d series\n", len(exp.Families), exp.Series)
	return nil
}

func lintTrace(data []byte, required []string) error {
	sum, err := telemetry.ParseTrace(data)
	if err != nil {
		return fmt.Errorf("invalid trace: %w", err)
	}
	var missing []string
	for _, ph := range required {
		if sum.Phases[ph] == 0 {
			missing = append(missing, ph)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("trace missing required phases: %s", strings.Join(missing, ", "))
	}
	fmt.Fprintf(stdout, "trace ok: %d events\n", sum.Events)
	return nil
}
