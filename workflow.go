package synapse

import (
	"context"

	"synapse/internal/core"
	"synapse/internal/skeleton"
)

// Workflow re-exports the Application-Skeleton-style DAG layer: workflows of
// proxy tasks whose resource behaviour comes from Synapse profiles (paper
// §7's integration with Application Skeletons, and the substrate behind the
// AIMES and Ensemble-Toolkit use cases of §2).
type Workflow = skeleton.Skeleton

// WorkflowTask is one DAG node; its Configure hook adjusts the task's
// emulation (kernel, parallelism, I/O) via an EmulateConfig.
type WorkflowTask = skeleton.Task

// WorkflowStage describes one stage of NewPipeline.
type WorkflowStage = skeleton.Stage

// WorkflowResult is a workflow's schedule and makespan.
type WorkflowResult = skeleton.Result

// EmulateConfig is the per-task emulation configuration handed to
// WorkflowTask.Configure hooks.
type EmulateConfig = core.EmulateOptions

// NewPipeline builds a stage-barrier workflow: every task of one stage
// depends on every task of the previous stage.
func NewPipeline(name string, stages []WorkflowStage) *Workflow {
	return skeleton.Pipeline(name, stages)
}

// RunWorkflow profiles any missing task profiles on profileMachine (at
// 1 Hz), then executes the workflow on machineName with the given number of
// scheduler slots, using the store configured through opts.
func RunWorkflow(ctx context.Context, w *Workflow, machineName string, slots int, profileMachine string, opts ...Option) (*WorkflowResult, error) {
	o := buildOptions(opts)
	r := &skeleton.Runner{
		Store:   o.st,
		Machine: machineName,
		Slots:   slots,
	}
	if err := r.Profiles(ctx, w, profileMachine, 1); err != nil {
		return nil, err
	}
	return r.Run(ctx, w)
}
