package synapse

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestPublicProfileEmulateRoundTrip(t *testing.T) {
	ctx := context.Background()
	st := NewMemStore()
	tags := map[string]string{"steps": "300000"}

	p, err := Profile(ctx, "mdsim", tags, OnMachine(Thinkie), AtRate(2), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration <= 0 {
		t.Fatal("profile has no duration")
	}

	rep, err := Emulate(ctx, "mdsim", tags, OnMachine(Thinkie), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	diff := math.Abs(rep.Tx.Seconds()-p.Duration.Seconds()) / p.Duration.Seconds()
	if diff > 0.25 {
		t.Errorf("same-machine round trip diff = %.0f%%", diff*100)
	}
}

func TestDefaultStoreFlow(t *testing.T) {
	// Swap in a fresh default store to isolate the test.
	prev := SetDefaultStore(NewMemStore())
	defer SetDefaultStore(prev)

	ctx := context.Background()
	tags := map[string]string{"steps": "50000"}
	if _, err := Profile(ctx, "mdsim", tags, OnMachine(Comet), AtRate(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := Emulate(ctx, "mdsim", tags, OnMachine(Comet)); err != nil {
		t.Fatal(err)
	}
	set, err := Profiles("mdsim", tags)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Errorf("default store holds %d profiles", len(set))
	}
}

func TestCrossMachineEmulationPublic(t *testing.T) {
	prev := SetDefaultStore(NewMemStore())
	defer SetDefaultStore(prev)
	ctx := context.Background()
	tags := map[string]string{"steps": "2000000"}
	if _, err := Profile(ctx, "mdsim", tags, OnMachine(Thinkie), AtRate(1)); err != nil {
		t.Fatal(err)
	}
	repS, err := Emulate(ctx, "mdsim", tags, OnMachine(Stampede))
	if err != nil {
		t.Fatal(err)
	}
	repA, err := Emulate(ctx, "mdsim", tags, OnMachine(Archer))
	if err != nil {
		t.Fatal(err)
	}
	if repS.Machine != Stampede || repA.Machine != Archer {
		t.Error("reports carry wrong machine names")
	}
	// Same cycles replayed, different clocks and biases → different Tx.
	if repS.Tx == repA.Tx {
		t.Error("cross-machine emulations should differ")
	}
}

func TestParallelOptionsPublic(t *testing.T) {
	prev := SetDefaultStore(NewMemStore())
	defer SetDefaultStore(prev)
	ctx := context.Background()
	tags := map[string]string{"steps": "1000000"}
	if _, err := Profile(ctx, "mdsim", tags, OnMachine(Thinkie), AtRate(1)); err != nil {
		t.Fatal(err)
	}
	serial, err := Emulate(ctx, "mdsim", tags, OnMachine(Titan), WithoutAtoms("storage", "memory"))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Emulate(ctx, "mdsim", tags, OnMachine(Titan),
		WithWorkers(16, OpenMP), WithoutAtoms("storage", "memory"))
	if err != nil {
		t.Fatal(err)
	}
	if par.Tx >= serial.Tx {
		t.Errorf("parallel emulation (%v) should beat serial (%v)", par.Tx, serial.Tx)
	}
}

func TestMachinesAndTable(t *testing.T) {
	ms := Machines()
	if len(ms) != 6 {
		t.Errorf("Machines() = %v", ms)
	}
	tbl := MetricsTable()
	if !strings.Contains(tbl, "cycles used") || !strings.Contains(tbl, "Emul.") {
		t.Error("MetricsTable missing expected content")
	}
}

func TestEmulateUnprofiledFails(t *testing.T) {
	prev := SetDefaultStore(NewMemStore())
	defer SetDefaultStore(prev)
	if _, err := Emulate(context.Background(), "mdsim", map[string]string{"steps": "7"}, OnMachine(Thinkie)); err == nil {
		t.Error("emulating an unknown profile should fail")
	}
}

func TestFileStorePublic(t *testing.T) {
	st, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tags := map[string]string{"steps": "10000"}
	if _, err := Profile(ctx, "mdsim", tags, OnMachine(Thinkie), AtRate(5), WithStore(st)); err != nil {
		t.Fatal(err)
	}
	if _, err := Emulate(ctx, "mdsim", tags, OnMachine(Thinkie), WithStore(st)); err != nil {
		t.Fatal(err)
	}
}

func TestIOKnobsPublic(t *testing.T) {
	prev := SetDefaultStore(NewMemStore())
	defer SetDefaultStore(prev)
	ctx := context.Background()
	tags := map[string]string{"bytes": "268435456", "block": "1048576", "fs": "lustre"}
	if _, err := Profile(ctx, "synapse-iobench", tags, OnMachine(Titan), AtRate(1)); err != nil {
		t.Fatal(err)
	}
	smallBlocks, err := Emulate(ctx, "synapse-iobench", tags, OnMachine(Titan),
		WithIOBlocks(4096, 4096), WithFilesystem("lustre"))
	if err != nil {
		t.Fatal(err)
	}
	bigBlocks, err := Emulate(ctx, "synapse-iobench", tags, OnMachine(Titan),
		WithIOBlocks(16<<20, 16<<20), WithFilesystem("lustre"))
	if err != nil {
		t.Fatal(err)
	}
	if smallBlocks.Tx <= bigBlocks.Tx {
		t.Errorf("small blocks (%v) should be slower than big blocks (%v)", smallBlocks.Tx, bigBlocks.Tx)
	}
}

func TestPublicWorkflow(t *testing.T) {
	prev := SetDefaultStore(NewMemStore())
	defer SetDefaultStore(prev)
	ctx := context.Background()
	wf := NewPipeline("test", []WorkflowStage{
		{Name: "sim", Width: 3, Command: "mdsim", Tags: map[string]string{"steps": "50000"}},
		{Name: "post", Width: 1, Command: "mdsim", Tags: map[string]string{"steps": "20000"}},
	})
	res, err := RunWorkflow(ctx, wf, Titan, 3, Thinkie)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 4 {
		t.Fatalf("ran %d tasks", len(res.Tasks))
	}
	if res.Makespan <= 0 || res.Makespan < res.CriticalPathLength(wf) {
		t.Errorf("makespan %v vs critical path %v", res.Makespan, res.CriticalPathLength(wf))
	}
	// Per-task Configure hooks work through the public alias.
	wf2 := &Workflow{Name: "cfg", Tasks: []WorkflowTask{{
		ID: "t", Command: "mdsim", Tags: map[string]string{"steps": "50000"},
		Configure: func(o *EmulateConfig) { o.Kernel = "c" },
	}}}
	res2, err := RunWorkflow(ctx, wf2, Comet, 1, Thinkie)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Tasks[0].Report.Kernel != "c" {
		t.Errorf("configure hook ignored: kernel = %q", res2.Tasks[0].Report.Kernel)
	}
}
