package synapse

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5). Each benchmark regenerates its artifact through
// internal/exp at the quick configuration and reports the headline numbers
// the paper quotes as custom metrics, so `go test -bench=.` doubles as a
// reproduction run. cmd/synapse-exp produces the full-scale tables.

import (
	"strconv"
	"strings"
	"testing"

	"synapse/internal/exp"
)

// benchTable runs fn once per iteration and returns the last table.
func benchTable(b *testing.B, fn func(exp.Config) (*exp.Table, error)) *exp.Table {
	b.Helper()
	var tbl *exp.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = fn(exp.QuickConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

// cell parses a numeric table cell, stripping formatting.
func cell(b *testing.B, s string) float64 {
	b.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	s = strings.TrimPrefix(s, "+")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", s, err)
	}
	return v
}

// BenchmarkTable1Metrics regenerates paper Table 1 (the metric registry).
func BenchmarkTable1Metrics(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(exp.Table1().Rows)
	}
	b.ReportMetric(float64(rows), "metrics")
}

// BenchmarkFig2SamplingEffects regenerates Fig 2: coarser sampling overlaps
// serialized consumption and shortens the replay.
func BenchmarkFig2SamplingEffects(b *testing.B) {
	tbl := benchTable(b, exp.Fig2)
	fine := cell(b, tbl.Rows[0][2])
	coarse := cell(b, tbl.Rows[len(tbl.Rows)-1][2])
	b.ReportMetric(coarse/fine, "coarse_fine_tx_ratio")
}

// BenchmarkFig3SamplePortability regenerates Fig 3: the dominant resource
// per sample flips across machines while sample order is preserved.
func BenchmarkFig3SamplePortability(b *testing.B) {
	tbl := benchTable(b, exp.Fig3)
	b.ReportMetric(float64(len(tbl.Rows)), "machines")
}

// BenchmarkFig4ProfilingOverhead regenerates Fig 4: profiling overhead is
// negligible across sampling rates and problem sizes.
func BenchmarkFig4ProfilingOverhead(b *testing.B) {
	tbl := benchTable(b, exp.Fig4)
	var worst float64
	for _, row := range tbl.Rows {
		if d := cell(b, row[len(row)-1]); d > worst {
			worst = d
		}
	}
	b.ReportMetric(worst, "max_overhead_%")
}

// BenchmarkFig5EmulationSameResource regenerates Fig 5: emulation vs
// execution on the profiling resource (Thinkie).
func BenchmarkFig5EmulationSameResource(b *testing.B) {
	tbl := benchTable(b, exp.Fig5)
	last := tbl.Rows[len(tbl.Rows)-1]
	b.ReportMetric(cell(b, last[3]), "converged_diff_%")
}

// BenchmarkFig6aProfilingConsistency regenerates Fig 6 top: CPU operation
// totals are independent of the sampling rate.
func BenchmarkFig6aProfilingConsistency(b *testing.B) {
	tbl := benchTable(b, exp.Fig6Top)
	var worst float64
	for _, row := range tbl.Rows {
		if s := cell(b, row[len(row)-1]); s > worst {
			worst = s
		}
	}
	b.ReportMetric(worst, "worst_spread_%")
}

// BenchmarkFig6bMemoryConsistency regenerates Fig 6 bottom: sampled resident
// memory is underestimated at low sampling rates.
func BenchmarkFig6bMemoryConsistency(b *testing.B) {
	tbl := benchTable(b, exp.Fig6Bottom)
	row := tbl.Rows[0]
	low := cell(b, row[1])
	high := cell(b, row[len(row)-1])
	b.ReportMetric(low/high, "low_rate_rss_fraction")
}

// BenchmarkFig7aPortabilityStampede regenerates Fig 7 top: emulation on
// Stampede converges to ≈40% faster than native execution.
func BenchmarkFig7aPortabilityStampede(b *testing.B) {
	tbl := benchTable(b, exp.Fig7)
	last := tbl.Rows[len(tbl.Rows)-1]
	b.ReportMetric(cell(b, last[3]), "stampede_diff_%")
}

// BenchmarkFig7bPortabilityArcher regenerates Fig 7 bottom: emulation on
// Archer converges to ≈33% slower than native execution.
func BenchmarkFig7bPortabilityArcher(b *testing.B) {
	tbl := benchTable(b, exp.Fig7)
	last := tbl.Rows[len(tbl.Rows)-1]
	b.ReportMetric(cell(b, last[6]), "archer_diff_%")
}

// e3Converged extracts the largest-size C and ASM errors for a machine.
func e3Converged(b *testing.B, tbl *exp.Table, machineName string) (cErr, asmErr float64) {
	b.Helper()
	for _, row := range tbl.Rows {
		if row[0] == machineName && row[1] == "100k" {
			return cell(b, row[4]), cell(b, row[6])
		}
	}
	b.Fatalf("no converged row for %s", machineName)
	return 0, 0
}

// BenchmarkFig8KernelCycles regenerates Fig 8: cycles consumed by the C and
// ASM kernel emulations vs the application.
func BenchmarkFig8KernelCycles(b *testing.B) {
	tbl := benchTable(b, func(c exp.Config) (*exp.Table, error) { return exp.Fig8to11(c, exp.MetricCycles) })
	cErr, asmErr := e3Converged(b, tbl, "comet")
	b.ReportMetric(cErr, "comet_c_err_%")
	b.ReportMetric(asmErr, "comet_asm_err_%")
}

// BenchmarkFig9KernelTx regenerates Fig 9: Tx of the kernel emulations.
func BenchmarkFig9KernelTx(b *testing.B) {
	tbl := benchTable(b, func(c exp.Config) (*exp.Table, error) { return exp.Fig8to11(c, exp.MetricTx) })
	cErr, asmErr := e3Converged(b, tbl, "supermic")
	b.ReportMetric(cErr, "supermic_c_err_%")
	b.ReportMetric(asmErr, "supermic_asm_err_%")
}

// BenchmarkFig10KernelInstructions regenerates Fig 10: instructions executed.
func BenchmarkFig10KernelInstructions(b *testing.B) {
	tbl := benchTable(b, func(c exp.Config) (*exp.Table, error) { return exp.Fig8to11(c, exp.MetricInstructions) })
	cErr, asmErr := e3Converged(b, tbl, "comet")
	b.ReportMetric(cErr, "comet_c_err_%")
	b.ReportMetric(asmErr, "comet_asm_err_%")
}

// BenchmarkFig11InstructionRate regenerates Fig 11: instructions per cycle
// for the application and both kernels.
func BenchmarkFig11InstructionRate(b *testing.B) {
	tbl := benchTable(b, func(c exp.Config) (*exp.Table, error) { return exp.Fig8to11(c, exp.MetricIPC) })
	for _, row := range tbl.Rows {
		if row[0] == "comet" && row[1] == "100k" {
			b.ReportMetric(cell(b, row[2]), "comet_app_ipc")
			b.ReportMetric(cell(b, row[3]), "comet_c_ipc")
			b.ReportMetric(cell(b, row[5]), "comet_asm_ipc")
		}
	}
}

// BenchmarkFig12ParallelEmulation regenerates Fig 12: OpenMP/MPI emulation
// scaling with the Titan/Supermic crossover.
func BenchmarkFig12ParallelEmulation(b *testing.B) {
	tbl := benchTable(b, exp.Fig12)
	for _, row := range tbl.Rows {
		if row[0] == "16" {
			b.ReportMetric(cell(b, row[1]), "titan_omp_s")
			b.ReportMetric(cell(b, row[2]), "titan_mpi_s")
		}
		if row[0] == "20" && row[3] != "-" {
			b.ReportMetric(cell(b, row[3]), "supermic_omp_s")
			b.ReportMetric(cell(b, row[4]), "supermic_mpi_s")
		}
	}
}

// BenchmarkFig13GromacsOpenMP regenerates Fig 13: the native application's
// OpenMP scaling baseline on Titan.
func BenchmarkFig13GromacsOpenMP(b *testing.B) {
	tbl := benchTable(b, exp.Fig13)
	last := tbl.Rows[len(tbl.Rows)-1]
	b.ReportMetric(cell(b, last[2]), "fullnode_speedup_x")
}

// BenchmarkFig14GromacsMPI regenerates Fig 14: the native application's MPI
// scaling baseline on Titan.
func BenchmarkFig14GromacsMPI(b *testing.B) {
	tbl := benchTable(b, exp.Fig14)
	last := tbl.Rows[len(tbl.Rows)-1]
	b.ReportMetric(cell(b, last[2]), "fullnode_speedup_x")
}

// BenchmarkFig15IOGranularity regenerates Fig 15: I/O emulation across
// filesystems and block sizes.
func BenchmarkFig15IOGranularity(b *testing.B) {
	tbl := benchTable(b, exp.Fig15)
	for _, row := range tbl.Rows {
		if row[0] == "titan" && row[1] == "lustre" && row[2] == "64MB" {
			w := cell(b, row[3])
			r := cell(b, row[5])
			b.ReportMetric(w/r, "lustre_write_read_ratio")
		}
	}
}
