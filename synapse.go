// Package synapse is a Go implementation of Synapse, the SYNthetic
// Application Profiler and Emulator (Merzky, Ha, Turilli, Jha — IPPS 2016,
// arXiv:1808.00684).
//
// Synapse acts as a proxy application: it profiles a real or synthetic
// application's resource consumption (CPU cycles and instructions, memory,
// storage and network traffic) with a sampling, black-box profiler, stores
// the profile indexed by command line and tags, and later emulates the
// application by consuming the same resources in the same order on an
// arbitrary target resource — "profile once, emulate anywhere".
//
// The API mirrors the paper's Python module:
//
//	p, err := synapse.Profile(ctx, "mdsim", map[string]string{"steps": "50000"},
//	        synapse.OnMachine("thinkie"), synapse.AtRate(10))
//	rep, err := synapse.Emulate(ctx, "mdsim", map[string]string{"steps": "50000"},
//	        synapse.OnMachine("stampede"))
//
// Execution is simulated by default: commands resolve to synthetic workload
// models running on calibrated machine models (see DESIGN.md for the
// substitution rationale), which makes every experiment deterministic and
// laptop-fast. WithRealExecution switches to actually spawning processes and
// consuming host resources.
//
// Beyond single replays, RunWorkflow executes DAGs of profiled tasks
// (Application-Skeleton style, paper §7) and RunScenario schedules
// declarative workload mixes — profiles arriving over time on shared,
// capacity-limited resources — returning deterministic aggregate reports
// (docs/scenarios.md).
package synapse

import (
	"context"
	"sync"
	"time"

	"synapse/internal/core"
	"synapse/internal/emulator"
	"synapse/internal/machine"
	"synapse/internal/profile"
	"synapse/internal/store"
	"synapse/internal/storeclnt"
)

// ProfileData is a finished application profile: sample time series,
// integrated totals, and the identity used to store and retrieve it.
type ProfileData = profile.Profile

// Report is the outcome of an emulation run.
type Report = emulator.Report

// Store persists profiles; see NewMemStore and NewFileStore.
type Store = store.Store

// Set is a collection of repeated profiles of one command/tags combination.
type Set = profile.Set

// Mode selects thread- or process-based parallel emulation.
type Mode = machine.Mode

// Parallelism modes for WithWorkers.
const (
	Serial = machine.ModeSerial
	OpenMP = machine.ModeOpenMP
	MPI    = machine.ModeMPI
)

// Catalog machine names accepted by OnMachine. "host" selects the real host.
const (
	Thinkie  = machine.Thinkie
	Stampede = machine.Stampede
	Archer   = machine.Archer
	Supermic = machine.Supermic
	Comet    = machine.Comet
	Titan    = machine.Titan
	Host     = machine.HostName
)

// Option configures Profile and Emulate calls.
type Option func(*options)

type options struct {
	prof core.ProfileOptions
	emul core.EmulateOptions
	st   store.Store
	// scenWorkers bounds RunScenario's emulation fan-out (0 = all cores).
	scenWorkers int
}

// OnMachine selects the machine (catalog name or "host") to profile or
// emulate on.
func OnMachine(name string) Option {
	return func(o *options) {
		o.prof.Machine = name
		o.emul.Machine = name
	}
}

// AtRate sets the profiler sampling rate in Hz (clamped to 10 Hz, the
// paper's perf-stat limit).
func AtRate(hz float64) Option {
	return func(o *options) { o.prof.SampleRate = hz }
}

// WithAdaptiveSampling enables the adaptive schedule proposed in the paper's
// future work: 10 Hz during the startup window, the configured rate after.
func WithAdaptiveSampling(window time.Duration) Option {
	return func(o *options) {
		o.prof.Adaptive = true
		o.prof.AdaptiveWindow = window
	}
}

// WithStore routes profiles through the given store instead of the
// process-wide default store.
func WithStore(s Store) Option {
	return func(o *options) { o.st = s }
}

// WithRealExecution spawns real processes (Profile) and consumes real host
// resources (Emulate) instead of simulating.
func WithRealExecution() Option {
	return func(o *options) {
		o.prof.Real = true
		o.emul.Real = true
		if o.prof.Machine == "" {
			o.prof.Machine = machine.HostName
		}
		if o.emul.Machine == "" {
			o.emul.Machine = machine.HostName
		}
	}
}

// WithConcurrentWatchers runs one goroutine per watcher with its own,
// unsynchronized timestamps — the paper's threading model (§4.1). Applies to
// real-clock profiling runs.
func WithConcurrentWatchers() Option {
	return func(o *options) { o.prof.Concurrent = true }
}

// WithSeed seeds the simulated execution's reproducible noise.
func WithSeed(seed uint64) Option {
	return func(o *options) { o.prof.Seed = seed }
}

// WithJitter enables run-to-run noise in simulated executions (error bars).
func WithJitter() Option {
	return func(o *options) {
		o.prof.Jitter = true
		o.prof.CounterNoise = 0.001
	}
}

// WithLoad emulates execution on an artificially stressed system: load is
// the fraction of CPU capacity consumed by background activity.
func WithLoad(load float64) Option {
	return func(o *options) {
		o.prof.Load = load
		o.emul.Load = load
	}
}

// WithStress forces artificial CPU, disk and memory background load onto
// the emulation — the paper's full stress capability (§4.3, the Linux
// `stress` analogue). Each fraction is in [0, 1).
func WithStress(cpu, disk, mem float64) Option {
	return func(o *options) {
		o.emul.Load = cpu
		o.emul.DiskLoad = disk
		o.emul.MemLoad = mem
	}
}

// WithKernel selects the emulation compute kernel: "asm" (default, the
// paper's cache-resident assembly kernel), "c" (out-of-cache), or a user
// kernel registered with internal/kernels.
func WithKernel(name string) Option {
	return func(o *options) { o.emul.Kernel = name }
}

// WithWorkers injects parallelism into the emulation: n OpenMP-style threads
// or MPI-style processes (paper experiment E.4).
func WithWorkers(n int, mode Mode) Option {
	return func(o *options) {
		o.emul.Workers = n
		o.emul.Mode = mode
	}
}

// WithIOBlocks tunes the emulation's I/O granularity in bytes (paper E.5).
func WithIOBlocks(read, write int64) Option {
	return func(o *options) {
		o.emul.ReadBlock = read
		o.emul.WriteBlock = write
	}
}

// WithProfiledBlocks derives I/O granularity from the profiled operation
// counts instead of static blocks (the blktrace-informed future-work mode).
func WithProfiledBlocks() Option {
	return func(o *options) { o.emul.UseProfiledBlocks = true }
}

// WithFilesystem targets a specific filesystem of the emulation machine
// ("local", "lustre", "nfs").
func WithFilesystem(fs string) Option {
	return func(o *options) { o.emul.Filesystem = fs }
}

// WithScratchDir sets where real-mode storage emulation writes its files.
func WithScratchDir(dir string) Option {
	return func(o *options) { o.emul.ScratchDir = dir }
}

// WithoutAtoms disables the named atoms ("storage", "memory", "network") —
// the paper disables memory and storage emulation in experiments E.3/E.4.
func WithoutAtoms(names ...string) Option {
	return func(o *options) {
		for _, n := range names {
			switch n {
			case "storage":
				o.emul.DisableStorage = true
			case "memory":
				o.emul.DisableMemory = true
			case "network":
				o.emul.DisableNetwork = true
			}
		}
	}
}

// WithStartupDelay overrides the emulator's modeled startup cost (negative
// disables it).
func WithStartupDelay(d time.Duration) Option {
	return func(o *options) { o.emul.StartupDelay = d }
}

// defaultStore is the process-wide profile store used when no WithStore
// option is given, mirroring the paper's implicit MongoDB connection. Guarded
// by defaultStoreMu: Profile/Emulate calls race with SetDefaultStore in
// concurrent experiment drivers.
var (
	defaultStoreMu sync.RWMutex
	defaultStore   Store = store.NewMem()
)

// SetDefaultStore replaces the process-wide store and returns the previous
// one. Safe for concurrent use with Profile/Emulate.
func SetDefaultStore(s Store) Store {
	defaultStoreMu.Lock()
	defer defaultStoreMu.Unlock()
	prev := defaultStore
	defaultStore = s
	return prev
}

// DefaultStore returns the process-wide store.
func DefaultStore() Store {
	defaultStoreMu.RLock()
	defer defaultStoreMu.RUnlock()
	return defaultStore
}

// NewMemStore returns an in-memory MongoDB-like store (16 MB per-document
// limit, ≈250k samples — paper §4.5).
func NewMemStore() Store { return store.NewMem() }

// NewFileStore returns a directory-backed store with no sample limit.
func NewFileStore(dir string) (Store, error) { return store.NewFile(dir) }

// NewShardedStore returns an in-memory store partitioned across n
// lock-striped shards (n <= 0 selects a default), so concurrent Put/Find do
// not serialize on one mutex. Semantics (document limit, ordering) match
// NewMemStore; it is the backend synapsed runs by default.
func NewShardedStore(n int) Store { return store.NewSharded(n) }

// NewRemoteStore returns a client for a synapsed profile service (e.g.
// "http://stampede:8181"): a drop-in Store whose backend is shared between
// processes and machines — the paper's "profile once, emulate anywhere"
// workflow (§4). The client reuses connections, retries idempotent requests,
// and caches hot profile reads, revalidating them against the server's
// per-key generation counter.
func NewRemoteStore(url string) Store { return storeclnt.New(url) }

func buildOptions(opts []Option) *options {
	o := &options{}
	for _, fn := range opts {
		fn(o)
	}
	if o.st == nil {
		o.st = DefaultStore()
	}
	o.prof.Store = o.st
	return o
}

// Profile profiles one execution of command (identified together with tags)
// and stores the resulting profile. Simulated by default; see
// WithRealExecution.
func Profile(ctx context.Context, command string, tags map[string]string, opts ...Option) (*ProfileData, error) {
	o := buildOptions(opts)
	return core.ProfileCommandString(ctx, command, tags, o.prof)
}

// Emulate retrieves the stored profile for command/tags and replays it on
// the configured machine, returning the run report.
func Emulate(ctx context.Context, command string, tags map[string]string, opts ...Option) (*Report, error) {
	o := buildOptions(opts)
	return core.Emulate(ctx, o.st, command, tags, o.emul)
}

// EmulateProfile replays an explicit profile (bypassing the store lookup).
func EmulateProfile(ctx context.Context, p *ProfileData, opts ...Option) (*Report, error) {
	o := buildOptions(opts)
	return core.EmulateProfile(ctx, p, o.emul)
}

// Profiles returns every stored profile for command/tags.
func Profiles(command string, tags map[string]string, opts ...Option) (Set, error) {
	o := buildOptions(opts)
	return core.Lookup(context.Background(), o.st, command, tags)
}

// Machines lists the built-in machine models (the paper's six testbeds).
func Machines() []string { return machine.Names() }

// MetricsTable renders the supported-metrics table (paper Table 1).
func MetricsTable() string { return profile.Table1() }
