module synapse

go 1.24
