package synapse

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"synapse/internal/store"
	"synapse/internal/storesrv"
)

// startService runs an in-process synapsed (sharded backend) and returns its
// base URL.
func startService(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(storesrv.New(store.NewSharded(8), storesrv.Config{}))
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestRemoteStoreProfileOnceEmulateAnywhere is the paper's §4 workflow over
// the service: one client profiles, an independent client (a second process
// in production) emulates, and the emulation matches what a local store
// would have produced byte for byte.
func TestRemoteStoreProfileOnceEmulateAnywhere(t *testing.T) {
	ctx := context.Background()
	url := startService(t)
	tags := map[string]string{"steps": "100000"}

	// Profiling host: writes through its own remote client.
	profiler := NewRemoteStore(url)
	defer profiler.Close()
	p, err := Profile(ctx, "mdsim", tags, OnMachine(Thinkie), AtRate(2), WithStore(profiler))
	if err != nil {
		t.Fatal(err)
	}

	// Emulation host: a different client, no shared state but the daemon.
	emulator := NewRemoteStore(url)
	defer emulator.Close()
	remoteRep, err := Emulate(ctx, "mdsim", tags, OnMachine(Stampede), WithStore(emulator))
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same emulation fed directly from the profile.
	localRep, err := EmulateProfile(ctx, p, OnMachine(Stampede))
	if err != nil {
		t.Fatal(err)
	}
	remoteJSON, err := json.Marshal(remoteRep)
	if err != nil {
		t.Fatal(err)
	}
	localJSON, err := json.Marshal(localRep)
	if err != nil {
		t.Fatal(err)
	}
	if string(remoteJSON) != string(localJSON) {
		t.Errorf("remote-store emulation diverged from local:\nremote %s\nlocal  %s",
			remoteJSON, localJSON)
	}
}

// The remote store is a drop-in for the workflow runner too.
func TestRemoteStoreWorkflow(t *testing.T) {
	url := startService(t)
	st := NewRemoteStore(url)
	defer st.Close()
	w := NewPipeline("svc", []WorkflowStage{
		{Name: "sim", Width: 2, Command: "mdsim", Tags: map[string]string{"steps": "20000"}},
	})
	res, err := RunWorkflow(context.Background(), w, Stampede, 2, Thinkie, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestShardedStorePublic(t *testing.T) {
	ctx := context.Background()
	st := NewShardedStore(8)
	defer st.Close()
	tags := map[string]string{"steps": "50000"}
	if _, err := Profile(ctx, "mdsim", tags, OnMachine(Thinkie), WithStore(st)); err != nil {
		t.Fatal(err)
	}
	if _, err := Emulate(ctx, "mdsim", tags, OnMachine(Thinkie), WithStore(st)); err != nil {
		t.Fatal(err)
	}
}

// TestDefaultStoreConcurrentAccess exercises the SetDefaultStore /
// DefaultStore / buildOptions triangle under -race (the process-wide
// variable used to be unsynchronized).
func TestDefaultStoreConcurrentAccess(t *testing.T) {
	prev := SetDefaultStore(NewMemStore())
	defer SetDefaultStore(prev)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				SetDefaultStore(NewMemStore())
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if DefaultStore() == nil {
					t.Error("DefaultStore returned nil")
					return
				}
				// buildOptions reads the default when no WithStore is given.
				o := buildOptions(nil)
				if o.st == nil {
					t.Error("buildOptions picked up a nil store")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Ensure the public aliases still satisfy the interface contract the rest of
// the API expects.
func TestStoreConstructorsReturnStores(t *testing.T) {
	for name, st := range map[string]Store{
		"mem":     NewMemStore(),
		"sharded": NewShardedStore(4),
	} {
		if reflect.ValueOf(st).IsNil() {
			t.Errorf("%s constructor returned nil", name)
		}
		_ = st.Close()
	}
}
