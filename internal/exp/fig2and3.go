package exp

import (
	"fmt"
	"time"

	"synapse/internal/core"
	"synapse/internal/emulator"
	"synapse/internal/machine"
	"synapse/internal/profile"
)

// fig2Profile builds the paper's illustrative workload: alternating
// compute-dominated and storage-dominated sampling periods, with some
// samples carrying both (paper Fig 2's mix of serial and concurrent
// consumption). rate is the profiling rate in Hz.
func fig2Profile(rate float64) *profile.Profile {
	p := profile.New("fig2-workload", map[string]string{"rate": fmt.Sprintf("%g", rate)})
	p.SampleRate = rate
	period := time.Duration(float64(time.Second) / rate)
	// Pattern per second of application time (at 1 Hz one sample each):
	// compute-only, storage-only, mixed, compute-only, mixed.
	type beat struct{ cyc, bytes float64 }
	pattern := []beat{
		{2.66e9, 0},
		{0, 128 << 20},
		{2.66e9, 128 << 20},
		{2.66e9, 0},
		{1.33e9, 64 << 20},
	}
	n := int(rate) // samples per pattern beat (rate >= 1)
	if n < 1 {
		n = 1
	}
	t := time.Duration(0)
	for _, b := range pattern {
		for i := 0; i < n; i++ {
			t += period
			v := map[string]float64{}
			if b.cyc > 0 {
				v[profile.MetricCPUCycles] = b.cyc / float64(n)
			}
			if b.bytes > 0 {
				v[profile.MetricIOWriteBytes] = b.bytes / float64(n)
			}
			_ = p.Append(profile.Sample{T: t, Values: v})
		}
	}
	p.Finalize(t)
	return p
}

// emulateFig2 replays a Fig 2 profile without driver costs, so the timeline
// reflects pure sampling semantics. These two figures read the per-sample
// timeline (DominantAtom), so they keep the full trace.
func emulateFig2(p *profile.Profile, machineName string) (*emulator.Report, error) {
	return emulate(p, machineName, func(o *core.EmulateOptions) {
		o.StartupDelay = -1
		o.SampleOverhead = -1
		o.DisableMemory = true
		o.DisableNetwork = true
		o.TraceLevel = emulator.TraceFull
	})
}

// Fig2 reproduces the paper's sampling-effects illustration (§4.4): a
// coarser profile merges adjacent compute-only and storage-only periods
// into single samples, so their replay overlaps consumption that the
// application serialized — the emulation speeds up. A finer profile
// re-introduces the serialization (the paper's "Emulation 2").
func Fig2(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig2",
		Title:   "Sampling effects: emulation of the same workload at three sampling granularities (Thinkie)",
		Columns: []string{"profile", "samples", "emulated Tx (s)", "compute busy (s)", "storage busy (s)", "dominant sequence"},
	}
	fine := fig2Profile(2)
	var txByRate []float64
	for _, rate := range []float64{2, 1, 0.5} {
		p := fine
		if rate != 2 {
			var err error
			p, err = profile.Resample(fine, rate)
			if err != nil {
				return nil, err
			}
		}
		rep, err := leafCell(cfg, func() (*emulator.Report, error) {
			return emulateFig2(p, machine.Thinkie)
		})
		if err != nil {
			return nil, err
		}
		seq := ""
		for i := range rep.Trace {
			switch rep.DominantAtom(i) {
			case "compute":
				seq += "C"
			case "storage":
				seq += "S"
			default:
				seq += "."
			}
		}
		if len(seq) > 20 {
			seq = seq[:20] + "…"
		}
		t.Add(fmt.Sprintf("%.1f Hz", rate), fmt.Sprintf("%d", rep.Samples),
			fmtSec(rep.Tx.Seconds()),
			fmtSec(rep.BusyTime("compute").Seconds()),
			fmtSec(rep.BusyTime("storage").Seconds()),
			seq)
		txByRate = append(txByRate, rep.Tx.Seconds())
	}
	t.Note("all replays consume identical resources; coarser sampling overlaps serialized consumption and shortens the emulation (%.2fs at 2Hz -> %.2fs at 0.5Hz), exactly the paper's Emulation-1-vs-2 effect", txByRate[0], txByRate[2])
	return t, nil
}

// Fig3 reproduces the paper's sample-portability illustration (§4.4): the
// same profile replayed on a machine with a faster CPU but slower disk flips
// which resource dominates several samples, while the order of operations is
// preserved.
func Fig3(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig3",
		Title:   "Sample portability: dominant resource per sample across machines",
		Columns: []string{"machine", "emulated Tx (s)", "per-sample dominant atom"},
	}
	p := fig2Profile(1)
	domSeqs := map[string]string{}
	// Thinkie: fast local SSD, modest CPU. Supermic+Lustre: much faster
	// CPU, much slower (shared) writes — the paper's "CPU is 25% faster,
	// disk is 50% slower" scenario, amplified.
	for _, mn := range []string{machine.Thinkie, machine.Supermic} {
		rep, err := leafCell(cfg, func() (*emulator.Report, error) {
			return emulateFig2(p, mn)
		})
		if err != nil {
			return nil, err
		}
		seq := ""
		for i := range rep.Trace {
			switch rep.DominantAtom(i) {
			case "compute":
				seq += "C"
			case "storage":
				seq += "S"
			default:
				seq += "."
			}
		}
		domSeqs[mn] = seq
		t.Add(mn, fmtSec(rep.Tx.Seconds()), seq)
	}
	t.Note("the dominating resource flips for mixed samples (thinkie %s vs supermic %s) while the sample order is preserved — the mechanism behind profile portability",
		domSeqs[machine.Thinkie], domSeqs[machine.Supermic])
	return t, nil
}
