package exp

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestRunCellsOrderAndStealing(t *testing.T) {
	n := 100
	out, err := runCells(Config{Workers: 8}, n, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d (ordering broken)", i, v, i*i)
		}
	}
}

func TestRunCellsFirstErrorByIndex(t *testing.T) {
	boom7 := errors.New("cell 7")
	boom3 := errors.New("cell 3")
	_, err := runCells(Config{Workers: 4}, 10, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, boom3
		case 7:
			return 0, boom7
		}
		return i, nil
	})
	if !errors.Is(err, boom3) {
		t.Fatalf("err = %v, want the lowest-index error (what a serial run returns)", err)
	}
}

func TestRunCellsSerialFallback(t *testing.T) {
	calls := 0
	out, err := runCells(Config{Workers: 1}, 5, func(i int) (int, error) { calls++; return i, nil })
	if err != nil || len(out) != 5 || calls != 5 {
		t.Fatalf("serial fallback: out=%v err=%v calls=%d", out, err, calls)
	}
	if out, err := runCells(Config{Workers: 4}, 0, func(i int) (int, error) { return 0, nil }); err != nil || len(out) != 0 {
		t.Fatalf("empty input: out=%v err=%v", out, err)
	}
}

// The suite-wide budget must bound concurrently-executing cells even when
// several fan-outs run at once (All's nested-figure shape).
func TestRunCellsHonorsSuiteBudget(t *testing.T) {
	const budget = 2
	cfg := Config{Workers: 8, budget: make(chan struct{}, budget)}
	var running, peak atomic.Int64
	cell := func(i int) (int, error) {
		now := running.Add(1)
		for {
			p := peak.Load()
			if now <= p || peak.CompareAndSwap(p, now) {
				break
			}
		}
		for j := 0; j < 1000; j++ { // hold the token long enough to overlap
			_ = j
		}
		running.Add(-1)
		return i, nil
	}
	done := make(chan error, 3)
	for k := 0; k < 3; k++ { // three concurrent fan-outs share one budget
		go func() {
			_, err := runCells(cfg, 40, cell)
			done <- err
		}()
	}
	for k := 0; k < 3; k++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if p := peak.Load(); p > budget {
		t.Fatalf("peak concurrent cells = %d, budget %d", p, budget)
	}
	if _, err := leafCell(cfg, func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
}

// tablesEqual compares rendered artifacts, which covers columns, rows and
// notes byte-for-byte.
func tablesEqual(a, b []*Table) error {
	if len(a) != len(b) {
		return fmt.Errorf("table counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return fmt.Errorf("table %s differs between schedules:\n--- serial ---\n%s--- parallel ---\n%s",
				a[i].ID, a[i].String(), b[i].String())
		}
		if !reflect.DeepEqual(a[i].Notes, b[i].Notes) {
			return fmt.Errorf("table %s notes differ", a[i].ID)
		}
	}
	return nil
}

// The whole figure suite must produce byte-identical tables at any worker
// count — the parallel runner's determinism guarantee.
func TestParallelSuiteMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite comparison is not short")
	}
	serialCfg := QuickConfig()
	serialCfg.Workers = 1
	serial, err := All(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	parallelCfg := QuickConfig()
	parallelCfg.Workers = 8
	parallel, err := All(parallelCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tablesEqual(serial, parallel); err != nil {
		t.Fatal(err)
	}
}

// benchSuite regenerates the full quick suite at the given worker count.
func benchSuite(b *testing.B, workers int) {
	b.Helper()
	cfg := QuickConfig()
	cfg.Workers = workers
	for i := 0; i < b.N; i++ {
		if _, err := All(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpSerial is the pre-PR schedule: every figure cell in sequence.
func BenchmarkExpSerial(b *testing.B) { benchSuite(b, 1) }

// BenchmarkExpParallel fans figure cells across all cores; the ns/op ratio
// against BenchmarkExpSerial is the suite's wall-clock speedup.
func BenchmarkExpParallel(b *testing.B) { benchSuite(b, 0) }
