package exp

import (
	"context"
	"time"

	"synapse/internal/app"
	"synapse/internal/core"
	"synapse/internal/emulator"
	"synapse/internal/machine"
	"synapse/internal/proc"
	"synapse/internal/profile"
)

// nativeTx executes the workload natively (simulated) and returns its Tx.
func nativeTx(machineName string, w app.Workload, seed uint64) (time.Duration, error) {
	m, err := machine.Get(machineName)
	if err != nil {
		return 0, err
	}
	sp, err := proc.Execute(w, m, proc.Options{Seed: seed, Jitter: true})
	if err != nil {
		return 0, err
	}
	return sp.Duration(), nil
}

// profileWorkload profiles a workload on the named machine.
func profileWorkload(machineName string, w app.Workload, rate float64, seed uint64) (*profile.Profile, error) {
	return core.ProfileWorkload(context.Background(), w, core.ProfileOptions{
		Machine:      machineName,
		SampleRate:   rate,
		Seed:         seed,
		Jitter:       true,
		CounterNoise: 0.0008,
		Clock:        simClock(),
	})
}

// emulate replays a profile on the named machine with optional overrides.
func emulate(p *profile.Profile, machineName string, mod func(*core.EmulateOptions)) (*emulator.Report, error) {
	opts := core.EmulateOptions{Machine: machineName, Clock: simClock()}
	if mod != nil {
		mod(&opts)
	}
	return core.EmulateProfile(context.Background(), p, opts)
}

// mdsimSizes returns the paper's E.1/E.2 problem sizes (iteration steps).
func mdsimSizes(cfg Config) []int {
	if cfg.Quick {
		return []int{10_000, 100_000, 1_000_000}
	}
	return []int{10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000, 10_000_000}
}

// sampleRates returns the paper's E.1 sampling-rate sweep in Hz.
func sampleRates(cfg Config) []float64 {
	if cfg.Quick {
		return []float64{0.1, 1, 10}
	}
	return []float64{0.1, 0.2, 0.5, 1, 2, 5, 10}
}

// e3Sizes returns the paper's E.3 iteration counts.
func e3Sizes(cfg Config) []int {
	if cfg.Quick {
		return []int{1000, 10_000, 100_000}
	}
	return []int{1000, 5000, 10_000, 25_000, 50_000, 75_000, 100_000}
}
