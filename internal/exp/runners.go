package exp

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"synapse/internal/app"
	"synapse/internal/core"
	"synapse/internal/emulator"
	"synapse/internal/machine"
	"synapse/internal/proc"
	"synapse/internal/profile"
)

// runCells fans fn over a dense index space [0, n) across the configured
// worker count, collecting results in input order. Workers pull the next
// index from a shared atomic cursor (work stealing): a worker that drew a
// cheap cell immediately steals the next one instead of idling behind a
// slow sibling, so the wall clock tracks total work / workers rather than
// the slowest static partition.
//
// When the Config carries a suite-wide budget (set by All), each cell
// additionally holds one budget token while it executes, so the total
// number of concurrently-executing cells across every figure is bounded by
// Config.Workers no matter how many figures fan out at once. Cell
// functions must therefore never call runCells or leafCell themselves —
// holding a token while waiting for more tokens would deadlock the suite.
//
// Every experiment cell is deterministic given (Config, cell index), and
// results land at their own index, so the output — and therefore every
// figure table — is identical to a serial run regardless of scheduling.
// The first error by index wins, which is also the error a serial run
// would have returned.
func runCells[R any](cfg Config, n int, fn func(i int) (R, error)) ([]R, error) {
	return Fan(cfg.workers(), n, cfg.budget, fn)
}

// Fan is the work-stealing runner behind runCells, exported so other drivers
// (the scenario engine's emulation fan-out) reuse it: fn runs over [0, n)
// across at most workers goroutines (workers <= 1 runs serially), results
// land in input order, the first error by index wins. budget, when non-nil,
// is a shared token channel bounding concurrently-executing cells across
// cooperating fan-outs; fn must not fan out further while holding a token.
func Fan[R any](workers, n int, budget chan struct{}, fn func(i int) (R, error)) ([]R, error) {
	out := make([]R, n)
	if n == 0 {
		return out, nil
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 && budget == nil {
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	errs := make([]error, n)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if budget != nil {
					budget <- struct{}{}
				}
				out[i], errs[i] = fn(i)
				if budget != nil {
					<-budget
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// leafCell runs one unit of leaf compute under the suite's concurrency
// budget, for figure work that happens outside a runCells fan-out (e.g. a
// shared profile built before the cells replay it). Like runCells cells,
// fn must not fan out further.
func leafCell[R any](cfg Config, fn func() (R, error)) (R, error) {
	if cfg.budget != nil {
		cfg.budget <- struct{}{}
		defer func() { <-cfg.budget }()
	}
	return fn()
}

// nativeTx executes the workload natively (simulated) and returns its Tx.
func nativeTx(machineName string, w app.Workload, seed uint64) (time.Duration, error) {
	m, err := machine.Get(machineName)
	if err != nil {
		return 0, err
	}
	sp, err := proc.Execute(w, m, proc.Options{Seed: seed, Jitter: true})
	if err != nil {
		return 0, err
	}
	return sp.Duration(), nil
}

// profileWorkload profiles a workload on the named machine.
func profileWorkload(machineName string, w app.Workload, rate float64, seed uint64) (*profile.Profile, error) {
	return core.ProfileWorkload(context.Background(), w, core.ProfileOptions{
		Machine:      machineName,
		SampleRate:   rate,
		Seed:         seed,
		Jitter:       true,
		CounterNoise: 0.0008,
		Clock:        simClock(),
	})
}

// emulate replays a profile on the named machine with optional overrides.
// Experiments read aggregates (Tx, Consumed, BusyTime) unless the override
// asks for more, so the per-sample trace is skipped by default.
func emulate(p *profile.Profile, machineName string, mod func(*core.EmulateOptions)) (*emulator.Report, error) {
	opts := core.EmulateOptions{
		Machine:    machineName,
		Clock:      simClock(),
		TraceLevel: emulator.TraceNone,
	}
	if mod != nil {
		mod(&opts)
	}
	return core.EmulateProfile(context.Background(), p, opts)
}

// mdsimSizes returns the paper's E.1/E.2 problem sizes (iteration steps).
func mdsimSizes(cfg Config) []int {
	if cfg.Quick {
		return []int{10_000, 100_000, 1_000_000}
	}
	return []int{10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000, 10_000_000}
}

// sampleRates returns the paper's E.1 sampling-rate sweep in Hz.
func sampleRates(cfg Config) []float64 {
	if cfg.Quick {
		return []float64{0.1, 1, 10}
	}
	return []float64{0.1, 0.2, 0.5, 1, 2, 5, 10}
}

// e3Sizes returns the paper's E.3 iteration counts.
func e3Sizes(cfg Config) []int {
	if cfg.Quick {
		return []int{1000, 10_000, 100_000}
	}
	return []int{1000, 5000, 10_000, 25_000, 50_000, 75_000, 100_000}
}
