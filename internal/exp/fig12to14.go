package exp

import (
	"fmt"

	"synapse/internal/app"
	"synapse/internal/core"
	"synapse/internal/machine"
	"synapse/internal/proc"
	"synapse/internal/profile"
	"synapse/internal/stats"
)

// fig12Steps is the workload size whose profile drives the parallel
// emulation experiment.
func fig12Steps(cfg Config) int {
	if cfg.Quick {
		return 300_000
	}
	return 1_000_000
}

// workerCounts enumerates the scaling points up to a node's core count.
func workerCounts(cores int) []int {
	counts := []int{1, 2, 4, 8}
	for _, extra := range []int{16, 20, 24} {
		if extra <= cores {
			counts = append(counts, extra)
		}
	}
	// Always include the full node.
	if counts[len(counts)-1] != cores {
		counts = append(counts, cores)
	}
	return counts
}

// Fig12 reproduces "Application Concurrency": OpenMP- and MPI-style
// emulation of a serially-profiled workload, scaled to a full node on Titan
// (16 cores) and Supermic (20 cores). OpenMP outperforms MPI on Titan and
// vice versa on Supermic; both show diminishing returns near the full node.
func Fig12(cfg Config) (*Table, error) {
	w := app.MDSim(fig12Steps(cfg))
	// The shared profile is built under the suite budget (it is real leaf
	// work, outside the cell fan-out below).
	p, err := leafCell(cfg, func() (*profile.Profile, error) {
		return profileWorkload(machine.Thinkie, w, 1, cfg.Seed)
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "fig12",
		Title: "Emulated OpenMP/MPI scaling of a serial profile (Titan 16c, Supermic 20c)",
		Columns: []string{"workers",
			"titan OpenMP (s)", "titan MPI (s)",
			"supermic OpenMP (s)", "supermic MPI (s)"},
	}

	machines := []string{machine.Titan, machine.Supermic}
	// Cells (machine × workers × mode) replay the shared profile
	// concurrently; the fold rebuilds the nested result maps in order.
	type f12Cell struct {
		mn   string
		n    int
		mode machine.Mode
	}
	var cells []f12Cell
	union := map[int]bool{}
	for _, mn := range machines {
		m := machine.MustGet(mn)
		for _, n := range workerCounts(m.Cores) {
			union[n] = true
			for _, mode := range []machine.Mode{machine.ModeOpenMP, machine.ModeMPI} {
				cells = append(cells, f12Cell{mn, n, mode})
			}
		}
	}
	txs, err := runCells(cfg, len(cells), func(i int) (float64, error) {
		cell := cells[i]
		rep, err := emulate(p, cell.mn, func(o *core.EmulateOptions) {
			o.Workers = cell.n
			o.Mode = cell.mode
			o.DisableStorage = true
			o.DisableMemory = true
			o.DisableNetwork = true
		})
		if err != nil {
			return 0, err
		}
		return rep.Tx.Seconds(), nil
	})
	if err != nil {
		return nil, err
	}
	results := map[string]map[int]map[machine.Mode]float64{}
	for i, cell := range cells {
		if results[cell.mn] == nil {
			results[cell.mn] = map[int]map[machine.Mode]float64{}
		}
		if results[cell.mn][cell.n] == nil {
			results[cell.mn][cell.n] = map[machine.Mode]float64{}
		}
		results[cell.mn][cell.n][cell.mode] = txs[i]
	}

	var ns []int
	for n := range union {
		ns = append(ns, n)
	}
	sortInts(ns)
	for _, n := range ns {
		row := []string{fmt.Sprintf("%d", n)}
		for _, mn := range machines {
			if vals, ok := results[mn][n]; ok {
				row = append(row, fmtSec(vals[machine.ModeOpenMP]), fmtSec(vals[machine.ModeMPI]))
			} else {
				row = append(row, "-", "-")
			}
		}
		t.Add(row...)
	}

	titanFull := results[machine.Titan][16]
	smFull := results[machine.Supermic][20]
	t.Note("full node: Titan OpenMP %.1fs < MPI %.1fs; Supermic MPI %.1fs < OpenMP %.1fs (paper: OpenMP wins on Titan, MPI on Supermic)",
		titanFull[machine.ModeOpenMP], titanFull[machine.ModeMPI],
		smFull[machine.ModeMPI], smFull[machine.ModeOpenMP])
	t.Note("Supermic executes the tasks faster than Titan, matching the paper's clock-rate argument")
	return t, nil
}

// figAppScaling runs the native parallel application (the Fig 13/14
// baselines: Gromacs built with OpenMP or MPI on Titan).
func figAppScaling(cfg Config, mode machine.Mode, id, title string) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"workers", "Tx (s)", "speedup"},
	}
	m := machine.MustGet(machine.Titan)
	counts := workerCounts(m.Cores)
	txs, err := runCells(cfg, len(counts), func(i int) (float64, error) {
		w := app.MDSimParallel(fig12Steps(cfg), counts[i], mode)
		sp, err := proc.Execute(w, m, proc.Options{Seed: cfg.Seed, Jitter: true})
		if err != nil {
			return 0, err
		}
		return sp.Duration().Seconds(), nil
	})
	if err != nil {
		return nil, err
	}
	var serial float64
	var speeds []float64
	for i, n := range counts {
		tx := txs[i]
		if n == 1 {
			serial = tx
		}
		speedup := serial / tx
		speeds = append(speeds, speedup)
		t.Add(fmt.Sprintf("%d", n), fmtSec(tx), fmt.Sprintf("%.2fx", speedup))
	}
	t.Note("good scaling at small worker counts, diminishing returns toward the full node (max speedup %.1fx at 16 cores)", stats.Max(speeds))
	return t, nil
}

// Fig13 reproduces the native Gromacs OpenMP scaling baseline on Titan.
func Fig13(cfg Config) (*Table, error) {
	return figAppScaling(cfg, machine.ModeOpenMP, "fig13", "Native application (Gromacs-like) OpenMP scaling on Titan")
}

// Fig14 reproduces the native Gromacs MPI scaling baseline on Titan.
func Fig14(cfg Config) (*Table, error) {
	return figAppScaling(cfg, machine.ModeMPI, "fig14", "Native application (Gromacs-like) MPI scaling on Titan")
}

// sortInts sorts a small int slice ascending (avoiding a sort import for one
// call would be false economy; kept explicit for clarity).
func sortInts(ns []int) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j] < ns[j-1]; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}
