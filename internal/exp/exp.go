// Package exp reproduces every table and figure of the paper's evaluation
// (§5). Each experiment is a function returning a Table whose rows carry the
// same series the paper plots; DESIGN.md §5 maps experiment IDs to paper
// artifacts and EXPERIMENTS.md records paper-vs-reproduced values.
//
// All experiments run against the simulated machine catalog and are fully
// deterministic for a given configuration (seeded noise provides the error
// bars). Config.Quick shrinks problem sizes and repetition counts so the
// whole suite runs in seconds inside `go test -bench`; cmd/synapse-exp runs
// the full-size versions.
package exp

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"synapse/internal/clock"
)

// Config scales the experiments.
type Config struct {
	// Quick selects reduced problem sizes and repetitions.
	Quick bool
	// Reps is the number of repetitions used for error bars.
	Reps int
	// Seed bases the deterministic noise.
	Seed uint64
	// Workers bounds the parallel runner fanning figure cells
	// (machine × size × kernel) across goroutines: 0 uses GOMAXPROCS,
	// 1 forces the serial schedule. Results are deterministic — byte
	// identical tables — at any worker count.
	Workers int

	// budget, when set by All, is the suite-wide concurrency budget:
	// every executing cell holds one token, so nested fan-outs (figures
	// inside the suite) cannot multiply concurrency beyond Workers.
	budget chan struct{}
}

// DefaultConfig returns the full-scale configuration used by the experiment
// runner.
func DefaultConfig() Config { return Config{Reps: 3, Seed: 42} }

// QuickConfig returns the reduced configuration used by tests and benches.
func QuickConfig() Config { return Config{Quick: true, Reps: 2, Seed: 42} }

func (c Config) reps() int {
	if c.Reps <= 0 {
		return 1
	}
	return c.Reps
}

// workers resolves the parallel runner's worker count.
func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// Table is one reproduced artifact: an ID tying it to the paper, column
// headers, formatted rows and free-form notes (observations the prose of
// the paper makes about the figure).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Add appends a formatted row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends an observation.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned ASCII.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes are avoided by
// replacing commas in cells).
func (t *Table) CSV() string {
	var b strings.Builder
	clean := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = clean(c)
	}
	b.WriteString(strings.Join(cols, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = clean(c)
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// simClock returns a fresh deterministic clock for one run.
func simClock() clock.AutoSim {
	return clock.NewAutoSim(time.Date(2016, 5, 23, 0, 0, 0, 0, time.UTC))
}

// fmtSec formats seconds compactly.
func fmtSec(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 10:
		return fmt.Sprintf("%.1f", s)
	default:
		return fmt.Sprintf("%.3f", s)
	}
}

// fmtPct formats a percentage.
func fmtPct(p float64) string { return fmt.Sprintf("%+.1f%%", p) }

// fmtSci formats large counts in scientific notation.
func fmtSci(v float64) string { return fmt.Sprintf("%.3e", v) }

// steps formats an iteration count the way the paper labels its x axes.
func stepsLabel(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1000 && n%1000 == 0:
		return fmt.Sprintf("%dk", n/1000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// All runs every experiment at the given configuration, in paper order.
func All(cfg Config) ([]*Table, error) {
	type mk struct {
		name string
		fn   func(Config) (*Table, error)
	}
	makers := []mk{
		{"table1", func(c Config) (*Table, error) { return Table1(), nil }},
		{"fig2", Fig2},
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"fig5", Fig5},
		{"fig6top", Fig6Top},
		{"fig6bottom", Fig6Bottom},
		{"fig7", Fig7},
		{"fig8", func(c Config) (*Table, error) { return Fig8to11(c, MetricCycles) }},
		{"fig9", func(c Config) (*Table, error) { return Fig8to11(c, MetricTx) }},
		{"fig10", func(c Config) (*Table, error) { return Fig8to11(c, MetricInstructions) }},
		{"fig11", func(c Config) (*Table, error) { return Fig8to11(c, MetricIPC) }},
		{"fig12", Fig12},
		{"fig13", Fig13},
		{"fig14", Fig14},
		{"fig15", Fig15},
	}
	// All the artifacts regenerate concurrently. The makers themselves are
	// cheap orchestrators — they fan their own cells through runCells — so
	// they run as plain goroutines holding no budget tokens, while the
	// shared budget bounds actual cell execution across the whole suite to
	// cfg.Workers.
	if cfg.budget == nil {
		cfg.budget = make(chan struct{}, cfg.workers())
	}
	out := make([]*Table, len(makers))
	errs := make([]error, len(makers))
	var wg sync.WaitGroup
	for i := range makers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t, err := makers[i].fn(cfg)
			if err != nil {
				err = fmt.Errorf("exp %s: %w", makers[i].name, err)
			}
			out[i], errs[i] = t, err
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
