package exp

import (
	"fmt"

	"synapse/internal/app"
	"synapse/internal/core"
	"synapse/internal/machine"
	"synapse/internal/profile"
	"synapse/internal/stats"
)

// Metric selects which of the four E.3 figures to reproduce.
type Metric int

// E.3 metrics, one per paper figure.
const (
	MetricCycles       Metric = iota // Fig 8: cycles used
	MetricTx                         // Fig 9: execution time
	MetricInstructions               // Fig 10: instructions executed
	MetricIPC                        // Fig 11: instructions per cycle
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricCycles:
		return "cycles"
	case MetricTx:
		return "Tx (s)"
	case MetricInstructions:
		return "instructions"
	case MetricIPC:
		return "instructions/cycle"
	default:
		return "?"
	}
}

func (m Metric) figID() string {
	switch m {
	case MetricCycles:
		return "fig8"
	case MetricTx:
		return "fig9"
	case MetricInstructions:
		return "fig10"
	default:
		return "fig11"
	}
}

// e3Run holds one (machine, size) measurement set.
type e3Run struct {
	app  stats.Summary // application values over repetitions
	emul map[string]stats.Summary
}

// runE3 profiles the application on the machine and emulates it with both
// kernels, with memory and storage emulation disabled as in the paper.
func runE3(cfg Config, machineName string, steps int, metric Metric) (e3Run, error) {
	kernels := []string{machine.KernelC, machine.KernelASM}
	out := e3Run{emul: map[string]stats.Summary{}}

	var appVals []float64
	emulVals := map[string][]float64{}
	for rep := 0; rep < cfg.reps(); rep++ {
		w := app.MDSim(steps)
		p, err := profileWorkload(machineName, w, 10, cfg.Seed+uint64(rep))
		if err != nil {
			return out, err
		}
		appVals = append(appVals, extractAppMetric(p, metric))
		for _, k := range kernels {
			k := k
			rep, err := emulate(p, machineName, func(o *core.EmulateOptions) {
				o.Kernel = k
				o.DisableStorage = true
				o.DisableMemory = true
				o.DisableNetwork = true
			})
			if err != nil {
				return out, err
			}
			var v float64
			switch metric {
			case MetricCycles:
				v = rep.Consumed.Cycles
			case MetricTx:
				v = rep.Tx.Seconds()
			case MetricInstructions:
				v = rep.Consumed.Instructions
			case MetricIPC:
				v = rep.IPC()
			}
			emulVals[k] = append(emulVals[k], v)
		}
	}
	out.app = stats.Summarize(appVals)
	for _, k := range kernels {
		out.emul[k] = stats.Summarize(emulVals[k])
	}
	return out, nil
}

func extractAppMetric(p *profile.Profile, metric Metric) float64 {
	switch metric {
	case MetricCycles:
		return p.Total(profile.MetricCPUCycles)
	case MetricTx:
		return p.Duration.Seconds()
	case MetricInstructions:
		return p.Total(profile.MetricCPUInstructions)
	case MetricIPC:
		return p.Total(profile.MetricCPUInstructions) / p.Total(profile.MetricCPUCycles)
	default:
		return 0
	}
}

// Fig8to11 reproduces experiment E.3 ("Emulating with Different Kernels")
// for one metric: the application value and the C- and ASM-kernel emulation
// values with error percentages, on Comet and Supermic.
func Fig8to11(cfg Config, metric Metric) (*Table, error) {
	t := &Table{
		ID:    metric.figID(),
		Title: fmt.Sprintf("E.3 kernel comparison: %s (app vs C vs ASM kernels)", metric),
		Columns: []string{"machine", "steps", "application",
			"C kernel", "err", "ASM kernel", "err"},
	}
	fmtVal := func(v float64) string {
		if metric == MetricTx {
			return fmtSec(v)
		}
		if metric == MetricIPC {
			return fmt.Sprintf("%.2f", v)
		}
		return fmtSci(v)
	}

	type converged struct{ c, asm float64 }
	conv := map[string]converged{}
	var maxCI float64

	// Cells (machine × size) run concurrently — each cell profiles and
	// emulates with both kernels over the configured repetitions — and the
	// deterministic fold below walks them in the serial order.
	type e3Cell struct {
		mn    string
		steps int
	}
	var cells []e3Cell
	for _, mn := range []string{machine.Comet, machine.Supermic} {
		for _, steps := range e3Sizes(cfg) {
			cells = append(cells, e3Cell{mn, steps})
		}
	}
	runs, err := runCells(cfg, len(cells), func(i int) (e3Run, error) {
		return runE3(cfg, cells[i].mn, cells[i].steps, metric)
	})
	if err != nil {
		return nil, err
	}
	for i, cell := range cells {
		run := runs[i]
		cErr := stats.PctDiff(run.emul[machine.KernelC].Mean, run.app.Mean)
		aErr := stats.PctDiff(run.emul[machine.KernelASM].Mean, run.app.Mean)
		t.Add(cell.mn, stepsLabel(cell.steps),
			fmtVal(run.app.Mean),
			fmtVal(run.emul[machine.KernelC].Mean), fmtPct(cErr),
			fmtVal(run.emul[machine.KernelASM].Mean), fmtPct(aErr))
		conv[cell.mn] = converged{cErr, aErr}
		if run.app.Mean > 0 && run.app.CI99/run.app.Mean > maxCI {
			maxCI = run.app.CI99 / run.app.Mean
		}
	}
	if metric == MetricIPC {
		t.Note("IPC ordering app < C kernel < ASM kernel holds on both machines (paper: 2.17/2.80/3.30 Comet, 2.04/2.53/2.86 Supermic)")
	} else {
		t.Note("converged errors at the largest size: Comet C %+.1f%% / ASM %+.1f%%, Supermic C %+.1f%% / ASM %+.1f%%",
			conv[machine.Comet].c, conv[machine.Comet].asm,
			conv[machine.Supermic].c, conv[machine.Supermic].asm)
		t.Note("paper values: cycles/Tx errors ≈3.5%%/14.5%% (Comet) and ≈4.0%%/26.5%% (Supermic); the C kernel is more faithful everywhere")
	}
	t.Note("99%% confidence intervals are at most %.2f%% of the mean (paper: <=6.6%%)", maxCI*100)
	return t, nil
}
