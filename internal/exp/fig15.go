package exp

import (
	"fmt"
	"time"

	"synapse/internal/core"
	"synapse/internal/machine"
	"synapse/internal/profile"
)

// fig15Total is the bytes moved per I/O measurement.
func fig15Total(cfg Config) int64 {
	if cfg.Quick {
		return 64 << 20
	}
	return 256 << 20
}

// fig15Blocks is the block-size sweep.
func fig15Blocks(cfg Config) []int64 {
	if cfg.Quick {
		return []int64{4 << 10, 1 << 20, 64 << 20}
	}
	return []int64{4 << 10, 64 << 10, 1 << 20, 16 << 20, 64 << 20}
}

// ioProfile builds a single-sample profile demanding one direction of I/O.
func ioProfile(write bool, total int64) *profile.Profile {
	p := profile.New("synapse-iobench", map[string]string{"dir": map[bool]string{true: "write", false: "read"}[write]})
	v := map[string]float64{}
	if write {
		v[profile.MetricIOWriteBytes] = float64(total)
	} else {
		v[profile.MetricIOReadBytes] = float64(total)
	}
	_ = p.Append(profile.Sample{T: time.Second, Values: v})
	p.Finalize(time.Second)
	return p
}

// Fig15 reproduces "I/O Emulation": read and write performance of the
// storage atom across target filesystems and block sizes on Titan and
// Supermic. Writes are roughly an order of magnitude slower than reads on
// shared filesystems; small blocks are far slower than large ones; Lustre
// behaves alike on both machines while local storage differs significantly.
func Fig15(cfg Config) (*Table, error) {
	total := fig15Total(cfg)
	t := &Table{
		ID:    "fig15",
		Title: fmt.Sprintf("I/O emulation: %d MB per operation set, by filesystem and block size", total>>20),
		Columns: []string{"machine", "fs", "block",
			"write (s)", "write MB/s", "read (s)", "read MB/s"},
	}

	type key struct{ mn, fs string }
	writeAtMB := map[key]float64{} // write seconds at the 1MB block, for notes

	// Cells (machine × filesystem × block) replay concurrently.
	type f15Cell struct {
		mn, fs string
		block  int64
	}
	var cells []f15Cell
	for _, mn := range []string{machine.Titan, machine.Supermic} {
		m := machine.MustGet(mn)
		for _, fs := range []string{machine.FSLustre, machine.FSLocal} {
			if _, err := m.Filesystem(fs); err != nil {
				continue
			}
			for _, block := range fig15Blocks(cfg) {
				cells = append(cells, f15Cell{mn, fs, block})
			}
		}
	}
	secsOut, err := runCells(cfg, len(cells), func(i int) ([2]float64, error) {
		cell := cells[i]
		var secs [2]float64 // write, read
		for j, write := range []bool{true, false} {
			p := ioProfile(write, total)
			rep, err := emulate(p, cell.mn, func(o *core.EmulateOptions) {
				o.Filesystem = cell.fs
				o.ReadBlock = cell.block
				o.WriteBlock = cell.block
				o.StartupDelay = -1
				o.SampleOverhead = -1
				o.DisableMemory = true
				o.DisableNetwork = true
			})
			if err != nil {
				return secs, err
			}
			secs[j] = rep.Tx.Seconds()
		}
		return secs, nil
	})
	if err != nil {
		return nil, err
	}
	for i, cell := range cells {
		secs := secsOut[i]
		mb := float64(total) / (1 << 20)
		t.Add(cell.mn, cell.fs, blockLabel(cell.block),
			fmtSec(secs[0]), fmt.Sprintf("%.1f", mb/secs[0]),
			fmtSec(secs[1]), fmt.Sprintf("%.1f", mb/secs[1]))
		if cell.block == 1<<20 {
			writeAtMB[key{cell.mn, cell.fs}] = secs[0]
		}
	}

	tl := writeAtMB[key{machine.Titan, machine.FSLustre}]
	sl := writeAtMB[key{machine.Supermic, machine.FSLustre}]
	tloc := writeAtMB[key{machine.Titan, machine.FSLocal}]
	sloc := writeAtMB[key{machine.Supermic, machine.FSLocal}]
	t.Note("Lustre performs very similarly on both machines (1MB-block writes: titan %.2fs vs supermic %.2fs)", tl, sl)
	t.Note("local storage differs significantly (titan %.2fs vs supermic %.2fs); Titan's local FS is much faster", tloc, sloc)
	t.Note("writes are roughly an order of magnitude slower than reads on the shared filesystem; small blocks pay per-operation latency")
	return t, nil
}

func blockLabel(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Table1 reproduces paper Table 1: the metric registry with its support
// levels (Tot/Sampled/Derived/Emulated).
func Table1() *Table {
	t := &Table{
		ID:      "table1",
		Title:   "List of Synapse metrics and their usage (paper Table 1)",
		Columns: []string{"Resource", "Metric", "Tot.", "Samp.", "Der.", "Emul."},
	}
	prev := ""
	for _, r := range profile.Registry {
		group := r.Resource
		if group == prev {
			group = ""
		} else {
			prev = r.Resource
		}
		t.Add(group, r.Title, r.Total.String(), r.Sampled.String(), r.Derived.String(), r.Emul.String())
	}
	t.Note("legend: + supported, - not supported, (+) partial, (-) planned")
	return t
}
