package exp

import (
	"fmt"
	"math"

	"synapse/internal/app"
	"synapse/internal/machine"
	"synapse/internal/stats"
	"synapse/internal/store"
)

// Fig4 reproduces "Profiling Overhead" (experiment E.1): application Tx under
// native execution versus execution under the profiler at sampling rates of
// 0.1–10 Hz, over problem sizes of 10⁴–10⁷ iterations, on Thinkie. The paper
// finds negligible overhead; the footnote artifact — the largest
// configuration losing data to the MongoDB 16 MB document limit — is
// reproduced through the store accounting.
func Fig4(cfg Config) (*Table, error) {
	rates := sampleRates(cfg)
	t := &Table{
		ID:      "fig4",
		Title:   "Profiling overhead: Tx (s) native vs profiled, Thinkie",
		Columns: []string{"steps", "execution"},
	}
	for _, r := range rates {
		t.Columns = append(t.Columns, fmt.Sprintf("profiled %.1fHz", r))
	}
	t.Columns = append(t.Columns, "max diff")

	// Problem sizes run concurrently. The Mongo-like document limit is
	// enforced per command/tags key — one document per size — so each cell
	// accounts its own store and the drop totals fold deterministically.
	type f4Cell struct {
		row     []string
		worst   float64
		dropped int
	}
	sizes := mdsimSizes(cfg)
	cellsOut, err := runCells(cfg, len(sizes), func(i int) (f4Cell, error) {
		steps := sizes[i]
		st := store.NewMem()
		w := app.MDSim(steps)
		var out f4Cell
		var execTx []float64
		for rep := 0; rep < cfg.reps(); rep++ {
			tx, err := nativeTx(machine.Thinkie, w, cfg.Seed+uint64(rep))
			if err != nil {
				return out, err
			}
			execTx = append(execTx, tx.Seconds())
		}
		exec := stats.Mean(execTx)

		out.row = []string{stepsLabel(steps), fmtSec(exec)}
		for _, rate := range rates {
			var profTx []float64
			for rep := 0; rep < cfg.reps(); rep++ {
				p, err := profileWorkload(machine.Thinkie, w, rate, cfg.Seed+uint64(rep))
				if err != nil {
					return out, err
				}
				profTx = append(profTx, p.Duration.Seconds())
				d, err := st.PutTruncated(p)
				if err != nil {
					return out, err
				}
				out.dropped += d
			}
			m := stats.Mean(profTx)
			out.row = append(out.row, fmtSec(m))
			if d := math.Abs(stats.PctDiff(m, exec)); d > out.worst {
				out.worst = d
			}
		}
		out.row = append(out.row, fmt.Sprintf("%.1f%%", out.worst))
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var maxDiff float64
	var droppedTotal int
	for _, cell := range cellsOut {
		t.Add(cell.row...)
		droppedTotal += cell.dropped
		if cell.worst > maxDiff {
			maxDiff = cell.worst
		}
	}
	t.Note("profiling overhead is negligible: max |Tx diff| across all sizes and rates = %.1f%% (noise)", maxDiff)
	if droppedTotal > 0 {
		t.Note("DB limitation artifact reproduced: %d samples dropped by the 16MB document limit (largest configuration)", droppedTotal)
	} else {
		t.Note("no document-limit overflow at this scale (full-scale run overflows on the 10M-step configuration)")
	}
	return t, nil
}

// Fig5 reproduces "Emulation Correctness" on the profiling resource:
// emulated Tx tracks application Tx on Thinkie, with the ~1 s emulator
// startup dominating short runs.
func Fig5(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig5",
		Title:   "Emulation vs execution on the profiling resource (Thinkie)",
		Columns: []string{"steps", "execution Tx (s)", "emulation Tx (s)", "diff"},
	}
	type f5Cell struct {
		row  []string
		diff float64
	}
	sizes := mdsimSizes(cfg)
	cells, err := runCells(cfg, len(sizes), func(i int) (f5Cell, error) {
		w := app.MDSim(sizes[i])
		p, err := profileWorkload(machine.Thinkie, w, 1, cfg.Seed)
		if err != nil {
			return f5Cell{}, err
		}
		rep, err := emulate(p, machine.Thinkie, nil)
		if err != nil {
			return f5Cell{}, err
		}
		diff := stats.PctDiff(rep.Tx.Seconds(), p.Duration.Seconds())
		return f5Cell{
			row:  []string{stepsLabel(sizes[i]), fmtSec(p.Duration.Seconds()), fmtSec(rep.Tx.Seconds()), fmtPct(diff)},
			diff: diff,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var longDiff float64
	for _, cell := range cells {
		t.Add(cell.row...)
		longDiff = cell.diff
	}
	t.Note("diff converges to ≈%+.0f%% for long runs; short runs are dominated by the ≈1s emulator startup", longDiff)
	return t, nil
}

// Fig6Top reproduces "Profiling Consistency": the profiled CPU-operation
// totals are independent of sampling rate for every problem size.
func Fig6Top(cfg Config) (*Table, error) {
	rates := sampleRates(cfg)
	t := &Table{
		ID:      "fig6top",
		Title:   "CPU operations over sampling frequency and problem size (Thinkie)",
		Columns: []string{"steps"},
	}
	for _, r := range rates {
		t.Columns = append(t.Columns, fmt.Sprintf("%.1fHz", r))
	}
	t.Columns = append(t.Columns, "spread")

	type f6Cell struct {
		row    []string
		spread float64
	}
	sizes := mdsimSizes(cfg)
	cells, err := runCells(cfg, len(sizes), func(i int) (f6Cell, error) {
		w := app.MDSim(sizes[i])
		row := []string{stepsLabel(sizes[i])}
		var means []float64
		for _, rate := range rates {
			var ops []float64
			for rep := 0; rep < cfg.reps(); rep++ {
				p, err := profileWorkload(machine.Thinkie, w, rate, cfg.Seed+uint64(rep))
				if err != nil {
					return f6Cell{}, err
				}
				ops = append(ops, p.Total("cpu.instructions"))
			}
			m := stats.Mean(ops)
			means = append(means, m)
			row = append(row, fmtSci(m))
		}
		spread := (stats.Max(means) - stats.Min(means)) / stats.Mean(means) * 100
		row = append(row, fmt.Sprintf("%.2f%%", spread))
		return f6Cell{row: row, spread: spread}, nil
	})
	if err != nil {
		return nil, err
	}
	var worstSpread float64
	for _, cell := range cells {
		t.Add(cell.row...)
		if cell.spread > worstSpread {
			worstSpread = cell.spread
		}
	}
	t.Note("consumed CPU operations are consistent across sampling rates: worst spread %.2f%%", worstSpread)
	return t, nil
}

// Fig6Bottom reproduces "Profiled Memory Usage": sampled resident memory is
// underestimated when the sampling rate allows only one sample during the
// run, and stabilises once multiple samples fit.
func Fig6Bottom(cfg Config) (*Table, error) {
	rates := sampleRates(cfg)
	t := &Table{
		ID:      "fig6bottom",
		Title:   "Profiled resident memory (bytes) over sampling rate and problem size (Thinkie)",
		Columns: []string{"steps"},
	}
	for _, r := range rates {
		t.Columns = append(t.Columns, fmt.Sprintf("%.1fHz", r))
	}

	type f6bCell struct {
		row       []string
		low, high float64
	}
	sizes := mdsimSizes(cfg)
	cells, err := runCells(cfg, len(sizes), func(i int) (f6bCell, error) {
		w := app.MDSim(sizes[i])
		var out f6bCell
		out.row = []string{stepsLabel(sizes[i])}
		for j, rate := range rates {
			p, err := profileWorkload(machine.Thinkie, w, rate, cfg.Seed)
			if err != nil {
				return out, err
			}
			rss := p.Total("mem.rss")
			out.row = append(out.row, fmtSci(rss))
			if j == 0 {
				out.low = rss
			}
			if j == len(rates)-1 {
				out.high = rss
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var lowSmall, highSmall float64
	for i, cell := range cells {
		t.Add(cell.row...)
		if i == 0 {
			lowSmall, highSmall = cell.low, cell.high
		}
	}
	t.Note("for the smallest size, 0.1Hz sampling reports %.2g bytes vs %.2g at 10Hz: single-sample profiles underestimate the resident size", lowSmall, highSmall)
	t.Note("the rusage-based mem.peak total remains exact at every rate (see watcher tests)")
	return t, nil
}

// Fig7 reproduces "Emulation Correctness" across resources: profiles taken
// on Thinkie are emulated on Stampede (top; emulation ≈40% faster than the
// native application) and Archer (bottom; ≈33% slower).
func Fig7(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "fig7",
		Title: "Emulation vs execution on foreign resources (profiles from Thinkie)",
		Columns: []string{"steps",
			"stampede exec (s)", "stampede emul (s)", "diff",
			"archer exec (s)", "archer emul (s)", "diff"},
	}
	type f7Cell struct {
		row              []string
		stampede, archer float64
	}
	sizes := mdsimSizes(cfg)
	cells, err := runCells(cfg, len(sizes), func(i int) (f7Cell, error) {
		w := app.MDSim(sizes[i])
		var out f7Cell
		p, err := profileWorkload(machine.Thinkie, w, 1, cfg.Seed)
		if err != nil {
			return out, err
		}
		out.row = []string{stepsLabel(sizes[i])}
		for _, target := range []string{machine.Stampede, machine.Archer} {
			exec, err := nativeTx(target, w, cfg.Seed)
			if err != nil {
				return out, err
			}
			rep, err := emulate(p, target, nil)
			if err != nil {
				return out, err
			}
			diff := stats.PctDiff(rep.Tx.Seconds(), exec.Seconds())
			out.row = append(out.row, fmtSec(exec.Seconds()), fmtSec(rep.Tx.Seconds()), fmtPct(diff))
			if target == machine.Stampede {
				out.stampede = diff
			} else {
				out.archer = diff
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var lastStampede, lastArcher float64
	for _, cell := range cells {
		t.Add(cell.row...)
		lastStampede, lastArcher = cell.stampede, cell.archer
	}
	t.Note("converged diffs: Stampede %+.1f%% (paper ≈-40%%), Archer %+.1f%% (paper ≈+33%%)", lastStampede, lastArcher)
	return t, nil
}
