package exp

import (
	"strconv"
	"strings"
	"testing"
)

// parse a formatted cell back to float (strips %, +, x, unit suffixes).
func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimSuffix(s, "x")
	s = strings.TrimPrefix(s, "+")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	tbl.Add("1", "2")
	tbl.Note("hello %d", 7)
	out := tbl.String()
	for _, want := range []string{"demo", "a", "1", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "a,b\n1,2\n") {
		t.Errorf("CSV = %q", csv)
	}
}

func TestCSVEscapesCommas(t *testing.T) {
	tbl := &Table{Columns: []string{"a,b"}}
	tbl.Add("x,y")
	csv := tbl.CSV()
	if strings.Count(strings.Split(csv, "\n")[0], ",") != 0 {
		t.Errorf("CSV header not sanitised: %q", csv)
	}
}

func TestFig4ProfilingOverheadNegligible(t *testing.T) {
	tbl, err := Fig4(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The last column holds the max |diff| per size; all must be small
	// (the paper finds profiling does not affect Tx).
	for _, row := range tbl.Rows {
		diff := cellFloat(t, row[len(row)-1])
		if diff > 15 {
			t.Errorf("size %s: profiling overhead %v%% too large", row[0], diff)
		}
	}
	if len(tbl.Rows) != 3 {
		t.Errorf("quick config should test 3 sizes, got %d", len(tbl.Rows))
	}
}

func TestFig5SameResourceConvergence(t *testing.T) {
	tbl, err := Fig5(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Short runs: diff large (startup); long runs: small.
	first := cellFloat(t, tbl.Rows[0][3])
	last := cellFloat(t, tbl.Rows[len(tbl.Rows)-1][3])
	if first < last {
		t.Errorf("startup should dominate short runs: first %v%%, last %v%%", first, last)
	}
	if last > 10 {
		t.Errorf("long-run diff = %v%%, want <10%%", last)
	}
}

func TestFig6TopConsistency(t *testing.T) {
	tbl, err := Fig6Top(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		spread := cellFloat(t, row[len(row)-1])
		if spread > 2 {
			t.Errorf("size %s: CPU ops spread %v%% across rates, want <2%%", row[0], spread)
		}
	}
}

func TestFig6BottomUnderestimation(t *testing.T) {
	tbl, err := Fig6Bottom(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// For the smallest problem size, RSS at the lowest rate must be below
	// RSS at the highest rate.
	row := tbl.Rows[0]
	low := cellFloat(t, row[1])
	high := cellFloat(t, row[len(row)-1])
	if low >= high {
		t.Errorf("smallest size: low-rate RSS %v should underestimate high-rate %v", low, high)
	}
}

func TestFig7PortabilityShape(t *testing.T) {
	tbl, err := Fig7(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	stampedeDiff := cellFloat(t, last[3])
	archerDiff := cellFloat(t, last[6])
	if stampedeDiff > -30 || stampedeDiff < -50 {
		t.Errorf("stampede converged diff = %v%%, want ≈-40%%", stampedeDiff)
	}
	if archerDiff < 25 || archerDiff > 45 {
		t.Errorf("archer converged diff = %v%%, want ≈+33%%", archerDiff)
	}
}

func TestFig8CycleErrors(t *testing.T) {
	tbl, err := Fig8to11(QuickConfig(), MetricCycles)
	if err != nil {
		t.Fatal(err)
	}
	// Last row per machine = largest size: C error ≈ bias, ASM larger.
	for _, row := range tbl.Rows {
		if row[1] != "100k" {
			continue
		}
		cErr := cellFloat(t, row[4])
		aErr := cellFloat(t, row[6])
		if cErr >= aErr {
			t.Errorf("%s: C kernel cycle error (%v%%) should beat ASM (%v%%)", row[0], cErr, aErr)
		}
		switch row[0] {
		case "comet":
			if cErr < 2 || cErr > 6 {
				t.Errorf("comet C error = %v%%, want ≈3.5%%", cErr)
			}
			if aErr < 12 || aErr > 18 {
				t.Errorf("comet ASM error = %v%%, want ≈14.5%%", aErr)
			}
		case "supermic":
			if cErr < 2.5 || cErr > 6.5 {
				t.Errorf("supermic C error = %v%%, want ≈4%%", cErr)
			}
			if aErr < 22 || aErr > 31 {
				t.Errorf("supermic ASM error = %v%%, want ≈26.5%%", aErr)
			}
		}
	}
}

func TestFig9TxErrorsTrackCycles(t *testing.T) {
	tbl, err := Fig8to11(QuickConfig(), MetricTx)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[1] != "100k" {
			continue
		}
		cErr := cellFloat(t, row[4])
		aErr := cellFloat(t, row[6])
		if cErr >= aErr {
			t.Errorf("%s: C kernel Tx error should beat ASM", row[0])
		}
	}
}

func TestFig11IPCOrdering(t *testing.T) {
	tbl, err := Fig8to11(QuickConfig(), MetricIPC)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[1] != "100k" {
			continue
		}
		appIPC := cellFloat(t, row[2])
		cIPC := cellFloat(t, row[3])
		aIPC := cellFloat(t, row[5])
		if !(appIPC < cIPC && cIPC < aIPC) {
			t.Errorf("%s: IPC ordering app(%v) < C(%v) < ASM(%v) violated", row[0], appIPC, cIPC, aIPC)
		}
		// Paper values at the largest size.
		switch row[0] {
		case "comet":
			if appIPC < 2.0 || appIPC > 2.35 {
				t.Errorf("comet app IPC = %v, want ≈2.17", appIPC)
			}
		case "supermic":
			if appIPC < 1.9 || appIPC > 2.2 {
				t.Errorf("supermic app IPC = %v, want ≈2.04", appIPC)
			}
		}
	}
}

func TestFig12Crossover(t *testing.T) {
	tbl, err := Fig12(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Find the full-node rows: titan at 16, supermic at 20.
	var titanOMP, titanMPI, smOMP, smMPI float64
	for _, row := range tbl.Rows {
		switch row[0] {
		case "16":
			titanOMP, titanMPI = cellFloat(t, row[1]), cellFloat(t, row[2])
		case "20":
			if row[3] != "-" {
				smOMP, smMPI = cellFloat(t, row[3]), cellFloat(t, row[4])
			}
		}
	}
	if titanOMP <= 0 || smOMP <= 0 {
		t.Fatal("missing full-node rows")
	}
	if titanOMP >= titanMPI {
		t.Errorf("titan: OpenMP (%v) should beat MPI (%v)", titanOMP, titanMPI)
	}
	if smMPI >= smOMP {
		t.Errorf("supermic: MPI (%v) should beat OpenMP (%v)", smMPI, smOMP)
	}
	// Scaling: the serial row must be slower than the full-node rows.
	serialTitan := cellFloat(t, tbl.Rows[0][1])
	if serialTitan <= titanOMP {
		t.Errorf("no scaling: serial %v vs 16-way %v", serialTitan, titanOMP)
	}
}

func TestFig13And14Scaling(t *testing.T) {
	for _, fn := range []func(Config) (*Table, error){Fig13, Fig14} {
		tbl, err := fn(QuickConfig())
		if err != nil {
			t.Fatal(err)
		}
		first := cellFloat(t, tbl.Rows[0][2])
		last := cellFloat(t, tbl.Rows[len(tbl.Rows)-1][2])
		if first != 1 {
			t.Errorf("%s: serial speedup = %v, want 1", tbl.ID, first)
		}
		if last < 3 {
			t.Errorf("%s: full-node speedup = %v, want >3x", tbl.ID, last)
		}
		// Diminishing returns: speedup at 16 cores well below ideal.
		if last > 14 {
			t.Errorf("%s: speedup %v too close to ideal, contention missing", tbl.ID, last)
		}
	}
}

func TestFig15IOShapes(t *testing.T) {
	tbl, err := Fig15(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ mn, fs, block string }
	write := map[key]float64{}
	read := map[key]float64{}
	for _, row := range tbl.Rows {
		k := key{row[0], row[1], row[2]}
		write[k] = cellFloat(t, row[3])
		read[k] = cellFloat(t, row[5])
	}
	// Writes ≈10x slower than reads on lustre at large blocks.
	k := key{"titan", "lustre", "64MB"}
	if write[k] < 5*read[k] {
		t.Errorf("lustre writes should be ~10x slower: w=%v r=%v", write[k], read[k])
	}
	// Small blocks slower than large on every fs.
	for _, mn := range []string{"titan", "supermic"} {
		for _, fs := range []string{"lustre", "local"} {
			small := write[key{mn, fs, "4KB"}]
			large := write[key{mn, fs, "64MB"}]
			if small <= large {
				t.Errorf("%s/%s: 4KB writes (%v) should be slower than 64MB (%v)", mn, fs, small, large)
			}
		}
	}
	// Lustre similar across machines; local differs.
	tl := write[key{"titan", "lustre", "1MB"}]
	sl := write[key{"supermic", "lustre", "1MB"}]
	if rel := (tl - sl) / sl; rel > 0.2 || rel < -0.2 {
		t.Errorf("lustre differs %v%% across machines, want <20%%", rel*100)
	}
	tloc := write[key{"titan", "local", "1MB"}]
	sloc := write[key{"supermic", "local", "1MB"}]
	if tloc >= sloc {
		t.Errorf("titan local (%v) should be faster than supermic local (%v)", tloc, sloc)
	}
}

func TestTable1Shape(t *testing.T) {
	tbl := Table1()
	if len(tbl.Rows) < 30 {
		t.Errorf("Table 1 has %d rows, want the paper's 33", len(tbl.Rows))
	}
	out := tbl.String()
	for _, want := range []string{"cycles used", "bytes peak", "block size write", "(+)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	tables, err := All(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 16 {
		t.Errorf("All returned %d tables, want 16", len(tables))
	}
	seen := map[string]bool{}
	for _, tbl := range tables {
		if tbl.ID == "" || len(tbl.Rows) == 0 {
			t.Errorf("table %q is empty", tbl.Title)
		}
		if seen[tbl.ID] {
			t.Errorf("duplicate table ID %s", tbl.ID)
		}
		seen[tbl.ID] = true
	}
}
