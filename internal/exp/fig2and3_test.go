package exp

import (
	"strings"
	"testing"
)

func TestFig2CoarserSamplingSpeedsReplay(t *testing.T) {
	tbl, err := Fig2(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("want 3 granularities, got %d", len(tbl.Rows))
	}
	fine := cellFloat(t, tbl.Rows[0][2])
	coarse := cellFloat(t, tbl.Rows[2][2])
	if coarse > fine {
		t.Errorf("coarse replay (%v) should not exceed fine replay (%v)", coarse, fine)
	}
	if coarse >= fine {
		t.Logf("no strict overlap gain observed (%v vs %v)", coarse, fine)
	}
	// Resource consumption identical across granularities.
	for col := 3; col <= 4; col++ {
		a := cellFloat(t, tbl.Rows[0][col])
		b := cellFloat(t, tbl.Rows[2][col])
		if a != b {
			t.Errorf("busy time column %d differs: %v vs %v", col, a, b)
		}
	}
}

func TestFig3DominantResourceFlips(t *testing.T) {
	tbl, err := Fig3(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("want 2 machines, got %d", len(tbl.Rows))
	}
	seqThinkie := tbl.Rows[0][2]
	seqSupermic := tbl.Rows[1][2]
	if seqThinkie == seqSupermic {
		t.Errorf("dominant sequences should differ across machines: %q vs %q", seqThinkie, seqSupermic)
	}
	if len(seqThinkie) != len(seqSupermic) {
		t.Errorf("sample count must be preserved: %q vs %q", seqThinkie, seqSupermic)
	}
	// The mixed samples flip from compute- to storage-dominated on the
	// machine with the faster CPU and slower shared filesystem.
	if !strings.Contains(seqSupermic, "S") {
		t.Error("supermic sequence should contain storage-dominated samples")
	}
}
