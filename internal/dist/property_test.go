package dist

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"synapse/internal/cluster"
	"synapse/internal/scenario"
)

// randomDistSpec draws a bounded random scenario — 1-3 workloads over the
// profiled commands, every arrival process, jittered loads, and usually a
// random cluster with a random fault timeline — mirroring the scenario
// package's property generator so the distributed invariants face the same
// adversarial inputs the local engine does.
func randomDistSpec(rng *rand.Rand) *scenario.Spec {
	machines := []string{"stampede", "comet", "thinkie"}
	spec := &scenario.Spec{
		Version:       scenario.SpecVersion,
		Name:          "dist-property",
		Seed:          rng.Uint64(),
		MaxConcurrent: rng.Intn(4), // 0 = unlimited
	}
	clustered := rng.Intn(4) > 0 // 3 in 4 draws get a cluster + events
	if clustered {
		policies := []string{
			cluster.PolicyFirstFit, cluster.PolicyBestFit,
			cluster.PolicyLeastLoaded, cluster.PolicyRandom,
		}
		contention := rng.Float64()
		spec.Cluster = &cluster.Spec{
			Policy:     policies[rng.Intn(len(policies))],
			Contention: &contention,
		}
		nodes := 1 + rng.Intn(3)
		for n := 0; n < nodes; n++ {
			spec.Cluster.Nodes = append(spec.Cluster.Nodes, cluster.NodeSpec{
				Name:    string(rune('a' + n)),
				Machine: machines[rng.Intn(len(machines))],
				Cores:   1 + rng.Intn(4),
			})
		}
	}
	cmds := []string{"mdsim", "sleep"}
	tags := []map[string]string{{"steps": "10000"}, {"seconds": "1"}}
	wls := 1 + rng.Intn(3)
	for i := 0; i < wls; i++ {
		pick := rng.Intn(len(cmds))
		w := scenario.Workload{
			Name:          fmt.Sprintf("w%d", i),
			Profile:       scenario.ProfileRef{Command: cmds[pick], Tags: tags[pick]},
			MaxConcurrent: rng.Intn(3),
		}
		if clustered {
			w.Resources = &scenario.Resources{Cores: 1} // always fits the smallest node
		} else {
			w.Emulation.Machine = machines[rng.Intn(len(machines))]
		}
		if rng.Intn(2) == 0 {
			w.Emulation.Load = 0.3 * rng.Float64()
			w.Emulation.LoadJitter = 0.2 * rng.Float64()
		}
		switch rng.Intn(4) {
		case 0:
			w.Arrival = scenario.Arrival{Process: scenario.ArrivalClosed, Clients: 1 + rng.Intn(3), Iterations: 1 + rng.Intn(3)}
		case 1:
			w.Arrival = scenario.Arrival{Process: scenario.ArrivalPoisson, Rate: 0.1 + rng.Float64(), Count: 1 + rng.Intn(8)}
		case 2:
			w.Arrival = scenario.Arrival{Process: scenario.ArrivalConstant, Rate: 0.1 + rng.Float64(), Count: 1 + rng.Intn(8)}
		case 3:
			w.Arrival = scenario.Arrival{Process: scenario.ArrivalBurst, Burst: 1 + rng.Intn(4),
				Every: scenario.Duration(time.Duration(1+rng.Intn(4)) * time.Second), Bursts: 1 + rng.Intn(3)}
		}
		spec.Workloads = append(spec.Workloads, w)
	}
	if clustered && rng.Intn(2) == 0 {
		ev := &scenario.Events{Version: scenario.EventsVersion}
		var names []string
		for i := range spec.Cluster.Nodes {
			names = append(names, cluster.ExpandNames(spec.Cluster.Nodes[i])...)
		}
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			at := scenario.Duration(time.Duration(rng.Intn(8000)) * time.Millisecond)
			switch rng.Intn(3) {
			case 0, 1: // failures dominate: they exercise kill-and-retry
				ev.Timeline = append(ev.Timeline, scenario.ClusterEvent{
					At: at, Kind: scenario.EventNodeDown, Node: names[rng.Intn(len(names))]})
			case 2:
				ev.Timeline = append(ev.Timeline, scenario.ClusterEvent{
					At: at, Kind: scenario.EventNodeUp, Node: names[rng.Intn(len(names))]})
			}
		}
		spec.Events = ev
	}
	return spec
}

// totalArrivals is the spec's total instance count, including everything
// the horizon may drop.
func totalArrivals(spec *scenario.Spec) int {
	total := 0
	for i := range spec.Workloads {
		a := &spec.Workloads[i].Arrival
		switch a.Process {
		case scenario.ArrivalClosed:
			total += a.Clients * a.Iterations
		case scenario.ArrivalPoisson, scenario.ArrivalConstant:
			total += a.Count
		case scenario.ArrivalBurst:
			total += a.Burst * a.Bursts
		}
	}
	return total
}

// TestDistConservation is the distributed property test: across random
// (spec, fleet size, shard count, injected worker failure) draws,
//
//   - identity: the distributed report is byte-identical to the local
//     single-process run — fleet size, shard count and mid-run worker
//     deaths all invisible;
//   - conservation: emulations + dropped == total arrivals, and (when
//     clustered) placements == emulations + killed — distribution loses
//     and duplicates nothing.
func TestDistConservation(t *testing.T) {
	st := seedStore(t, "mdsim", "sleep")
	trials := 15
	if testing.Short() {
		trials = 4
	}
	rng := rand.New(rand.NewSource(20260808))
	ctx := context.Background()
	for trial := 0; trial < trials; trial++ {
		spec := randomDistSpec(rng)
		if err := spec.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid spec: %v", trial, err)
		}
		local, err := scenario.Run(ctx, spec, st, scenario.RunOptions{})
		if err != nil {
			t.Fatalf("trial %d: local run: %v", trial, err)
		}
		want := marshalReport(t, local)

		fleetSize := 1 + rng.Intn(4)
		cfg := Config{
			Workers: localFleet(fleetSize),
			Shards:  1 + rng.Intn(9),
			Retry:   fastRetry(),
			// The whole scheduling config space must be invisible in the
			// report: chunked / unchunked, speculation off / adaptive /
			// hair-trigger, and windows down to the deadlock-escape regime.
			ChunkSize:  []int{0, -1, 1 + rng.Intn(4)}[rng.Intn(3)],
			StealAfter: []time.Duration{-1, 0, 5 * time.Millisecond}[rng.Intn(3)],
			Window:     []int{0, 2 + rng.Intn(10)}[rng.Intn(2)],
		}
		injected := false
		if fleetSize > 1 && rng.Intn(2) == 0 {
			// Replace one worker with one that dies after a few shards.
			injected = true
			idx := rng.Intn(fleetSize)
			cfg.Workers[idx] = &dyingWorker{Worker: cfg.Workers[idx], dieAfter: rng.Intn(3)}
		}
		rep, co := runDist(t, spec, st, cfg)
		if got := marshalReport(t, rep); !bytes.Equal(got, want) {
			t.Fatalf("trial %d (fleet %d, shards %d, failure %v): distributed report diverged\ngot:\n%s\nwant:\n%s",
				trial, fleetSize, cfg.Shards, injected, got, want)
		}

		if got, want := rep.Emulations+rep.Dropped, totalArrivals(spec); got != want {
			t.Errorf("trial %d: emulations %d + dropped %d = %d, want %d arrivals",
				trial, rep.Emulations, rep.Dropped, got, want)
		}
		if rep.Cluster != nil && rep.Cluster.Placements != rep.Emulations+rep.Killed {
			t.Errorf("trial %d: placements %d != emulations %d + killed %d",
				trial, rep.Cluster.Placements, rep.Emulations, rep.Killed)
		}
		// An injected death may or may not fire (the draw controls how many
		// shards the worker survives), but a death with no recomputation
		// would mean its shards were silently lost.
		if s := co.Stats(); s.WorkerFailures > 0 && s.RecomputedChunks == 0 {
			t.Errorf("trial %d: worker died but no shards were recomputed: %+v", trial, s)
		}
	}
}
