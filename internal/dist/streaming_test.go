package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"synapse/internal/scenario"
	"synapse/internal/testutil"
)

// shardJobs hand-builds n distinct jobs that rendezvous into the given
// shard, so a wire test can execute one shard directly.
func shardJobs(tb testing.TB, keys []uint64, shard, n int) []scenario.Job {
	tb.Helper()
	var jobs []scenario.Job
	for l := 1; len(jobs) < n; l++ {
		if l > 10_000 {
			tb.Fatalf("could not find %d jobs for shard %d", n, shard)
		}
		j := scenario.Job{Workload: 0, LoadBits: math.Float64bits(0.001 * float64(l))}
		if shardOf(jobHash(j), keys) == shard {
			jobs = append(jobs, j)
		}
	}
	return jobs
}

// TestHTTPStreamingExecute pins the NDJSON streaming wire path: a streaming
// execute against a real daemon arrives as multiple outcome lines plus a
// terminal done line, and the concatenated batches are exactly what the
// plain execute path returns.
func TestHTTPStreamingExecute(t *testing.T) {
	testutil.CheckGoroutines(t)
	st := seedStore(t, "mdsim", "sleep")
	spec := jitteredSpec()
	profs, err := scenario.ResolveProfiles(context.Background(), spec, st)
	if err != nil {
		t.Fatal(err)
	}
	// One emulation worker makes the runner serial, so the stream's batch
	// boundaries are deterministic: 6 jobs at 2 per line = 3 lines.
	_, base := startServer(t, ServerConfig{Workers: 1, StreamBatch: 2})
	w := NewHTTPWorker(base, nil)
	ctx := context.Background()
	if err := w.Compile(ctx, &CompileRequest{Session: "s", Spec: spec, Profiles: profs, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	keys := ShardKeys(spec.Seed, 2)
	req := &ExecuteRequest{Session: "s", Shard: 0, ShardKey: keys[0], Jobs: shardJobs(t, keys, 0, 6)}

	want, err := w.Execute(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	var got []*scenario.Outcome
	batches := 0
	err = w.ExecuteStream(ctx, req, func(outs []*scenario.Outcome) error {
		batches++
		got = append(got, outs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if batches != 3 {
		t.Errorf("stream arrived in %d batches, want 3 (6 jobs, 2 per line)", batches)
	}
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("streamed outcomes differ from plain execute\nstream: %s\nplain:  %s", b, a)
	}

	// Pre-stream validation failures must come back as proper statuses with
	// sentinel codes, exactly like the non-streaming path.
	err = w.ExecuteStream(ctx, &ExecuteRequest{Session: "ghost"}, func([]*scenario.Outcome) error { return nil })
	if !errors.Is(err, ErrNoSession) {
		t.Errorf("unknown session over stream: %v, want ErrNoSession", err)
	}
	err = w.ExecuteStream(ctx, &ExecuteRequest{Session: "s", Shard: 0, ShardKey: keys[0] ^ 1}, func([]*scenario.Outcome) error { return nil })
	if !errors.Is(err, ErrShardKey) {
		t.Errorf("mismatched shard key over stream: %v, want ErrShardKey", err)
	}
}

// TestStreamClientFallbackAndTruncation covers the client against servers
// that cannot stream: a plain-JSON answer degrades to a single emit, and an
// NDJSON stream that ends without a done line is an error, never a silently
// short result.
func TestStreamClientFallbackAndTruncation(t *testing.T) {
	ctx := context.Background()
	emitCount := 0
	collect := func(outs []*scenario.Outcome) error { emitCount++; return nil }

	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(&ExecuteResponse{Outcomes: []*scenario.Outcome{}})
	}))
	defer legacy.Close()
	if err := NewHTTPWorker(legacy.URL, nil).ExecuteStream(ctx, &ExecuteRequest{Session: "s"}, collect); err != nil {
		t.Errorf("plain-JSON fallback: %v", err)
	}
	if emitCount != 1 {
		t.Errorf("fallback emitted %d times, want 1", emitCount)
	}

	cut := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"outcomes":[]}`) // a batch line, then EOF: no done line
	}))
	defer cut.Close()
	err := NewHTTPWorker(cut.URL, nil).ExecuteStream(ctx, &ExecuteRequest{Session: "s"}, collect)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("cut stream: err = %v, want truncation error", err)
	}

	short := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"done":true,"n":5}`) // claims 5 outcomes, sent none
	}))
	defer short.Close()
	err = NewHTTPWorker(short.URL, nil).ExecuteStream(ctx, &ExecuteRequest{Session: "s"}, collect)
	if err == nil || !strings.Contains(err.Error(), "done line says") {
		t.Errorf("short stream: err = %v, want count-mismatch error", err)
	}

	inband := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"outcomes":[]}`)
		fmt.Fprintln(w, `{"error":"session evicted mid-chunk","code":"no_session"}`)
	}))
	defer inband.Close()
	err = NewHTTPWorker(inband.URL, nil).ExecuteStream(ctx, &ExecuteRequest{Session: "s"}, collect)
	if !errors.Is(err, ErrNoSession) {
		t.Errorf("in-band stream error: err = %v, want ErrNoSession", err)
	}
}
