package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"synapse/internal/scenario"
	"synapse/internal/store"
)

// marshalReport renders a report exactly as the scenario golden fixtures
// were written: indented JSON plus a trailing newline.
func marshalReport(tb testing.TB, rep *scenario.Report) []byte {
	tb.Helper()
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		tb.Fatal(err)
	}
	return append(b, '\n')
}

// timelineCSV renders the report's timeline, or nil when it has none.
func timelineCSV(tb testing.TB, rep *scenario.Report) []byte {
	tb.Helper()
	if rep.Timeline == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := rep.TimelineCSV(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// runDist executes spec through a coordinator over the given fleet and
// returns the report plus the coordinator for stats assertions.
func runDist(tb testing.TB, spec *scenario.Spec, st store.Store, cfg Config) (*scenario.Report, *Coordinator) {
	tb.Helper()
	ctx := context.Background()
	co, err := NewCoordinator(ctx, spec, st, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	rep, err := scenario.Run(ctx, spec, st, scenario.RunOptions{Executor: co})
	if err != nil {
		tb.Fatal(err)
	}
	return rep, co
}

// TestDistGoldenByteIdentity is the differential gate this package exists
// to pass: every golden scenario, distributed over in-process fleets of 1,
// 2, 4 and 8 workers, must reproduce the committed single-process golden
// report — and timeline CSV, where the spec has one — byte for byte. A diff
// here means sharding, the wire encoding, or the fold changed observable
// semantics, not just internals.
func TestDistGoldenByteIdentity(t *testing.T) {
	specs, err := filepath.Glob(filepath.Join("..", "scenario", "testdata", "*.spec.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 3 {
		t.Fatalf("expected at least 3 golden specs, found %d", len(specs))
	}
	st := seedStore(t, "mdsim", "sleep")
	for _, specPath := range specs {
		name := strings.TrimSuffix(filepath.Base(specPath), ".spec.json")
		t.Run(name, func(t *testing.T) {
			spec, err := scenario.Load(specPath)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("..", "scenario", "testdata", name+".golden.json"))
			if err != nil {
				t.Fatalf("missing scenario golden: %v", err)
			}
			var wantCSV []byte
			csvPath := filepath.Join("..", "scenario", "testdata", name+".timeline.golden.csv")
			if b, err := os.ReadFile(csvPath); err == nil {
				wantCSV = b
			}
			for _, fleet := range []int{1, 2, 4, 8} {
				// Defaults, then aggressive chunking + speculation + a tiny
				// streaming window: scheduling config must never reach the
				// report.
				for _, variant := range []struct {
					name string
					cfg  Config
				}{
					{"defaults", Config{Workers: localFleet(fleet)}},
					{"chunked", Config{Workers: localFleet(fleet), ChunkSize: 2,
						StealAfter: 20 * time.Millisecond, Window: 5}},
				} {
					rep, co := runDist(t, spec, st, variant.cfg)
					if got := marshalReport(t, rep); !bytes.Equal(got, want) {
						t.Errorf("fleet %d (%s): report diverged from single-process golden\ngot:\n%s\nwant:\n%s",
							fleet, variant.name, got, want)
					}
					gotCSV := timelineCSV(t, rep)
					if (gotCSV == nil) != (wantCSV == nil) {
						t.Fatalf("fleet %d (%s): timeline presence mismatch (got %v, golden %v)",
							fleet, variant.name, gotCSV != nil, wantCSV != nil)
					}
					if gotCSV != nil && !bytes.Equal(gotCSV, wantCSV) {
						t.Errorf("fleet %d (%s): timeline CSV diverged from golden\ngot:\n%s\nwant:\n%s",
							fleet, variant.name, gotCSV, wantCSV)
					}
					if s := co.Stats(); s.Jobs == 0 || s.RPCs == 0 {
						t.Errorf("fleet %d (%s): coordinator did no work: %+v", fleet, variant.name, s)
					} else if s.WorkerFailures != 0 {
						t.Errorf("fleet %d (%s): unexpected worker failures: %+v", fleet, variant.name, s)
					}
				}
			}
		})
	}
}

// TestDistMatchesLocalRun extends byte-identity to a jittered eager spec:
// per-instance float64 loads exercise the load-bits job encoding and spread
// jobs across many shards.
func TestDistMatchesLocalRun(t *testing.T) {
	st := seedStore(t, "mdsim", "sleep")
	spec := jitteredSpec()
	local, err := scenario.Run(context.Background(), spec, st, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := marshalReport(t, local)
	for _, fleet := range []int{1, 2, 4, 8} {
		for _, shards := range []int{1, 3, 16} {
			for _, chunk := range []int{0, 3} {
				cfg := Config{Workers: localFleet(fleet), Shards: shards, ChunkSize: chunk}
				if chunk != 0 {
					cfg.Window = 4
					cfg.StealAfter = 20 * time.Millisecond
				}
				rep, _ := runDist(t, spec, st, cfg)
				if got := marshalReport(t, rep); !bytes.Equal(got, want) {
					t.Errorf("fleet %d, shards %d, chunk %d: distributed report != local run\ngot:\n%s\nwant:\n%s",
						fleet, shards, chunk, got, want)
				}
			}
		}
	}
}

// dyingWorker passes through to its inner worker for the first dieAfter
// Execute calls, then fails every one — a worker crash as the coordinator
// observes it.
type dyingWorker struct {
	Worker
	mu       sync.Mutex
	calls    int
	dieAfter int
}

func (d *dyingWorker) Execute(ctx context.Context, req *ExecuteRequest) ([]*scenario.Outcome, error) {
	d.mu.Lock()
	d.calls++
	n := d.calls
	d.mu.Unlock()
	if n > d.dieAfter {
		return nil, fmt.Errorf("injected worker crash (call %d)", n)
	}
	return d.Worker.Execute(ctx, req)
}

func (d *dyingWorker) executeCalls() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.calls
}

// bigJitteredSpec has enough distinct jobs that every worker in a fleet of
// four receives several shards in one ExecuteJobs round.
func bigJitteredSpec() *scenario.Spec {
	spec := jitteredSpec()
	spec.Name = "dist-jitter-big"
	spec.Workloads[0].Arrival = scenario.Arrival{Process: scenario.ArrivalClosed, Clients: 4, Iterations: 5}
	spec.Workloads[1].Arrival = scenario.Arrival{Process: scenario.ArrivalConstant, Rate: 2, Count: 8}
	return spec
}

// TestDistWorkerKillReassignment is the failure half of the differential
// contract: a worker that dies mid-run loses its shards to the survivors,
// the shards are recomputed, and the merged report is still byte-identical
// to the no-failure run.
func TestDistWorkerKillReassignment(t *testing.T) {
	st := seedStore(t, "mdsim", "sleep")
	spec := bigJitteredSpec()
	local, err := scenario.Run(context.Background(), spec, st, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := marshalReport(t, local)

	for _, variant := range []struct {
		name string
		cfg  Config
	}{
		{"defaults", Config{Shards: 12, Retry: fastRetry()}},
		{"chunked", Config{Shards: 12, Retry: fastRetry(), ChunkSize: 2,
			StealAfter: 20 * time.Millisecond, Window: 6}},
	} {
		t.Run(variant.name, func(t *testing.T) {
			dying := &dyingWorker{Worker: NewLocalWorker("dying", 2), dieAfter: 1}
			cfg := variant.cfg
			cfg.Workers = append([]Worker{dying}, localFleet(3)...)
			rep, co := runDist(t, spec, st, cfg)
			if got := marshalReport(t, rep); !bytes.Equal(got, want) {
				t.Errorf("report after worker kill diverged from clean run\ngot:\n%s\nwant:\n%s", got, want)
			}
			if n := dying.executeCalls(); n <= dying.dieAfter {
				t.Fatalf("dying worker saw %d execute calls; the kill never triggered", n)
			}
			s := co.Stats()
			if s.WorkerFailures != 1 {
				t.Errorf("worker failures = %d, want 1: %+v", s.WorkerFailures, s)
			}
			if s.RecomputedChunks == 0 {
				t.Errorf("no shards recomputed after the kill: %+v", s)
			}
			if s.LiveWorkers != 3 {
				t.Errorf("live workers = %d, want 3: %+v", s.LiveWorkers, s)
			}
		})
	}
}

// TestDistAllWorkersDead: when the whole fleet dies the run fails with
// ErrNoWorkers instead of hanging or folding a partial report.
func TestDistAllWorkersDead(t *testing.T) {
	st := seedStore(t, "mdsim", "sleep")
	spec := jitteredSpec()
	fleet := []Worker{
		&dyingWorker{Worker: NewLocalWorker("d0", 1)},
		&dyingWorker{Worker: NewLocalWorker("d1", 1)},
	}
	ctx := context.Background()
	co, err := NewCoordinator(ctx, spec, st, Config{Workers: fleet, Retry: fastRetry()})
	if err != nil {
		t.Fatal(err)
	}
	_, err = scenario.Run(ctx, spec, st, scenario.RunOptions{Executor: co})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
	if s := co.Stats(); s.LiveWorkers != 0 || s.WorkerFailures != 2 {
		t.Errorf("stats after total fleet loss = %+v", s)
	}
}
