package dist

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"

	"synapse/internal/retry"
	"synapse/internal/scenario"
	"synapse/internal/store"
	"synapse/internal/telemetry"
)

// Config tunes a coordinator.
type Config struct {
	// Workers is the fleet. At least one is required.
	Workers []Worker
	// Shards is the partition granularity (shard keys derive from the
	// scenario seed, so the partition itself is deterministic). 0 picks
	// 4× the fleet size — enough slack that reassignment after a failure
	// spreads across survivors instead of doubling one worker's share.
	Shards int
	// Retry governs each shard RPC; nil uses retry.Default. Protocol
	// errors (invalid request, shard-key mismatch) are always terminal
	// regardless of the policy's own classifier.
	Retry *retry.Policy
	// Logger receives shard dispatch and failure events. nil discards.
	Logger *slog.Logger
	// Metrics, when non-nil, receives the coordinator's instruments
	// (jobs, shard RPCs, worker failures, live-worker gauge).
	Metrics *telemetry.Registry
}

// workerState is the coordinator's view of one fleet member.
type workerState struct {
	w Worker
	// mu serializes compilation so concurrent shards on one worker do
	// not compile twice.
	mu       sync.Mutex
	compiled bool
	dead     atomic.Bool
}

// Coordinator partitions replay jobs into deterministic shards and executes
// them on the fleet. It implements scenario.Executor, so plugging it into
// scenario.RunOptions.Executor distributes any scenario unchanged.
type Coordinator struct {
	creq   *CompileRequest
	keys   []uint64
	policy retry.Policy
	log    *slog.Logger

	workers []*workerState

	// counters (exposed via Stats and, optionally, Config.Metrics)
	jobs             atomic.Int64
	rpcs             atomic.Int64
	failures         atomic.Int64
	recomputedShards atomic.Int64
}

// Stats is a snapshot of the coordinator's counters.
type Stats struct {
	// Jobs counts replay jobs dispatched; RPCs counts shard executions
	// attempted (retries included); WorkerFailures counts workers marked
	// dead; RecomputedShards counts shard reassignments after a failure.
	Jobs             int64 `json:"jobs"`
	RPCs             int64 `json:"rpcs"`
	WorkerFailures   int64 `json:"worker_failures"`
	RecomputedShards int64 `json:"recomputed_shards"`
	// LiveWorkers is the current live fleet size.
	LiveWorkers int `json:"live_workers"`
}

// NewCoordinator resolves the spec's profiles through st and prepares the
// fleet-wide compile request. Workers compile lazily, on the first shard
// each receives.
func NewCoordinator(ctx context.Context, spec *scenario.Spec, st store.Store, cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("dist: no workers configured")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	profs, err := scenario.ResolveProfiles(ctx, spec, st)
	if err != nil {
		return nil, err
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 4 * len(cfg.Workers)
	}
	policy := retry.Default()
	if cfg.Retry != nil {
		policy = *cfg.Retry
	}
	inner := policy.Classify
	policy.Classify = func(err error) retry.Class {
		if errors.Is(err, ErrInvalid) || errors.Is(err, ErrShardKey) {
			return retry.Terminal
		}
		if inner != nil {
			return inner(err)
		}
		return retry.Transient
	}
	log := cfg.Logger
	if log == nil {
		log = telemetry.NopLogger()
	}
	nonce := make([]byte, 8)
	_, _ = rand.Read(nonce)
	co := &Coordinator{
		creq: &CompileRequest{
			Session:  "sc-" + hex.EncodeToString(nonce),
			Spec:     spec,
			Profiles: profs,
			Shards:   shards,
		},
		keys:   ShardKeys(spec.Seed, shards),
		policy: policy,
		log:    log,
	}
	for _, w := range cfg.Workers {
		co.workers = append(co.workers, &workerState{w: w})
	}
	if reg := cfg.Metrics; reg != nil {
		reg.GaugeFunc("synapse_dist_live_workers",
			"Workers the coordinator currently considers alive.",
			func() float64 { return float64(len(co.live())) })
		reg.GaugeFunc("synapse_dist_jobs_total",
			"Replay jobs dispatched to the fleet.",
			func() float64 { return float64(co.jobs.Load()) })
		reg.GaugeFunc("synapse_dist_shard_rpcs_total",
			"Shard executions attempted, retries included.",
			func() float64 { return float64(co.rpcs.Load()) })
		reg.GaugeFunc("synapse_dist_worker_failures_total",
			"Workers marked dead after exhausting their retry policy.",
			func() float64 { return float64(co.failures.Load()) })
	}
	return co, nil
}

// Shards returns the partition granularity the coordinator derived.
func (co *Coordinator) Shards() int { return co.creq.Shards }

// Stats snapshots the coordinator's counters.
func (co *Coordinator) Stats() Stats {
	return Stats{
		Jobs:             co.jobs.Load(),
		RPCs:             co.rpcs.Load(),
		WorkerFailures:   co.failures.Load(),
		RecomputedShards: co.recomputedShards.Load(),
		LiveWorkers:      len(co.live()),
	}
}

// live returns the live fleet, in configuration order.
func (co *Coordinator) live() []*workerState {
	var out []*workerState
	for _, ws := range co.workers {
		if !ws.dead.Load() {
			out = append(out, ws)
		}
	}
	return out
}

// markDead retires a worker after its retry policy exhausted.
func (co *Coordinator) markDead(ws *workerState, err error) {
	if ws.dead.CompareAndSwap(false, true) {
		co.failures.Add(1)
		co.log.Warn("worker failed; reassigning its shards",
			slog.String("worker", ws.w.Name()), slog.String("error", err.Error()))
	}
}

// ExecuteJobs implements scenario.Executor: partition the jobs into shards
// by rendezvous hashing, execute every non-empty shard on the live fleet,
// reassigning and recomputing shards whose worker dies, and return the
// outcomes in job order — the fixed order that makes failures and fleet
// size invisible downstream.
func (co *Coordinator) ExecuteJobs(ctx context.Context, jobs []scenario.Job) ([]*scenario.Outcome, error) {
	outs := make([]*scenario.Outcome, len(jobs))
	if len(jobs) == 0 {
		return outs, nil
	}
	co.jobs.Add(int64(len(jobs)))

	// Partition: job index lists per shard, shard order fixed by index.
	byShard := make([][]int, len(co.keys))
	for i, j := range jobs {
		s := shardOf(jobHash(j), co.keys)
		byShard[s] = append(byShard[s], i)
	}
	var pending []int
	for s, idxs := range byShard {
		if len(idxs) > 0 {
			pending = append(pending, s)
		}
	}

	for round := 0; len(pending) > 0; round++ {
		live := co.live()
		if len(live) == 0 {
			return nil, fmt.Errorf("%w: %d shards unexecuted", ErrNoWorkers, len(pending))
		}
		if round > 0 {
			co.recomputedShards.Add(int64(len(pending)))
			co.log.Info("recomputing reassigned shards",
				slog.Int("shards", len(pending)), slog.Int("live_workers", len(live)))
		}
		type result struct {
			ws   *workerState
			outs []*scenario.Outcome
			err  error
		}
		results := make([]result, len(pending))
		var wg sync.WaitGroup
		for i, s := range pending {
			ws := live[i%len(live)]
			shardJobs := make([]scenario.Job, len(byShard[s]))
			for k, idx := range byShard[s] {
				shardJobs[k] = jobs[idx]
			}
			wg.Add(1)
			go func(i, s int, ws *workerState) {
				defer wg.Done()
				o, err := co.executeShard(ctx, ws, s, shardJobs)
				results[i] = result{ws: ws, outs: o, err: err}
			}(i, s, ws)
		}
		wg.Wait()

		var next []int
		for i, r := range results {
			s := pending[i]
			if r.err != nil {
				if ctx.Err() != nil {
					return nil, r.err
				}
				if errors.Is(r.err, ErrInvalid) || errors.Is(r.err, ErrShardKey) {
					return nil, r.err
				}
				co.markDead(r.ws, r.err)
				next = append(next, s)
				continue
			}
			idxs := byShard[s]
			if len(r.outs) != len(idxs) {
				return nil, fmt.Errorf("dist: worker %s returned %d outcomes for shard %d's %d jobs",
					r.ws.w.Name(), len(r.outs), s, len(idxs))
			}
			for k, idx := range idxs {
				if r.outs[k] == nil {
					return nil, fmt.Errorf("dist: worker %s returned a nil outcome for shard %d job %d",
						r.ws.w.Name(), s, k)
				}
				outs[idx] = r.outs[k]
			}
		}
		pending = next
	}
	return outs, nil
}

// executeShard runs one shard on one worker under the retry policy,
// compiling the session on first contact (or after the worker lost it).
func (co *Coordinator) executeShard(ctx context.Context, ws *workerState, shard int, jobs []scenario.Job) ([]*scenario.Outcome, error) {
	var outs []*scenario.Outcome
	err := co.policy.Do(ctx, func(ctx context.Context) error {
		if err := co.ensureCompiled(ctx, ws); err != nil {
			return err
		}
		co.rpcs.Add(1)
		o, err := ws.w.Execute(ctx, &ExecuteRequest{
			Session:  co.creq.Session,
			Shard:    shard,
			ShardKey: co.keys[shard],
			Jobs:     jobs,
		})
		if errors.Is(err, ErrNoSession) {
			// The worker restarted or evicted us: force a fresh compile
			// and report transient so the policy retries this shard here.
			ws.mu.Lock()
			ws.compiled = false
			ws.mu.Unlock()
			return err
		}
		if err != nil {
			return err
		}
		outs = o
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// ensureCompiled compiles the session on the worker exactly once (again
// after a session loss), serialized per worker.
func (co *Coordinator) ensureCompiled(ctx context.Context, ws *workerState) error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.compiled {
		return nil
	}
	if err := ws.w.Compile(ctx, co.creq); err != nil {
		return err
	}
	co.log.Debug("worker compiled session",
		slog.String("worker", ws.w.Name()), slog.String("session", co.creq.Session))
	ws.compiled = true
	return nil
}

// Run distributes spec across the fleet: it builds a coordinator, plugs it
// into the scenario engine as the executor, and runs the scenario. The
// report is byte-identical to scenario.Run with no executor.
func Run(ctx context.Context, spec *scenario.Spec, st store.Store, cfg Config, opts scenario.RunOptions) (*scenario.Report, error) {
	co, err := NewCoordinator(ctx, spec, st, cfg)
	if err != nil {
		return nil, err
	}
	opts.Executor = co
	return scenario.Run(ctx, spec, st, opts)
}
