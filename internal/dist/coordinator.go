package dist

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"synapse/internal/retry"
	"synapse/internal/scenario"
	"synapse/internal/store"
	"synapse/internal/telemetry"
)

// Dispatch defaults. The chunk is the unit of scheduling, stealing and
// speculation; the window is the dispatch high-water mark that bounds the
// coordinator's resident outcomes.
const (
	defaultChunkSize = 256
	defaultWindow    = 4096

	// The straggler threshold adapts to observed chunk latency, like
	// storeclnt's request hedge: a ring of recent successful attempt
	// durations, speculation at stealFactor × p95 (never below stealFloor),
	// and a fixed default until the ring has latWarmup samples.
	latWindow         = 64
	latWarmup         = 16
	stealFactor       = 2
	stealFloor        = 5 * time.Millisecond
	defaultStealAfter = 250 * time.Millisecond
)

// Config tunes a coordinator.
type Config struct {
	// Workers is the fleet. At least one is required.
	Workers []Worker
	// Shards is the partition granularity (shard keys derive from the
	// scenario seed, so the partition itself is deterministic). 0 picks
	// 4× the fleet size — enough slack that reassignment after a failure
	// spreads across survivors instead of doubling one worker's share.
	Shards int
	// ChunkSize splits each shard into job chunks of at most this size —
	// the unit of dispatch, work stealing and speculative re-execution.
	// Chunking changes only when work runs, never what runs or the fold
	// order: the shard partition stays a pure function of (seed, shards).
	// 0 picks 256; negative disables chunking (one chunk per shard).
	ChunkSize int
	// StealAfter is the straggler threshold: when the queue is drained and
	// a worker sits idle, an in-flight chunk older than this is
	// speculatively re-executed there, first-complete-wins. 0 adapts the
	// threshold to the fleet's observed p95 chunk latency; negative
	// disables speculation.
	StealAfter time.Duration
	// Window bounds the coordinator's resident outcomes: new chunks are
	// dispatched only while the jobs in flight or buffered ahead of the
	// fold watermark fit it, so peak retained outcomes are O(window), not
	// O(jobs). 0 picks 4096. One chunk is always admitted, whatever the
	// window, so progress never deadlocks.
	Window int
	// Retry governs each chunk RPC; nil uses retry.Default. Protocol
	// errors (invalid request, shard-key mismatch) are always terminal
	// regardless of the policy's own classifier.
	Retry *retry.Policy
	// Logger receives chunk dispatch and failure events. nil discards.
	Logger *slog.Logger
	// Metrics, when non-nil, receives the coordinator's instruments
	// (jobs, chunks, steals, fold watermark, worker failures, live-worker
	// gauge).
	Metrics *telemetry.Registry

	// now is the scheduler's clock, replaceable in tests. nil is time.Now.
	now func() time.Time
}

// workerState is the coordinator's view of one fleet member.
type workerState struct {
	w   Worker
	idx int // configuration order, the tiebreak of the affinity pick
	// mu serializes compilation so concurrent chunks on one worker do
	// not compile twice.
	mu       sync.Mutex
	compiled bool
	// warm mirrors compiled for lock-free reads by the affinity pick:
	// reassignment prefers workers that already hold the session.
	warm atomic.Bool
	dead atomic.Bool
}

// chunkState is one chunk of one shard within the current dispatch: a run
// of the shard's jobs small enough to schedule, steal and re-execute as a
// unit.
type chunkState struct {
	shard int
	idxs  []int          // global job indices, ascending
	jobs  []scenario.Job // packed payload, parallel to idxs
	// attempts counts executions currently in flight (primary plus at most
	// one speculative twin); done flips at the first commit.
	attempts int
	done     bool
	stolen   bool // a speculative twin was dispatched; at most one per chunk
	// digest is the canonical hash of the committed outcomes, kept while a
	// twin is still running so the loser can be asserted byte-equal.
	digest    uint64
	hasDigest bool
	started   time.Time // start of the current primary attempt
	// cancels aborts the in-flight attempts ([0] primary, [1] twin): the
	// first commit cancels its rival, so a stolen straggler chunk stops
	// costing wall clock the moment the speculative copy lands. A loser
	// that completes despite the cancel is still verified byte-equal.
	cancels [2]context.CancelFunc
}

// dispatchScratch is the per-instant dispatch state, pooled across
// scheduling instants: a clustered scenario dispatches once per instant,
// and reallocating the partition lists, chunk table and payload buffer
// every time was measurable allocation churn on the sim hot path. plan
// resets and reuses everything; the AllocsPerRun regression test pins the
// steady state at zero.
type dispatchScratch struct {
	byShard  [][]int
	chunks   []chunkState
	queue    []*chunkState
	payload  []scenario.Job
	buffered map[int]*scenario.Outcome
	flush    []*scenario.Outcome
	requeue  []*chunkState
	idle     []*workerState
}

// sort.Interface over scratch.queue, ordered by first global job index —
// dispatch order must follow the fold order so the chunk holding the
// watermark is always among the earliest dispatched. Implemented on the
// scratch itself so sorting allocates nothing.
func (sc *dispatchScratch) Len() int      { return len(sc.queue) }
func (sc *dispatchScratch) Swap(i, j int) { sc.queue[i], sc.queue[j] = sc.queue[j], sc.queue[i] }
func (sc *dispatchScratch) Less(i, j int) bool {
	return sc.queue[i].idxs[0] < sc.queue[j].idxs[0]
}

// Coordinator partitions replay jobs into deterministic shards, splits the
// shards into chunks, and pull-dispatches the chunks across the fleet with
// straggler speculation and a streaming, windowed fold. It implements
// scenario.StreamingExecutor, so plugging it into
// scenario.RunOptions.Executor distributes any scenario unchanged.
type Coordinator struct {
	creq       *CompileRequest
	keys       []uint64
	policy     retry.Policy
	log        *slog.Logger
	chunkSize  int
	window     int
	stealAfter time.Duration
	now        func() time.Time

	workers []*workerState

	// execMu serializes dispatches: the scratch below has one owner.
	execMu  sync.Mutex
	scratch dispatchScratch

	// lat is the chunk-latency ring behind the adaptive steal threshold.
	latMu  sync.Mutex
	lat    [latWindow]time.Duration
	latIdx int
	latN   int

	// counters (exposed via Stats and, optionally, Config.Metrics)
	jobs         atomic.Int64
	rpcs         atomic.Int64
	failures     atomic.Int64
	recomputed   atomic.Int64
	chunks       atomic.Int64
	steals       atomic.Int64
	specWins     atomic.Int64
	specDiscards atomic.Int64
	compiles     atomic.Int64
	peakResident atomic.Int64
	watermark    atomic.Int64
}

// Stats is a snapshot of the coordinator's counters.
type Stats struct {
	// Jobs counts replay jobs dispatched; RPCs counts chunk executions
	// attempted (retries included); WorkerFailures counts workers marked
	// dead; RecomputedChunks counts chunk reassignments after a failure.
	Jobs             int64 `json:"jobs"`
	RPCs             int64 `json:"rpcs"`
	WorkerFailures   int64 `json:"worker_failures"`
	RecomputedChunks int64 `json:"recomputed_chunks"`
	// Chunks counts chunk dispatches (speculative twins included); Steals
	// counts speculative re-executions dispatched; SpeculativeWins the
	// speculations that committed first; SpeculativeDiscards the race
	// losers whose byte-equal outcomes were dropped.
	Chunks              int64 `json:"chunks"`
	Steals              int64 `json:"steals"`
	SpeculativeWins     int64 `json:"speculative_wins"`
	SpeculativeDiscards int64 `json:"speculative_discards"`
	// Compiles counts compile RPCs issued fleet-wide — affinity keeps it
	// near the number of workers that actually received work.
	Compiles int64 `json:"compiles"`
	// PeakResident is the dispatch window's high-water mark: the most jobs
	// simultaneously in flight or buffered ahead of the fold watermark.
	PeakResident int64 `json:"peak_resident_outcomes"`
	// LiveWorkers is the current live fleet size.
	LiveWorkers int `json:"live_workers"`
}

// NewCoordinator resolves the spec's profiles through st and prepares the
// fleet-wide compile request. Workers compile lazily, on the first chunk
// each receives.
func NewCoordinator(ctx context.Context, spec *scenario.Spec, st store.Store, cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("dist: no workers configured")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	profs, err := scenario.ResolveProfiles(ctx, spec, st)
	if err != nil {
		return nil, err
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 4 * len(cfg.Workers)
	}
	chunk := cfg.ChunkSize
	if chunk == 0 {
		chunk = defaultChunkSize
	}
	window := cfg.Window
	if window <= 0 {
		window = defaultWindow
	}
	if chunk > 0 && window < chunk {
		window = chunk
	}
	policy := retry.Default()
	if cfg.Retry != nil {
		policy = *cfg.Retry
	}
	inner := policy.Classify
	policy.Classify = func(err error) retry.Class {
		if errors.Is(err, ErrInvalid) || errors.Is(err, ErrShardKey) {
			return retry.Terminal
		}
		if inner != nil {
			return inner(err)
		}
		return retry.Transient
	}
	log := cfg.Logger
	if log == nil {
		log = telemetry.NopLogger()
	}
	now := cfg.now
	if now == nil {
		now = time.Now
	}
	nonce := make([]byte, 8)
	_, _ = rand.Read(nonce)
	co := &Coordinator{
		creq: &CompileRequest{
			Session:  "sc-" + hex.EncodeToString(nonce),
			Spec:     spec,
			Profiles: profs,
			Shards:   shards,
		},
		keys:       ShardKeys(spec.Seed, shards),
		policy:     policy,
		log:        log,
		chunkSize:  chunk,
		window:     window,
		stealAfter: cfg.StealAfter,
		now:        now,
	}
	for i, w := range cfg.Workers {
		co.workers = append(co.workers, &workerState{w: w, idx: i})
	}
	if reg := cfg.Metrics; reg != nil {
		reg.GaugeFunc("synapse_dist_live_workers",
			"Workers the coordinator currently considers alive.",
			func() float64 { return float64(len(co.live())) })
		reg.GaugeFunc("synapse_dist_jobs_total",
			"Replay jobs dispatched to the fleet.",
			func() float64 { return float64(co.jobs.Load()) })
		reg.GaugeFunc("synapse_dist_shard_rpcs_total",
			"Chunk executions attempted, retries included.",
			func() float64 { return float64(co.rpcs.Load()) })
		reg.GaugeFunc("synapse_dist_worker_failures_total",
			"Workers marked dead after exhausting their retry policy.",
			func() float64 { return float64(co.failures.Load()) })
		reg.GaugeFunc("synapse_dist_chunks_total",
			"Job chunks dispatched, speculative twins included.",
			func() float64 { return float64(co.chunks.Load()) })
		reg.GaugeFunc("synapse_dist_steals_total",
			"Speculative straggler re-executions dispatched.",
			func() float64 { return float64(co.steals.Load()) })
		reg.GaugeFunc("synapse_dist_speculative_wins_total",
			"Speculative executions that completed before the original.",
			func() float64 { return float64(co.specWins.Load()) })
		reg.GaugeFunc("synapse_dist_fold_watermark",
			"Job index the streaming fold has folded up to in the current dispatch.",
			func() float64 { return float64(co.watermark.Load()) })
	}
	return co, nil
}

// Shards returns the partition granularity the coordinator derived.
func (co *Coordinator) Shards() int { return co.creq.Shards }

// ChunkSize returns the dispatch chunk size (negative: chunking disabled,
// one chunk per shard).
func (co *Coordinator) ChunkSize() int { return co.chunkSize }

// Stats snapshots the coordinator's counters.
func (co *Coordinator) Stats() Stats {
	return Stats{
		Jobs:                co.jobs.Load(),
		RPCs:                co.rpcs.Load(),
		WorkerFailures:      co.failures.Load(),
		RecomputedChunks:    co.recomputed.Load(),
		Chunks:              co.chunks.Load(),
		Steals:              co.steals.Load(),
		SpeculativeWins:     co.specWins.Load(),
		SpeculativeDiscards: co.specDiscards.Load(),
		Compiles:            co.compiles.Load(),
		PeakResident:        co.peakResident.Load(),
		LiveWorkers:         len(co.live()),
	}
}

// live returns the live fleet, in configuration order.
func (co *Coordinator) live() []*workerState {
	var out []*workerState
	for _, ws := range co.workers {
		if !ws.dead.Load() {
			out = append(out, ws)
		}
	}
	return out
}

// markDead retires a worker after its retry policy exhausted.
func (co *Coordinator) markDead(ws *workerState, err error) {
	if ws.dead.CompareAndSwap(false, true) {
		co.failures.Add(1)
		co.log.Warn("worker failed; reassigning its chunks",
			slog.String("worker", ws.w.Name()), slog.String("error", err.Error()))
	}
}

// recordLatency folds one successful attempt duration into the ring the
// adaptive steal threshold reads.
func (co *Coordinator) recordLatency(d time.Duration) {
	co.latMu.Lock()
	co.lat[co.latIdx] = d
	co.latIdx = (co.latIdx + 1) % latWindow
	if co.latN < latWindow {
		co.latN++
	}
	co.latMu.Unlock()
}

// stealThreshold returns the current straggler threshold: the configured
// value when fixed, else stealFactor × the observed p95 chunk latency
// (stealFloor-bounded), or the warmup default while samples are scarce.
func (co *Coordinator) stealThreshold() time.Duration {
	if co.stealAfter > 0 {
		return co.stealAfter
	}
	co.latMu.Lock()
	defer co.latMu.Unlock()
	if co.latN < latWarmup {
		return defaultStealAfter
	}
	var buf [latWindow]time.Duration
	n := copy(buf[:], co.lat[:co.latN])
	// Insertion sort: n ≤ 64 and this must not allocate.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && buf[j] < buf[j-1]; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	th := stealFactor * buf[(95*(n-1))/100]
	if th < stealFloor {
		th = stealFloor
	}
	return th
}

// outcomesDigest canonically hashes a chunk's outcomes: FNV-1a over the
// JSON encoding (Go marshals map keys sorted, so the encoding is
// canonical). Equal digests mean byte-equal encodings — the check that
// makes first-complete-wins speculation safe: a primary and its twin must
// be indistinguishable, or the workers are nondeterministic and no fold
// may happen.
func outcomesDigest(outs []*scenario.Outcome) (uint64, error) {
	h := fnv.New64a()
	enc := json.NewEncoder(h)
	for _, o := range outs {
		if err := enc.Encode(o); err != nil {
			return 0, err
		}
	}
	return h.Sum64(), nil
}

// plan partitions jobs into shards by rendezvous hashing and splits each
// shard into chunks, reusing the pooled scratch. The partition is a pure
// function of (seed, shards): chunking changes only the scheduling
// granularity, never which shard a job belongs to or the job-order fold.
func (co *Coordinator) plan(jobs []scenario.Job) {
	sc := &co.scratch
	if cap(sc.byShard) < len(co.keys) {
		sc.byShard = make([][]int, len(co.keys))
	}
	sc.byShard = sc.byShard[:len(co.keys)]
	for s := range sc.byShard {
		sc.byShard[s] = sc.byShard[s][:0]
	}
	for i, j := range jobs {
		s := shardOf(jobHash(j), co.keys)
		sc.byShard[s] = append(sc.byShard[s], i)
	}
	if cap(sc.payload) < len(jobs) {
		sc.payload = make([]scenario.Job, len(jobs))
	}
	sc.payload = sc.payload[:len(jobs)]
	n := 0
	for _, idxs := range sc.byShard {
		if len(idxs) == 0 {
			continue
		}
		if co.chunkSize <= 0 {
			n++
			continue
		}
		n += (len(idxs) + co.chunkSize - 1) / co.chunkSize
	}
	if cap(sc.chunks) < n {
		sc.chunks = make([]chunkState, 0, n)
	}
	sc.chunks = sc.chunks[:0]
	if cap(sc.queue) < n {
		sc.queue = make([]*chunkState, 0, n)
	}
	sc.queue = sc.queue[:0]
	pos := 0
	for s, idxs := range sc.byShard {
		for a := 0; a < len(idxs); {
			b := len(idxs)
			if co.chunkSize > 0 && a+co.chunkSize < b {
				b = a + co.chunkSize
			}
			part := idxs[a:b]
			payload := sc.payload[pos : pos+len(part)]
			for k, gi := range part {
				payload[k] = jobs[gi]
			}
			pos += len(part)
			sc.chunks = append(sc.chunks, chunkState{shard: s, idxs: part, jobs: payload})
			a = b
		}
	}
	// The pointers are taken only after sc.chunks stopped growing.
	for i := range sc.chunks {
		sc.queue = append(sc.queue, &sc.chunks[i])
	}
	sort.Sort(sc)
}

// attemptResult is one finished chunk execution, success or not.
type attemptResult struct {
	c    *chunkState
	ws   *workerState
	spec bool
	outs []*scenario.Outcome
	err  error
	dur  time.Duration
	// cancelled: the attempt's context was revoked by the coordinator (the
	// rival committed, or the run is failing) while the run itself is live —
	// an abandoned attempt, not a worker failure.
	cancelled bool
}

// ExecuteJobsStream implements scenario.StreamingExecutor: partition into
// shards and chunks, pull-dispatch the chunks across the live fleet, and
// fold the contiguous job-order prefix out through sink as chunks commit,
// releasing outcome memory behind the watermark.
//
// Scheduling is a single event loop: idle workers pull the next chunk from
// the queue (window permitting); when the queue drains and workers idle, the
// oldest in-flight chunk past the straggler threshold is speculatively
// re-executed on one of them, first-complete-wins: the first commit cancels
// the rival attempt, so the straggler stops costing wall clock. A loser
// that completes despite the cancel has its outcomes asserted byte-equal to
// the winner's — a mismatch means a worker is nondeterministic, which voids
// the fold contract, so it is a hard error rather than a coin flip. (The
// check is opportunistic by construction: a cancelled loser that aborts
// verified nothing, one that returns is verified.) Workers whose retries
// exhaust are
// marked dead and their in-flight chunks requeued, preferring replacement
// workers that already hold a compiled session.
func (co *Coordinator) ExecuteJobsStream(ctx context.Context, jobs []scenario.Job, sink func(first int, outs []*scenario.Outcome) error) error {
	if len(jobs) == 0 {
		return nil
	}
	co.execMu.Lock()
	defer co.execMu.Unlock()
	co.jobs.Add(int64(len(jobs)))
	co.plan(jobs)
	sc := &co.scratch
	if sc.buffered == nil {
		sc.buffered = make(map[int]*scenario.Outcome)
	}
	sc.idle = sc.idle[:0]
	for _, ws := range co.workers {
		if !ws.dead.Load() {
			sc.idle = append(sc.idle, ws)
		}
	}
	sc.requeue = sc.requeue[:0]
	co.watermark.Store(0)

	done := make(chan attemptResult)
	var (
		inflight   int // attempts in flight
		next       int // next undispatched queue position
		admitted   int // jobs in flight or buffered ahead of the watermark
		watermark  int // next global job index to fold
		chunksDone int
		failErr    error
	)

	// pick removes and returns the idle worker to dispatch to: warm
	// (session already compiled) before cold, configuration order as the
	// tiebreak — the session-affinity rule that keeps reassignment after a
	// death from recompiling on a cold worker while a warm one is free.
	pick := func() *workerState {
		best := -1
		for i, ws := range sc.idle {
			if best < 0 {
				best = i
				continue
			}
			bw := sc.idle[best]
			if ws.warm.Load() != bw.warm.Load() {
				if ws.warm.Load() {
					best = i
				}
				continue
			}
			if ws.idx < bw.idx {
				best = i
			}
		}
		ws := sc.idle[best]
		sc.idle[best] = sc.idle[len(sc.idle)-1]
		sc.idle = sc.idle[:len(sc.idle)-1]
		return ws
	}

	start := func(c *chunkState, ws *workerState, spec bool) {
		c.attempts++
		slot := 0
		if spec {
			slot = 1
			c.stolen = true
			co.steals.Add(1)
			co.log.Info("speculating straggler chunk",
				slog.Int("shard", c.shard), slog.Int("jobs", len(c.idxs)),
				slog.String("thief", ws.w.Name()))
		} else {
			c.started = co.now()
		}
		actx, cancel := context.WithCancel(ctx)
		c.cancels[slot] = cancel
		co.chunks.Add(1)
		inflight++
		go func() {
			t0 := co.now()
			outs, err := co.executeChunk(actx, ws, c, spec)
			done <- attemptResult{c: c, ws: ws, spec: spec, outs: outs, err: err,
				dur: co.now().Sub(t0), cancelled: actx.Err() != nil && ctx.Err() == nil}
		}()
	}

	// cancelInflight revokes every live attempt — on a terminal failure the
	// drain should not wait out stragglers whose results are already moot.
	cancelInflight := func() {
		for i := range sc.chunks {
			for _, cancel := range sc.chunks[i].cancels {
				if cancel != nil {
					cancel()
				}
			}
		}
	}

	// oldestEligible scans in-flight chunks for the speculation candidate:
	// the earliest-started chunk past the threshold with no twin yet. When
	// none has crossed it, wait is the time until the earliest will.
	oldestEligible := func(now time.Time) (cand *chunkState, wait time.Duration) {
		wait = -1
		th := co.stealThreshold()
		for i := range sc.chunks {
			c := &sc.chunks[i]
			if c.done || c.attempts != 1 || c.stolen || c.started.IsZero() {
				continue
			}
			el := now.Sub(c.started)
			if el >= th {
				if cand == nil || c.started.Before(cand.started) {
					cand = c
				}
			} else if d := th - el; wait < 0 || d < wait {
				wait = d
			}
		}
		return cand, wait
	}

	// flush folds the contiguous prefix out through sink and releases it.
	flush := func() error {
		sc.flush = sc.flush[:0]
		first := watermark
		for {
			o, ok := sc.buffered[watermark]
			if !ok {
				break
			}
			sc.flush = append(sc.flush, o)
			delete(sc.buffered, watermark)
			watermark++
		}
		if len(sc.flush) == 0 {
			return nil
		}
		admitted -= len(sc.flush)
		co.watermark.Store(int64(watermark))
		err := sink(first, sc.flush)
		for i := range sc.flush {
			sc.flush[i] = nil
		}
		return err
	}

	handle := func(r attemptResult) {
		inflight--
		r.c.attempts--
		slot := 0
		if r.spec {
			slot = 1
		}
		if cancel := r.c.cancels[slot]; cancel != nil {
			cancel() // release the attempt's context
			r.c.cancels[slot] = nil
		}
		if r.err != nil {
			if r.cancelled {
				// An abandoned attempt (rival committed, or the run is
				// failing), not a worker failure: the worker stays live.
				if !r.ws.dead.Load() {
					sc.idle = append(sc.idle, r.ws)
				}
				return
			}
			if failErr == nil {
				if ctx.Err() != nil || errors.Is(r.err, ErrInvalid) || errors.Is(r.err, ErrShardKey) {
					failErr = r.err
				} else {
					co.markDead(r.ws, r.err)
					if !r.c.done && r.c.attempts == 0 {
						co.recomputed.Add(1)
						r.c.started = time.Time{}
						sc.requeue = append(sc.requeue, r.c)
						co.log.Info("requeueing chunk after worker failure",
							slog.Int("shard", r.c.shard), slog.Int("jobs", len(r.c.idxs)))
					}
				}
			}
			if !r.ws.dead.Load() {
				sc.idle = append(sc.idle, r.ws)
			}
			return
		}
		co.recordLatency(r.dur)
		if !r.ws.dead.Load() {
			sc.idle = append(sc.idle, r.ws)
		}
		if failErr != nil {
			return // draining; the result is moot
		}
		if r.c.done {
			// The race's loser: its outcomes must be byte-equal to what the
			// winner committed, then they are discarded.
			d, err := outcomesDigest(r.outs)
			if err != nil {
				failErr = err
				return
			}
			if !r.c.hasDigest || d != r.c.digest {
				failErr = fmt.Errorf("dist: worker %s computed different outcomes for shard %d chunk at job %d — workers are nondeterministic, refusing to fold",
					r.ws.w.Name(), r.c.shard, r.c.idxs[0])
				return
			}
			co.specDiscards.Add(1)
			return
		}
		if len(r.outs) != len(r.c.idxs) {
			failErr = fmt.Errorf("dist: worker %s returned %d outcomes for shard %d chunk's %d jobs",
				r.ws.w.Name(), len(r.outs), r.c.shard, len(r.c.idxs))
			return
		}
		for k, o := range r.outs {
			if o == nil {
				failErr = fmt.Errorf("dist: worker %s returned a nil outcome for shard %d job %d",
					r.ws.w.Name(), r.c.shard, k)
				return
			}
		}
		if r.c.attempts > 0 {
			// A twin is still out; remember what won so the loser can be
			// verified without retaining the outcomes themselves.
			d, err := outcomesDigest(r.outs)
			if err != nil {
				failErr = err
				return
			}
			r.c.digest, r.c.hasDigest = d, true
		}
		r.c.done = true
		if cancel := r.c.cancels[1-slot]; cancel != nil {
			cancel() // first-complete-wins: abort the racing rival
		}
		chunksDone++
		if r.spec {
			co.specWins.Add(1)
		}
		for k, idx := range r.c.idxs {
			sc.buffered[idx] = r.outs[k]
		}
		if err := flush(); err != nil {
			failErr = err
		}
	}

	for {
		if failErr != nil {
			cancelInflight() // drain fast: moot attempts should not run on
		}
		// Dispatch while workers idle and work is available: requeued
		// chunks first (their jobs are already admitted), then the queue
		// head window permitting, then speculation on stragglers.
		for failErr == nil && len(sc.idle) > 0 {
			if n := len(sc.requeue); n > 0 {
				c := sc.requeue[n-1]
				sc.requeue = sc.requeue[:n-1]
				start(c, pick(), false)
				continue
			}
			if next < len(sc.queue) {
				c := sc.queue[next]
				if admitted+len(c.idxs) <= co.window || inflight == 0 {
					next++
					admitted += len(c.idxs)
					if int64(admitted) > co.peakResident.Load() {
						co.peakResident.Store(int64(admitted))
					}
					start(c, pick(), false)
					continue
				}
			}
			if co.stealAfter < 0 || inflight == 0 {
				break
			}
			cand, _ := oldestEligible(co.now())
			if cand == nil {
				break
			}
			start(cand, pick(), true)
		}
		if inflight == 0 {
			if failErr != nil {
				return failErr
			}
			if chunksDone == len(sc.chunks) {
				break
			}
			return fmt.Errorf("%w: %d chunks unexecuted", ErrNoWorkers, len(sc.chunks)-chunksDone)
		}
		// Wait for a completion; with spare workers and speculation armed,
		// also wake when the oldest in-flight chunk crosses the threshold.
		var timerC <-chan time.Time
		var timer *time.Timer
		if failErr == nil && co.stealAfter >= 0 && len(sc.idle) > 0 {
			if _, wait := oldestEligible(co.now()); wait >= 0 {
				if wait < time.Millisecond {
					wait = time.Millisecond
				}
				timer = time.NewTimer(wait)
				timerC = timer.C
			}
		}
		select {
		case r := <-done:
			handle(r)
		case <-timerC:
		}
		if timer != nil {
			timer.Stop()
		}
	}
	if watermark != len(jobs) {
		return fmt.Errorf("dist: fold watermark stopped at %d of %d jobs", watermark, len(jobs))
	}
	return nil
}

// ExecuteJobs implements scenario.Executor by collecting the stream — the
// path cluster-mode instants take, where each batch is folded immediately
// by the caller anyway.
func (co *Coordinator) ExecuteJobs(ctx context.Context, jobs []scenario.Job) ([]*scenario.Outcome, error) {
	outs := make([]*scenario.Outcome, len(jobs))
	err := co.ExecuteJobsStream(ctx, jobs, func(first int, batch []*scenario.Outcome) error {
		copy(outs[first:], batch)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// executeChunk runs one chunk attempt on one worker under the retry
// policy, compiling the session on first contact (or after the worker lost
// it). Streaming workers deliver their outcomes incrementally; the batches
// are gathered here because commit is all-or-nothing per attempt — the
// first-complete-wins race and the byte-equality check both need the
// chunk's result whole.
func (co *Coordinator) executeChunk(ctx context.Context, ws *workerState, c *chunkState, speculative bool) ([]*scenario.Outcome, error) {
	req := &ExecuteRequest{
		Session:     co.creq.Session,
		Shard:       c.shard,
		ShardKey:    co.keys[c.shard],
		Jobs:        c.jobs,
		Speculative: speculative,
	}
	var outs []*scenario.Outcome
	err := co.policy.Do(ctx, func(ctx context.Context) error {
		if err := co.ensureCompiled(ctx, ws); err != nil {
			return err
		}
		co.rpcs.Add(1)
		var o []*scenario.Outcome
		var err error
		if sw, ok := ws.w.(StreamWorker); ok {
			o = make([]*scenario.Outcome, 0, len(c.jobs))
			err = sw.ExecuteStream(ctx, req, func(batch []*scenario.Outcome) error {
				o = append(o, batch...)
				return nil
			})
		} else {
			o, err = ws.w.Execute(ctx, req)
		}
		if errors.Is(err, ErrNoSession) {
			// The worker restarted or evicted us: force a fresh compile
			// and report transient so the policy retries this chunk here.
			ws.mu.Lock()
			ws.compiled = false
			ws.mu.Unlock()
			ws.warm.Store(false)
			return err
		}
		if err != nil {
			return err
		}
		outs = o
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// ensureCompiled compiles the session on the worker exactly once (again
// after a session loss), serialized per worker.
func (co *Coordinator) ensureCompiled(ctx context.Context, ws *workerState) error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.compiled {
		return nil
	}
	if err := ws.w.Compile(ctx, co.creq); err != nil {
		return err
	}
	co.compiles.Add(1)
	co.log.Debug("worker compiled session",
		slog.String("worker", ws.w.Name()), slog.String("session", co.creq.Session))
	ws.compiled = true
	ws.warm.Store(true)
	return nil
}

// Run distributes spec across the fleet: it builds a coordinator, plugs it
// into the scenario engine as the executor, and runs the scenario. The
// report is byte-identical to scenario.Run with no executor.
func Run(ctx context.Context, spec *scenario.Spec, st store.Store, cfg Config, opts scenario.RunOptions) (*scenario.Report, error) {
	co, err := NewCoordinator(ctx, spec, st, cfg)
	if err != nil {
		return nil, err
	}
	opts.Executor = co
	return scenario.Run(ctx, spec, st, opts)
}
