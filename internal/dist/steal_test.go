package dist

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"synapse/internal/scenario"
)

// slowWorker delays every Execute by a fixed amount and ignores
// cancellation — a straggler that always delivers, so the coordinator's
// late-loser verification path actually runs. It deliberately does not
// implement StreamWorker, so it also exercises the non-streaming fallback.
type slowWorker struct {
	Worker
	delay time.Duration
}

func (s *slowWorker) Execute(ctx context.Context, req *ExecuteRequest) ([]*scenario.Outcome, error) {
	time.Sleep(s.delay)
	return s.Worker.Execute(context.WithoutCancel(ctx), req)
}

// obedientSlowWorker is a straggler that honors cancellation — the normal
// remote worker shape, whose stolen chunks abort the moment the speculative
// twin commits.
type obedientSlowWorker struct {
	Worker
	delay time.Duration
}

func (s *obedientSlowWorker) Execute(ctx context.Context, req *ExecuteRequest) ([]*scenario.Outcome, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.Worker.Execute(ctx, req)
}

// evilWorker is a slowWorker that additionally perturbs its first outcome —
// a nondeterministic worker, which the speculation race must detect rather
// than silently fold.
type evilWorker struct {
	slowWorker
}

func (e *evilWorker) Execute(ctx context.Context, req *ExecuteRequest) ([]*scenario.Outcome, error) {
	outs, err := e.slowWorker.Execute(ctx, req)
	if err != nil || len(outs) == 0 {
		return outs, err
	}
	perturbed := *outs[0]
	perturbed.Tx += time.Nanosecond
	outs[0] = &perturbed
	return outs, nil
}

// countingWorker counts compile RPCs, for the session-affinity regression.
type countingWorker struct {
	Worker
	compiles atomic.Int64
}

func (c *countingWorker) Compile(ctx context.Context, req *CompileRequest) error {
	c.compiles.Add(1)
	return c.Worker.Compile(ctx, req)
}

// slowFailWorker compiles fine but fails every Execute after a delay — a
// worker that accepts a session and then takes its chunks down with it.
type slowFailWorker struct {
	Worker
	delay time.Duration
}

func (s *slowFailWorker) Execute(ctx context.Context, req *ExecuteRequest) ([]*scenario.Outcome, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return nil, context.DeadlineExceeded // transient-looking, exhausts the policy
}

// TestDistStealRaceFirstCompleteWins is the speculation property test: with
// one straggling worker and one fast one, the straggler's chunk is stolen
// after the threshold, the speculative copy wins, the straggler's late
// result is verified byte-equal and discarded — and the report is still
// byte-identical to the local run.
func TestDistStealRaceFirstCompleteWins(t *testing.T) {
	st := seedStore(t, "mdsim", "sleep")
	spec := jitteredSpec()
	local, err := scenario.Run(context.Background(), spec, st, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := marshalReport(t, local)

	slow := &slowWorker{Worker: NewLocalWorker("slow", 2), delay: 400 * time.Millisecond}
	fleet := []Worker{slow, NewLocalWorker("fast", 2)}
	rep, co := runDist(t, spec, st, Config{
		Workers:    fleet,
		Shards:     2,
		ChunkSize:  -1, // one chunk per shard: at most one chunk per worker
		StealAfter: 30 * time.Millisecond,
	})
	if got := marshalReport(t, rep); !bytes.Equal(got, want) {
		t.Errorf("report with speculation diverged from local run\ngot:\n%s\nwant:\n%s", got, want)
	}
	s := co.Stats()
	if s.Steals != 1 || s.SpeculativeWins != 1 {
		t.Errorf("steals = %d, speculative wins = %d, want 1 and 1: %+v", s.Steals, s.SpeculativeWins, s)
	}
	if s.SpeculativeDiscards != 1 {
		t.Errorf("speculative discards = %d, want 1 (straggler's late result verified and dropped): %+v",
			s.SpeculativeDiscards, s)
	}
	if s.WorkerFailures != 0 {
		t.Errorf("speculation marked a worker dead: %+v", s)
	}
}

// TestDistStealCancelsLoser pins the wall-clock half of speculation: when
// the straggler honors cancellation, the run finishes as soon as the
// speculative copy commits instead of waiting out the straggler — and the
// loser's abort is not mistaken for a worker failure.
func TestDistStealCancelsLoser(t *testing.T) {
	st := seedStore(t, "mdsim", "sleep")
	spec := jitteredSpec()
	local, err := scenario.Run(context.Background(), spec, st, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := marshalReport(t, local)

	slow := &obedientSlowWorker{Worker: NewLocalWorker("slow", 2), delay: 5 * time.Second}
	fleet := []Worker{slow, NewLocalWorker("fast", 2)}
	t0 := time.Now()
	rep, co := runDist(t, spec, st, Config{
		Workers:    fleet,
		Shards:     2,
		ChunkSize:  -1,
		StealAfter: 30 * time.Millisecond,
	})
	if elapsed := time.Since(t0); elapsed >= slow.delay {
		t.Errorf("run took %v, at least the straggler's full %v delay: the loser was never cancelled",
			elapsed, slow.delay)
	}
	if got := marshalReport(t, rep); !bytes.Equal(got, want) {
		t.Errorf("report after loser cancellation diverged from local run\ngot:\n%s\nwant:\n%s", got, want)
	}
	s := co.Stats()
	if s.Steals != 1 || s.SpeculativeWins != 1 {
		t.Errorf("steals = %d, speculative wins = %d, want 1 and 1: %+v", s.Steals, s.SpeculativeWins, s)
	}
	if s.SpeculativeDiscards != 0 {
		t.Errorf("speculative discards = %d, want 0 (cancelled loser returned nothing to verify): %+v",
			s.SpeculativeDiscards, s)
	}
	if s.WorkerFailures != 0 {
		t.Errorf("cancelled loser was marked a worker failure: %+v", s)
	}
}

// TestDistStealNondeterminismDetected: when the two copies of a raced chunk
// disagree, the coordinator must refuse to fold — a hard error, not a coin
// flip on which copy wins.
func TestDistStealNondeterminismDetected(t *testing.T) {
	st := seedStore(t, "mdsim", "sleep")
	spec := jitteredSpec()
	evil := &evilWorker{slowWorker{Worker: NewLocalWorker("evil", 2), delay: 400 * time.Millisecond}}
	fleet := []Worker{evil, NewLocalWorker("fast", 2)}
	ctx := context.Background()
	co, err := NewCoordinator(ctx, spec, st, Config{
		Workers:    fleet,
		Shards:     2,
		ChunkSize:  -1,
		StealAfter: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = scenario.Run(ctx, spec, st, scenario.RunOptions{Executor: co})
	if err == nil || !strings.Contains(err.Error(), "nondeterministic") {
		t.Fatalf("divergent speculation outcome folded silently: err = %v", err)
	}
}

// TestDistAffinityPrefersWarmWorker pins the session-affinity rule: when a
// worker dies and its chunk is requeued, it goes to an idle worker that
// already compiled the session, not to a cold one — so a death costs zero
// extra compile RPCs while a warm worker is free.
func TestDistAffinityPrefersWarmWorker(t *testing.T) {
	st := seedStore(t, "mdsim", "sleep")
	spec := jitteredSpec()
	local, err := scenario.Run(context.Background(), spec, st, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := marshalReport(t, local)

	// w0 takes a chunk and dies slowly; w1 finishes its chunk fast and is
	// warm when the requeue happens; w2 must stay cold and uncompiled.
	dying := &slowFailWorker{Worker: NewLocalWorker("dying", 2), delay: 120 * time.Millisecond}
	cold := &countingWorker{Worker: NewLocalWorker("cold", 2)}
	fleet := []Worker{dying, NewLocalWorker("warm", 2), cold}
	rep, co := runDist(t, spec, st, Config{
		Workers:    fleet,
		Shards:     2,
		ChunkSize:  -1, // exactly one chunk per shard: w2 gets no initial work
		StealAfter: -1, // isolate reassignment from speculation
		Retry:      fastRetry(),
	})
	if got := marshalReport(t, rep); !bytes.Equal(got, want) {
		t.Errorf("report after warm reassignment diverged from local run\ngot:\n%s\nwant:\n%s", got, want)
	}
	if n := cold.compiles.Load(); n != 0 {
		t.Errorf("cold worker compiled %d times; the warm worker should have taken the requeued chunk", n)
	}
	s := co.Stats()
	if s.Compiles != 2 {
		t.Errorf("compiles = %d, want 2 (dying + warm, never cold): %+v", s.Compiles, s)
	}
	if s.WorkerFailures != 1 || s.RecomputedChunks == 0 {
		t.Errorf("death not observed as one failure + requeue: %+v", s)
	}
}

// plainExecutor hides the coordinator's streaming face, forcing the scenario
// engine down the collect-everything ExecuteJobs path.
type plainExecutor struct{ scenario.Executor }

// TestDistStreamingWindowBoundsResidency is the streaming-fold memory test:
// with a job set much larger than the window, the dispatch window bounds the
// coordinator's peak resident outcomes, and the report is byte-identical to
// both the local run and the non-streaming executor path.
func TestDistStreamingWindowBoundsResidency(t *testing.T) {
	st := seedStore(t, "mdsim", "sleep")
	spec := bigJitteredSpec() // 36 jobs, far more than the window below
	local, err := scenario.Run(context.Background(), spec, st, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := marshalReport(t, local)

	const chunk, window = 4, 8
	cfg := Config{
		Workers:    localFleet(2),
		Shards:     8,
		ChunkSize:  chunk,
		Window:     window,
		StealAfter: -1,
	}
	rep, co := runDist(t, spec, st, cfg)
	if got := marshalReport(t, rep); !bytes.Equal(got, want) {
		t.Errorf("windowed streaming report diverged from local run\ngot:\n%s\nwant:\n%s", got, want)
	}
	s := co.Stats()
	if s.Jobs <= window {
		t.Fatalf("spec too small to exercise the window: %d jobs", s.Jobs)
	}
	// Chunks may be admitted past the window when the fold stalls on an
	// undispatched chunk (the deadlock escape), and each escape can overshoot
	// by up to a chunk — so the guarantee is O(window), pinned here at 2×.
	if s.PeakResident > 2*window {
		t.Errorf("peak resident outcomes = %d, want <= 2x window %d", s.PeakResident, window)
	}
	if s.PeakResident >= s.Jobs {
		t.Errorf("peak resident outcomes = %d, not below the %d-job set: window never bounded anything",
			s.PeakResident, s.Jobs)
	}

	// The same coordinator behind a plain Executor (streaming face hidden)
	// must produce the identical report through the collect path.
	ctx := context.Background()
	co2 := mustCoordinator(t, spec, st, cfg)
	rep2, err := scenario.Run(ctx, spec, st, scenario.RunOptions{Executor: plainExecutor{co2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := marshalReport(t, rep2); !bytes.Equal(got, want) {
		t.Errorf("non-streaming executor path diverged from local run\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestDistPlanAllocFree pins the pooled dispatch scratch: after warmup,
// re-planning the same dispatch allocates nothing, so a clustered scenario's
// per-instant dispatches do not churn the heap.
func TestDistPlanAllocFree(t *testing.T) {
	st := seedStore(t, "mdsim", "sleep")
	co := mustCoordinator(t, jitteredSpec(), st, Config{Workers: localFleet(2), Shards: 8, ChunkSize: 3})
	jobs := make([]scenario.Job, 100)
	for i := range jobs {
		jobs[i] = scenario.Job{
			Workload: i % 2,
			LoadBits: math.Float64bits(0.001 * float64(i+1)),
		}
	}
	co.plan(jobs) // warm the scratch
	if allocs := testing.AllocsPerRun(100, func() { co.plan(jobs) }); allocs != 0 {
		t.Errorf("plan allocates %.1f objects per dispatch after warmup, want 0", allocs)
	}
}
