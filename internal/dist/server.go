package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"synapse/internal/scenario"
	"synapse/internal/telemetry"
)

// Error codes carried in structured error responses. The code, not the
// message, is the contract: HTTPWorker rebuilds the sentinel errors from
// them.
const (
	CodeInvalid    = "invalid"
	CodeNoSession  = "no_session"
	CodeShardKey   = "shard_key"
	CodeInternal   = "internal"
	CodeOverloaded = "overloaded"
	CodeDraining   = "draining"
)

// ErrorResponse is the wire form of a failed request.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// HealthResponse is the /v1/healthz body.
type HealthResponse struct {
	Status      string          `json:"status"` // "ok" or "draining"
	Sessions    int             `json:"sessions"`
	InFlight    int64           `json:"inflight"`
	MaxInFlight int             `json:"max_inflight,omitempty"`
	Queue       int             `json:"queue,omitempty"`
	Shed        int64           `json:"shed"`
	Build       telemetry.Build `json:"build"`
}

// ServerConfig tunes a worker server.
type ServerConfig struct {
	// Workers bounds the emulation fan-out per execute request
	// (0 = GOMAXPROCS).
	Workers int
	// MaxSessions bounds held compile sessions; the oldest is evicted
	// past the cap (0 = 4). Coordinators recover via no_session.
	MaxSessions int
	// MaxInFlight bounds concurrently-executing requests (0 = unbounded);
	// excess requests briefly wait in a Queue-deep admission queue, then
	// shed with 429 and a Retry-After hint.
	MaxInFlight int
	// Queue is the admission-queue depth (0 = shed immediately).
	Queue int
	// RequestTimeout is the server-side deadline per admitted request and
	// the bound on admission-queue waits (0 = none).
	RequestTimeout time.Duration
	// StreamBatch is the outcome-batch granularity of streaming execute
	// responses — one NDJSON line per about this many outcomes (0 = 64).
	StreamBatch int
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// Metrics is the registry rendered at GET /v1/metrics; nil gets a
	// private one.
	Metrics *telemetry.Registry
	// Logger receives one structured line per request plus lifecycle
	// events. nil discards.
	Logger *slog.Logger
}

// WorkerServer serves the worker protocol over HTTP:
//
//	POST /v1/compile   compile a session (CompileRequest -> CompileResponse)
//	POST /v1/execute   execute one shard (ExecuteRequest -> ExecuteResponse)
//	GET  /v1/healthz   liveness + admission counters + build identity
//	GET  /v1/metrics   Prometheus text exposition (RED + worker series)
//
// It follows the storesrv service conventions: every data-path request
// passes admission control and the RED middleware (healthz/metrics/pprof
// bypass admission but are still observed), errors carry structured codes,
// and Shutdown drains gracefully — new requests shed with 503/draining
// while in-flight shards finish.
type WorkerServer struct {
	local *LocalWorker
	mux   *http.ServeMux

	sem     chan struct{}
	queue   chan struct{}
	timeout time.Duration

	draining atomic.Bool
	inflight atomic.Int64
	shed     atomic.Int64

	reg       *telemetry.Registry
	requests  *telemetry.CounterVec
	latency   *telemetry.HistogramVec
	shedVec   *telemetry.CounterVec
	jobsRun   *telemetry.Counter
	chunksRun *telemetry.Counter
	specRun   *telemetry.Counter

	streamBatch int

	log     *slog.Logger
	build   telemetry.Build
	httpSrv *http.Server
}

// NewServer builds a worker server around an in-process worker core.
func NewServer(cfg ServerConfig) *WorkerServer {
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	log := cfg.Logger
	if log == nil {
		log = telemetry.NopLogger()
	}
	s := &WorkerServer{
		local:       &LocalWorker{name: "server", workers: cfg.Workers, sessions: newSessions(cfg.MaxSessions)},
		mux:         http.NewServeMux(),
		timeout:     cfg.RequestTimeout,
		streamBatch: cfg.StreamBatch,
		reg:         reg,
		log:         log,
		build:       telemetry.BuildInfo(),
	}
	if cfg.MaxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInFlight)
		if cfg.Queue > 0 {
			s.queue = make(chan struct{}, cfg.Queue)
		}
	}
	s.requests = reg.CounterVec("synapse_http_requests_total",
		"HTTP requests served, by route, method and status code.",
		"route", "method", "code")
	s.latency = reg.HistogramVec("synapse_http_request_duration_seconds",
		"HTTP request latency in seconds, by route and method.",
		nil, "route", "method")
	s.shedVec = reg.CounterVec("synapse_admission_shed_total",
		"Requests refused by admission control, by shed code.",
		"code")
	s.jobsRun = reg.Counter("synapse_dist_worker_jobs_total",
		"Replay jobs this worker executed.")
	s.chunksRun = reg.Counter("synapse_dist_worker_chunks_total",
		"Job chunks (execute requests) this worker ran.")
	s.specRun = reg.Counter("synapse_dist_worker_speculative_total",
		"Chunks this worker ran as speculative straggler re-executions.")
	reg.GaugeFunc("synapse_http_inflight_requests",
		"Requests currently executing (admission-controlled data path).",
		func() float64 { return float64(s.inflight.Load()) })
	reg.GaugeFunc("synapse_admission_queue_depth",
		"Requests currently parked in the admission queue.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("synapse_admission_draining",
		"1 while the server is draining for shutdown.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("synapse_dist_worker_sessions",
		"Compile sessions currently held.",
		func() float64 { return float64(s.local.sessions.len()) })
	b := s.build
	reg.GaugeVec("synapse_build_info",
		"Build metadata; the value is always 1.",
		"version", "go_version", "revision").
		With(b.Version, b.GoVersion, b.Revision).Set(1)

	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("POST /v1/execute", s.handleExecute)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.Handle("GET /v1/metrics", reg.Handler())
	if cfg.Pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Metrics returns the registry the server's instruments live in — the same
// one /v1/metrics renders.
func (s *WorkerServer) Metrics() *telemetry.Registry { return s.reg }

// statusRecorder captures the response status for the RED middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// routeOf collapses request paths onto a bounded route label set.
func routeOf(path string) string {
	switch path {
	case "/v1/compile", "/v1/execute", "/v1/healthz", "/v1/metrics":
		return path
	}
	if strings.HasPrefix(path, "/debug/pprof") {
		return "/debug/pprof"
	}
	return "other"
}

// ServeHTTP implements http.Handler: admission, deadline, RED observation
// and one structured log line around every request.
func (s *WorkerServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w}
	s.serve(rec, r)
	elapsed := time.Since(start)
	route := routeOf(r.URL.Path)
	status := rec.status
	if status == 0 {
		status = http.StatusOK
	}
	s.requests.With(route, r.Method, strconv.Itoa(status)).Inc()
	s.latency.With(route, r.Method).Observe(elapsed.Seconds())
	level := slog.LevelDebug
	if status >= 500 || status == http.StatusTooManyRequests {
		level = slog.LevelWarn
	}
	s.log.Log(r.Context(), level, "request",
		slog.String("route", route),
		slog.String("method", r.Method),
		slog.Int("code", status),
		slog.Duration("duration", elapsed))
}

// bypass: health, metrics and profiling must answer even when the data
// path is saturated.
func bypass(r *http.Request) bool {
	return r.URL.Path == "/v1/healthz" ||
		r.URL.Path == "/v1/metrics" ||
		strings.HasPrefix(r.URL.Path, "/debug/pprof")
}

func (s *WorkerServer) serve(w http.ResponseWriter, r *http.Request) {
	if bypass(r) {
		s.mux.ServeHTTP(w, r)
		return
	}
	release := s.admit(w, r)
	if release == nil {
		return // shed; response already written
	}
	defer release()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.mux.ServeHTTP(w, r)
}

// admit reserves an execution slot, queueing briefly at capacity. nil means
// the request was shed and the response written.
func (s *WorkerServer) admit(w http.ResponseWriter, r *http.Request) (release func()) {
	if s.draining.Load() {
		s.shedResponse(w, http.StatusServiceUnavailable, CodeDraining, "worker is draining")
		return nil
	}
	if s.sem == nil {
		return func() {}
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }
	default:
	}
	if !s.await(r) {
		s.shedResponse(w, http.StatusTooManyRequests, CodeOverloaded, "worker is at capacity")
		return nil
	}
	return func() { <-s.sem }
}

// await parks a request in the admission queue until a slot frees up, the
// caller gives up, or the wait budget burns down.
func (s *WorkerServer) await(r *http.Request) bool {
	if s.queue == nil {
		return false
	}
	select {
	case s.queue <- struct{}{}:
	default:
		return false
	}
	defer func() { <-s.queue }()
	wait := s.timeout
	if wait <= 0 {
		wait = time.Second
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return true
	case <-r.Context().Done():
		return false
	case <-t.C:
		return false
	}
}

func (s *WorkerServer) shedResponse(w http.ResponseWriter, status int, code, msg string) {
	s.shed.Add(1)
	s.shedVec.With(code).Inc()
	w.Header().Set("Retry-After", "1")
	writeJSON(w, status, ErrorResponse{Error: "dist: " + msg, Code: code})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// codeOf maps a worker error onto its structured code — the same mapping
// whether the code travels in an error status or an in-band stream line.
func codeOf(err error) string {
	switch {
	case errors.Is(err, ErrNoSession):
		return CodeNoSession
	case errors.Is(err, ErrShardKey):
		return CodeShardKey
	case errors.Is(err, ErrInvalid):
		return CodeInvalid
	}
	return CodeInternal
}

// writeError maps worker errors onto structured responses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	code := codeOf(err)
	switch code {
	case CodeNoSession:
		status = http.StatusNotFound
	case CodeShardKey:
		status = http.StatusConflict
	case CodeInvalid:
		status = http.StatusBadRequest
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Code: code})
}

func (s *WorkerServer) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("%w: decode compile: %v", ErrInvalid, err))
		return
	}
	sess, err := s.local.sessions.compile(r.Context(), &req, s.local.workers)
	if err != nil {
		writeError(w, err)
		return
	}
	s.log.Info("session compiled",
		slog.String("session", req.Session),
		slog.Int("workloads", len(req.Spec.Workloads)),
		slog.Int("shards", req.Shards))
	writeJSON(w, http.StatusOK, CompileResponse{Session: req.Session, Seed: sess.runner.Seed()})
}

func (s *WorkerServer) handleExecute(w http.ResponseWriter, r *http.Request) {
	var req ExecuteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("%w: decode execute: %v", ErrInvalid, err))
		return
	}
	// Validate before producing anything: session and shard-key failures
	// must surface as proper statuses even on the streaming path, where
	// mid-run errors can only travel in-band.
	sess, err := s.local.sessions.lookup(&req)
	if err != nil {
		writeError(w, err)
		return
	}
	s.chunksRun.Inc()
	if req.Speculative {
		s.specRun.Inc()
	}
	if !req.Stream {
		outs, err := sess.runner.ExecuteJobs(r.Context(), req.Jobs)
		if err != nil {
			writeError(w, err)
			return
		}
		s.jobsRun.Add(int64(len(req.Jobs)))
		writeJSON(w, http.StatusOK, ExecuteResponse{Outcomes: outs})
		return
	}
	// Streaming: one NDJSON StreamChunk line per outcome batch, flushed as
	// the runner's reorder buffer releases the contiguous prefix, then a
	// terminal done (or in-band error) line.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	streamed := 0
	err = sess.runner.ExecuteJobsStream(r.Context(), req.Jobs, s.streamBatch, func(outs []*scenario.Outcome) error {
		if err := enc.Encode(StreamChunk{Outcomes: outs}); err != nil {
			return err
		}
		streamed += len(outs)
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		_ = enc.Encode(StreamChunk{Error: err.Error(), Code: codeOf(err)})
		return
	}
	s.jobsRun.Add(int64(len(req.Jobs)))
	_ = enc.Encode(StreamChunk{Done: true, N: streamed})
}

func (s *WorkerServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:      status,
		Sessions:    s.local.sessions.len(),
		InFlight:    s.inflight.Load(),
		MaxInFlight: cap(s.sem),
		Queue:       cap(s.queue),
		Shed:        s.shed.Load(),
		Build:       s.build,
	})
}

// Start listens on addr and serves in the background, returning the bound
// address. Stop with Shutdown.
func (s *WorkerServer) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	s.httpSrv = &http.Server{Handler: s, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return ln.Addr(), nil
}

// Shutdown gracefully stops a Start'ed server: new requests shed with
// 503/draining while in-flight shards finish (bounded by ctx).
func (s *WorkerServer) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.httpSrv != nil {
		return s.httpSrv.Shutdown(ctx)
	}
	return nil
}
