package dist

import (
	"context"
	"fmt"
	"sync"

	"synapse/internal/scenario"
	"synapse/internal/sim"
	"synapse/internal/store"
)

// Worker is one fleet member as the coordinator sees it: compile a session,
// execute shards against it. Implementations: LocalWorker (in-process),
// HTTPWorker (a synapse-worker daemon). The contract is purity — Execute's
// outcomes depend only on the compiled (spec, profiles) and the jobs, so
// the coordinator may send any shard to any worker, in any order, any
// number of times.
type Worker interface {
	// Name identifies the worker in logs and errors.
	Name() string
	// Compile builds (or rebuilds — it is idempotent) the session.
	Compile(ctx context.Context, req *CompileRequest) error
	// Execute resolves one chunk's jobs, returning outcomes in job order.
	// ErrNoSession means the worker lost the session (restart/eviction);
	// the coordinator recompiles and retries.
	Execute(ctx context.Context, req *ExecuteRequest) ([]*scenario.Outcome, error)
}

// StreamWorker is a Worker that can stream a chunk's outcomes back in
// contiguous job-order batches as they complete, instead of one response
// body — the transport face of the streaming partial fold. emit is called
// serially; its batches concatenate to exactly Execute's result. The
// coordinator uses it when available and falls back to Execute otherwise,
// so wrappers and old workers keep working.
type StreamWorker interface {
	Worker
	ExecuteStream(ctx context.Context, req *ExecuteRequest, emit func(outs []*scenario.Outcome) error) error
}

// session is one compiled scenario held by a worker.
type session struct {
	runner *scenario.JobRunner
	shards int
}

// sessions is the bounded session table shared by LocalWorker and
// WorkerServer: compile registers, execute looks up, and the oldest session
// is evicted past the cap (coordinators recover from eviction via
// ErrNoSession, so the cap bounds memory, not correctness).
type sessions struct {
	mu    sync.Mutex
	max   int
	byID  map[string]*session
	order []string // insertion order, for eviction
}

func newSessions(max int) *sessions {
	if max <= 0 {
		max = 4
	}
	return &sessions{max: max, byID: make(map[string]*session)}
}

// compile validates req, builds the runner, and registers the session.
func (ss *sessions) compile(ctx context.Context, req *CompileRequest, workers int) (*session, error) {
	if req.Session == "" {
		return nil, fmt.Errorf("%w: empty session id", ErrInvalid)
	}
	if req.Spec == nil {
		return nil, fmt.Errorf("%w: no spec", ErrInvalid)
	}
	if len(req.Profiles) != len(req.Spec.Workloads) {
		return nil, fmt.Errorf("%w: %d profiles for %d workloads",
			ErrInvalid, len(req.Profiles), len(req.Spec.Workloads))
	}
	// Seed a private store with the shipped profiles: the runner resolves
	// exactly what the coordinator resolved, via the normal compile path.
	st := store.NewMem()
	for i, p := range req.Profiles {
		if p == nil {
			return nil, fmt.Errorf("%w: nil profile for workload %d", ErrInvalid, i)
		}
		if err := st.Put(p); err != nil {
			return nil, fmt.Errorf("%w: profile for workload %d: %v", ErrInvalid, i, err)
		}
	}
	runner, err := scenario.NewJobRunner(ctx, req.Spec, st, workers)
	if err != nil {
		return nil, fmt.Errorf("%w: compile: %v", ErrInvalid, err)
	}
	s := &session{runner: runner, shards: req.Shards}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if _, ok := ss.byID[req.Session]; !ok {
		ss.order = append(ss.order, req.Session)
		for len(ss.order) > ss.max {
			delete(ss.byID, ss.order[0])
			ss.order = ss.order[1:]
		}
	}
	ss.byID[req.Session] = s
	return s, nil
}

// get returns the session or ErrNoSession.
func (ss *sessions) get(id string) (*session, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if s, ok := ss.byID[id]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrNoSession, id)
}

// len reports the number of live sessions.
func (ss *sessions) len() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.byID)
}

// lookup resolves an execute request to its session, enforcing the
// determinism handshake: the coordinator's shard key must match the one
// this worker derives from its own compiled seed. Validation happens here,
// before any outcome is produced, so streaming responses can still fail
// with a proper pre-stream status.
func (ss *sessions) lookup(req *ExecuteRequest) (*session, error) {
	s, err := ss.get(req.Session)
	if err != nil {
		return nil, err
	}
	if req.Shard < 0 {
		return nil, fmt.Errorf("%w: negative shard %d", ErrInvalid, req.Shard)
	}
	if want := sim.StreamN(s.runner.Seed(), shardPrefix, req.Shard); req.ShardKey != want {
		return nil, fmt.Errorf("%w: shard %d key %#x, this worker derives %#x (differing spec, seed, or shard count)",
			ErrShardKey, req.Shard, req.ShardKey, want)
	}
	return s, nil
}

// execute runs one chunk against a held session.
func (ss *sessions) execute(ctx context.Context, req *ExecuteRequest) ([]*scenario.Outcome, error) {
	s, err := ss.lookup(req)
	if err != nil {
		return nil, err
	}
	return s.runner.ExecuteJobs(ctx, req.Jobs)
}

// executeStream runs one chunk, emitting outcomes in contiguous job-order
// batches of about batch as the runner's fan-out completes them.
func (ss *sessions) executeStream(ctx context.Context, req *ExecuteRequest, batch int, emit func(outs []*scenario.Outcome) error) error {
	s, err := ss.lookup(req)
	if err != nil {
		return err
	}
	return s.runner.ExecuteJobsStream(ctx, req.Jobs, batch, emit)
}

// LocalWorker executes shards in process: the worker protocol with the
// transport removed. Tests and single-host fan-out use it directly; it is
// also the execution core WorkerServer serves over HTTP.
type LocalWorker struct {
	name     string
	workers  int
	sessions *sessions
}

// NewLocalWorker returns an in-process worker. workers bounds its emulation
// fan-out (0 = GOMAXPROCS).
func NewLocalWorker(name string, workers int) *LocalWorker {
	return &LocalWorker{name: name, workers: workers, sessions: newSessions(0)}
}

// Name implements Worker.
func (w *LocalWorker) Name() string { return w.name }

// Compile implements Worker.
func (w *LocalWorker) Compile(ctx context.Context, req *CompileRequest) error {
	_, err := w.sessions.compile(ctx, req, w.workers)
	return err
}

// Execute implements Worker.
func (w *LocalWorker) Execute(ctx context.Context, req *ExecuteRequest) ([]*scenario.Outcome, error) {
	return w.sessions.execute(ctx, req)
}

// ExecuteStream implements StreamWorker: the transport-free streaming path,
// emitting straight from the runner's reorder buffer.
func (w *LocalWorker) ExecuteStream(ctx context.Context, req *ExecuteRequest, emit func(outs []*scenario.Outcome) error) error {
	return w.sessions.executeStream(ctx, req, 0, emit)
}
