// Package dist distributes one scenario across a fleet of workers: a
// coordinator keeps the discrete-event schedule (placement, queueing and
// virtual time are inherently global) and farms out the expensive part —
// the distinct emulation replays — to workers that compiled the same spec
// against the same profiles.
//
// The partition is deterministic and fleet-size independent. The scenario
// seed derives an indexed family of shard keys, sim.StreamN(seed, "shard",
// 0..S-1), and every replay job lands on the shard that wins rendezvous
// (highest-random-weight) hashing between the job's identity hash and the
// shard keys. Workers verify the key of every shard they are handed
// (ErrShardKey on mismatch), so two processes disagreeing about (spec,
// seed, shards) fail loudly instead of folding mismatched partials.
//
// The fold is fixed-order: outcomes are keyed by job identity and placed
// back in the coordinator's job order before the scenario engine aggregates
// them in deterministic instance order. Fleet size, shard count, RPC
// interleaving and worker failures are therefore all invisible in the
// merged report — it is byte-identical to a single-process run of the same
// (spec, seed), the contract the differential golden tests pin.
//
// Failures ride internal/retry: each shard RPC retries transient errors
// with full-jitter backoff, and a worker whose retries exhaust is marked
// dead; its shards are reassigned to the survivors and recomputed. Because
// outcomes are pure functions of the job, recomputation is exact, not
// approximate.
//
// The wire protocol (WorkerServer, HTTPWorker) is JSON over HTTP in the
// storesrv mold: structured error codes, /v1/healthz liveness, /v1/metrics
// Prometheus exposition behind RED middleware, bounded admission with
// shedding, and graceful drain. LocalWorker is the same worker with the
// transport removed, for tests and single-host fan-out.
package dist

import (
	"encoding/binary"
	"errors"
	"hash/fnv"

	"synapse/internal/profile"
	"synapse/internal/scenario"
	"synapse/internal/sim"
)

// Sentinel errors of the worker protocol. HTTPWorker rebuilds them from the
// structured error codes, so coordinator logic is transport-independent.
var (
	// ErrNoSession: the worker does not hold the referenced compile
	// session (it restarted, or evicted it). Recompile and retry.
	ErrNoSession = errors.New("dist: worker has no such session")
	// ErrShardKey: the worker's derived shard key disagrees with the
	// coordinator's — the two sides are not running the same (spec, seed,
	// shards) and no fold must happen. Terminal.
	ErrShardKey = errors.New("dist: shard key mismatch")
	// ErrInvalid: the worker rejected the request shape. Terminal.
	ErrInvalid = errors.New("dist: invalid request")
	// ErrNoWorkers: every worker in the fleet is dead.
	ErrNoWorkers = errors.New("dist: no live workers remain")
)

// CompileRequest ships everything a worker needs to build its JobRunner:
// the spec and the coordinator-resolved profiles. Workers have no store
// access — the profiles they emulate are exactly the ones the coordinator
// resolved, one more thing that cannot drift between the two sides.
type CompileRequest struct {
	// Session names this compilation; Execute requests reference it.
	Session string `json:"session"`
	// Spec is the scenario both sides run.
	Spec *scenario.Spec `json:"spec"`
	// Profiles are the resolved profiles, one per workload in spec order.
	Profiles []*profile.Profile `json:"profiles"`
	// Shards is the fleet-wide shard count, echoed in health reporting.
	Shards int `json:"shards"`
}

// CompileResponse acknowledges a compile with the worker's view of the
// determinism anchors.
type CompileResponse struct {
	Session string `json:"session"`
	Seed    uint64 `json:"seed"`
}

// ExecuteRequest asks a worker to resolve one chunk of a shard's jobs.
// Chunking is invisible to the worker: any sub-slice of a shard's jobs is a
// valid request as long as the shard-key handshake holds.
type ExecuteRequest struct {
	Session string `json:"session"`
	// Shard is the shard index; ShardKey must equal
	// sim.StreamN(seed, "shard", Shard) as derived by the worker from its
	// own compiled spec — the determinism handshake.
	Shard    int            `json:"shard"`
	ShardKey uint64         `json:"shard_key"`
	Jobs     []scenario.Job `json:"jobs"`
	// Stream asks for a chunked NDJSON response (StreamChunk lines) instead
	// of one ExecuteResponse body, so outcomes flow back as they complete.
	Stream bool `json:"stream,omitempty"`
	// Speculative marks a straggler re-execution of a chunk already in
	// flight elsewhere. Purely informational — the work is identical — but
	// workers count it, so speculation is observable fleet-side.
	Speculative bool `json:"speculative,omitempty"`
}

// ExecuteResponse returns the chunk's outcomes, in job order.
type ExecuteResponse struct {
	Outcomes []*scenario.Outcome `json:"outcomes"`
}

// StreamChunk is one NDJSON line of a streaming execute response. Outcome
// lines carry contiguous job-order batches; the terminal line has either
// Done set (with N echoing the total streamed, a truncation check) or an
// in-band structured error — failures can surface after the 200 status is
// already on the wire.
type StreamChunk struct {
	Outcomes []*scenario.Outcome `json:"outcomes,omitempty"`
	Done     bool                `json:"done,omitempty"`
	N        int                 `json:"n,omitempty"`
	Error    string              `json:"error,omitempty"`
	Code     string              `json:"code,omitempty"`
}

// shardPrefix is the substream family shard keys derive from.
const shardPrefix = "shard"

// ShardKeys derives the shard-key family for (seed, shards). Both sides
// compute it independently; exchanging (seed, shards) is enough to agree on
// the whole partition.
func ShardKeys(seed uint64, shards int) []uint64 {
	return sim.Streams(seed, shardPrefix, shards)
}

// jobHash condenses a job's identity into the hash rendezvous ranks. The
// encoding is canonical (fixed field order, length-unambiguous), so equal
// jobs hash equally on every host.
func jobHash(j scenario.Job) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(j.Workload)))
	h.Write(buf[:])
	h.Write([]byte(j.Machine))
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(buf[:], j.LoadBits)
	h.Write(buf[:])
	return h.Sum64()
}

// mix64 is the SplitMix64 finalizer: the rendezvous score must decorrelate
// jobHash^key pairs that differ in few bits.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// shardOf assigns a job hash to a shard by highest-random-weight hashing
// over the shard keys: the winner depends only on (hash, keys), never on
// fleet size or call order, and adding shards moves only the jobs whose new
// shard wins — the property that keeps partitions stable as fleets scale.
func shardOf(hash uint64, keys []uint64) int {
	best, bestScore := 0, uint64(0)
	for s, k := range keys {
		if score := mix64(hash ^ k); s == 0 || score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}
