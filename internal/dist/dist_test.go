package dist

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"synapse/internal/core"
	"synapse/internal/profile"
	"synapse/internal/retry"
	"synapse/internal/scenario"
	"synapse/internal/store"
)

// seedStore profiles the named commands into a fresh in-memory store, with
// the same profiling parameters the scenario package's tests use — the
// goldens under ../scenario/testdata were captured against these profiles.
func seedStore(tb testing.TB, cmds ...string) store.Store {
	tb.Helper()
	st := store.NewMem()
	for _, cmd := range cmds {
		_, err := core.ProfileCommandString(context.Background(), cmd, nil, core.ProfileOptions{
			Machine:    "thinkie",
			SampleRate: 1,
			Store:      st,
			Seed:       7,
		})
		if err != nil {
			tb.Fatalf("profiling %q: %v", cmd, err)
		}
	}
	return st
}

// loadSpec loads one of the scenario package's golden specs by base name.
func loadSpec(tb testing.TB, name string) *scenario.Spec {
	tb.Helper()
	spec, err := scenario.Load(filepath.Join("..", "scenario", "testdata", name+".spec.json"))
	if err != nil {
		tb.Fatal(err)
	}
	return spec
}

// localFleet builds n in-process workers.
func localFleet(n int) []Worker {
	fleet := make([]Worker, n)
	for i := range fleet {
		fleet[i] = NewLocalWorker(fmt.Sprintf("local-%d", i), 2)
	}
	return fleet
}

// fastRetry is a retry policy tight enough for failure-injection tests.
func fastRetry() *retry.Policy {
	p := retry.Default()
	p.Attempts = 2
	p.BaseDelay = time.Millisecond
	p.MaxDelay = 5 * time.Millisecond
	return &p
}

// jitteredSpec is an eager (clusterless) spec whose per-instance loads are
// arbitrary float64 draws — the adversarial input for the load-bits wire
// encoding and the rendezvous partition.
func jitteredSpec() *scenario.Spec {
	return &scenario.Spec{
		Version:       scenario.SpecVersion,
		Name:          "dist-jitter",
		Seed:          421,
		MaxConcurrent: 4,
		Workloads: []scenario.Workload{
			{
				Name:    "md",
				Profile: scenario.ProfileRef{Command: "mdsim", Tags: map[string]string{"steps": "10000"}},
				Arrival: scenario.Arrival{Process: scenario.ArrivalClosed, Clients: 3, Iterations: 4},
				Emulation: scenario.Emulation{
					Machine:    "stampede",
					Load:       0.3,
					LoadJitter: 0.25,
				},
			},
			{
				Name:    "nap",
				Profile: scenario.ProfileRef{Command: "sleep", Tags: map[string]string{"seconds": "1"}},
				Arrival: scenario.Arrival{Process: scenario.ArrivalConstant, Rate: 2, Count: 6},
				Emulation: scenario.Emulation{
					Machine:    "comet",
					Load:       0.1,
					LoadJitter: 0.05,
				},
			},
		},
	}
}

func TestShardKeysStable(t *testing.T) {
	a := ShardKeys(99, 16)
	b := ShardKeys(99, 16)
	if len(a) != 16 {
		t.Fatalf("len = %d, want 16", len(a))
	}
	seen := make(map[uint64]bool)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard key %d not stable: %#x vs %#x", i, a[i], b[i])
		}
		if seen[a[i]] {
			t.Fatalf("duplicate shard key %#x", a[i])
		}
		seen[a[i]] = true
	}
	c := ShardKeys(100, 16)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical shard keys")
	}
}

// TestShardPartitionDeterministic pins the property byte-identity rests on:
// the job→shard map depends only on (seed, shard count), never on the fleet,
// and every shard gets work when there are many more jobs than shards.
func TestShardPartitionDeterministic(t *testing.T) {
	keys := ShardKeys(7, 8)
	hit := make([]int, len(keys))
	for w := 0; w < 40; w++ {
		for l := 0; l < 25; l++ {
			j := scenario.Job{Workload: w, Machine: "m", LoadBits: uint64(l) * 0x9e3779b97f4a7c15}
			s := shardOf(jobHash(j), keys)
			if s < 0 || s >= len(keys) {
				t.Fatalf("shardOf out of range: %d", s)
			}
			if again := shardOf(jobHash(j), keys); again != s {
				t.Fatalf("shardOf not deterministic: %d vs %d", s, again)
			}
			hit[s]++
		}
	}
	for s, n := range hit {
		if n == 0 {
			t.Errorf("shard %d got no jobs out of 1000 (degenerate partition)", s)
		}
	}
}

func TestJobHashDistinguishesFields(t *testing.T) {
	base := scenario.Job{Workload: 1, Machine: "stampede", LoadBits: 42}
	variants := []scenario.Job{
		{Workload: 2, Machine: "stampede", LoadBits: 42},
		{Workload: 1, Machine: "comet", LoadBits: 42},
		{Workload: 1, Machine: "stampede", LoadBits: 43},
		{Workload: 1, Machine: "", LoadBits: 42},
	}
	h := jobHash(base)
	for i, v := range variants {
		if jobHash(v) == h {
			t.Errorf("variant %d hashes identically to base", i)
		}
	}
}

func TestSessionsEviction(t *testing.T) {
	st := seedStore(t, "mdsim", "sleep")
	spec := jitteredSpec()
	profs, err := scenario.ResolveProfiles(context.Background(), spec, st)
	if err != nil {
		t.Fatal(err)
	}
	ss := newSessions(2)
	ctx := context.Background()
	for _, id := range []string{"s1", "s2", "s3"} {
		if _, err := ss.compile(ctx, &CompileRequest{Session: id, Spec: spec, Profiles: profs, Shards: 4}, 1); err != nil {
			t.Fatalf("compile %s: %v", id, err)
		}
	}
	if n := ss.len(); n != 2 {
		t.Fatalf("sessions held = %d, want 2 (cap)", n)
	}
	if _, err := ss.get("s1"); !errors.Is(err, ErrNoSession) {
		t.Fatalf("oldest session survived eviction: %v", err)
	}
	for _, id := range []string{"s2", "s3"} {
		if _, err := ss.get(id); err != nil {
			t.Fatalf("session %s evicted early: %v", id, err)
		}
	}
	// Recompiling a held session must not count as a new insertion.
	if _, err := ss.compile(ctx, &CompileRequest{Session: "s3", Spec: spec, Profiles: profs, Shards: 4}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.get("s2"); err != nil {
		t.Fatalf("recompile of s3 evicted s2: %v", err)
	}
}

func TestSessionsExecuteValidation(t *testing.T) {
	st := seedStore(t, "mdsim", "sleep")
	spec := jitteredSpec()
	profs, err := scenario.ResolveProfiles(context.Background(), spec, st)
	if err != nil {
		t.Fatal(err)
	}
	ss := newSessions(0)
	ctx := context.Background()
	if _, err := ss.execute(ctx, &ExecuteRequest{Session: "nope"}); !errors.Is(err, ErrNoSession) {
		t.Fatalf("unknown session: %v, want ErrNoSession", err)
	}
	if _, err := ss.compile(ctx, &CompileRequest{Session: "s", Spec: spec, Profiles: profs, Shards: 4}, 1); err != nil {
		t.Fatal(err)
	}
	keys := ShardKeys(spec.Seed, 4)
	if _, err := ss.execute(ctx, &ExecuteRequest{Session: "s", Shard: -1, ShardKey: keys[0]}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("negative shard: %v, want ErrInvalid", err)
	}
	if _, err := ss.execute(ctx, &ExecuteRequest{Session: "s", Shard: 1, ShardKey: keys[0]}); !errors.Is(err, ErrShardKey) {
		t.Fatalf("mismatched shard key: %v, want ErrShardKey", err)
	}
	if _, err := ss.execute(ctx, &ExecuteRequest{Session: "s", Shard: 1, ShardKey: keys[1]}); err != nil {
		t.Fatalf("well-formed empty shard: %v", err)
	}
}

func TestSessionsCompileValidation(t *testing.T) {
	st := seedStore(t, "mdsim", "sleep")
	spec := jitteredSpec()
	profs, err := scenario.ResolveProfiles(context.Background(), spec, st)
	if err != nil {
		t.Fatal(err)
	}
	ss := newSessions(0)
	ctx := context.Background()
	cases := []struct {
		name string
		req  *CompileRequest
	}{
		{"empty session id", &CompileRequest{Spec: spec, Profiles: profs}},
		{"no spec", &CompileRequest{Session: "s"}},
		{"profile count mismatch", &CompileRequest{Session: "s", Spec: spec, Profiles: profs[:1]}},
		{"nil profile", &CompileRequest{Session: "s", Spec: spec, Profiles: []*profile.Profile{nil, nil}}},
	}
	for _, tc := range cases {
		if _, err := ss.compile(ctx, tc.req, 1); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: %v, want ErrInvalid", tc.name, err)
		}
	}
}

func TestCoordinatorValidation(t *testing.T) {
	st := seedStore(t, "mdsim", "sleep")
	ctx := context.Background()
	if _, err := NewCoordinator(ctx, jitteredSpec(), st, Config{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	bad := jitteredSpec()
	bad.Workloads = nil
	if _, err := NewCoordinator(ctx, bad, st, Config{Workers: localFleet(1)}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	co, err := NewCoordinator(ctx, jitteredSpec(), st, Config{Workers: localFleet(3)})
	if err != nil {
		t.Fatal(err)
	}
	if got := co.Shards(); got != 12 {
		t.Fatalf("default shards = %d, want 4× fleet = 12", got)
	}
	if s := co.Stats(); s.LiveWorkers != 3 || s.Jobs != 0 {
		t.Fatalf("fresh stats = %+v", s)
	}
}
