package dist

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"synapse/internal/scenario"
	"synapse/internal/store"
)

// BenchmarkDist measures distributed scenario throughput over in-process
// fleets — the protocol and fold overhead without wire latency. The custom
// metric is emulated instances per second of wall time; benchguard tracks
// it via BENCH_dist.json.
func BenchmarkDist(b *testing.B) {
	st := seedStore(b, "mdsim", "sleep")
	for _, fleet := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", fleet), func(b *testing.B) {
			spec := bigJitteredSpec()
			ctx := context.Background()
			co, err := NewCoordinator(ctx, spec, st, Config{Workers: localFleet(fleet)})
			if err != nil {
				b.Fatal(err)
			}
			emulations := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := scenario.Run(ctx, spec, st, scenario.RunOptions{Executor: co})
				if err != nil {
					b.Fatal(err)
				}
				emulations += rep.Emulations
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(emulations)/sec, "emulations/s")
			}
		})
	}
}

// delayedWorker serializes its executes behind a mutex and adds a fixed
// delay to each — a worker an order of magnitude slower than its siblings,
// the benchmark's injected straggler. It honors cancellation, like a real
// remote worker, and hides the streaming face so delays apply per chunk.
type delayedWorker struct {
	Worker
	mu    sync.Mutex
	delay time.Duration
}

func (d *delayedWorker) Execute(ctx context.Context, req *ExecuteRequest) ([]*scenario.Outcome, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	select {
	case <-time.After(d.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return d.Worker.Execute(ctx, req)
}

// barrierExecutor is the pre-chunking dispatch discipline, kept as the
// straggler benchmark's baseline: shards statically round-robined over the
// fleet, one RPC per shard, and a full barrier before any folding.
type barrierExecutor struct {
	creq  *CompileRequest
	keys  []uint64
	fleet []Worker
}

func newBarrierExecutor(ctx context.Context, spec *scenario.Spec, st store.Store, fleet []Worker, shards int) (*barrierExecutor, error) {
	profs, err := scenario.ResolveProfiles(ctx, spec, st)
	if err != nil {
		return nil, err
	}
	e := &barrierExecutor{
		creq:  &CompileRequest{Session: "bench-barrier", Spec: spec, Profiles: profs, Shards: shards},
		keys:  ShardKeys(spec.Seed, shards),
		fleet: fleet,
	}
	for _, w := range fleet {
		if err := w.Compile(ctx, e.creq); err != nil {
			return nil, err
		}
	}
	return e, nil
}

func (e *barrierExecutor) ExecuteJobs(ctx context.Context, jobs []scenario.Job) ([]*scenario.Outcome, error) {
	byShard := make([][]int, len(e.keys))
	for i, j := range jobs {
		s := shardOf(jobHash(j), e.keys)
		byShard[s] = append(byShard[s], i)
	}
	outs := make([]*scenario.Outcome, len(jobs))
	errs := make([]error, len(e.keys))
	var wg sync.WaitGroup
	for s, idxs := range byShard {
		if len(idxs) == 0 {
			continue
		}
		payload := make([]scenario.Job, len(idxs))
		for k, gi := range idxs {
			payload[k] = jobs[gi]
		}
		wg.Add(1)
		go func(s int, w Worker, idxs []int, payload []scenario.Job) {
			defer wg.Done()
			res, err := w.Execute(ctx, &ExecuteRequest{
				Session: e.creq.Session, Shard: s, ShardKey: e.keys[s], Jobs: payload,
			})
			if err != nil {
				errs[s] = err
				return
			}
			if len(res) != len(idxs) {
				errs[s] = fmt.Errorf("shard %d: %d outcomes for %d jobs", s, len(res), len(idxs))
				return
			}
			for k, gi := range idxs {
				outs[gi] = res[k]
			}
		}(s, e.fleet[s%len(e.fleet)], idxs, payload)
	}
	wg.Wait() // the barrier: nothing folds until the slowest shard lands
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// stragglerSpec is an eager spec with enough distinct jobs that a fleet of
// four sees many chunks per worker in one dispatch.
func stragglerSpec() *scenario.Spec {
	spec := jitteredSpec()
	spec.Name = "dist-straggler"
	spec.Workloads[0].Arrival = scenario.Arrival{Process: scenario.ArrivalClosed, Clients: 12, Iterations: 8}
	return spec
}

// BenchmarkDistStraggler measures end-to-end wall clock with one of four
// workers dramatically slow, across dispatch disciplines: barrier (static
// shard round-robin, full barrier — what chunked dispatch replaced), pull
// (chunked pull dispatch, speculation off), and steal (chunked pull plus
// speculative re-execution of stragglers). The straggler-ms metric is wall
// milliseconds per scenario run, lower is better; benchguard gates it via
// -latency-metric so the steal path's win over the barrier is pinned.
func BenchmarkDistStraggler(b *testing.B) {
	st := seedStore(b, "mdsim", "sleep")
	spec := stragglerSpec()
	ctx := context.Background()
	const delay = 40 * time.Millisecond
	mkFleet := func() []Worker {
		fleet := localFleet(4)
		fleet[0] = &delayedWorker{Worker: fleet[0], delay: delay}
		return fleet
	}
	run := func(b *testing.B, exec scenario.Executor) {
		b.Helper()
		// One untimed warmup run compiles every session and fills caches, so
		// the modes compare dispatch discipline, not setup.
		if _, err := scenario.Run(ctx, spec, st, scenario.RunOptions{Executor: exec}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := scenario.Run(ctx, spec, st, scenario.RunOptions{Executor: exec}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "straggler-ms")
	}
	b.Run("mode=barrier", func(b *testing.B) {
		exec, err := newBarrierExecutor(ctx, spec, st, mkFleet(), 16)
		if err != nil {
			b.Fatal(err)
		}
		run(b, exec)
	})
	b.Run("mode=pull", func(b *testing.B) {
		co, err := NewCoordinator(ctx, spec, st, Config{
			Workers: mkFleet(), Shards: 16, ChunkSize: 8, StealAfter: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		run(b, co)
	})
	b.Run("mode=steal", func(b *testing.B) {
		co, err := NewCoordinator(ctx, spec, st, Config{
			Workers: mkFleet(), Shards: 16, ChunkSize: 8, StealAfter: 5 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		run(b, co)
	})
}
