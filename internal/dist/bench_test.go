package dist

import (
	"context"
	"fmt"
	"testing"

	"synapse/internal/scenario"
)

// BenchmarkDist measures distributed scenario throughput over in-process
// fleets — the protocol and fold overhead without wire latency. The custom
// metric is emulated instances per second of wall time; benchguard tracks
// it via BENCH_dist.json.
func BenchmarkDist(b *testing.B) {
	st := seedStore(b, "mdsim", "sleep")
	for _, fleet := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", fleet), func(b *testing.B) {
			spec := bigJitteredSpec()
			ctx := context.Background()
			co, err := NewCoordinator(ctx, spec, st, Config{Workers: localFleet(fleet)})
			if err != nil {
				b.Fatal(err)
			}
			emulations := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := scenario.Run(ctx, spec, st, scenario.RunOptions{Executor: co})
				if err != nil {
					b.Fatal(err)
				}
				emulations += rep.Emulations
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(emulations)/sec, "emulations/s")
			}
		})
	}
}
