package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"synapse/internal/scenario"
	"synapse/internal/store"
	"synapse/internal/testutil"
)

// startServer boots a WorkerServer on a loopback port and returns its base
// URL. The server drains on test cleanup; the leak checker verifies the
// drain actually releases its goroutines.
func startServer(t *testing.T, cfg ServerConfig) (*WorkerServer, string) {
	t.Helper()
	s := NewServer(cfg)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, "http://" + addr.String()
}

// TestHTTPByteIdentity runs the full wire path — coordinator, HTTPWorker,
// WorkerServer, JSON round trips of jobs and outcomes — against real
// daemons, and requires the jittered spec's report to match the local run
// byte for byte. This is where float64 loads and duration outcomes must
// survive the wire exactly.
func TestHTTPByteIdentity(t *testing.T) {
	testutil.CheckGoroutines(t)
	st := seedStore(t, "mdsim", "sleep")
	spec := bigJitteredSpec()
	local, err := scenario.Run(context.Background(), spec, st, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := marshalReport(t, local)

	var fleet []Worker
	for i := 0; i < 2; i++ {
		_, base := startServer(t, ServerConfig{Workers: 2})
		fleet = append(fleet, NewHTTPWorker(base, nil))
	}
	rep, co := runDist(t, spec, st, Config{Workers: fleet})
	if got := marshalReport(t, rep); !bytes.Equal(got, want) {
		t.Errorf("report over HTTP diverged from local run\ngot:\n%s\nwant:\n%s", got, want)
	}
	if s := co.Stats(); s.WorkerFailures != 0 || s.LiveWorkers != 2 {
		t.Errorf("stats = %+v", s)
	}
}

// TestHTTPShardKeyMismatch: a coordinator whose (seed, shards) disagrees
// with the worker's compiled session must be refused with ErrShardKey —
// 409 on the wire — before any outcome folds.
func TestHTTPShardKeyMismatch(t *testing.T) {
	testutil.CheckGoroutines(t)
	st := seedStore(t, "mdsim", "sleep")
	spec := jitteredSpec()
	profs, err := scenario.ResolveProfiles(context.Background(), spec, st)
	if err != nil {
		t.Fatal(err)
	}
	_, base := startServer(t, ServerConfig{})
	w := NewHTTPWorker(base, nil)
	ctx := context.Background()
	req := &CompileRequest{Session: "s", Spec: spec, Profiles: profs, Shards: 4}
	if err := w.Compile(ctx, req); err != nil {
		t.Fatal(err)
	}
	keys := ShardKeys(spec.Seed, 4)
	_, err = w.Execute(ctx, &ExecuteRequest{Session: "s", Shard: 0, ShardKey: keys[0] ^ 1})
	if !errors.Is(err, ErrShardKey) {
		t.Fatalf("err = %v, want ErrShardKey", err)
	}
	if _, err := w.Execute(ctx, &ExecuteRequest{Session: "s", Shard: 0, ShardKey: keys[0]}); err != nil {
		t.Fatalf("matching key refused: %v", err)
	}
}

// TestHTTPNoSessionRecovery: a worker that evicted the coordinator's
// session answers no_session; the coordinator recompiles transparently and
// the rerun still reproduces the first report exactly.
func TestHTTPNoSessionRecovery(t *testing.T) {
	testutil.CheckGoroutines(t)
	st := seedStore(t, "mdsim", "sleep")
	spec := jitteredSpec()
	srv, base := startServer(t, ServerConfig{MaxSessions: 1})
	ctx := context.Background()
	co, err := NewCoordinator(ctx, spec, st, Config{
		Workers: []Worker{NewHTTPWorker(base, nil)},
		Retry:   fastRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	first, err := scenario.Run(ctx, spec, st, scenario.RunOptions{Executor: co})
	if err != nil {
		t.Fatal(err)
	}

	// A second coordinator's compile evicts the first session (cap is 1).
	other, err := NewCoordinator(ctx, spec, st, Config{Workers: []Worker{NewHTTPWorker(base, nil)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.Run(ctx, spec, st, scenario.RunOptions{Executor: other}); err != nil {
		t.Fatal(err)
	}
	if n := srv.local.sessions.len(); n != 1 {
		t.Fatalf("server holds %d sessions, want 1", n)
	}

	// The first coordinator's session is gone; the rerun must recover via
	// no_session → recompile, not fail, and reproduce the report.
	again, err := scenario.Run(ctx, spec, st, scenario.RunOptions{Executor: co})
	if err != nil {
		t.Fatalf("rerun after eviction: %v", err)
	}
	if a, b := marshalReport(t, first), marshalReport(t, again); !bytes.Equal(a, b) {
		t.Errorf("rerun after session eviction changed the report\nfirst:\n%s\nagain:\n%s", a, b)
	}
	if s := co.Stats(); s.WorkerFailures != 0 {
		t.Errorf("eviction recovery marked the worker dead: %+v", s)
	}
}

func postJSON(t *testing.T, url string, body string) (*http.Response, ErrorResponse) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var er ErrorResponse
	_ = json.Unmarshal(data, &er)
	return resp, er
}

// TestHTTPStructuredErrors pins the wire contract: malformed and unknown
// requests come back with the documented status codes and machine-readable
// error codes.
func TestHTTPStructuredErrors(t *testing.T) {
	testutil.CheckGoroutines(t)
	_, base := startServer(t, ServerConfig{})
	cases := []struct {
		path, body string
		status     int
		code       string
	}{
		{"/v1/compile", "{not json", http.StatusBadRequest, CodeInvalid},
		{"/v1/compile", `{"session":"s"}`, http.StatusBadRequest, CodeInvalid},
		{"/v1/execute", `{"session":"ghost","shard":0}`, http.StatusNotFound, CodeNoSession},
	}
	for _, tc := range cases {
		resp, er := postJSON(t, base+tc.path, tc.body)
		if resp.StatusCode != tc.status || er.Code != tc.code {
			t.Errorf("POST %s %q: got %d/%q, want %d/%q",
				tc.path, tc.body, resp.StatusCode, er.Code, tc.status, tc.code)
		}
	}
}

// TestHTTPHealthzAndMetrics: the observability endpoints answer with the
// worker's session count, admission state and the RED series.
func TestHTTPHealthzAndMetrics(t *testing.T) {
	testutil.CheckGoroutines(t)
	st := seedStore(t, "mdsim", "sleep")
	spec := jitteredSpec()
	_, base := startServer(t, ServerConfig{Workers: 1, MaxInFlight: 8})
	fleet := []Worker{NewHTTPWorker(base, nil)}
	if _, err := scenario.Run(context.Background(), spec, st, scenario.RunOptions{
		Executor: mustCoordinator(t, spec, st, Config{Workers: fleet}),
	}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Sessions != 1 || h.MaxInFlight != 8 {
		t.Errorf("healthz = %+v", h)
	}

	resp, err = http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"synapse_http_requests_total",
		"synapse_http_request_duration_seconds",
		"synapse_dist_worker_jobs_total",
		"synapse_dist_worker_sessions",
		"synapse_build_info",
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("metrics exposition missing %s", series)
		}
	}
}

func mustCoordinator(t *testing.T, spec *scenario.Spec, st store.Store, cfg Config) *Coordinator {
	t.Helper()
	co, err := NewCoordinator(context.Background(), spec, st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return co
}

// TestHTTPDrainSheds: once draining, data-path requests shed with
// 503/draining and a Retry-After hint while healthz keeps answering and
// reports the drain.
func TestHTTPDrainSheds(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := NewServer(ServerConfig{})
	s.draining.Store(true)

	rec := httptest.NewRecorder()
	req, _ := http.NewRequest(http.MethodPost, "/v1/execute", strings.NewReader("{}"))
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining execute: status %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("draining shed carries no Retry-After")
	}
	var er ErrorResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &er)
	if er.Code != CodeDraining {
		t.Errorf("shed code = %q, want %q", er.Code, CodeDraining)
	}

	rec = httptest.NewRecorder()
	req, _ = http.NewRequest(http.MethodGet, "/v1/healthz", nil)
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz while draining: status %d", rec.Code)
	}
	var h HealthResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &h)
	if h.Status != "draining" || h.Shed != 1 {
		t.Errorf("healthz while draining = %+v", h)
	}
}

// TestHTTPOverloadSheds: with the only execution slot taken and no queue,
// a data-path request sheds with 429/overloaded.
func TestHTTPOverloadSheds(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := NewServer(ServerConfig{MaxInFlight: 1})
	s.sem <- struct{}{} // occupy the sole slot
	defer func() { <-s.sem }()

	rec := httptest.NewRecorder()
	req, _ := http.NewRequest(http.MethodPost, "/v1/execute", strings.NewReader("{}"))
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded execute: status %d, want 429", rec.Code)
	}
	var er ErrorResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &er)
	if er.Code != CodeOverloaded {
		t.Errorf("shed code = %q, want %q", er.Code, CodeOverloaded)
	}
	// Bypass routes must still answer at capacity.
	rec = httptest.NewRecorder()
	req, _ = http.NewRequest(http.MethodGet, "/v1/healthz", nil)
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz at capacity: status %d", rec.Code)
	}
}
