package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"synapse/internal/retry"
	"synapse/internal/scenario"
)

// HTTPWorker drives one synapse-worker daemon over the wire protocol. It
// performs single attempts — retry discipline lives in the coordinator's
// policy, which also decides when the worker is dead — but it does the
// error translation: structured codes come back as the package's sentinel
// errors, and shed responses carry their Retry-After hint for the backoff.
type HTTPWorker struct {
	base string
	hc   *http.Client
}

// NewHTTPWorker returns a client for the worker daemon at base (e.g.
// "http://host:9191"). hc nil uses a client with a 60s overall timeout —
// shard executions are real work, not metadata lookups.
func NewHTTPWorker(base string, hc *http.Client) *HTTPWorker {
	if hc == nil {
		hc = &http.Client{Timeout: 60 * time.Second}
	}
	return &HTTPWorker{base: strings.TrimRight(base, "/"), hc: hc}
}

// Name implements Worker: workers are named by their base URL.
func (w *HTTPWorker) Name() string { return w.base }

// Compile implements Worker.
func (w *HTTPWorker) Compile(ctx context.Context, req *CompileRequest) error {
	var resp CompileResponse
	if err := w.post(ctx, "/v1/compile", req, &resp); err != nil {
		return err
	}
	if resp.Seed != req.Spec.Seed {
		return fmt.Errorf("%w: worker %s compiled seed %d, coordinator has %d",
			ErrShardKey, w.base, resp.Seed, req.Spec.Seed)
	}
	return nil
}

// Execute implements Worker.
func (w *HTTPWorker) Execute(ctx context.Context, req *ExecuteRequest) ([]*scenario.Outcome, error) {
	var resp ExecuteResponse
	if err := w.post(ctx, "/v1/execute", req, &resp); err != nil {
		return nil, err
	}
	return resp.Outcomes, nil
}

// ExecuteStream implements StreamWorker: it asks for an NDJSON response and
// hands each outcome batch to emit as it is decoded, so the chunk's result
// never materializes as one body on either side. A terminal done line is
// required — a stream that ends without one (connection cut, worker died
// mid-chunk) is an error, never a silently short result. Servers that
// predate streaming answer with a plain JSON body; that degrades to a
// single emit.
func (w *HTTPWorker) ExecuteStream(ctx context.Context, req *ExecuteRequest, emit func(outs []*scenario.Outcome) error) error {
	sreq := *req
	sreq.Stream = true
	body, err := json.Marshal(&sreq)
	if err != nil {
		return fmt.Errorf("dist: encode /v1/execute: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+"/v1/execute", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("dist: /v1/execute: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(hreq)
	if err != nil {
		return fmt.Errorf("dist: %s /v1/execute: %w", w.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return w.decodeError("/v1/execute", resp)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		// Pre-streaming server: one ExecuteResponse body, emitted whole.
		var er ExecuteResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			return fmt.Errorf("dist: %s /v1/execute: decode response: %w", w.base, err)
		}
		return emit(er.Outcomes)
	}
	dec := json.NewDecoder(resp.Body)
	streamed := 0
	for {
		var line StreamChunk
		if err := dec.Decode(&line); err != nil {
			if err == io.EOF {
				return fmt.Errorf("dist: %s /v1/execute: stream truncated after %d outcomes (no done line)", w.base, streamed)
			}
			return fmt.Errorf("dist: %s /v1/execute: decode stream: %w", w.base, err)
		}
		switch {
		case line.Error != "":
			return w.sentinel(line.Code, fmt.Errorf("dist: %s /v1/execute: stream error: %s", w.base, line.Error))
		case line.Done:
			if line.N != streamed {
				return fmt.Errorf("dist: %s /v1/execute: stream done line says %d outcomes, received %d", w.base, line.N, streamed)
			}
			return nil
		default:
			streamed += len(line.Outcomes)
			if err := emit(line.Outcomes); err != nil {
				return err
			}
		}
	}
}

// post sends one JSON request and decodes the JSON response, translating
// structured error bodies into sentinel errors.
func (w *HTTPWorker) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("dist: encode %s: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("dist: %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return fmt.Errorf("dist: %s %s: %w", w.base, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return w.decodeError(path, resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("dist: %s %s: decode response: %w", w.base, path, err)
	}
	return nil
}

// decodeError rebuilds a sentinel error from a structured error response,
// attaching any Retry-After hint for the coordinator's backoff.
func (w *HTTPWorker) decodeError(path string, resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var er ErrorResponse
	_ = json.Unmarshal(data, &er)
	msg := er.Error
	if msg == "" {
		msg = strings.TrimSpace(string(data))
	}
	base := fmt.Errorf("dist: %s %s: HTTP %d: %s", w.base, path, resp.StatusCode, msg)
	err := w.sentinel(er.Code, base)
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, perr := strconv.Atoi(ra); perr == nil && secs > 0 {
			err = retry.After(err, time.Duration(secs)*time.Second)
		}
	}
	return err
}

// sentinel rebuilds the package sentinel for a structured error code, from
// a status body or an in-band stream error line alike.
func (w *HTTPWorker) sentinel(code string, base error) error {
	switch code {
	case CodeNoSession:
		return fmt.Errorf("%w: %v", ErrNoSession, base)
	case CodeShardKey:
		return fmt.Errorf("%w: %v", ErrShardKey, base)
	case CodeInvalid:
		return fmt.Errorf("%w: %v", ErrInvalid, base)
	}
	return base
}
