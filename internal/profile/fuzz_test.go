package profile

import (
	"maps"
	"strings"
	"testing"
	"time"
)

// FuzzDecode hardens the profile decoder against arbitrary input: it must
// never panic, and anything it accepts must satisfy the profile invariants
// and re-encode losslessly.
func FuzzDecode(f *testing.F) {
	// Seed with a real profile.
	p := New("mdsim", map[string]string{"steps": "1000"})
	p.Machine = "thinkie"
	p.SampleRate = 2
	_ = p.Append(Sample{T: time.Second, Values: map[string]float64{
		MetricCPUCycles: 1e9, MetricMemRSS: 2e6,
	}})
	p.Finalize(time.Second)
	seed, err := p.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"command":"x","samples":[{"t":-1}]}`))
	f.Add([]byte(`{"command":"x","samples":[{"t":5,"values":{"cpu.cycles":-2}}]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := Decode(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if verr := q.Validate(); verr != nil {
			t.Fatalf("Decode accepted an invalid profile: %v", verr)
		}
		round, err := q.Encode()
		if err != nil {
			t.Fatalf("accepted profile failed to re-encode: %v", err)
		}
		q2, err := Decode(round)
		if err != nil {
			t.Fatalf("re-encoded profile failed to decode: %v", err)
		}
		if q2.Command != q.Command || len(q2.Samples) != len(q.Samples) {
			t.Fatal("decode/encode round trip lost data")
		}
	})
}

// ambiguousIdentity mirrors the identity rules Validate enforces: NUL is
// the key separator and '=' splits tag pairs, so identities containing them
// cannot round-trip through Key/ParseKey and stores reject them.
func ambiguousIdentity(command string, tags map[string]string) bool {
	if command == "" || strings.ContainsRune(command, 0) {
		return true
	}
	for k, v := range tags {
		if strings.ContainsAny(k, "\x00=") || strings.ContainsRune(v, 0) {
			return true
		}
	}
	return false
}

// FuzzParseKey hardens the wire key codec: ParseKey must never panic on
// arbitrary input and Key ∘ ParseKey must be idempotent (one canonical
// pass); for every unambiguous identity, ParseKey must invert Key exactly.
// The profile store service addresses documents by key on the wire, so a
// disagreement here would let remote and local stores file one profile
// under two identities.
func FuzzParseKey(f *testing.F) {
	f.Add("gmx mdrun\x00steps=1000", "cmd", "k1", "v1", "k2", "v2")
	f.Add("plain", "spaced command -x", "key", "", "", "with=equals")
	f.Add("\x00=", "c", "dup", "a", "dup", "b")
	f.Add("a\x00b=c\x00b=d", "c", "", "v", "k", "v")

	f.Fuzz(func(t *testing.T, raw, command, k1, v1, k2, v2 string) {
		// Arbitrary wire keys: parsing must not panic, and re-keying the
		// parse must reach a fixed point after one canonicalization.
		c, tags := ParseKey(raw)
		canon := Key(c, tags)
		c2, tags2 := ParseKey(canon)
		if c2 != c || !maps.Equal(tags, tags2) {
			t.Fatalf("ParseKey(Key(ParseKey(%q))) diverged: (%q, %v) vs (%q, %v)",
				raw, c, tags, c2, tags2)
		}
		if again := Key(c2, tags2); again != canon {
			t.Fatalf("Key is not idempotent over its own parse: %q vs %q", canon, again)
		}

		// Structured identities: exact inversion whenever the identity is
		// one the stores would accept.
		identTags := map[string]string{k1: v1, k2: v2}
		if ambiguousIdentity(command, identTags) {
			return
		}
		key := Key(command, identTags)
		gotCmd, gotTags := ParseKey(key)
		if gotCmd != command || !maps.Equal(gotTags, identTags) {
			t.Fatalf("ParseKey(Key(%q, %v)) = (%q, %v)", command, identTags, gotCmd, gotTags)
		}
	})
}
