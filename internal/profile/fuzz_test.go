package profile

import (
	"testing"
	"time"
)

// FuzzDecode hardens the profile decoder against arbitrary input: it must
// never panic, and anything it accepts must satisfy the profile invariants
// and re-encode losslessly.
func FuzzDecode(f *testing.F) {
	// Seed with a real profile.
	p := New("mdsim", map[string]string{"steps": "1000"})
	p.Machine = "thinkie"
	p.SampleRate = 2
	_ = p.Append(Sample{T: time.Second, Values: map[string]float64{
		MetricCPUCycles: 1e9, MetricMemRSS: 2e6,
	}})
	p.Finalize(time.Second)
	seed, err := p.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"command":"x","samples":[{"t":-1}]}`))
	f.Add([]byte(`{"command":"x","samples":[{"t":5,"values":{"cpu.cycles":-2}}]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := Decode(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if verr := q.Validate(); verr != nil {
			t.Fatalf("Decode accepted an invalid profile: %v", verr)
		}
		round, err := q.Encode()
		if err != nil {
			t.Fatalf("accepted profile failed to re-encode: %v", err)
		}
		q2, err := Decode(round)
		if err != nil {
			t.Fatalf("re-encoded profile failed to decode: %v", err)
		}
		if q2.Command != q.Command || len(q2.Samples) != len(q.Samples) {
			t.Fatal("decode/encode round trip lost data")
		}
	})
}
