package profile

import (
	"testing"
	"time"
)

func columnarFixture() *Profile {
	p := New("columnar", nil)
	p.SampleRate = 1
	_ = p.Append(Sample{T: time.Second, Values: map[string]float64{
		MetricCPUCycles:    1e9,
		MetricCPUFLOPs:     2e8,
		MetricIOReadBytes:  4096,
		MetricIOWriteBytes: 8192,
		MetricIOReadOps:    4,
		MetricIOWriteOps:   8,
	}})
	_ = p.Append(Sample{T: 2 * time.Second, Values: map[string]float64{
		MetricMemAlloc:      1 << 20,
		MetricMemFree:       1 << 19,
		MetricNetReadBytes:  100,
		MetricNetWriteBytes: 200,
		// A metric the emulator does not replay must not disturb columns.
		MetricMemRSS: 5 << 20,
	}})
	_ = p.Append(Sample{T: 3 * time.Second, Values: nil})
	return p
}

// Every column must agree with the per-sample map lookups it replaces.
func TestColumnsMatchSamples(t *testing.T) {
	p := columnarFixture()
	c := p.Columns()
	if c.N != len(p.Samples) {
		t.Fatalf("columns cover %d of %d samples", c.N, len(p.Samples))
	}
	checks := []struct {
		metric string
		col    []float64
	}{
		{MetricCPUCycles, c.Cycles},
		{MetricCPUFLOPs, c.FLOPs},
		{MetricIOReadBytes, c.ReadBytes},
		{MetricIOWriteBytes, c.WriteBytes},
		{MetricIOReadOps, c.ReadOps},
		{MetricIOWriteOps, c.WriteOps},
		{MetricMemAlloc, c.AllocBytes},
		{MetricMemFree, c.FreeBytes},
		{MetricNetReadBytes, c.NetReadBytes},
		{MetricNetWriteBytes, c.NetWriteBytes},
	}
	for _, chk := range checks {
		for i, s := range p.Samples {
			if got, want := chk.col[i], s.Get(chk.metric); got != want {
				t.Errorf("%s[%d] = %v, want %v", chk.metric, i, got, want)
			}
		}
	}
}

// The view is cached across calls and invalidated by Append.
func TestColumnsCaching(t *testing.T) {
	p := columnarFixture()
	c1 := p.Columns()
	if c2 := p.Columns(); c2 != c1 {
		t.Error("second Columns call should return the cached view")
	}
	_ = p.Append(Sample{T: 4 * time.Second, Values: map[string]float64{MetricCPUCycles: 7}})
	c3 := p.Columns()
	if c3 == c1 {
		t.Error("Append must invalidate the cached view")
	}
	if c3.N != 4 || c3.Cycles[3] != 7 {
		t.Errorf("rebuilt view stale: N=%d cycles=%v", c3.N, c3.Cycles)
	}
}

// Clone must not share the cache with the original.
func TestCloneDropsColumnCache(t *testing.T) {
	p := columnarFixture()
	orig := p.Columns()
	q := p.Clone()
	qc := q.Columns()
	if qc == orig {
		t.Error("clone shares the original's columnar view")
	}
	if qc.N != orig.N {
		t.Errorf("clone view N=%d, want %d", qc.N, orig.N)
	}
}

// Concurrent first use must be race-free (run with -race).
func TestColumnsConcurrent(t *testing.T) {
	p := columnarFixture()
	done := make(chan *Columns, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- p.Columns() }()
	}
	for i := 0; i < 8; i++ {
		c := <-done
		if c.N != len(p.Samples) {
			t.Errorf("concurrent view N=%d", c.N)
		}
	}
}
