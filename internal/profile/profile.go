package profile

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"synapse/internal/perfcount"
)

// Sample is one profiling interval. Counter metrics carry the consumption
// delta within the interval; gauge metrics carry the value observed at the
// end of the interval.
type Sample struct {
	// T is the offset of the end of the interval, relative to process
	// start.
	T time.Duration `json:"t"`
	// Values maps metric name to delta (counters) or level (gauges).
	Values map[string]float64 `json:"values"`
}

// Get returns the sample's value for the metric (0 when absent).
func (s Sample) Get(metric string) float64 { return s.Values[metric] }

// Clone returns a deep copy of the sample.
func (s Sample) Clone() Sample {
	vs := make(map[string]float64, len(s.Values))
	for k, v := range s.Values {
		vs[k] = v
	}
	return Sample{T: s.T, Values: vs}
}

// Profile is the result of profiling one application execution: the search
// keys (command and tags), the environment, the sample time series and the
// integrated totals. Profiles are the unit of storage and the input to
// emulation.
type Profile struct {
	ID      string            `json:"id"`
	Command string            `json:"command"`
	Tags    map[string]string `json:"tags,omitempty"`

	// Machine names the resource the profile was taken on; App names the
	// application model when the run was simulated (empty for real runs).
	Machine string `json:"machine"`
	App     string `json:"app,omitempty"`

	SampleRate float64       `json:"sample_rate"` // Hz
	CreatedAt  time.Time     `json:"created_at"`
	Duration   time.Duration `json:"duration"` // the application's Tx

	Samples []Sample           `json:"samples"`
	Totals  map[string]float64 `json:"totals"`
	System  map[string]float64 `json:"system,omitempty"`

	// Dropped counts samples that could not be recorded (e.g. the storage
	// backend's document size limit, paper §4.5 "DB limitations").
	Dropped int `json:"dropped,omitempty"`

	// cols caches the columnar view of the sample series (see Columns).
	// Append invalidates it. The atomic makes concurrent replays of one
	// profile safe; Clone rebuilds the struct field-by-field so the
	// pointer is never copied.
	cols atomic.Pointer[Columns]
	// validated caches a successful Validate, so replaying the same
	// profile many times (the emulator's dominant use) does not re-walk
	// every sample's metric map on each run. Append invalidates it;
	// callers mutating exported fields directly must re-validate.
	validated atomic.Bool
}

// New returns an empty profile with the search keys set and maps initialized.
func New(command string, tags map[string]string) *Profile {
	t := make(map[string]string, len(tags))
	for k, v := range tags {
		t[k] = v
	}
	return &Profile{
		Command: command,
		Tags:    t,
		Totals:  make(map[string]float64),
		System:  make(map[string]float64),
	}
}

// Key returns the store search key for a command/tags combination: the
// command line plus the sorted tag pairs. Tags distinguish runs with equal
// command lines but different configured workloads (paper §4, footnote 1).
func Key(command string, tags map[string]string) string {
	keys := make([]string, 0, len(tags))
	for k := range tags {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := command
	for _, k := range keys {
		s += "\x00" + k + "=" + tags[k]
	}
	return s
}

// Key returns the profile's own search key.
func (p *Profile) Key() string { return Key(p.Command, p.Tags) }

// ParseKey is the inverse of Key: it splits a search key back into the
// command line and tag map. The profile-store service addresses documents by
// key on the wire and uses this to translate back to the Store interface's
// (command, tags) form.
func ParseKey(key string) (command string, tags map[string]string) {
	parts := strings.Split(key, "\x00")
	command = parts[0]
	if len(parts) == 1 {
		return command, nil
	}
	tags = make(map[string]string, len(parts)-1)
	for _, pair := range parts[1:] {
		k, v, _ := strings.Cut(pair, "=")
		tags[k] = v
	}
	return command, tags
}

// Append adds a sample taken at offset t. Samples must be appended in
// non-decreasing time order; Append returns an error otherwise.
func (p *Profile) Append(s Sample) error {
	if n := len(p.Samples); n > 0 && s.T < p.Samples[n-1].T {
		return fmt.Errorf("profile: sample at %v appended after %v", s.T, p.Samples[n-1].T)
	}
	p.Samples = append(p.Samples, s)
	p.cols.Store(nil)
	p.validated.Store(false)
	return nil
}

// Finalize computes totals from the sample series, sets the duration and
// assigns the content-derived ID. The wall duration tx is measured by the
// profiler around the whole process (the paper wraps the process in
// `time -v` to correct for the sampling start offset).
func (p *Profile) Finalize(tx time.Duration) {
	p.Duration = tx
	if p.Totals == nil {
		p.Totals = make(map[string]float64)
	}
	agg := map[string]float64{}
	for _, s := range p.Samples {
		for m, v := range s.Values {
			switch KindOf(m) {
			case Counter:
				agg[m] += v
			case Gauge, Info:
				// Totals for gauges keep the maximum observed
				// value: peak RSS is the canonical case.
				if cur, ok := agg[m]; !ok || v > cur {
					agg[m] = v
				}
			}
		}
	}
	for m, v := range agg {
		p.Totals[m] = v
	}
	p.Totals[MetricSysRuntime] = tx.Seconds()
	p.computeDerived()
	p.ID = p.contentID()
}

// computeDerived fills in the derived metrics of paper §4.3 from primary
// totals: efficiency, utilization, FLOP rate.
func (p *Profile) computeDerived() {
	c := perfcount.Counters{
		Cycles:       p.Totals[MetricCPUCycles],
		Instructions: p.Totals[MetricCPUInstructions],
		StalledFront: p.Totals[MetricCPUStalledFront],
		StalledBack:  p.Totals[MetricCPUStalledBack],
		FLOPs:        p.Totals[MetricCPUFLOPs],
	}
	if e := c.Efficiency(); !math.IsNaN(e) {
		p.Totals[MetricCPUEfficiency] = e
	}
	if hz, ok := p.System[MetricSysClockHz]; ok && hz > 0 && p.Duration > 0 {
		max := hz * p.Duration.Seconds()
		if u := c.Utilization(max); !math.IsNaN(u) {
			p.Totals[MetricCPUUtilization] = u
		}
	}
	if p.Duration > 0 && c.FLOPs > 0 {
		p.Totals[MetricCPUFLOPSRate] = c.FLOPS(p.Duration.Seconds())
	}
}

// contentID derives a stable hexadecimal ID from the profile's identity and
// measurements.
func (p *Profile) contentID() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%g|%d|%d", p.Key(), p.Machine, p.SampleRate, p.Duration, len(p.Samples))
	for _, s := range p.Samples {
		fmt.Fprintf(h, "|%d", s.T)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Total returns the integrated total for a metric (0 when absent).
func (p *Profile) Total(metric string) float64 { return p.Totals[metric] }

// Series extracts the per-sample values of one metric, in sample order.
func (p *Profile) Series(metric string) []float64 {
	out := make([]float64, len(p.Samples))
	for i, s := range p.Samples {
		out[i] = s.Get(metric)
	}
	return out
}

// Times returns the sample end offsets, in order.
func (p *Profile) Times() []time.Duration {
	out := make([]time.Duration, len(p.Samples))
	for i, s := range p.Samples {
		out[i] = s.T
	}
	return out
}

// Validate reports the first structural problem with the profile, or nil.
// A successful validation is cached until the next Append.
func (p *Profile) Validate() error {
	if p.validated.Load() {
		return nil
	}
	if p.Command == "" {
		return errors.New("profile: empty command")
	}
	// NUL is the key separator and '=' splits tag pairs: identities that
	// contain them would make Key/ParseKey ambiguous, so remote and local
	// stores could disagree on which document a profile belongs to.
	if strings.ContainsRune(p.Command, 0) {
		return errors.New("profile: command contains NUL")
	}
	for k, v := range p.Tags {
		if strings.ContainsAny(k, "\x00=") {
			return fmt.Errorf("profile: tag key %q contains NUL or '='", k)
		}
		if strings.ContainsRune(v, 0) {
			return fmt.Errorf("profile: tag value %q contains NUL", v)
		}
	}
	if p.SampleRate < 0 {
		return fmt.Errorf("profile: negative sample rate %g", p.SampleRate)
	}
	var prev time.Duration = -1
	for i, s := range p.Samples {
		if s.T < 0 {
			return fmt.Errorf("profile: sample %d has negative offset", i)
		}
		if s.T < prev {
			return fmt.Errorf("profile: sample %d out of order", i)
		}
		prev = s.T
		for m, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("profile: sample %d metric %s is not finite", i, m)
			}
			if KindOf(m) == Counter && v < 0 {
				return fmt.Errorf("profile: sample %d counter %s is negative", i, m)
			}
		}
	}
	p.validated.Store(true)
	return nil
}

// Clone returns a deep copy of the profile. The columnar-view cache is not
// carried over (the copy rebuilds it on first use).
func (p *Profile) Clone() *Profile {
	q := Profile{
		ID:         p.ID,
		Command:    p.Command,
		Machine:    p.Machine,
		App:        p.App,
		SampleRate: p.SampleRate,
		CreatedAt:  p.CreatedAt,
		Duration:   p.Duration,
		Dropped:    p.Dropped,
	}
	q.Tags = make(map[string]string, len(p.Tags))
	for k, v := range p.Tags {
		q.Tags[k] = v
	}
	q.Totals = make(map[string]float64, len(p.Totals))
	for k, v := range p.Totals {
		q.Totals[k] = v
	}
	q.System = make(map[string]float64, len(p.System))
	for k, v := range p.System {
		q.System[k] = v
	}
	q.Samples = make([]Sample, len(p.Samples))
	for i, s := range p.Samples {
		q.Samples[i] = s.Clone()
	}
	return &q
}

// MarshalJSON/UnmarshalJSON use an alias type so time.Duration fields encode
// as integer nanoseconds (the default), with validation applied on decode.
func Decode(data []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Encode serialises the profile to JSON.
func (p *Profile) Encode() ([]byte, error) {
	return json.Marshal(p)
}

// DocSize estimates the profile's size in a BSON-like document encoding:
// roughly 64 bytes per sample-metric pair plus envelope. The Mongo-like
// store uses it to enforce the paper's 16 MB document limit (§4.5), which
// caps documents at ≈250,000 samples.
func (p *Profile) DocSize() int64 {
	var n int64 = 512 // envelope: keys, metadata
	for _, s := range p.Samples {
		n += 16 // timestamp + sample envelope
		n += int64(len(s.Values)) * 48
	}
	return n
}
