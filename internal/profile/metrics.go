// Package profile defines Synapse's profile data model: time-stamped samples
// of resource-consumption metrics, whole-run totals, derived metrics, and
// statistics across repeated profiling runs. It also carries the metrics
// registry that reproduces paper Table 1.
package profile

import (
	"fmt"
	"strings"
	"sync"
)

// Metric names. The hierarchical names map onto the rows of paper Table 1;
// watcher plugins may add further metrics, which flow through profiles and
// stores untouched (the registry only describes the known ones).
const (
	// System information and load.
	MetricSysCores    = "sys.cores"
	MetricSysClockHz  = "sys.clock_hz"
	MetricSysMemTotal = "sys.mem_total"
	MetricSysRuntime  = "sys.runtime"
	MetricSysLoadCPU  = "sys.load_cpu"
	MetricSysLoadDisk = "sys.load_disk"
	MetricSysLoadMem  = "sys.load_mem"

	// Compute.
	MetricCPUInstructions = "cpu.instructions"
	MetricCPUCycles       = "cpu.cycles"
	MetricCPUStalledBack  = "cpu.stalled_back"
	MetricCPUStalledFront = "cpu.stalled_front"
	MetricCPUEfficiency   = "cpu.efficiency"
	MetricCPUUtilization  = "cpu.utilization"
	MetricCPUFLOPs        = "cpu.flops"
	MetricCPUFLOPSRate    = "cpu.flops_rate"
	MetricCPUThreads      = "cpu.threads"
	MetricCPUOpenMP       = "cpu.openmp"

	// Storage.
	MetricIOReadBytes  = "io.read_bytes"
	MetricIOWriteBytes = "io.write_bytes"
	MetricIOReadBlock  = "io.block_read"
	MetricIOWriteBlock = "io.block_write"
	MetricIOFilesystem = "io.filesystem"
	MetricIOReadOps    = "io.read_ops"
	MetricIOWriteOps   = "io.write_ops"

	// Memory.
	MetricMemPeak       = "mem.peak"
	MetricMemRSS        = "mem.rss"
	MetricMemAlloc      = "mem.alloc"
	MetricMemFree       = "mem.free"
	MetricMemAllocBlock = "mem.block_alloc"
	MetricMemFreeBlock  = "mem.block_free"

	// Network.
	MetricNetEndpoint   = "net.endpoint"
	MetricNetReadBytes  = "net.read_bytes"
	MetricNetWriteBytes = "net.write_bytes"
	MetricNetReadBlock  = "net.block_read"
	MetricNetWriteBlock = "net.block_write"
)

// Support is one cell of paper Table 1.
type Support int

// Support levels, matching the paper's legend: "+" supported, "-" not
// supported, "(+)" partial, "(-)" planned.
const (
	No Support = iota
	Yes
	Partial
	Planned
)

// String renders the support level with the paper's notation.
func (s Support) String() string {
	switch s {
	case Yes:
		return "+"
	case Partial:
		return "(+)"
	case Planned:
		return "(-)"
	default:
		return "-"
	}
}

// Kind distinguishes how a metric's per-sample values combine over time.
type Kind int

// Metric kinds. Counter samples carry deltas that sum to the run total;
// Gauge samples carry instantaneous values (totals take the maximum, e.g.
// resident memory); Info metrics are constant run metadata.
const (
	Counter Kind = iota
	Gauge
	Info
)

// Registration describes one metric: its Table 1 row plus the data-model
// kind used when integrating samples.
type Registration struct {
	Name     string
	Resource string // Table 1 resource group: System, Compute, Storage, Memory, Network
	Title    string // human-readable row title as printed in Table 1
	Kind     Kind

	Total   Support // integrated total over runtime
	Sampled Support // sampled over time
	Derived Support // derived from other metrics
	Emul    Support // used in emulation
}

// Registry reproduces paper Table 1 row for row. Order matters: it is the
// order the paper prints.
var Registry = []Registration{
	{MetricSysCores, "System", "number of cores", Info, Yes, No, No, No},
	{MetricSysClockHz, "System", "max CPU frequency", Info, Yes, No, No, No},
	{MetricSysMemTotal, "System", "total memory", Info, Yes, No, No, No},
	{MetricSysRuntime, "System", "runtime", Counter, Yes, Yes, No, No},
	{MetricSysLoadCPU, "System", "system load (CPU)", Gauge, Yes, No, No, Yes},
	{MetricSysLoadDisk, "System", "system load (disk)", Gauge, No, No, No, Yes},
	{MetricSysLoadMem, "System", "system load (memory)", Gauge, No, No, No, Yes},

	{MetricCPUInstructions, "Compute", "CPU instructions", Counter, Yes, Yes, No, Yes},
	{MetricCPUCycles, "Compute", "cycles used", Counter, Yes, Yes, No, Yes},
	{MetricCPUStalledBack, "Compute", "cycles stalled backend", Counter, Yes, Yes, No, No},
	{MetricCPUStalledFront, "Compute", "cycles stalled frontend", Counter, Yes, Yes, No, No},
	{MetricCPUEfficiency, "Compute", "efficiency", Gauge, Yes, Yes, Yes, Partial},
	{MetricCPUUtilization, "Compute", "utilization", Gauge, Yes, Yes, Yes, No},
	{MetricCPUFLOPs, "Compute", "FLOPs", Counter, Yes, Yes, Yes, Yes},
	{MetricCPUFLOPSRate, "Compute", "FLOP/s", Gauge, Yes, Yes, Yes, No},
	{MetricCPUThreads, "Compute", "number of threads", Gauge, Yes, No, No, Partial},
	{MetricCPUOpenMP, "Compute", "OpenMP", Info, Partial, No, No, Yes},

	{MetricIOReadBytes, "Storage", "bytes read", Counter, Yes, Yes, No, Yes},
	{MetricIOWriteBytes, "Storage", "bytes written", Counter, Yes, Yes, No, Yes},
	{MetricIOReadBlock, "Storage", "block size read", Gauge, No, Partial, No, Yes},
	{MetricIOWriteBlock, "Storage", "block size write", Gauge, No, Partial, No, Yes},
	{MetricIOFilesystem, "Storage", "used file system", Info, Yes, No, No, Yes},

	{MetricMemPeak, "Memory", "bytes peak", Gauge, Yes, Yes, No, No},
	{MetricMemRSS, "Memory", "bytes resident size", Gauge, Yes, Yes, No, No},
	{MetricMemAlloc, "Memory", "bytes allocated", Counter, Yes, Yes, Yes, Yes},
	{MetricMemFree, "Memory", "bytes freed", Counter, Yes, Yes, Yes, Yes},
	{MetricMemAllocBlock, "Memory", "block size alloc", Gauge, No, Planned, No, Planned},
	{MetricMemFreeBlock, "Memory", "block size free", Gauge, No, Planned, No, Planned},

	{MetricNetEndpoint, "Network", "connection endpoint", Info, Planned, Planned, No, Partial},
	{MetricNetReadBytes, "Network", "bytes read", Counter, Planned, Planned, No, Partial},
	{MetricNetWriteBytes, "Network", "bytes written", Counter, Planned, Planned, No, Partial},
	{MetricNetReadBlock, "Network", "block size read", Gauge, No, Planned, No, Planned},
	{MetricNetWriteBlock, "Network", "block size write", Gauge, No, Planned, No, Planned},
}

// registryIndex maps metric names to registrations, built once on first
// Lookup. Validation touches the registry for every metric of every sample,
// so the previous linear scan showed up in replay CPU profiles.
var registryIndex = sync.OnceValue(func() map[string]Registration {
	idx := make(map[string]Registration, len(Registry))
	for _, r := range Registry {
		idx[r.Name] = r
	}
	return idx
})

// Lookup returns the registration for the named metric, if known.
func Lookup(name string) (Registration, bool) {
	r, ok := registryIndex()[name]
	return r, ok
}

// KindOf returns the kind of the named metric. Unknown metrics are treated
// as counters, which is the safe default for plugin-defined consumption
// metrics.
func KindOf(name string) Kind {
	if r, ok := Lookup(name); ok {
		return r.Kind
	}
	return Counter
}

// Table1 renders the registry in the layout of paper Table 1.
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-24s %-5s %-6s %-5s %-6s\n", "Resource", "Metric", "Tot.", "Samp.", "Der.", "Emul.")
	prev := ""
	for _, r := range Registry {
		group := r.Resource
		if group == prev {
			group = ""
		} else {
			prev = group
		}
		fmt.Fprintf(&b, "%-8s %-24s %-5s %-6s %-5s %-6s\n",
			group, r.Title, r.Total, r.Sampled, r.Derived, r.Emul)
	}
	return b.String()
}
