package profile

import (
	"fmt"
	"sort"
	"time"

	"synapse/internal/stats"
)

// Set is a collection of profiles of the same command/tags combination,
// typically gathered by repeated profiling runs. Synapse performs basic
// statistics across such sets (paper §4).
type Set []*Profile

// TotalSummary summarises the integrated total of one metric across the set.
func (s Set) TotalSummary(metric string) stats.Summary {
	xs := make([]float64, 0, len(s))
	for _, p := range s {
		xs = append(xs, p.Total(metric))
	}
	return stats.Summarize(xs)
}

// TxSummary summarises the execution time across the set, in seconds.
func (s Set) TxSummary() stats.Summary {
	xs := make([]float64, 0, len(s))
	for _, p := range s {
		xs = append(xs, p.Duration.Seconds())
	}
	return stats.Summarize(xs)
}

// Mean returns a synthetic profile whose totals are the per-metric means of
// the set and whose samples come from the first member (sample-by-sample
// averaging is ill-defined when sample counts differ across runs, which the
// paper sidesteps the same way: emulation replays one recorded series while
// statistics use the aggregated totals).
func (s Set) Mean() (*Profile, error) {
	if len(s) == 0 {
		return nil, fmt.Errorf("profile: empty set")
	}
	p := s[0].Clone()
	metrics := map[string]struct{}{}
	for _, q := range s {
		for m := range q.Totals {
			metrics[m] = struct{}{}
		}
	}
	for m := range metrics {
		p.Totals[m] = s.TotalSummary(m).Mean
	}
	var tx time.Duration
	for _, q := range s {
		tx += q.Duration
	}
	p.Duration = tx / time.Duration(len(s))
	return p, nil
}

// Metrics returns the sorted union of total-metric names across the set.
func (s Set) Metrics() []string {
	set := map[string]struct{}{}
	for _, p := range s {
		for m := range p.Totals {
			set[m] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Resample rebuilds a profile's sample series at a different sampling rate,
// conserving counter totals (each new interval receives the time-weighted
// share of the original deltas) and carrying gauges at interval boundaries.
// Resampling supports the paper's sampling-effect analysis (§4.4, Fig 2):
// replaying a coarser series introduces more intra-sample concurrency.
func Resample(p *Profile, rate float64) (*Profile, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("profile: non-positive resample rate %g", rate)
	}
	q := p.Clone()
	q.SampleRate = rate
	q.Samples = nil
	if p.Duration <= 0 || len(p.Samples) == 0 {
		return q, nil
	}
	period := time.Duration(float64(time.Second) / rate)
	if period <= 0 {
		return nil, fmt.Errorf("profile: resample rate %g too high", rate)
	}

	// Build new interval boundaries covering [0, Duration].
	var bounds []time.Duration
	for t := period; t < p.Duration; t += period {
		bounds = append(bounds, t)
	}
	bounds = append(bounds, p.Duration)

	newSamples := make([]Sample, len(bounds))
	for i, b := range bounds {
		newSamples[i] = Sample{T: b, Values: map[string]float64{}}
	}

	// Distribute each original sample's counter deltas over the new
	// intervals it overlaps, assuming uniform consumption within the
	// original interval (the profiler's own granularity assumption).
	prevT := time.Duration(0)
	for _, s := range p.Samples {
		dur := s.T - prevT
		for m, v := range s.Values {
			switch KindOf(m) {
			case Counter:
				if dur <= 0 {
					// Zero-length interval: attribute to the
					// covering new interval.
					idx := intervalIndex(bounds, s.T)
					newSamples[idx].Values[m] += v
					continue
				}
				distribute(newSamples, bounds, prevT, s.T, m, v)
			case Gauge, Info:
				idx := intervalIndex(bounds, s.T)
				// Last writer within the interval wins, matching
				// gauge semantics.
				newSamples[idx].Values[m] = v
			}
		}
		prevT = s.T
	}
	for _, s := range newSamples {
		if err := q.Append(s); err != nil {
			return nil, err
		}
	}
	q.Finalize(p.Duration)
	return q, nil
}

// intervalIndex returns the index of the new interval containing offset t.
func intervalIndex(bounds []time.Duration, t time.Duration) int {
	i := sort.Search(len(bounds), func(i int) bool { return bounds[i] >= t })
	if i >= len(bounds) {
		i = len(bounds) - 1
	}
	return i
}

// distribute spreads value v uniformly over [from, to) across the new
// intervals.
func distribute(samples []Sample, bounds []time.Duration, from, to time.Duration, metric string, v float64) {
	total := to - from
	lo := from
	for i, b := range bounds {
		start := time.Duration(0)
		if i > 0 {
			start = bounds[i-1]
		}
		if b <= lo || start >= to {
			continue
		}
		// Overlap of [start,b) with [lo,to).
		s, e := start, b
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		if e <= s {
			continue
		}
		frac := float64(e-s) / float64(total)
		samples[i].Values[metric] += v * frac
	}
}
