package profile

// Columns is a struct-of-arrays (columnar) view of a profile's
// emulation-relevant sample metrics. The emulator's replay loop is the
// hottest path in the repository: reading per-sample metric maps costs a
// hash lookup per metric per sample, while the columnar view lays every
// metric out as one contiguous float64 slice, so a replay reads straight
// through memory. Index i of every column corresponds to Samples[i];
// metrics absent from a sample read as 0, matching Sample.Get.
type Columns struct {
	// N is the number of samples the view covers.
	N int

	// Compute demand.
	Cycles []float64
	FLOPs  []float64

	// Storage demand.
	ReadBytes  []float64
	WriteBytes []float64
	ReadOps    []float64
	WriteOps   []float64

	// Memory demand.
	AllocBytes []float64
	FreeBytes  []float64

	// Network demand.
	NetReadBytes  []float64
	NetWriteBytes []float64
}

// BuildColumns extracts the columnar view from a sample series. All ten
// columns share one backing array (a single allocation); each sample's
// value map is walked exactly once.
func BuildColumns(samples []Sample) *Columns {
	n := len(samples)
	buf := make([]float64, 10*n)
	col := func(k int) []float64 { return buf[k*n : (k+1)*n : (k+1)*n] }
	c := &Columns{
		N:             n,
		Cycles:        col(0),
		FLOPs:         col(1),
		ReadBytes:     col(2),
		WriteBytes:    col(3),
		ReadOps:       col(4),
		WriteOps:      col(5),
		AllocBytes:    col(6),
		FreeBytes:     col(7),
		NetReadBytes:  col(8),
		NetWriteBytes: col(9),
	}
	for i := range samples {
		for m, v := range samples[i].Values {
			switch m {
			case MetricCPUCycles:
				c.Cycles[i] = v
			case MetricCPUFLOPs:
				c.FLOPs[i] = v
			case MetricIOReadBytes:
				c.ReadBytes[i] = v
			case MetricIOWriteBytes:
				c.WriteBytes[i] = v
			case MetricIOReadOps:
				c.ReadOps[i] = v
			case MetricIOWriteOps:
				c.WriteOps[i] = v
			case MetricMemAlloc:
				c.AllocBytes[i] = v
			case MetricMemFree:
				c.FreeBytes[i] = v
			case MetricNetReadBytes:
				c.NetReadBytes[i] = v
			case MetricNetWriteBytes:
				c.NetWriteBytes[i] = v
			}
		}
	}
	return c
}

// Columns returns the profile's columnar view, building it on first use and
// caching it for subsequent replays (the emulator replays the same profile
// many times; paper §5 regenerates every figure from repeated replays).
// Append invalidates the cache; mutating Samples in place does not, so
// callers editing samples directly must not hold stale views.
func (p *Profile) Columns() *Columns {
	if c := p.cols.Load(); c != nil && c.N == len(p.Samples) {
		return c
	}
	c := BuildColumns(p.Samples)
	p.cols.Store(c)
	return c
}
