package profile

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func mkSample(t time.Duration, kv ...interface{}) Sample {
	s := Sample{T: t, Values: map[string]float64{}}
	for i := 0; i+1 < len(kv); i += 2 {
		s.Values[kv[i].(string)] = kv[i+1].(float64)
	}
	return s
}

func TestKeyStableUnderTagOrder(t *testing.T) {
	a := Key("gmx mdrun", map[string]string{"steps": "1000", "cfg": "a"})
	b := Key("gmx mdrun", map[string]string{"cfg": "a", "steps": "1000"})
	if a != b {
		t.Errorf("Key should be order independent: %q vs %q", a, b)
	}
	c := Key("gmx mdrun", map[string]string{"steps": "2000", "cfg": "a"})
	if a == c {
		t.Error("different tags should give different keys")
	}
	d := Key("other", map[string]string{"steps": "1000", "cfg": "a"})
	if a == d {
		t.Error("different commands should give different keys")
	}
}

func TestAppendOrdering(t *testing.T) {
	p := New("cmd", nil)
	if err := p.Append(mkSample(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := p.Append(mkSample(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := p.Append(mkSample(time.Second)); err == nil {
		t.Error("out-of-order append should fail")
	}
	// Equal timestamps are allowed (multiple watchers can land together).
	if err := p.Append(mkSample(2 * time.Second)); err != nil {
		t.Errorf("equal timestamp append should succeed: %v", err)
	}
}

func TestFinalizeTotalsCountersAndGauges(t *testing.T) {
	p := New("cmd", nil)
	_ = p.Append(mkSample(time.Second, MetricCPUCycles, 100.0, MetricMemRSS, 5.0))
	_ = p.Append(mkSample(2*time.Second, MetricCPUCycles, 50.0, MetricMemRSS, 9.0))
	_ = p.Append(mkSample(3*time.Second, MetricCPUCycles, 25.0, MetricMemRSS, 7.0))
	p.Finalize(3 * time.Second)

	if got := p.Total(MetricCPUCycles); got != 175 {
		t.Errorf("counter total = %v, want 175", got)
	}
	if got := p.Total(MetricMemRSS); got != 9 {
		t.Errorf("gauge total (max) = %v, want 9", got)
	}
	if got := p.Total(MetricSysRuntime); got != 3 {
		t.Errorf("runtime total = %v, want 3", got)
	}
	if p.ID == "" {
		t.Error("Finalize should assign an ID")
	}
}

func TestFinalizeDerivedMetrics(t *testing.T) {
	p := New("cmd", nil)
	p.System[MetricSysClockHz] = 1e9
	_ = p.Append(mkSample(time.Second,
		MetricCPUCycles, 8e8,
		MetricCPUStalledFront, 1e8,
		MetricCPUStalledBack, 1e8,
		MetricCPUInstructions, 16e8,
		MetricCPUFLOPs, 4e8,
	))
	p.Finalize(time.Second)

	if got := p.Total(MetricCPUEfficiency); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("efficiency = %v, want 0.8", got)
	}
	if got := p.Total(MetricCPUUtilization); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("utilization = %v, want 0.8", got)
	}
	if got := p.Total(MetricCPUFLOPSRate); math.Abs(got-4e8) > 1 {
		t.Errorf("flop rate = %v, want 4e8", got)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	p := New("", nil)
	if p.Validate() == nil {
		t.Error("empty command should be invalid")
	}
	p = New("cmd", nil)
	p.Samples = []Sample{{T: -time.Second, Values: map[string]float64{}}}
	if p.Validate() == nil {
		t.Error("negative offset should be invalid")
	}
	p = New("cmd", nil)
	p.Samples = []Sample{
		mkSample(2 * time.Second),
		mkSample(time.Second),
	}
	if p.Validate() == nil {
		t.Error("out-of-order samples should be invalid")
	}
	p = New("cmd", nil)
	p.Samples = []Sample{mkSample(time.Second, MetricCPUCycles, math.NaN())}
	if p.Validate() == nil {
		t.Error("NaN value should be invalid")
	}
	p = New("cmd", nil)
	p.Samples = []Sample{mkSample(time.Second, MetricCPUCycles, -1.0)}
	if p.Validate() == nil {
		t.Error("negative counter should be invalid")
	}
	p = New("cmd", nil)
	p.SampleRate = -1
	if p.Validate() == nil {
		t.Error("negative sample rate should be invalid")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := New("gmx mdrun", map[string]string{"steps": "5000"})
	p.Machine = "thinkie"
	p.SampleRate = 10
	_ = p.Append(mkSample(100*time.Millisecond, MetricCPUCycles, 1e8, MetricIOWriteBytes, 4096.0))
	_ = p.Append(mkSample(200*time.Millisecond, MetricCPUCycles, 2e8))
	p.Finalize(250 * time.Millisecond)

	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.ID != p.ID || q.Command != p.Command || q.Duration != p.Duration {
		t.Errorf("round trip mismatch: %+v vs %+v", q, p)
	}
	if len(q.Samples) != 2 || q.Samples[0].Get(MetricCPUCycles) != 1e8 {
		t.Errorf("samples did not survive: %+v", q.Samples)
	}
	if q.Total(MetricCPUCycles) != 3e8 {
		t.Errorf("totals did not survive: %v", q.Total(MetricCPUCycles))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Error("garbage should not decode")
	}
	// Valid JSON but invalid profile.
	if _, err := Decode([]byte(`{"command":""}`)); err == nil {
		t.Error("invalid profile should not decode")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := New("cmd", map[string]string{"a": "1"})
	_ = p.Append(mkSample(time.Second, MetricCPUCycles, 5.0))
	p.Finalize(time.Second)
	q := p.Clone()
	q.Tags["a"] = "2"
	q.Samples[0].Values[MetricCPUCycles] = 99
	q.Totals[MetricCPUCycles] = 99
	if p.Tags["a"] != "1" || p.Samples[0].Get(MetricCPUCycles) != 5 || p.Totals[MetricCPUCycles] != 5 {
		t.Error("Clone is not deep")
	}
}

func TestSeriesAndTimes(t *testing.T) {
	p := New("cmd", nil)
	_ = p.Append(mkSample(time.Second, MetricCPUCycles, 1.0))
	_ = p.Append(mkSample(2*time.Second, MetricCPUCycles, 2.0))
	s := p.Series(MetricCPUCycles)
	if len(s) != 2 || s[0] != 1 || s[1] != 2 {
		t.Errorf("Series = %v", s)
	}
	ts := p.Times()
	if len(ts) != 2 || ts[0] != time.Second || ts[1] != 2*time.Second {
		t.Errorf("Times = %v", ts)
	}
}

func TestDocSizeGrowsWithSamples(t *testing.T) {
	p := New("cmd", nil)
	small := p.DocSize()
	for i := 0; i < 100; i++ {
		_ = p.Append(mkSample(time.Duration(i)*time.Second, MetricCPUCycles, 1.0))
	}
	if p.DocSize() <= small {
		t.Error("DocSize should grow with samples")
	}
}

func TestSetSummaries(t *testing.T) {
	var set Set
	for i, tx := range []time.Duration{10 * time.Second, 12 * time.Second, 11 * time.Second} {
		p := New("cmd", nil)
		_ = p.Append(mkSample(time.Second, MetricCPUCycles, float64(100+i)))
		p.Finalize(tx)
		set = append(set, p)
	}
	sum := set.TotalSummary(MetricCPUCycles)
	if sum.N != 3 || math.Abs(sum.Mean-101) > 1e-9 {
		t.Errorf("TotalSummary = %+v", sum)
	}
	tx := set.TxSummary()
	if math.Abs(tx.Mean-11) > 1e-9 {
		t.Errorf("TxSummary mean = %v, want 11", tx.Mean)
	}
	mean, err := set.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean.Total(MetricCPUCycles)-101) > 1e-9 {
		t.Errorf("Mean profile total = %v", mean.Total(MetricCPUCycles))
	}
	if mean.Duration != 11*time.Second {
		t.Errorf("Mean duration = %v", mean.Duration)
	}
	if len(set.Metrics()) == 0 {
		t.Error("Metrics() should list totals")
	}
}

func TestSetMeanEmpty(t *testing.T) {
	if _, err := (Set{}).Mean(); err == nil {
		t.Error("Mean of empty set should error")
	}
}

func TestResampleConservesCounters(t *testing.T) {
	p := New("cmd", nil)
	p.SampleRate = 1
	for i := 1; i <= 10; i++ {
		_ = p.Append(mkSample(time.Duration(i)*time.Second, MetricCPUCycles, 100.0, MetricMemRSS, float64(i)))
	}
	p.Finalize(10 * time.Second)

	for _, rate := range []float64{0.5, 2, 3.3} {
		q, err := Resample(p, rate)
		if err != nil {
			t.Fatalf("Resample(%v): %v", rate, err)
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("resampled profile invalid: %v", err)
		}
		if got, want := q.Total(MetricCPUCycles), p.Total(MetricCPUCycles); math.Abs(got-want) > 1e-6 {
			t.Errorf("rate %v: counter total = %v, want %v", rate, got, want)
		}
		if q.Duration != p.Duration {
			t.Errorf("rate %v: duration changed: %v", rate, q.Duration)
		}
		// Gauge max must survive (the final RSS is the max here).
		if got := q.Total(MetricMemRSS); got != 10 {
			t.Errorf("rate %v: gauge max = %v, want 10", rate, got)
		}
	}
}

func TestResampleBadRate(t *testing.T) {
	p := New("cmd", nil)
	if _, err := Resample(p, 0); err == nil {
		t.Error("rate 0 should error")
	}
	if _, err := Resample(p, -1); err == nil {
		t.Error("negative rate should error")
	}
}

func TestResampleEmptyProfile(t *testing.T) {
	p := New("cmd", nil)
	q, err := Resample(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Samples) != 0 {
		t.Errorf("resampling empty profile should stay empty, got %d samples", len(q.Samples))
	}
}

// Property: resampling at any positive rate conserves counter totals.
func TestResampleConservationProperty(t *testing.T) {
	f := func(deltas []uint16, rateRaw uint8) bool {
		if len(deltas) == 0 {
			return true
		}
		if len(deltas) > 50 {
			deltas = deltas[:50]
		}
		rate := 0.1 + float64(rateRaw%40)/4 // 0.1 .. 9.85 Hz
		p := New("cmd", nil)
		p.SampleRate = 1
		var total float64
		for i, d := range deltas {
			v := float64(d)
			total += v
			_ = p.Append(mkSample(time.Duration(i+1)*500*time.Millisecond, MetricCPUCycles, v))
		}
		p.Finalize(time.Duration(len(deltas)) * 500 * time.Millisecond)
		q, err := Resample(p, rate)
		if err != nil {
			return false
		}
		return math.Abs(q.Total(MetricCPUCycles)-total) < 1e-6*(1+total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTable1Rendering(t *testing.T) {
	out := Table1()
	for _, want := range []string{
		"number of cores", "cycles used", "bytes read", "bytes peak",
		"connection endpoint", "System", "Compute", "Storage", "Memory", "Network",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	// Row count: header + one line per registry entry.
	lines := strings.Count(strings.TrimRight(out, "\n"), "\n") + 1
	if lines != len(Registry)+1 {
		t.Errorf("Table1 has %d lines, want %d", lines, len(Registry)+1)
	}
}

func TestRegistryMatchesPaperTable1(t *testing.T) {
	// Spot-check cells against the paper.
	cases := []struct {
		metric string
		want   [4]Support // Tot, Sampled, Derived, Emul
	}{
		{MetricSysCores, [4]Support{Yes, No, No, No}},
		{MetricSysLoadDisk, [4]Support{No, No, No, Yes}},
		{MetricCPUCycles, [4]Support{Yes, Yes, No, Yes}},
		{MetricCPUEfficiency, [4]Support{Yes, Yes, Yes, Partial}},
		{MetricCPUFLOPs, [4]Support{Yes, Yes, Yes, Yes}},
		{MetricIOReadBlock, [4]Support{No, Partial, No, Yes}},
		{MetricMemAllocBlock, [4]Support{No, Planned, No, Planned}},
		{MetricNetReadBytes, [4]Support{Planned, Planned, No, Partial}},
	}
	for _, c := range cases {
		r, ok := Lookup(c.metric)
		if !ok {
			t.Errorf("metric %s not registered", c.metric)
			continue
		}
		got := [4]Support{r.Total, r.Sampled, r.Derived, r.Emul}
		if got != c.want {
			t.Errorf("%s support = %v, want %v", c.metric, got, c.want)
		}
	}
}

func TestKindOf(t *testing.T) {
	if KindOf(MetricCPUCycles) != Counter {
		t.Error("cycles should be a counter")
	}
	if KindOf(MetricMemRSS) != Gauge {
		t.Error("rss should be a gauge")
	}
	if KindOf("custom.plugin_metric") != Counter {
		t.Error("unknown metrics default to counter")
	}
}

func TestSupportString(t *testing.T) {
	if Yes.String() != "+" || No.String() != "-" || Partial.String() != "(+)" || Planned.String() != "(-)" {
		t.Error("Support notation mismatch")
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	cases := []struct {
		command string
		tags    map[string]string
	}{
		{"mdsim", nil},
		{"gmx mdrun -v", map[string]string{"steps": "50000"}},
		{"cmd", map[string]string{"a": "1", "b": "x=y", "c": ""}},
	}
	for _, c := range cases {
		cmd, tags := ParseKey(Key(c.command, c.tags))
		if cmd != c.command {
			t.Errorf("ParseKey command = %q, want %q", cmd, c.command)
		}
		if len(tags) != len(c.tags) {
			t.Fatalf("ParseKey tags = %v, want %v", tags, c.tags)
		}
		for k, v := range c.tags {
			if tags[k] != v {
				t.Errorf("ParseKey tag %q = %q, want %q", k, tags[k], v)
			}
		}
	}
}

func TestValidateRejectsAmbiguousIdentity(t *testing.T) {
	mk := func(cmd string, tags map[string]string) *Profile {
		p := New(cmd, tags)
		p.SampleRate = 1
		return p
	}
	for _, p := range []*Profile{
		mk("cmd\x00x", nil),
		mk("cmd", map[string]string{"k\x00": "v"}),
		mk("cmd", map[string]string{"k=x": "v"}),
		mk("cmd", map[string]string{"k": "v\x00"}),
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("identity %q/%v should not validate", p.Command, p.Tags)
		}
	}
	// '=' in a tag VALUE parses unambiguously (Cut splits on the first '=').
	if err := mk("cmd", map[string]string{"k": "a=b"}).Validate(); err != nil {
		t.Errorf("'=' in tag value should validate: %v", err)
	}
}
