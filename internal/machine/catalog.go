package machine

import (
	"fmt"
	"runtime"
	"sort"
	"time"
)

// Names of the applications and kernels known to the catalog.
const (
	AppMDSim   = "mdsim"   // the Gromacs-like synthetic MD application
	AppGromacs = "gromacs" // alias: the paper profiles Gromacs
	AppIOBench = "iobench" // the synthetic I/O workload of experiment E.5
	AppDefault = "default"

	KernelASM    = "asm"    // cache-resident matrix multiply (default kernel)
	KernelC      = "c"      // out-of-cache matrix multiply
	KernelOpenMP = "openmp" // OpenMP variant of the default kernel
)

// Catalog machine names. Thinkie is the profiling host in every paper
// experiment; the others are emulation/execution targets.
const (
	Thinkie  = "thinkie"
	Stampede = "stampede"
	Archer   = "archer"
	Supermic = "supermic"
	Comet    = "comet"
	Titan    = "titan"
	HostName = "host"
)

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
)

// mdsimParallel is the application's own scaling model; the emulator's
// Threading model is set per machine below.
func mdsimParallel(threadOv, procOv, startup time.Duration, contention float64) ParallelModel {
	return ParallelModel{
		SerialFrac:     0.01,
		ThreadOverhead: threadOv,
		ProcOverhead:   procOv,
		ProcStartup:    startup,
		Contention:     contention,
	}
}

// newCatalog constructs the calibrated models for the paper's testbeds. All
// numbers are calibrated against the published figures, not measured from the
// original hardware; DESIGN.md §2 records the substitution rationale and
// EXPERIMENTS.md records paper-vs-reproduced values.
func newCatalog() map[string]*Model {
	ms := []*Model{
		{
			// Off-the-shelf Intel Core i7 M620 laptop, the paper's
			// profiling resource for every experiment.
			Name:     Thinkie,
			ClockHz:  2.66e9,
			Cores:    4,
			MemBytes: 8 * gb,
			MemBW:    8e9,
			L1:       32 * kb, L2: 256 * kb, L3: 4 * mb,
			NetBW: 1.25e8, NetLat: 100 * time.Microsecond,
			FS: map[string]FSPerf{
				FSLocal: {30 * time.Microsecond, 60 * time.Microsecond, 450e6, 300e6},
			},
			DefaultFS: FSLocal,
			Apps: map[string]AppPerf{
				AppMDSim: {CyclesPerUnit: 140e3, IPC: 1.90,
					Parallel: mdsimParallel(40*time.Millisecond, 100*time.Millisecond, 600*time.Millisecond, 0.30)},
			},
			Kernels: map[string]KernelPerf{
				KernelASM: {IPC: 2.90, CalibBias: 1.020},
				KernelC:   {IPC: 2.50, CalibBias: 1.010},
			},
			Threading: ParallelModel{SerialFrac: 0.03, ThreadOverhead: 60 * time.Millisecond,
				ProcOverhead: 120 * time.Millisecond, ProcStartup: 800 * time.Millisecond, Contention: 0.40},
			NoiseRel: 0.030,
		},
		{
			// TACC Stampede: 2x8-core Xeon E5-2680 (Sandy Bridge),
			// local 250 GB HDD used for all experiment I/O.
			Name:     Stampede,
			ClockHz:  2.70e9,
			Cores:    16,
			MemBytes: 32 * gb,
			MemBW:    3.2e10,
			L1:       32 * kb, L2: 256 * kb, L3: 20 * mb,
			NetBW: 1e9, NetLat: 50 * time.Microsecond,
			FS: map[string]FSPerf{
				FSLocal: {150 * time.Microsecond, 300 * time.Microsecond, 140e6, 120e6},
			},
			DefaultFS: FSLocal,
			Apps: map[string]AppPerf{
				// Calibrated so that replaying a Thinkie profile is
				// ≈40 % faster than native execution (Fig 7 top).
				AppMDSim: {CyclesPerUnit: 247e3, IPC: 1.80,
					Parallel: mdsimParallel(35*time.Millisecond, 90*time.Millisecond, 700*time.Millisecond, 0.28)},
			},
			Kernels: map[string]KernelPerf{
				KernelASM: {IPC: 3.10, CalibBias: 1.060},
				KernelC:   {IPC: 2.70, CalibBias: 1.030},
			},
			Threading: ParallelModel{SerialFrac: 0.02, ThreadOverhead: 50 * time.Millisecond,
				ProcOverhead: 100 * time.Millisecond, ProcStartup: 900 * time.Millisecond, Contention: 0.30},
			NoiseRel: 0.020,
		},
		{
			// ARCHER: Cray XC30, 2x12-core E5-2697v2 (Ivy Bridge),
			// experiment I/O on node-local /tmp.
			Name:     Archer,
			ClockHz:  2.70e9,
			Cores:    24,
			MemBytes: 64 * gb,
			MemBW:    4.0e10,
			L1:       32 * kb, L2: 256 * kb, L3: 30 * mb,
			NetBW: 2e9, NetLat: 30 * time.Microsecond,
			FS: map[string]FSPerf{
				FSLocal: {150 * time.Microsecond, 300 * time.Microsecond, 130e6, 110e6},
			},
			DefaultFS: FSLocal,
			Apps: map[string]AppPerf{
				// Calibrated so that replaying a Thinkie profile is
				// ≈33 % slower than native execution (Fig 7 bottom):
				// the Cray-compiled application is better optimized
				// than the profiling host's build.
				AppMDSim: {CyclesPerUnit: 110e3, IPC: 2.10,
					Parallel: mdsimParallel(30*time.Millisecond, 80*time.Millisecond, 650*time.Millisecond, 0.26)},
			},
			Kernels: map[string]KernelPerf{
				KernelASM: {IPC: 3.20, CalibBias: 1.050},
				KernelC:   {IPC: 2.75, CalibBias: 1.020},
			},
			Threading: ParallelModel{SerialFrac: 0.02, ThreadOverhead: 45 * time.Millisecond,
				ProcOverhead: 90 * time.Millisecond, ProcStartup: 850 * time.Millisecond, Contention: 0.28},
			NoiseRel: 0.020,
		},
		{
			// LSU SuperMIC: 2x10-core Xeon E5-2680 (Ivy Bridge-EP);
			// the paper measures ~3.58–3.60 GHz effective clock.
			// All experiment I/O on Lustre unless noted.
			Name:     Supermic,
			ClockHz:  3.59e9,
			Cores:    20,
			MemBytes: 128 * gb,
			MemBW:    5.0e10,
			L1:       32 * kb, L2: 256 * kb, L3: 25 * mb,
			NetBW: 3e9, NetLat: 20 * time.Microsecond,
			FS: map[string]FSPerf{
				FSLustre: {400 * time.Microsecond, 4 * time.Millisecond, 750e6, 75e6},
				FSLocal:  {250 * time.Microsecond, 500 * time.Microsecond, 110e6, 55e6},
			},
			DefaultFS: FSLustre,
			Apps: map[string]AppPerf{
				// IPC 2.04 as measured in Fig 11 (bottom).
				AppMDSim: {CyclesPerUnit: 100e3, IPC: 2.04,
					Parallel: mdsimParallel(120*time.Millisecond, 40*time.Millisecond, 400*time.Millisecond, 0.30)},
			},
			Kernels: map[string]KernelPerf{
				// IPC and converged error percentages from Figs 8-11.
				KernelASM: {IPC: 2.86, CalibBias: 1.265},
				KernelC:   {IPC: 2.53, CalibBias: 1.040},
			},
			// OpenMPI outperforms OpenMP on SuperMIC (Fig 12): threads
			// pay heavy NUMA/sync overhead, processes are cheap.
			Threading: ParallelModel{SerialFrac: 0.02, ThreadOverhead: 300 * time.Millisecond,
				ProcOverhead: 50 * time.Millisecond, ProcStartup: 500 * time.Millisecond, Contention: 0.35},
			NoiseRel: 0.040,
		},
		{
			// SDSC Comet: 2x12-core Xeon E5-2680v3 (Haswell); the paper
			// measures ~2.88–2.90 GHz effective clock. I/O on NFS.
			Name:     Comet,
			ClockHz:  2.89e9,
			Cores:    24,
			MemBytes: 128 * gb,
			MemBW:    5.5e10,
			L1:       32 * kb, L2: 256 * kb, L3: 30 * mb,
			NetBW: 3e9, NetLat: 20 * time.Microsecond,
			FS: map[string]FSPerf{
				FSNFS:   {800 * time.Microsecond, 8 * time.Millisecond, 180e6, 18e6},
				FSLocal: {100 * time.Microsecond, 200 * time.Microsecond, 200e6, 150e6},
			},
			DefaultFS: FSNFS,
			Apps: map[string]AppPerf{
				// IPC 2.17 as measured in Fig 11 (top).
				AppMDSim: {CyclesPerUnit: 120e3, IPC: 2.17,
					Parallel: mdsimParallel(35*time.Millisecond, 70*time.Millisecond, 500*time.Millisecond, 0.25)},
			},
			Kernels: map[string]KernelPerf{
				// Converged cycle errors: C ≈3.5 %, ASM ≈14.5 % (Fig 8).
				KernelASM: {IPC: 3.30, CalibBias: 1.145},
				KernelC:   {IPC: 2.80, CalibBias: 1.035},
			},
			Threading: ParallelModel{SerialFrac: 0.02, ThreadOverhead: 55 * time.Millisecond,
				ProcOverhead: 95 * time.Millisecond, ProcStartup: 700 * time.Millisecond, Contention: 0.30},
			NoiseRel: 0.015,
		},
		{
			// OLCF Titan: 16-core AMD Opteron 6274 per node. I/O on
			// Lustre unless noted; node-local disk is fast.
			Name:     Titan,
			ClockHz:  2.20e9,
			Cores:    16,
			MemBytes: 32 * gb,
			MemBW:    2.5e10,
			L1:       16 * kb, L2: 2 * mb, L3: 8 * mb,
			NetBW: 4e9, NetLat: 15 * time.Microsecond,
			FS: map[string]FSPerf{
				// Lustre performs very similarly on Titan and SuperMIC
				// (Fig 15), while local storage differs significantly.
				FSLustre: {420 * time.Microsecond, 4200 * time.Microsecond, 780e6, 78e6},
				FSLocal:  {60 * time.Microsecond, 120 * time.Microsecond, 480e6, 240e6},
			},
			DefaultFS: FSLustre,
			Apps: map[string]AppPerf{
				AppMDSim: {CyclesPerUnit: 250e3, IPC: 1.30,
					Parallel: mdsimParallel(30*time.Millisecond, 80*time.Millisecond, 800*time.Millisecond, 0.25)},
			},
			Kernels: map[string]KernelPerf{
				KernelASM: {IPC: 2.10, CalibBias: 1.120},
				KernelC:   {IPC: 1.80, CalibBias: 1.050},
			},
			// OpenMP outperforms OpenMPI on Titan (Fig 12).
			Threading: ParallelModel{SerialFrac: 0.02, ThreadOverhead: 50 * time.Millisecond,
				ProcOverhead: 150 * time.Millisecond, ProcStartup: 1 * time.Second, Contention: 0.30},
			NoiseRel: 0.010,
		},
	}

	catalog := make(map[string]*Model, len(ms))
	for _, m := range ms {
		// The Gromacs alias and a generic default share MDSim's numbers:
		// the proxy application is indistinguishable from the real one
		// at the counter level (that is the point of the paper).
		if a, ok := m.Apps[AppMDSim]; ok {
			m.Apps[AppGromacs] = a
			m.Apps[AppDefault] = a
			// The I/O benchmark burns almost no CPU.
			m.Apps[AppIOBench] = AppPerf{CyclesPerUnit: 1e3, IPC: 1.2, Parallel: a.Parallel}
		}
		// The OpenMP kernel shares the default kernel's per-iteration
		// behaviour; parallel distribution is handled by the emulator.
		if k, ok := m.Kernels[KernelASM]; ok {
			m.Kernels[KernelOpenMP] = k
		}
		catalog[m.Name] = m
	}
	return catalog
}

var catalog = newCatalog()

// Get returns the model for the named machine. Name matching is exact and
// lower-case; Host() is returned for "host"; user models added with
// Register are consulted after the built-in catalog.
func Get(name string) (*Model, error) {
	if name == HostName {
		return Host(), nil
	}
	if m, ok := catalog[name]; ok {
		return m, nil
	}
	if m, ok := lookupExtra(name); ok {
		return m, nil
	}
	return nil, fmt.Errorf("machine: unknown machine %q (known: %v)", name, Names())
}

// MustGet is Get for tests and internal callers with catalog-constant names;
// it panics on unknown machines.
func MustGet(name string) *Model {
	m, err := Get(name)
	if err != nil {
		panic(err)
	}
	return m
}

// Names returns the sorted names of catalog machines (not including "host").
func Names() []string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// hostModel is built once; the host's true clock rate is unknown without a
// calibration run, so a conservative nominal value is used. Real-mode
// profiling derives cycle counts from CPU time and this nominal clock, which
// keeps derived metrics consistent even if absolute cycle counts are only
// estimates (the same caveat the paper makes for its utilization metric).
var hostModel = func() *Model {
	m := &Model{
		Name:     HostName,
		ClockHz:  2.5e9,
		Cores:    runtime.NumCPU(),
		MemBytes: 8 * gb,
		MemBW:    1e10,
		L1:       32 * kb, L2: 256 * kb, L3: 8 * mb,
		NetBW: 1e9, NetLat: 50 * time.Microsecond,
		FS: map[string]FSPerf{
			FSLocal: {100 * time.Microsecond, 200 * time.Microsecond, 200e6, 150e6},
		},
		DefaultFS: FSLocal,
		Apps: map[string]AppPerf{
			AppDefault: {CyclesPerUnit: 140e3, IPC: 1.9,
				Parallel: mdsimParallel(40*time.Millisecond, 100*time.Millisecond, 600*time.Millisecond, 0.3)},
		},
		Kernels: map[string]KernelPerf{
			KernelASM:    {IPC: 3.0, CalibBias: 1.0},
			KernelC:      {IPC: 2.5, CalibBias: 1.0},
			KernelOpenMP: {IPC: 3.0, CalibBias: 1.0},
		},
		Threading: ParallelModel{SerialFrac: 0.03, ThreadOverhead: 20 * time.Millisecond,
			ProcOverhead: 50 * time.Millisecond, ProcStartup: 300 * time.Millisecond, Contention: 0.3},
		NoiseRel: 0.05,
	}
	m.Apps[AppMDSim] = m.Apps[AppDefault]
	m.Apps[AppGromacs] = m.Apps[AppDefault]
	return m
}()

// Host returns a model describing the machine this process runs on. It is
// used by real-mode profiling and emulation.
func Host() *Model { return hostModel }
