package machine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// The JSON machine-description format lets users model their own resources
// — the "emulate anywhere" of the paper extends to machines outside the
// built-in catalog. Units are chosen for human authoring: GHz, GB, GB/s,
// microseconds.
//
//	{
//	  "name": "mycluster",
//	  "clock_ghz": 2.4, "cores": 32, "mem_gb": 192, "mem_bw_gbs": 80,
//	  "l1_kb": 32, "l2_kb": 512, "l3_mb": 40,
//	  "net_bw_gbs": 10, "net_lat_us": 5,
//	  "default_fs": "lustre",
//	  "fs": {"lustre": {"read_lat_us": 300, "write_lat_us": 2500,
//	                    "read_bw_mbs": 900, "write_bw_mbs": 120}},
//	  "apps": {"mdsim": {"cycles_per_unit": 115000, "ipc": 2.1}},
//	  "kernels": {"asm": {"ipc": 3.1, "calib_bias": 1.08},
//	              "c":   {"ipc": 2.6, "calib_bias": 1.02}},
//	  "threading": {"serial_frac": 0.02, "thread_overhead_ms": 40,
//	                "proc_overhead_ms": 90, "proc_startup_ms": 700,
//	                "contention": 0.3},
//	  "noise_rel": 0.02
//	}
type modelJSON struct {
	Name      string                `json:"name"`
	ClockGHz  float64               `json:"clock_ghz"`
	Cores     int                   `json:"cores"`
	MemGB     float64               `json:"mem_gb"`
	MemBWGBs  float64               `json:"mem_bw_gbs"`
	L1KB      float64               `json:"l1_kb"`
	L2KB      float64               `json:"l2_kb"`
	L3MB      float64               `json:"l3_mb"`
	NetBWGBs  float64               `json:"net_bw_gbs"`
	NetLatUS  float64               `json:"net_lat_us"`
	DefaultFS string                `json:"default_fs"`
	FS        map[string]fsJSON     `json:"fs"`
	Apps      map[string]appJSON    `json:"apps"`
	Kernels   map[string]kernelJSON `json:"kernels"`
	Threading *threadingJSON        `json:"threading,omitempty"`
	NoiseRel  float64               `json:"noise_rel"`
}

type fsJSON struct {
	ReadLatUS  float64 `json:"read_lat_us"`
	WriteLatUS float64 `json:"write_lat_us"`
	ReadBWMBs  float64 `json:"read_bw_mbs"`
	WriteBWMBs float64 `json:"write_bw_mbs"`
}

type appJSON struct {
	CyclesPerUnit float64        `json:"cycles_per_unit"`
	IPC           float64        `json:"ipc"`
	Parallel      *threadingJSON `json:"parallel,omitempty"`
}

type kernelJSON struct {
	IPC         float64 `json:"ipc"`
	CalibBias   float64 `json:"calib_bias"`
	ChunkCycles float64 `json:"chunk_cycles,omitempty"`
}

type threadingJSON struct {
	SerialFrac       float64 `json:"serial_frac"`
	ThreadOverheadMS float64 `json:"thread_overhead_ms"`
	ProcOverheadMS   float64 `json:"proc_overhead_ms"`
	ProcStartupMS    float64 `json:"proc_startup_ms"`
	Contention       float64 `json:"contention"`
}

func (t *threadingJSON) model() ParallelModel {
	if t == nil {
		return ParallelModel{SerialFrac: 0.02, ThreadOverhead: 50 * time.Millisecond,
			ProcOverhead: 100 * time.Millisecond, ProcStartup: 700 * time.Millisecond, Contention: 0.3}
	}
	return ParallelModel{
		SerialFrac:     t.SerialFrac,
		ThreadOverhead: time.Duration(t.ThreadOverheadMS * float64(time.Millisecond)),
		ProcOverhead:   time.Duration(t.ProcOverheadMS * float64(time.Millisecond)),
		ProcStartup:    time.Duration(t.ProcStartupMS * float64(time.Millisecond)),
		Contention:     t.Contention,
	}
}

// FromJSON parses a machine description. The resulting model is validated;
// missing apps/kernels inherit MDSim-like defaults so a minimal description
// is immediately usable.
func FromJSON(data []byte) (*Model, error) {
	var j modelJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("machine: parse json: %w", err)
	}
	return j.build()
}

// FromJSONStrict parses a machine description rejecting unknown fields —
// the variant declarative specs (scenario cluster blocks) use, so a
// misspelled knob in an inline machine model fails loudly.
func FromJSONStrict(data []byte) (*Model, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var j modelJSON
	if err := dec.Decode(&j); err != nil {
		return nil, fmt.Errorf("machine: parse json: %w", err)
	}
	return j.build()
}

func (j *modelJSON) build() (*Model, error) {
	m := &Model{
		Name:     j.Name,
		ClockHz:  j.ClockGHz * 1e9,
		Cores:    j.Cores,
		MemBytes: int64(j.MemGB * float64(gb)),
		MemBW:    j.MemBWGBs * 1e9,
		L1:       int64(j.L1KB * float64(kb)),
		L2:       int64(j.L2KB * float64(kb)),
		L3:       int64(j.L3MB * float64(mb)),
		NetBW:    j.NetBWGBs * 1e9,
		NetLat:   time.Duration(j.NetLatUS * float64(time.Microsecond)),
		FS:       map[string]FSPerf{},
		Apps:     map[string]AppPerf{},
		Kernels:  map[string]KernelPerf{},
		NoiseRel: j.NoiseRel,
	}
	for name, fs := range j.FS {
		m.FS[name] = FSPerf{
			ReadLatency:  time.Duration(fs.ReadLatUS * float64(time.Microsecond)),
			WriteLatency: time.Duration(fs.WriteLatUS * float64(time.Microsecond)),
			ReadBW:       fs.ReadBWMBs * 1e6,
			WriteBW:      fs.WriteBWMBs * 1e6,
		}
	}
	if len(m.FS) == 0 {
		m.FS[FSLocal] = FSPerf{100 * time.Microsecond, 200 * time.Microsecond, 200e6, 150e6}
	}
	m.DefaultFS = j.DefaultFS
	if m.DefaultFS == "" {
		for name := range m.FS {
			if m.DefaultFS == "" || name == FSLocal {
				m.DefaultFS = name
			}
		}
	}
	for name, a := range j.Apps {
		m.Apps[name] = AppPerf{
			CyclesPerUnit: a.CyclesPerUnit,
			IPC:           a.IPC,
			Parallel:      a.Parallel.model(),
		}
	}
	if _, ok := m.Apps[AppDefault]; !ok {
		if a, ok := m.Apps[AppMDSim]; ok {
			m.Apps[AppDefault] = a
		} else {
			def := AppPerf{CyclesPerUnit: 140e3, IPC: 1.9, Parallel: (*threadingJSON)(nil).model()}
			m.Apps[AppDefault] = def
			m.Apps[AppMDSim] = def
		}
	}
	if _, ok := m.Apps[AppGromacs]; !ok {
		m.Apps[AppGromacs] = m.Apps[AppDefault]
	}
	if _, ok := m.Apps[AppIOBench]; !ok {
		a := m.Apps[AppDefault]
		m.Apps[AppIOBench] = AppPerf{CyclesPerUnit: 1e3, IPC: 1.2, Parallel: a.Parallel}
	}
	for name, k := range j.Kernels {
		m.Kernels[name] = KernelPerf{IPC: k.IPC, CalibBias: k.CalibBias, ChunkCycles: k.ChunkCycles}
	}
	if _, ok := m.Kernels[KernelASM]; !ok {
		m.Kernels[KernelASM] = KernelPerf{IPC: 3.0, CalibBias: 1.05}
	}
	if _, ok := m.Kernels[KernelC]; !ok {
		m.Kernels[KernelC] = KernelPerf{IPC: 2.5, CalibBias: 1.02}
	}
	if _, ok := m.Kernels[KernelOpenMP]; !ok {
		m.Kernels[KernelOpenMP] = m.Kernels[KernelASM]
	}
	m.Threading = j.Threading.model()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// extras holds user-registered machine models, consulted by Get after the
// built-in catalog.
var (
	extrasMu sync.RWMutex
	extras   = map[string]*Model{}
)

// Register adds (or replaces) a user machine model; it cannot shadow
// catalog machines.
func Register(m *Model) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if _, ok := catalog[m.Name]; ok {
		return fmt.Errorf("machine: %q is a built-in model", m.Name)
	}
	if m.Name == HostName {
		return fmt.Errorf("machine: %q is reserved", HostName)
	}
	extrasMu.Lock()
	defer extrasMu.Unlock()
	extras[m.Name] = m
	return nil
}

// lookupExtra returns a registered user model.
func lookupExtra(name string) (*Model, bool) {
	extrasMu.RLock()
	defer extrasMu.RUnlock()
	m, ok := extras[name]
	return m, ok
}
