// Package machine models the compute resources Synapse runs on.
//
// The paper evaluates Synapse on six physical testbeds (Thinkie, Stampede,
// Archer, Supermic, Comet, Titan). None of that hardware is available to a
// reproduction, so this package provides the substitution documented in
// DESIGN.md §2: an analytic resource model per machine — clock rate, cores,
// cache hierarchy, per-application and per-kernel performance, and
// per-filesystem I/O cost tables — calibrated so that the relative behaviours
// reported in the paper's evaluation hold. The same interfaces also describe
// the real host (see Host), which lets the profiler and emulator run in
// either simulated or real mode.
package machine

import (
	"fmt"
	"sort"
	"time"
)

// Filesystem kinds used across the catalog. These match the filesystems the
// paper's experiments touch: node-local disks, Lustre and NFS.
const (
	FSLocal  = "local"
	FSLustre = "lustre"
	FSNFS    = "nfs"
	FSTmp    = "tmp" // alias some machines expose for their local scratch
)

// FSPerf is the per-filesystem I/O cost model. One I/O operation of b bytes
// costs latency + b/bandwidth; a transfer of B bytes issued in blocks of s
// bytes therefore costs ceil(B/s)*latency + B/bandwidth. This reproduces the
// paper's E.5 observation that many small operations are far slower than few
// large ones, and that writes are roughly an order of magnitude slower than
// reads on shared filesystems.
type FSPerf struct {
	ReadLatency  time.Duration
	WriteLatency time.Duration
	ReadBW       float64 // bytes/second
	WriteBW      float64 // bytes/second
}

// ReadTime returns the modeled time to read total bytes using the given
// block size. A non-positive block size means one single operation.
func (f FSPerf) ReadTime(total, block int64) time.Duration {
	return ioTime(total, block, f.ReadLatency, f.ReadBW)
}

// WriteTime returns the modeled time to write total bytes using the given
// block size.
func (f FSPerf) WriteTime(total, block int64) time.Duration {
	return ioTime(total, block, f.WriteLatency, f.WriteBW)
}

func ioTime(total, block int64, lat time.Duration, bw float64) time.Duration {
	if total <= 0 {
		return 0
	}
	if block <= 0 || block > total {
		block = total
	}
	ops := total / block
	if total%block != 0 {
		ops++
	}
	sec := float64(total) / bw
	return time.Duration(ops)*lat + time.Duration(sec*float64(time.Second))
}

// KernelPerf describes how one emulation kernel behaves on one machine.
type KernelPerf struct {
	// IPC is the effective instructions-per-cycle the kernel's inner loop
	// achieves on this machine (cache-resident kernels run closer to the
	// issue width; out-of-cache kernels stall more).
	IPC float64
	// CalibBias is the ratio of cycles actually consumed to cycles the
	// kernel was directed to consume. Kernels self-calibrate their
	// cycles-per-iteration in a short run whose regime (cold caches,
	// timer overhead) differs from the bulk loop, producing the constant
	// relative error the paper observes in experiment E.3 (C kernel
	// ≈3.5–4 %, ASM kernel ≈14.5–26.5 %).
	CalibBias float64
	// ChunkCycles is the kernel's consumption granularity: work is
	// dispatched in whole chunks, so small targets overshoot by up to one
	// chunk. Zero selects the default (2e7 cycles). The decaying head of
	// the E.3 error curves comes from this granularity.
	ChunkCycles float64
}

// DefaultChunkCycles is used when a kernel does not specify its granularity.
const DefaultChunkCycles = 2e7

// Chunk returns the kernel's effective dispatch granularity.
func (k KernelPerf) Chunk() float64 {
	if k.ChunkCycles > 0 {
		return k.ChunkCycles
	}
	return DefaultChunkCycles
}

// AppPerf describes how a profiled application behaves on one machine. The
// paper attributes cross-machine differences to compile-time optimization and
// microarchitecture (§4.5 "Application Optimization"); both are captured by
// machine-specific cycles-per-work-unit and IPC.
type AppPerf struct {
	// CyclesPerUnit is the CPU cycles one unit of application work costs
	// on this machine (for MDSim one unit is one iteration step).
	CyclesPerUnit float64
	// IPC is the application's achieved instructions per cycle.
	IPC float64
	// Parallel describes how the application itself scales when built
	// with OpenMP or MPI (used for the Fig 13/14 baselines).
	Parallel ParallelModel
}

// Instructions returns the instruction count corresponding to cycles at this
// application's IPC.
func (a AppPerf) Instructions(cycles float64) float64 { return cycles * a.IPC }

// ParallelModel captures single-node scaling behaviour: Amdahl's law plus a
// per-worker overhead and a contention term that erodes gains as the node
// fills up (the paper's Fig 12: "good scaling for small core numbers, but
// diminishing return for larger core numbers, where overall system stress
// limits potential performance gains").
type ParallelModel struct {
	SerialFrac     float64       // fraction of work that does not parallelize
	ThreadOverhead time.Duration // added per extra thread (OpenMP mode)
	ProcOverhead   time.Duration // added per extra process (MPI mode)
	ProcStartup    time.Duration // one-time cost of spawning processes
	Contention     float64       // relative slowdown at full node occupancy
}

// Mode selects thread- or process-based parallelism.
type Mode int

// Parallelism modes. ModeOpenMP shares one address space (threads), ModeMPI
// duplicates resource usage across processes, mirroring the paper's
// OpenMP/OpenMPI emulation modes.
const (
	ModeSerial Mode = iota
	ModeOpenMP
	ModeMPI
)

// String returns the conventional name of the mode.
func (m Mode) String() string {
	switch m {
	case ModeOpenMP:
		return "OpenMP"
	case ModeMPI:
		return "MPI"
	default:
		return "serial"
	}
}

// ScaleWork returns the modeled parallel runtime of the work itself —
// Amdahl's law plus contention — without the one-time worker-pool overheads.
// The emulator applies ScaleWork per replayed sample and SetupOverhead once
// per run.
func (p ParallelModel) ScaleWork(tSerial time.Duration, n, cores int, mode Mode) time.Duration {
	if n <= 1 || mode == ModeSerial {
		return tSerial
	}
	if cores < 1 {
		cores = 1
	}
	par := 1 - p.SerialFrac
	// Amdahl core.
	t := float64(tSerial) * (p.SerialFrac + par/float64(n))
	// Contention: the parallel portion slows as the node fills.
	occupancy := float64(n) / float64(cores)
	if occupancy > 1 {
		occupancy = 1
	}
	t *= 1 + p.Contention*occupancy
	return time.Duration(t)
}

// SetupOverhead returns the one-time cost of standing up n workers in the
// given mode: thread spawn/sync for OpenMP, process launch for MPI.
func (p ParallelModel) SetupOverhead(n int, mode Mode) time.Duration {
	if n <= 1 || mode == ModeSerial {
		return 0
	}
	switch mode {
	case ModeOpenMP:
		return p.ThreadOverhead * time.Duration(n-1)
	case ModeMPI:
		return p.ProcOverhead*time.Duration(n-1) + p.ProcStartup
	default:
		return 0
	}
}

// Scale returns the modeled parallel runtime for a serial duration tSerial
// distributed over n workers on a node with cores cores, including the
// one-time setup overhead.
func (p ParallelModel) Scale(tSerial time.Duration, n, cores int, mode Mode) time.Duration {
	return p.ScaleWork(tSerial, n, cores, mode) + p.SetupOverhead(n, mode)
}

// Model is the full description of one machine.
type Model struct {
	Name     string
	ClockHz  float64 // effective cycles per second (includes turbo, as measured)
	Cores    int
	MemBytes int64
	MemBW    float64 // bytes/second main-memory bandwidth
	L1, L2   int64   // per-core cache sizes in bytes
	L3       int64   // shared cache size in bytes

	// NetBW/NetLat model socket traffic for the network atom.
	NetBW  float64
	NetLat time.Duration

	// FS maps filesystem kind to its cost model; DefaultFS is used when a
	// workload does not name a filesystem.
	FS        map[string]FSPerf
	DefaultFS string

	// Apps maps application name to its per-machine performance.
	Apps map[string]AppPerf
	// Kernels maps emulation-kernel name to its per-machine performance.
	Kernels map[string]KernelPerf

	// Threading describes how the *emulator's* parallel modes behave on
	// this machine (Fig 12); distinct from each application's own model.
	Threading ParallelModel

	// NoiseRel is the relative run-to-run noise of measurements on this
	// machine (system background); simulated runs jitter results by it.
	NoiseRel float64
}

// ComputeTime returns the wall time to retire the given number of cycles on
// one core of this machine.
func (m *Model) ComputeTime(cycles float64) time.Duration {
	if cycles <= 0 || m.ClockHz <= 0 {
		return 0
	}
	return time.Duration(cycles / m.ClockHz * float64(time.Second))
}

// Cycles returns the number of cycles retired in d on one core.
func (m *Model) Cycles(d time.Duration) float64 {
	return d.Seconds() * m.ClockHz
}

// MemTime returns the modeled time to touch (allocate and fill, or free)
// bytes of main memory.
func (m *Model) MemTime(bytes int64) time.Duration {
	if bytes <= 0 || m.MemBW <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / m.MemBW * float64(time.Second))
}

// NetTime returns the modeled time to transfer bytes over the network in
// blocks of block bytes.
func (m *Model) NetTime(bytes, block int64) time.Duration {
	if m.NetBW <= 0 {
		return 0
	}
	return ioTime(bytes, block, m.NetLat, m.NetBW)
}

// Filesystem returns the cost model for the named filesystem, falling back
// to the machine's default when name is empty, and an error when the machine
// has no such filesystem.
func (m *Model) Filesystem(name string) (FSPerf, error) {
	if name == "" {
		name = m.DefaultFS
	}
	if name == FSTmp {
		// /tmp is node-local storage on every catalog machine.
		if _, ok := m.FS[FSTmp]; !ok {
			name = FSLocal
		}
	}
	fs, ok := m.FS[name]
	if !ok {
		return FSPerf{}, fmt.Errorf("machine %s: unknown filesystem %q", m.Name, name)
	}
	return fs, nil
}

// App returns the performance description of the named application on this
// machine. Unknown applications fall back to the "default" entry if present.
func (m *Model) App(name string) (AppPerf, error) {
	if a, ok := m.Apps[name]; ok {
		return a, nil
	}
	if a, ok := m.Apps["default"]; ok {
		return a, nil
	}
	return AppPerf{}, fmt.Errorf("machine %s: unknown application %q", m.Name, name)
}

// Kernel returns the performance description of the named emulation kernel
// on this machine.
func (m *Model) Kernel(name string) (KernelPerf, error) {
	if k, ok := m.Kernels[name]; ok {
		return k, nil
	}
	return KernelPerf{}, fmt.Errorf("machine %s: unknown kernel %q", m.Name, name)
}

// Validate reports the first inconsistency in the model, or nil.
func (m *Model) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("machine: empty name")
	case m.ClockHz <= 0:
		return fmt.Errorf("machine %s: non-positive clock", m.Name)
	case m.Cores <= 0:
		return fmt.Errorf("machine %s: non-positive cores", m.Name)
	case m.MemBytes <= 0:
		return fmt.Errorf("machine %s: non-positive memory", m.Name)
	case m.MemBW <= 0:
		return fmt.Errorf("machine %s: non-positive memory bandwidth", m.Name)
	}
	if m.DefaultFS != "" {
		if _, ok := m.FS[m.DefaultFS]; !ok {
			return fmt.Errorf("machine %s: default filesystem %q not in FS table", m.Name, m.DefaultFS)
		}
	}
	for name, fs := range m.FS {
		if fs.ReadBW <= 0 || fs.WriteBW <= 0 {
			return fmt.Errorf("machine %s: filesystem %q has non-positive bandwidth", m.Name, name)
		}
		if fs.ReadLatency < 0 || fs.WriteLatency < 0 {
			return fmt.Errorf("machine %s: filesystem %q has negative latency", m.Name, name)
		}
	}
	for name, k := range m.Kernels {
		if k.IPC <= 0 || k.CalibBias <= 0 {
			return fmt.Errorf("machine %s: kernel %q has non-positive IPC or bias", m.Name, name)
		}
	}
	for name, a := range m.Apps {
		if a.CyclesPerUnit <= 0 || a.IPC <= 0 {
			return fmt.Errorf("machine %s: app %q has non-positive cycles/unit or IPC", m.Name, name)
		}
	}
	return nil
}

// FSNames returns the machine's filesystem names, sorted.
func (m *Model) FSNames() []string {
	names := make([]string, 0, len(m.FS))
	for n := range m.FS {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
