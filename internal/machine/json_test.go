package machine

import (
	"strings"
	"testing"
	"time"
)

const sampleJSON = `{
  "name": "mycluster",
  "clock_ghz": 2.4, "cores": 32, "mem_gb": 192, "mem_bw_gbs": 80,
  "l1_kb": 32, "l2_kb": 512, "l3_mb": 40,
  "net_bw_gbs": 10, "net_lat_us": 5,
  "default_fs": "lustre",
  "fs": {"lustre": {"read_lat_us": 300, "write_lat_us": 2500,
                    "read_bw_mbs": 900, "write_bw_mbs": 120},
         "local":  {"read_lat_us": 80, "write_lat_us": 160,
                    "read_bw_mbs": 400, "write_bw_mbs": 250}},
  "apps": {"mdsim": {"cycles_per_unit": 115000, "ipc": 2.1}},
  "kernels": {"asm": {"ipc": 3.1, "calib_bias": 1.08},
              "c":   {"ipc": 2.6, "calib_bias": 1.02}},
  "threading": {"serial_frac": 0.02, "thread_overhead_ms": 40,
                "proc_overhead_ms": 90, "proc_startup_ms": 700,
                "contention": 0.3},
  "noise_rel": 0.02
}`

func TestFromJSON(t *testing.T) {
	m, err := FromJSON([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "mycluster" || m.Cores != 32 {
		t.Errorf("identity = %s/%d", m.Name, m.Cores)
	}
	if m.ClockHz != 2.4e9 {
		t.Errorf("clock = %v", m.ClockHz)
	}
	fs, err := m.Filesystem("")
	if err != nil {
		t.Fatal(err)
	}
	if fs.WriteBW != 120e6 {
		t.Errorf("default fs write bw = %v", fs.WriteBW)
	}
	a, err := m.App(AppMDSim)
	if err != nil {
		t.Fatal(err)
	}
	if a.CyclesPerUnit != 115000 || a.IPC != 2.1 {
		t.Errorf("app = %+v", a)
	}
	k, err := m.Kernel(KernelASM)
	if err != nil {
		t.Fatal(err)
	}
	if k.CalibBias != 1.08 {
		t.Errorf("kernel bias = %v", k.CalibBias)
	}
	if m.Threading.ThreadOverhead != 40*time.Millisecond {
		t.Errorf("threading = %+v", m.Threading)
	}
	// Gromacs alias and iobench defaults were filled in.
	if _, err := m.App(AppGromacs); err != nil {
		t.Error("gromacs alias missing")
	}
	if _, err := m.App(AppIOBench); err != nil {
		t.Error("iobench default missing")
	}
	if _, err := m.Kernel(KernelOpenMP); err != nil {
		t.Error("openmp kernel default missing")
	}
}

func TestFromJSONMinimal(t *testing.T) {
	m, err := FromJSON([]byte(`{"name":"tiny","clock_ghz":2,"cores":4,"mem_gb":8,"mem_bw_gbs":10}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Filesystem, apps, kernels default sensibly.
	if _, err := m.Filesystem(""); err != nil {
		t.Error(err)
	}
	if _, err := m.App(AppMDSim); err != nil {
		t.Error(err)
	}
	if _, err := m.Kernel(KernelC); err != nil {
		t.Error(err)
	}
}

func TestFromJSONInvalid(t *testing.T) {
	if _, err := FromJSON([]byte("{")); err == nil {
		t.Error("malformed json should fail")
	}
	if _, err := FromJSON([]byte(`{"name":"x"}`)); err == nil {
		t.Error("missing clock should fail validation")
	}
	if _, err := FromJSON([]byte(`{"name":"","clock_ghz":1,"cores":1,"mem_gb":1,"mem_bw_gbs":1}`)); err == nil {
		t.Error("empty name should fail")
	}
}

func TestRegisterAndGet(t *testing.T) {
	m, err := FromJSON([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(m); err != nil {
		t.Fatal(err)
	}
	got, err := Get("mycluster")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "mycluster" {
		t.Errorf("Get returned %s", got.Name)
	}
	// Shadowing built-ins or "host" is rejected.
	bad := *m
	bad.Name = Thinkie
	if err := Register(&bad); err == nil || !strings.Contains(err.Error(), "built-in") {
		t.Errorf("shadowing thinkie: %v", err)
	}
	bad.Name = HostName
	if err := Register(&bad); err == nil {
		t.Error("registering 'host' should fail")
	}
	// Invalid models rejected.
	bad = *m
	bad.Name = "broken"
	bad.ClockHz = -1
	if err := Register(&bad); err == nil {
		t.Error("invalid model should not register")
	}
}
