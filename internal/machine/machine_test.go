package machine

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestCatalogComplete(t *testing.T) {
	names := []string{Thinkie, Stampede, Archer, Supermic, Comet, Titan}
	if got := len(Names()); got != len(names) {
		t.Fatalf("catalog has %d machines, want %d: %v", got, len(names), Names())
	}
	for _, n := range names {
		m, err := Get(n)
		if err != nil {
			t.Fatalf("Get(%q): %v", n, err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("model %s invalid: %v", n, err)
		}
		if _, err := m.App(AppMDSim); err != nil {
			t.Errorf("%s has no mdsim app: %v", n, err)
		}
		if _, err := m.App(AppGromacs); err != nil {
			t.Errorf("%s has no gromacs alias: %v", n, err)
		}
		if _, err := m.Kernel(KernelASM); err != nil {
			t.Errorf("%s has no asm kernel: %v", n, err)
		}
		if _, err := m.Kernel(KernelC); err != nil {
			t.Errorf("%s has no c kernel: %v", n, err)
		}
		if _, err := m.Filesystem(""); err != nil {
			t.Errorf("%s has no default filesystem: %v", n, err)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nonesuch"); err == nil {
		t.Fatal("Get of unknown machine should error")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet(unknown) should panic")
		}
	}()
	MustGet("nonesuch")
}

func TestHostModel(t *testing.T) {
	h := Host()
	if err := h.Validate(); err != nil {
		t.Fatalf("host model invalid: %v", err)
	}
	if h.Cores < 1 {
		t.Errorf("host cores = %d", h.Cores)
	}
	if m, err := Get(HostName); err != nil || m != h {
		t.Errorf("Get(host) = %v, %v", m, err)
	}
}

func TestComputeTimeRoundTrip(t *testing.T) {
	m := MustGet(Comet)
	d := m.ComputeTime(2.89e9) // exactly one second of cycles
	if math.Abs(d.Seconds()-1) > 1e-9 {
		t.Errorf("ComputeTime(clockHz) = %v, want 1s", d)
	}
	cyc := m.Cycles(2 * time.Second)
	if math.Abs(cyc-2*2.89e9) > 1 {
		t.Errorf("Cycles(2s) = %v", cyc)
	}
	if m.ComputeTime(0) != 0 || m.ComputeTime(-5) != 0 {
		t.Error("non-positive cycles should cost no time")
	}
}

func TestIOTimeBlockGranularity(t *testing.T) {
	fs := FSPerf{ReadLatency: time.Millisecond, WriteLatency: 10 * time.Millisecond, ReadBW: 100e6, WriteBW: 10e6}
	total := int64(100 * mb)
	small := fs.ReadTime(total, 4*kb)
	large := fs.ReadTime(total, 64*mb)
	if small <= large {
		t.Errorf("small blocks should be slower: %v vs %v", small, large)
	}
	// Writes with the same block size must be slower than reads here.
	if fs.WriteTime(total, 1*mb) <= fs.ReadTime(total, 1*mb) {
		t.Error("writes should be slower than reads for this model")
	}
	// Zero bytes costs nothing.
	if fs.ReadTime(0, 4*kb) != 0 {
		t.Error("zero-byte read should cost nothing")
	}
	// Non-positive block size means a single operation.
	one := fs.ReadTime(total, 0)
	wantMin := time.Duration(float64(total) / fs.ReadBW * float64(time.Second))
	if one < wantMin || one > wantMin+2*fs.ReadLatency {
		t.Errorf("single-op read = %v, want ≈%v + 1 latency", one, wantMin)
	}
}

func TestIOTimePartialBlockCounts(t *testing.T) {
	fs := FSPerf{ReadLatency: time.Millisecond, WriteLatency: time.Millisecond, ReadBW: 1e9, WriteBW: 1e9}
	// 10 bytes in 4-byte blocks = 3 operations.
	got := fs.ReadTime(10, 4)
	latPart := 3 * time.Millisecond
	if got < latPart {
		t.Errorf("ReadTime(10,4) = %v, want >= %v (3 ops)", got, latPart)
	}
}

func TestFilesystemLookup(t *testing.T) {
	m := MustGet(Titan)
	if _, err := m.Filesystem(FSLustre); err != nil {
		t.Errorf("titan should have lustre: %v", err)
	}
	if _, err := m.Filesystem(FSLocal); err != nil {
		t.Errorf("titan should have local: %v", err)
	}
	// /tmp aliases local when not present explicitly.
	if _, err := m.Filesystem(FSTmp); err != nil {
		t.Errorf("tmp should alias local: %v", err)
	}
	if _, err := m.Filesystem("gpfs"); err == nil {
		t.Error("unknown filesystem should error")
	}
}

func TestAppFallsBackToDefault(t *testing.T) {
	m := MustGet(Thinkie)
	a, err := m.App("some-unknown-app")
	if err != nil {
		t.Fatalf("App should fall back to default: %v", err)
	}
	want, _ := m.App(AppMDSim)
	if a.CyclesPerUnit != want.CyclesPerUnit {
		t.Errorf("default app = %+v, want mdsim numbers", a)
	}
}

func TestKernelUnknown(t *testing.T) {
	m := MustGet(Thinkie)
	if _, err := m.Kernel("fortran"); err == nil {
		t.Error("unknown kernel should error")
	}
}

// The paper's Fig 7 calibration: replaying a Thinkie profile on Stampede must
// be ≈40 % faster than native execution, and ≈33 % slower on Archer.
func TestPortabilityCalibration(t *testing.T) {
	thinkie := MustGet(Thinkie)
	appT, _ := thinkie.App(AppMDSim)

	check := func(target string, wantDiff, tol float64) {
		m := MustGet(target)
		appM, _ := m.App(AppMDSim)
		k, _ := m.Kernel(KernelASM)
		// Emulation replays the cycles profiled on Thinkie.
		const units = 1e6
		emul := float64(units) * appT.CyclesPerUnit * k.CalibBias / m.ClockHz
		app := float64(units) * appM.CyclesPerUnit / m.ClockHz
		diff := 100 * (emul - app) / app
		if math.Abs(diff-wantDiff) > tol {
			t.Errorf("%s: emulation diff = %.1f%%, want %.0f%% ± %.0f", target, diff, wantDiff, tol)
		}
	}
	check(Stampede, -40, 3)
	check(Archer, +33, 3)
}

// The paper's Fig 11 calibration: IPC ordering app < C kernel < ASM kernel on
// Comet and Supermic, with the published values.
func TestKernelIPCCalibration(t *testing.T) {
	for _, tc := range []struct {
		machine     string
		app, c, asm float64
	}{
		{Comet, 2.17, 2.80, 3.30},
		{Supermic, 2.04, 2.53, 2.86},
	} {
		m := MustGet(tc.machine)
		a, _ := m.App(AppMDSim)
		ck, _ := m.Kernel(KernelC)
		ak, _ := m.Kernel(KernelASM)
		if math.Abs(a.IPC-tc.app) > 1e-9 || math.Abs(ck.IPC-tc.c) > 1e-9 || math.Abs(ak.IPC-tc.asm) > 1e-9 {
			t.Errorf("%s IPCs = (%.2f, %.2f, %.2f), want (%.2f, %.2f, %.2f)",
				tc.machine, a.IPC, ck.IPC, ak.IPC, tc.app, tc.c, tc.asm)
		}
		if !(a.IPC < ck.IPC && ck.IPC < ak.IPC) {
			t.Errorf("%s: IPC ordering app < C < ASM violated", tc.machine)
		}
		// Cycle-consumption bias ordering: C kernel more accurate.
		if !(ck.CalibBias-1 < ak.CalibBias-1) {
			t.Errorf("%s: C kernel should have smaller calibration bias", tc.machine)
		}
	}
}

// Fig 12 calibration: OpenMP beats MPI at full node on Titan; MPI beats
// OpenMP on Supermic.
func TestParallelCrossover(t *testing.T) {
	serial := 60 * time.Second
	titan := MustGet(Titan)
	omp := titan.Threading.Scale(serial, titan.Cores, titan.Cores, ModeOpenMP)
	mpi := titan.Threading.Scale(serial, titan.Cores, titan.Cores, ModeMPI)
	if omp >= mpi {
		t.Errorf("titan: OpenMP (%v) should beat MPI (%v)", omp, mpi)
	}
	sm := MustGet(Supermic)
	omp = sm.Threading.Scale(serial, sm.Cores, sm.Cores, ModeOpenMP)
	mpi = sm.Threading.Scale(serial, sm.Cores, sm.Cores, ModeMPI)
	if mpi >= omp {
		t.Errorf("supermic: MPI (%v) should beat OpenMP (%v)", mpi, omp)
	}
}

// Fig 15 calibration: Lustre performs about the same on Titan and Supermic;
// local storage differs significantly (Titan faster); writes are roughly an
// order of magnitude slower than reads on shared filesystems.
func TestIOCalibration(t *testing.T) {
	titan := MustGet(Titan)
	sm := MustGet(Supermic)
	tl, _ := titan.Filesystem(FSLustre)
	sl, _ := sm.Filesystem(FSLustre)
	const total, block = 256 * 1024 * 1024, 1024 * 1024
	rt := tl.ReadTime(total, block).Seconds()
	rs := sl.ReadTime(total, block).Seconds()
	if rel := math.Abs(rt-rs) / rs; rel > 0.15 {
		t.Errorf("lustre read differs %.0f%% between titan and supermic", rel*100)
	}
	tloc, _ := titan.Filesystem(FSLocal)
	sloc, _ := sm.Filesystem(FSLocal)
	if tloc.ReadTime(total, block) >= sloc.ReadTime(total, block) {
		t.Error("titan local should be much faster than supermic local")
	}
	if ratio := tl.WriteTime(total, block).Seconds() / tl.ReadTime(total, block).Seconds(); ratio < 5 {
		t.Errorf("lustre writes only %.1fx slower than reads, want order of magnitude", ratio)
	}
}

func TestParallelScaleSerialModes(t *testing.T) {
	p := ParallelModel{SerialFrac: 0.1, ThreadOverhead: time.Millisecond}
	d := 10 * time.Second
	if got := p.Scale(d, 1, 8, ModeOpenMP); got != d {
		t.Errorf("n=1 should be serial, got %v", got)
	}
	if got := p.Scale(d, 4, 8, ModeSerial); got != d {
		t.Errorf("serial mode should ignore n, got %v", got)
	}
}

func TestParallelScaleZeroCores(t *testing.T) {
	p := ParallelModel{SerialFrac: 0.1}
	// Must not panic or divide by zero.
	_ = p.Scale(time.Second, 4, 0, ModeOpenMP)
}

func TestModeString(t *testing.T) {
	if ModeOpenMP.String() != "OpenMP" || ModeMPI.String() != "MPI" || ModeSerial.String() != "serial" {
		t.Error("Mode.String() mismatch")
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	good := *MustGet(Thinkie)
	bad := good
	bad.ClockHz = 0
	if bad.Validate() == nil {
		t.Error("zero clock should be invalid")
	}
	bad = good
	bad.Name = ""
	if bad.Validate() == nil {
		t.Error("empty name should be invalid")
	}
	bad = good
	bad.DefaultFS = "gone"
	if bad.Validate() == nil {
		t.Error("dangling default FS should be invalid")
	}
}

// Property: more work never takes less time (monotonicity of the cost models).
func TestCostMonotonicityProperty(t *testing.T) {
	m := MustGet(Supermic)
	fs, _ := m.Filesystem(FSLustre)
	f := func(aRaw, bRaw uint32, blockRaw uint16) bool {
		a, b := int64(aRaw), int64(bRaw)
		if a > b {
			a, b = b, a
		}
		block := int64(blockRaw) + 1
		if fs.ReadTime(a, block) > fs.ReadTime(b, block) {
			return false
		}
		if fs.WriteTime(a, block) > fs.WriteTime(b, block) {
			return false
		}
		if m.ComputeTime(float64(a)) > m.ComputeTime(float64(b)) {
			return false
		}
		return m.MemTime(a) <= m.MemTime(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: parallel runtime with contention never beats perfect speedup and
// never exceeds the serial runtime by more than overheads.
func TestParallelScaleBoundsProperty(t *testing.T) {
	m := MustGet(Titan)
	f := func(nRaw uint8, secRaw uint16) bool {
		n := int(nRaw%32) + 1
		d := time.Duration(secRaw) * time.Millisecond
		got := m.Threading.Scale(d, n, m.Cores, ModeOpenMP)
		// Lower bound: perfect speedup of the parallel fraction.
		ideal := time.Duration(float64(d) * (m.Threading.SerialFrac + (1-m.Threading.SerialFrac)/float64(n)))
		return got >= ideal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNetTime(t *testing.T) {
	m := MustGet(Thinkie)
	if m.NetTime(0, 0) != 0 {
		t.Error("zero bytes should cost nothing")
	}
	small := m.NetTime(10*mb, 1*kb)
	large := m.NetTime(10*mb, 1*mb)
	if small <= large {
		t.Errorf("smaller network blocks should be slower: %v vs %v", small, large)
	}
}
