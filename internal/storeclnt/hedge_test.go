package storeclnt

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"synapse/internal/store"
	"synapse/internal/store/storetest"
	"synapse/internal/storesrv"
)

// slowFirstHandler stalls the Nth request to the profiles GET endpoint until
// its context is canceled (or a long fuse burns down), and serves everything
// else immediately. It records whether the stalled request got canceled.
type slowFirstHandler struct {
	inner    http.Handler
	stallNth int64 // 1-based GET /v1/profiles request index to stall

	gets     atomic.Int64
	canceled atomic.Bool
	released chan struct{} // closed when the stalled request returns
}

func newSlowFirstHandler(inner http.Handler, nth int64) *slowFirstHandler {
	return &slowFirstHandler{inner: inner, stallNth: nth, released: make(chan struct{})}
}

func (h *slowFirstHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet && r.URL.Path == "/v1/profiles" {
		if h.gets.Add(1) == h.stallNth {
			defer close(h.released)
			select {
			case <-r.Context().Done():
				h.canceled.Store(true)
			case <-time.After(5 * time.Second):
			}
			// Too late to matter; answer with an error either way.
			http.Error(w, `{"error": "stalled", "code": "internal"}`, http.StatusInternalServerError)
			return
		}
	}
	h.inner.ServeHTTP(w, r)
}

func hedgeClient(t *testing.T, stallNth int64, opts ...Option) (*Remote, *slowFirstHandler) {
	t.Helper()
	backend := store.NewSharded(2)
	h := newSlowFirstHandler(storesrv.New(backend, storesrv.Config{}), stallNth)
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	opts = append([]Option{WithHedge(true), WithHedgeDelay(20 * time.Millisecond)}, opts...)
	return New(ts.URL, opts...), h
}

// TestHedgedGetRacesSlowPrimary: the primary GET stalls, the hedge fires
// after the configured delay, its response wins, and the caller gets exactly
// one (correct) result far sooner than the stall. The losing primary's
// request context must be canceled.
func TestHedgedGetRacesSlowPrimary(t *testing.T) {
	r, h := hedgeClient(t, 1)
	defer r.Close()

	p := storetest.MkProfile("hedged", nil, 3)
	if err := r.Put(p); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	set, err := r.Find("hedged", nil)
	took := time.Since(start)
	if err != nil {
		t.Fatalf("hedged find: %v", err)
	}
	if len(set) != 1 || set[0].Command != "hedged" {
		t.Fatalf("hedged find returned wrong result: %d profiles", len(set))
	}
	if took > 2*time.Second {
		t.Fatalf("hedge did not rescue the stalled primary (took %v)", took)
	}
	st := r.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats = %+v, want exactly one hedge and one win", st)
	}

	// The stalled primary must be canceled once the hedge won.
	select {
	case <-h.released:
	case <-time.After(2 * time.Second):
		t.Fatal("losing primary still in flight after the hedge won")
	}
	if !h.canceled.Load() {
		t.Fatal("losing primary was not canceled")
	}
}

// TestHedgeDoesNotDuplicateCacheFills: a hedged fetch stores its result
// once; the next read revalidates with a 304 instead of refetching, proving
// the cache saw one coherent fill.
func TestHedgeDoesNotDuplicateCacheFills(t *testing.T) {
	r, _ := hedgeClient(t, 1)
	defer r.Close()

	if err := r.Put(storetest.MkProfile("once", nil, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Find("once", nil); err != nil {
		t.Fatal(err)
	}
	if n := r.CacheLen(); n != 1 {
		t.Fatalf("cache holds %d entries after a hedged fill, want 1", n)
	}
	// A second read must be a revalidation of the single stored entry.
	if _, fr, err := r.FindDetailed(t.Context(), "once", nil); err != nil || fr.ETag == "" {
		t.Fatalf("revalidation after hedged fill: fresh=%+v err=%v", fr, err)
	}
	if n := r.CacheLen(); n != 1 {
		t.Fatalf("cache holds %d entries after revalidation, want 1", n)
	}
}

// TestQuickResponseNeverHedges: when the primary answers inside the hedge
// delay, no hedge launches at all.
func TestQuickResponseNeverHedges(t *testing.T) {
	r, h := hedgeClient(t, 0 /* stall nothing */, WithHedgeDelay(time.Second))
	defer r.Close()

	if err := r.Put(storetest.MkProfile("fast", nil, 2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := r.Find("fast", nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := r.Stats(); st.Hedges != 0 {
		t.Fatalf("fast responses launched %d hedges", st.Hedges)
	}
	if h.gets.Load() == 0 {
		t.Fatal("server never saw a GET")
	}
}

// TestWritesNeverHedge: only idempotent GETs are hedgeable; a slow PUT must
// not be duplicated no matter how slow it is.
func TestWritesNeverHedge(t *testing.T) {
	backend := store.NewSharded(2)
	var puts atomic.Int64
	inner := storesrv.New(backend, storesrv.Config{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut {
			puts.Add(1)
			time.Sleep(60 * time.Millisecond) // far beyond the hedge delay
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	r := New(ts.URL, WithHedge(true), WithHedgeDelay(5*time.Millisecond))
	defer r.Close()

	if err := r.Put(storetest.MkProfile("slowwrite", nil, 2)); err != nil {
		t.Fatal(err)
	}
	if n := puts.Load(); n != 1 {
		t.Fatalf("server saw %d PUTs, want 1", n)
	}
	if st := r.Stats(); st.Hedges != 0 {
		t.Fatalf("a write launched %d hedges", st.Hedges)
	}
}

// TestAdaptiveHedgeDelayTracksP95: with no fixed delay configured, the hedge
// delay starts at the warmup default and converges to the observed p95.
func TestAdaptiveHedgeDelayTracksP95(t *testing.T) {
	r := New("http://unused", WithHedge(true))
	defer r.Close()

	if d := r.hedgeDelay(); d != defaultHedgeDelay {
		t.Fatalf("pre-warmup delay = %v, want %v", d, defaultHedgeDelay)
	}
	for i := 0; i < latWindow; i++ {
		r.recordLatency(3 * time.Millisecond)
	}
	r.recordLatency(40 * time.Millisecond) // one outlier inside the window
	d := r.hedgeDelay()
	if d < 3*time.Millisecond || d > 40*time.Millisecond {
		t.Fatalf("adaptive delay = %v, want within the observed latency range", d)
	}
	if d == defaultHedgeDelay {
		t.Fatal("adaptive delay never left the warmup default")
	}
}
