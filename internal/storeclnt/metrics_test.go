package storeclnt

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"synapse/internal/retry"
	"synapse/internal/telemetry"
)

// TestStatsIsViewOverRegistry: Stats() and a scrape of the shared registry
// must report the same numbers — the instruments are the single source.
func TestStatsIsViewOverRegistry(t *testing.T) {
	var fails int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fails++
		if fails <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"keys":[]}`))
	}))
	defer srv.Close()

	reg := telemetry.NewRegistry()
	r := New(srv.URL, WithMetrics(reg), WithRetries(3),
		WithRetryPolicy(retry.Policy{Attempts: 4, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}))
	if _, err := r.Keys(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Retries != 2 {
		t.Fatalf("stats retries = %d, want 2", st.Retries)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "synapse_client_retries_total 2") {
		t.Errorf("registry disagrees with Stats():\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "synapse_client_cache_entries 0") {
		t.Errorf("cache gauge missing:\n%s", sb.String())
	}
}

func TestBreakerOpensCounted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	reg := telemetry.NewRegistry()
	r := New(srv.URL, WithMetrics(reg), WithBreaker(2, time.Minute),
		WithRetryPolicy(retry.Policy{Attempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}))
	_, err := r.Keys()
	if err == nil {
		t.Fatal("expected failure")
	}
	if st := r.Stats(); st.BreakerOpens != 1 {
		t.Fatalf("breaker opens = %d, want 1", st.BreakerOpens)
	}
	if got := reg.Counter("synapse_client_breaker_opens_total", "").Value(); got != 1 {
		t.Errorf("registered counter = %d, want 1", got)
	}
}

func TestRetryBudgetGaugeRegistered(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := retry.NewBudget(10, 0.1)
	New("http://127.0.0.1:0", WithMetrics(reg), WithRetryBudget(b))
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "synapse_client_retry_budget_tokens 10") {
		t.Errorf("budget gauge missing:\n%s", sb.String())
	}
}
