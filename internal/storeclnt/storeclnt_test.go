package storeclnt

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"synapse/internal/profile"
	"synapse/internal/store"
	"synapse/internal/store/storetest"
	"synapse/internal/storesrv"
)

// newRemote spins up an in-process synapsed over a sharded backend and
// returns a client pointed at it.
func newRemote(t *testing.T, backend store.Store, opts ...Option) *Remote {
	t.Helper()
	ts := httptest.NewServer(storesrv.New(backend, storesrv.Config{}))
	t.Cleanup(ts.Close)
	return New(ts.URL, opts...)
}

// The whole point: Remote passes the exact same conformance suite as the
// in-process backends, including concurrency under -race and sentinel-error
// round-tripping through the HTTP layer.
func TestRemoteConformance(t *testing.T) {
	storetest.Run(t, storetest.Factory{
		New: func(t *testing.T) store.Store {
			return newRemote(t, store.NewSharded(4))
		},
		NewWithLimit: func(t *testing.T, limit int64) store.Store {
			return newRemote(t, store.NewShardedWithLimit(4, limit))
		},
	})
}

// countingHandler wraps the service and counts full-body Find responses
// versus 304 revalidations.
type countingHandler struct {
	inner      http.Handler
	full, hits int32
}

func (c *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet && r.URL.Path == "/v1/profiles" {
		rec := httptest.NewRecorder()
		c.inner.ServeHTTP(rec, r)
		if rec.Code == http.StatusNotModified {
			atomic.AddInt32(&c.hits, 1)
		} else if rec.Code == http.StatusOK {
			atomic.AddInt32(&c.full, 1)
		}
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		_, _ = w.Write(rec.Body.Bytes())
		return
	}
	c.inner.ServeHTTP(w, r)
}

func TestCacheRevalidatesInsteadOfRefetching(t *testing.T) {
	ch := &countingHandler{inner: storesrv.New(store.NewSharded(4), storesrv.Config{})}
	ts := httptest.NewServer(ch)
	defer ts.Close()
	r := New(ts.URL)
	defer r.Close()

	if err := r.Put(storetest.MkProfile("hot", nil, 5)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		set, err := r.Find("hot", nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(set) != 1 || len(set[0].Samples) != 5 {
			t.Fatalf("find %d wrong: %d profiles", i, len(set))
		}
	}
	if got := atomic.LoadInt32(&ch.full); got != 1 {
		t.Errorf("full-body fetches = %d, want 1 (cache should revalidate)", got)
	}
	if got := atomic.LoadInt32(&ch.hits); got != 4 {
		t.Errorf("304 revalidations = %d, want 4", got)
	}

	// A write through this client invalidates the entry: the next read is a
	// full fetch again and sees the new profile.
	if err := r.Put(storetest.MkProfile("hot", nil, 7)); err != nil {
		t.Fatal(err)
	}
	set, err := r.Find("hot", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("after second put: %d profiles, want 2", len(set))
	}
	if got := atomic.LoadInt32(&ch.full); got != 2 {
		t.Errorf("full-body fetches after invalidation = %d, want 2", got)
	}
}

// A put through ANOTHER client (different process in production) bumps the
// server generation, so this client's revalidation notices and refetches —
// the cache can never serve stale data past one round trip.
func TestCacheCrossClientInvalidation(t *testing.T) {
	backend := store.NewSharded(4)
	ts := httptest.NewServer(storesrv.New(backend, storesrv.Config{}))
	defer ts.Close()
	a, b := New(ts.URL), New(ts.URL)
	defer a.Close()
	defer b.Close()

	if err := a.Put(storetest.MkProfile("shared", nil, 1)); err != nil {
		t.Fatal(err)
	}
	if set, err := b.Find("shared", nil); err != nil || len(set) != 1 {
		t.Fatalf("b first find: %v %d", err, len(set))
	}
	if err := a.Put(storetest.MkProfile("shared", nil, 2)); err != nil {
		t.Fatal(err)
	}
	set, err := b.Find("shared", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Errorf("b sees %d profiles after a's write, want 2 (stale cache)", len(set))
	}
}

// gate delays Find responses until released so concurrent Finds pile up.
type gate struct {
	inner   http.Handler
	release chan struct{}
	finds   int32
}

func (g *gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet && r.URL.Path == "/v1/profiles" {
		atomic.AddInt32(&g.finds, 1)
		<-g.release
	}
	g.inner.ServeHTTP(w, r)
}

func TestSingleflightDeduplicatesConcurrentFinds(t *testing.T) {
	backend := store.NewSharded(4)
	if err := backend.Put(storetest.MkProfile("dedup", nil, 3)); err != nil {
		t.Fatal(err)
	}
	g := &gate{inner: storesrv.New(backend, storesrv.Config{}), release: make(chan struct{})}
	ts := httptest.NewServer(g)
	defer ts.Close()
	r := New(ts.URL)
	defer r.Close()

	const callers = 16
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			set, err := r.Find("dedup", nil)
			if err == nil && len(set) != 1 {
				err = errors.New("wrong result")
			}
			errs[i] = err
		}(i)
	}
	// Give the goroutines time to converge on the in-flight call, then
	// release the single wire fetch.
	time.Sleep(50 * time.Millisecond)
	close(g.release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := atomic.LoadInt32(&g.finds); got != 1 {
		t.Errorf("wire fetches = %d, want 1 (singleflight)", got)
	}
}

func TestErrorsRoundTripTheWire(t *testing.T) {
	r := newRemote(t, store.NewShardedWithLimit(4, 4096))
	defer r.Close()
	if _, err := r.Find("absent", nil); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("remote Find = %v, want ErrNotFound", err)
	}
	if err := r.Put(storetest.MkProfile("big", nil, 100)); !errors.Is(err, store.ErrDocTooLarge) {
		t.Errorf("remote Put over limit = %v, want ErrDocTooLarge", err)
	}
	// PutTruncated degrades over the wire like Mem does locally.
	dropped, err := r.PutTruncated(storetest.MkProfile("big", nil, 100))
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Error("remote PutTruncated dropped nothing")
	}
}

func TestPutBatch(t *testing.T) {
	backend := store.NewShardedWithLimit(4, 4096)
	r := newRemote(t, backend)
	defer r.Close()
	outcomes, err := r.PutBatch([]*profile.Profile{
		storetest.MkProfile("a", nil, 1),
		storetest.MkProfile("big", nil, 100), // overflows the 4096B limit
		storetest.MkProfile("b", nil, 2),
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if outcomes[0] != nil || outcomes[2] != nil {
		t.Errorf("good items failed: %v %v", outcomes[0], outcomes[2])
	}
	if !errors.Is(outcomes[1], store.ErrDocTooLarge) {
		t.Errorf("oversized item = %v, want ErrDocTooLarge", outcomes[1])
	}
	keys, err := r.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Errorf("keys after batch = %v", keys)
	}
}

// flaky fails the first n Find attempts with 500.
type flaky struct {
	inner http.Handler
	fails int32
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet && atomic.AddInt32(&f.fails, -1) >= 0 {
		http.Error(w, `{"error":"transient","code":"internal"}`, http.StatusInternalServerError)
		return
	}
	f.inner.ServeHTTP(w, r)
}

func TestBoundedRetries(t *testing.T) {
	backend := store.NewSharded(2)
	if err := backend.Put(storetest.MkProfile("flaky", nil, 1)); err != nil {
		t.Fatal(err)
	}
	f := &flaky{inner: storesrv.New(backend, storesrv.Config{}), fails: 2}
	ts := httptest.NewServer(f)
	defer ts.Close()

	r := New(ts.URL, WithRetries(3))
	defer r.Close()
	if _, err := r.Find("flaky", nil); err != nil {
		t.Fatalf("find should survive 2 transient failures with 3 retries: %v", err)
	}

	// With retries disabled the same fault is fatal.
	atomic.StoreInt32(&f.fails, 2)
	r2 := New(ts.URL, WithRetries(0), WithCacheSize(0))
	defer r2.Close()
	if _, err := r2.Find("flaky", nil); err == nil {
		t.Fatal("find with retries disabled should fail")
	}
}

func TestLRUEviction(t *testing.T) {
	r := newRemote(t, store.NewSharded(4), WithCacheSize(2))
	defer r.Close()
	for _, cmd := range []string{"a", "b", "c"} {
		if err := r.Put(storetest.MkProfile(cmd, nil, 1)); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Find(cmd, nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := r.CacheLen(); n != 2 {
		t.Errorf("cache holds %d keys, want 2 (LRU bound)", n)
	}
}
