package storeclnt

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"synapse/internal/chaos"
	"synapse/internal/profile"
	"synapse/internal/retry"
	"synapse/internal/store"
	"synapse/internal/store/storetest"
	"synapse/internal/storesrv"
	"synapse/internal/testutil"
)

// chaosScript is the fixed fault script the conformance suite runs
// through: response resets and truncations hit only idempotent methods (a
// mangled write reply must surface an error, and the suite asserts write
// errors are real), delay slots slow whatever lands on them, and a short
// blackhole exercises the client's dead-wire handling. Keep-alives are
// disabled in the test client, so every request consumes exactly one
// schedule slot and fault exposure is deterministic per connection index
// (fixed seed). Three killer slots in a cycle of twelve are never adjacent,
// so a sequential caller can never draw two in a row; concurrent callers
// can, which is what the generous attempt budget is for.
const (
	chaosScript = "ok;reset:20@GET,DELETE;ok;delay:2ms;ok;trunc:30@GET,DELETE;ok;ok;hole:30ms@GET;ok;delay:1ms;ok"
	chaosSeed   = 7
)

// chaosRemote boots a real storesrv on a TCP listener, interposes the chaos
// proxy, and returns a client whose every request crosses the faulty wire.
// saw observes the proxy for post-suite stats.
func chaosRemote(t *testing.T, backend store.Store, saw func(*chaos.Proxy)) store.Store {
	t.Helper()
	srv := storesrv.New(backend, storesrv.Config{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})

	sched := chaos.MustParse(chaosScript)
	sched.Seed = chaosSeed
	p, err := chaos.Start(addr.String(), sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	saw(p)

	pol := retry.Default()
	// Killer slots are 3 of 12; under concurrency a request's retries draw
	// effectively random slots, so a deep attempt budget with millisecond
	// backoff makes all-attempts-faulted astronomically unlikely while
	// costing nothing on the happy path.
	pol.Attempts = 12
	pol.BaseDelay = time.Millisecond
	pol.MaxDelay = 20 * time.Millisecond
	return New("http://"+p.Addr(),
		WithHTTPClient(&http.Client{Transport: &http.Transport{DisableKeepAlives: true}}),
		WithRetryPolicy(pol),
		// The scripted fault density far exceeds what a breaker should
		// ride through; its transitions are covered by breaker_test.go.
		WithBreaker(0, 0),
	)
}

// TestRemoteConformanceThroughChaosProxy is the acceptance gate for the
// resilience layer: the full storetest conformance suite — including the
// concurrent and sentinel-error subtests — must pass against a live
// storesrv reached only through a wire that resets, truncates, delays, and
// blackholes responses on a fixed schedule. Correctness may not depend on a
// clean network.
func TestRemoteConformanceThroughChaosProxy(t *testing.T) {
	var mu sync.Mutex
	var proxies []*chaos.Proxy
	mk := func(t *testing.T, backend store.Store) store.Store {
		return chaosRemote(t, backend, func(p *chaos.Proxy) {
			mu.Lock()
			proxies = append(proxies, p)
			mu.Unlock()
		})
	}
	storetest.Run(t, storetest.Factory{
		New: func(t *testing.T) store.Store {
			return mk(t, store.NewSharded(4))
		},
		NewWithLimit: func(t *testing.T, limit int64) store.Store {
			return mk(t, store.NewShardedWithLimit(4, limit))
		},
	})

	var st chaos.Stats
	mu.Lock()
	for _, p := range proxies {
		s := p.Stats()
		st.Conns += s.Conns
		st.Resets += s.Resets
		st.Truncated += s.Truncated
		st.Delayed += s.Delayed
		st.Holes += s.Holes
	}
	mu.Unlock()
	if st.Resets == 0 || st.Truncated == 0 || st.Delayed == 0 {
		t.Fatalf("chaos schedule barely fired (%+v); the suite proved nothing", st)
	}
	t.Logf("conformance passed through %d conns: %d resets, %d truncations, %d delays, %d holes",
		st.Conns, st.Resets, st.Truncated, st.Delayed, st.Holes)
}

// slowReadStore delays backend reads so concurrent requests pile up against
// the server's admission control.
type slowReadStore struct {
	store.Store
	delay time.Duration
}

func (s *slowReadStore) Find(command string, tags map[string]string) (profile.Set, error) {
	time.Sleep(s.delay)
	return s.Store.Find(command, tags)
}

// TestOverloadShedsAndClientHonorsRetryAfter drives a live, capacity-bounded
// storesrv far past its in-flight limit and asserts the whole contract: the
// excess is shed with 429 + Retry-After, the clients back off by at least
// the server's hint and ultimately all succeed, and after drain no
// goroutines leak.
func TestOverloadShedsAndClientHonorsRetryAfter(t *testing.T) {
	testutil.CheckGoroutines(t)

	backend := store.NewSharded(4)
	if err := backend.Put(storetest.MkProfile("hot", nil, 3)); err != nil {
		t.Fatal(err)
	}
	slow := &slowReadStore{Store: backend, delay: 10 * time.Millisecond}
	srv := storesrv.New(slow, storesrv.Config{MaxInFlight: 2, RequestTimeout: 5 * time.Second})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Record every backoff the policy takes instead of sleeping through it:
	// the test asserts the client honored the server's Retry-After hint
	// without paying wall-clock for a full one-second wait per retry.
	var sleepMu sync.Mutex
	var sleeps []time.Duration
	pol := retry.Default()
	pol.Attempts = 40 // the herd must eventually get through
	pol.BaseDelay = time.Millisecond
	pol.MaxDelay = 5 * time.Millisecond
	pol.Sleep = func(ctx context.Context, d time.Duration) error {
		sleepMu.Lock()
		sleeps = append(sleeps, d)
		sleepMu.Unlock()
		// A token wait keeps the herd from busy-spinning the server.
		select {
		case <-time.After(time.Millisecond):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	const clients = 12
	remotes := make([]*Remote, clients)
	for i := range remotes {
		remotes[i] = New("http://"+addr.String(),
			WithRetryPolicy(pol),
			WithCacheSize(0), // every Find must hit the wire
			WithBreaker(0, 0),
		)
	}

	var wg sync.WaitGroup
	var failures atomic.Int64
	for _, r := range remotes {
		wg.Add(1)
		go func(r *Remote) {
			defer wg.Done()
			if _, err := r.Find("hot", nil); err != nil {
				failures.Add(1)
				t.Errorf("overloaded read never recovered: %v", err)
			}
		}(r)
	}
	wg.Wait()

	var totalShed int64
	for _, r := range remotes {
		totalShed += r.Stats().Shed429
		r.Close()
	}
	_, srvShed := srv.Counters()
	if srvShed == 0 || totalShed == 0 {
		t.Fatalf("no shedding happened (server=%d client=%d); the test proved nothing",
			srvShed, totalShed)
	}
	// The server's Retry-After: 1s hint must dominate the policy's own
	// millisecond-scale backoff in at least every shed retry.
	sleepMu.Lock()
	var honored int
	for _, d := range sleeps {
		if d >= time.Second {
			honored++
		}
	}
	sleepMu.Unlock()
	if honored == 0 {
		t.Fatal("client never backed off by the server's Retry-After hint")
	}
	if int64(honored) < totalShed {
		t.Fatalf("shed %d times but only %d hint-length backoffs recorded", totalShed, honored)
	}

	// Drain the server; the leak check registered up top verifies nothing
	// survives it.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
