package storeclnt

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (wrapped) when a request is refused because the
// endpoint's circuit breaker is open. Reads may degrade to stale cache
// entries instead of surfacing it; writes always do.
var ErrCircuitOpen = errors.New("storeclnt: circuit open")

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-endpoint circuit breaker: Threshold consecutive failures
// open it; after Cooldown it half-opens and admits exactly one probe
// request. A successful probe closes the circuit, a failed probe re-opens
// it for another cooldown. While open, allow() refuses instantly, so a dead
// daemon costs a map lookup instead of a connect timeout per call.
type breaker struct {
	mu        sync.Mutex
	state     int
	failures  int
	threshold int
	cooldown  time.Duration
	openedAt  time.Time
	probing   bool // a half-open probe is in flight
	opens     int64
	onOpen    func() // counts open transitions (telemetry); may be nil

	now func() time.Time // injectable clock for tests
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a request may proceed. probe is true when the
// request is the half-open trial whose outcome decides the circuit.
func (b *breaker) allow() (probe, ok bool) {
	if b == nil || b.threshold <= 0 {
		return false, true // breaker disabled
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return false, true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, true
	default: // half-open
		if b.probing {
			return false, false // one probe at a time
		}
		b.probing = true
		return true, true
	}
}

// onSuccess records a request outcome that proves the endpoint healthy.
func (b *breaker) onSuccess() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
}

// onFailure records a breaker-relevant failure (transport error or 5xx).
func (b *breaker) onFailure() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: back to a full cooldown.
		b.reopen()
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.reopen()
		}
	}
}

func (b *breaker) reopen() {
	b.state = breakerOpen
	b.failures = 0
	b.probing = false
	b.openedAt = b.now()
	b.opens++
	if b.onOpen != nil {
		b.onOpen()
	}
}

// snapshot reports (state, opens) for observability and tests.
func (b *breaker) snapshot() (state int, opens int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens
}

// breakerFor returns the breaker guarding one endpoint class, creating it on
// first use.
func (r *Remote) breakerFor(endpoint string) *breaker {
	if r.brkThreshold <= 0 {
		return nil
	}
	r.brkMu.Lock()
	defer r.brkMu.Unlock()
	b, ok := r.breakers[endpoint]
	if !ok {
		b = newBreaker(r.brkThreshold, r.brkCooldown)
		if r.brkClock != nil {
			b.now = r.brkClock
		}
		b.onOpen = r.met.breakerOpens.Inc
		r.breakers[endpoint] = b
	}
	return b
}

// circuitErr wraps ErrCircuitOpen with the endpoint for diagnostics.
func circuitErr(endpoint string) error {
	return fmt.Errorf("%w: %s refusing requests during cooldown", ErrCircuitOpen, endpoint)
}
