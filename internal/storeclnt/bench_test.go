package storeclnt

// Loopback service throughput for BENCH_store.json: a Remote client against
// an in-process synapsed (httptest, sharded backend) at 1, 8 and 64
// concurrent clients. RemoteFindCached exercises the generation-ETag cache
// (bodyless 304 revalidations); RemoteFindCold bypasses it.

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"synapse/internal/store"
	"synapse/internal/store/storetest"
	"synapse/internal/storesrv"
)

var benchClients = []int{1, 8, 64}

func benchConcurrent(b *testing.B, clients int, op func(client, i int) error) {
	b.Helper()
	var idx atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := int(idx.Add(1)) - 1
				if i >= b.N {
					return
				}
				if err := op(c, i); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "ops/s")
	}
}

func benchService(b *testing.B) string {
	b.Helper()
	ts := httptest.NewServer(storesrv.New(store.NewSharded(0), storesrv.Config{}))
	b.Cleanup(ts.Close)
	return ts.URL
}

func BenchmarkRemotePut(b *testing.B) {
	for _, clients := range benchClients {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			url := benchService(b)
			rs := make([]*Remote, clients)
			for c := range rs {
				rs[c] = New(url)
				defer rs[c].Close()
			}
			p := storetest.MkProfile("bench-put", nil, 4)
			benchConcurrent(b, clients, func(c, i int) error {
				return rs[c].Put(p)
			})
		})
	}
}

func BenchmarkRemoteFindCached(b *testing.B) {
	for _, clients := range benchClients {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			url := benchService(b)
			seed := New(url)
			if err := seed.Put(storetest.MkProfile("bench-hot", nil, 16)); err != nil {
				b.Fatal(err)
			}
			seed.Close()
			rs := make([]*Remote, clients)
			for c := range rs {
				rs[c] = New(url)
				defer rs[c].Close()
			}
			benchConcurrent(b, clients, func(c, i int) error {
				_, err := rs[c].Find("bench-hot", nil)
				return err
			})
		})
	}
}

func BenchmarkRemoteFindCold(b *testing.B) {
	for _, clients := range benchClients {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			url := benchService(b)
			seed := New(url)
			if err := seed.Put(storetest.MkProfile("bench-hot", nil, 16)); err != nil {
				b.Fatal(err)
			}
			seed.Close()
			rs := make([]*Remote, clients)
			for c := range rs {
				rs[c] = New(url, WithCacheSize(0))
				defer rs[c].Close()
			}
			benchConcurrent(b, clients, func(c, i int) error {
				_, err := rs[c].Find("bench-hot", nil)
				return err
			})
		})
	}
}
