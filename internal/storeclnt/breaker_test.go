package storeclnt

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"synapse/internal/store"
	"synapse/internal/store/storetest"
	"synapse/internal/storesrv"
)

// fakeClock is an injectable breaker clock advanced by hand.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// togglableServer serves the real storesrv handler, but can be switched into
// a failing mode where every request 500s without reaching the backend. It
// counts the requests that actually arrive.
type togglableServer struct {
	inner   http.Handler
	failing atomic.Bool
	hits    atomic.Int64
}

func (s *togglableServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.hits.Add(1)
	if s.failing.Load() {
		http.Error(w, `{"error": "injected outage", "code": "internal"}`, http.StatusInternalServerError)
		return
	}
	s.inner.ServeHTTP(w, r)
}

// brokenClient returns a Remote, the togglable server in front of its
// backend, and the fake breaker clock. Retries are disabled so one call is
// one attempt and breaker arithmetic stays exact.
func brokenClient(t *testing.T, threshold int, cooldown time.Duration, opts ...Option) (*Remote, *togglableServer, *fakeClock) {
	t.Helper()
	backend := store.NewSharded(2)
	srv := &togglableServer{inner: storesrv.New(backend, storesrv.Config{})}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	clk := newFakeClock()
	opts = append([]Option{
		WithRetries(0),
		WithBreaker(threshold, cooldown),
		withBreakerClock(clk.Now),
	}, opts...)
	return New(ts.URL, opts...), srv, clk
}

// TestBreakerTransitions walks the full state machine: closed -> open after
// threshold consecutive failures, fail-fast while open (the server is not
// touched), half-open probe after cooldown whose failure re-opens, and a
// successful probe that closes the circuit again.
func TestBreakerTransitions(t *testing.T) {
	const threshold, cooldown = 3, 2 * time.Second
	r, srv, clk := brokenClient(t, threshold, cooldown, WithStaleReads(false), WithCacheSize(0))
	defer r.Close()

	if err := r.Put(storetest.MkProfile("k", nil, 2)); err != nil {
		t.Fatal(err)
	}

	// Closed -> open: exactly threshold failing calls trip the circuit.
	srv.failing.Store(true)
	for i := 0; i < threshold; i++ {
		if _, err := r.Find("k", nil); err == nil {
			t.Fatalf("call %d succeeded against a failing server", i)
		} else if errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("call %d refused before the threshold was reached", i)
		}
	}

	// Open: calls fail fast with ErrCircuitOpen and never reach the wire.
	before := srv.hits.Load()
	for i := 0; i < 5; i++ {
		if _, err := r.Find("k", nil); !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("open breaker let a call through: %v", err)
		}
	}
	if got := srv.hits.Load(); got != before {
		t.Fatalf("open breaker hit the server %d times", got-before)
	}
	if opens := r.Stats().BreakerOpens; opens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", opens)
	}

	// Cooldown elapses; the half-open probe fails and re-opens the circuit.
	clk.Advance(cooldown + time.Millisecond)
	if _, err := r.Find("k", nil); err == nil || errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("probe should have reached the failing server: %v", err)
	}
	if _, err := r.Find("k", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("failed probe must re-open the circuit")
	}
	if opens := r.Stats().BreakerOpens; opens != 2 {
		t.Fatalf("BreakerOpens = %d, want 2 after failed probe", opens)
	}

	// Server recovers; after another cooldown the probe succeeds and the
	// circuit closes for good.
	srv.failing.Store(false)
	clk.Advance(cooldown + time.Millisecond)
	for i := 0; i < 3; i++ {
		if _, err := r.Find("k", nil); err != nil {
			t.Fatalf("call %d after recovery: %v", i, err)
		}
	}
	if opens := r.Stats().BreakerOpens; opens != 2 {
		t.Fatalf("BreakerOpens = %d, want 2 (probe success must close, not bounce)", opens)
	}
}

// TestBreakerEndpointsIsolated: an outage tripping the profiles endpoint
// must not open the keys endpoint's circuit.
func TestBreakerEndpointsIsolated(t *testing.T) {
	r, srv, _ := brokenClient(t, 2, time.Minute, WithStaleReads(false), WithCacheSize(0))
	defer r.Close()

	srv.failing.Store(true)
	for i := 0; i < 2; i++ {
		if _, err := r.Find("k", nil); err == nil {
			t.Fatal("find succeeded against failing server")
		}
	}
	if _, err := r.Find("k", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("profiles circuit should be open: %v", err)
	}
	srv.failing.Store(false)
	if _, err := r.Keys(); err != nil {
		t.Fatalf("keys endpoint must be unaffected by the profiles outage: %v", err)
	}
}

// TestBreakerOpenServesStale: with stale reads enabled (the default), an
// open circuit serves the cached entry, flagged Stale and carrying its
// generation ETag; uncached keys still fail. Disabling stale reads surfaces
// ErrCircuitOpen instead.
func TestBreakerOpenServesStale(t *testing.T) {
	const threshold = 2
	r, srv, _ := brokenClient(t, threshold, time.Minute)
	defer r.Close()

	p := storetest.MkProfile("cachedcmd", nil, 3)
	if err := r.Put(p); err != nil {
		t.Fatal(err)
	}
	// Prime the cache while healthy.
	fresh, fr, err := r.FindDetailed(context.Background(), "cachedcmd", nil)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Stale || fr.ETag == "" {
		t.Fatalf("healthy read freshness = %+v, want fresh with ETag", fr)
	}

	// Trip the circuit.
	srv.failing.Store(true)
	for i := 0; i < threshold; i++ {
		_, _ = r.Keys() // fail on another endpoint first: must NOT enable staleness
	}
	if _, err := r.Keys(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("keys circuit should be open: %v", err)
	}
	for i := 0; i < threshold; i++ {
		_, _, _ = r.FindDetailed(context.Background(), "cachedcmd", nil)
	}

	// Open circuit + cached key: stale flagged result, same content.
	set, fr2, err := r.FindDetailed(context.Background(), "cachedcmd", nil)
	if err != nil {
		t.Fatalf("breaker-open read of a cached key must degrade, not fail: %v", err)
	}
	if !fr2.Stale {
		t.Fatal("degraded read not flagged Stale")
	}
	if fr2.ETag != fr.ETag {
		t.Fatalf("stale read ETag = %q, want the cached generation %q", fr2.ETag, fr.ETag)
	}
	if len(set) != len(fresh) || set[0].Command != fresh[0].Command {
		t.Fatal("stale read returned different content than the cached entry")
	}
	if r.Stats().StaleServes == 0 {
		t.Fatal("StaleServes counter never moved")
	}

	// Plain Find degrades the same way (the flag is just not visible).
	if _, err := r.Find("cachedcmd", nil); err != nil {
		t.Fatalf("plain Find should also serve stale: %v", err)
	}

	// Uncached key: nothing to degrade to.
	if _, _, err := r.FindDetailed(context.Background(), "nevercached", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("uncached key under open breaker = %v, want ErrCircuitOpen", err)
	}
}

// TestStaleReadsDisabled: WithStaleReads(false) turns degradation off.
func TestStaleReadsDisabled(t *testing.T) {
	const threshold = 2
	r, srv, _ := brokenClient(t, threshold, time.Minute, WithStaleReads(false))
	defer r.Close()

	if err := r.Put(storetest.MkProfile("c", nil, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Find("c", nil); err != nil {
		t.Fatal(err)
	}
	srv.failing.Store(true)
	for i := 0; i < threshold; i++ {
		_, _ = r.Find("c", nil)
	}
	if _, err := r.Find("c", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("stale reads disabled, want ErrCircuitOpen, got %v", err)
	}
}

// TestStaleEntryRefreshesAfterRecovery: once the circuit closes again, the
// next read revalidates against the server and is no longer stale.
func TestStaleEntryRefreshesAfterRecovery(t *testing.T) {
	const threshold, cooldown = 2, time.Second
	r, srv, clk := brokenClient(t, threshold, cooldown)
	defer r.Close()

	if err := r.Put(storetest.MkProfile("c", nil, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Find("c", nil); err != nil {
		t.Fatal(err)
	}
	srv.failing.Store(true)
	for i := 0; i < threshold; i++ {
		_, _, _ = r.FindDetailed(context.Background(), "c", nil)
	}
	if _, fr, err := r.FindDetailed(context.Background(), "c", nil); err != nil || !fr.Stale {
		t.Fatalf("expected stale serve while open: fresh=%+v err=%v", fr, err)
	}

	srv.failing.Store(false)
	clk.Advance(cooldown + time.Millisecond)
	_, fr, err := r.FindDetailed(context.Background(), "c", nil)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Stale {
		t.Fatal("read after recovery still flagged stale")
	}
}
