package storeclnt

import (
	"synapse/internal/telemetry"
)

// clientMetrics are the client's resilience instruments. Stats() is a view
// over these — the counters are the source of truth, so a scrape of the
// shared registry and a Stats() call can never disagree.
type clientMetrics struct {
	retries      *telemetry.Counter
	hedges       *telemetry.Counter
	hedgeWins    *telemetry.Counter
	staleReads   *telemetry.Counter
	shed429      *telemetry.Counter
	breakerOpens *telemetry.Counter
}

// WithMetrics registers the client's instruments into reg instead of a
// private registry, merging client series into an existing /v1/metrics
// scrape. Clients sharing one registry share the counters (fleet-wide
// aggregates), so their Stats() views aggregate too.
func WithMetrics(reg *telemetry.Registry) Option {
	return func(r *Remote) { r.metricsReg = reg }
}

func newClientMetrics(r *Remote, reg *telemetry.Registry) *clientMetrics {
	m := &clientMetrics{
		retries: reg.Counter("synapse_client_retries_total",
			"Request attempts beyond the first (retransmissions)."),
		hedges: reg.Counter("synapse_client_hedges_total",
			"Hedge requests launched for slow idempotent GETs."),
		hedgeWins: reg.Counter("synapse_client_hedge_wins_total",
			"Hedge requests whose response was used."),
		staleReads: reg.Counter("synapse_client_stale_reads_total",
			"Reads served from the local cache while the circuit was open."),
		shed429: reg.Counter("synapse_client_shed_total",
			"Requests the server shed with 429 before executing."),
		breakerOpens: reg.Counter("synapse_client_breaker_opens_total",
			"Circuit-open transitions across endpoints."),
	}
	// Per-instance gauges: when clients share a registry, GaugeFunc keeps
	// the first function, so these describe the first-registered client.
	reg.GaugeFunc("synapse_client_cache_entries",
		"Keys currently held in the client read cache.",
		func() float64 { return float64(r.CacheLen()) })
	if r.policy.Budget != nil {
		b := r.policy.Budget
		reg.GaugeFunc("synapse_client_retry_budget_tokens",
			"Tokens left in the shared retry budget.",
			b.Tokens)
	}
	return m
}
