// Package storeclnt is the wire client for the synapsed profile service: a
// Remote type that implements store.Store over HTTP, so profilers and
// emulators on different hosts share one profile database transparently —
// the paper's "profile once, emulate anywhere" workflow (§4).
//
// Remote keeps connections alive across calls (one http.Transport), retries
// idempotent requests a bounded number of times, and serves repeated reads
// of hot keys from a singleflight-deduplicated LRU cache: each cached entry
// remembers the server's per-key generation ETag and is revalidated with a
// bodyless If-None-Match round trip, so emulation fan-outs that hammer one
// profile never re-download it.
package storeclnt

import (
	"bytes"
	"compress/gzip"
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"synapse/internal/profile"
	"synapse/internal/store"
	"synapse/internal/storesrv"
)

// Defaults, overridable through Options.
const (
	DefaultCacheSize = 128
	DefaultRetries   = 3
	// gzipThreshold is the body size above which uploads are compressed.
	gzipThreshold = 1 << 10
)

// Option configures a Remote.
type Option func(*Remote)

// WithHTTPClient substitutes the HTTP client (tests, custom transports).
func WithHTTPClient(hc *http.Client) Option { return func(r *Remote) { r.hc = hc } }

// WithCacheSize bounds the read cache to n keys (0 disables caching).
func WithCacheSize(n int) Option { return func(r *Remote) { r.cacheCap = n } }

// WithRetries bounds retransmissions of idempotent requests (0 disables).
func WithRetries(n int) Option { return func(r *Remote) { r.retries = n } }

// Remote is a store.Store whose backend lives in a synapsed daemon.
// Construct with New. Safe for concurrent use.
type Remote struct {
	base     string
	hc       *http.Client
	retries  int
	cacheCap int

	// Read cache: key -> cacheEntry, LRU-evicted at cacheCap.
	cacheMu sync.Mutex
	cache   map[string]*list.Element
	lru     *list.List // front = most recent; values are *cacheEntry

	// Singleflight: one in-flight fetch per key; latecomers wait and share.
	flightMu sync.Mutex
	flight   map[string]*flightCall
}

type cacheEntry struct {
	key  string
	etag string
	set  profile.Set
}

type flightCall struct {
	done chan struct{}
	set  profile.Set
	err  error
}

// New returns a client for the service at base (e.g. "http://host:8181").
func New(base string, opts ...Option) *Remote {
	r := &Remote{
		base:     strings.TrimRight(base, "/"),
		hc:       &http.Client{Timeout: 30 * time.Second},
		retries:  DefaultRetries,
		cacheCap: DefaultCacheSize,
		cache:    map[string]*list.Element{},
		lru:      list.New(),
		flight:   map[string]*flightCall{},
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Open resolves a CLI -store flag value: an http(s):// URL connects to a
// running synapsed daemon, anything else opens a local file-store
// directory. Shared by every command so the flag's meaning cannot drift
// between binaries.
func Open(dirOrURL string) (store.Store, error) {
	if strings.HasPrefix(dirOrURL, "http://") || strings.HasPrefix(dirOrURL, "https://") {
		return New(dirOrURL), nil
	}
	return store.NewFile(dirOrURL)
}

// remoteError reconstructs sentinel errors from a structured error response
// so errors.Is(err, store.ErrNotFound/ErrDocTooLarge) holds across the wire.
func remoteError(status int, body []byte) error {
	var er storesrv.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		return fmt.Errorf("storeclnt: server returned HTTP %d: %s", status, bytes.TrimSpace(body))
	}
	switch er.Code {
	case storesrv.CodeNotFound:
		return fmt.Errorf("%w: %s", store.ErrNotFound, er.Error)
	case storesrv.CodeDocTooLarge:
		return fmt.Errorf("%w: %s", store.ErrDocTooLarge, er.Error)
	default:
		return fmt.Errorf("storeclnt: %s", er.Error)
	}
}

// do issues the request, retrying idempotent methods on transport errors and
// 5xx responses with a short linear backoff.
func (r *Remote) do(req *http.Request, body []byte) (*http.Response, error) {
	idempotent := req.Method == http.MethodGet || req.Method == http.MethodDelete
	attempts := 1
	if idempotent {
		attempts += r.retries
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(time.Duration(i) * 50 * time.Millisecond)
		}
		if body != nil {
			req.Body = io.NopCloser(bytes.NewReader(body))
		}
		resp, err := r.hc.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if idempotent && resp.StatusCode >= 500 {
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			lastErr = remoteError(resp.StatusCode, data)
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("storeclnt: %s %s failed after %d attempts: %w",
		req.Method, req.URL.Path, attempts, lastErr)
}

// encodeUpload marshals v, gzip-compressing large bodies, and returns the
// payload plus the Content-Encoding header value ("" when uncompressed).
func encodeUpload(v any) (payload []byte, encoding string, err error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, "", fmt.Errorf("storeclnt: encode: %w", err)
	}
	if len(data) < gzipThreshold {
		return data, "", nil
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		return nil, "", err
	}
	if err := zw.Close(); err != nil {
		return nil, "", err
	}
	return buf.Bytes(), "gzip", nil
}

// Put implements Store: a strict put that fails with ErrDocTooLarge when the
// backend's document limit would be exceeded.
func (r *Remote) Put(p *profile.Profile) error {
	_, err := r.put(p, false)
	return err
}

// PutTruncated implements store.Truncator over the wire (?truncate=1).
func (r *Remote) PutTruncated(p *profile.Profile) (dropped int, err error) {
	return r.put(p, true)
}

func (r *Remote) put(p *profile.Profile, truncate bool) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	payload, encoding, err := encodeUpload(p)
	if err != nil {
		return 0, err
	}
	u := r.base + "/v1/profiles"
	if truncate {
		u += "?truncate=1"
	}
	req, err := http.NewRequest(http.MethodPut, u, nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if encoding != "" {
		req.Header.Set("Content-Encoding", encoding)
	}
	resp, err := r.do(req, payload)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, remoteError(resp.StatusCode, data)
	}
	var pr storesrv.PutResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		return 0, fmt.Errorf("storeclnt: decode put response: %w", err)
	}
	r.invalidate(p.Key())
	return pr.Dropped, nil
}

// PutBatch stores several profiles in one round trip and returns the
// per-profile outcomes in submission order (nil error for stored items).
func (r *Remote) PutBatch(ps []*profile.Profile, truncate bool) ([]error, error) {
	payload, encoding, err := encodeUpload(storesrv.BatchRequest{Profiles: ps, Truncate: truncate})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, r.base+"/v1/profiles:batch", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if encoding != "" {
		req.Header.Set("Content-Encoding", encoding)
	}
	resp, err := r.do(req, payload)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, remoteError(resp.StatusCode, data)
	}
	var br storesrv.BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		return nil, fmt.Errorf("storeclnt: decode batch response: %w", err)
	}
	if len(br.Results) != len(ps) {
		return nil, fmt.Errorf("storeclnt: batch returned %d results for %d profiles",
			len(br.Results), len(ps))
	}
	outcomes := make([]error, len(ps))
	for i, item := range br.Results {
		if item.Error == "" {
			r.invalidate(ps[i].Key())
			continue
		}
		switch item.Code {
		case storesrv.CodeDocTooLarge:
			outcomes[i] = fmt.Errorf("%w: %s", store.ErrDocTooLarge, item.Error)
		case storesrv.CodeNotFound:
			outcomes[i] = fmt.Errorf("%w: %s", store.ErrNotFound, item.Error)
		default:
			outcomes[i] = errors.New(item.Error)
		}
	}
	return outcomes, nil
}

// Find implements Store. Concurrent Finds of one key share a single wire
// fetch; cache hits cost at most a bodyless revalidation round trip.
func (r *Remote) Find(command string, tags map[string]string) (profile.Set, error) {
	key := profile.Key(command, tags)
	set, err := r.findShared(key)
	if err != nil {
		return nil, err
	}
	// Hand every caller its own copy: cached profiles must not alias.
	out := make(profile.Set, len(set))
	for i, p := range set {
		out[i] = p.Clone()
	}
	return out, nil
}

// findShared deduplicates concurrent fetches of one key.
func (r *Remote) findShared(key string) (profile.Set, error) {
	r.flightMu.Lock()
	if c, ok := r.flight[key]; ok {
		r.flightMu.Unlock()
		<-c.done
		return c.set, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	r.flight[key] = c
	r.flightMu.Unlock()

	c.set, c.err = r.fetch(key)
	close(c.done)

	r.flightMu.Lock()
	delete(r.flight, key)
	r.flightMu.Unlock()
	return c.set, c.err
}

// fetch performs the conditional GET for key, consulting and updating the
// LRU cache.
func (r *Remote) fetch(key string) (profile.Set, error) {
	cached, etag := r.cached(key)
	req, err := http.NewRequest(http.MethodGet, r.base+"/v1/profiles?key="+url.QueryEscape(key), nil)
	if err != nil {
		return nil, err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := r.do(req, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified && cached != nil {
		return cached, nil
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, remoteError(resp.StatusCode, data)
	}
	var set profile.Set
	if err := json.Unmarshal(data, &set); err != nil {
		return nil, fmt.Errorf("storeclnt: decode profiles: %w", err)
	}
	for _, p := range set {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("storeclnt: profile for key %q invalid: %w", key, err)
		}
	}
	r.store(key, resp.Header.Get("ETag"), set)
	return set, nil
}

// cached returns the cached set and its ETag, refreshing recency.
func (r *Remote) cached(key string) (profile.Set, string) {
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	el, ok := r.cache[key]
	if !ok {
		return nil, ""
	}
	r.lru.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.set, e.etag
}

// store inserts or refreshes a cache entry, evicting the LRU tail.
func (r *Remote) store(key, etag string, set profile.Set) {
	if r.cacheCap <= 0 || etag == "" {
		return
	}
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	if el, ok := r.cache[key]; ok {
		r.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.etag, e.set = etag, set
		return
	}
	r.cache[key] = r.lru.PushFront(&cacheEntry{key: key, etag: etag, set: set})
	for r.lru.Len() > r.cacheCap {
		tail := r.lru.Back()
		r.lru.Remove(tail)
		delete(r.cache, tail.Value.(*cacheEntry).key)
	}
}

// invalidate drops key from the cache (after local writes).
func (r *Remote) invalidate(key string) {
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	if el, ok := r.cache[key]; ok {
		r.lru.Remove(el)
		delete(r.cache, key)
	}
}

// CacheLen reports the number of cached keys (observability, tests).
func (r *Remote) CacheLen() int {
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	return r.lru.Len()
}

// Keys implements Store.
func (r *Remote) Keys() ([]string, error) {
	req, err := http.NewRequest(http.MethodGet, r.base+"/v1/keys", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.do(req, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, remoteError(resp.StatusCode, data)
	}
	var kr storesrv.KeysResponse
	if err := json.Unmarshal(data, &kr); err != nil {
		return nil, fmt.Errorf("storeclnt: decode keys: %w", err)
	}
	return kr.Keys, nil
}

// Delete implements Store.
func (r *Remote) Delete(command string, tags map[string]string) error {
	key := profile.Key(command, tags)
	req, err := http.NewRequest(http.MethodDelete, r.base+"/v1/profiles?key="+url.QueryEscape(key), nil)
	if err != nil {
		return err
	}
	resp, err := r.do(req, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		data, _ := io.ReadAll(resp.Body)
		return remoteError(resp.StatusCode, data)
	}
	r.invalidate(key)
	return nil
}

// Close implements Store: it drops cached state and idle connections.
func (r *Remote) Close() error {
	r.cacheMu.Lock()
	r.cache = map[string]*list.Element{}
	r.lru.Init()
	r.cacheMu.Unlock()
	r.hc.CloseIdleConnections()
	return nil
}

var (
	_ store.Store     = (*Remote)(nil)
	_ store.Truncator = (*Remote)(nil)
)
