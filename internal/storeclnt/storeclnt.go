// Package storeclnt is the wire client for the synapsed profile service: a
// Remote type that implements store.Store over HTTP, so profilers and
// emulators on different hosts share one profile database transparently —
// the paper's "profile once, emulate anywhere" workflow (§4).
//
// Remote keeps connections alive across calls (one http.Transport) and
// serves repeated reads of hot keys from a singleflight-deduplicated LRU
// cache revalidated by generation ETags. On top of that sits the resilience
// layer:
//
//   - every request runs under an internal/retry policy — exponential
//     backoff with full jitter, per-attempt and overall deadlines, retry
//     budgets, and Retry-After honoring — instead of a hand-rolled loop;
//   - each endpoint is guarded by a circuit breaker (closed/open/half-open
//     with single probes), so a dead daemon fails fast instead of burning a
//     connect timeout per call;
//   - while the breaker is open, reads degrade gracefully: cached entries
//     are served stale, generation-stamped and flagged (FindDetailed);
//   - idempotent GETs can be hedged (WithHedge): if the primary response is
//     slower than the recent p95, a second request races it, the first
//     result wins, and the loser is canceled.
package storeclnt

import (
	"bytes"
	"compress/gzip"
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"synapse/internal/profile"
	"synapse/internal/retry"
	"synapse/internal/store"
	"synapse/internal/storesrv"
	"synapse/internal/telemetry"
)

// Defaults, overridable through Options.
const (
	DefaultCacheSize = 128
	DefaultRetries   = 3
	// DefaultTimeout is the overall per-call deadline applied when the
	// caller's context has none (WithTimeout overrides; <= 0 disables).
	DefaultTimeout = 30 * time.Second
	// DefaultBreakerThreshold consecutive failures open an endpoint's
	// circuit; DefaultBreakerCooldown later a probe is allowed through.
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 2 * time.Second
	// defaultHedgeDelay is used until enough latency samples exist to
	// compute a p95, and hedgeFloor bounds the adaptive delay below.
	defaultHedgeDelay = 100 * time.Millisecond
	hedgeFloor        = time.Millisecond
	// latWindow is the per-client ring of recent GET latencies feeding the
	// adaptive hedge delay.
	latWindow = 64
	latWarmup = 16
	// gzipThreshold is the body size above which uploads are compressed.
	gzipThreshold = 1 << 10
)

// Option configures a Remote.
type Option func(*Remote)

// WithHTTPClient substitutes the HTTP client (tests, custom transports).
func WithHTTPClient(hc *http.Client) Option { return func(r *Remote) { r.hc = hc } }

// WithCacheSize bounds the read cache to n keys (0 disables caching).
func WithCacheSize(n int) Option { return func(r *Remote) { r.cacheCap = n } }

// WithRetries bounds retransmissions of idempotent requests (0 disables).
func WithRetries(n int) Option {
	return func(r *Remote) { r.policy.Attempts = n + 1 }
}

// WithRetryPolicy replaces the whole retry policy (backoff shape, deadlines,
// classifier-independent knobs). The client still installs its own error
// classifier.
func WithRetryPolicy(p retry.Policy) Option { return func(r *Remote) { r.policy = p } }

// WithRetryBudget shares a token-bucket retry budget across this client's
// calls (and, if the same *Budget is passed to several clients, across a
// fleet): when the bucket empties, retries stop instead of piling on.
func WithRetryBudget(b *retry.Budget) Option { return func(r *Remote) { r.policy.Budget = b } }

// WithTimeout sets the overall per-call deadline used when the caller's
// context has none. d <= 0 disables the default deadline entirely.
func WithTimeout(d time.Duration) Option { return func(r *Remote) { r.timeout = d } }

// WithBreaker tunes the per-endpoint circuit breaker: threshold consecutive
// failures open it, and a probe is admitted after cooldown. threshold <= 0
// disables the breaker.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(r *Remote) { r.brkThreshold, r.brkCooldown = threshold, cooldown }
}

// WithHedge enables hedged idempotent GETs: when the primary request is
// slower than the recent 95th-percentile latency, a second identical
// request races it and the first response wins. Off by default because a
// hedge duplicates read traffic.
func WithHedge(enabled bool) Option { return func(r *Remote) { r.hedgeEnabled = enabled } }

// WithHedgeDelay fixes the hedge trigger delay instead of adapting it to
// the observed p95 (useful for tests and known-latency links).
func WithHedgeDelay(d time.Duration) Option { return func(r *Remote) { r.hedgeFixed = d } }

// WithStaleReads controls breaker-open degradation: when enabled (default),
// an open circuit serves cached entries stale (flagged via FindDetailed)
// instead of failing reads.
func WithStaleReads(enabled bool) Option { return func(r *Remote) { r.staleReads = enabled } }

// withBreakerClock injects the breaker's clock (tests).
func withBreakerClock(now func() time.Time) Option {
	return func(r *Remote) { r.brkClock = now }
}

// Stats are cumulative per-client resilience counters.
type Stats struct {
	Retries      int64 // attempts beyond the first
	Hedges       int64 // hedge requests launched
	HedgeWins    int64 // hedges whose response was used
	StaleServes  int64 // reads served from cache while the breaker was open
	Shed429      int64 // responses shed by the server with 429
	BreakerOpens int64 // circuit-open transitions across endpoints
}

// Remote is a store.Store whose backend lives in a synapsed daemon.
// Construct with New. Safe for concurrent use.
type Remote struct {
	base     string
	hc       *http.Client
	policy   retry.Policy
	timeout  time.Duration
	cacheCap int

	staleReads bool

	brkThreshold int
	brkCooldown  time.Duration
	brkClock     func() time.Time
	brkMu        sync.Mutex
	breakers     map[string]*breaker

	hedgeEnabled bool
	hedgeFixed   time.Duration
	latMu        sync.Mutex
	lat          [latWindow]time.Duration
	latIdx       int
	latN         int

	// met holds the resilience counters; Stats() reads them. metricsReg is
	// the registry they register into (WithMetrics; nil gets a private one).
	metricsReg *telemetry.Registry
	met        *clientMetrics

	// Read cache: key -> cacheEntry, LRU-evicted at cacheCap.
	cacheMu sync.Mutex
	cache   map[string]*list.Element
	lru     *list.List // front = most recent; values are *cacheEntry

	// Singleflight: one in-flight fetch per key; latecomers wait and share.
	flightMu sync.Mutex
	flight   map[string]*flightCall
}

type cacheEntry struct {
	key  string
	etag string
	set  profile.Set
}

// Freshness qualifies a read's provenance.
type Freshness struct {
	// Stale is set when the result came from the local cache because the
	// endpoint's circuit breaker was open.
	Stale bool
	// ETag is the server generation stamp of the entry served (also set
	// for fresh reads).
	ETag string
}

type flightCall struct {
	done  chan struct{}
	set   profile.Set
	fresh Freshness
	err   error
}

// New returns a client for the service at base (e.g. "http://host:8181").
func New(base string, opts ...Option) *Remote {
	pol := retry.Default()
	pol.Attempts = DefaultRetries + 1
	r := &Remote{
		base:         strings.TrimRight(base, "/"),
		hc:           &http.Client{},
		policy:       pol,
		timeout:      DefaultTimeout,
		cacheCap:     DefaultCacheSize,
		staleReads:   true,
		brkThreshold: DefaultBreakerThreshold,
		brkCooldown:  DefaultBreakerCooldown,
		breakers:     map[string]*breaker{},
		cache:        map[string]*list.Element{},
		lru:          list.New(),
		flight:       map[string]*flightCall{},
	}
	for _, o := range opts {
		o(r)
	}
	reg := r.metricsReg
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	r.met = newClientMetrics(r, reg)
	return r
}

// Open resolves a CLI -store flag value: an http(s):// URL connects to a
// running synapsed daemon, anything else opens a local file-store
// directory. Shared by every command so the flag's meaning cannot drift
// between binaries.
func Open(dirOrURL string) (store.Store, error) {
	if strings.HasPrefix(dirOrURL, "http://") || strings.HasPrefix(dirOrURL, "https://") {
		return New(dirOrURL), nil
	}
	return store.NewFile(dirOrURL)
}

// Stats snapshots the resilience counters. It is a view over the client's
// registered instruments: the same series a WithMetrics registry exposes at
// /v1/metrics, read back as a struct.
func (r *Remote) Stats() Stats {
	return Stats{
		Retries:      r.met.retries.Value(),
		Hedges:       r.met.hedges.Value(),
		HedgeWins:    r.met.hedgeWins.Value(),
		StaleServes:  r.met.staleReads.Value(),
		Shed429:      r.met.shed429.Value(),
		BreakerOpens: r.met.breakerOpens.Value(),
	}
}

// remoteError reconstructs sentinel errors from a structured error response
// so errors.Is(err, store.ErrNotFound/ErrDocTooLarge) holds across the wire.
func remoteError(status int, body []byte) error {
	var er storesrv.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		return fmt.Errorf("storeclnt: server returned HTTP %d: %s", status, bytes.TrimSpace(body))
	}
	switch er.Code {
	case storesrv.CodeNotFound:
		return fmt.Errorf("%w: %s", store.ErrNotFound, er.Error)
	case storesrv.CodeDocTooLarge:
		return fmt.Errorf("%w: %s", store.ErrDocTooLarge, er.Error)
	default:
		// The server's message carries its own prefix, and do() wraps with
		// the endpoint; adding another package prefix here just stutters.
		return errors.New(er.Error)
	}
}

// terminalError marks an error that must not be retried.
type terminalError struct{ err error }

func (t *terminalError) Error() string { return t.err.Error() }
func (t *terminalError) Unwrap() error { return t.err }

func terminal(err error) error { return &terminalError{err: err} }

// classify implements the client's retry taxonomy: circuit-open and
// explicitly terminal errors stop the loop, everything else (transport
// failures, 5xx, 429) is transient.
func classify(err error) retry.Class {
	var te *terminalError
	if errors.As(err, &te) || errors.Is(err, ErrCircuitOpen) {
		return retry.Terminal
	}
	return retry.Transient
}

// call is one wire request, rebuildable per attempt (and per hedge).
type call struct {
	method     string
	url        string
	endpoint   string // breaker key: METHOD + path (no query)
	body       []byte
	header     map[string]string
	idempotent bool
	hedgeable  bool
}

// newCall builds a call for pathAndQuery (e.g. "/v1/profiles?key=k").
func (r *Remote) newCall(method, pathAndQuery string, body []byte) *call {
	path := pathAndQuery
	if q := strings.IndexByte(path, '?'); q >= 0 {
		path = path[:q]
	}
	idem := method == http.MethodGet || method == http.MethodDelete
	return &call{
		method:     method,
		url:        r.base + pathAndQuery,
		endpoint:   method + " " + path,
		body:       body,
		header:     map[string]string{},
		idempotent: idem,
		hedgeable:  method == http.MethodGet,
	}
}

// response is a fully-read reply: reading the body inside the retry loop
// makes truncated responses retryable like any other transport fault.
type response struct {
	status int
	header http.Header
	body   []byte
}

// roundTrip performs one attempt of c and reads the entire body.
func (r *Remote) roundTrip(ctx context.Context, c *call) (*response, error) {
	var rd io.Reader
	if c.body != nil {
		rd = bytes.NewReader(c.body)
	}
	req, err := http.NewRequestWithContext(ctx, c.method, c.url, rd)
	if err != nil {
		return nil, terminal(err)
	}
	for k, v := range c.header {
		req.Header.Set(k, v)
	}
	start := time.Now()
	resp, err := r.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("storeclnt: read response body: %w", err)
	}
	if c.hedgeable && resp.StatusCode < 500 {
		r.recordLatency(time.Since(start))
	}
	return &response{status: resp.StatusCode, header: resp.Header, body: data}, nil
}

// recordLatency feeds the adaptive hedge delay.
func (r *Remote) recordLatency(d time.Duration) {
	r.latMu.Lock()
	r.lat[r.latIdx] = d
	r.latIdx = (r.latIdx + 1) % latWindow
	if r.latN < latWindow {
		r.latN++
	}
	r.latMu.Unlock()
}

// hedgeDelay returns how long the primary GET may run before a hedge
// launches: the fixed override, or the p95 of recent request latencies.
func (r *Remote) hedgeDelay() time.Duration {
	if r.hedgeFixed > 0 {
		return r.hedgeFixed
	}
	r.latMu.Lock()
	n := r.latN
	var buf [latWindow]time.Duration
	copy(buf[:], r.lat[:n])
	r.latMu.Unlock()
	if n < latWarmup {
		return defaultHedgeDelay
	}
	s := buf[:n]
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	p95 := s[n*95/100]
	if p95 < hedgeFloor {
		p95 = hedgeFloor
	}
	return p95
}

// attempt performs one policy attempt, racing a hedge for slow hedgeable
// GETs. Exactly one response is returned; the loser's request context is
// canceled.
func (r *Remote) attempt(ctx context.Context, c *call) (*response, error) {
	if !r.hedgeEnabled || !c.hedgeable {
		return r.roundTrip(ctx, c)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the losing hedge
	type outcome struct {
		rs  *response
		err error
		i   int
	}
	ch := make(chan outcome, 2)
	run := func(i int) {
		rs, err := r.roundTrip(hctx, c)
		ch <- outcome{rs, err, i}
	}
	go run(0)
	launched, done := 1, 0
	timer := time.NewTimer(r.hedgeDelay())
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case o := <-ch:
			done++
			if o.err == nil {
				if o.i == 1 {
					r.met.hedgeWins.Inc()
				}
				return o.rs, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if done == launched {
				return nil, firstErr
			}
		case <-timer.C:
			if launched < 2 {
				r.met.hedges.Inc()
				launched++
				go run(1)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// retryAfter parses a Retry-After header (delta-seconds or HTTP-date).
func retryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// do issues c under the full resilience stack: overall deadline, circuit
// breaker, retry policy with jittered backoff, Retry-After honoring, and
// (for hedgeable calls) hedging. On success the returned response has a
// status the caller still interprets (200/204/304/4xx); 429 and 5xx are
// consumed by the retry loop.
func (r *Remote) do(ctx context.Context, c *call) (*response, error) {
	if _, has := ctx.Deadline(); !has && r.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.timeout)
		defer cancel()
	}
	pol := r.policy
	pol.Classify = classify
	var out *response
	attemptNo := 0
	err := pol.Do(ctx, func(actx context.Context) error {
		if attemptNo++; attemptNo > 1 {
			r.met.retries.Inc()
		}
		br := r.breakerFor(c.endpoint)
		if _, ok := br.allow(); !ok {
			return circuitErr(c.endpoint)
		}
		rs, err := r.attempt(actx, c)
		if err != nil {
			if classify(err) == retry.Terminal {
				return err
			}
			br.onFailure()
			if !c.idempotent {
				// A lost write may have landed; retrying could duplicate it.
				return terminal(fmt.Errorf("%w (not retried: non-idempotent)", err))
			}
			return err
		}
		switch {
		case rs.status == http.StatusTooManyRequests:
			// The server shed the request before executing it: safe to
			// retry any method, after the server's own hint.
			br.onSuccess() // alive, just overloaded
			r.met.shed429.Inc()
			return retry.After(remoteError(rs.status, rs.body), retryAfter(rs.header))
		case rs.status >= 500:
			br.onFailure()
			err := retry.After(remoteError(rs.status, rs.body), retryAfter(rs.header))
			if !c.idempotent {
				return terminal(err)
			}
			return err
		default:
			br.onSuccess()
			out = rs
			return nil
		}
	})
	if err != nil {
		return nil, fmt.Errorf("storeclnt: %s failed: %w", c.endpoint, err)
	}
	return out, nil
}

// encodeUpload marshals v, gzip-compressing large bodies, and returns the
// payload plus the Content-Encoding header value ("" when uncompressed).
func encodeUpload(v any) (payload []byte, encoding string, err error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, "", fmt.Errorf("storeclnt: encode: %w", err)
	}
	if len(data) < gzipThreshold {
		return data, "", nil
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		return nil, "", err
	}
	if err := zw.Close(); err != nil {
		return nil, "", err
	}
	return buf.Bytes(), "gzip", nil
}

// Put implements Store: a strict put that fails with ErrDocTooLarge when the
// backend's document limit would be exceeded.
func (r *Remote) Put(p *profile.Profile) error {
	_, err := r.put(context.Background(), p, false)
	return err
}

// PutCtx is Put under the caller's context deadline.
func (r *Remote) PutCtx(ctx context.Context, p *profile.Profile) error {
	_, err := r.put(ctx, p, false)
	return err
}

// PutTruncated implements store.Truncator over the wire (?truncate=1).
func (r *Remote) PutTruncated(p *profile.Profile) (dropped int, err error) {
	return r.put(context.Background(), p, true)
}

func (r *Remote) put(ctx context.Context, p *profile.Profile, truncate bool) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	payload, encoding, err := encodeUpload(p)
	if err != nil {
		return 0, err
	}
	path := "/v1/profiles"
	if truncate {
		path += "?truncate=1"
	}
	c := r.newCall(http.MethodPut, path, payload)
	c.header["Content-Type"] = "application/json"
	if encoding != "" {
		c.header["Content-Encoding"] = encoding
	}
	resp, err := r.do(ctx, c)
	if err != nil {
		return 0, err
	}
	if resp.status != http.StatusOK {
		return 0, remoteError(resp.status, resp.body)
	}
	var pr storesrv.PutResponse
	if err := json.Unmarshal(resp.body, &pr); err != nil {
		return 0, fmt.Errorf("storeclnt: decode put response: %w", err)
	}
	r.invalidate(p.Key())
	return pr.Dropped, nil
}

// PutBatch stores several profiles in one round trip and returns the
// per-profile outcomes in submission order (nil error for stored items).
func (r *Remote) PutBatch(ps []*profile.Profile, truncate bool) ([]error, error) {
	payload, encoding, err := encodeUpload(storesrv.BatchRequest{Profiles: ps, Truncate: truncate})
	if err != nil {
		return nil, err
	}
	c := r.newCall(http.MethodPost, "/v1/profiles:batch", payload)
	c.header["Content-Type"] = "application/json"
	if encoding != "" {
		c.header["Content-Encoding"] = encoding
	}
	resp, err := r.do(context.Background(), c)
	if err != nil {
		return nil, err
	}
	if resp.status != http.StatusOK {
		return nil, remoteError(resp.status, resp.body)
	}
	var br storesrv.BatchResponse
	if err := json.Unmarshal(resp.body, &br); err != nil {
		return nil, fmt.Errorf("storeclnt: decode batch response: %w", err)
	}
	if len(br.Results) != len(ps) {
		return nil, fmt.Errorf("storeclnt: batch returned %d results for %d profiles",
			len(br.Results), len(ps))
	}
	outcomes := make([]error, len(ps))
	for i, item := range br.Results {
		if item.Error == "" {
			r.invalidate(ps[i].Key())
			continue
		}
		switch item.Code {
		case storesrv.CodeDocTooLarge:
			outcomes[i] = fmt.Errorf("%w: %s", store.ErrDocTooLarge, item.Error)
		case storesrv.CodeNotFound:
			outcomes[i] = fmt.Errorf("%w: %s", store.ErrNotFound, item.Error)
		default:
			outcomes[i] = errors.New(item.Error)
		}
	}
	return outcomes, nil
}

// Find implements Store. Concurrent Finds of one key share a single wire
// fetch; cache hits cost at most a bodyless revalidation round trip.
func (r *Remote) Find(command string, tags map[string]string) (profile.Set, error) {
	return r.FindCtx(context.Background(), command, tags)
}

// FindCtx is Find under the caller's context deadline (store.ContextFinder).
func (r *Remote) FindCtx(ctx context.Context, command string, tags map[string]string) (profile.Set, error) {
	set, _, err := r.FindDetailed(ctx, command, tags)
	return set, err
}

// FindDetailed is FindCtx plus provenance: Freshness.Stale reports that the
// result was served from the cache because the endpoint's breaker was open.
func (r *Remote) FindDetailed(ctx context.Context, command string, tags map[string]string) (profile.Set, Freshness, error) {
	key := profile.Key(command, tags)
	set, fresh, err := r.findShared(ctx, key)
	if err != nil {
		return nil, fresh, err
	}
	// Hand every caller its own copy: cached profiles must not alias.
	out := make(profile.Set, len(set))
	for i, p := range set {
		out[i] = p.Clone()
	}
	return out, fresh, nil
}

// findShared deduplicates concurrent fetches of one key.
func (r *Remote) findShared(ctx context.Context, key string) (profile.Set, Freshness, error) {
	r.flightMu.Lock()
	if c, ok := r.flight[key]; ok {
		r.flightMu.Unlock()
		<-c.done
		return c.set, c.fresh, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	r.flight[key] = c
	r.flightMu.Unlock()

	c.set, c.fresh, c.err = r.fetch(ctx, key)
	close(c.done)

	r.flightMu.Lock()
	delete(r.flight, key)
	r.flightMu.Unlock()
	return c.set, c.fresh, c.err
}

// fetch performs the conditional GET for key, consulting and updating the
// LRU cache, and degrading to a stale cache entry when the circuit is open.
func (r *Remote) fetch(ctx context.Context, key string) (profile.Set, Freshness, error) {
	cached, etag := r.cached(key)
	c := r.newCall(http.MethodGet, "/v1/profiles?key="+url.QueryEscape(key), nil)
	if etag != "" {
		c.header["If-None-Match"] = etag
	}
	resp, err := r.do(ctx, c)
	if err != nil {
		if r.staleReads && cached != nil && errors.Is(err, ErrCircuitOpen) {
			r.met.staleReads.Inc()
			return cached, Freshness{Stale: true, ETag: etag}, nil
		}
		return nil, Freshness{}, err
	}
	if resp.status == http.StatusNotModified && cached != nil {
		return cached, Freshness{ETag: etag}, nil
	}
	if resp.status != http.StatusOK {
		return nil, Freshness{}, remoteError(resp.status, resp.body)
	}
	var set profile.Set
	if err := json.Unmarshal(resp.body, &set); err != nil {
		return nil, Freshness{}, fmt.Errorf("storeclnt: decode profiles: %w", err)
	}
	for _, p := range set {
		if err := p.Validate(); err != nil {
			return nil, Freshness{}, fmt.Errorf("storeclnt: profile for key %q invalid: %w", key, err)
		}
	}
	newTag := resp.header.Get("ETag")
	r.store(key, newTag, set)
	return set, Freshness{ETag: newTag}, nil
}

// cached returns the cached set and its ETag, refreshing recency.
func (r *Remote) cached(key string) (profile.Set, string) {
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	el, ok := r.cache[key]
	if !ok {
		return nil, ""
	}
	r.lru.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.set, e.etag
}

// store inserts or refreshes a cache entry, evicting the LRU tail.
func (r *Remote) store(key, etag string, set profile.Set) {
	if r.cacheCap <= 0 || etag == "" {
		return
	}
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	if el, ok := r.cache[key]; ok {
		r.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.etag, e.set = etag, set
		return
	}
	r.cache[key] = r.lru.PushFront(&cacheEntry{key: key, etag: etag, set: set})
	for r.lru.Len() > r.cacheCap {
		tail := r.lru.Back()
		r.lru.Remove(tail)
		delete(r.cache, tail.Value.(*cacheEntry).key)
	}
}

// invalidate drops key from the cache (after local writes).
func (r *Remote) invalidate(key string) {
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	if el, ok := r.cache[key]; ok {
		r.lru.Remove(el)
		delete(r.cache, key)
	}
}

// CacheLen reports the number of cached keys (observability, tests).
func (r *Remote) CacheLen() int {
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	return r.lru.Len()
}

// Keys implements Store.
func (r *Remote) Keys() ([]string, error) {
	return r.KeysCtx(context.Background())
}

// KeysCtx is Keys under the caller's context deadline.
func (r *Remote) KeysCtx(ctx context.Context) ([]string, error) {
	resp, err := r.do(ctx, r.newCall(http.MethodGet, "/v1/keys", nil))
	if err != nil {
		return nil, err
	}
	if resp.status != http.StatusOK {
		return nil, remoteError(resp.status, resp.body)
	}
	var kr storesrv.KeysResponse
	if err := json.Unmarshal(resp.body, &kr); err != nil {
		return nil, fmt.Errorf("storeclnt: decode keys: %w", err)
	}
	return kr.Keys, nil
}

// Delete implements Store.
func (r *Remote) Delete(command string, tags map[string]string) error {
	return r.DeleteCtx(context.Background(), command, tags)
}

// DeleteCtx is Delete under the caller's context deadline.
func (r *Remote) DeleteCtx(ctx context.Context, command string, tags map[string]string) error {
	key := profile.Key(command, tags)
	resp, err := r.do(ctx, r.newCall(http.MethodDelete, "/v1/profiles?key="+url.QueryEscape(key), nil))
	if err != nil {
		return err
	}
	if resp.status != http.StatusNoContent {
		return remoteError(resp.status, resp.body)
	}
	r.invalidate(key)
	return nil
}

// Close implements Store: it drops cached state and idle connections.
func (r *Remote) Close() error {
	r.cacheMu.Lock()
	r.cache = map[string]*list.Element{}
	r.lru.Init()
	r.cacheMu.Unlock()
	r.hc.CloseIdleConnections()
	return nil
}

var (
	_ store.Store         = (*Remote)(nil)
	_ store.Truncator     = (*Remote)(nil)
	_ store.ContextFinder = (*Remote)(nil)
)
