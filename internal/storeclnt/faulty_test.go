package storeclnt

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"synapse/internal/store"
	"synapse/internal/store/storetest"
	"synapse/internal/storesrv"
)

// faultyHandler wraps the service and degrades idempotent traffic: the
// first attempt at every distinct GET/DELETE request is dropped with a 503
// (the client must retry), and every third idempotent request is delayed.
// The schedule is deterministic per request identity, so the conformance
// suite cannot flake — only genuinely missing retry logic fails it.
type faultyHandler struct {
	inner http.Handler

	mu      sync.Mutex
	seen    map[string]int
	dropped int
	delayed int
}

func newFaultyHandler(inner http.Handler) *faultyHandler {
	return &faultyHandler{inner: inner, seen: map[string]int{}}
}

func (f *faultyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	idempotent := r.Method == http.MethodGet || r.Method == http.MethodDelete
	if !idempotent || strings.HasSuffix(r.URL.Path, "/healthz") {
		f.inner.ServeHTTP(w, r)
		return
	}
	key := r.Method + " " + r.URL.String() + " " + r.Header.Get("If-None-Match")
	f.mu.Lock()
	f.seen[key]++
	attempt := f.seen[key]
	drop := attempt == 1
	delay := !drop && attempt%3 == 0
	if drop {
		f.dropped++
	}
	if delay {
		f.delayed++
	}
	f.mu.Unlock()
	if drop {
		http.Error(w, `{"error": "injected drop", "code": "internal"}`, http.StatusServiceUnavailable)
		return
	}
	if delay {
		time.Sleep(2 * time.Millisecond)
	}
	f.inner.ServeHTTP(w, r)
}

func (f *faultyHandler) stats() (dropped, delayed int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped, f.delayed
}

// TestRemoteConformanceThroughFaultyServer runs the full backend
// conformance suite against a Remote whose server drops the first attempt
// of every idempotent request and delays others: with bounded retries the
// suite must pass exactly as it does against a healthy server, proving the
// retry path is invisible to correctness.
func TestRemoteConformanceThroughFaultyServer(t *testing.T) {
	var handlers []*faultyHandler
	var mu sync.Mutex
	mk := func(t *testing.T, backend store.Store) store.Store {
		t.Helper()
		fh := newFaultyHandler(storesrv.New(backend, storesrv.Config{}))
		mu.Lock()
		handlers = append(handlers, fh)
		mu.Unlock()
		ts := httptest.NewServer(fh)
		t.Cleanup(ts.Close)
		// The fault schedule 503s the first attempt of EVERY idempotent
		// request, so the Concurrent subtest produces bursts of consecutive
		// failures no healthy deployment would: disable the breaker here
		// (its own transitions are covered by breaker_test.go) so the suite
		// exercises the retry path alone.
		return New(ts.URL, WithBreaker(0, 0))
	}
	storetest.Run(t, storetest.Factory{
		New: func(t *testing.T) store.Store {
			return mk(t, store.NewSharded(4))
		},
		NewWithLimit: func(t *testing.T, limit int64) store.Store {
			return mk(t, store.NewShardedWithLimit(4, limit))
		},
	})
	var dropped, delayed int
	for _, fh := range handlers {
		d, l := fh.stats()
		dropped += d
		delayed += l
	}
	if dropped == 0 {
		t.Fatal("fault injection never fired; the suite proved nothing")
	}
	t.Logf("conformance passed through %d dropped and %d delayed responses", dropped, delayed)
}

// TestRemoteDeleteRetryIdempotent: a DELETE whose response is lost twice
// must still succeed through retries, and the repeated server-side deletes
// must not invent an error (deleting an absent key is not one).
func TestRemoteDeleteRetryIdempotent(t *testing.T) {
	backend := store.NewSharded(2)
	srv := storesrv.New(backend, storesrv.Config{})
	var mu sync.Mutex
	failures := map[string]int{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodDelete {
			mu.Lock()
			failures[r.URL.String()]++
			n := failures[r.URL.String()]
			mu.Unlock()
			if n <= 2 {
				// Let the backend perform the delete, then lose the
				// response: the retried DELETE hits an absent key.
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, r)
				http.Error(w, `{"error": "reply lost", "code": "internal"}`, http.StatusBadGateway)
				return
			}
		}
		srv.ServeHTTP(w, r)
	}))
	defer ts.Close()
	r := New(ts.URL)
	defer r.Close()

	if err := r.Put(storetest.MkProfile("doomed", nil, 2)); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("doomed", nil); err != nil {
		t.Fatalf("delete with lost replies should succeed via retries: %v", err)
	}
	if _, err := backend.Find("doomed", nil); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("backend still has the key: %v", err)
	}
}

// TestRemotePartialWriteSurfaces: a Put the backend performed but whose
// success was lost must surface an error — the client must NOT silently
// retry a non-idempotent write — and the store must hold exactly one copy.
func TestRemotePartialWriteSurfaces(t *testing.T) {
	backend := store.NewSharded(2)
	flaky := storetest.NewFlaky(backend, storetest.FlakyConfig{
		FailEvery:     1,
		PartialWrites: true,
	})
	r := newRemote(t, flaky)
	defer r.Close()

	err := r.Put(storetest.MkProfile("half", nil, 2))
	if err == nil {
		t.Fatal("partial write reported success")
	}
	if flaky.Injected("put") != 1 {
		t.Fatalf("injected %d put faults, want exactly 1 (no hidden retry)", flaky.Injected("put"))
	}
	got, ferr := backend.Find("half", nil)
	if ferr != nil {
		t.Fatalf("backend lost the partial write: %v", ferr)
	}
	if len(got) != 1 {
		t.Fatalf("backend holds %d copies, want 1", len(got))
	}
}

// TestRemoteReadRetriesAgainstFlakyBackend: backend-level transient read
// errors surface as 500s the client retries through; the deterministic
// every-other-read schedule guarantees the retry lands on a healthy call.
func TestRemoteReadRetriesAgainstFlakyBackend(t *testing.T) {
	backend := store.NewSharded(2)
	flaky := storetest.NewFlaky(backend, storetest.FlakyConfig{
		FailEvery: 2,
		Reads:     true,
	})
	r := newRemote(t, flaky, WithCacheSize(0)) // every Find hits the backend
	defer r.Close()

	if err := r.Put(storetest.MkProfile("wobbly", nil, 2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := r.Find("wobbly", nil); err != nil {
			t.Fatalf("read %d failed through retries: %v", i, err)
		}
		if _, err := r.Keys(); err != nil {
			t.Fatalf("keys %d failed through retries: %v", i, err)
		}
	}
	if flaky.Injected("find")+flaky.Injected("keys") == 0 {
		t.Fatal("no read faults injected; the test proved nothing")
	}
}
