// Package skeleton implements Application-Skeleton-style workflows built
// from Synapse proxy tasks.
//
// The paper positions Synapse as the per-component configuration mechanism
// for Application Skeletons (§7, Katz et al. [24]): Skeletons express the
// logical and data dependencies between application components as a DAG,
// while Synapse provides each component's resource-consumption behaviour.
// This package supplies that DAG substrate — stages of tasks with
// dependencies, a slot-based node scheduler, and execution where every task
// is one Synapse emulation — which is also exactly what the AIMES and
// Ensemble-Toolkit use cases of paper §2 require.
package skeleton

import (
	"context"
	"fmt"
	"sort"
	"time"

	"synapse/internal/core"
	"synapse/internal/emulator"
	"synapse/internal/profile"
	"synapse/internal/store"
)

// Task is one DAG node: a stored profile identity plus per-task emulation
// overrides (the Synapse-provided "configuration parameters at the level of
// individual DAG components").
type Task struct {
	// ID is unique within the skeleton.
	ID string
	// Command/Tags locate the task's profile in the store.
	Command string
	Tags    map[string]string
	// After lists task IDs that must complete before this task starts.
	After []string
	// Slots is how many scheduler slots the task occupies (e.g. MPI
	// ranks); minimum 1.
	Slots int
	// Configure adjusts the emulation options for this task (kernel,
	// parallelism, I/O granularity, ...). May be nil.
	Configure func(*core.EmulateOptions)
}

// Skeleton is a DAG of proxy tasks.
type Skeleton struct {
	Name  string
	Tasks []Task
}

// Validate reports the first structural problem: duplicate IDs, dangling
// dependencies, cycles, or non-positive slot demands.
func (s *Skeleton) Validate() error {
	if len(s.Tasks) == 0 {
		return fmt.Errorf("skeleton %s: no tasks", s.Name)
	}
	byID := map[string]*Task{}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		if t.ID == "" {
			return fmt.Errorf("skeleton %s: task %d has no ID", s.Name, i)
		}
		if _, dup := byID[t.ID]; dup {
			return fmt.Errorf("skeleton %s: duplicate task ID %q", s.Name, t.ID)
		}
		if t.Slots < 0 {
			return fmt.Errorf("skeleton %s: task %q has negative slots", s.Name, t.ID)
		}
		byID[t.ID] = t
	}
	for _, t := range s.Tasks {
		for _, dep := range t.After {
			if _, ok := byID[dep]; !ok {
				return fmt.Errorf("skeleton %s: task %q depends on unknown %q", s.Name, t.ID, dep)
			}
		}
	}
	if _, err := s.topoOrder(); err != nil {
		return err
	}
	return nil
}

// topoOrder returns the task IDs in a dependency-respecting order, failing
// on cycles. Ready tasks are ordered by ID for determinism.
func (s *Skeleton) topoOrder() ([]string, error) {
	indeg := map[string]int{}
	succ := map[string][]string{}
	for _, t := range s.Tasks {
		indeg[t.ID] += 0
		for _, dep := range t.After {
			indeg[t.ID]++
			succ[dep] = append(succ[dep], t.ID)
		}
	}
	var ready []string
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sort.Strings(ready)
	var order []string
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		for _, next := range succ[id] {
			indeg[next]--
			if indeg[next] == 0 {
				ready = insertSorted(ready, next)
			}
		}
	}
	if len(order) != len(s.Tasks) {
		return nil, fmt.Errorf("skeleton %s: dependency cycle", s.Name)
	}
	return order, nil
}

func insertSorted(xs []string, x string) []string {
	i := sort.SearchStrings(xs, x)
	xs = append(xs, "")
	copy(xs[i+1:], xs[i:])
	xs[i] = x
	return xs
}

// TaskResult is one task's outcome.
type TaskResult struct {
	ID     string
	Start  time.Duration // when the task started, relative to workflow start
	End    time.Duration
	Report *emulator.Report
}

// Result is the workflow outcome.
type Result struct {
	Makespan time.Duration
	Tasks    []TaskResult // in completion order
}

// CriticalPathLength returns the longest chain of task durations through
// the DAG (a lower bound on any schedule's makespan with these durations).
func (r *Result) CriticalPathLength(s *Skeleton) time.Duration {
	durs := map[string]time.Duration{}
	for _, tr := range r.Tasks {
		durs[tr.ID] = tr.End - tr.Start
	}
	memo := map[string]time.Duration{}
	var chain func(id string) time.Duration
	byID := map[string]*Task{}
	for i := range s.Tasks {
		byID[s.Tasks[i].ID] = &s.Tasks[i]
	}
	chain = func(id string) time.Duration {
		if v, ok := memo[id]; ok {
			return v
		}
		var best time.Duration
		for _, dep := range byID[id].After {
			if c := chain(dep); c > best {
				best = c
			}
		}
		memo[id] = best + durs[id]
		return memo[id]
	}
	var best time.Duration
	for id := range byID {
		if c := chain(id); c > best {
			best = c
		}
	}
	return best
}

// Runner executes skeletons against a profile store on a virtual node with
// a fixed number of scheduler slots. Task durations come from Synapse
// emulation; the schedule is list scheduling in topological order.
type Runner struct {
	Store store.Store
	// Machine names the emulation resource for every task.
	Machine string
	// Slots is the node's concurrent capacity (defaults to 1).
	Slots int
	// Base is applied to every task's emulation options before the
	// task's own Configure hook. May be nil.
	Base func(*core.EmulateOptions)
}

// Run executes the skeleton and returns its schedule.
func (r *Runner) Run(ctx context.Context, s *Skeleton) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if r.Store == nil {
		return nil, fmt.Errorf("skeleton: runner needs a store")
	}
	slots := r.Slots
	if slots < 1 {
		slots = 1
	}
	order, err := s.topoOrder()
	if err != nil {
		return nil, err
	}
	byID := map[string]*Task{}
	for i := range s.Tasks {
		byID[s.Tasks[i].ID] = &s.Tasks[i]
	}

	// Emulate each task once to learn its duration.
	reports := map[string]*emulator.Report{}
	for _, id := range order {
		t := byID[id]
		opts := core.EmulateOptions{Machine: r.Machine}
		if r.Base != nil {
			r.Base(&opts)
		}
		if t.Configure != nil {
			t.Configure(&opts)
		}
		rep, err := core.Emulate(ctx, r.Store, t.Command, t.Tags, opts)
		if err != nil {
			return nil, fmt.Errorf("skeleton %s: task %q: %w", s.Name, id, err)
		}
		reports[id] = rep
	}

	// List-schedule in topological order onto slot timelines.
	slotFree := make([]time.Duration, slots)
	finish := map[string]time.Duration{}
	var results []TaskResult
	for _, id := range order {
		t := byID[id]
		need := t.Slots
		if need < 1 {
			need = 1
		}
		if need > slots {
			return nil, fmt.Errorf("skeleton %s: task %q needs %d slots, node has %d",
				s.Name, id, need, slots)
		}
		// Earliest time dependencies are satisfied.
		var ready time.Duration
		for _, dep := range t.After {
			if finish[dep] > ready {
				ready = finish[dep]
			}
		}
		// Claim the `need` earliest-free slots.
		idx := make([]int, slots)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return slotFree[idx[a]] < slotFree[idx[b]] })
		start := ready
		for _, i := range idx[:need] {
			if slotFree[i] > start {
				start = slotFree[i]
			}
		}
		dur := reports[id].Tx
		end := start + dur
		for _, i := range idx[:need] {
			slotFree[i] = end
		}
		finish[id] = end
		results = append(results, TaskResult{ID: id, Start: start, End: end, Report: reports[id]})
	}

	sort.Slice(results, func(a, b int) bool { return results[a].End < results[b].End })
	res := &Result{Tasks: results}
	for _, tr := range results {
		if tr.End > res.Makespan {
			res.Makespan = tr.End
		}
	}
	return res, nil
}

// Pipeline builds a linear skeleton: each stage has width identical tasks
// that all depend on every task of the previous stage (the Ensemble Toolkit
// stage-barrier pattern of paper §2.3).
func Pipeline(name string, stages []Stage) *Skeleton {
	s := &Skeleton{Name: name}
	var prev []string
	for si, st := range stages {
		var cur []string
		for i := 0; i < st.Width; i++ {
			id := fmt.Sprintf("%s-%d-%d", st.Name, si, i)
			s.Tasks = append(s.Tasks, Task{
				ID:        id,
				Command:   st.Command,
				Tags:      st.Tags,
				After:     prev,
				Slots:     st.Slots,
				Configure: st.Configure,
			})
			cur = append(cur, id)
		}
		prev = cur
	}
	return s
}

// Stage describes one pipeline stage.
type Stage struct {
	Name      string
	Width     int // number of identical tasks
	Command   string
	Tags      map[string]string
	Slots     int
	Configure func(*core.EmulateOptions)
}

// Profiles ensures every distinct command/tags combination used by the
// skeleton has at least one profile in the store, profiling missing ones on
// the named machine (a convenience for setting up workflows).
func (r *Runner) Profiles(ctx context.Context, s *Skeleton, profilingMachine string, rate float64) error {
	seen := map[string]bool{}
	for _, t := range s.Tasks {
		key := profile.Key(t.Command, t.Tags)
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, err := r.Store.Find(t.Command, t.Tags); err == nil {
			continue
		}
		_, err := core.ProfileCommandString(ctx, t.Command, t.Tags, core.ProfileOptions{
			Machine:    profilingMachine,
			SampleRate: rate,
			Store:      r.Store,
		})
		if err != nil {
			return fmt.Errorf("skeleton: profiling %q: %w", t.Command, err)
		}
	}
	return nil
}
