package skeleton

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"synapse/internal/core"
	"synapse/internal/machine"
	"synapse/internal/store"
)

// testStore profiles the commands the tests use.
func testStore(t *testing.T) store.Store {
	t.Helper()
	st := store.NewMem()
	ctx := context.Background()
	for _, steps := range []string{"50000", "100000"} {
		_, err := core.ProfileCommandString(ctx, "mdsim", map[string]string{"steps": steps},
			core.ProfileOptions{Machine: machine.Thinkie, SampleRate: 1, Store: st})
		if err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func simpleTask(id string, after ...string) Task {
	return Task{ID: id, Command: "mdsim", Tags: map[string]string{"steps": "50000"}, After: after}
}

func TestValidate(t *testing.T) {
	s := &Skeleton{Name: "ok", Tasks: []Task{simpleTask("a"), simpleTask("b", "a")}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Skeleton{Name: "empty"}
	if bad.Validate() == nil {
		t.Error("empty skeleton should be invalid")
	}
	bad = &Skeleton{Name: "dup", Tasks: []Task{simpleTask("a"), simpleTask("a")}}
	if bad.Validate() == nil {
		t.Error("duplicate IDs should be invalid")
	}
	bad = &Skeleton{Name: "dangling", Tasks: []Task{simpleTask("a", "ghost")}}
	if bad.Validate() == nil {
		t.Error("dangling dependency should be invalid")
	}
	bad = &Skeleton{Name: "cycle", Tasks: []Task{simpleTask("a", "b"), simpleTask("b", "a")}}
	if bad.Validate() == nil {
		t.Error("cycle should be invalid")
	}
	bad = &Skeleton{Name: "noid", Tasks: []Task{{Command: "mdsim"}}}
	if bad.Validate() == nil {
		t.Error("missing ID should be invalid")
	}
}

func TestTopoOrderRespectsDependencies(t *testing.T) {
	s := &Skeleton{Name: "diamond", Tasks: []Task{
		simpleTask("d", "b", "c"),
		simpleTask("b", "a"),
		simpleTask("c", "a"),
		simpleTask("a"),
	}}
	order, err := s.topoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	if !(pos["a"] < pos["b"] && pos["a"] < pos["c"] && pos["b"] < pos["d"] && pos["c"] < pos["d"]) {
		t.Errorf("order %v violates dependencies", order)
	}
}

func TestRunSerialChain(t *testing.T) {
	st := testStore(t)
	s := &Skeleton{Name: "chain", Tasks: []Task{
		simpleTask("a"),
		simpleTask("b", "a"),
		simpleTask("c", "b"),
	}}
	r := &Runner{Store: st, Machine: machine.Thinkie, Slots: 4}
	res, err := r.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	// A chain cannot overlap: makespan = sum of durations.
	var sum time.Duration
	for _, tr := range res.Tasks {
		sum += tr.End - tr.Start
	}
	if res.Makespan != sum {
		t.Errorf("chain makespan %v != sum of durations %v", res.Makespan, sum)
	}
	// Tasks start only after their dependency finished.
	ends := map[string]time.Duration{}
	for _, tr := range res.Tasks {
		ends[tr.ID] = tr.End
	}
	for _, tr := range res.Tasks {
		for _, dep := range map[string][]string{"b": {"a"}, "c": {"b"}}[tr.ID] {
			if tr.Start < ends[dep] {
				t.Errorf("task %s started before %s finished", tr.ID, dep)
			}
		}
	}
}

func TestRunParallelBag(t *testing.T) {
	st := testStore(t)
	var tasks []Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, simpleTask(fmt.Sprintf("t%d", i)))
	}
	s := &Skeleton{Name: "bag", Tasks: tasks}

	serial := &Runner{Store: st, Machine: machine.Thinkie, Slots: 1}
	parallel := &Runner{Store: st, Machine: machine.Thinkie, Slots: 8}
	rs, err := serial.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := parallel.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Makespan >= rs.Makespan {
		t.Errorf("8 slots (%v) should beat 1 slot (%v)", rp.Makespan, rs.Makespan)
	}
	// With 8 independent equal tasks on 8 slots, makespan ≈ one task.
	oneTask := rp.Tasks[0].End - rp.Tasks[0].Start
	if rp.Makespan > oneTask*3/2 {
		t.Errorf("bag on 8 slots should be ≈1 task long: %v vs %v", rp.Makespan, oneTask)
	}
}

func TestRunMultiSlotTasks(t *testing.T) {
	st := testStore(t)
	s := &Skeleton{Name: "wide", Tasks: []Task{
		{ID: "mpi4", Command: "mdsim", Tags: map[string]string{"steps": "50000"}, Slots: 4,
			Configure: func(o *core.EmulateOptions) {
				o.Workers = 4
				o.Mode = machine.ModeMPI
			}},
		simpleTask("small"),
	}}
	r := &Runner{Store: st, Machine: machine.Supermic, Slots: 4}
	res, err := r.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 2 {
		t.Fatalf("ran %d tasks", len(res.Tasks))
	}
	// Over-wide task rejected.
	s2 := &Skeleton{Name: "toowide", Tasks: []Task{
		{ID: "x", Command: "mdsim", Tags: map[string]string{"steps": "50000"}, Slots: 64},
	}}
	if _, err := r.Run(context.Background(), s2); err == nil {
		t.Error("task wider than the node should fail")
	}
}

func TestCriticalPath(t *testing.T) {
	st := testStore(t)
	s := &Skeleton{Name: "diamond", Tasks: []Task{
		simpleTask("a"),
		simpleTask("b", "a"),
		simpleTask("c", "a"),
		simpleTask("d", "b", "c"),
	}}
	r := &Runner{Store: st, Machine: machine.Thinkie, Slots: 2}
	res, err := r.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	cp := res.CriticalPathLength(s)
	if cp <= 0 {
		t.Fatal("critical path should be positive")
	}
	if res.Makespan < cp {
		t.Errorf("makespan %v below critical path %v", res.Makespan, cp)
	}
	// With 2 slots the diamond should achieve the critical path exactly
	// (b and c run concurrently).
	if res.Makespan != cp {
		t.Errorf("diamond on 2 slots: makespan %v != critical path %v", res.Makespan, cp)
	}
}

func TestPipelineBuilder(t *testing.T) {
	s := Pipeline("ensemble", []Stage{
		{Name: "sim", Width: 4, Command: "mdsim", Tags: map[string]string{"steps": "50000"}},
		{Name: "analysis", Width: 1, Command: "mdsim", Tags: map[string]string{"steps": "100000"}},
	})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Tasks) != 5 {
		t.Fatalf("pipeline has %d tasks", len(s.Tasks))
	}
	// The analysis task depends on all four sim tasks.
	last := s.Tasks[len(s.Tasks)-1]
	if len(last.After) != 4 {
		t.Errorf("analysis depends on %d tasks, want 4", len(last.After))
	}
	// Executable end to end.
	st := testStore(t)
	r := &Runner{Store: st, Machine: machine.Thinkie, Slots: 4}
	res, err := r.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	// Stage barrier: analysis starts only after the slowest sim task.
	var simEnd time.Duration
	for _, tr := range res.Tasks[:4] {
		if tr.End > simEnd {
			simEnd = tr.End
		}
	}
	analysis := res.Tasks[4]
	if analysis.Start < simEnd {
		t.Errorf("analysis started at %v before sim stage ended at %v", analysis.Start, simEnd)
	}
}

func TestProfilesConvenience(t *testing.T) {
	st := store.NewMem()
	s := Pipeline("p", []Stage{
		{Name: "s", Width: 2, Command: "mdsim", Tags: map[string]string{"steps": "50000"}},
	})
	r := &Runner{Store: st, Machine: machine.Thinkie, Slots: 2}
	if err := r.Profiles(context.Background(), s, machine.Thinkie, 1); err != nil {
		t.Fatal(err)
	}
	// Profiles exist now; a second call is a no-op.
	if err := r.Profiles(context.Background(), s, machine.Thinkie, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), s); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerValidation(t *testing.T) {
	s := &Skeleton{Name: "x", Tasks: []Task{simpleTask("a")}}
	r := &Runner{Machine: machine.Thinkie}
	if _, err := r.Run(context.Background(), s); err == nil {
		t.Error("runner without store should fail")
	}
	r = &Runner{Store: store.NewMem(), Machine: machine.Thinkie}
	if _, err := r.Run(context.Background(), s); err == nil {
		t.Error("unprofiled task should fail")
	}
}

// Property: random DAGs built by layering always validate and schedule, and
// the makespan never beats the critical path.
func TestRandomDAGScheduleProperty(t *testing.T) {
	st := testStore(t)
	r := &Runner{Store: st, Machine: machine.Thinkie, Slots: 3}
	f := func(widthsRaw [3]uint8, edges uint8) bool {
		var tasks []Task
		var prevLayer []string
		id := 0
		for layer, wRaw := range widthsRaw {
			w := int(wRaw%3) + 1
			var cur []string
			for i := 0; i < w; i++ {
				tid := fmt.Sprintf("L%dT%d", layer, id)
				id++
				task := simpleTask(tid)
				// Depend on a subset of the previous layer.
				for j, dep := range prevLayer {
					if (int(edges)>>(uint(j)%7))&1 == 1 || j == 0 {
						task.After = append(task.After, dep)
					}
				}
				tasks = append(tasks, task)
				cur = append(cur, tid)
			}
			prevLayer = cur
		}
		s := &Skeleton{Name: "rand", Tasks: tasks}
		if s.Validate() != nil {
			return false
		}
		res, err := r.Run(context.Background(), s)
		if err != nil {
			return false
		}
		return res.Makespan >= res.CriticalPathLength(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
