package app

import (
	"testing"
	"testing/quick"

	"synapse/internal/machine"
)

func TestMDSimShape(t *testing.T) {
	w := MDSim(10000)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.App != machine.AppMDSim {
		t.Errorf("App = %q", w.App)
	}
	if w.Tags["steps"] != "10000" {
		t.Errorf("steps tag = %q", w.Tags["steps"])
	}
	if got := w.TotalComputeUnits(); got != 10000+MDSimStartupUnits {
		t.Errorf("compute units = %v", got)
	}
	if got := w.TotalReadBytes(); got != MDSimInputBytes {
		t.Errorf("read bytes = %v, want constant input", got)
	}
}

// The paper's knob semantics: steps drive CPU and disk output linearly,
// while disk input and memory stay constant.
func TestMDSimKnobSemantics(t *testing.T) {
	small := MDSim(10000)
	large := MDSim(100000)

	// CPU scales with steps (minus the constant startup work).
	dCPU := large.TotalComputeUnits() - small.TotalComputeUnits()
	if dCPU != 90000 {
		t.Errorf("CPU delta = %v, want 90000", dCPU)
	}
	// Disk output scales ~linearly.
	if large.TotalWriteBytes() <= small.TotalWriteBytes() {
		t.Error("write bytes should grow with steps")
	}
	ratio := float64(large.TotalWriteBytes()) / float64(small.TotalWriteBytes())
	if ratio < 9.5 || ratio > 10.5 {
		t.Errorf("write scaling ratio = %v, want ~10", ratio)
	}
	// Disk input constant.
	if large.TotalReadBytes() != small.TotalReadBytes() {
		t.Error("read bytes should be constant")
	}
	// Memory envelope constant.
	lastS, lastL := small.Phases[len(small.Phases)-1], large.Phases[len(large.Phases)-1]
	if lastS.RSSEnd != lastL.RSSEnd {
		t.Error("peak RSS should be constant across step counts")
	}
}

func TestMDSimNegativeSteps(t *testing.T) {
	w := MDSim(-5)
	if err := w.Validate(); err != nil {
		t.Fatalf("negative steps should clamp, got %v", err)
	}
	if w.Phases[1].ComputeUnits != 0 {
		t.Errorf("clamped compute units = %v", w.Phases[1].ComputeUnits)
	}
}

func TestMDSimParallel(t *testing.T) {
	w := MDSimParallel(5000, 8, machine.ModeOpenMP)
	if w.Workers != 8 || w.Mode != machine.ModeOpenMP {
		t.Errorf("parallel config = %d workers, mode %v", w.Workers, w.Mode)
	}
	if w.Tags["workers"] != "8" || w.Tags["mode"] != "OpenMP" {
		t.Errorf("tags = %v", w.Tags)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIOBench(t *testing.T) {
	w := IOBench(1<<30, 4096, machine.FSLustre)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.TotalWriteBytes() != 1<<30 || w.TotalReadBytes() != 1<<30 {
		t.Error("iobench should write then read the full size")
	}
	if w.Phases[0].Filesystem != machine.FSLustre {
		t.Errorf("fs = %q", w.Phases[0].Filesystem)
	}
	if w.TotalComputeUnits() != 0 {
		t.Error("iobench should not compute")
	}
}

func TestSleeper(t *testing.T) {
	w := Sleeper(30)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.TotalComputeUnits() != 0 || w.TotalReadBytes() != 0 || w.TotalWriteBytes() != 0 {
		t.Error("sleeper should consume nothing")
	}
	if w.Phases[0].WaitSeconds != 30 {
		t.Errorf("wait = %v", w.Phases[0].WaitSeconds)
	}
}

func TestMemRamp(t *testing.T) {
	w := MemRamp(100 << 20)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	var alloc, free int64
	for _, p := range w.Phases {
		alloc += p.AllocBytes
		free += p.FreeBytes
	}
	if alloc != 100<<20 {
		t.Errorf("alloc = %d", alloc)
	}
	if free == 0 || free > alloc {
		t.Errorf("free = %d", free)
	}
}

func TestNetEcho(t *testing.T) {
	w := NetEcho(1<<20, 4096)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	p := w.Phases[0]
	if p.NetReadBytes != 1<<20 || p.NetWriteBytes != 1<<20 || p.NetBlock != 4096 {
		t.Errorf("net phase = %+v", p)
	}
}

func TestValidateCatchesNegatives(t *testing.T) {
	w := Workload{App: "x", Command: "x", Phases: []Phase{{ComputeUnits: -1}}}
	if w.Validate() == nil {
		t.Error("negative compute units should be invalid")
	}
	w = Workload{Command: "x"}
	if w.Validate() == nil {
		t.Error("missing app name should be invalid")
	}
	w = Workload{App: "x"}
	if w.Validate() == nil {
		t.Error("missing command should be invalid")
	}
	w = Workload{App: "x", Command: "x", Workers: -1}
	if w.Validate() == nil {
		t.Error("negative workers should be invalid")
	}
}

// Property: MDSim workloads are valid and monotone in steps.
func TestMDSimMonotoneProperty(t *testing.T) {
	f := func(aRaw, bRaw uint32) bool {
		a, b := int(aRaw%10_000_000), int(bRaw%10_000_000)
		if a > b {
			a, b = b, a
		}
		wa, wb := MDSim(a), MDSim(b)
		if wa.Validate() != nil || wb.Validate() != nil {
			return false
		}
		return wa.TotalComputeUnits() <= wb.TotalComputeUnits() &&
			wa.TotalWriteBytes() <= wb.TotalWriteBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: distinct step counts produce distinct tags (profiles must not
// collide in the store).
func TestMDSimTagUniquenessProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		if a == b {
			return true
		}
		return MDSim(int(a % 1e7)).Tags["steps"] != MDSim(int(b % 1e7)).Tags["steps"] ||
			a%1e7 == b%1e7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
