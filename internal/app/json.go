package app

import (
	"encoding/json"
	"fmt"
	"strings"

	"synapse/internal/machine"
)

// The JSON workload format lets users define their own synthetic
// applications without writing Go — phases of compute, I/O, memory, network
// and waiting, in human units (MB, KB, seconds):
//
//	{
//	  "app": "mdsim", "command": "my-app", "tags": {"case": "A"},
//	  "workers": 1, "mode": "serial",
//	  "phases": [
//	    {"name": "load",  "read_mb": 100, "read_block_kb": 1024,
//	     "rss_start_mb": 50},
//	    {"name": "solve", "compute_units": 200000, "flops_per_unit": 90000,
//	     "write_mb": 10, "write_block_kb": 4, "rss_start_mb": 50,
//	     "rss_end_mb": 300, "blend": true},
//	    {"name": "idle",  "wait_seconds": 2}
//	  ]
//	}
type workloadJSON struct {
	App     string            `json:"app"`
	Command string            `json:"command"`
	Tags    map[string]string `json:"tags"`
	Workers int               `json:"workers"`
	Mode    string            `json:"mode"`
	Phases  []phaseJSON       `json:"phases"`
}

type phaseJSON struct {
	Name         string  `json:"name"`
	ComputeUnits float64 `json:"compute_units"`
	FLOPsPerUnit float64 `json:"flops_per_unit"`

	ReadMB       float64 `json:"read_mb"`
	WriteMB      float64 `json:"write_mb"`
	ReadBlockKB  float64 `json:"read_block_kb"`
	WriteBlockKB float64 `json:"write_block_kb"`
	Filesystem   string  `json:"filesystem"`

	AllocMB    float64 `json:"alloc_mb"`
	FreeMB     float64 `json:"free_mb"`
	RSSStartMB float64 `json:"rss_start_mb"`
	RSSEndMB   float64 `json:"rss_end_mb"`

	WaitSeconds float64 `json:"wait_seconds"`

	NetReadMB  float64 `json:"net_read_mb"`
	NetWriteMB float64 `json:"net_write_mb"`
	NetBlockKB float64 `json:"net_block_kb"`

	Blend bool `json:"blend"`
}

const mbf = float64(1 << 20)

// FromJSON parses a workload description and validates it.
func FromJSON(data []byte) (Workload, error) {
	var j workloadJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return Workload{}, fmt.Errorf("app: parse workload json: %w", err)
	}
	w := Workload{
		App:     j.App,
		Command: j.Command,
		Tags:    j.Tags,
		Workers: j.Workers,
	}
	if w.App == "" {
		w.App = machine.AppDefault
	}
	if w.Tags == nil {
		w.Tags = map[string]string{}
	}
	if w.Workers == 0 {
		w.Workers = 1
	}
	switch strings.ToLower(j.Mode) {
	case "", "serial":
		w.Mode = machine.ModeSerial
	case "openmp", "omp":
		w.Mode = machine.ModeOpenMP
	case "mpi", "openmpi":
		w.Mode = machine.ModeMPI
	default:
		return Workload{}, fmt.Errorf("app: unknown mode %q", j.Mode)
	}
	for _, p := range j.Phases {
		w.Phases = append(w.Phases, Phase{
			Name:          p.Name,
			ComputeUnits:  p.ComputeUnits,
			FLOPsPerUnit:  p.FLOPsPerUnit,
			ReadBytes:     int64(p.ReadMB * mbf),
			WriteBytes:    int64(p.WriteMB * mbf),
			ReadBlock:     int64(p.ReadBlockKB * 1024),
			WriteBlock:    int64(p.WriteBlockKB * 1024),
			Filesystem:    p.Filesystem,
			AllocBytes:    int64(p.AllocMB * mbf),
			FreeBytes:     int64(p.FreeMB * mbf),
			RSSStart:      p.RSSStartMB * mbf,
			RSSEnd:        p.RSSEndMB * mbf,
			WaitSeconds:   p.WaitSeconds,
			NetReadBytes:  int64(p.NetReadMB * mbf),
			NetWriteBytes: int64(p.NetWriteMB * mbf),
			NetBlock:      int64(p.NetBlockKB * 1024),
			Blend:         p.Blend,
		})
	}
	if err := w.Validate(); err != nil {
		return Workload{}, err
	}
	return w, nil
}
