package app

import (
	"testing"

	"synapse/internal/machine"
)

const workloadSample = `{
  "app": "mdsim", "command": "my-app", "tags": {"case": "A"},
  "workers": 4, "mode": "openmp",
  "phases": [
    {"name": "load",  "read_mb": 100, "read_block_kb": 1024, "rss_start_mb": 50},
    {"name": "solve", "compute_units": 200000, "flops_per_unit": 90000,
     "write_mb": 10, "write_block_kb": 4, "rss_start_mb": 50,
     "rss_end_mb": 300, "blend": true},
    {"name": "idle",  "wait_seconds": 2}
  ]
}`

func TestWorkloadFromJSON(t *testing.T) {
	w, err := FromJSON([]byte(workloadSample))
	if err != nil {
		t.Fatal(err)
	}
	if w.Command != "my-app" || w.Tags["case"] != "A" {
		t.Errorf("identity = %q %v", w.Command, w.Tags)
	}
	if w.Workers != 4 || w.Mode != machine.ModeOpenMP {
		t.Errorf("parallel = %d %v", w.Workers, w.Mode)
	}
	if len(w.Phases) != 3 {
		t.Fatalf("phases = %d", len(w.Phases))
	}
	if w.Phases[0].ReadBytes != 100<<20 || w.Phases[0].ReadBlock != 1<<20 {
		t.Errorf("load phase = %+v", w.Phases[0])
	}
	if w.Phases[1].WriteBlock != 4096 || !w.Phases[1].Blend {
		t.Errorf("solve phase = %+v", w.Phases[1])
	}
	if w.Phases[1].RSSEnd != 300<<20 {
		t.Errorf("rss end = %v", w.Phases[1].RSSEnd)
	}
	if w.Phases[2].WaitSeconds != 2 {
		t.Errorf("idle phase = %+v", w.Phases[2])
	}
}

func TestWorkloadFromJSONDefaults(t *testing.T) {
	w, err := FromJSON([]byte(`{"command":"min","phases":[{"compute_units":10}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if w.App != machine.AppDefault || w.Workers != 1 || w.Mode != machine.ModeSerial {
		t.Errorf("defaults = %q %d %v", w.App, w.Workers, w.Mode)
	}
	if w.Tags == nil {
		t.Error("tags should be initialised")
	}
}

func TestWorkloadFromJSONErrors(t *testing.T) {
	if _, err := FromJSON([]byte("{")); err == nil {
		t.Error("malformed json should fail")
	}
	if _, err := FromJSON([]byte(`{"command":"x","mode":"cuda","phases":[{}]}`)); err == nil {
		t.Error("unknown mode should fail")
	}
	if _, err := FromJSON([]byte(`{"phases":[{}]}`)); err == nil {
		t.Error("missing command should fail validation")
	}
	if _, err := FromJSON([]byte(`{"command":"x","phases":[{"compute_units":-5}]}`)); err == nil {
		t.Error("negative quantities should fail validation")
	}
}
