// Package app defines synthetic application workload models.
//
// The paper's evaluation profiles Gromacs; this reproduction substitutes
// MDSim, a parameterised synthetic molecular-dynamics application with the
// same observable resource signature (DESIGN.md §2): the iteration count
// drives CPU consumption and disk output linearly while disk input and
// memory stay constant. Workloads are expressed in machine-independent work
// units; internal/machine maps units to cycles per machine and internal/proc
// executes workloads on simulated machines.
package app

import (
	"fmt"

	"synapse/internal/machine"
)

// Phase is one contiguous segment of application activity. All quantities
// are machine independent; durations emerge when a phase is executed against
// a machine model.
type Phase struct {
	Name string

	// ComputeUnits is application work in abstract units (for MDSim, one
	// unit is one MD iteration step). The machine's AppPerf maps units to
	// cycles, instructions and FLOPs.
	ComputeUnits float64
	// FLOPsPerUnit scales how many floating-point operations one unit
	// carries (counted, not timed).
	FLOPsPerUnit float64

	// Storage I/O.
	ReadBytes  int64
	WriteBytes int64
	ReadBlock  int64 // bytes per read operation (0 = one operation)
	WriteBlock int64
	Filesystem string // "" = machine default

	// Memory traffic.
	AllocBytes int64
	FreeBytes  int64

	// RSSStart/RSSEnd describe the resident-set gauge ramp across the
	// phase (bytes). A zero RSSEnd keeps RSSStart level.
	RSSStart, RSSEnd float64

	// WaitSeconds is time spent blocked without consuming any resource —
	// the paper's sleep(3) example (§4.5 "Application Semantics"), which
	// black-box profiling observes only as elapsed time.
	WaitSeconds float64

	// Network traffic (emulation-only in the paper; profiled here only
	// by the simulated substrate).
	NetReadBytes  int64
	NetWriteBytes int64
	NetBlock      int64

	// Blend mixes all activity of the phase uniformly over its duration
	// (steady-state interleaving, e.g. compute with periodic trajectory
	// writes). Unblended phases execute their activities sequentially:
	// read, alloc, compute, write, network, free, wait.
	Blend bool
}

// Workload is a full application execution plan plus its identity (command
// line and tags) used as the profile search key.
type Workload struct {
	// App names the application model for machine.AppPerf lookup.
	App string
	// Command is the command-line representation used as the store key.
	Command string
	// Tags distinguish workloads sharing a command line (paper §4).
	Tags map[string]string

	Phases []Phase

	// Workers and Mode describe the application's own parallelism
	// (1/serial for the profiled runs in the paper's E.1–E.3).
	Workers int
	Mode    machine.Mode
}

// TotalComputeUnits sums compute units across phases.
func (w Workload) TotalComputeUnits() float64 {
	var u float64
	for _, p := range w.Phases {
		u += p.ComputeUnits
	}
	return u
}

// TotalWriteBytes sums storage writes across phases.
func (w Workload) TotalWriteBytes() int64 {
	var n int64
	for _, p := range w.Phases {
		n += p.WriteBytes
	}
	return n
}

// TotalReadBytes sums storage reads across phases.
func (w Workload) TotalReadBytes() int64 {
	var n int64
	for _, p := range w.Phases {
		n += p.ReadBytes
	}
	return n
}

// Validate reports the first inconsistency in the workload, or nil.
func (w Workload) Validate() error {
	if w.App == "" {
		return fmt.Errorf("app: workload has no application name")
	}
	if w.Command == "" {
		return fmt.Errorf("app: workload has no command")
	}
	if w.Workers < 0 {
		return fmt.Errorf("app: negative worker count")
	}
	for i, p := range w.Phases {
		if p.ComputeUnits < 0 || p.ReadBytes < 0 || p.WriteBytes < 0 ||
			p.AllocBytes < 0 || p.FreeBytes < 0 || p.WaitSeconds < 0 {
			return fmt.Errorf("app: phase %d (%s) has negative quantities", i, p.Name)
		}
	}
	return nil
}

// MDSim constants: the synthetic MD application's machine-independent shape.
const (
	// MDSimInputBytes is the fixed topology/coordinate input read at
	// startup (independent of step count, like Gromacs').
	MDSimInputBytes = 5 << 20
	// MDSimStartupUnits is the fixed setup work (neighbour lists, FFT
	// plans); ~0.3 s on the profiling host.
	MDSimStartupUnits = 6000
	// MDSimBytesPerStep is trajectory output per step on average (one
	// frame every 100 steps).
	MDSimBytesPerStep = 5.12
	// MDSimRSSBase / MDSimRSSPeak bound the resident-set ramp (bytes),
	// matching the 2–6 MB range of paper Fig 6 (bottom).
	MDSimRSSBase = 2.0e6
	MDSimRSSPeak = 6.0e6
	// MDSimFLOPsPerUnit counts floating-point work per step.
	MDSimFLOPsPerUnit = 90e3
	// MDSimWriteBlock is the trajectory frame size (one write op each).
	MDSimWriteBlock = 4096
)

// MDSim returns the Gromacs-like workload for the given number of iteration
// steps. Steps drive CPU and disk output; input and memory are constant —
// exactly the knobs the paper turns in experiments E.1–E.4.
func MDSim(steps int) Workload {
	if steps < 0 {
		steps = 0
	}
	writeBytes := int64(float64(steps) * MDSimBytesPerStep)
	return Workload{
		App:     machine.AppMDSim,
		Command: "mdsim",
		Tags:    map[string]string{"steps": fmt.Sprintf("%d", steps)},
		Workers: 1,
		Mode:    machine.ModeSerial,
		Phases: []Phase{
			{
				Name:         "startup",
				ComputeUnits: MDSimStartupUnits,
				FLOPsPerUnit: MDSimFLOPsPerUnit / 3, // setup is less FP heavy
				ReadBytes:    MDSimInputBytes,
				ReadBlock:    1 << 20,
				AllocBytes:   int64(MDSimRSSPeak - MDSimRSSBase),
				RSSStart:     MDSimRSSBase,
				RSSEnd:       MDSimRSSBase + 0.1*(MDSimRSSPeak-MDSimRSSBase),
			},
			{
				Name:         "dynamics",
				ComputeUnits: float64(steps),
				FLOPsPerUnit: MDSimFLOPsPerUnit,
				WriteBytes:   writeBytes,
				WriteBlock:   MDSimWriteBlock,
				RSSStart:     MDSimRSSBase + 0.1*(MDSimRSSPeak-MDSimRSSBase),
				RSSEnd:       MDSimRSSPeak,
				Blend:        true,
			},
		},
	}
}

// MDSimParallel returns an MDSim workload configured to run with n workers
// in the given mode (the Fig 13/14 baselines: Gromacs itself built with
// OpenMP or MPI).
func MDSimParallel(steps, n int, mode machine.Mode) Workload {
	w := MDSim(steps)
	w.Workers = n
	w.Mode = mode
	w.Command = fmt.Sprintf("mdsim -%s", mode)
	w.Tags["workers"] = fmt.Sprintf("%d", n)
	w.Tags["mode"] = mode.String()
	return w
}

// IOBench returns the synthetic I/O workload of experiment E.5: write a file
// of totalBytes in blocks of blockBytes to the named filesystem, then read
// it back with the same granularity. Compute is negligible by construction.
func IOBench(totalBytes, blockBytes int64, fs string) Workload {
	return Workload{
		App:     machine.AppIOBench,
		Command: "synapse-iobench",
		Tags: map[string]string{
			"bytes": fmt.Sprintf("%d", totalBytes),
			"block": fmt.Sprintf("%d", blockBytes),
			"fs":    fs,
		},
		Workers: 1,
		Phases: []Phase{
			{
				Name:       "write",
				WriteBytes: totalBytes,
				WriteBlock: blockBytes,
				Filesystem: fs,
				RSSStart:   1e6,
			},
			{
				Name:       "read",
				ReadBytes:  totalBytes,
				ReadBlock:  blockBytes,
				Filesystem: fs,
				RSSStart:   1e6,
			},
		},
	}
}

// Sleeper returns a workload that blocks for the given seconds while
// consuming almost nothing — the paper's canonical example of behaviour
// that sample-based black-box profiling cannot attribute (§4.5): profiled
// Tx is large, profiled resource consumption near zero, so the emulation
// finishes almost immediately.
func Sleeper(seconds float64) Workload {
	return Workload{
		App:     machine.AppDefault,
		Command: "sleep",
		Tags:    map[string]string{"seconds": fmt.Sprintf("%g", seconds)},
		Workers: 1,
		Phases: []Phase{
			{
				Name:        "sleep",
				WaitSeconds: seconds,
				RSSStart:    5e5,
			},
		},
	}
}

// MemRamp returns a workload that allocates then frees memory in steps,
// exercising the memory atom: total bytes allocated ramp the RSS up and
// frees ramp it down.
func MemRamp(totalBytes int64) Workload {
	half := totalBytes / 2
	return Workload{
		App:     machine.AppDefault,
		Command: "synapse-memramp",
		Tags:    map[string]string{"bytes": fmt.Sprintf("%d", totalBytes)},
		Workers: 1,
		Phases: []Phase{
			{
				Name:         "grow",
				ComputeUnits: 500,
				AllocBytes:   totalBytes,
				RSSStart:     1e6,
				RSSEnd:       1e6 + float64(totalBytes),
				Blend:        true,
			},
			{
				Name:         "shrink",
				ComputeUnits: 500,
				FreeBytes:    half,
				RSSStart:     1e6 + float64(totalBytes),
				RSSEnd:       1e6 + float64(totalBytes-half),
				Blend:        true,
			},
		},
	}
}

// NetEcho returns a workload exchanging bytes over the network in both
// directions, exercising the (partially supported) network atom.
func NetEcho(bytes, block int64) Workload {
	return Workload{
		App:     machine.AppDefault,
		Command: "synapse-netecho",
		Tags:    map[string]string{"bytes": fmt.Sprintf("%d", bytes)},
		Workers: 1,
		Phases: []Phase{
			{
				Name:          "echo",
				ComputeUnits:  100,
				NetReadBytes:  bytes,
				NetWriteBytes: bytes,
				NetBlock:      block,
				RSSStart:      1e6,
				Blend:         true,
			},
		},
	}
}
