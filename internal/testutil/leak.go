// Package testutil holds helpers shared by the service-layer test suites.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// leakSlack is how many goroutines above the baseline still count as
// clean: the runtime (finalizer, timer scavenger) and net/http's idle
// connection reaper start helpers lazily, so an exact comparison flakes.
const leakSlack = 2

// leakWait bounds how long the cleanup waits for goroutines to wind down:
// drained servers and canceled clients exit asynchronously.
const leakWait = 5 * time.Second

// CheckGoroutines snapshots the goroutine count and registers a cleanup
// that fails the test if the count has not returned to within a small
// slack of the snapshot by shortly after the test body finishes. Call it
// first thing in any test that boots servers, proxies or client pools —
// it is the shared replacement for ad-hoc post-drain NumGoroutine
// assertions, so every service suite applies the same leak discipline.
//
// The cleanup polls (goroutines exit asynchronously after a drain) and on
// failure reports a full stack dump of what is still running.
func CheckGoroutines(tb testing.TB) {
	tb.Helper()
	baseline := runtime.NumGoroutine()
	tb.Cleanup(func() {
		deadline := time.Now().Add(leakWait)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= baseline+leakSlack {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		tb.Errorf("goroutines leaked: baseline=%d now=%d (slack %d)\n%s",
			baseline, now, leakSlack, buf[:n])
	})
}
