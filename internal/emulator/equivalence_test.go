package emulator

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"synapse/internal/atoms"
	"synapse/internal/machine"
	"synapse/internal/profile"
)

// emulateBoth replays p twice — through the legacy serial loop and the
// batched columnar path — under otherwise identical options.
func emulateBoth(t *testing.T, p *profile.Profile, mod func(*Options)) (*Report, *Report) {
	t.Helper()
	run := func(serial bool) *Report {
		opts := Options{
			Atoms:  atoms.Config{Machine: machine.MustGet(machine.Comet)},
			Serial: serial,
		}
		if mod != nil {
			mod(&opts)
		}
		rep, err := Emulate(context.Background(), p, opts)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	return run(true), run(false)
}

// reportsIdentical asserts bit-for-bit equality of everything the serial and
// batched paths must agree on.
func reportsIdentical(t *testing.T, serial, batched *Report) bool {
	t.Helper()
	ok := true
	fail := func(format string, args ...interface{}) {
		t.Errorf(format, args...)
		ok = false
	}
	if serial.Samples != batched.Samples {
		fail("samples: serial %d, batched %d", serial.Samples, batched.Samples)
	}
	if serial.Tx != batched.Tx {
		fail("Tx: serial %v, batched %v", serial.Tx, batched.Tx)
	}
	if serial.Startup != batched.Startup {
		fail("startup: serial %v, batched %v", serial.Startup, batched.Startup)
	}
	if serial.Consumed != batched.Consumed {
		fail("consumed: serial %+v, batched %+v", serial.Consumed, batched.Consumed)
	}
	for _, atom := range []string{"compute", "storage", "memory", "network"} {
		if s, b := serial.BusyTime(atom), batched.BusyTime(atom); s != b {
			fail("busy %s: serial %v, batched %v", atom, s, b)
		}
	}
	sd, bd := serial.SampleDurations(), batched.SampleDurations()
	if len(sd) != len(bd) {
		fail("durations: serial %d, batched %d", len(sd), len(bd))
		return ok
	}
	for i := range sd {
		if sd[i] != bd[i] {
			fail("duration %d: serial %v, batched %v", i, sd[i], bd[i])
		}
	}
	if len(serial.Trace) != len(batched.Trace) {
		fail("trace: serial %d, batched %d", len(serial.Trace), len(batched.Trace))
		return ok
	}
	for i := range serial.Trace {
		s, b := serial.Trace[i], batched.Trace[i]
		if s.Index != b.Index || s.Start != b.Start || s.Dur != b.Dur || s.Consumed != b.Consumed {
			fail("trace %d: serial %+v, batched %+v", i, s, b)
		}
		if len(s.Spans) != len(b.Spans) {
			fail("trace %d spans: serial %v, batched %v", i, s.Spans, b.Spans)
			continue
		}
		for j := range s.Spans {
			if s.Spans[j] != b.Spans[j] {
				fail("trace %d span %d: serial %+v, batched %+v", i, j, s.Spans[j], b.Spans[j])
			}
		}
	}
	return ok
}

// The batched path must reproduce the serial reference bit-for-bit across
// the property-test profile space.
func TestBatchedMatchesSerialProperty(t *testing.T) {
	f := func(cycles, rw, mem []uint32) bool {
		p := randomProfile(cycles, rw, mem)
		serial, batched := emulateBoth(t, p, nil)
		return reportsIdentical(t, serial, batched)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Equivalence must hold under every configuration knob that feeds the
// request split: MPI duplication, disabled atoms, profiled blocks, loads.
func TestBatchedMatchesSerialConfigs(t *testing.T) {
	p := randomProfile(
		[]uint32{5_000_000, 0, 1_000_000, 3_000_000, 0, 800_000},
		[]uint32{1 << 22, 1 << 20, 0, 1 << 24, 1 << 18, 0},
		[]uint32{1 << 20, 0, 1 << 22, 0, 1 << 19, 1 << 21},
	)
	mods := map[string]func(*Options){
		"default": nil,
		"mpi-duplication": func(o *Options) {
			o.Atoms.Workers = 4
			o.Atoms.Mode = machine.ModeMPI
		},
		"openmp": func(o *Options) {
			o.Atoms.Workers = 8
			o.Atoms.Mode = machine.ModeOpenMP
		},
		"disabled-atoms": func(o *Options) {
			o.DisableStorage = true
			o.DisableNetwork = true
		},
		"profiled-blocks": func(o *Options) {
			o.Atoms.UseProfiledBlocks = true
		},
		"loads": func(o *Options) {
			o.Atoms.Load = 0.3
			o.Atoms.DiskLoad = 0.2
			o.Atoms.MemLoad = 0.1
		},
		"no-driver-costs": func(o *Options) {
			o.StartupDelay = -1
			o.SampleOverhead = -1
		},
		"c-kernel": func(o *Options) {
			o.Atoms.Kernel = machine.KernelC
		},
	}
	for name, mod := range mods {
		t.Run(name, func(t *testing.T) {
			serial, batched := emulateBoth(t, p, mod)
			reportsIdentical(t, serial, batched)
		})
	}
}

// Equivalence of aggregates must hold at every trace level, and each level
// must retain exactly the detail it promises.
func TestTraceLevels(t *testing.T) {
	p := randomProfile(
		[]uint32{2_000_000, 1_000_000, 0, 500_000},
		[]uint32{1 << 20, 0, 1 << 22, 1 << 18},
		[]uint32{0, 1 << 20, 1 << 19, 0},
	)
	full, _ := emulateBoth(t, p, func(o *Options) { o.TraceLevel = TraceFull })
	for _, serial := range []bool{true, false} {
		for _, level := range []TraceLevel{TraceFull, TraceDurations, TraceNone} {
			opts := Options{
				Atoms:      atoms.Config{Machine: machine.MustGet(machine.Comet)},
				Serial:     serial,
				TraceLevel: level,
			}
			rep, err := Emulate(context.Background(), p, opts)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Tx != full.Tx || rep.Consumed != full.Consumed {
				t.Errorf("serial=%v level=%v: aggregates diverge (Tx %v vs %v)",
					serial, level, rep.Tx, full.Tx)
			}
			if got := rep.BusyTime("compute"); got != full.BusyTime("compute") {
				t.Errorf("serial=%v level=%v: busy time diverges", serial, level)
			}
			switch level {
			case TraceFull:
				if len(rep.Trace) != len(p.Samples) {
					t.Errorf("serial=%v: full trace has %d of %d samples", serial, len(rep.Trace), len(p.Samples))
				}
			case TraceDurations:
				if len(rep.Trace) != 0 || len(rep.SampleDurations()) != len(p.Samples) {
					t.Errorf("serial=%v: durations level kept trace=%d durs=%d",
						serial, len(rep.Trace), len(rep.SampleDurations()))
				}
			case TraceNone:
				if len(rep.Trace) != 0 || rep.SampleDurations() != nil {
					t.Errorf("serial=%v: none level kept detail", serial)
				}
			}
		}
	}
}

// The batched fast path must be allocation-free per sample: a whole replay
// costs a fixed number of allocations (buffers, report, atom set), so the
// per-sample rate vanishes as profiles grow, where the serial loop paid a
// handful of allocations on every sample. The ISSUE's acceptance bar is
// ≥10× fewer allocs/sample; assert a large margin over it.
func TestBatchedReplayAllocCeiling(t *testing.T) {
	const n = 4096
	p := benchReplayProfile(n)
	m := machine.MustGet(machine.Thinkie)
	run := func(serial bool, level TraceLevel) float64 {
		return testing.AllocsPerRun(5, func() {
			_, err := Emulate(context.Background(), p, Options{
				Atoms:      atoms.Config{Machine: m},
				Serial:     serial,
				TraceLevel: level,
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
	serialFull := run(true, TraceFull)
	batchedFull := run(false, TraceFull)
	batchedNone := run(false, TraceNone)

	if perSample := batchedNone / n; perSample > 0.1 {
		t.Errorf("batched TraceNone replay: %.3f allocs/sample, want < 0.1 (total %.0f)", perSample, batchedNone)
	}
	if batchedFull*10 > serialFull {
		t.Errorf("batched full-trace replay allocates %.0f, serial %.0f: want ≥10× reduction", batchedFull, serialFull)
	}
	t.Logf("allocs per replay of %d samples: serial=%.0f batched(full)=%.0f batched(none)=%.0f",
		n, serialFull, batchedFull, batchedNone)
}

// benchReplayProfile builds a deterministic mixed-demand profile of n
// samples: the workload shape of the paper's Fig 2 (alternating and
// overlapping compute/storage/memory/network demand).
func benchReplayProfile(n int) *profile.Profile {
	p := profile.New("replay-bench", nil)
	p.SampleRate = 1
	for i := 0; i < n; i++ {
		v := map[string]float64{}
		switch i % 4 {
		case 0:
			v[profile.MetricCPUCycles] = 2.5e9
			v[profile.MetricCPUFLOPs] = 1e8
		case 1:
			v[profile.MetricIOWriteBytes] = 64 << 20
			v[profile.MetricIOReadBytes] = 16 << 20
		case 2:
			v[profile.MetricCPUCycles] = 1.2e9
			v[profile.MetricMemAlloc] = 32 << 20
			v[profile.MetricMemFree] = 16 << 20
		case 3:
			v[profile.MetricNetReadBytes] = 4 << 20
			v[profile.MetricNetWriteBytes] = 8 << 20
			v[profile.MetricCPUCycles] = 6e8
		}
		_ = p.Append(profile.Sample{T: time.Duration(i+1) * time.Second, Values: v})
	}
	p.Finalize(time.Duration(n+1) * time.Second)
	return p
}
