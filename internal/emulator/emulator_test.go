package emulator

import (
	"context"
	"math"
	"testing"
	"time"

	"synapse/internal/app"
	"synapse/internal/atoms"
	"synapse/internal/clock"
	"synapse/internal/machine"
	"synapse/internal/proc"
	"synapse/internal/profile"
	"synapse/internal/watcher"
)

var t0 = time.Date(2016, 5, 23, 0, 0, 0, 0, time.UTC)

// profileOn profiles an MDSim run on the named machine in simulation.
func profileOn(t *testing.T, steps int, machineName string, rate float64) *profile.Profile {
	t.Helper()
	m := machine.MustGet(machineName)
	sp, err := proc.Execute(app.MDSim(steps), m, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr := &watcher.Profiler{Rate: rate, Clock: clock.NewAutoSim(t0), Machine: m}
	p, err := pr.Run(context.Background(), watcher.NewSimTarget(sp))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func emulateOn(t *testing.T, p *profile.Profile, machineName string, mod func(*Options)) *Report {
	t.Helper()
	opts := Options{Atoms: atoms.Config{Machine: machine.MustGet(machineName)}}
	if mod != nil {
		mod(&opts)
	}
	rep, err := Emulate(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// E.2 (Fig 5): emulating on the profiling resource reproduces Tx within a
// few percent once runs are much longer than the startup delay.
func TestSameResourceFidelity(t *testing.T) {
	p := profileOn(t, 1_000_000, machine.Thinkie, 1) // Tx ≈ 53 s
	rep := emulateOn(t, p, machine.Thinkie, nil)
	appTx := p.Duration.Seconds()
	emuTx := rep.Tx.Seconds()
	diff := (emuTx - appTx) / appTx * 100
	// Thinkie's asm kernel bias is +2%, plus 1s startup over ~53s ≈ +2%.
	if diff < 0 || diff > 10 {
		t.Errorf("same-resource diff = %.1f%%, want small positive (startup+bias)", diff)
	}
}

// E.2 (Fig 5): the ~1s emulator startup dominates short runs.
func TestStartupDominatesShortRuns(t *testing.T) {
	p := profileOn(t, 10_000, machine.Thinkie, 10) // Tx ≈ 0.9 s
	rep := emulateOn(t, p, machine.Thinkie, nil)
	appTx := p.Duration.Seconds()
	diff := (rep.Tx.Seconds() - appTx) / appTx * 100
	if diff < 50 {
		t.Errorf("short-run diff = %.1f%%, want startup-dominated (>50%%)", diff)
	}
}

// E.2 (Fig 7): emulation ≈40% faster than the application on Stampede,
// ≈33% slower on Archer, for long runs.
func TestCrossResourcePortability(t *testing.T) {
	p := profileOn(t, 5_000_000, machine.Thinkie, 1)

	check := func(target string, steps int, wantDiff, tol float64) {
		m := machine.MustGet(target)
		sp, err := proc.Execute(app.MDSim(steps), m, proc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep := emulateOn(t, p, target, nil)
		appTx := sp.Duration().Seconds()
		diff := (rep.Tx.Seconds() - appTx) / appTx * 100
		if math.Abs(diff-wantDiff) > tol {
			t.Errorf("%s: emulation diff = %.1f%%, want %.0f%%±%.0f", target, diff, wantDiff, tol)
		}
	}
	check(machine.Stampede, 5_000_000, -40, 5)
	check(machine.Archer, 5_000_000, +33, 5)
}

// Sample order is preserved and every sample is replayed exactly once.
func TestAllSamplesReplayed(t *testing.T) {
	p := profileOn(t, 200_000, machine.Thinkie, 2)
	rep := emulateOn(t, p, machine.Thinkie, nil)
	if rep.Samples != len(p.Samples) {
		t.Errorf("replayed %d samples, profile has %d", rep.Samples, len(p.Samples))
	}
	if len(rep.SampleDurations()) != rep.Samples {
		t.Error("per-sample durations incomplete")
	}
}

// The consumption totals match the profile's totals (modulo kernel bias).
func TestConsumptionMatchesProfile(t *testing.T) {
	p := profileOn(t, 500_000, machine.Comet, 1)
	rep := emulateOn(t, p, machine.Comet, func(o *Options) {
		o.Atoms.Kernel = machine.KernelC
	})
	kp, _ := machine.MustGet(machine.Comet).Kernel(machine.KernelC)
	wantCycles := p.Total(profile.MetricCPUCycles) * kp.CalibBias
	if rel := math.Abs(rep.Consumed.Cycles-wantCycles) / wantCycles; rel > 0.02 {
		t.Errorf("consumed cycles = %v, want ≈%v (bias applied)", rep.Consumed.Cycles, wantCycles)
	}
	if got, want := rep.Consumed.WriteBytes, p.Total(profile.MetricIOWriteBytes); math.Abs(got-want) > 1 {
		t.Errorf("write bytes = %v, want %v", got, want)
	}
}

// E.3: C kernel reproduces cycles better than ASM on Comet and Supermic.
func TestKernelFidelityOrdering(t *testing.T) {
	for _, mn := range []string{machine.Comet, machine.Supermic} {
		p := profileOn(t, 100_000, mn, 10)
		target := p.Total(profile.MetricCPUCycles)
		var errs = map[string]float64{}
		for _, k := range []string{machine.KernelC, machine.KernelASM} {
			rep := emulateOn(t, p, mn, func(o *Options) {
				o.Atoms.Kernel = k
				o.DisableStorage = true
				o.DisableMemory = true
			})
			errs[k] = math.Abs(rep.Consumed.Cycles-target) / target
		}
		if errs[machine.KernelC] >= errs[machine.KernelASM] {
			t.Errorf("%s: C kernel error (%.3f) should beat ASM (%.3f)",
				mn, errs[machine.KernelC], errs[machine.KernelASM])
		}
	}
}

// E.3: emulation IPC ordering app < C < ASM.
func TestEmulationIPCOrdering(t *testing.T) {
	p := profileOn(t, 100_000, machine.Comet, 10)
	appIPC := p.Total(profile.MetricCPUInstructions) / p.Total(profile.MetricCPUCycles)
	var ipc = map[string]float64{}
	for _, k := range []string{machine.KernelC, machine.KernelASM} {
		rep := emulateOn(t, p, machine.Comet, func(o *Options) {
			o.Atoms.Kernel = k
		})
		ipc[k] = rep.IPC()
	}
	if !(appIPC < ipc[machine.KernelC] && ipc[machine.KernelC] < ipc[machine.KernelASM]) {
		t.Errorf("IPC ordering violated: app %.2f, C %.2f, ASM %.2f",
			appIPC, ipc[machine.KernelC], ipc[machine.KernelASM])
	}
}

// E.4 (Fig 12): parallel emulation scales, with the OpenMP/MPI crossover
// between Titan and Supermic.
func TestParallelEmulationCrossover(t *testing.T) {
	p := profileOn(t, 1_000_000, machine.Thinkie, 1)
	run := func(mn string, n int, mode machine.Mode) time.Duration {
		rep := emulateOn(t, p, mn, func(o *Options) {
			o.Atoms.Workers = n
			o.Atoms.Mode = mode
			o.DisableStorage = true
			o.DisableMemory = true
		})
		return rep.Tx
	}
	titanSerial := run(machine.Titan, 1, machine.ModeSerial)
	titanOMP := run(machine.Titan, 16, machine.ModeOpenMP)
	titanMPI := run(machine.Titan, 16, machine.ModeMPI)
	if titanOMP >= titanSerial/2 {
		t.Errorf("titan OpenMP x16 (%v) should be much faster than serial (%v)", titanOMP, titanSerial)
	}
	if titanOMP >= titanMPI {
		t.Errorf("titan: OpenMP (%v) should beat MPI (%v)", titanOMP, titanMPI)
	}
	smOMP := run(machine.Supermic, 20, machine.ModeOpenMP)
	smMPI := run(machine.Supermic, 20, machine.ModeMPI)
	if smMPI >= smOMP {
		t.Errorf("supermic: MPI (%v) should beat OpenMP (%v)", smMPI, smOMP)
	}
}

// MPI duplicates non-compute resource usage; OpenMP shares it.
func TestMPIDuplicatesIO(t *testing.T) {
	p := profileOn(t, 500_000, machine.Thinkie, 1)
	omp := emulateOn(t, p, machine.Supermic, func(o *Options) {
		o.Atoms.Workers = 4
		o.Atoms.Mode = machine.ModeOpenMP
	})
	mpi := emulateOn(t, p, machine.Supermic, func(o *Options) {
		o.Atoms.Workers = 4
		o.Atoms.Mode = machine.ModeMPI
	})
	if mpi.Consumed.WriteBytes < 3.9*omp.Consumed.WriteBytes {
		t.Errorf("MPI should duplicate writes: %v vs %v", mpi.Consumed.WriteBytes, omp.Consumed.WriteBytes)
	}
}

// Sampling effects (Fig 2): replaying a coarser profile of a workload whose
// compute and I/O alternate allows more intra-sample concurrency, so the
// emulated Tx can only shrink or stay equal.
func TestCoarserSamplingIncreasesConcurrency(t *testing.T) {
	mkProfile := func() *profile.Profile {
		p := profile.New("alternating", nil)
		p.SampleRate = 2
		for i := 0; i < 20; i++ {
			v := map[string]float64{}
			if i%2 == 0 {
				v[profile.MetricCPUCycles] = 3e9
			} else {
				v[profile.MetricIOWriteBytes] = 64 << 20
			}
			_ = p.Append(profile.Sample{T: time.Duration(i+1) * 500 * time.Millisecond, Values: v})
		}
		p.Finalize(10 * time.Second)
		return p
	}
	fine := mkProfile()
	coarse, err := profile.Resample(fine, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	repFine := emulateOn(t, fine, machine.Thinkie, nil)
	repCoarse := emulateOn(t, coarse, machine.Thinkie, nil)
	if repCoarse.Tx > repFine.Tx {
		t.Errorf("coarser replay (%v) should not exceed finer (%v)", repCoarse.Tx, repFine.Tx)
	}
	// Consumption is identical either way.
	if math.Abs(repCoarse.Consumed.WriteBytes-repFine.Consumed.WriteBytes) > 1 {
		t.Error("resampling must conserve replayed writes")
	}
}

// The per-sample barrier: a sample's duration is the max of its atom
// durations, so mixed samples cost no more than the sum and no less than
// the slowest atom.
func TestBarrierSemantics(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	p := profile.New("mixed", nil)
	cycles, bytes := 2.66e9, float64(64<<20) // ~1s compute, ~0.22s write
	_ = p.Append(profile.Sample{T: time.Second, Values: map[string]float64{
		profile.MetricCPUCycles:    cycles,
		profile.MetricIOWriteBytes: bytes,
	}})
	p.Finalize(time.Second)
	rep := emulateOn(t, p, machine.Thinkie, func(o *Options) {
		o.StartupDelay = -1
		o.SampleOverhead = -1
	})
	kp, _ := m.Kernel(machine.KernelASM)
	computeDur := m.ComputeTime(math.Ceil(cycles/kp.Chunk()) * kp.Chunk() * kp.CalibBias)
	fs, _ := m.Filesystem("")
	ioDur := fs.WriteTime(int64(bytes), atoms.DefaultIOBlock)
	want := computeDur
	if ioDur > want {
		want = ioDur
	}
	if d := rep.SampleDurations()[0]; d != want {
		t.Errorf("sample duration = %v, want max(compute %v, io %v)", d, computeDur, ioDur)
	}
}

func TestDisableSwitches(t *testing.T) {
	p := profileOn(t, 100_000, machine.Thinkie, 1)
	rep := emulateOn(t, p, machine.Thinkie, func(o *Options) {
		o.DisableStorage = true
		o.DisableMemory = true
		o.DisableNetwork = true
	})
	if rep.Consumed.WriteBytes != 0 || rep.Consumed.AllocBytes != 0 {
		t.Error("disabled atoms should consume nothing")
	}
	if rep.Consumed.Cycles == 0 {
		t.Error("compute should still run")
	}
}

func TestEmptyProfileJustStartsUp(t *testing.T) {
	p := profile.New("empty", nil)
	p.Finalize(0)
	rep := emulateOn(t, p, machine.Thinkie, nil)
	if rep.Samples != 0 {
		t.Error("no samples to replay")
	}
	if rep.Tx != DefaultStartupDelay {
		t.Errorf("Tx = %v, want just the startup delay", rep.Tx)
	}
}

func TestEmulateValidation(t *testing.T) {
	if _, err := Emulate(context.Background(), nil, Options{}); err == nil {
		t.Error("nil profile should fail")
	}
	p := profileOn(t, 1000, machine.Thinkie, 1)
	if _, err := Emulate(context.Background(), p, Options{}); err == nil {
		t.Error("missing machine should fail")
	}
}

func TestEmulateCancellation(t *testing.T) {
	p := profileOn(t, 1_000_000, machine.Thinkie, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Emulate(ctx, p, Options{Atoms: atoms.Config{Machine: machine.MustGet(machine.Thinkie)}})
	if err == nil {
		t.Error("cancelled context should abort")
	}
}

// Real-mode smoke test with a tiny profile.
func TestRealEmulationSmoke(t *testing.T) {
	p := profile.New("tiny", nil)
	_ = p.Append(profile.Sample{T: 100 * time.Millisecond, Values: map[string]float64{
		profile.MetricCPUCycles:    5e6, // ~2ms on any host
		profile.MetricIOWriteBytes: 64 << 10,
		profile.MetricMemAlloc:     1 << 20,
	}})
	p.Finalize(100 * time.Millisecond)
	rep, err := Emulate(context.Background(), p, Options{
		Atoms:      atoms.Config{Machine: machine.Host(), WriteBlock: 16 << 10},
		Real:       true,
		ScratchDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tx <= 0 {
		t.Error("real emulation took no time")
	}
	if rep.Consumed.WriteBytes != 64<<10 {
		t.Errorf("real write bytes = %v", rep.Consumed.WriteBytes)
	}
}

// The startup delay can be customized or disabled.
func TestStartupOverride(t *testing.T) {
	p := profile.New("empty", nil)
	p.Finalize(0)
	rep := emulateOn(t, p, machine.Thinkie, func(o *Options) { o.StartupDelay = 2 * time.Second })
	if rep.Tx != 2*time.Second {
		t.Errorf("custom startup: Tx = %v", rep.Tx)
	}
	rep = emulateOn(t, p, machine.Thinkie, func(o *Options) { o.StartupDelay = -1 })
	if rep.Tx != 0 {
		t.Errorf("disabled startup: Tx = %v", rep.Tx)
	}
}

// The paper's E.2 sanity check: profiling the emulation reports the same
// resource consumption the emulation performed, and agrees with the original
// application's profile up to the kernel calibration bias.
func TestReprofilingTheEmulation(t *testing.T) {
	p := profileOn(t, 500_000, machine.Comet, 2)
	rep := emulateOn(t, p, machine.Comet, func(o *Options) {
		o.Atoms.Kernel = machine.KernelC
	})

	m := machine.MustGet(machine.Comet)
	pr := &watcher.Profiler{Rate: 2, Clock: clock.NewAutoSim(t0), Machine: m}
	reprofiled, err := pr.Run(context.Background(),
		NewReportTarget(rep, p.Command, p.Tags))
	if err != nil {
		t.Fatal(err)
	}
	if err := reprofiled.Validate(); err != nil {
		t.Fatal(err)
	}
	// The re-profile sees exactly what the emulation consumed.
	if got, want := reprofiled.Total(profile.MetricCPUCycles), rep.Consumed.Cycles; math.Abs(got-want) > 1e-6*want {
		t.Errorf("re-profiled cycles = %v, emulation consumed %v", got, want)
	}
	if got, want := reprofiled.Duration, rep.Tx; got != want {
		t.Errorf("re-profiled Tx = %v, emulation Tx = %v", got, want)
	}
	// And agrees with the original application profile up to the bias.
	kp, _ := m.Kernel(machine.KernelC)
	ratio := reprofiled.Total(profile.MetricCPUCycles) / p.Total(profile.MetricCPUCycles)
	if math.Abs(ratio-kp.CalibBias) > 0.02 {
		t.Errorf("re-profile/application cycle ratio = %v, want ≈%v", ratio, kp.CalibBias)
	}
	// Storage totals replay exactly.
	if got, want := reprofiled.Total(profile.MetricIOWriteBytes), p.Total(profile.MetricIOWriteBytes); math.Abs(got-want) > 1 {
		t.Errorf("re-profiled writes = %v, want %v", got, want)
	}
}

func TestReportTargetVisibility(t *testing.T) {
	p := profileOn(t, 10_000, machine.Thinkie, 2)
	rep := emulateOn(t, p, machine.Thinkie, nil)
	tgt := NewReportTarget(rep, "x", nil)

	// During startup nothing has been consumed.
	c, ok := tgt.Counters(rep.Startup / 2)
	if !ok || c.Cycles != 0 {
		t.Errorf("counters during startup = %+v, %v", c, ok)
	}
	// Mid-run counters are between zero and the totals.
	mid, ok := tgt.Counters(rep.Startup + (rep.Tx-rep.Startup)/2)
	if !ok {
		t.Fatal("mid-run counters unavailable")
	}
	if mid.Cycles <= 0 || mid.Cycles >= rep.Consumed.Cycles {
		t.Errorf("mid-run cycles = %v, total %v", mid.Cycles, rep.Consumed.Cycles)
	}
	// After exit only finals are available.
	if _, ok := tgt.Counters(rep.Tx); ok {
		t.Error("counters should vanish at exit")
	}
	fin, ok := tgt.Final(rep.Tx)
	if !ok || fin.Cycles != rep.Consumed.Cycles {
		t.Errorf("finals = %+v, %v", fin, ok)
	}
}
