// Package emulator implements Synapse's emulation module: the global loop
// that feeds profile samples to the emulation atoms in the order the samples
// were collected (paper §4, §4.4).
//
// Replay semantics, from the paper:
//
//   - All resource consumptions of one sample start immediately and
//     concurrently when the sample starts; there is no ordering between
//     resource types inside a sample.
//   - A sample ends when its last resource consumption completes (barrier);
//     only then does the next sample start.
//   - All timing information in the profile is disregarded: emulation
//     consumes the same amount of resources, not the same timings.
//
// Preserving sample order preserves the implicit cross-resource dependencies
// the sampling captured; the per-sample barrier is what makes profiles
// portable across machines with different relative resource speeds (Fig 3).
package emulator

import (
	"context"
	"time"

	"synapse/internal/atoms"
	"synapse/internal/clock"
	"synapse/internal/machine"
	"synapse/internal/perfcount"
	"synapse/internal/profile"
)

// DefaultStartupDelay models the emulator's fixed start-up cost (fetching
// the profile, spawning the atom threads); the paper measures ≈1 s and shows
// it dominating short emulations (Fig 5).
const DefaultStartupDelay = time.Second

// DefaultSampleOverhead is the driver's bookkeeping cost per replayed sample
// ("a tight loop that feeds into the Synapse atoms", paper §4.5).
const DefaultSampleOverhead = 200 * time.Microsecond

// TraceLevel selects how much per-sample detail Emulate records. Most
// experiments only need the aggregate report (Tx, Consumed, BusyTime), and
// skipping trace collection keeps the replay loop allocation-free.
type TraceLevel int

const (
	// TraceFull records the complete per-sample, per-atom timeline
	// (Report.Trace). The zero value, for compatibility with callers that
	// predate the knob.
	TraceFull TraceLevel = iota
	// TraceDurations records only each sample's barrier duration
	// (Report.SampleDurations), not the per-atom spans.
	TraceDurations
	// TraceNone records aggregates only.
	TraceNone
)

// Options configure one emulation run.
type Options struct {
	// Atoms carries the tunables: machine, kernel choice, I/O blocks,
	// filesystem, parallelism, artificial load.
	Atoms atoms.Config
	// Real selects real host-resource consumption instead of the modeled
	// machine. ScratchDir is the real storage atom's directory.
	Real       bool
	ScratchDir string
	// Clock paces the run; clock.AutoSim (default for !Real) makes
	// simulated emulation instantaneous.
	Clock clock.Clock
	// StartupDelay and SampleOverhead model driver costs in simulated
	// mode; negative disables, zero selects the defaults.
	StartupDelay   time.Duration
	SampleOverhead time.Duration
	// DisableStorage/DisableMemory/DisableNetwork turn off those atoms —
	// the paper disables memory and I/O emulation in E.3/E.4.
	DisableStorage bool
	DisableMemory  bool
	DisableNetwork bool
	// TraceLevel tunes per-sample detail retention (TraceFull default).
	TraceLevel TraceLevel
	// Serial forces the legacy per-sample replay loop in simulated mode.
	// The default batched path reads the profile's columnar view and
	// feeds runs of samples through the atoms' ConsumeBatch fast path;
	// both produce bit-identical reports (see the equivalence tests).
	// Serial is kept as the reference implementation and the benchmark
	// baseline.
	Serial bool
}

// AtomSpan is one atom's activity within one replayed sample.
type AtomSpan struct {
	Atom string
	Dur  time.Duration
}

// SampleTrace records how one sample replayed: when it started relative to
// the first sample, how long each atom ran, and the barrier duration.
type SampleTrace struct {
	Index int
	Start time.Duration
	Spans []AtomSpan
	// Dur is the sample's barrier duration: the slowest atom plus driver
	// overhead.
	Dur time.Duration
	// Consumed is what the atoms consumed replaying this sample.
	Consumed perfcount.Counters
}

// Report is the outcome of an emulation run.
type Report struct {
	// Tx is the emulation's execution time (on the run's clock).
	Tx time.Duration
	// Startup is the modeled or measured start-up delay included in Tx.
	Startup time.Duration
	// Samples is the number of replayed samples.
	Samples int
	// Consumed aggregates what the atoms consumed.
	Consumed perfcount.Counters
	// Trace holds the per-sample, per-atom replay timeline (paper Fig 2:
	// within a sample all atoms run concurrently; samples are ordered).
	// Populated only at TraceFull.
	Trace []SampleTrace
	// Machine is the emulation resource's name.
	Machine string
	// Kernel is the compute kernel used.
	Kernel string

	// durations holds each sample's replay duration when the full trace
	// is not kept (TraceDurations), or caches the durations derived from
	// Trace on first SampleDurations call; Trace[i].Dur is the canonical
	// source at TraceFull, so the two are never stored redundantly.
	durations []time.Duration
	// busy is the per-atom busy time, accumulated in a single pass while
	// the samples replay (it used to be rescanned from the trace on every
	// BusyTime call, O(samples × atoms) per query).
	busy map[string]time.Duration
}

// SampleDurations returns each sample's replay duration, in order. At
// TraceFull the slice is derived lazily from the trace and cached; at
// TraceNone it is nil.
func (r *Report) SampleDurations() []time.Duration {
	if r.durations == nil && len(r.Trace) > 0 {
		ds := make([]time.Duration, len(r.Trace))
		for i := range r.Trace {
			ds[i] = r.Trace[i].Dur
		}
		r.durations = ds
	}
	return r.durations
}

// BusyTime returns the total time the named atom was active across samples.
// The per-atom totals are precomputed during the replay; reports assembled
// by hand fall back to scanning the trace.
func (r *Report) BusyTime(atom string) time.Duration {
	if r.busy != nil {
		return r.busy[atom]
	}
	var total time.Duration
	for _, st := range r.Trace {
		for _, sp := range st.Spans {
			if sp.Atom == atom {
				total += sp.Dur
			}
		}
	}
	return total
}

// DominantAtom returns the atom that bounded the given sample (the slowest
// span), or "" for an empty sample.
func (r *Report) DominantAtom(i int) string {
	if i < 0 || i >= len(r.Trace) {
		return ""
	}
	var name string
	var max time.Duration
	for _, sp := range r.Trace[i].Spans {
		if sp.Dur > max {
			max = sp.Dur
			name = sp.Atom
		}
	}
	return name
}

// IPC returns the consumed instructions per cycle.
func (r *Report) IPC() float64 { return r.Consumed.IPC() }

// RequestFromSample converts one profile sample into an atom request.
func RequestFromSample(s profile.Sample) atoms.Request {
	return atoms.Request{
		Cycles:        s.Get(profile.MetricCPUCycles),
		FLOPs:         s.Get(profile.MetricCPUFLOPs),
		ReadBytes:     s.Get(profile.MetricIOReadBytes),
		WriteBytes:    s.Get(profile.MetricIOWriteBytes),
		ReadOps:       s.Get(profile.MetricIOReadOps),
		WriteOps:      s.Get(profile.MetricIOWriteOps),
		AllocBytes:    s.Get(profile.MetricMemAlloc),
		FreeBytes:     s.Get(profile.MetricMemFree),
		NetReadBytes:  s.Get(profile.MetricNetReadBytes),
		NetWriteBytes: s.Get(profile.MetricNetWriteBytes),
	}
}

// dupFactor is the MPI duplication rule shared by the serial and batched
// request builders: multi-processing duplicates non-compute resource usage
// across ranks, multi-threading shares it (paper §5 E.4).
func dupFactor(cfg *atoms.Config) float64 {
	if cfg.Mode == machine.ModeMPI && cfg.Workers > 1 {
		return float64(cfg.Workers)
	}
	return 1.0
}

// splitRequest hands each atom its slice of the sample's demand, applying
// the MPI duplication rule.
func splitRequest(req atoms.Request, name string, cfg *atoms.Config) atoms.Request {
	dup := dupFactor(cfg)
	switch name {
	case "compute":
		return atoms.Request{Cycles: req.Cycles, FLOPs: req.FLOPs}
	case "storage":
		return atoms.Request{
			ReadBytes: req.ReadBytes * dup, WriteBytes: req.WriteBytes * dup,
			ReadOps: req.ReadOps * dup, WriteOps: req.WriteOps * dup,
		}
	case "memory":
		return atoms.Request{AllocBytes: req.AllocBytes * dup, FreeBytes: req.FreeBytes * dup}
	case "network":
		return atoms.Request{NetReadBytes: req.NetReadBytes * dup, NetWriteBytes: req.NetWriteBytes * dup}
	default:
		return atoms.Request{}
	}
}

// Emulate replays the profile's samples through the atoms and returns the
// run report. It is the one-shot form of NewRun + Run.Emulate; callers that
// replay the same profile repeatedly should hold a Run instead.
func Emulate(ctx context.Context, p *profile.Profile, opts Options) (*Report, error) {
	r, err := NewRun(p, opts)
	if err != nil {
		return nil, err
	}
	return r.Emulate(ctx)
}

// record books one replayed sample into the report: busy times always, the
// timeline or the bare duration according to the trace level.
func (r *Report) record(level TraceLevel, i int, start time.Duration, spans []AtomSpan, dur time.Duration, consumed perfcount.Counters) {
	for _, sp := range spans {
		r.busy[sp.Atom] += sp.Dur
	}
	switch level {
	case TraceFull:
		r.Trace = append(r.Trace, SampleTrace{
			Index: i, Start: start, Spans: spans, Dur: dur, Consumed: consumed,
		})
	case TraceDurations:
		r.durations = append(r.durations, dur)
	}
	r.Consumed = r.Consumed.Add(consumed)
	r.Samples++
}

// replaySerial is the legacy per-sample loop: four interface-dispatched
// Consume calls and a fresh span slice per sample. It is retained as the
// reference implementation the batched path must match bit-for-bit, and as
// the baseline for the replay benchmarks.
func replaySerial(ctx context.Context, set []atoms.Atom, p *profile.Profile, cfg *atoms.Config, level TraceLevel, overhead time.Duration, clk clock.Clock, rep *Report) (time.Duration, error) {
	var cursor time.Duration
	for i, s := range p.Samples {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		default:
		}
		req := RequestFromSample(s)
		spans, dur, consumed, err := replaySample(ctx, set, req, cfg)
		if err != nil {
			return 0, err
		}
		dur += overhead
		rep.record(level, i, cursor, spans, dur, consumed)
		cursor += dur
		clk.Sleep(dur)
	}
	return cursor, nil
}

// replayBatchSize bounds the working set of the batched replay: requests and
// results are staged in fixed buffers of this many samples, so memory stays
// flat no matter how long the profile is while per-sample dispatch overhead
// is amortized away.
const replayBatchSize = 1024

// replayBatched is the simulated fast path: it reads the profile's columnar
// view, materializes atom requests batch-by-batch, and feeds each atom a
// whole run of samples through its ConsumeBatch fast path. All buffers are
// preallocated; per sample it performs no map lookups, no interface
// dispatch, and (at TraceNone/TraceDurations) no allocations. The produced
// report is bit-identical to replaySerial's. A non-nil sc (whose set is
// the set argument) lends its staging buffers, so pooled replays do not
// reallocate them; a nil sc allocates per call.
func replayBatched(ctx context.Context, set []atoms.Atom, p *profile.Profile, cfg *atoms.Config, level TraceLevel, overhead time.Duration, clk clock.Clock, rep *Report, sc *replayScratch) (time.Duration, error) {
	cols := p.Columns()
	n := cols.N
	if n == 0 {
		return 0, nil
	}
	// The MPI duplication rule of splitRequest, applied once while
	// materializing requests.
	dup := dupFactor(cfg)

	bs := replayBatchSize
	if n < bs {
		bs = n
	}
	var reqs []atoms.Request
	var results []atoms.Result
	var busy []time.Duration
	var names []string
	if sc != nil {
		if cap(sc.reqs) < bs {
			sc.reqs = make([]atoms.Request, bs)
			sc.results = make([]atoms.Result, len(set)*bs)
		}
		if cap(sc.busy) < len(set) {
			sc.busy = make([]time.Duration, len(set))
		}
		reqs = sc.reqs[:bs]
		results = sc.results[:len(set)*bs]
		busy = sc.busy[:len(set)]
		for ai := range busy {
			busy[ai] = 0
		}
		names = sc.names
	} else {
		reqs = make([]atoms.Request, bs)
		results = make([]atoms.Result, len(set)*bs)
		busy = make([]time.Duration, len(set))
		names = make([]string, len(set))
		for ai, a := range set {
			names[ai] = a.Name()
		}
	}

	// Span storage for the full trace is carved out of one growing arena;
	// most samples exercise one or two atoms, so 2N is a generous start.
	var spanArena []AtomSpan
	switch level {
	case TraceFull:
		rep.Trace = make([]SampleTrace, 0, n)
		spanArena = make([]AtomSpan, 0, 2*n)
	case TraceDurations:
		rep.durations = make([]time.Duration, 0, n)
	}

	var cursor time.Duration
	for lo := 0; lo < n; lo += bs {
		hi := lo + bs
		if hi > n {
			hi = n
		}
		m := hi - lo
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		// Gather: contiguous column reads into request structs.
		for i := 0; i < m; i++ {
			j := lo + i
			reqs[i] = atoms.Request{
				Cycles:        cols.Cycles[j],
				FLOPs:         cols.FLOPs[j],
				ReadBytes:     cols.ReadBytes[j] * dup,
				WriteBytes:    cols.WriteBytes[j] * dup,
				ReadOps:       cols.ReadOps[j] * dup,
				WriteOps:      cols.WriteOps[j] * dup,
				AllocBytes:    cols.AllocBytes[j] * dup,
				FreeBytes:     cols.FreeBytes[j] * dup,
				NetReadBytes:  cols.NetReadBytes[j] * dup,
				NetWriteBytes: cols.NetWriteBytes[j] * dup,
			}
		}
		// Consume: one batch call per atom. Every atom reads only its own
		// resource's fields, so the same request slice serves all of them
		// (splitRequest's field selection, without the copies).
		for ai, a := range set {
			if err := atoms.ConsumeBatch(ctx, a, reqs[:m], results[ai*bs:ai*bs+m]); err != nil {
				return 0, err
			}
		}
		// Fold: per-sample barrier (max over atoms) and consumption, in
		// the same atom order as the serial loop so float sums match.
		for i := 0; i < m; i++ {
			var max time.Duration
			var consumed perfcount.Counters
			spanLo := len(spanArena)
			for ai := range set {
				res := &results[ai*bs+i]
				if res.Dur > max {
					max = res.Dur
				}
				if res.Dur > 0 {
					busy[ai] += res.Dur
					if level == TraceFull {
						spanArena = append(spanArena, AtomSpan{Atom: names[ai], Dur: res.Dur})
					}
				}
				consumed.Accumulate(&res.Consumed)
			}
			dur := max + overhead
			switch level {
			case TraceFull:
				var spans []AtomSpan
				if spanHi := len(spanArena); spanHi > spanLo {
					spans = spanArena[spanLo:spanHi:spanHi]
				}
				rep.Trace = append(rep.Trace, SampleTrace{
					Index: lo + i, Start: cursor, Spans: spans, Dur: dur, Consumed: consumed,
				})
			case TraceDurations:
				rep.durations = append(rep.durations, dur)
			}
			cursor += dur
			rep.Consumed.Accumulate(&consumed)
			rep.Samples++
		}
	}
	for ai := range set {
		if busy[ai] > 0 {
			rep.busy[names[ai]] += busy[ai]
		}
	}
	// One sleep for the whole replay: the simulated clock lands on the
	// same instant as the serial loop's per-sample sleeps.
	clk.Sleep(cursor)
	return cursor, nil
}

// replayReal replays samples against the host through a persistent worker
// pool: one goroutine per atom for the whole run, instead of spawning four
// goroutines per sample.
func replayReal(ctx context.Context, set []atoms.Atom, p *profile.Profile, cfg *atoms.Config, level TraceLevel, overhead time.Duration, rep *Report) (time.Duration, error) {
	pool := newAtomPool(ctx, set, cfg)
	defer pool.close()
	var cursor time.Duration
	for i, s := range p.Samples {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		default:
		}
		req := RequestFromSample(s)
		wallStart := time.Now()
		spans, consumed, err := pool.replay(req)
		if err != nil {
			return 0, err
		}
		dur := time.Since(wallStart) + overhead
		rep.record(level, i, cursor, spans, dur, consumed)
		cursor += dur
	}
	return cursor, nil
}

// replaySample runs one sample through all simulated atoms and returns the
// barrier duration (the slowest atom — within a sample all consumption is
// concurrent, paper §4.4).
func replaySample(ctx context.Context, set []atoms.Atom, req atoms.Request, cfg *atoms.Config) ([]AtomSpan, time.Duration, perfcount.Counters, error) {
	var max time.Duration
	var consumed perfcount.Counters
	var spans []AtomSpan
	for _, a := range set {
		res, err := a.Consume(ctx, splitRequest(req, a.Name(), cfg))
		if err != nil {
			return nil, 0, consumed, err
		}
		if res.Dur > max {
			max = res.Dur
		}
		if res.Dur > 0 {
			spans = append(spans, AtomSpan{Atom: a.Name(), Dur: res.Dur})
		}
		consumed = consumed.Add(res.Consumed)
	}
	return spans, max, consumed, nil
}

// filterAtoms applies the disable switches.
func filterAtoms(set []atoms.Atom, opts Options) []atoms.Atom {
	out := set[:0]
	for _, a := range set {
		switch a.Name() {
		case "storage":
			if opts.DisableStorage {
				continue
			}
		case "memory":
			if opts.DisableMemory {
				continue
			}
		case "network":
			if opts.DisableNetwork {
				continue
			}
		}
		out = append(out, a)
	}
	return out
}
