// Package emulator implements Synapse's emulation module: the global loop
// that feeds profile samples to the emulation atoms in the order the samples
// were collected (paper §4, §4.4).
//
// Replay semantics, from the paper:
//
//   - All resource consumptions of one sample start immediately and
//     concurrently when the sample starts; there is no ordering between
//     resource types inside a sample.
//   - A sample ends when its last resource consumption completes (barrier);
//     only then does the next sample start.
//   - All timing information in the profile is disregarded: emulation
//     consumes the same amount of resources, not the same timings.
//
// Preserving sample order preserves the implicit cross-resource dependencies
// the sampling captured; the per-sample barrier is what makes profiles
// portable across machines with different relative resource speeds (Fig 3).
package emulator

import (
	"context"
	"fmt"
	"time"

	"synapse/internal/atoms"
	"synapse/internal/clock"
	"synapse/internal/machine"
	"synapse/internal/perfcount"
	"synapse/internal/profile"
)

// DefaultStartupDelay models the emulator's fixed start-up cost (fetching
// the profile, spawning the atom threads); the paper measures ≈1 s and shows
// it dominating short emulations (Fig 5).
const DefaultStartupDelay = time.Second

// DefaultSampleOverhead is the driver's bookkeeping cost per replayed sample
// ("a tight loop that feeds into the Synapse atoms", paper §4.5).
const DefaultSampleOverhead = 200 * time.Microsecond

// Options configure one emulation run.
type Options struct {
	// Atoms carries the tunables: machine, kernel choice, I/O blocks,
	// filesystem, parallelism, artificial load.
	Atoms atoms.Config
	// Real selects real host-resource consumption instead of the modeled
	// machine. ScratchDir is the real storage atom's directory.
	Real       bool
	ScratchDir string
	// Clock paces the run; clock.AutoSim (default for !Real) makes
	// simulated emulation instantaneous.
	Clock clock.Clock
	// StartupDelay and SampleOverhead model driver costs in simulated
	// mode; negative disables, zero selects the defaults.
	StartupDelay   time.Duration
	SampleOverhead time.Duration
	// DisableStorage/DisableMemory/DisableNetwork turn off those atoms —
	// the paper disables memory and I/O emulation in E.3/E.4.
	DisableStorage bool
	DisableMemory  bool
	DisableNetwork bool
}

// AtomSpan is one atom's activity within one replayed sample.
type AtomSpan struct {
	Atom string
	Dur  time.Duration
}

// SampleTrace records how one sample replayed: when it started relative to
// the first sample, how long each atom ran, and the barrier duration.
type SampleTrace struct {
	Index int
	Start time.Duration
	Spans []AtomSpan
	// Dur is the sample's barrier duration: the slowest atom plus driver
	// overhead.
	Dur time.Duration
	// Consumed is what the atoms consumed replaying this sample.
	Consumed perfcount.Counters
}

// Report is the outcome of an emulation run.
type Report struct {
	// Tx is the emulation's execution time (on the run's clock).
	Tx time.Duration
	// Startup is the modeled or measured start-up delay included in Tx.
	Startup time.Duration
	// Samples is the number of replayed samples.
	Samples int
	// Consumed aggregates what the atoms consumed.
	Consumed perfcount.Counters
	// SampleDurations holds each sample's replay duration, in order.
	SampleDurations []time.Duration
	// Trace holds the per-sample, per-atom replay timeline (paper Fig 2:
	// within a sample all atoms run concurrently; samples are ordered).
	Trace []SampleTrace
	// Machine is the emulation resource's name.
	Machine string
	// Kernel is the compute kernel used.
	Kernel string
}

// BusyTime returns the total time the named atom was active across samples.
func (r *Report) BusyTime(atom string) time.Duration {
	var total time.Duration
	for _, st := range r.Trace {
		for _, sp := range st.Spans {
			if sp.Atom == atom {
				total += sp.Dur
			}
		}
	}
	return total
}

// DominantAtom returns the atom that bounded the given sample (the slowest
// span), or "" for an empty sample.
func (r *Report) DominantAtom(i int) string {
	if i < 0 || i >= len(r.Trace) {
		return ""
	}
	var name string
	var max time.Duration
	for _, sp := range r.Trace[i].Spans {
		if sp.Dur > max {
			max = sp.Dur
			name = sp.Atom
		}
	}
	return name
}

// IPC returns the consumed instructions per cycle.
func (r *Report) IPC() float64 { return r.Consumed.IPC() }

// RequestFromSample converts one profile sample into an atom request.
func RequestFromSample(s profile.Sample) atoms.Request {
	return atoms.Request{
		Cycles:        s.Get(profile.MetricCPUCycles),
		FLOPs:         s.Get(profile.MetricCPUFLOPs),
		ReadBytes:     s.Get(profile.MetricIOReadBytes),
		WriteBytes:    s.Get(profile.MetricIOWriteBytes),
		ReadOps:       s.Get(profile.MetricIOReadOps),
		WriteOps:      s.Get(profile.MetricIOWriteOps),
		AllocBytes:    s.Get(profile.MetricMemAlloc),
		FreeBytes:     s.Get(profile.MetricMemFree),
		NetReadBytes:  s.Get(profile.MetricNetReadBytes),
		NetWriteBytes: s.Get(profile.MetricNetWriteBytes),
	}
}

// splitRequest hands each atom its slice of the sample's demand, applying
// the MPI duplication rule: multi-processing duplicates non-compute resource
// usage across ranks, multi-threading shares it (paper §5 E.4).
func splitRequest(req atoms.Request, name string, cfg *atoms.Config) atoms.Request {
	dup := 1.0
	if cfg.Mode == machine.ModeMPI && cfg.Workers > 1 {
		dup = float64(cfg.Workers)
	}
	switch name {
	case "compute":
		return atoms.Request{Cycles: req.Cycles, FLOPs: req.FLOPs}
	case "storage":
		return atoms.Request{
			ReadBytes: req.ReadBytes * dup, WriteBytes: req.WriteBytes * dup,
			ReadOps: req.ReadOps * dup, WriteOps: req.WriteOps * dup,
		}
	case "memory":
		return atoms.Request{AllocBytes: req.AllocBytes * dup, FreeBytes: req.FreeBytes * dup}
	case "network":
		return atoms.Request{NetReadBytes: req.NetReadBytes * dup, NetWriteBytes: req.NetWriteBytes * dup}
	default:
		return atoms.Request{}
	}
}

// Emulate replays the profile's samples through the atoms and returns the
// run report.
func Emulate(ctx context.Context, p *profile.Profile, opts Options) (*Report, error) {
	if p == nil {
		return nil, fmt.Errorf("emulator: nil profile")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg := opts.Atoms
	if cfg.Machine == nil {
		return nil, fmt.Errorf("emulator: options need a machine model")
	}

	var set []atoms.Atom
	var err error
	if opts.Real {
		set, err = atoms.NewRealSet(&cfg, opts.ScratchDir)
	} else {
		set, err = atoms.NewSimSet(&cfg)
	}
	if err != nil {
		return nil, err
	}
	set = filterAtoms(set, opts)

	clk := opts.Clock
	if clk == nil {
		if opts.Real {
			clk = clock.NewReal()
		} else {
			clk = clock.NewAutoSim(time.Unix(0, 0).UTC())
		}
	}
	startup := opts.StartupDelay
	switch {
	case startup < 0:
		startup = 0
	case startup == 0:
		startup = DefaultStartupDelay
	}
	overhead := opts.SampleOverhead
	switch {
	case overhead < 0:
		overhead = 0
	case overhead == 0:
		overhead = DefaultSampleOverhead
	}

	// Parallel runs pay the one-time worker-pool setup cost as part of
	// the startup (threads spawned / MPI ranks launched once per run).
	if cfg.Workers > 1 && cfg.Mode != machine.ModeSerial {
		startup += cfg.Machine.Threading.SetupOverhead(cfg.Workers, cfg.Mode)
	}

	start := clk.Now()
	// Start-up: locate and load the profile, spawn atom threads. In real
	// mode the construction above already cost real time; the modeled
	// delay applies to simulated runs.
	if !opts.Real && startup > 0 {
		clk.Sleep(startup)
	}

	rep := &Report{
		Machine: cfg.Machine.Name,
		Kernel:  cfg.Kernel,
		Startup: startup,
	}
	if rep.Kernel == "" {
		rep.Kernel = machine.KernelASM
	}

	var cursor time.Duration
	for i, s := range p.Samples {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		req := RequestFromSample(s)
		spans, dur, consumed, err := replaySample(ctx, set, req, &cfg, opts.Real)
		if err != nil {
			return nil, err
		}
		dur += overhead
		rep.SampleDurations = append(rep.SampleDurations, dur)
		rep.Trace = append(rep.Trace, SampleTrace{
			Index: i, Start: cursor, Spans: spans, Dur: dur, Consumed: consumed,
		})
		cursor += dur
		rep.Consumed = rep.Consumed.Add(consumed)
		rep.Samples++
		if !opts.Real {
			clk.Sleep(dur)
		}
	}

	rep.Tx = clk.Now().Sub(start)
	if !opts.Real {
		// Simulated clocks advance exactly by slept time; assemble Tx
		// from parts to avoid clock granularity concerns.
		rep.Tx = startup
		for _, d := range rep.SampleDurations {
			rep.Tx += d
		}
	}
	return rep, nil
}

// replaySample runs one sample through all atoms concurrently and waits for
// the slowest one (the paper's per-sample barrier). In simulated mode the
// atoms return modeled durations instantly and the barrier is the max; in
// real mode the consumption happens in parallel goroutines and the barrier
// is the actual wait.
func replaySample(ctx context.Context, set []atoms.Atom, req atoms.Request, cfg *atoms.Config, real bool) ([]AtomSpan, time.Duration, perfcount.Counters, error) {
	type outcome struct {
		res atoms.Result
		err error
	}
	results := make([]outcome, len(set))

	if real {
		wallStart := time.Now()
		done := make(chan int, len(set))
		for i, a := range set {
			go func(i int, a atoms.Atom) {
				res, err := a.Consume(ctx, splitRequest(req, a.Name(), cfg))
				results[i] = outcome{res, err}
				done <- i
			}(i, a)
		}
		for range set {
			<-done
		}
		var consumed perfcount.Counters
		var spans []AtomSpan
		for i, o := range results {
			if o.err != nil {
				return nil, 0, consumed, o.err
			}
			consumed = consumed.Add(o.res.Consumed)
			if o.res.Dur > 0 {
				spans = append(spans, AtomSpan{Atom: set[i].Name(), Dur: o.res.Dur})
			}
		}
		return spans, time.Since(wallStart), consumed, nil
	}

	var max time.Duration
	var consumed perfcount.Counters
	var spans []AtomSpan
	for i, a := range set {
		res, err := a.Consume(ctx, splitRequest(req, a.Name(), cfg))
		if err != nil {
			return nil, 0, consumed, err
		}
		results[i] = outcome{res, nil}
		if res.Dur > max {
			max = res.Dur
		}
		if res.Dur > 0 {
			spans = append(spans, AtomSpan{Atom: set[i].Name(), Dur: res.Dur})
		}
		consumed = consumed.Add(res.Consumed)
	}
	return spans, max, consumed, nil
}

// filterAtoms applies the disable switches.
func filterAtoms(set []atoms.Atom, opts Options) []atoms.Atom {
	out := set[:0]
	for _, a := range set {
		switch a.Name() {
		case "storage":
			if opts.DisableStorage {
				continue
			}
		case "memory":
			if opts.DisableMemory {
				continue
			}
		case "network":
			if opts.DisableNetwork {
				continue
			}
		}
		out = append(out, a)
	}
	return out
}
