package emulator

import (
	"context"
	"testing"

	"synapse/internal/atoms"
	"synapse/internal/machine"
	"synapse/internal/profile"
)

// benchReplaySamples is sized so one replay is long enough to swamp the
// per-run setup (atom construction, clock) that both paths share.
const benchReplaySamples = 8192

// benchReplay measures one replay configuration, reporting throughput in
// samples/sec — the headline number the ISSUE's ≥5× target refers to.
func benchReplay(b *testing.B, p *profile.Profile, serial bool, level TraceLevel) {
	b.Helper()
	m := machine.MustGet(machine.Thinkie)
	opts := Options{
		Atoms:      atoms.Config{Machine: m},
		Serial:     serial,
		TraceLevel: level,
	}
	// Warm the columnar cache so steady-state replay is measured (the
	// paper's experiments replay each profile many times).
	p.Columns()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Emulate(context.Background(), p, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(len(p.Samples))*float64(b.N)/secs, "samples/s")
	}
}

// BenchmarkReplaySimulated is the pre-PR serial loop: per-sample metric-map
// lookups, four interface-dispatched Consume calls and fresh span slices on
// every sample.
func BenchmarkReplaySimulated(b *testing.B) {
	benchReplay(b, benchReplayProfile(benchReplaySamples), true, TraceFull)
}

// BenchmarkReplayBatched is the columnar batched path at full trace detail.
func BenchmarkReplayBatched(b *testing.B) {
	benchReplay(b, benchReplayProfile(benchReplaySamples), false, TraceFull)
}

// BenchmarkReplayBatchedNoTrace is the batched path as experiments run it:
// aggregates only, no per-sample detail retained.
func BenchmarkReplayBatchedNoTrace(b *testing.B) {
	benchReplay(b, benchReplayProfile(benchReplaySamples), false, TraceNone)
}

// BenchmarkReplayRealPool exercises the persistent worker pool with a tiny
// real-mode profile (actual host consumption, so kept very small).
func BenchmarkReplayRealPool(b *testing.B) {
	p := profile.New("real-bench", nil)
	for i := 0; i < 8; i++ {
		_ = p.Append(profile.Sample{
			T: profile.Sample{}.T, // offsets are irrelevant to replay
			Values: map[string]float64{
				profile.MetricCPUCycles: 2e6,
				profile.MetricMemAlloc:  1 << 16,
			},
		})
	}
	p.Finalize(0)
	opts := Options{
		Atoms:      atoms.Config{Machine: machine.Host()},
		Real:       true,
		ScratchDir: b.TempDir(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Emulate(context.Background(), p, opts); err != nil {
			b.Fatal(err)
		}
	}
}
