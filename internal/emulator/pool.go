package emulator

import (
	"context"

	"synapse/internal/atoms"
	"synapse/internal/perfcount"
)

// poolResult is one atom's outcome for one sample.
type poolResult struct {
	res atoms.Result
	err error
}

// atomWorker is one persistent goroutine driving one atom. Channels have
// capacity 1 so the driver can post every atom's request before collecting
// any result — within a sample all atoms run concurrently (paper §4.4).
type atomWorker struct {
	atom atoms.Atom
	req  chan atoms.Request
	res  chan poolResult
}

// atomPool runs real-mode consumption through persistent per-atom workers.
// The paper's emulator "spawns the atom threads" once at start-up (the ≈1 s
// startup cost, Fig 5); spawning goroutines per sample, as the replay loop
// used to, pays scheduler latency on every barrier instead.
type atomPool struct {
	cfg     *atoms.Config
	workers []atomWorker
}

// newAtomPool starts one worker per atom. The workers exit when close is
// called (or leak-free on context cancellation, since a cancelled Consume
// returns immediately).
func newAtomPool(ctx context.Context, set []atoms.Atom, cfg *atoms.Config) *atomPool {
	p := &atomPool{cfg: cfg, workers: make([]atomWorker, len(set))}
	for i, a := range set {
		w := atomWorker{
			atom: a,
			req:  make(chan atoms.Request, 1),
			res:  make(chan poolResult, 1),
		}
		p.workers[i] = w
		go func(w atomWorker) {
			for req := range w.req {
				res, err := w.atom.Consume(ctx, req)
				w.res <- poolResult{res, err}
			}
		}(w)
	}
	return p
}

// replay feeds one sample's demand to every atom concurrently and waits for
// the barrier (the last atom to finish). Results are collected from every
// worker even on error, keeping the pool consistent for the next sample.
func (p *atomPool) replay(req atoms.Request) ([]AtomSpan, perfcount.Counters, error) {
	for _, w := range p.workers {
		w.req <- splitRequest(req, w.atom.Name(), p.cfg)
	}
	var consumed perfcount.Counters
	var spans []AtomSpan
	var firstErr error
	for _, w := range p.workers {
		out := <-w.res
		if out.err != nil {
			if firstErr == nil {
				firstErr = out.err
			}
			continue
		}
		consumed = consumed.Add(out.res.Consumed)
		if out.res.Dur > 0 {
			spans = append(spans, AtomSpan{Atom: w.atom.Name(), Dur: out.res.Dur})
		}
	}
	if firstErr != nil {
		return nil, consumed, firstErr
	}
	return spans, consumed, nil
}

// close shuts the workers down.
func (p *atomPool) close() {
	for _, w := range p.workers {
		close(w.req)
	}
}
