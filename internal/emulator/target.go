package emulator

import (
	"time"

	"synapse/internal/perfcount"
	"synapse/internal/watcher"
)

// ReportTarget exposes a finished emulation run as a profiling target, so
// the emulation itself can be profiled — the paper's E.2 sanity check ("we
// profiled the emulated application and compared the reported system
// resource consumption results"). Counters are reconstructed from the
// report's per-sample trace, including the startup delay during which the
// emulator consumes nothing.
type ReportTarget struct {
	rep     *Report
	command string
	tags    map[string]string
}

// NewReportTarget wraps a report under the original command/tags identity.
func NewReportTarget(rep *Report, command string, tags map[string]string) *ReportTarget {
	return &ReportTarget{rep: rep, command: command, tags: tags}
}

// Command implements watcher.Target.
func (t *ReportTarget) Command() string { return t.command }

// Tags implements watcher.Target.
func (t *ReportTarget) Tags() map[string]string { return t.tags }

// AppName implements watcher.Target.
func (t *ReportTarget) AppName() string { return "" }

// countersAt reconstructs cumulative consumption at offset since the start
// of the emulation (startup included).
func (t *ReportTarget) countersAt(at time.Duration) perfcount.Counters {
	var c perfcount.Counters
	replay := at - t.rep.Startup
	if replay <= 0 {
		return c
	}
	for _, st := range t.rep.Trace {
		if st.Start+st.Dur <= replay {
			c = c.Add(st.Consumed)
			continue
		}
		if st.Start >= replay {
			break
		}
		frac := float64(replay-st.Start) / float64(st.Dur)
		c = c.Add(st.Consumed.Scale(frac))
	}
	c.Processes = 1
	c.Threads = 1
	return c
}

// Counters implements watcher.Target.
func (t *ReportTarget) Counters(at time.Duration) (perfcount.Counters, bool) {
	if t.Exited(at) {
		return perfcount.Counters{}, false
	}
	return t.countersAt(at), true
}

// Exited implements watcher.Target.
func (t *ReportTarget) Exited(at time.Duration) bool { return at >= t.rep.Tx }

// Final implements watcher.Target.
func (t *ReportTarget) Final(at time.Duration) (perfcount.Counters, bool) {
	if !t.Exited(at) {
		return perfcount.Counters{}, false
	}
	c := t.rep.Consumed
	c.Processes = 1
	c.Threads = 1
	return c, true
}

// Tx implements watcher.Target.
func (t *ReportTarget) Tx(at time.Duration) (time.Duration, bool) {
	if !t.Exited(at) {
		return 0, false
	}
	return t.rep.Tx, true
}

var _ watcher.Target = (*ReportTarget)(nil)
