package emulator

import (
	"context"
	"math"
	"testing"
	"testing/quick"
	"time"

	"synapse/internal/atoms"
	"synapse/internal/machine"
	"synapse/internal/profile"
)

// randomProfile builds a valid profile from fuzz inputs: up to 12 samples
// with arbitrary mixes of compute, I/O and memory demand.
func randomProfile(cycles []uint32, rw []uint32, mem []uint32) *profile.Profile {
	p := profile.New("property", nil)
	p.SampleRate = 1
	n := len(cycles)
	if m := len(rw); m < n {
		n = m
	}
	if m := len(mem); m < n {
		n = m
	}
	if n > 12 {
		n = 12
	}
	for i := 0; i < n; i++ {
		v := map[string]float64{}
		if c := float64(cycles[i]); c > 0 {
			v[profile.MetricCPUCycles] = c * 1e3
		}
		if b := float64(rw[i] % (1 << 26)); b > 0 {
			if i%2 == 0 {
				v[profile.MetricIOWriteBytes] = b
			} else {
				v[profile.MetricIOReadBytes] = b
			}
		}
		if a := float64(mem[i] % (1 << 24)); a > 0 {
			v[profile.MetricMemAlloc] = a
		}
		_ = p.Append(profile.Sample{T: time.Duration(i+1) * time.Second, Values: v})
	}
	p.Finalize(time.Duration(n+1) * time.Second)
	return p
}

// Property: replay conserves non-compute consumption exactly and compute up
// to bias plus one chunk; the number of replayed samples matches; and Tx is
// bounded below by the slowest atom's busy time plus startup.
func TestReplayConservationProperty(t *testing.T) {
	m := machine.MustGet(machine.Comet)
	kp, _ := m.Kernel(machine.KernelASM)
	f := func(cycles, rw, mem []uint32) bool {
		p := randomProfile(cycles, rw, mem)
		rep, err := Emulate(context.Background(), p, Options{
			Atoms: atoms.Config{Machine: m},
		})
		if err != nil {
			return false
		}
		if rep.Samples != len(p.Samples) {
			return false
		}
		// Exact conservation for storage and memory.
		if math.Abs(rep.Consumed.WriteBytes-p.Total(profile.MetricIOWriteBytes)) > 1 {
			return false
		}
		if math.Abs(rep.Consumed.ReadBytes-p.Total(profile.MetricIOReadBytes)) > 1 {
			return false
		}
		if math.Abs(rep.Consumed.AllocBytes-p.Total(profile.MetricMemAlloc)) > 1 {
			return false
		}
		// Compute: within [target*bias, target*bias + one chunk*bias].
		target := p.Total(profile.MetricCPUCycles)
		if target > 0 {
			lo := target * kp.CalibBias * 0.999
			hi := target*kp.CalibBias + kp.Chunk()*kp.CalibBias*1.001
			if rep.Consumed.Cycles < lo || rep.Consumed.Cycles > hi {
				return false
			}
		}
		// Tx lower bound: startup plus the slowest resource's busy time.
		var maxBusy time.Duration
		for _, a := range []string{"compute", "storage", "memory", "network"} {
			if d := rep.BusyTime(a); d > maxBusy {
				maxBusy = d
			}
		}
		return rep.Tx >= rep.Startup+maxBusy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: replay order matches profile order (trace starts are strictly
// increasing by sample index and contiguous).
func TestReplayOrderProperty(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	f := func(cycles, rw, mem []uint32) bool {
		p := randomProfile(cycles, rw, mem)
		rep, err := Emulate(context.Background(), p, Options{
			Atoms: atoms.Config{Machine: m},
		})
		if err != nil {
			return false
		}
		var cursor time.Duration
		for i, st := range rep.Trace {
			if st.Index != i {
				return false
			}
			if st.Start != cursor {
				return false
			}
			cursor += st.Dur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
