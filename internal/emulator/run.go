package emulator

import (
	"context"
	"fmt"
	"time"

	"synapse/internal/atoms"
	"synapse/internal/clock"
	"synapse/internal/machine"
	"synapse/internal/profile"
)

// Run is a reusable emulation handle: one profile plus one normalized set of
// options, replayable many times. NewRun performs the per-profile work once —
// validation, option normalization, the modeled startup cost — so callers
// that replay the same profile repeatedly (the scenario engine's workload
// instances, benchmark loops) skip it on every subsequent replay.
//
// A Run is safe for concurrent Emulate calls as long as Options.Clock is nil:
// each call then builds its own atom set and simulated clock. A caller-
// provided clock is shared by every replay, so those runs must be serialized
// by the caller.
type Run struct {
	p    *profile.Profile
	opts Options
	// startup and overhead are the normalized driver costs (defaults
	// applied, parallel worker-pool setup folded into startup).
	startup  time.Duration
	overhead time.Duration
}

// NewRun validates the profile and options and returns a reusable handle.
// The validation and normalization errors are exactly those Emulate returns.
func NewRun(p *profile.Profile, opts Options) (*Run, error) {
	if p == nil {
		return nil, fmt.Errorf("emulator: nil profile")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.Atoms.Machine == nil {
		return nil, fmt.Errorf("emulator: options need a machine model")
	}

	startup := opts.StartupDelay
	switch {
	case startup < 0:
		startup = 0
	case startup == 0:
		startup = DefaultStartupDelay
	}
	overhead := opts.SampleOverhead
	switch {
	case overhead < 0:
		overhead = 0
	case overhead == 0:
		overhead = DefaultSampleOverhead
	}
	// Parallel runs pay the one-time worker-pool setup cost as part of
	// the startup (threads spawned / MPI ranks launched once per run).
	if opts.Atoms.Workers > 1 && opts.Atoms.Mode != machine.ModeSerial {
		startup += opts.Atoms.Machine.Threading.SetupOverhead(opts.Atoms.Workers, opts.Atoms.Mode)
	}
	return &Run{p: p, opts: opts, startup: startup, overhead: overhead}, nil
}

// Emulate replays the profile once and returns the run report.
func (r *Run) Emulate(ctx context.Context) (*Report, error) {
	return r.emulate(ctx, r.opts.Atoms)
}

// EmulateWithLoad replays the profile with the artificial background CPU
// load overridden for this replay only — the scenario engine's per-instance
// load jitter. The handle itself is not mutated.
func (r *Run) EmulateWithLoad(ctx context.Context, load float64) (*Report, error) {
	cfg := r.opts.Atoms
	cfg.Load = load
	return r.emulate(ctx, cfg)
}

// emulate is one replay: fresh atom set, fresh clock (unless the options
// pinned one), then the batched / serial / real replay loop.
func (r *Run) emulate(ctx context.Context, cfg atoms.Config) (*Report, error) {
	var set []atoms.Atom
	var err error
	if r.opts.Real {
		set, err = atoms.NewRealSet(&cfg, r.opts.ScratchDir)
	} else {
		set, err = atoms.NewSimSet(&cfg)
	}
	if err != nil {
		return nil, err
	}
	set = filterAtoms(set, r.opts)

	clk := r.opts.Clock
	if clk == nil {
		if r.opts.Real {
			clk = clock.NewReal()
		} else {
			clk = clock.NewAutoSim(time.Unix(0, 0).UTC())
		}
	}

	start := clk.Now()
	// Start-up: locate and load the profile, spawn atom threads. In real
	// mode the atom construction above already cost real time; the modeled
	// delay applies to simulated runs.
	if !r.opts.Real && r.startup > 0 {
		clk.Sleep(r.startup)
	}

	rep := &Report{
		Machine: cfg.Machine.Name,
		Kernel:  cfg.Kernel,
		Startup: r.startup,
		busy:    make(map[string]time.Duration, len(set)),
	}
	if rep.Kernel == "" {
		rep.Kernel = machine.KernelASM
	}

	var total time.Duration
	switch {
	case r.opts.Real:
		total, err = replayReal(ctx, set, r.p, &cfg, r.opts.TraceLevel, r.overhead, rep)
	case r.opts.Serial:
		total, err = replaySerial(ctx, set, r.p, &cfg, r.opts.TraceLevel, r.overhead, clk, rep)
	default:
		total, err = replayBatched(ctx, set, r.p, &cfg, r.opts.TraceLevel, r.overhead, clk, rep)
	}
	if err != nil {
		return nil, err
	}

	rep.Tx = clk.Now().Sub(start)
	if !r.opts.Real {
		// Simulated clocks advance exactly by slept time; assemble Tx
		// from parts to avoid clock granularity concerns.
		rep.Tx = r.startup + total
	}
	return rep, nil
}
