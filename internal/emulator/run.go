package emulator

import (
	"context"
	"fmt"
	"sync"
	"time"

	"synapse/internal/atoms"
	"synapse/internal/clock"
	"synapse/internal/machine"
	"synapse/internal/profile"
)

// Run is a reusable emulation handle: one profile plus one normalized set of
// options, replayable many times. NewRun performs the per-profile work once —
// validation, option normalization, the modeled startup cost — so callers
// that replay the same profile repeatedly (the scenario engine's workload
// instances, benchmark loops) skip it on every subsequent replay.
//
// A Run is safe for concurrent Emulate calls as long as Options.Clock is nil:
// each call then builds its own atom set and simulated clock. A caller-
// provided clock is shared by every replay, so those runs must be serialized
// by the caller.
type Run struct {
	p    *profile.Profile
	opts Options
	// startup and overhead are the normalized driver costs (defaults
	// applied, parallel worker-pool setup folded into startup).
	startup  time.Duration
	overhead time.Duration
	// pool recycles replayScratch values across simulated replays (see
	// emulateSim). Per-Run, so every pooled scratch shares the handle's
	// machine, kernel and filesystem — only the per-replay load varies.
	pool sync.Pool
}

// NewRun validates the profile and options and returns a reusable handle.
// The validation and normalization errors are exactly those Emulate returns.
func NewRun(p *profile.Profile, opts Options) (*Run, error) {
	if p == nil {
		return nil, fmt.Errorf("emulator: nil profile")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.Atoms.Machine == nil {
		return nil, fmt.Errorf("emulator: options need a machine model")
	}

	startup := opts.StartupDelay
	switch {
	case startup < 0:
		startup = 0
	case startup == 0:
		startup = DefaultStartupDelay
	}
	overhead := opts.SampleOverhead
	switch {
	case overhead < 0:
		overhead = 0
	case overhead == 0:
		overhead = DefaultSampleOverhead
	}
	// Parallel runs pay the one-time worker-pool setup cost as part of
	// the startup (threads spawned / MPI ranks launched once per run).
	if opts.Atoms.Workers > 1 && opts.Atoms.Mode != machine.ModeSerial {
		startup += opts.Atoms.Machine.Threading.SetupOverhead(opts.Atoms.Workers, opts.Atoms.Mode)
	}
	return &Run{p: p, opts: opts, startup: startup, overhead: overhead}, nil
}

// Emulate replays the profile once and returns the run report.
func (r *Run) Emulate(ctx context.Context) (*Report, error) {
	return r.emulate(ctx, r.opts.Atoms)
}

// EmulateWithLoad replays the profile with the artificial background CPU
// load overridden for this replay only — the scenario engine's per-instance
// load jitter. The handle itself is not mutated.
func (r *Run) EmulateWithLoad(ctx context.Context, load float64) (*Report, error) {
	cfg := r.opts.Atoms
	cfg.Load = load
	return r.emulate(ctx, cfg)
}

// scratchEpoch is the simulated clock's fixed start time.
var scratchEpoch = time.Unix(0, 0).UTC()

// replayScratch is one simulated replay's working set: the atom set (built
// against the scratch's own config copy), the auto-advancing clock, and
// the batched loop's staging buffers. Recycling it turns the per-replay
// cost — four atoms, a clock, four slices — into a pool hit.
type replayScratch struct {
	cfg     atoms.Config
	set     []atoms.Atom
	names   []string
	clk     clock.AutoSim
	reqs    []atoms.Request
	results []atoms.Result
	busy    []time.Duration
}

// acquire returns a replay-ready scratch for cfg: recycled from the pool
// when one is free (atoms reset, clock rewound, the new per-replay config
// written through the pointer the atoms hold), freshly built otherwise.
func (r *Run) acquire(cfg atoms.Config) (*replayScratch, error) {
	if sc, _ := r.pool.Get().(*replayScratch); sc != nil {
		// The atoms read *&sc.cfg at consume time and their precomputed
		// kernel/filesystem tables depend only on fields the per-Run pool
		// keeps constant, so overwriting the config in place retargets
		// them to this replay's load.
		sc.cfg = cfg
		atoms.ResetSim(sc.set)
		sc.clk.Reset(scratchEpoch)
		return sc, nil
	}
	sc := &replayScratch{cfg: cfg}
	set, err := atoms.NewSimSet(&sc.cfg)
	if err != nil {
		return nil, err
	}
	sc.set = filterAtoms(set, r.opts)
	sc.names = make([]string, len(sc.set))
	for i, a := range sc.set {
		sc.names[i] = a.Name()
	}
	sc.clk = clock.NewAutoSim(scratchEpoch)
	return sc, nil
}

// emulateSim is the simulated replay with an unpinned clock — the scenario
// engine's high-volume path. Nothing about it is observable outside the
// report (the clock starts at a fixed epoch and Tx is assembled from
// modeled parts), so the whole working set comes from the per-Run pool and
// the steady state allocates only the report itself.
func (r *Run) emulateSim(ctx context.Context, cfg atoms.Config) (*Report, error) {
	sc, err := r.acquire(cfg)
	if err != nil {
		return nil, err
	}
	defer r.pool.Put(sc)

	if r.startup > 0 {
		sc.clk.Sleep(r.startup)
	}
	rep := &Report{
		Machine: sc.cfg.Machine.Name,
		Kernel:  sc.cfg.Kernel,
		Startup: r.startup,
		busy:    make(map[string]time.Duration, len(sc.set)),
	}
	if rep.Kernel == "" {
		rep.Kernel = machine.KernelASM
	}
	var total time.Duration
	if r.opts.Serial {
		total, err = replaySerial(ctx, sc.set, r.p, &sc.cfg, r.opts.TraceLevel, r.overhead, sc.clk, rep)
	} else {
		total, err = replayBatched(ctx, sc.set, r.p, &sc.cfg, r.opts.TraceLevel, r.overhead, sc.clk, rep, sc)
	}
	if err != nil {
		return nil, err
	}
	// Simulated clocks advance exactly by slept time; assemble Tx from
	// parts to avoid clock granularity concerns.
	rep.Tx = r.startup + total
	return rep, nil
}

// emulate is one replay: fresh atom set, fresh clock (unless the options
// pinned one), then the batched / serial / real replay loop.
func (r *Run) emulate(ctx context.Context, cfg atoms.Config) (*Report, error) {
	if !r.opts.Real && r.opts.Clock == nil {
		return r.emulateSim(ctx, cfg)
	}
	var set []atoms.Atom
	var err error
	if r.opts.Real {
		set, err = atoms.NewRealSet(&cfg, r.opts.ScratchDir)
	} else {
		set, err = atoms.NewSimSet(&cfg)
	}
	if err != nil {
		return nil, err
	}
	set = filterAtoms(set, r.opts)

	clk := r.opts.Clock
	if clk == nil {
		clk = clock.NewReal()
	}

	start := clk.Now()
	// Start-up: locate and load the profile, spawn atom threads. In real
	// mode the atom construction above already cost real time; the modeled
	// delay applies to simulated runs.
	if !r.opts.Real && r.startup > 0 {
		clk.Sleep(r.startup)
	}

	rep := &Report{
		Machine: cfg.Machine.Name,
		Kernel:  cfg.Kernel,
		Startup: r.startup,
		busy:    make(map[string]time.Duration, len(set)),
	}
	if rep.Kernel == "" {
		rep.Kernel = machine.KernelASM
	}

	var total time.Duration
	switch {
	case r.opts.Real:
		total, err = replayReal(ctx, set, r.p, &cfg, r.opts.TraceLevel, r.overhead, rep)
	case r.opts.Serial:
		total, err = replaySerial(ctx, set, r.p, &cfg, r.opts.TraceLevel, r.overhead, clk, rep)
	default:
		total, err = replayBatched(ctx, set, r.p, &cfg, r.opts.TraceLevel, r.overhead, clk, rep, nil)
	}
	if err != nil {
		return nil, err
	}

	rep.Tx = clk.Now().Sub(start)
	if !r.opts.Real {
		// Simulated clocks advance exactly by slept time; assemble Tx
		// from parts to avoid clock granularity concerns.
		rep.Tx = r.startup + total
	}
	return rep, nil
}
