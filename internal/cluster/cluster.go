// Package cluster models a finite pool of machines for scenario placement.
//
// The scenario engine alone replays every workload instance on an infinitely
// wide machine: concurrency caps bound how many instances run, but nothing
// says *where* they run or what colocation costs. This package adds the
// missing half of the placement question (Merzky & Jha, "Bridging the Gap
// Towards Predictable Workload Placement"): a cluster is a list of nodes —
// each a machine model from the catalog or an inline JSON description, with
// finite cores and memory — plus a placement policy deciding which node an
// arriving instance lands on, and a contention model that maps a node's
// occupancy onto the artificial background load of colocated replays.
//
// Everything is deterministic: policies break ties by node order, the random
// policy draws from a caller-seeded generator, and occupancy-derived loads
// are pure functions of the placement history. The scenario scheduler drives
// Place/Release serially on its virtual timeline, so a fixed (spec, seed)
// yields an identical placement sequence at any worker count.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"synapse/internal/machine"
	"synapse/internal/stats"
)

// Placement policies.
const (
	// PolicyFirstFit places on the first node (in spec order) with enough
	// free cores and memory.
	PolicyFirstFit = "first_fit"
	// PolicyBestFit places on the feasible node that would be left with
	// the fewest free cores — packing tightly, keeping big nodes free.
	PolicyBestFit = "best_fit"
	// PolicyLeastLoaded places on the feasible node with the lowest core
	// occupancy — spreading load, minimizing contention.
	PolicyLeastLoaded = "least_loaded"
	// PolicyRandom places on a uniformly random feasible node, drawn from
	// the scenario-seeded generator (deterministic per seed).
	PolicyRandom = "random"
)

// Spec is the declarative cluster description inside a scenario spec (the
// "cluster" block), or a standalone JSON file loaded via synapse-sim
// -cluster. Like the scenario spec it is strict JSON: unknown fields are
// rejected, including inside inline machine models.
type Spec struct {
	// Policy is one of the Policy* constants; empty means first_fit.
	Policy string `json:"policy,omitempty"`
	// Contention scales how strongly colocated instances slow each other
	// down: an instance placed on a node at core occupancy occ replays
	// with effective load base + (1-base)·Contention·occ. Nil uses each
	// node machine's own Threading.Contention; the value must be in
	// [0, 1], which keeps every effective load below 1.
	Contention *float64 `json:"contention,omitempty"`
	// Machines holds inline machine models (the JSON description format
	// of internal/machine), usable by Nodes in addition to the catalog.
	// Inline models are local to the cluster — they are not registered
	// globally.
	Machines map[string]json.RawMessage `json:"machines,omitempty"`
	// Nodes are the cluster's machines, in placement-tiebreak order.
	Nodes []NodeSpec `json:"nodes"`
}

// NodeSpec describes one kind of node in the cluster.
type NodeSpec struct {
	// Name labels the node in reports; empty defaults to the machine
	// name. With Count > 1, nodes are named name-0, name-1, ….
	Name string `json:"name,omitempty"`
	// Machine names the node's model: an inline Machines entry, a catalog
	// machine, or a registered user model.
	Machine string `json:"machine"`
	// Count expands this spec into that many identical nodes (default 1).
	Count int `json:"count,omitempty"`
	// Cores overrides the machine model's core count (0 keeps it).
	Cores int `json:"cores,omitempty"`
	// MemGB overrides the machine model's memory in GB (0 keeps it).
	MemGB float64 `json:"mem_gb,omitempty"`
}

// ParseSpec decodes and validates a standalone cluster spec (strict JSON).
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("cluster: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate reports the first structural problem with the spec. Inline
// machine models are fully parsed and validated; catalog references are
// resolved later, by New.
func (s *Spec) Validate() error {
	if err := s.validateStructure(); err != nil {
		return err
	}
	_, err := s.parseInline()
	return err
}

// validateStructure checks everything except the inline machine models.
func (s *Spec) validateStructure() error {
	switch s.Policy {
	case "", PolicyFirstFit, PolicyBestFit, PolicyLeastLoaded, PolicyRandom:
	default:
		return fmt.Errorf("cluster: unknown policy %q (first_fit, best_fit, least_loaded, random)", s.Policy)
	}
	if c := s.Contention; c != nil && (*c < 0 || *c > 1) {
		return fmt.Errorf("cluster: contention %g outside [0, 1]", *c)
	}
	if len(s.Nodes) == 0 {
		return fmt.Errorf("cluster: no nodes")
	}
	for i := range s.Nodes {
		n := &s.Nodes[i]
		if n.Machine == "" {
			return fmt.Errorf("cluster: node %d has no machine", i)
		}
		if n.Count < 0 {
			return fmt.Errorf("cluster: node %d has negative count %d", i, n.Count)
		}
		if n.Cores < 0 {
			return fmt.Errorf("cluster: node %d has negative cores %d", i, n.Cores)
		}
		if n.MemGB < 0 || n.MemGB >= MaxMemGB {
			return fmt.Errorf("cluster: node %d mem_gb %g outside [0, %g)", i, n.MemGB, float64(MaxMemGB))
		}
	}
	return nil
}

// parseInline parses and validates the inline machine models. Every model's
// name must equal its map key: nodes reference models by key, but emulation
// handles and replay-memoization downstream are keyed by model name — a
// mismatch would let two different models share a name and silently replay
// instances on the wrong machine.
func (s *Spec) parseInline() (map[string]*machine.Model, error) {
	inline := make(map[string]*machine.Model, len(s.Machines))
	for name, raw := range s.Machines {
		if name == "" {
			return nil, fmt.Errorf("cluster: inline machine with empty name")
		}
		m, err := machine.FromJSONStrict(raw)
		if err != nil {
			return nil, fmt.Errorf("cluster: inline machine %q: %w", name, err)
		}
		if m.Name != name {
			return nil, fmt.Errorf("cluster: inline machine %q: model name %q must match its key", name, m.Name)
		}
		if m.Threading.Contention < 0 {
			return nil, fmt.Errorf("cluster: inline machine %q: negative contention", name)
		}
		inline[name] = m
	}
	return inline, nil
}

// MaxMemGB bounds every mem_gb field (node capacities and instance
// demands): above 2^33 GB the GB→bytes conversion would overflow int64,
// silently inverting the constraint, so validation rejects it first.
const MaxMemGB = 1 << 33

// Request is one instance's resource demand.
type Request struct {
	Cores    int
	MemBytes int64
}

// Node lifecycle states. A node accepts placements only while up; draining
// keeps running instances but refuses new ones; down nodes are out of the
// pool (the scheduler kills and re-queues whatever was running on them).
const (
	StateUp       = "up"
	StateDraining = "draining"
	StateDown     = "down"
)

// node is one expanded cluster machine and its live accounting.
type node struct {
	name  string
	model *machine.Model
	cores int
	mem   int64
	state string

	usedCores int
	usedMem   int64
	placed    int
	peakCores int
	killed    int
	busy      time.Duration // Σ service time × cores over placed instances
}

// Cluster is the runtime placement state. It is not safe for concurrent
// use — the scenario scheduler drives it serially on the virtual timeline.
// The pool is no longer fixed for a run's lifetime: nodes change state
// (SetDown/SetUp/SetDrain) and new nodes join (AddNodes) as the scenario's
// event timeline plays out.
type Cluster struct {
	policy     string
	contention *float64
	nodes      []*node
	inline     map[string]*machine.Model
	seen       map[string]bool
	rng        *stats.Batch
	// feas backs the random policy's feasible-set scan: one buffer reused
	// across Place calls, so the steady state never allocates.
	feas []int

	placements int
	rejections int
}

// New resolves the spec's machine references (inline models first, then the
// catalog and registered user models), expands node counts, and returns a
// fresh cluster. rng seeds the random policy; it may be nil for any other
// policy.
func New(s *Spec, rng *stats.RNG) (*Cluster, error) {
	if err := s.validateStructure(); err != nil {
		return nil, err
	}
	inline, err := s.parseInline()
	if err != nil {
		return nil, err
	}
	policy := s.Policy
	if policy == "" {
		policy = PolicyFirstFit
	}
	if policy == PolicyRandom && rng == nil {
		return nil, fmt.Errorf("cluster: random policy needs a seeded generator")
	}
	c := &Cluster{
		policy:     policy,
		contention: s.Contention,
		inline:     inline,
		seen:       map[string]bool{},
	}
	if rng != nil {
		// Draws batch through stats.Batch: the served sequence is exactly
		// the generator's, so seeded placement streams are unchanged.
		c.rng = stats.NewBatch(rng)
	}
	for i := range s.Nodes {
		if _, err := c.AddNodes(s.Nodes[i]); err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
	}
	return c, nil
}

// ExpandNames returns the node names ns expands to: the spec name (or the
// machine name) as-is for a single node, suffixed -0..count-1 when count
// expands it. New, AddNodes and spec-level validation all share this rule.
func ExpandNames(ns NodeSpec) []string {
	count := ns.Count
	if count == 0 {
		count = 1
	}
	base := ns.Name
	if base == "" {
		base = ns.Machine
	}
	if count == 1 {
		return []string{base}
	}
	names := make([]string, count)
	for k := range names {
		names[k] = fmt.Sprintf("%s-%d", base, k)
	}
	return names
}

// ResolveModel resolves a machine reference the way node expansion does:
// the cluster's inline models first, then the catalog and registered user
// models.
func (c *Cluster) ResolveModel(name string) (*machine.Model, error) {
	if m := c.inline[name]; m != nil {
		return m, nil
	}
	return machine.Get(name)
}

// ShapeOf resolves the capacity one node expanded from ns would have,
// without adding it — used to decide whether a resource request could fit
// a node an event will add later.
func (c *Cluster) ShapeOf(ns NodeSpec) (cores int, mem int64, err error) {
	m, err := c.ResolveModel(ns.Machine)
	if err != nil {
		return 0, 0, err
	}
	cores = ns.Cores
	if cores == 0 {
		cores = m.Cores
	}
	mem = int64(ns.MemGB * float64(1<<30))
	if mem == 0 {
		mem = m.MemBytes
	}
	return cores, mem, nil
}

// AddNodes expands ns into nodes and appends them to the pool (named like
// New names them: name-0..count-1 when count > 1). New nodes start up and
// empty. It returns the new node indices; duplicate names fail without
// mutating the pool.
func (c *Cluster) AddNodes(ns NodeSpec) ([]int, error) {
	m, err := c.ResolveModel(ns.Machine)
	if err != nil {
		return nil, err
	}
	cores, mem, err := c.ShapeOf(ns)
	if err != nil {
		return nil, err
	}
	names := ExpandNames(ns)
	for _, name := range names {
		if c.seen[name] {
			return nil, fmt.Errorf("duplicate node name %q", name)
		}
	}
	idx := make([]int, len(names))
	for k, name := range names {
		c.seen[name] = true
		idx[k] = len(c.nodes)
		c.nodes = append(c.nodes, &node{name: name, model: m, cores: cores, mem: mem, state: StateUp})
	}
	return idx, nil
}

// Len returns the number of nodes.
func (c *Cluster) Len() int { return len(c.nodes) }

// Fits reports whether the request could ever be placed — i.e. fits an
// *empty* node of the current pool, in any state. Requests that fail this
// (and fit no node an event could add) would queue forever.
func (c *Cluster) Fits(r Request) bool {
	for _, n := range c.nodes {
		if r.Cores <= n.cores && r.MemBytes <= n.mem {
			return true
		}
	}
	return false
}

// feasible reports whether the request fits node n right now. Only up
// nodes accept placements: draining and down nodes are out of the pool.
func (n *node) feasible(r Request) bool {
	return n.state == StateUp && n.usedCores+r.Cores <= n.cores && n.usedMem+r.MemBytes <= n.mem
}

// Place runs the policy for one request. On success it reserves the
// resources and returns the chosen node index plus the node's core occupancy
// *before* this placement (the contention input). On failure — no node can
// currently host the request — it records a rejection and returns ok=false.
func (c *Cluster) Place(r Request) (idx int, occ float64, ok bool) {
	best := -1
	switch c.policy {
	case PolicyFirstFit:
		for i, n := range c.nodes {
			if n.feasible(r) {
				best = i
				break
			}
		}
	case PolicyBestFit:
		bestFree := 0
		for i, n := range c.nodes {
			if !n.feasible(r) {
				continue
			}
			free := n.cores - n.usedCores - r.Cores
			if best < 0 || free < bestFree {
				best, bestFree = i, free
			}
		}
	case PolicyLeastLoaded:
		bestOcc := 0.0
		for i, n := range c.nodes {
			if !n.feasible(r) {
				continue
			}
			o := float64(n.usedCores) / float64(n.cores)
			if best < 0 || o < bestOcc {
				best, bestOcc = i, o
			}
		}
	case PolicyRandom:
		feas := c.feas[:0]
		for i, n := range c.nodes {
			if n.feasible(r) {
				feas = append(feas, i)
			}
		}
		c.feas = feas
		if len(feas) > 0 {
			best = feas[c.rng.Intn(len(feas))]
		}
	}
	if best < 0 {
		c.rejections++
		return 0, 0, false
	}
	n := c.nodes[best]
	occ = float64(n.usedCores) / float64(n.cores)
	n.usedCores += r.Cores
	n.usedMem += r.MemBytes
	n.placed++
	if n.usedCores > n.peakCores {
		n.peakCores = n.usedCores
	}
	c.placements++
	return best, occ, true
}

// Release returns a placed request's resources to node idx.
func (c *Cluster) Release(idx int, r Request) {
	n := c.nodes[idx]
	n.usedCores -= r.Cores
	n.usedMem -= r.MemBytes
}

// AddBusy charges d of core-time (service time × cores) to node idx.
func (c *Cluster) AddBusy(idx int, d time.Duration) { c.nodes[idx].busy += d }

// AddKilled counts one instance killed on node idx (its host went down
// mid-run).
func (c *Cluster) AddKilled(idx int) { c.nodes[idx].killed++ }

// State returns node idx's lifecycle state.
func (c *Cluster) State(idx int) string { return c.nodes[idx].state }

// SetDown takes node idx out of the pool. The caller is responsible for
// releasing (and re-queueing or killing) whatever was running on it.
func (c *Cluster) SetDown(idx int) { c.nodes[idx].state = StateDown }

// SetUp returns node idx to the pool (from down or draining).
func (c *Cluster) SetUp(idx int) { c.nodes[idx].state = StateUp }

// SetDrain stops new placements on node idx; running instances stay.
// Down nodes are unaffected (there is nothing left to drain).
func (c *Cluster) SetDrain(idx int) {
	if c.nodes[idx].state == StateUp {
		c.nodes[idx].state = StateDraining
	}
}

// Idle reports whether node idx currently hosts nothing.
func (c *Cluster) Idle(idx int) bool {
	n := c.nodes[idx]
	return n.usedCores == 0 && n.usedMem == 0
}

// FindNode returns the index of the node with the given name, or -1.
func (c *Cluster) FindNode(name string) int {
	for i, n := range c.nodes {
		if n.name == name {
			return i
		}
	}
	return -1
}

// LiveNodes counts nodes that are not down — the autoscaler's notion of
// current pool size.
func (c *Cluster) LiveNodes() int {
	live := 0
	for _, n := range c.nodes {
		if n.state != StateDown {
			live++
		}
	}
	return live
}

// EffectiveLoad maps a node's occupancy at placement time onto the replay's
// background CPU load: base + (1-base)·contention·occ. With contention ≤ 1
// and occ < 1 (the instance itself needs at least one core) the result stays
// strictly below 1, as the emulator requires.
func (c *Cluster) EffectiveLoad(idx int, base, occ float64) float64 {
	ct := c.nodes[idx].model.Threading.Contention
	if c.contention != nil {
		ct = *c.contention
	}
	if ct > 1 {
		ct = 1
	}
	if ct <= 0 || occ <= 0 {
		return base
	}
	return base + (1-base)*ct*occ
}

// MachineName returns the model name of node idx's machine.
func (c *Cluster) MachineName(idx int) string { return c.nodes[idx].model.Name }

// Model returns node idx's machine model.
func (c *Cluster) Model(idx int) *machine.Model { return c.nodes[idx].model }

// Models returns the distinct machine models across the cluster, in node
// order — the set of emulation targets a workload may land on.
func (c *Cluster) Models() []*machine.Model {
	var models []*machine.Model
	seen := map[string]bool{}
	for _, n := range c.nodes {
		if !seen[n.model.Name] {
			seen[n.model.Name] = true
			models = append(models, n.model)
		}
	}
	return models
}

// Policy returns the normalized policy name.
func (c *Cluster) Policy() string { return c.policy }

// Placements and Rejections are the placement-decision counters: successful
// placements, and admission probes that found no feasible node (counted at
// most once per workload per scheduling instant).
func (c *Cluster) Placements() int { return c.placements }

// Rejections returns the failed-placement-probe counter.
func (c *Cluster) Rejections() int { return c.rejections }

// NodeInfo is the per-node accounting snapshot for reports.
type NodeInfo struct {
	Name      string
	Machine   string
	Cores     int
	MemBytes  int64
	State     string
	Placed    int
	PeakCores int
	Killed    int
	Busy      time.Duration
}

// Info returns node idx's accounting snapshot.
func (c *Cluster) Info(idx int) NodeInfo {
	n := c.nodes[idx]
	return NodeInfo{
		Name:      n.name,
		Machine:   n.model.Name,
		Cores:     n.cores,
		MemBytes:  n.mem,
		State:     n.state,
		Placed:    n.placed,
		PeakCores: n.peakCores,
		Killed:    n.killed,
		Busy:      n.busy,
	}
}
