package cluster

import (
	"testing"

	"synapse/internal/benchutil"
	"synapse/internal/stats"
)

// BenchmarkKernelPlacement is the placement micro: one random-policy
// Place/Release pair per op on a warm cluster — the feasible-set scan
// (scratch-buffer backed), the batched RNG draw, and the occupancy
// bookkeeping. Steady state must not allocate.
func BenchmarkKernelPlacement(b *testing.B) {
	spec := &Spec{
		Policy: PolicyRandom,
		Nodes: []NodeSpec{
			{Name: "small", Machine: "thinkie", Count: 4},
			{Name: "big", Machine: "stampede", Count: 4},
		},
	}
	c, err := New(spec, stats.NewRNG(42))
	if err != nil {
		b.Fatal(err)
	}
	req := Request{Cores: 2, MemBytes: 1 << 30}
	// Warm-up fills the feasible-set scratch.
	if idx, _, ok := c.Place(req); ok {
		c.Release(idx, req)
	}
	rec := benchutil.NewRecorder(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, _, ok := c.Place(req)
		if !ok {
			b.Fatal("placement rejected on an empty cluster")
		}
		c.Release(idx, req)
		rec.Tick()
	}
	rec.Report(b)
}

// TestPlaceAllocFree pins the random policy's allocation-free steady
// state: after the first Place sized the feasible-set scratch, repeated
// Place/Release pairs must not allocate.
func TestPlaceAllocFree(t *testing.T) {
	c := mustNew(t, &Spec{
		Policy: PolicyRandom,
		Nodes: []NodeSpec{
			{Name: "small", Machine: "thinkie", Count: 4},
			{Name: "big", Machine: "stampede", Count: 4},
		},
	})
	req := Request{Cores: 2, MemBytes: 1 << 30}
	pair := func() {
		idx, _, ok := c.Place(req)
		if !ok {
			t.Fatal("placement rejected on an empty cluster")
		}
		c.Release(idx, req)
	}
	pair() // warm-up: sizes the scratch
	if allocs := testing.AllocsPerRun(100, pair); allocs != 0 {
		t.Fatalf("Place/Release allocated %.1f objects per pair, want 0", allocs)
	}
}
