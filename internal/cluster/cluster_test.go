package cluster

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"synapse/internal/stats"
)

type jsonRaw = json.RawMessage

// twoNodeSpec is a small heterogeneous cluster: a 4-core and a 16-core node.
func twoNodeSpec() *Spec {
	return &Spec{
		Policy: PolicyFirstFit,
		Nodes: []NodeSpec{
			{Name: "small", Machine: "thinkie"}, // 4 cores in the catalog
			{Name: "big", Machine: "stampede"},  // 16 cores
		},
	}
}

func mustNew(t *testing.T, s *Spec) *Cluster {
	t.Helper()
	c, err := New(s, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidateRejections(t *testing.T) {
	neg := -0.5
	big := 1.5
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"unknown policy", func(s *Spec) { s.Policy = "round_robin" }, "unknown policy"},
		{"no nodes", func(s *Spec) { s.Nodes = nil }, "no nodes"},
		{"negative contention", func(s *Spec) { s.Contention = &neg }, "outside [0, 1]"},
		{"contention above one", func(s *Spec) { s.Contention = &big }, "outside [0, 1]"},
		{"node without machine", func(s *Spec) { s.Nodes[0].Machine = "" }, "no machine"},
		{"negative count", func(s *Spec) { s.Nodes[0].Count = -1 }, "negative count"},
		{"negative cores", func(s *Spec) { s.Nodes[0].Cores = -2 }, "negative cores"},
		{"negative mem", func(s *Spec) { s.Nodes[0].MemGB = -1 }, "mem_gb -1 outside"},
		{"mem overflows bytes", func(s *Spec) { s.Nodes[0].MemGB = 2e10 }, "outside [0,"},
		{"bad inline machine", func(s *Spec) {
			s.Machines = map[string]jsonRaw{"x": jsonRaw(`{"name": "x", "clock_ghz": 0}`)}
		}, "inline machine"},
		{"unknown field in inline machine", func(s *Spec) {
			s.Machines = map[string]jsonRaw{"x": jsonRaw(`{"name": "x", "clock_ghz": 2, "cores": 4, "mem_gb": 8, "mem_bw_gbs": 10, "ghz": 3}`)}
		}, "unknown field"},
		{"inline machine name differs from key", func(s *Spec) {
			// Downstream handles are keyed by model name: a mismatch
			// would let two models share one name and swap machines.
			s.Machines = map[string]jsonRaw{"fast": jsonRaw(`{"name": "stampede", "clock_ghz": 9, "cores": 4, "mem_gb": 8, "mem_bw_gbs": 10}`)}
		}, "must match its key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := twoNodeSpec()
			tc.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestNewRejectsUnknownMachine(t *testing.T) {
	s := twoNodeSpec()
	s.Nodes[0].Machine = "deepthought"
	if _, err := New(s, nil); err == nil || !strings.Contains(err.Error(), "deepthought") {
		t.Fatalf("unknown machine accepted: %v", err)
	}
}

func TestNewRejectsDuplicateNodeNames(t *testing.T) {
	s := twoNodeSpec()
	s.Nodes[1].Name = "small"
	if _, err := New(s, nil); err == nil || !strings.Contains(err.Error(), "duplicate node name") {
		t.Fatalf("duplicate node names accepted: %v", err)
	}
}

func TestCountExpandsAndNames(t *testing.T) {
	s := &Spec{Nodes: []NodeSpec{{Machine: "comet", Count: 3}}}
	c := mustNew(t, s)
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	for i, want := range []string{"comet-0", "comet-1", "comet-2"} {
		if got := c.Info(i).Name; got != want {
			t.Errorf("node %d name = %q, want %q", i, got, want)
		}
	}
}

func TestInlineMachineResolution(t *testing.T) {
	s := &Spec{
		Machines: map[string]jsonRaw{
			"tiny": jsonRaw(`{"name": "tiny", "clock_ghz": 1, "cores": 2, "mem_gb": 4, "mem_bw_gbs": 10}`),
		},
		Nodes: []NodeSpec{{Machine: "tiny"}},
	}
	c := mustNew(t, s)
	if got := c.Info(0); got.Machine != "tiny" || got.Cores != 2 {
		t.Fatalf("inline machine node = %+v", got)
	}
	if len(c.Models()) != 1 || c.Models()[0].Name != "tiny" {
		t.Fatalf("Models = %v", c.Models())
	}
}

func TestNodeOverrides(t *testing.T) {
	s := &Spec{Nodes: []NodeSpec{{Machine: "stampede", Cores: 2, MemGB: 1}}}
	c := mustNew(t, s)
	info := c.Info(0)
	if info.Cores != 2 || info.MemBytes != 1<<30 {
		t.Fatalf("overrides ignored: %+v", info)
	}
	if c.Fits(Request{Cores: 3}) {
		t.Error("request wider than the overridden node should not fit")
	}
	if !c.Fits(Request{Cores: 2, MemBytes: 1 << 30}) {
		t.Error("exact-fit request rejected")
	}
}

func TestFirstFitPacksInOrder(t *testing.T) {
	c := mustNew(t, twoNodeSpec())
	r := Request{Cores: 2}
	idx, occ, ok := c.Place(r)
	if !ok || idx != 0 || occ != 0 {
		t.Fatalf("first placement = (%d, %g, %v), want node 0 at occ 0", idx, occ, ok)
	}
	idx, occ, ok = c.Place(r)
	if !ok || idx != 0 || occ != 0.5 {
		t.Fatalf("second placement = (%d, %g, %v), want node 0 at occ 0.5", idx, occ, ok)
	}
	// Node 0 (4 cores) is now full; spill to node 1.
	idx, occ, ok = c.Place(r)
	if !ok || idx != 1 || occ != 0 {
		t.Fatalf("third placement = (%d, %g, %v), want node 1 at occ 0", idx, occ, ok)
	}
}

func TestBestFitPrefersTightestNode(t *testing.T) {
	s := twoNodeSpec()
	s.Policy = PolicyBestFit
	c := mustNew(t, s)
	// 4-core node leaves 4-3=1 free; 16-core leaves 13: best fit is small.
	if idx, _, ok := c.Place(Request{Cores: 3}); !ok || idx != 0 {
		t.Fatalf("best fit chose node %d", idx)
	}
	// Now only the big node can host 3 more cores.
	if idx, _, ok := c.Place(Request{Cores: 3}); !ok || idx != 1 {
		t.Fatalf("best fit spill chose node %d", idx)
	}
}

func TestLeastLoadedSpreads(t *testing.T) {
	s := &Spec{
		Policy: PolicyLeastLoaded,
		Nodes:  []NodeSpec{{Name: "a", Machine: "comet"}, {Name: "b", Machine: "comet"}},
	}
	c := mustNew(t, s)
	seq := []int{0, 1, 0, 1} // alternating: equal occupancy ties break by order
	for i, want := range seq {
		idx, _, ok := c.Place(Request{Cores: 1})
		if !ok || idx != want {
			t.Fatalf("placement %d = node %d, want %d", i, idx, want)
		}
	}
}

func TestRandomPolicyIsSeedDeterministic(t *testing.T) {
	s := twoNodeSpec()
	s.Policy = PolicyRandom
	run := func(seed uint64) []int {
		c, err := New(s, stats.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		var got []int
		for i := 0; i < 8; i++ {
			idx, _, ok := c.Place(Request{Cores: 1})
			if !ok {
				t.Fatal("placement failed")
			}
			got = append(got, idx)
		}
		return got
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestRandomPolicyNeedsRNG(t *testing.T) {
	s := twoNodeSpec()
	s.Policy = PolicyRandom
	if _, err := New(s, nil); err == nil {
		t.Fatal("random policy without generator accepted")
	}
}

func TestPlaceReleaseAccounting(t *testing.T) {
	c := mustNew(t, twoNodeSpec())
	r := Request{Cores: 4}
	idx, _, ok := c.Place(r)
	if !ok || idx != 0 {
		t.Fatalf("placement = (%d, %v)", idx, ok)
	}
	// Node 0 full: a 4-core request must go to node 1.
	if idx, _, _ := c.Place(r); idx != 1 {
		t.Fatalf("second placement = node %d, want 1", idx)
	}
	c.Release(0, r)
	if idx, _, _ := c.Place(r); idx != 0 {
		t.Fatalf("post-release placement = node %d, want 0", idx)
	}
	if got := c.Placements(); got != 3 {
		t.Errorf("placements = %d, want 3", got)
	}
	info := c.Info(0)
	if info.Placed != 2 || info.PeakCores != 4 {
		t.Errorf("node 0 accounting = %+v", info)
	}
}

func TestRejectionCounting(t *testing.T) {
	s := &Spec{Nodes: []NodeSpec{{Machine: "thinkie"}}} // 4 cores
	c := mustNew(t, s)
	if _, _, ok := c.Place(Request{Cores: 4}); !ok {
		t.Fatal("fill placement failed")
	}
	if _, _, ok := c.Place(Request{Cores: 1}); ok {
		t.Fatal("placement on a full node succeeded")
	}
	if c.Rejections() != 1 {
		t.Fatalf("rejections = %d, want 1", c.Rejections())
	}
}

func TestEffectiveLoad(t *testing.T) {
	half := 0.5
	s := twoNodeSpec()
	s.Contention = &half
	c := mustNew(t, s)
	if got := c.EffectiveLoad(0, 0.2, 0); got != 0.2 {
		t.Errorf("empty-node load = %g, want base 0.2", got)
	}
	// eff = 0.2 + (1-0.2)*0.5*0.5 = 0.4
	if got := c.EffectiveLoad(0, 0.2, 0.5); got != 0.4 {
		t.Errorf("contended load = %g, want 0.4", got)
	}
	// Machine-default contention when the spec leaves it nil.
	c2 := mustNew(t, twoNodeSpec())
	want := 0.2 + (1-0.2)*c2.Model(0).Threading.Contention*0.5
	if got := c2.EffectiveLoad(0, 0.2, 0.5); got != want {
		t.Errorf("default-contention load = %g, want %g", got, want)
	}
	// The result stays strictly below 1 even at the extremes.
	one := 1.0
	s3 := twoNodeSpec()
	s3.Contention = &one
	c3 := mustNew(t, s3)
	if got := c3.EffectiveLoad(0, 0.99, 0.75); got >= 1 {
		t.Errorf("effective load %g reached 1", got)
	}
}

func TestBusyAccounting(t *testing.T) {
	c := mustNew(t, twoNodeSpec())
	c.AddBusy(1, 3*time.Second)
	c.AddBusy(1, time.Second)
	if got := c.Info(1).Busy; got != 4*time.Second {
		t.Fatalf("busy = %v, want 4s", got)
	}
}

func TestParseSpecStrict(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"nodes": [{"machine": "comet"}], "polcy": "best_fit"}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	s, err := ParseSpec([]byte(`{"policy": "least_loaded", "nodes": [{"machine": "comet", "count": 2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Policy != PolicyLeastLoaded || len(s.Nodes) != 1 {
		t.Fatalf("parsed spec = %+v", s)
	}
}

func TestNodeLifecycle(t *testing.T) {
	c := mustNew(t, twoNodeSpec())
	if got := c.State(0); got != StateUp {
		t.Fatalf("fresh node state = %q, want up", got)
	}
	req := Request{Cores: 1}

	// Draining and down nodes refuse placements; first_fit falls through
	// to the next node.
	c.SetDrain(0)
	if idx, _, ok := c.Place(req); !ok || idx != 1 {
		t.Fatalf("placement on drained pool = %d/%v, want node 1", idx, ok)
	}
	c.SetDown(0)
	if got := c.State(0); got != StateDown {
		t.Fatalf("state after down = %q", got)
	}
	// Draining a down node is a no-op (nothing left to drain).
	c.SetDrain(0)
	if got := c.State(0); got != StateDown {
		t.Fatalf("drain resurrected a down node: %q", got)
	}
	c.SetUp(0)
	if idx, _, ok := c.Place(req); !ok || idx != 0 {
		t.Fatalf("placement after recovery = %d/%v, want node 0", idx, ok)
	}
	if got := c.LiveNodes(); got != 2 {
		t.Fatalf("live nodes = %d, want 2", got)
	}
	c.SetDown(1)
	if got := c.LiveNodes(); got != 1 {
		t.Fatalf("live nodes after one down = %d, want 1", got)
	}

	// Idle tracks current usage, not history.
	if c.Idle(0) {
		t.Fatal("node with a placement reported idle")
	}
	c.Release(0, req)
	if !c.Idle(0) {
		t.Fatal("emptied node not idle")
	}

	c.AddKilled(0)
	c.AddKilled(0)
	if got := c.Info(0).Killed; got != 2 {
		t.Fatalf("killed = %d, want 2", got)
	}
}

func TestAddNodesMidRun(t *testing.T) {
	c := mustNew(t, twoNodeSpec())
	idx, err := c.AddNodes(NodeSpec{Name: "spare", Machine: "comet", Count: 2, Cores: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 || idx[0] != 2 || idx[1] != 3 || c.Len() != 4 {
		t.Fatalf("added indices = %v, len = %d", idx, c.Len())
	}
	for _, i := range idx {
		info := c.Info(i)
		if info.State != StateUp || info.Cores != 3 || info.Machine != "comet" {
			t.Fatalf("added node %d = %+v", i, info)
		}
	}
	if c.Info(2).Name != "spare-0" || c.Info(3).Name != "spare-1" {
		t.Fatalf("added names = %q, %q", c.Info(2).Name, c.Info(3).Name)
	}
	// Name collisions fail without mutating the pool.
	if _, err := c.AddNodes(NodeSpec{Name: "spare-1", Machine: "comet"}); err == nil {
		t.Fatal("duplicate added name accepted")
	}
	if c.Len() != 4 {
		t.Fatalf("failed add mutated the pool: len = %d", c.Len())
	}
	if _, err := c.AddNodes(NodeSpec{Machine: "not-a-machine"}); err == nil {
		t.Fatal("unresolvable machine accepted")
	}

	// ShapeOf resolves capacity without adding.
	cores, mem, err := c.ShapeOf(NodeSpec{Machine: "comet", MemGB: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cores == 0 || mem != 2<<30 {
		t.Fatalf("shape = %d cores / %d bytes", cores, mem)
	}
	if c.Len() != 4 {
		t.Fatal("ShapeOf mutated the pool")
	}
}

func TestExpandNames(t *testing.T) {
	if got := ExpandNames(NodeSpec{Name: "n", Machine: "comet"}); len(got) != 1 || got[0] != "n" {
		t.Fatalf("single = %v", got)
	}
	if got := ExpandNames(NodeSpec{Machine: "comet"}); len(got) != 1 || got[0] != "comet" {
		t.Fatalf("machine default = %v", got)
	}
	got := ExpandNames(NodeSpec{Name: "n", Machine: "comet", Count: 3})
	if len(got) != 3 || got[0] != "n-0" || got[2] != "n-2" {
		t.Fatalf("expanded = %v", got)
	}
}
