package retry

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// recorder is an injectable Sleep that records delays without sleeping.
type recorder struct{ delays []time.Duration }

func (r *recorder) sleep(ctx context.Context, d time.Duration) error {
	r.delays = append(r.delays, d)
	return ctx.Err()
}

func seeded(seed int64) func() float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64
}

func TestSucceedsFirstTry(t *testing.T) {
	rec := &recorder{}
	p := Default()
	p.Sleep = rec.sleep
	calls := 0
	if err := p.Do(context.Background(), func(context.Context) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || len(rec.delays) != 0 {
		t.Fatalf("calls=%d delays=%v, want 1 call and no sleeps", calls, rec.delays)
	}
}

func TestRetriesTransientUntilSuccess(t *testing.T) {
	rec := &recorder{}
	p := Default()
	p.Sleep = rec.sleep
	p.Rand = seeded(1)
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || len(rec.delays) != 2 {
		t.Fatalf("calls=%d sleeps=%d, want 3 and 2", calls, len(rec.delays))
	}
}

func TestExhaustionWrapsLastError(t *testing.T) {
	sentinel := errors.New("backend down")
	p := Default()
	p.Attempts = 3
	p.Sleep = (&recorder{}).sleep
	p.Rand = seeded(2)
	err := p.Do(context.Background(), func(context.Context) error { return sentinel })
	var re *Error
	if !errors.As(err, &re) || re.Attempts != 3 {
		t.Fatalf("err = %v, want retry.Error with 3 attempts", err)
	}
	if !errors.Is(err, sentinel) {
		t.Fatal("exhausted error must unwrap to the last attempt's error")
	}
}

func TestTerminalAbortsImmediately(t *testing.T) {
	terminal := errors.New("bad request")
	p := Default()
	p.Sleep = (&recorder{}).sleep
	p.Classify = func(err error) Class {
		if errors.Is(err, terminal) {
			return Terminal
		}
		return Transient
	}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error { calls++; return terminal })
	if calls != 1 || !errors.Is(err, terminal) {
		t.Fatalf("calls=%d err=%v, want 1 call returning the terminal error", calls, err)
	}
}

func TestRetryAfterHintRaisesBackoff(t *testing.T) {
	rec := &recorder{}
	p := Default()
	p.Attempts = 2
	p.Sleep = rec.sleep
	p.Rand = func() float64 { return 0 } // jitter would pick 0 without the hint
	hinted := After(errors.New("shed"), 750*time.Millisecond)
	_ = p.Do(context.Background(), func(context.Context) error { return hinted })
	if len(rec.delays) != 1 || rec.delays[0] < 750*time.Millisecond {
		t.Fatalf("delays=%v, want one sleep >= 750ms (Retry-After honored)", rec.delays)
	}
	if hint, ok := Hint(hinted); !ok || hint != 750*time.Millisecond {
		t.Fatalf("Hint = %v %v", hint, ok)
	}
	if _, ok := Hint(errors.New("plain")); ok {
		t.Fatal("plain error should carry no hint")
	}
}

func TestContextDeadlineStopsRetries(t *testing.T) {
	p := Default()
	p.Attempts = 10
	p.BaseDelay = time.Hour // any sleep would blow the deadline
	p.Rand = func() float64 { return 1 }
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	calls := 0
	start := time.Now()
	err := p.Do(ctx, func(context.Context) error { calls++; return errors.New("transient") })
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want failure after 1 call (sleep would pass deadline)", err, calls)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Do slept toward an unreachable deadline")
	}
}

func TestPerAttemptDeadline(t *testing.T) {
	p := Default()
	p.Attempts = 1
	p.PerAttempt = 10 * time.Millisecond
	err := p.Do(context.Background(), func(ctx context.Context) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return nil
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want per-attempt deadline exceeded", err)
	}
}

func TestBudgetSuppressesRetries(t *testing.T) {
	b := NewBudget(1, 0.25)
	p := Default()
	p.Attempts = 5
	p.Budget = b
	p.Sleep = (&recorder{}).sleep
	p.Rand = seeded(3)
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error { calls++; return errors.New("transient") })
	// The bucket held ~1.1 tokens: exactly one retry fires, then the budget
	// stops the loop.
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (one retry allowed by the budget)", calls)
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	// Tracked traffic refills the bucket.
	for i := 0; i < 4; i++ {
		b.Track()
	}
	if !b.Spend() {
		t.Fatal("budget should have refilled from tracked requests")
	}
}

// TestFullJitterSpreadsClients is the thundering-herd regression test: 200
// simulated clients that fail at the same instant must NOT choose the same
// backoff (the old linear policy slept exactly 50ms*attempt for everyone).
// With full jitter the first-retry delays are i.i.d. uniform over [0, base]:
// assert they are spread across the range, not clustered.
func TestFullJitterSpreadsClients(t *testing.T) {
	const clients = 200
	base := 100 * time.Millisecond
	delays := make([]time.Duration, 0, clients)
	for c := 0; c < clients; c++ {
		rec := &recorder{}
		p := Policy{
			Attempts:  2,
			BaseDelay: base,
			MaxDelay:  time.Second,
			Rand:      seeded(int64(c + 1)), // distinct seed per client, deterministic per run
			Sleep:     rec.sleep,
		}
		_ = p.Do(context.Background(), func(context.Context) error { return errors.New("outage") })
		if len(rec.delays) != 1 {
			t.Fatalf("client %d slept %d times, want 1", c, len(rec.delays))
		}
		delays = append(delays, rec.delays[0])
	}
	sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
	distinct := 1
	for i := 1; i < len(delays); i++ {
		if delays[i] != delays[i-1] {
			distinct++
		}
	}
	if distinct < clients*9/10 {
		t.Fatalf("only %d distinct delays across %d clients — jitter is not spreading retries", distinct, clients)
	}
	if spread := delays[len(delays)-1] - delays[0]; spread < base/2 {
		t.Fatalf("delay spread %v < %v — clients are clustered", spread, base/2)
	}
	// Quartiles each hold a reasonable share: uniform, not bimodal.
	q1 := delays[clients/4]
	q3 := delays[3*clients/4]
	if q1 > base/2 || q3 < base/2 {
		t.Fatalf("quartiles q1=%v q3=%v not straddling %v — distribution skewed", q1, q3, base/2)
	}
	for _, d := range delays {
		if d < 0 || d > base {
			t.Fatalf("delay %v outside [0, %v]", d, base)
		}
	}
}

func TestBackoffCapGrowsAndClamps(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 60 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{10, 20, 40, 60, 60}
	for i, w := range want {
		if got := p.cap(i); got != w*time.Millisecond {
			t.Fatalf("cap(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}
