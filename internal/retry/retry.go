// Package retry is the shared retry/backoff policy layer for the synapsed
// service path. It exists so every wire client retries the same way —
// exponential backoff with *full jitter* (each delay is drawn uniformly from
// [0, cap], so a fleet of clients that fail together does not retry
// together), per-attempt and overall context deadlines, server-provided
// Retry-After hints, and a token-bucket retry budget that stops a fleet from
// amplifying an outage with synchronized retry storms.
//
// The zero Policy is not useful; start from Default() and override fields.
// Errors decide their own fate through the Classifier: Transient errors are
// retried with backoff, Terminal errors abort immediately.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Class is an error's retry classification.
type Class int

const (
	// Transient errors are worth another attempt after backoff.
	Transient Class = iota
	// Terminal errors abort the retry loop immediately.
	Terminal
)

// Classifier maps an attempt's error to its Class. A nil Classifier treats
// every error as Transient.
type Classifier func(error) Class

// Policy describes one retry discipline. Copy-by-value is fine; the only
// shared state is the optional *Budget.
type Policy struct {
	// Attempts is the total number of tries, including the first
	// (Attempts <= 1 means no retries).
	Attempts int
	// BaseDelay is the backoff cap for the first retry; the cap doubles
	// (times Multiplier) per retry up to MaxDelay. The actual sleep is
	// drawn uniformly from [0, cap] — full jitter.
	BaseDelay time.Duration
	// MaxDelay bounds the backoff cap.
	MaxDelay time.Duration
	// Multiplier grows the cap per retry; values <= 1 default to 2.
	Multiplier float64
	// PerAttempt, when positive, bounds each attempt with its own context
	// deadline (the overall deadline still comes from the caller's ctx).
	PerAttempt time.Duration
	// Classify decides which errors retry. Nil retries everything.
	Classify Classifier
	// Budget, when set, is consulted before every retry (never before the
	// first attempt): if the shared bucket is empty the loop stops with
	// ErrBudgetExhausted instead of piling on a struggling server.
	Budget *Budget

	// Rand returns a uniform float64 in [0, 1). Nil uses a process-wide
	// seeded source; tests inject a deterministic one.
	Rand func() float64
	// Sleep waits for d or until ctx is done. Nil uses a timer; tests
	// inject a recorder to observe chosen delays without sleeping.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Default returns the policy used by the synapsed clients: 4 attempts,
// 25ms–2s full-jitter backoff, 10s per attempt.
func Default() Policy {
	return Policy{
		Attempts:   4,
		BaseDelay:  25 * time.Millisecond,
		MaxDelay:   2 * time.Second,
		Multiplier: 2,
		PerAttempt: 10 * time.Second,
	}
}

// ErrBudgetExhausted reports a retry suppressed by an empty budget.
var ErrBudgetExhausted = errors.New("retry: budget exhausted")

// Error is returned when every attempt failed; it unwraps to the last
// attempt's error so sentinel checks (errors.Is) see through it.
type Error struct {
	Attempts int
	Last     error
}

func (e *Error) Error() string {
	return fmt.Sprintf("retry: %d attempts failed: %v", e.Attempts, e.Last)
}

func (e *Error) Unwrap() error { return e.Last }

// afterError carries a server-provided Retry-After hint alongside the error.
type afterError struct {
	err  error
	hint time.Duration
}

func (a *afterError) Error() string             { return a.err.Error() }
func (a *afterError) Unwrap() error             { return a.err }
func (a *afterError) RetryAfter() time.Duration { return a.hint }

// After attaches a server-provided Retry-After hint to err: the next backoff
// sleeps at least d (still capped by the context deadline).
func After(err error, d time.Duration) error {
	if err == nil || d <= 0 {
		return err
	}
	return &afterError{err: err, hint: d}
}

// Hint extracts the innermost Retry-After hint from err, if any.
func Hint(err error) (time.Duration, bool) {
	var a interface{ RetryAfter() time.Duration }
	if errors.As(err, &a) {
		return a.RetryAfter(), true
	}
	return 0, false
}

// globalRand is the default jitter source, seeded once per process and
// locked because policies may be used concurrently.
var (
	globalMu   sync.Mutex
	globalRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func defaultRand() float64 {
	globalMu.Lock()
	defer globalMu.Unlock()
	return globalRand.Float64()
}

func defaultSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// cap returns the backoff ceiling for the i-th retry (i starts at 0).
func (p Policy) cap(i int) time.Duration {
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	base := float64(p.BaseDelay)
	if base <= 0 {
		base = float64(25 * time.Millisecond)
	}
	c := base * math.Pow(mult, float64(i))
	if max := float64(p.MaxDelay); max > 0 && c > max {
		c = max
	}
	return time.Duration(c)
}

// backoff draws the full-jitter delay for the i-th retry, raised to any
// server Retry-After hint carried by err.
func (p Policy) backoff(i int, err error) time.Duration {
	rnd := p.Rand
	if rnd == nil {
		rnd = defaultRand
	}
	d := time.Duration(rnd() * float64(p.cap(i)))
	if hint, ok := Hint(err); ok && hint > d {
		d = hint
	}
	return d
}

// Do runs op until it succeeds, a Terminal error occurs, the attempt budget
// or retry budget is exhausted, or ctx expires. op receives a context that
// carries the per-attempt deadline (if configured) on top of ctx.
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	classify := p.Classify
	sleep := p.Sleep
	if sleep == nil {
		sleep = defaultSleep
	}
	if p.Budget != nil {
		p.Budget.Track()
	}
	var last error
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return &Error{Attempts: i, Last: last}
			}
			return err
		}
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if p.PerAttempt > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.PerAttempt)
		}
		err := op(attemptCtx)
		cancel()
		if err == nil {
			return nil
		}
		last = err
		if classify != nil && classify(err) == Terminal {
			return err
		}
		if i == attempts-1 {
			break
		}
		if p.Budget != nil && !p.Budget.Spend() {
			return &Error{Attempts: i + 1, Last: fmt.Errorf("%w (last error: %v)", ErrBudgetExhausted, last)}
		}
		d := p.backoff(i, err)
		// Don't sleep past the caller's deadline: fail now with the real
		// error instead of burning the remaining budget waiting.
		if dl, ok := ctx.Deadline(); ok && time.Now().Add(d).After(dl) {
			return &Error{Attempts: i + 1, Last: last}
		}
		if serr := sleep(ctx, d); serr != nil {
			return &Error{Attempts: i + 1, Last: last}
		}
	}
	return &Error{Attempts: attempts, Last: last}
}
