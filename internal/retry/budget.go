package retry

import "sync"

// Budget is a token-bucket retry budget shared by every call on one client
// (or one fleet member): each *first* attempt deposits Ratio tokens, each
// retry withdraws one. When a backend degrades, retries are limited to
// Ratio× the live request rate instead of multiplying it by the attempt
// count — the classic defense against retry storms.
//
// The bucket is request-driven, not wall-clock-driven, so behavior is
// deterministic under test. The zero value is unusable; construct with
// NewBudget. Safe for concurrent use.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	ratio  float64
}

// NewBudget returns a budget holding at most max tokens, refilled by ratio
// tokens per tracked request. A ratio of 0.1 allows roughly one retry per
// ten successful-or-failed first attempts once the initial burst (the bucket
// starts full) is spent. max <= 0 defaults to 10, ratio <= 0 to 0.1.
func NewBudget(max, ratio float64) *Budget {
	if max <= 0 {
		max = 10
	}
	if ratio <= 0 {
		ratio = 0.1
	}
	return &Budget{tokens: max, max: max, ratio: ratio}
}

// Track records one first attempt, depositing the refill ratio.
func (b *Budget) Track() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.ratio
	if b.tokens > b.max {
		b.tokens = b.max
	}
}

// Spend withdraws one retry token, reporting whether a retry is allowed.
func (b *Budget) Spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens reports the current balance (observability, tests).
func (b *Budget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
