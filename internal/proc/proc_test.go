package proc

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"synapse/internal/app"
	"synapse/internal/machine"
)

func mustExecute(t *testing.T, w app.Workload, m *machine.Model, opts Options) *SimProcess {
	t.Helper()
	p, err := Execute(w, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMDSimDurationScalesWithSteps(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	small := mustExecute(t, app.MDSim(10_000), m, Options{})
	large := mustExecute(t, app.MDSim(1_000_000), m, Options{})
	if small.Duration() <= 0 {
		t.Fatal("small run has zero duration")
	}
	ratio := large.Duration().Seconds() / small.Duration().Seconds()
	// 1e6 steps vs 1e4 steps: ~100x compute, plus constant startup.
	if ratio < 20 || ratio > 110 {
		t.Errorf("duration ratio = %v, want within [20,110]", ratio)
	}
}

// Calibration: 1e7 steps on Thinkie takes a few hundred seconds (paper Fig 4
// shows Tx ≈ 5x10^2 s at 10^7 iterations).
func TestMDSimThinkieAbsoluteCalibration(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	p := mustExecute(t, app.MDSim(10_000_000), m, Options{})
	tx := p.Duration().Seconds()
	if tx < 300 || tx > 800 {
		t.Errorf("Tx(1e7 steps, thinkie) = %.1fs, want a few hundred seconds", tx)
	}
}

func TestFinalCountersMatchWorkload(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	w := app.MDSim(50_000)
	p := mustExecute(t, w, m, Options{})
	f := p.Final()

	ap, _ := m.App(w.App)
	wantCycles := w.TotalComputeUnits() * ap.CyclesPerUnit
	if math.Abs(f.Cycles-wantCycles) > 1e-6*wantCycles {
		t.Errorf("cycles = %v, want %v", f.Cycles, wantCycles)
	}
	if math.Abs(f.Instructions-wantCycles*ap.IPC) > 1e-6*f.Instructions {
		t.Errorf("instructions = %v, want cycles*IPC", f.Instructions)
	}
	if f.ReadBytes != float64(w.TotalReadBytes()) {
		t.Errorf("read bytes = %v, want %v", f.ReadBytes, w.TotalReadBytes())
	}
	if f.WriteBytes != float64(w.TotalWriteBytes()) {
		t.Errorf("write bytes = %v, want %v", f.WriteBytes, w.TotalWriteBytes())
	}
	if f.PeakRSS != app.MDSimRSSPeak {
		t.Errorf("peak RSS = %v, want %v", f.PeakRSS, app.MDSimRSSPeak)
	}
}

func TestCountersAtMonotone(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	p := mustExecute(t, app.MDSim(100_000), m, Options{})
	var prev float64
	for i := 0; i <= 20; i++ {
		tt := time.Duration(float64(p.Duration()) * float64(i) / 20)
		c := p.CountersAt(tt)
		if c.Cycles < prev {
			t.Fatalf("cycles decreased at %v: %v < %v", tt, c.Cycles, prev)
		}
		prev = c.Cycles
	}
	// At the end, counters equal finals.
	end := p.CountersAt(p.Duration())
	if end.Cycles != p.Final().Cycles {
		t.Errorf("counters at end = %v, final = %v", end.Cycles, p.Final().Cycles)
	}
	// Beyond the end, clamped.
	after := p.CountersAt(p.Duration() + time.Hour)
	if after.Cycles != p.Final().Cycles {
		t.Error("counters after exit should be final")
	}
}

func TestCountersInterpolateLinearly(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	// Single blended phase: rates are uniform, so counters at T/2 must be
	// half the totals.
	w := app.Workload{
		App: machine.AppMDSim, Command: "x", Workers: 1,
		Phases: []app.Phase{{
			Name: "u", ComputeUnits: 100_000, WriteBytes: 1 << 20, WriteBlock: 4096,
			RSSStart: 1e6, RSSEnd: 2e6, Blend: true,
		}},
	}
	p := mustExecute(t, w, m, Options{})
	half := p.CountersAt(p.Duration() / 2)
	if rel := math.Abs(half.Cycles/p.Final().Cycles - 0.5); rel > 0.01 {
		t.Errorf("cycles at T/2 = %.3f of total, want 0.5", half.Cycles/p.Final().Cycles)
	}
	if rel := math.Abs(half.WriteBytes/p.Final().WriteBytes - 0.5); rel > 0.01 {
		t.Errorf("writes at T/2 = %.3f of total, want 0.5", half.WriteBytes/p.Final().WriteBytes)
	}
	if math.Abs(p.RSSAt(p.Duration()/2)-1.5e6) > 1e4 {
		t.Errorf("RSS at T/2 = %v, want 1.5e6", p.RSSAt(p.Duration()/2))
	}
}

func TestSequentialPhaseOrdering(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	// Unblended phase: read happens before compute, write after.
	w := app.Workload{
		App: machine.AppMDSim, Command: "x", Workers: 1,
		Phases: []app.Phase{{
			Name: "seq", ComputeUnits: 200_000,
			ReadBytes: 64 << 20, ReadBlock: 1 << 20,
			WriteBytes: 64 << 20, WriteBlock: 1 << 20,
			RSSStart: 1e6,
		}},
	}
	p := mustExecute(t, w, m, Options{})
	early := p.CountersAt(p.Duration() / 100)
	if early.WriteBytes > 0 {
		t.Error("writes should not start before compute in a sequential phase")
	}
	if early.ReadBytes == 0 {
		t.Error("reads should start first in a sequential phase")
	}
	// Just before the end all reads done, writes in progress or done.
	late := p.CountersAt(p.Duration() * 99 / 100)
	if late.ReadBytes != p.Final().ReadBytes {
		t.Error("reads should be complete near the end")
	}
}

func TestSleeperConsumesTimeOnly(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	p := mustExecute(t, app.Sleeper(30), m, Options{})
	if got := p.Duration(); math.Abs(got.Seconds()-30) > 0.001 {
		t.Errorf("sleeper duration = %v, want 30s", got)
	}
	f := p.Final()
	if f.Cycles != 0 || f.ReadBytes != 0 || f.WriteBytes != 0 {
		t.Errorf("sleeper consumed resources: %+v", f)
	}
}

func TestJitterChangesTxNotCounters(t *testing.T) {
	m := machine.MustGet(machine.Supermic) // largest NoiseRel in catalog
	w := app.MDSim(100_000)
	a := mustExecute(t, w, m, Options{Seed: 1, Jitter: true})
	b := mustExecute(t, w, m, Options{Seed: 2, Jitter: true})
	c := mustExecute(t, w, m, Options{Seed: 1, Jitter: true})
	if a.Duration() == b.Duration() {
		t.Error("different seeds should give different Tx")
	}
	if a.Duration() != c.Duration() {
		t.Error("same seed should reproduce Tx exactly")
	}
	if a.Final().Cycles != b.Final().Cycles {
		t.Error("jitter must not change consumption counters")
	}
}

func TestLoadSlowsCompute(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	w := app.MDSim(100_000)
	base := mustExecute(t, w, m, Options{})
	loaded := mustExecute(t, w, m, Options{Load: 0.5})
	ratio := loaded.Duration().Seconds() / base.Duration().Seconds()
	if ratio < 1.5 {
		t.Errorf("50%% load should roughly double compute time, ratio = %v", ratio)
	}
	if loaded.Final().Cycles != base.Final().Cycles {
		t.Error("load must not change cycles consumed")
	}
}

func TestLoadValidation(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	if _, err := Execute(app.MDSim(10), m, Options{Load: 1.5}); err == nil {
		t.Error("load >= 1 should error")
	}
	if _, err := Execute(app.MDSim(10), m, Options{Load: -0.1}); err == nil {
		t.Error("negative load should error")
	}
}

func TestParallelWorkloadFasterButSameWork(t *testing.T) {
	m := machine.MustGet(machine.Titan)
	serial := mustExecute(t, app.MDSim(1_000_000), m, Options{})
	par := mustExecute(t, app.MDSimParallel(1_000_000, 8, machine.ModeOpenMP), m, Options{})
	if par.Duration() >= serial.Duration() {
		t.Errorf("8-way OpenMP (%v) should beat serial (%v)", par.Duration(), serial.Duration())
	}
	if par.Final().Cycles != serial.Final().Cycles {
		t.Error("parallel run should do the same total work")
	}
	if par.Final().Threads != 8 {
		t.Errorf("threads = %v, want 8", par.Final().Threads)
	}
	mpi := mustExecute(t, app.MDSimParallel(1_000_000, 8, machine.ModeMPI), m, Options{})
	if mpi.Final().Processes != 8 {
		t.Errorf("processes = %v, want 8", mpi.Final().Processes)
	}
}

func TestEfficiencyIsIPCOverWidth(t *testing.T) {
	m := machine.MustGet(machine.Comet)
	p := mustExecute(t, app.MDSim(100_000), m, Options{})
	ap, _ := m.App(machine.AppMDSim)
	want := ap.IPC / issueWidth
	if got := p.Final().Efficiency(); math.Abs(got-want) > 1e-9 {
		t.Errorf("efficiency = %v, want %v", got, want)
	}
}

func TestRSSAtBoundaries(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	p := mustExecute(t, app.MDSim(100_000), m, Options{})
	if got := p.RSSAt(0); got != app.MDSimRSSBase {
		t.Errorf("RSS at 0 = %v, want base %v", got, app.MDSimRSSBase)
	}
	if got := p.RSSAt(p.Duration()); math.Abs(got-app.MDSimRSSPeak) > 1 {
		t.Errorf("RSS at end = %v, want peak %v", got, app.MDSimRSSPeak)
	}
	if got := p.RSSAt(p.Duration() + time.Hour); math.Abs(got-app.MDSimRSSPeak) > 1 {
		t.Errorf("RSS after end = %v, want peak", got)
	}
}

func TestIOBenchProcess(t *testing.T) {
	m := machine.MustGet(machine.Titan)
	small := mustExecute(t, app.IOBench(256<<20, 4<<10, machine.FSLustre), m, Options{})
	large := mustExecute(t, app.IOBench(256<<20, 16<<20, machine.FSLustre), m, Options{})
	if small.Duration() <= large.Duration() {
		t.Errorf("4KB blocks (%v) should be slower than 16MB blocks (%v)",
			small.Duration(), large.Duration())
	}
}

func TestUnknownFilesystemFails(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	w := app.IOBench(1<<20, 4096, "quantum-fs")
	if _, err := Execute(w, m, Options{}); err == nil {
		t.Error("unknown filesystem should fail execution")
	}
}

func TestInvalidWorkloadFails(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	if _, err := Execute(app.Workload{}, m, Options{}); err == nil {
		t.Error("invalid workload should fail")
	}
}

func TestDoneAndSegments(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	p := mustExecute(t, app.MDSim(10_000), m, Options{})
	if p.Done(0) {
		t.Error("process should not be done at start")
	}
	if !p.Done(p.Duration()) {
		t.Error("process should be done at its duration")
	}
	if p.SegmentCount() == 0 {
		t.Error("expected timeline segments")
	}
	if p.Machine() != m {
		t.Error("Machine() mismatch")
	}
	if p.Workload().Command != "mdsim" {
		t.Error("Workload() mismatch")
	}
}

// Property: counters at any offset never exceed finals, and cycles are
// monotone in t.
func TestCountersBoundedProperty(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	p := mustExecute(t, app.MDSim(200_000), m, Options{})
	f := p.Final()
	fn := func(fracRaw, fracRaw2 uint16) bool {
		f1 := float64(fracRaw) / 65535
		f2 := float64(fracRaw2) / 65535
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		t1 := time.Duration(float64(p.Duration()) * f1)
		t2 := time.Duration(float64(p.Duration()) * f2)
		c1, c2 := p.CountersAt(t1), p.CountersAt(t2)
		return c1.Cycles <= c2.Cycles+1e-6 &&
			c2.Cycles <= f.Cycles+1e-6 &&
			c1.WriteBytes <= c2.WriteBytes+1e-6 &&
			c2.WriteBytes <= f.WriteBytes+1e-6
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: execution duration is monotone in machine speed for pure-compute
// workloads (faster clock, never slower run).
func TestDurationMachineMonotonicityProperty(t *testing.T) {
	slow := machine.MustGet(machine.Titan)   // 2.2 GHz
	fast := machine.MustGet(machine.Thinkie) // 2.66 GHz, same app? cycles differ.
	// Use a pure compute workload with the default app so cycles/unit
	// comparisons are apples-to-apples only within one machine; here we
	// only require positive durations and internal monotonicity in units.
	f := func(uRaw uint16) bool {
		units := float64(uRaw) + 1
		w := app.Workload{App: machine.AppMDSim, Command: "c", Workers: 1,
			Phases: []app.Phase{{Name: "c", ComputeUnits: units, RSSStart: 1, Blend: true}}}
		p1, err1 := Execute(w, slow, Options{})
		p2, err2 := Execute(w, fast, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		return p1.Duration() > 0 && p2.Duration() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
