// Package proc executes application workloads on simulated machines.
//
// A SimProcess is the simulated-mode stand-in for the operating-system
// process the paper's profiler watches through /proc and perf-stat: it
// precomputes a piecewise-linear timeline of resource consumption from an
// app.Workload and a machine.Model, and can then report cumulative counters
// at any time offset. Watchers sample those counters exactly as they would
// sample a real process, which keeps the profiler code path identical in
// simulated and real mode.
package proc

import (
	"fmt"
	"math"
	"time"

	"synapse/internal/app"
	"synapse/internal/machine"
	"synapse/internal/perfcount"
	"synapse/internal/stats"
)

// issueWidth is the modeled CPU issue width used to derive stalled cycles
// from a workload's effective IPC: a loop retiring IPC instructions per
// cycle on a width-4 core wastes the equivalent of (width-IPC)/IPC of its
// used cycles in stalls. The paper's efficiency formula then evaluates to
// IPC/width.
const issueWidth = 4.0

// stallFrontFrac splits modeled stalls between frontend and backend; memory
// bound codes stall mostly in the backend.
const stallFrontFrac = 0.4

// Options adjust workload execution.
type Options struct {
	// Seed drives the run-to-run jitter; runs with equal seeds are
	// identical.
	Seed uint64
	// Jitter stretches segment durations by the machine's NoiseRel to
	// model system background (the error bars of the paper's figures).
	// Counters are unaffected: the paper finds consumption metrics
	// consistent across runs while Tx varies (Fig 6).
	Jitter bool
	// Load models an artificially stressed machine (paper §4.3): the
	// fraction of CPU capacity consumed by background load. Compute
	// segments slow down by 1/(1-Load).
	Load float64
	// CounterNoise adds a small run-wide multiplicative error to the
	// consumption counters, modeling hardware-counter measurement noise
	// (the paper's Fig 8 reports tiny but non-zero confidence intervals).
	// It is a relative standard deviation, typically ≤0.002.
	CounterNoise float64
}

// segment is one span of uniform resource-consumption rates.
type segment struct {
	start, end time.Duration
	// counters consumed across the whole segment (not rates).
	c perfcount.Counters
}

// phaseSpan records a phase's extent for gauge interpolation.
type phaseSpan struct {
	start, end       time.Duration
	rssStart, rssEnd float64
}

// SimProcess is a fully materialised simulated process execution.
type SimProcess struct {
	workload app.Workload
	m        *machine.Model

	segs   []segment
	phases []phaseSpan
	dur    time.Duration
	final  perfcount.Counters

	threads, procs float64
	counterScale   float64
}

// Execute materialises the workload's execution on machine m.
func Execute(w app.Workload, m *machine.Model, opts Options) (*SimProcess, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if opts.Load < 0 || opts.Load >= 1 {
		if opts.Load != 0 {
			return nil, fmt.Errorf("proc: load %g outside [0,1)", opts.Load)
		}
	}
	ap, err := m.App(w.App)
	if err != nil {
		return nil, err
	}

	rng := stats.NewRNG(opts.Seed ^ 0x5eed5eed)
	jitter := func(d time.Duration) time.Duration {
		if !opts.Jitter || d <= 0 {
			return d
		}
		return time.Duration(rng.Jitter(float64(d), m.NoiseRel))
	}
	counterScale := 1.0
	if opts.CounterNoise > 0 {
		counterScale = rng.Jitter(1, opts.CounterNoise)
	}

	p := &SimProcess{workload: w, m: m, threads: 1, procs: 1, counterScale: counterScale}
	if w.Workers > 1 {
		switch w.Mode {
		case machine.ModeOpenMP:
			p.threads = float64(w.Workers)
		case machine.ModeMPI:
			p.procs = float64(w.Workers)
		}
	}

	var cursor time.Duration
	for i := range w.Phases {
		ph := &w.Phases[i]
		fs, err := m.Filesystem(ph.Filesystem)
		if err != nil {
			return nil, fmt.Errorf("proc: phase %s: %w", ph.Name, err)
		}

		// Per-activity durations on this machine.
		cycles := ph.ComputeUnits * ap.CyclesPerUnit
		computeDur := m.ComputeTime(cycles)
		if opts.Load > 0 {
			computeDur = time.Duration(float64(computeDur) / (1 - opts.Load))
		}
		if w.Workers > 1 && w.Mode != machine.ModeSerial {
			computeDur = ap.Parallel.Scale(computeDur, w.Workers, m.Cores, w.Mode)
		}
		readDur := fs.ReadTime(ph.ReadBytes, ph.ReadBlock)
		writeDur := fs.WriteTime(ph.WriteBytes, ph.WriteBlock)
		memDur := m.MemTime(ph.AllocBytes + ph.FreeBytes)
		netDur := m.NetTime(ph.NetReadBytes+ph.NetWriteBytes, ph.NetBlock)
		waitDur := time.Duration(ph.WaitSeconds * float64(time.Second))

		counters := func(cyc float64, rb, wb, ab, fb, nr, nw int64) perfcount.Counters {
			c := perfcount.Counters{
				Cycles:       cyc,
				Instructions: cyc * ap.IPC,
				FLOPs:        0,
				ReadBytes:    float64(rb),
				WriteBytes:   float64(wb),
				AllocBytes:   float64(ab),
				FreeBytes:    float64(fb),
				NetReadBytes: float64(nr), NetWriteBytes: float64(nw),
			}
			if cyc > 0 {
				stalled := cyc * (issueWidth - ap.IPC) / ap.IPC
				if stalled < 0 {
					stalled = 0
				}
				c.StalledFront = stalled * stallFrontFrac
				c.StalledBack = stalled * (1 - stallFrontFrac)
			}
			if ph.ReadBlock > 0 && rb > 0 {
				c.ReadOps = math.Ceil(float64(rb) / float64(ph.ReadBlock))
			} else if rb > 0 {
				c.ReadOps = 1
			}
			if ph.WriteBlock > 0 && wb > 0 {
				c.WriteOps = math.Ceil(float64(wb) / float64(ph.WriteBlock))
			} else if wb > 0 {
				c.WriteOps = 1
			}
			return c
		}

		phaseStart := cursor
		if ph.Blend {
			// All activity mixed uniformly over the phase.
			dur := jitter(computeDur + readDur + writeDur + memDur + netDur + waitDur)
			c := counters(cycles, ph.ReadBytes, ph.WriteBytes, ph.AllocBytes, ph.FreeBytes,
				ph.NetReadBytes, ph.NetWriteBytes)
			c.FLOPs = ph.ComputeUnits * ph.FLOPsPerUnit
			cursor = p.addSegment(cursor, dur, c)
		} else {
			// Sequential activities: read, alloc, compute, write,
			// net, free, wait.
			type act struct {
				dur time.Duration
				c   perfcount.Counters
			}
			cc := counters(cycles, 0, 0, 0, 0, 0, 0)
			cc.FLOPs = ph.ComputeUnits * ph.FLOPsPerUnit
			acts := []act{
				{readDur, counters(0, ph.ReadBytes, 0, 0, 0, 0, 0)},
				{m.MemTime(ph.AllocBytes), counters(0, 0, 0, ph.AllocBytes, 0, 0, 0)},
				{computeDur, cc},
				{writeDur, counters(0, 0, ph.WriteBytes, 0, 0, 0, 0)},
				{netDur, counters(0, 0, 0, 0, 0, ph.NetReadBytes, ph.NetWriteBytes)},
				{m.MemTime(ph.FreeBytes), counters(0, 0, 0, 0, ph.FreeBytes, 0, 0)},
				{waitDur, perfcount.Counters{}},
			}
			for _, a := range acts {
				if a.dur <= 0 && a.c.IsZero() {
					continue
				}
				cursor = p.addSegment(cursor, jitter(a.dur), a.c)
			}
		}
		rssEnd := ph.RSSEnd
		if rssEnd == 0 {
			rssEnd = ph.RSSStart
		}
		p.phases = append(p.phases, phaseSpan{phaseStart, cursor, ph.RSSStart, rssEnd})
	}
	p.dur = cursor
	for _, s := range p.segs {
		p.final = p.final.Add(s.c)
	}
	p.final.Threads = p.threads
	p.final.Processes = p.procs
	p.final.RSS = p.RSSAt(p.dur)
	p.final.PeakRSS = p.peakRSSUpTo(p.dur)
	return p, nil
}

// addSegment appends a segment and returns the new cursor.
func (p *SimProcess) addSegment(start, dur time.Duration, c perfcount.Counters) time.Duration {
	if dur < 0 {
		dur = 0
	}
	end := start + dur
	c = c.Scale(p.counterScale)
	p.segs = append(p.segs, segment{start: start, end: end, c: c})
	return end
}

// Duration returns the simulated Tx of the process.
func (p *SimProcess) Duration() time.Duration { return p.dur }

// Workload returns the executed workload.
func (p *SimProcess) Workload() app.Workload { return p.workload }

// Machine returns the model the process ran on.
func (p *SimProcess) Machine() *machine.Model { return p.m }

// Final returns the process' total resource consumption, as an exit-time
// counter read (perf-stat and rusage semantics).
func (p *SimProcess) Final() perfcount.Counters { return p.final }

// CountersAt returns cumulative counters at offset t since process start.
// Offsets beyond the process end return the final counters; this mirrors
// reading /proc for a process that has already exited being impossible —
// callers (watchers) must check Done separately.
func (p *SimProcess) CountersAt(t time.Duration) perfcount.Counters {
	if t >= p.dur {
		return p.final
	}
	var c perfcount.Counters
	for _, s := range p.segs {
		if s.end <= t {
			c = c.Add(s.c)
			continue
		}
		if s.start >= t {
			break
		}
		// Partial segment: linear interpolation.
		frac := float64(t-s.start) / float64(s.end-s.start)
		c = c.Add(s.c.Scale(frac))
	}
	c.Threads = p.threads
	c.Processes = p.procs
	c.RSS = p.RSSAt(t)
	c.PeakRSS = p.peakRSSUpTo(t)
	return c
}

// RSSAt returns the resident-set gauge at offset t, interpolating linearly
// within each phase.
func (p *SimProcess) RSSAt(t time.Duration) float64 {
	if len(p.phases) == 0 {
		return 0
	}
	if t <= 0 {
		return p.phases[0].rssStart
	}
	for _, ph := range p.phases {
		if t > ph.end {
			continue
		}
		if ph.end == ph.start {
			return ph.rssEnd
		}
		frac := float64(t-ph.start) / float64(ph.end-ph.start)
		return ph.rssStart + frac*(ph.rssEnd-ph.rssStart)
	}
	return p.phases[len(p.phases)-1].rssEnd
}

// peakRSSUpTo returns the RSS high-water mark over [0, t].
func (p *SimProcess) peakRSSUpTo(t time.Duration) float64 {
	var peak float64
	for _, ph := range p.phases {
		peak = math.Max(peak, ph.rssStart)
		end := ph.end
		if end > t {
			if ph.start >= t {
				break
			}
			// Partial phase.
			frac := float64(t-ph.start) / float64(ph.end-ph.start)
			peak = math.Max(peak, ph.rssStart+frac*(ph.rssEnd-ph.rssStart))
			break
		}
		peak = math.Max(peak, ph.rssEnd)
	}
	return peak
}

// Done reports whether the process has exited by offset t.
func (p *SimProcess) Done(t time.Duration) bool { return t >= p.dur }

// SegmentCount exposes the number of timeline segments (for tests).
func (p *SimProcess) SegmentCount() int { return len(p.segs) }
