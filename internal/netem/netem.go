// Package netem provides real network-traffic emulation over loopback TCP
// sockets. The paper implements "emulation of simple socket-based network
// communication" (§4.5 IPC/MPI); this is that capability for real-mode runs.
// Simulated runs model transfer time analytically via machine.Model.NetTime.
package netem

import (
	"fmt"
	"io"
	"net"
	"time"
)

// DefaultBlock is the write granularity used when none is configured.
const DefaultBlock = 64 << 10

// Transfer sends total bytes over a fresh loopback TCP connection in blocks
// of block bytes, waits for the receiver to drain them, and returns the
// elapsed wall time.
func Transfer(total, block int64) (time.Duration, error) {
	if total <= 0 {
		return 0, nil
	}
	if block <= 0 || block > total {
		block = min64(DefaultBlock, total)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, fmt.Errorf("netem: listen: %w", err)
	}
	defer ln.Close()

	recvDone := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			recvDone <- fmt.Errorf("netem: accept: %w", err)
			return
		}
		defer conn.Close()
		_, err = io.Copy(io.Discard, conn)
		recvDone <- err
	}()

	start := time.Now()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return 0, fmt.Errorf("netem: dial: %w", err)
	}
	buf := make([]byte, block)
	for i := range buf {
		buf[i] = byte(i)
	}
	remaining := total
	for remaining > 0 {
		n := min64(block, remaining)
		if _, err := conn.Write(buf[:n]); err != nil {
			conn.Close()
			return 0, fmt.Errorf("netem: write: %w", err)
		}
		remaining -= n
	}
	if err := conn.Close(); err != nil {
		return 0, fmt.Errorf("netem: close: %w", err)
	}
	if err := <-recvDone; err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// Echo sends total bytes to a loopback echo server and reads them all back,
// exercising both directions of the connection endpoint.
func Echo(total, block int64) (time.Duration, error) {
	if total <= 0 {
		return 0, nil
	}
	if block <= 0 || block > total {
		block = min64(DefaultBlock, total)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, fmt.Errorf("netem: listen: %w", err)
	}
	defer ln.Close()

	srvDone := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			srvDone <- err
			return
		}
		defer conn.Close()
		// Echo until EOF.
		_, err = io.Copy(conn, conn)
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		srvDone <- err
	}()

	start := time.Now()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return 0, fmt.Errorf("netem: dial: %w", err)
	}
	defer conn.Close()

	out := make([]byte, block)
	readDone := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, conn)
		readDone <- err
	}()
	remaining := total
	for remaining > 0 {
		n := min64(block, remaining)
		if _, err := conn.Write(out[:n]); err != nil {
			return 0, fmt.Errorf("netem: write: %w", err)
		}
		remaining -= n
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
	if err := <-readDone; err != nil {
		return 0, fmt.Errorf("netem: read back: %w", err)
	}
	if err := <-srvDone; err != nil {
		return 0, fmt.Errorf("netem: server: %w", err)
	}
	return time.Since(start), nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
