package netem

import "testing"

func TestTransferZero(t *testing.T) {
	d, err := Transfer(0, 0)
	if err != nil || d != 0 {
		t.Fatalf("Transfer(0) = %v, %v", d, err)
	}
}

func TestTransferSmall(t *testing.T) {
	d, err := Transfer(1<<20, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("transfer took no time")
	}
}

func TestTransferOddBlock(t *testing.T) {
	// Total not divisible by block.
	if _, err := Transfer(1000, 333); err != nil {
		t.Fatal(err)
	}
	// Block larger than total clamps.
	if _, err := Transfer(100, 1<<20); err != nil {
		t.Fatal(err)
	}
	// Unset block uses the default.
	if _, err := Transfer(100, 0); err != nil {
		t.Fatal(err)
	}
}

func TestEcho(t *testing.T) {
	d, err := Echo(256<<10, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("echo took no time")
	}
}

func TestEchoZero(t *testing.T) {
	d, err := Echo(0, 0)
	if err != nil || d != 0 {
		t.Fatalf("Echo(0) = %v, %v", d, err)
	}
}
