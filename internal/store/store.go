// Package store persists profiles and serves the (command, tags) queries the
// emulator uses to locate them.
//
// Three local backends implement one Store interface: Mem is a MongoDB-like
// document store — profiles of one command/tags combination share one
// document, and documents are capped at 16 MB, which limits them to roughly
// 250,000 samples (paper §4.5 "DB limitations"); Sharded partitions the same
// semantics across lock-striped in-memory shards so concurrent clients do
// not serialize on one mutex; File stores one JSON file per profile and
// imposes no sample limit. A fourth implementation, internal/storeclnt,
// serves the interface over HTTP from a synapsed daemon. All four pass the
// storetest conformance suite.
package store

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"synapse/internal/profile"
)

// MaxDocSize is the Mongo-like per-document size limit.
const MaxDocSize int64 = 16 << 20

// ErrNotFound is returned when no profile matches a query.
var ErrNotFound = errors.New("store: no matching profile")

// ErrDocTooLarge is returned by strict puts when a document would exceed
// MaxDocSize.
var ErrDocTooLarge = errors.New("store: document would exceed 16MB limit")

// Store is the profile persistence interface shared by backends.
type Store interface {
	// Put stores a profile, failing if the backend's limits would be
	// exceeded.
	Put(p *profile.Profile) error
	// Find returns all profiles recorded for the command/tags key, in
	// insertion order.
	Find(command string, tags map[string]string) (profile.Set, error)
	// Keys lists the distinct command/tags keys present, sorted.
	Keys() ([]string, error)
	// Delete removes all profiles for the key. Deleting an absent key is
	// not an error.
	Delete(command string, tags map[string]string) error
	// Close releases backend resources.
	Close() error
}

// ContextFinder is the optional Store extension for backends whose reads can
// honor a caller deadline or cancellation (the wire client). Local backends
// answer from memory and have no use for it. Call through FindCtx, which
// falls back to plain Find.
type ContextFinder interface {
	FindCtx(ctx context.Context, command string, tags map[string]string) (profile.Set, error)
}

// FindCtx queries s for command/tags, propagating ctx when the backend
// supports it. Emulation and scenario compilation call this so that a
// canceled run does not sit out a remote store's full retry schedule.
func FindCtx(ctx context.Context, s Store, command string, tags map[string]string) (profile.Set, error) {
	if cf, ok := s.(ContextFinder); ok {
		return cf.FindCtx(ctx, command, tags)
	}
	return s.Find(command, tags)
}

// Truncator is the optional Store extension for backends that enforce a
// document size limit: PutTruncated drops trailing samples as needed to make
// the profile fit, returning how many were dropped (the paper's Fig 4
// artifact). The profiler degrades to it when a strict Put would fail.
type Truncator interface {
	PutTruncated(p *profile.Profile) (dropped int, err error)
}

// document is one Mongo-like document: every profile stored under the same
// search key.
type document struct {
	profiles profile.Set
	size     int64
}

// Mem is the in-memory Mongo-like backend. The zero value is not usable;
// construct with NewMem.
type Mem struct {
	mu   sync.RWMutex
	docs map[string]*document
	// maxDoc is the per-document size cap (MaxDocSize unless overridden
	// for tests).
	maxDoc int64
}

// NewMem returns an empty in-memory store with the standard 16 MB document
// limit.
func NewMem() *Mem { return &Mem{docs: map[string]*document{}, maxDoc: MaxDocSize} }

// NewMemWithLimit returns an in-memory store with a custom document size
// limit (used by tests and overflow experiments).
func NewMemWithLimit(limit int64) *Mem {
	return &Mem{docs: map[string]*document{}, maxDoc: limit}
}

// Put implements Store. It fails with ErrDocTooLarge when the profile would
// push its document over the size limit and the profile cannot be truncated
// to fit (fewer than one sample would remain).
func (m *Mem) Put(p *profile.Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	key := p.Key()
	doc := m.docs[key]
	size := p.DocSize()
	var docSize int64
	if doc != nil {
		docSize = doc.size
	}
	if docSize+size > m.maxDoc {
		// Reject before creating the document: a failed put must not leave
		// a phantom key behind.
		return fmt.Errorf("%w: document %q at %d bytes, profile adds %d",
			ErrDocTooLarge, p.Command, docSize, size)
	}
	if doc == nil {
		doc = &document{}
		m.docs[key] = doc
	}
	doc.profiles = append(doc.profiles, p.Clone())
	doc.size += size
	return nil
}

// PutTruncated stores the profile, dropping trailing samples as needed to
// respect the document limit. It returns the number of samples dropped.
// This reproduces the paper's Fig 4 artifact: the largest profiling
// configuration loses data to the database backend's document limit.
func (m *Mem) PutTruncated(p *profile.Profile) (dropped int, err error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	key := p.Key()
	doc := m.docs[key]
	var docSize int64
	if doc != nil {
		docSize = doc.size
	}
	q := p.Clone()
	for q.DocSize()+docSize > m.maxDoc && len(q.Samples) > 0 {
		q.Samples = q.Samples[:len(q.Samples)-1]
		dropped++
	}
	if q.DocSize()+docSize > m.maxDoc {
		return dropped, fmt.Errorf("%w: empty profile still exceeds limit", ErrDocTooLarge)
	}
	if doc == nil {
		doc = &document{}
		m.docs[key] = doc
	}
	q.Dropped += dropped
	doc.profiles = append(doc.profiles, q)
	doc.size += q.DocSize()
	return dropped, nil
}

// Find implements Store.
func (m *Mem) Find(command string, tags map[string]string) (profile.Set, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	doc := m.docs[profile.Key(command, tags)]
	if doc == nil || len(doc.profiles) == 0 {
		return nil, fmt.Errorf("%w: command %q tags %v", ErrNotFound, command, tags)
	}
	out := make(profile.Set, len(doc.profiles))
	for i, p := range doc.profiles {
		out[i] = p.Clone()
	}
	return out, nil
}

// Keys implements Store.
func (m *Mem) Keys() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	keys := make([]string, 0, len(m.docs))
	for k := range m.docs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Store.
func (m *Mem) Delete(command string, tags map[string]string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.docs, profile.Key(command, tags))
	return nil
}

// DocBytes returns the current size of the document holding the key, for
// observability and tests.
func (m *Mem) DocBytes(command string, tags map[string]string) int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if doc := m.docs[profile.Key(command, tags)]; doc != nil {
		return doc.size
	}
	return 0
}

// Close implements Store.
func (m *Mem) Close() error { return nil }

var _ Truncator = (*Mem)(nil)
