package storetest

import (
	"errors"
	"sync"

	"synapse/internal/profile"
	"synapse/internal/store"
)

// ErrInjected is the transient fault Flaky injects. Callers exercising
// retry machinery assert on (wrapped forms of) this sentinel.
var ErrInjected = errors.New("storetest: injected transient error")

// FlakyConfig selects where and how often Flaky injects faults. Faults
// fire on every FailEvery-th eligible operation (a deterministic schedule:
// among any FailEvery consecutive eligible calls exactly one faults, so a
// single retry always clears it — no flaky tests, only flaky stores).
type FlakyConfig struct {
	// FailEvery n injects on every nth eligible operation; 0 disables
	// injection, 1 faults every eligible call.
	FailEvery int
	// Reads injects on Find/Keys (error returned, backend untouched) —
	// the idempotent operations clients are expected to retry.
	Reads bool
	// Deletes injects on Delete *after* the backend performed it: the
	// "performed but reply lost" shape. A retried Delete must succeed
	// (deleting an absent key is not an error), so retries stay
	// idempotent.
	Deletes bool
	// PartialWrites injects on Put after the backend stored the profile:
	// the caller sees an error for a write that actually happened. Put is
	// not idempotent, so clients must surface this rather than retry; the
	// wrapper lets tests assert exactly that.
	PartialWrites bool
}

// Flaky wraps a Store and injects deterministic transient faults, for
// testing the retry and error paths of everything layered above a backend
// (the HTTP service, the remote client).
type Flaky struct {
	inner store.Store
	cfg   FlakyConfig

	mu    sync.Mutex
	calls int
	// injected counts faults actually injected, per operation name.
	injected map[string]int
}

// NewFlaky wraps inner with the given fault schedule.
func NewFlaky(inner store.Store, cfg FlakyConfig) *Flaky {
	return &Flaky{inner: inner, cfg: cfg, injected: map[string]int{}}
}

// trip decides (deterministically, under the mutex) whether op faults now.
func (f *Flaky) trip(enabled bool, op string) bool {
	if !enabled || f.cfg.FailEvery <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.calls%f.cfg.FailEvery != 0 {
		return false
	}
	f.injected[op]++
	return true
}

// Injected reports how many faults were injected for op ("find", "keys",
// "delete", "put").
func (f *Flaky) Injected(op string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected[op]
}

// Put implements Store. With PartialWrites, the write lands in the backend
// and the error is returned anyway.
func (f *Flaky) Put(p *profile.Profile) error {
	if err := f.inner.Put(p); err != nil {
		return err
	}
	if f.trip(f.cfg.PartialWrites, "put") {
		return ErrInjected
	}
	return nil
}

// PutTruncated implements store.Truncator when the backend does.
func (f *Flaky) PutTruncated(p *profile.Profile) (int, error) {
	tr, ok := f.inner.(store.Truncator)
	if !ok {
		return 0, f.Put(p)
	}
	dropped, err := tr.PutTruncated(p)
	if err != nil {
		return dropped, err
	}
	if f.trip(f.cfg.PartialWrites, "put") {
		return dropped, ErrInjected
	}
	return dropped, nil
}

// Find implements Store.
func (f *Flaky) Find(command string, tags map[string]string) (profile.Set, error) {
	if f.trip(f.cfg.Reads, "find") {
		return nil, ErrInjected
	}
	return f.inner.Find(command, tags)
}

// Keys implements Store.
func (f *Flaky) Keys() ([]string, error) {
	if f.trip(f.cfg.Reads, "keys") {
		return nil, ErrInjected
	}
	return f.inner.Keys()
}

// Delete implements Store. Faulted deletes are performed, then reported
// failed — the lost-reply shape a client retry must tolerate.
func (f *Flaky) Delete(command string, tags map[string]string) error {
	if err := f.inner.Delete(command, tags); err != nil {
		return err
	}
	if f.trip(f.cfg.Deletes, "delete") {
		return ErrInjected
	}
	return nil
}

// Close implements Store.
func (f *Flaky) Close() error { return f.inner.Close() }

var (
	_ store.Store     = (*Flaky)(nil)
	_ store.Truncator = (*Flaky)(nil)
)
