// Package storetest is the conformance suite every store.Store backend must
// pass: Mem, File, Sharded, and the HTTP Remote client all run the same
// subtests, so "drop-in replacement" is verified rather than asserted.
package storetest

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"synapse/internal/profile"
	"synapse/internal/store"
)

// Factory builds fresh backends for the suite.
type Factory struct {
	// New returns an empty store. Required.
	New func(t *testing.T) store.Store
	// NewWithLimit returns an empty store whose per-document size limit is
	// overridden (backends with no document limit, like File, leave it nil
	// and the limit subtests are skipped).
	NewWithLimit func(t *testing.T, limit int64) store.Store
}

// MkProfile builds a finalized profile with the given number of samples,
// suitable for storing.
func MkProfile(command string, tags map[string]string, samples int) *profile.Profile {
	p := profile.New(command, tags)
	p.Machine = "thinkie"
	p.SampleRate = 1
	for i := 0; i < samples; i++ {
		s := profile.Sample{
			T: time.Duration(i+1) * time.Second,
			Values: map[string]float64{
				profile.MetricCPUCycles:    1e8,
				profile.MetricIOWriteBytes: 4096,
			},
		}
		if err := p.Append(s); err != nil {
			panic(err)
		}
	}
	p.Finalize(time.Duration(samples) * time.Second)
	return p
}

// Run executes the full conformance suite against the factory's backend.
func Run(t *testing.T, f Factory) {
	t.Run("PutFindRoundTrip", func(t *testing.T) { testPutFindRoundTrip(t, f) })
	t.Run("FindNotFound", func(t *testing.T) { testFindNotFound(t, f) })
	t.Run("InsertionOrder", func(t *testing.T) { testInsertionOrder(t, f) })
	t.Run("TagsDistinguish", func(t *testing.T) { testTagsDistinguish(t, f) })
	t.Run("KeysAndDelete", func(t *testing.T) { testKeysAndDelete(t, f) })
	t.Run("RejectsInvalid", func(t *testing.T) { testRejectsInvalid(t, f) })
	t.Run("RejectsAmbiguousIdentity", func(t *testing.T) { testRejectsAmbiguousIdentity(t, f) })
	t.Run("FindIsolation", func(t *testing.T) { testFindIsolation(t, f) })
	t.Run("Concurrent", func(t *testing.T) { testConcurrent(t, f) })
	if f.NewWithLimit != nil {
		t.Run("DocTooLarge", func(t *testing.T) { testDocTooLarge(t, f) })
	}
}

func testPutFindRoundTrip(t *testing.T, f Factory) {
	s := f.New(t)
	defer s.Close()
	tags := map[string]string{"steps": "1000"}
	p := MkProfile("gmx mdrun", tags, 5)
	if err := s.Put(p); err != nil {
		t.Fatal(err)
	}
	got, err := s.Find("gmx mdrun", tags)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("Find returned %d profiles, want 1", len(got))
	}
	if got[0].ID != p.ID || len(got[0].Samples) != 5 {
		t.Errorf("profile did not round trip: %+v", got[0])
	}
	if got[0].Total(profile.MetricCPUCycles) != 5e8 {
		t.Errorf("totals lost: %v", got[0].Total(profile.MetricCPUCycles))
	}
}

func testFindNotFound(t *testing.T, f Factory) {
	s := f.New(t)
	defer s.Close()
	if _, err := s.Find("missing", nil); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("Find on empty store = %v, want ErrNotFound", err)
	}
}

func testInsertionOrder(t *testing.T, f Factory) {
	s := f.New(t)
	defer s.Close()
	for i := 1; i <= 4; i++ {
		if err := s.Put(MkProfile("cmd", nil, i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Find("cmd", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("want 4 profiles, got %d", len(got))
	}
	for i, p := range got {
		if len(p.Samples) != i+1 {
			t.Errorf("profile %d has %d samples, want %d (insertion order lost)", i, len(p.Samples), i+1)
		}
	}
}

func testTagsDistinguish(t *testing.T, f Factory) {
	s := f.New(t)
	defer s.Close()
	if err := s.Put(MkProfile("cmd", map[string]string{"steps": "1"}, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(MkProfile("cmd", map[string]string{"steps": "2"}, 2)); err != nil {
		t.Fatal(err)
	}
	got, err := s.Find("cmd", map[string]string{"steps": "2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Samples) != 2 {
		t.Errorf("tag query returned wrong profile: %+v", got)
	}
	if _, err := s.Find("cmd", nil); !errors.Is(err, store.ErrNotFound) {
		t.Error("untagged query should not match tagged profiles")
	}
}

func testKeysAndDelete(t *testing.T, f Factory) {
	s := f.New(t)
	defer s.Close()
	if err := s.Put(MkProfile("a", nil, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(MkProfile("b", nil, 1)); err != nil {
		t.Fatal(err)
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v, want sorted [a b]", keys)
	}
	if err := s.Delete("a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Find("a", nil); !errors.Is(err, store.ErrNotFound) {
		t.Error("deleted key should not be found")
	}
	if _, err := s.Find("b", nil); err != nil {
		t.Error("unrelated key should survive delete")
	}
	// Deleting an absent key is not an error.
	if err := s.Delete("never", nil); err != nil {
		t.Errorf("delete of absent key errored: %v", err)
	}
}

func testRejectsInvalid(t *testing.T, f Factory) {
	s := f.New(t)
	defer s.Close()
	bad := profile.New("", nil)
	if err := s.Put(bad); err == nil {
		t.Error("invalid profile should not be stored")
	}
}

// Identities whose Key would be ambiguous to parse back (NUL in command or
// tag values, '=' or NUL in tag keys) are rejected uniformly, so local and
// remote stores can never disagree about which document a profile is in.
func testRejectsAmbiguousIdentity(t *testing.T, f Factory) {
	s := f.New(t)
	defer s.Close()
	bad := []*profile.Profile{
		MkProfile("cmd\x00evil", nil, 1),
		MkProfile("cmd", map[string]string{"a\x00b": "v"}, 1),
		MkProfile("cmd", map[string]string{"a=b": "v"}, 1),
		MkProfile("cmd", map[string]string{"a": "v\x00w"}, 1),
	}
	for i, p := range bad {
		if err := s.Put(p); err == nil {
			t.Errorf("case %d: ambiguous identity %q/%v was stored", i, p.Command, p.Tags)
		}
	}
	if keys, err := s.Keys(); err != nil || len(keys) != 0 {
		t.Errorf("rejected puts left keys: %v (err %v)", keys, err)
	}
}

// testFindIsolation verifies that mutating a Find result does not corrupt
// the stored document (backends hand out copies, not aliases).
func testFindIsolation(t *testing.T, f Factory) {
	s := f.New(t)
	defer s.Close()
	if err := s.Put(MkProfile("iso", nil, 3)); err != nil {
		t.Fatal(err)
	}
	got, err := s.Find("iso", nil)
	if err != nil {
		t.Fatal(err)
	}
	got[0].Samples[0].Values[profile.MetricCPUCycles] = -1
	got[0].Command = "clobbered"
	again, err := s.Find("iso", nil)
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Command != "iso" || again[0].Samples[0].Values[profile.MetricCPUCycles] == -1 {
		t.Error("mutating a Find result leaked into the store")
	}
}

// testConcurrent hammers Put/Find/Keys/Delete from many goroutines; run the
// suite under -race to catch unsynchronized backends.
func testConcurrent(t *testing.T, f Factory) {
	s := f.New(t)
	defer s.Close()
	const (
		writers = 8
		rounds  = 10
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := fmt.Sprintf("cmd-%d", w)
			for r := 0; r < rounds; r++ {
				if err := s.Put(MkProfile(own, nil, 2)); err != nil {
					t.Errorf("concurrent Put: %v", err)
					return
				}
				if err := s.Put(MkProfile("shared", nil, 1)); err != nil {
					t.Errorf("concurrent Put shared: %v", err)
					return
				}
				if _, err := s.Find(own, nil); err != nil {
					t.Errorf("concurrent Find: %v", err)
					return
				}
				if _, err := s.Keys(); err != nil {
					t.Errorf("concurrent Keys: %v", err)
					return
				}
				if r%3 == 2 {
					if err := s.Delete(own, nil); err != nil {
						t.Errorf("concurrent Delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	got, err := s.Find("shared", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*rounds {
		t.Errorf("shared key has %d profiles, want %d", len(got), writers*rounds)
	}
}

func testDocTooLarge(t *testing.T, f Factory) {
	s := f.NewWithLimit(t, 4096)
	defer s.Close()
	p := MkProfile("big", nil, 100) // ~100 samples * 2 metrics * 48B + envelope > 4096
	if err := s.Put(p); !errors.Is(err, store.ErrDocTooLarge) {
		t.Fatalf("Put over limit = %v, want ErrDocTooLarge", err)
	}
	// The limit is per document: the failed Put must not have stored a
	// partial profile or left a phantom key behind.
	if _, err := s.Find("big", nil); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("failed Put left residue: %v", err)
	}
	if keys, err := s.Keys(); err != nil || len(keys) != 0 {
		t.Errorf("failed Put left phantom keys: %v (err %v)", keys, err)
	}
	// Accumulation across profiles under one key also trips the limit.
	puts := 0
	var overflow error
	for i := 0; i < 100; i++ {
		if err := s.Put(MkProfile("fill", nil, 10)); err != nil {
			overflow = err
			break
		}
		puts++
	}
	if puts == 0 {
		t.Fatal("first small put should have fit")
	}
	if !errors.Is(overflow, store.ErrDocTooLarge) {
		t.Fatalf("document never overflowed: %v", overflow)
	}
}
