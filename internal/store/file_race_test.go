package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"synapse/internal/profile"
)

// mkRaceProfile builds a finalized profile for the foreign-writer tests
// (the storetest helper lives in a package that imports this one).
func mkRaceProfile(command string, tags map[string]string, samples int) *profile.Profile {
	p := profile.New(command, tags)
	p.Machine = "thinkie"
	p.SampleRate = 1
	for i := 0; i < samples; i++ {
		s := profile.Sample{
			T:      time.Duration(i+1) * time.Second,
			Values: map[string]float64{profile.MetricCPUCycles: 1e8},
		}
		if err := p.Append(s); err != nil {
			panic(err)
		}
	}
	p.Finalize(time.Duration(samples) * time.Second)
	return p
}

// dataSeqs parses the sequence numbers of every data file for key in dir.
func dataSeqs(t *testing.T, dir, key string) []int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	prefix := keyHash(key) + "-"
	var seqs []int
	for _, e := range entries {
		n := e.Name()
		if !strings.HasPrefix(n, prefix) || !strings.HasSuffix(n, ".json") {
			continue
		}
		rest := n[len(prefix):]
		i := strings.IndexByte(rest, '-')
		if i < 0 {
			t.Fatalf("unparsable data file name %q", n)
		}
		seq, err := strconv.Atoi(rest[:i])
		if err != nil {
			t.Fatalf("unparsable sequence in %q: %v", n, err)
		}
		seqs = append(seqs, seq)
	}
	return seqs
}

// TestFileForeignWriterSequence is the regression test for the sequence
// race the directory-mtime heuristic could lose: a foreign writer (a second
// File instance on the same directory — same as a second process) whose
// rename lands invisibly between our writes used to let the cached counter
// hand out duplicate sequence numbers. With per-key claim files the numbers
// are arbitrated by O_EXCL creation, so every Put gets a distinct one no
// matter how the writers interleave. Run under -race.
func TestFileForeignWriterSequence(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const rounds = 25
	// Warm both caches so neither instance primes from the directory
	// again: from here on, only the claim files can keep them apart.
	if err := a.Put(mkRaceProfile("shared", nil, 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(mkRaceProfile("shared", nil, 1)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for _, st := range []*File{a, b} {
		wg.Add(1)
		go func(st *File) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := st.Put(mkRaceProfile("shared", nil, 2)); err != nil {
					t.Errorf("racing Put: %v", err)
					return
				}
			}
		}(st)
	}
	wg.Wait()

	want := 2 + 2*rounds
	seqs := dataSeqs(t, dir, profile.Key("shared", nil))
	if len(seqs) != want {
		t.Fatalf("stored %d profiles, want %d (a Put overwrote another)", len(seqs), want)
	}
	seen := make(map[int]bool, len(seqs))
	for _, s := range seqs {
		if seen[s] {
			t.Fatalf("duplicate sequence number %d across racing writers", s)
		}
		seen[s] = true
	}
	// Both instances still agree on the result set.
	for _, st := range []*File{a, b} {
		got, err := st.Find("shared", nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != want {
			t.Fatalf("Find returned %d profiles, want %d", len(got), want)
		}
	}
}

// TestFileForeignWriterAlternating: strictly alternating foreign writes —
// the shape the mtime check missed when rename granularity hid the foreign
// write — must interleave without duplicates and preserve global order per
// writer.
func TestFileForeignWriterAlternating(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	for i := 0; i < 6; i++ {
		st, tag := a, "a"
		if i%2 == 1 {
			st, tag = b, "b"
		}
		p := mkRaceProfile("alt", map[string]string{"writer": tag}, 1)
		p.Tags = map[string]string{} // same key for both writers
		p.Command = "alt"
		if err := st.Put(p); err != nil {
			t.Fatal(err)
		}
	}
	seqs := dataSeqs(t, dir, profile.Key("alt", nil))
	if len(seqs) != 6 {
		t.Fatalf("stored %d, want 6", len(seqs))
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("sequence numbers %v are not the contiguous 0..5", seqs)
		}
	}
}

// TestFileDeleteKeepsClaims: Delete removes a key's data but leaves its
// claim markers, so sequence numbers stay monotone for the directory's
// lifetime — removing a claim a concurrent foreign writer just created
// would reopen the duplicate-sequence race.
func TestFileDeleteKeepsClaims(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 3; i++ {
		if err := st.Put(mkRaceProfile("gone", nil, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Put(mkRaceProfile("kept", nil, 1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete("gone", nil); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	gonePrefix := keyHash(profile.Key("gone", nil))
	claims := 0
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), gonePrefix) {
			continue
		}
		if strings.HasSuffix(e.Name(), ".json") {
			t.Fatalf("delete left data file %s behind", e.Name())
		}
		if strings.HasSuffix(e.Name(), ".claim") {
			claims++
		}
	}
	if claims != 3 {
		t.Fatalf("delete kept %d claims, want 3 (monotone numbering)", claims)
	}
	if _, err := st.Find("gone", nil); err == nil {
		t.Fatal("deleted key still found")
	}
	// A fresh instance (cold cache) continues past the tombstoned claims.
	fresh, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if err := fresh.Put(mkRaceProfile("gone", nil, 1)); err != nil {
		t.Fatal(err)
	}
	if seqs := dataSeqs(t, dir, profile.Key("gone", nil)); len(seqs) != 1 || seqs[0] != 3 {
		t.Fatalf("post-delete sequence = %v, want [3]", seqs)
	}
	if got, err := fresh.Find("gone", nil); err != nil || len(got) != 1 {
		t.Fatalf("re-put after delete: %v (%d profiles)", err, len(got))
	}
	// The other key's numbering continues independently.
	if err := st.Put(mkRaceProfile("kept", nil, 1)); err != nil {
		t.Fatal(err)
	}
	if seqs := dataSeqs(t, dir, profile.Key("kept", nil)); fmt.Sprint(seqs) != "[0 1]" {
		t.Fatalf("kept key sequences = %v, want [0 1]", seqs)
	}
}

// TestFilePrimesFromLegacyDir: a directory written without claim markers
// (data files only) still primes past the existing sequences.
func TestFilePrimesFromLegacyDir(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(mkRaceProfile("legacy", nil, 1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(mkRaceProfile("legacy", nil, 2)); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Strip the claims, as a pre-claim-format directory would look.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".claim") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
	fresh, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if err := fresh.Put(mkRaceProfile("legacy", nil, 3)); err != nil {
		t.Fatal(err)
	}
	got, err := fresh.Find("legacy", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || len(got[2].Samples) != 3 {
		t.Fatalf("legacy dir lost insertion order: %d profiles", len(got))
	}
}
