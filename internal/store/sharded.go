package store

import (
	"hash/fnv"
	"sort"

	"synapse/internal/profile"
)

// Sharded partitions documents across N lock-striped in-memory shards by FNV
// hash of the profile key, so concurrent Put/Find on different keys no
// longer serialize on a single mutex. Each shard is a full Mem backend: the
// Mongo-like 16 MB document limit and insertion-order semantics are
// identical to Mem (every document lives entirely inside one shard).
//
// This is the backend the synapsed service runs by default: one daemon can
// absorb many concurrent clients without the store becoming the bottleneck.
type Sharded struct {
	shards []*Mem
}

// DefaultShards is the shard count used when a non-positive count is
// requested. 16 stripes is enough to spread contention over typical core
// counts without wasting memory on empty maps.
const DefaultShards = 16

// NewSharded returns a sharded in-memory store with n lock stripes (n <= 0
// selects DefaultShards) and the standard 16 MB document limit.
func NewSharded(n int) *Sharded { return NewShardedWithLimit(n, MaxDocSize) }

// NewShardedWithLimit returns a sharded store with a custom per-document
// size limit (tests and overflow experiments).
func NewShardedWithLimit(n int, limit int64) *Sharded {
	if n <= 0 {
		n = DefaultShards
	}
	s := &Sharded{shards: make([]*Mem, n)}
	for i := range s.shards {
		s.shards[i] = NewMemWithLimit(limit)
	}
	return s
}

// Shards returns the number of lock stripes.
func (s *Sharded) Shards() int { return len(s.shards) }

// shard routes a key to its stripe.
func (s *Sharded) shard(key string) *Mem {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return s.shards[h.Sum64()%uint64(len(s.shards))]
}

// Put implements Store.
func (s *Sharded) Put(p *profile.Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	return s.shard(p.Key()).Put(p)
}

// PutTruncated implements Truncator: it stores the profile, dropping
// trailing samples as needed to respect the shard's document limit.
func (s *Sharded) PutTruncated(p *profile.Profile) (dropped int, err error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return s.shard(p.Key()).PutTruncated(p)
}

// Find implements Store.
func (s *Sharded) Find(command string, tags map[string]string) (profile.Set, error) {
	return s.shard(profile.Key(command, tags)).Find(command, tags)
}

// Keys implements Store: the merged, sorted key set of every shard.
func (s *Sharded) Keys() ([]string, error) {
	var keys []string
	for _, m := range s.shards {
		ks, err := m.Keys()
		if err != nil {
			return nil, err
		}
		keys = append(keys, ks...)
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Store.
func (s *Sharded) Delete(command string, tags map[string]string) error {
	return s.shard(profile.Key(command, tags)).Delete(command, tags)
}

// DocBytes returns the current size of the document holding the key.
func (s *Sharded) DocBytes(command string, tags map[string]string) int64 {
	return s.shard(profile.Key(command, tags)).DocBytes(command, tags)
}

// Close implements Store.
func (s *Sharded) Close() error {
	for _, m := range s.shards {
		_ = m.Close()
	}
	return nil
}

var (
	_ Store     = (*Sharded)(nil)
	_ Truncator = (*Sharded)(nil)
)
