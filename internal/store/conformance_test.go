package store_test

import (
	"fmt"
	"testing"

	"synapse/internal/store"
	"synapse/internal/store/storetest"
)

func TestMemConformance(t *testing.T) {
	storetest.Run(t, storetest.Factory{
		New: func(t *testing.T) store.Store { return store.NewMem() },
		NewWithLimit: func(t *testing.T, limit int64) store.Store {
			return store.NewMemWithLimit(limit)
		},
	})
}

func TestFileConformance(t *testing.T) {
	storetest.Run(t, storetest.Factory{
		New: func(t *testing.T) store.Store {
			f, err := store.NewFile(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
		// File imposes no document limit (paper §4.5), so the limit
		// subtests do not apply.
	})
}

func TestShardedConformance(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			storetest.Run(t, storetest.Factory{
				New: func(t *testing.T) store.Store { return store.NewSharded(shards) },
				NewWithLimit: func(t *testing.T, limit int64) store.Store {
					return store.NewShardedWithLimit(shards, limit)
				},
			})
		})
	}
}

func TestShardedDefaults(t *testing.T) {
	if n := store.NewSharded(0).Shards(); n != store.DefaultShards {
		t.Errorf("NewSharded(0) has %d shards, want %d", n, store.DefaultShards)
	}
	if n := store.NewSharded(3).Shards(); n != 3 {
		t.Errorf("NewSharded(3) has %d shards, want 3", n)
	}
}

// Sharded truncation behaves like Mem's: the document limit applies per key
// and the Dropped count survives.
func TestShardedPutTruncated(t *testing.T) {
	s := store.NewShardedWithLimit(4, 4096)
	p := storetest.MkProfile("big", nil, 100)
	dropped, err := s.PutTruncated(p)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("expected samples to be dropped")
	}
	got, err := s.Find("big", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Dropped != dropped {
		t.Errorf("Dropped field = %d, want %d", got[0].Dropped, dropped)
	}
	if s.DocBytes("big", nil) > 4096 {
		t.Errorf("document size %d exceeds limit", s.DocBytes("big", nil))
	}
}

// Keys must merge sorted across shards even when keys land on different
// stripes.
func TestShardedKeysMergeAcrossShards(t *testing.T) {
	s := store.NewSharded(8)
	const n = 32
	for i := 0; i < n; i++ {
		if err := s.Put(storetest.MkProfile(fmt.Sprintf("cmd-%02d", i), nil, 1)); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != n {
		t.Fatalf("Keys returned %d entries, want %d", len(keys), n)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("Keys not sorted: %q before %q", keys[i-1], keys[i])
		}
	}
}
