package store_test

import (
	"errors"
	"fmt"
	"testing"

	"synapse/internal/store"
	"synapse/internal/store/storetest"
)

func TestMemConformance(t *testing.T) {
	storetest.Run(t, storetest.Factory{
		New: func(t *testing.T) store.Store { return store.NewMem() },
		NewWithLimit: func(t *testing.T, limit int64) store.Store {
			return store.NewMemWithLimit(limit)
		},
	})
}

func TestFileConformance(t *testing.T) {
	storetest.Run(t, storetest.Factory{
		New: func(t *testing.T) store.Store {
			f, err := store.NewFile(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
		// File imposes no document limit (paper §4.5), so the limit
		// subtests do not apply.
	})
}

func TestShardedConformance(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			storetest.Run(t, storetest.Factory{
				New: func(t *testing.T) store.Store { return store.NewSharded(shards) },
				NewWithLimit: func(t *testing.T, limit int64) store.Store {
					return store.NewShardedWithLimit(shards, limit)
				},
			})
		})
	}
}

// A Flaky wrapper with injection disabled is a transparent proxy: the full
// conformance suite must pass through it unchanged (so tests layering it
// over a backend inherit exactly the backend's semantics plus the faults
// they asked for).
func TestFlakyPassthroughConformance(t *testing.T) {
	storetest.Run(t, storetest.Factory{
		New: func(t *testing.T) store.Store {
			return storetest.NewFlaky(store.NewMem(), storetest.FlakyConfig{})
		},
		NewWithLimit: func(t *testing.T, limit int64) store.Store {
			return storetest.NewFlaky(store.NewMemWithLimit(limit), storetest.FlakyConfig{})
		},
	})
}

// TestFlakyInjection pins the wrapper's fault semantics: reads error
// without touching the backend, partial writes land then error, deletes
// perform then error, and the deterministic every-nth schedule counts.
func TestFlakyInjection(t *testing.T) {
	backend := store.NewMem()
	f := storetest.NewFlaky(backend, storetest.FlakyConfig{
		FailEvery:     1,
		Reads:         true,
		Deletes:       true,
		PartialWrites: true,
	})
	// Partial write: reported failed, but really stored.
	if err := f.Put(storetest.MkProfile("p", nil, 1)); !errors.Is(err, storetest.ErrInjected) {
		t.Fatalf("partial write = %v, want ErrInjected", err)
	}
	if f.Injected("put") != 1 {
		t.Fatalf("put injections = %d", f.Injected("put"))
	}
	if got, err := backend.Find("p", nil); err != nil || len(got) != 1 {
		t.Fatalf("partial write not in backend: %v (%d profiles)", err, len(got))
	}
	// Reads fault without consulting the backend.
	if _, err := f.Find("p", nil); !errors.Is(err, storetest.ErrInjected) {
		t.Fatalf("read fault = %v", err)
	}
	if _, err := f.Keys(); !errors.Is(err, storetest.ErrInjected) {
		t.Fatalf("keys fault = %v", err)
	}
	// Lost-reply delete: reported failed, but really performed.
	if err := f.Delete("p", nil); !errors.Is(err, storetest.ErrInjected) {
		t.Fatalf("delete fault = %v", err)
	}
	if _, err := backend.Find("p", nil); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("lost-reply delete did not reach the backend: %v", err)
	}

	// Every-other schedule: first read passes, second faults.
	quiet := storetest.NewFlaky(store.NewMem(), storetest.FlakyConfig{FailEvery: 2, Reads: true})
	if err := quiet.Put(storetest.MkProfile("q", nil, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := quiet.Find("q", nil); err != nil {
		t.Fatalf("first read should pass: %v", err)
	}
	if _, err := quiet.Find("q", nil); !errors.Is(err, storetest.ErrInjected) {
		t.Fatalf("second read should fault, got %v", err)
	}
}

func TestShardedDefaults(t *testing.T) {
	if n := store.NewSharded(0).Shards(); n != store.DefaultShards {
		t.Errorf("NewSharded(0) has %d shards, want %d", n, store.DefaultShards)
	}
	if n := store.NewSharded(3).Shards(); n != 3 {
		t.Errorf("NewSharded(3) has %d shards, want 3", n)
	}
}

// Sharded truncation behaves like Mem's: the document limit applies per key
// and the Dropped count survives.
func TestShardedPutTruncated(t *testing.T) {
	s := store.NewShardedWithLimit(4, 4096)
	p := storetest.MkProfile("big", nil, 100)
	dropped, err := s.PutTruncated(p)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("expected samples to be dropped")
	}
	got, err := s.Find("big", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Dropped != dropped {
		t.Errorf("Dropped field = %d, want %d", got[0].Dropped, dropped)
	}
	if s.DocBytes("big", nil) > 4096 {
		t.Errorf("document size %d exceeds limit", s.DocBytes("big", nil))
	}
}

// Keys must merge sorted across shards even when keys land on different
// stripes.
func TestShardedKeysMergeAcrossShards(t *testing.T) {
	s := store.NewSharded(8)
	const n = 32
	for i := 0; i < n; i++ {
		if err := s.Put(storetest.MkProfile(fmt.Sprintf("cmd-%02d", i), nil, 1)); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != n {
		t.Fatalf("Keys returned %d entries, want %d", len(keys), n)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("Keys not sorted: %q before %q", keys[i-1], keys[i])
		}
	}
}
