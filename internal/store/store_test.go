package store

// Generic backend behaviour (round trips, ordering, tags, keys, delete,
// concurrency, document limits) is covered by the conformance suite in
// storetest, run from conformance_test.go against every backend. This file
// keeps the tests that need package internals or backend-specific behaviour.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"synapse/internal/profile"
)

func mkProfile(cmd string, tags map[string]string, samples int) *profile.Profile {
	p := profile.New(cmd, tags)
	p.Machine = "thinkie"
	p.SampleRate = 1
	for i := 0; i < samples; i++ {
		s := profile.Sample{
			T: time.Duration(i+1) * time.Second,
			Values: map[string]float64{
				profile.MetricCPUCycles:    1e8,
				profile.MetricIOWriteBytes: 4096,
			},
		}
		if err := p.Append(s); err != nil {
			panic(err)
		}
	}
	p.Finalize(time.Duration(samples) * time.Second)
	return p
}

func TestMemDocLimitTruncates(t *testing.T) {
	s := NewMemWithLimit(4096)
	p := mkProfile("big", nil, 100)
	dropped, err := s.PutTruncated(p)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("expected samples to be dropped")
	}
	got, err := s.Find("big", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Dropped != dropped {
		t.Errorf("Dropped field = %d, want %d", got[0].Dropped, dropped)
	}
	if len(got[0].Samples)+dropped != 100 {
		t.Errorf("samples %d + dropped %d != 100", len(got[0].Samples), dropped)
	}
	if s.DocBytes("big", nil) > 4096 {
		t.Errorf("document size %d exceeds limit", s.DocBytes("big", nil))
	}
}

func TestMemStandardLimitIs16MB(t *testing.T) {
	if MaxDocSize != 16<<20 {
		t.Fatalf("MaxDocSize = %d, want 16MB", MaxDocSize)
	}
	m := NewMem()
	if m.maxDoc != MaxDocSize {
		t.Fatalf("NewMem limit = %d", m.maxDoc)
	}
}

// The paper derives ~250k samples from the 16 MB limit; our DocSize encoding
// should be in that ballpark for single-metric samples.
func TestDocLimitSampleCapMagnitude(t *testing.T) {
	p := profile.New("cap", nil)
	for i := 0; i < 1000; i++ {
		_ = p.Append(profile.Sample{
			T:      time.Duration(i) * time.Second,
			Values: map[string]float64{profile.MetricCPUCycles: 1},
		})
	}
	perSample := float64(p.DocSize()) / 1000
	cap := float64(MaxDocSize) / perSample
	if cap < 100_000 || cap > 1_000_000 {
		t.Errorf("implied sample cap %.0f not within order of magnitude of 250k", cap)
	}
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	f1, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.Put(mkProfile("persist", nil, 3)); err != nil {
		t.Fatal(err)
	}
	_ = f1.Close()

	f2, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f2.Find("persist", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Samples) != 3 {
		t.Errorf("profile did not persist across reopen: %+v", got)
	}
}

// The cached sequence counter must prime itself from the directory so
// insertion order survives a reopen with pre-existing files.
func TestFileStoreSeqPrimesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	f1, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := f1.Put(mkProfile("ordered", nil, i)); err != nil {
			t.Fatal(err)
		}
	}
	_ = f1.Close()

	f2, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 3; i <= 4; i++ {
		if err := f2.Put(mkProfile("ordered", nil, i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := f2.Find("ordered", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("want 4 profiles, got %d", len(got))
	}
	for i, p := range got {
		if len(p.Samples) != i+1 {
			t.Errorf("profile %d has %d samples, want %d (sequence counter mis-primed)", i, len(p.Samples), i+1)
		}
	}
	// Delete resets the counter; the next insert starts a fresh sequence.
	if err := f2.Delete("ordered", nil); err != nil {
		t.Fatal(err)
	}
	if err := f2.Put(mkProfile("ordered", nil, 9)); err != nil {
		t.Fatal(err)
	}
	got, err = f2.Find("ordered", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Samples) != 9 {
		t.Errorf("post-delete insert wrong: %d profiles", len(got))
	}
}

func TestFileStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	f, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	_ = f.Put(mkProfile("x", nil, 1))
	// Drop junk into the directory.
	if err := os.WriteFile(filepath.Join(dir, "junk.json"), []byte("not a profile"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := f.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 {
		t.Errorf("Keys = %v, want 1 entry", keys)
	}
}

func TestMemDocLimitStrictResidue(t *testing.T) {
	s := NewMemWithLimit(4096)
	if err := s.Put(mkProfile("big", nil, 100)); !errors.Is(err, ErrDocTooLarge) {
		t.Fatalf("Put over limit = %v, want ErrDocTooLarge", err)
	}
}

// Property: any sequence of puts under distinct keys is fully retrievable.
func TestStoreRetrievalProperty(t *testing.T) {
	f := func(nsRaw []uint8) bool {
		if len(nsRaw) > 20 {
			nsRaw = nsRaw[:20]
		}
		s := NewMem()
		for i, n := range nsRaw {
			p := mkProfile(fmt.Sprintf("cmd-%d", i), nil, int(n%10)+1)
			if err := s.Put(p); err != nil {
				return false
			}
		}
		for i, n := range nsRaw {
			got, err := s.Find(fmt.Sprintf("cmd-%d", i), nil)
			if err != nil || len(got) != 1 || len(got[0].Samples) != int(n%10)+1 {
				return false
			}
		}
		keys, _ := s.Keys()
		return len(keys) == len(nsRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Two File instances sharing one directory (e.g. a synapsed daemon and a
// local CLI) must not hand out duplicate sequence numbers: the cached
// counter re-primes when the directory mtime shows foreign writes.
func TestFileStoreInterleavedWriters(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	writers := []*File{a, b, a, a, b, b}
	for i, w := range writers {
		if err := w.Put(mkProfile("shared", nil, i+1)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	got, err := a.Find("shared", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(writers) {
		t.Fatalf("want %d profiles, got %d (sequence collision overwrote or reordered)", len(writers), len(got))
	}
	for i, p := range got {
		if len(p.Samples) != i+1 {
			t.Errorf("profile %d has %d samples, want %d (insertion order lost across writers)", i, len(p.Samples), i+1)
		}
	}
}
