package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"synapse/internal/profile"
)

func mkProfile(cmd string, tags map[string]string, samples int) *profile.Profile {
	p := profile.New(cmd, tags)
	p.Machine = "thinkie"
	p.SampleRate = 1
	for i := 0; i < samples; i++ {
		s := profile.Sample{
			T: time.Duration(i+1) * time.Second,
			Values: map[string]float64{
				profile.MetricCPUCycles:    1e8,
				profile.MetricIOWriteBytes: 4096,
			},
		}
		if err := p.Append(s); err != nil {
			panic(err)
		}
	}
	p.Finalize(time.Duration(samples) * time.Second)
	return p
}

// storeFactories lets every conformance test run against both backends.
func storeFactories(t *testing.T) map[string]func() Store {
	return map[string]func() Store{
		"mem": func() Store { return NewMem() },
		"file": func() Store {
			f, err := NewFile(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
	}
}

func TestPutFindRoundTrip(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			tags := map[string]string{"steps": "1000"}
			p := mkProfile("gmx mdrun", tags, 5)
			if err := s.Put(p); err != nil {
				t.Fatal(err)
			}
			got, err := s.Find("gmx mdrun", tags)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 1 {
				t.Fatalf("Find returned %d profiles, want 1", len(got))
			}
			if got[0].ID != p.ID || len(got[0].Samples) != 5 {
				t.Errorf("profile did not round trip: %+v", got[0])
			}
			if got[0].Total(profile.MetricCPUCycles) != 5e8 {
				t.Errorf("totals lost: %v", got[0].Total(profile.MetricCPUCycles))
			}
		})
	}
}

func TestFindNotFound(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			if _, err := s.Find("missing", nil); !errors.Is(err, ErrNotFound) {
				t.Errorf("Find on empty store = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestMultipleProfilesSameKeyKeepOrder(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			for i := 1; i <= 4; i++ {
				if err := s.Put(mkProfile("cmd", nil, i)); err != nil {
					t.Fatal(err)
				}
			}
			got, err := s.Find("cmd", nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 4 {
				t.Fatalf("want 4 profiles, got %d", len(got))
			}
			for i, p := range got {
				if len(p.Samples) != i+1 {
					t.Errorf("profile %d has %d samples, want %d (insertion order lost)", i, len(p.Samples), i+1)
				}
			}
		})
	}
}

func TestTagsDistinguishProfiles(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			if err := s.Put(mkProfile("cmd", map[string]string{"steps": "1"}, 1)); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(mkProfile("cmd", map[string]string{"steps": "2"}, 2)); err != nil {
				t.Fatal(err)
			}
			got, err := s.Find("cmd", map[string]string{"steps": "2"})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 1 || len(got[0].Samples) != 2 {
				t.Errorf("tag query returned wrong profile: %+v", got)
			}
			if _, err := s.Find("cmd", nil); !errors.Is(err, ErrNotFound) {
				t.Error("untagged query should not match tagged profiles")
			}
		})
	}
}

func TestKeysAndDelete(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			_ = s.Put(mkProfile("a", nil, 1))
			_ = s.Put(mkProfile("b", nil, 1))
			keys, err := s.Keys()
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != 2 {
				t.Fatalf("Keys = %v, want 2 entries", keys)
			}
			if err := s.Delete("a", nil); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Find("a", nil); !errors.Is(err, ErrNotFound) {
				t.Error("deleted key should not be found")
			}
			if _, err := s.Find("b", nil); err != nil {
				t.Error("unrelated key should survive delete")
			}
			// Deleting an absent key is not an error.
			if err := s.Delete("never", nil); err != nil {
				t.Errorf("delete of absent key errored: %v", err)
			}
		})
	}
}

func TestPutRejectsInvalidProfile(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			bad := profile.New("", nil)
			if err := s.Put(bad); err == nil {
				t.Error("invalid profile should not be stored")
			}
		})
	}
}

func TestMemDocLimitStrict(t *testing.T) {
	s := NewMemWithLimit(4096)
	p := mkProfile("big", nil, 100) // ~100 * 2 metrics * 48 + overhead > 4096
	err := s.Put(p)
	if !errors.Is(err, ErrDocTooLarge) {
		t.Fatalf("Put over limit = %v, want ErrDocTooLarge", err)
	}
}

func TestMemDocLimitTruncates(t *testing.T) {
	s := NewMemWithLimit(4096)
	p := mkProfile("big", nil, 100)
	dropped, err := s.PutTruncated(p)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("expected samples to be dropped")
	}
	got, err := s.Find("big", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Dropped != dropped {
		t.Errorf("Dropped field = %d, want %d", got[0].Dropped, dropped)
	}
	if len(got[0].Samples)+dropped != 100 {
		t.Errorf("samples %d + dropped %d != 100", len(got[0].Samples), dropped)
	}
	if s.DocBytes("big", nil) > 4096 {
		t.Errorf("document size %d exceeds limit", s.DocBytes("big", nil))
	}
}

func TestMemDocLimitAccumulatesAcrossProfiles(t *testing.T) {
	s := NewMemWithLimit(8192)
	// Fill the document with several small profiles until overflow.
	var strictErr error
	puts := 0
	for i := 0; i < 100; i++ {
		if err := s.Put(mkProfile("fill", nil, 10)); err != nil {
			strictErr = err
			break
		}
		puts++
	}
	if strictErr == nil {
		t.Fatal("document never overflowed")
	}
	if puts == 0 {
		t.Fatal("first put should have fit")
	}
	if !errors.Is(strictErr, ErrDocTooLarge) {
		t.Fatalf("overflow error = %v", strictErr)
	}
}

func TestMemStandardLimitIs16MB(t *testing.T) {
	if MaxDocSize != 16<<20 {
		t.Fatalf("MaxDocSize = %d, want 16MB", MaxDocSize)
	}
	m := NewMem()
	if m.maxDoc != MaxDocSize {
		t.Fatalf("NewMem limit = %d", m.maxDoc)
	}
}

// The paper derives ~250k samples from the 16 MB limit; our DocSize encoding
// should be in that ballpark for single-metric samples.
func TestDocLimitSampleCapMagnitude(t *testing.T) {
	p := profile.New("cap", nil)
	for i := 0; i < 1000; i++ {
		_ = p.Append(profile.Sample{
			T:      time.Duration(i) * time.Second,
			Values: map[string]float64{profile.MetricCPUCycles: 1},
		})
	}
	perSample := float64(p.DocSize()) / 1000
	cap := float64(MaxDocSize) / perSample
	if cap < 100_000 || cap > 1_000_000 {
		t.Errorf("implied sample cap %.0f not within order of magnitude of 250k", cap)
	}
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	f1, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.Put(mkProfile("persist", nil, 3)); err != nil {
		t.Fatal(err)
	}
	_ = f1.Close()

	f2, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f2.Find("persist", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Samples) != 3 {
		t.Errorf("profile did not persist across reopen: %+v", got)
	}
}

func TestFileStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	f, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	_ = f.Put(mkProfile("x", nil, 1))
	// Drop junk into the directory.
	if err := writeJunk(dir); err != nil {
		t.Fatal(err)
	}
	keys, err := f.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 {
		t.Errorf("Keys = %v, want 1 entry", keys)
	}
}

func writeJunk(dir string) error {
	return os.WriteFile(filepath.Join(dir, "junk.json"), []byte("not a profile"), 0o644)
}

// Property: any sequence of puts under distinct keys is fully retrievable.
func TestStoreRetrievalProperty(t *testing.T) {
	f := func(nsRaw []uint8) bool {
		if len(nsRaw) > 20 {
			nsRaw = nsRaw[:20]
		}
		s := NewMem()
		for i, n := range nsRaw {
			p := mkProfile(fmt.Sprintf("cmd-%d", i), nil, int(n%10)+1)
			if err := s.Put(p); err != nil {
				return false
			}
		}
		for i, n := range nsRaw {
			got, err := s.Find(fmt.Sprintf("cmd-%d", i), nil)
			if err != nil || len(got) != 1 || len(got[0].Samples) != int(n%10)+1 {
				return false
			}
		}
		keys, _ := s.Keys()
		return len(keys) == len(nsRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
