package store

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"synapse/internal/profile"
)

// File is a directory-backed profile store: one JSON file per profile,
// grouped by a hash of the search key. Unlike the Mongo-like backend it
// imposes no per-document size limit (paper §4.5: "File-based storage of
// profiles is available, which poses no limit on the number of samples").
type File struct {
	dir string
	mu  sync.Mutex
	// seq caches the next sequence number per key so Put does not re-list
	// the directory on every insert (which made N inserts O(N²) directory
	// scans). Primed from the directory on a key's first Put.
	seq map[string]int
	// dirStamp is the directory's mtime as of our last write. When a Put
	// observes a different mtime, another writer (a second File instance
	// or process sharing the directory) added or removed files, so every
	// cached counter is dropped and re-primed. Steady-state single-writer
	// Puts therefore cost one stat, not a directory listing.
	dirStamp time.Time
}

// NewFile opens (creating if needed) a file store rooted at dir.
func NewFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	return &File{dir: dir, seq: map[string]int{}}, nil
}

// keyHash gives the filesystem-safe prefix for a search key.
func keyHash(key string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return fmt.Sprintf("%016x", h.Sum64())
}

type fileEnvelope struct {
	Key     string           `json:"key"`
	Profile *profile.Profile `json:"profile"`
}

// Put implements Store.
func (f *File) Put(p *profile.Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	key := p.Key()
	// Sequence number keeps insertion order among profiles with one key.
	n, err := f.nextSeqLocked(key)
	if err != nil {
		return err
	}
	name := fmt.Sprintf("%s-%06d-%s.json", keyHash(key), n, idOr(p))
	data, err := json.MarshalIndent(fileEnvelope{Key: key, Profile: p}, "", " ")
	if err != nil {
		return fmt.Errorf("store: encode: %w", err)
	}
	tmp := filepath.Join(f.dir, name+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: write: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(f.dir, name)); err != nil {
		return err
	}
	f.seq[key] = n + 1
	f.stampLocked()
	return nil
}

// stampLocked records the directory mtime after one of our own writes.
// Caller holds f.mu.
func (f *File) stampLocked() {
	if fi, err := os.Stat(f.dir); err == nil {
		f.dirStamp = fi.ModTime()
	}
}

// nextSeqLocked returns the next sequence number for key, listing the
// directory only on the key's first use or after a foreign write (the
// counter is cached otherwise). Caller holds f.mu.
func (f *File) nextSeqLocked(key string) (int, error) {
	if fi, err := os.Stat(f.dir); err != nil || !fi.ModTime().Equal(f.dirStamp) {
		// Another writer touched the directory since our last write (or
		// this is the first use): cached counters may be stale.
		f.seq = map[string]int{}
	}
	if n, ok := f.seq[key]; ok {
		return n, nil
	}
	n, err := f.countLocked(key)
	if err != nil {
		return 0, err
	}
	f.seq[key] = n
	return n, nil
}

func idOr(p *profile.Profile) string {
	if p.ID != "" {
		return p.ID
	}
	return "unfinalized"
}

// countLocked counts stored profiles for key. Caller holds f.mu.
func (f *File) countLocked(key string) (int, error) {
	names, err := f.filesFor(key)
	if err != nil {
		return 0, err
	}
	return len(names), nil
}

// filesFor lists this key's files, sorted by sequence.
func (f *File) filesFor(key string) ([]string, error) {
	prefix := keyHash(key) + "-"
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("store: read dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if strings.HasPrefix(n, prefix) && strings.HasSuffix(n, ".json") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Find implements Store.
func (f *File) Find(command string, tags map[string]string) (profile.Set, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := profile.Key(command, tags)
	names, err := f.filesFor(key)
	if err != nil {
		return nil, err
	}
	var out profile.Set
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(f.dir, n))
		if err != nil {
			return nil, fmt.Errorf("store: read %s: %w", n, err)
		}
		var env fileEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			return nil, fmt.Errorf("store: decode %s: %w", n, err)
		}
		// Hash collisions are possible in principle; verify the key.
		if env.Key != key {
			continue
		}
		if err := env.Profile.Validate(); err != nil {
			return nil, fmt.Errorf("store: profile in %s invalid: %w", n, err)
		}
		out = append(out, env.Profile)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: command %q tags %v", ErrNotFound, command, tags)
	}
	return out, nil
}

// Keys implements Store.
func (f *File) Keys() ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("store: read dir: %w", err)
	}
	seen := map[string]struct{}{}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(f.dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var env fileEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			continue // skip foreign files
		}
		seen[env.Key] = struct{}{}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Store.
func (f *File) Delete(command string, tags map[string]string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := profile.Key(command, tags)
	names, err := f.filesFor(key)
	if err != nil {
		return err
	}
	for _, n := range names {
		if err := os.Remove(filepath.Join(f.dir, n)); err != nil {
			return fmt.Errorf("store: remove %s: %w", n, err)
		}
	}
	delete(f.seq, key)
	f.stampLocked()
	return nil
}

// Close implements Store.
func (f *File) Close() error { return nil }

// Compile-time interface checks.
var (
	_ Store = (*Mem)(nil)
	_ Store = (*File)(nil)
)
