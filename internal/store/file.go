package store

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"synapse/internal/profile"
)

// File is a directory-backed profile store: one JSON file per profile,
// grouped by a hash of the search key. Unlike the Mongo-like backend it
// imposes no per-document size limit (paper §4.5: "File-based storage of
// profiles is available, which poses no limit on the number of samples").
type File struct {
	dir string
	mu  sync.Mutex
	// seq hints the next sequence number per key so Put does not re-list
	// the directory on every insert (which made N inserts O(N²) directory
	// scans). Primed from the directory on a key's first Put. It is only
	// a hint: the authoritative arbiter is the per-key claim file — Put
	// atomically creates "<hash>-<seq>.claim" with O_EXCL before writing
	// the data file, so two File instances (or processes) sharing one
	// directory can never hand out the same sequence number, with no
	// reliance on directory-mtime staleness heuristics.
	seq map[string]int
}

// NewFile opens (creating if needed) a file store rooted at dir.
func NewFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	return &File{dir: dir, seq: map[string]int{}}, nil
}

// keyHash gives the filesystem-safe prefix for a search key.
func keyHash(key string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return fmt.Sprintf("%016x", h.Sum64())
}

type fileEnvelope struct {
	Key     string           `json:"key"`
	Profile *profile.Profile `json:"profile"`
}

// Put implements Store.
func (f *File) Put(p *profile.Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	key := p.Key()
	// Sequence number keeps insertion order among profiles with one key.
	// claimSeqLocked atomically claims a number that no other writer —
	// including a second File instance on the same directory — can be
	// handed.
	n, err := f.claimSeqLocked(key)
	if err != nil {
		return err
	}
	name := fmt.Sprintf("%s-%06d-%s.json", keyHash(key), n, idOr(p))
	data, err := json.MarshalIndent(fileEnvelope{Key: key, Profile: p}, "", " ")
	if err != nil {
		return fmt.Errorf("store: encode: %w", err)
	}
	tmp := filepath.Join(f.dir, name+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: write: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(f.dir, name)); err != nil {
		return err
	}
	f.seq[key] = n + 1
	return nil
}

// claimName is the marker file that reserves sequence number n for key.
func (f *File) claimName(key string, n int) string {
	return filepath.Join(f.dir, fmt.Sprintf("%s-%06d.claim", keyHash(key), n))
}

// claimSeqLocked reserves and returns the next sequence number for key.
// The cached counter is only a starting hint (primed from the directory on
// first use); the claim itself is an O_EXCL marker-file creation, which the
// filesystem arbitrates atomically across File instances and processes — a
// foreign writer's claim makes our create fail with EEXIST and we advance.
// Steady-state single-writer Puts succeed on the first attempt: one create,
// no directory listing, no mtime heuristics. Caller holds f.mu.
func (f *File) claimSeqLocked(key string) (int, error) {
	n, ok := f.seq[key]
	if !ok {
		var err error
		n, err = f.primeLocked(key)
		if err != nil {
			return 0, err
		}
	}
	for {
		fh, err := os.OpenFile(f.claimName(key, n), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fh.Close()
			return n, nil
		}
		if !os.IsExist(err) {
			return 0, fmt.Errorf("store: claim seq: %w", err)
		}
		// Another writer holds this number; try the next one.
		n++
	}
}

func idOr(p *profile.Profile) string {
	if p.ID != "" {
		return p.ID
	}
	return "unfinalized"
}

// primeLocked derives the next sequence hint for key from the directory:
// one past the highest sequence among the key's data and claim files (data
// files too, so directories written before claim markers existed keep
// their insertion order). Caller holds f.mu.
func (f *File) primeLocked(key string) (int, error) {
	prefix := keyHash(key) + "-"
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return 0, fmt.Errorf("store: read dir: %w", err)
	}
	next := 0
	for _, e := range entries {
		n := e.Name()
		if !strings.HasPrefix(n, prefix) {
			continue
		}
		if !strings.HasSuffix(n, ".json") && !strings.HasSuffix(n, ".claim") {
			continue
		}
		rest := n[len(prefix):]
		end := strings.IndexAny(rest, "-.")
		if end < 0 {
			continue
		}
		seq, err := strconv.Atoi(rest[:end])
		if err != nil {
			continue
		}
		if seq+1 > next {
			next = seq + 1
		}
	}
	return next, nil
}

// filesFor lists this key's files, sorted by sequence.
func (f *File) filesFor(key string) ([]string, error) {
	prefix := keyHash(key) + "-"
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("store: read dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if strings.HasPrefix(n, prefix) && strings.HasSuffix(n, ".json") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Find implements Store.
func (f *File) Find(command string, tags map[string]string) (profile.Set, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := profile.Key(command, tags)
	names, err := f.filesFor(key)
	if err != nil {
		return nil, err
	}
	var out profile.Set
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(f.dir, n))
		if err != nil {
			return nil, fmt.Errorf("store: read %s: %w", n, err)
		}
		var env fileEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			return nil, fmt.Errorf("store: decode %s: %w", n, err)
		}
		// Hash collisions are possible in principle; verify the key.
		if env.Key != key {
			continue
		}
		if err := env.Profile.Validate(); err != nil {
			return nil, fmt.Errorf("store: profile in %s invalid: %w", n, err)
		}
		out = append(out, env.Profile)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: command %q tags %v", ErrNotFound, command, tags)
	}
	return out, nil
}

// Keys implements Store.
func (f *File) Keys() ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("store: read dir: %w", err)
	}
	seen := map[string]struct{}{}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(f.dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var env fileEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			continue // skip foreign files
		}
		seen[env.Key] = struct{}{}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Store.
func (f *File) Delete(command string, tags map[string]string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := profile.Key(command, tags)
	names, err := f.filesFor(key)
	if err != nil {
		return err
	}
	for _, n := range names {
		if err := os.Remove(filepath.Join(f.dir, n)); err != nil {
			return fmt.Errorf("store: remove %s: %w", n, err)
		}
	}
	// Claim markers are deliberately left in place: removing one that a
	// concurrent foreign writer just created (its data rename still in
	// flight) would let a third writer reuse the number — the exact
	// duplicate-sequence race the claims exist to prevent. Sequence
	// numbers are therefore monotone for a key over the directory's
	// lifetime; insertion order needs nothing more.
	delete(f.seq, key)
	return nil
}

// Close implements Store.
func (f *File) Close() error { return nil }

// Compile-time interface checks.
var (
	_ Store = (*Mem)(nil)
	_ Store = (*File)(nil)
)
