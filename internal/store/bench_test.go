package store_test

// Throughput benchmarks behind BENCH_store.json: Put/Find ops/s at 1, 8 and
// 64 concurrent clients. The single-mutex Mem backend flatlines as clients
// are added (every operation serializes), while Sharded spreads distinct
// keys across lock stripes and scales until the hash distribution or core
// count becomes the limit.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"synapse/internal/profile"
	"synapse/internal/store"
	"synapse/internal/store/storetest"
)

var benchClients = []int{1, 8, 64}

// benchConcurrent drives op from the given number of client goroutines
// until b.N operations have completed, reporting aggregate ops/s.
func benchConcurrent(b *testing.B, clients int, op func(client, i int) error) {
	b.Helper()
	var idx atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := int(idx.Add(1)) - 1
				if i >= b.N {
					return
				}
				if err := op(c, i); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "ops/s")
	}
}

// noLimit keeps pure-throughput runs from tripping the 16 MB document cap.
const noLimit int64 = 1 << 62

func backends() map[string]func() store.Store {
	return map[string]func() store.Store{
		"mem":     func() store.Store { return store.NewMemWithLimit(noLimit) },
		"sharded": func() store.Store { return store.NewShardedWithLimit(0, noLimit) },
	}
}

func BenchmarkStorePut(b *testing.B) {
	for name, mk := range backends() {
		for _, clients := range benchClients {
			b.Run(fmt.Sprintf("backend=%s/clients=%d", name, clients), func(b *testing.B) {
				s := mk()
				defer s.Close()
				// One profile per client, reused: Put clones internally, so
				// sharing the source across iterations is safe.
				profs := make([]*profile.Profile, clients)
				for c := range profs {
					profs[c] = storetest.MkProfile(fmt.Sprintf("bench-cmd-%d", c), nil, 4)
				}
				benchConcurrent(b, clients, func(c, i int) error {
					return s.Put(profs[c])
				})
			})
		}
	}
}

func BenchmarkStoreFind(b *testing.B) {
	const keys = 64
	for name, mk := range backends() {
		for _, clients := range benchClients {
			b.Run(fmt.Sprintf("backend=%s/clients=%d", name, clients), func(b *testing.B) {
				s := mk()
				defer s.Close()
				for k := 0; k < keys; k++ {
					if err := s.Put(storetest.MkProfile(fmt.Sprintf("bench-cmd-%d", k), nil, 4)); err != nil {
						b.Fatal(err)
					}
				}
				benchConcurrent(b, clients, func(c, i int) error {
					_, err := s.Find(fmt.Sprintf("bench-cmd-%d", i%keys), nil)
					return err
				})
			})
		}
	}
}

// File.Put used to rescan the directory on every insert (O(N²) for N puts
// under one key); the cached sequence counter makes repeated inserts cheap.
func BenchmarkFilePutSameKey(b *testing.B) {
	f, err := store.NewFile(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	p := storetest.MkProfile("file-bench", nil, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Put(p); err != nil {
			b.Fatal(err)
		}
	}
}
