package storesrv

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"synapse/internal/profile"
	"synapse/internal/store"
	"synapse/internal/store/storetest"
	"synapse/internal/testutil"
)

func newServer(t *testing.T) (*Server, *store.Sharded) {
	t.Helper()
	backend := store.NewSharded(4)
	return New(backend, Config{}), backend
}

func doJSON(t *testing.T, s *Server, method, target string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func encodeProfile(t *testing.T, p *profile.Profile) []byte {
	t.Helper()
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestHealthz(t *testing.T) {
	s, _ := newServer(t)
	w := doJSON(t, s, http.MethodGet, "/v1/healthz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz = %d", w.Code)
	}
}

func TestPutThenFindOverHTTP(t *testing.T) {
	s, backend := newServer(t)
	p := storetest.MkProfile("mdsim", map[string]string{"steps": "100"}, 4)
	w := doJSON(t, s, http.MethodPut, "/v1/profiles", encodeProfile(t, p))
	if w.Code != http.StatusOK {
		t.Fatalf("put = %d: %s", w.Code, w.Body)
	}
	var pr PutResponse
	if err := json.Unmarshal(w.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Key != p.Key() || pr.Generation != 1 {
		t.Errorf("put response = %+v", pr)
	}
	// The profile landed in the backend.
	if _, err := backend.Find("mdsim", map[string]string{"steps": "100"}); err != nil {
		t.Fatal(err)
	}
	// And comes back over the wire with an ETag.
	w = doJSON(t, s, http.MethodGet, "/v1/profiles?key="+url.QueryEscape(p.Key()), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("find = %d: %s", w.Code, w.Body)
	}
	if etag := w.Header().Get("ETag"); !strings.HasSuffix(etag, `-g1"`) {
		t.Errorf("ETag = %q, want epoch-qualified generation 1", etag)
	}
	var set profile.Set
	if err := json.Unmarshal(w.Body.Bytes(), &set); err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || len(set[0].Samples) != 4 {
		t.Errorf("wire profiles wrong: %d", len(set))
	}
}

func TestConditionalGetRevalidates(t *testing.T) {
	s, _ := newServer(t)
	p := storetest.MkProfile("cmd", nil, 2)
	doJSON(t, s, http.MethodPut, "/v1/profiles", encodeProfile(t, p))
	target := "/v1/profiles?key=" + url.QueryEscape(p.Key())

	// Learn the current ETag from a full fetch.
	w := doJSON(t, s, http.MethodGet, target, nil)
	etag := w.Header().Get("ETag")
	if etag == "" {
		t.Fatal("find response has no ETag")
	}

	// Matching generation: 304, no body.
	req := httptest.NewRequest(http.MethodGet, target, nil)
	req.Header.Set("If-None-Match", etag)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusNotModified {
		t.Fatalf("matching If-None-Match = %d, want 304", w.Code)
	}
	if w.Body.Len() != 0 {
		t.Errorf("304 carried a body: %d bytes", w.Body.Len())
	}

	// A second put bumps the generation; the old tag refetches.
	doJSON(t, s, http.MethodPut, "/v1/profiles", encodeProfile(t, storetest.MkProfile("cmd", nil, 3)))
	req = httptest.NewRequest(http.MethodGet, target, nil)
	req.Header.Set("If-None-Match", etag)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("stale If-None-Match = %d, want 200", w.Code)
	}
	if next := w.Header().Get("ETag"); next == etag || !strings.HasSuffix(next, `-g2"`) {
		t.Errorf("ETag after second put = %q (was %q)", next, etag)
	}
}

// Two server boots over one persistent backend must never produce colliding
// ETags: a client cache primed in the first boot would otherwise revalidate
// stale data after a restart reset the generation counters.
func TestEtagsDifferAcrossRestarts(t *testing.T) {
	backend := store.NewSharded(2)
	p := storetest.MkProfile("cmd", nil, 1)
	boot1 := New(backend, Config{})
	doJSON(t, boot1, http.MethodPut, "/v1/profiles", encodeProfile(t, p))
	target := "/v1/profiles?key=" + url.QueryEscape(p.Key())
	etag1 := doJSON(t, boot1, http.MethodGet, target, nil).Header().Get("ETag")

	boot2 := New(backend, Config{})
	doJSON(t, boot2, http.MethodPut, "/v1/profiles", encodeProfile(t, storetest.MkProfile("cmd", nil, 9)))
	w := doJSON(t, boot2, http.MethodGet, target, nil)
	if etag2 := w.Header().Get("ETag"); etag2 == etag1 {
		t.Fatalf("ETag %q collided across restarts", etag1)
	}
	// The old tag must refetch, not 304.
	req := httptest.NewRequest(http.MethodGet, target, nil)
	req.Header.Set("If-None-Match", etag1)
	rec := httptest.NewRecorder()
	boot2.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("pre-restart ETag = %d, want 200 (full refetch)", rec.Code)
	}
}

func TestStructuredErrors(t *testing.T) {
	s, _ := newServer(t)
	w := doJSON(t, s, http.MethodGet, "/v1/profiles?key=absent", nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("missing profile = %d", w.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Code != CodeNotFound {
		t.Errorf("code = %q, want %q", er.Code, CodeNotFound)
	}

	w = doJSON(t, s, http.MethodGet, "/v1/profiles", nil)
	if w.Code != http.StatusBadRequest {
		t.Errorf("missing key = %d, want 400", w.Code)
	}

	w = doJSON(t, s, http.MethodPut, "/v1/profiles", []byte("not json"))
	if w.Code != http.StatusBadRequest {
		t.Errorf("bad body = %d, want 400", w.Code)
	}

	limited := New(store.NewShardedWithLimit(2, 4096), Config{})
	big := storetest.MkProfile("big", nil, 100)
	w = doJSON(t, limited, http.MethodPut, "/v1/profiles", encodeProfile(t, big))
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized put = %d, want 413", w.Code)
	}
	_ = json.Unmarshal(w.Body.Bytes(), &er)
	if er.Code != CodeDocTooLarge {
		t.Errorf("code = %q, want %q", er.Code, CodeDocTooLarge)
	}
}

func TestPutTruncateQuery(t *testing.T) {
	s := New(store.NewShardedWithLimit(2, 4096), Config{})
	big := storetest.MkProfile("big", nil, 100)
	w := doJSON(t, s, http.MethodPut, "/v1/profiles?truncate=1", encodeProfile(t, big))
	if w.Code != http.StatusOK {
		t.Fatalf("truncated put = %d: %s", w.Code, w.Body)
	}
	var pr PutResponse
	if err := json.Unmarshal(w.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Dropped == 0 {
		t.Error("truncated put reported no dropped samples")
	}
}

func TestBatchMixedResults(t *testing.T) {
	s, _ := newServer(t)
	good := storetest.MkProfile("a", nil, 1)
	bad := profile.New("", nil) // invalid: no command
	body, err := json.Marshal(BatchRequest{Profiles: []*profile.Profile{good, bad}})
	if err != nil {
		t.Fatal(err)
	}
	w := doJSON(t, s, http.MethodPost, "/v1/profiles:batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("batch = %d: %s", w.Code, w.Body)
	}
	var br BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 {
		t.Fatalf("batch results = %d", len(br.Results))
	}
	if br.Results[0].Error != "" || br.Results[0].Key != "a" {
		t.Errorf("good item failed: %+v", br.Results[0])
	}
	if br.Results[1].Code != CodeInvalid {
		t.Errorf("bad item code = %q, want %q", br.Results[1].Code, CodeInvalid)
	}
}

func TestKeysEndpoint(t *testing.T) {
	s, _ := newServer(t)
	w := doJSON(t, s, http.MethodGet, "/v1/keys", nil)
	var kr KeysResponse
	if err := json.Unmarshal(w.Body.Bytes(), &kr); err != nil {
		t.Fatal(err)
	}
	if kr.Keys == nil || len(kr.Keys) != 0 {
		t.Errorf("empty store keys = %#v, want []", kr.Keys)
	}
	doJSON(t, s, http.MethodPut, "/v1/profiles", encodeProfile(t, storetest.MkProfile("b", nil, 1)))
	doJSON(t, s, http.MethodPut, "/v1/profiles", encodeProfile(t, storetest.MkProfile("a", nil, 1)))
	w = doJSON(t, s, http.MethodGet, "/v1/keys", nil)
	if err := json.Unmarshal(w.Body.Bytes(), &kr); err != nil {
		t.Fatal(err)
	}
	if len(kr.Keys) != 2 || kr.Keys[0] != "a" {
		t.Errorf("keys = %v, want sorted [a b]", kr.Keys)
	}
}

func TestDeleteEndpoint(t *testing.T) {
	s, _ := newServer(t)
	p := storetest.MkProfile("gone", nil, 1)
	doJSON(t, s, http.MethodPut, "/v1/profiles", encodeProfile(t, p))
	w := doJSON(t, s, http.MethodDelete, "/v1/profiles?key="+url.QueryEscape(p.Key()), nil)
	if w.Code != http.StatusNoContent {
		t.Fatalf("delete = %d", w.Code)
	}
	w = doJSON(t, s, http.MethodGet, "/v1/profiles?key="+url.QueryEscape(p.Key()), nil)
	if w.Code != http.StatusNotFound {
		t.Errorf("find after delete = %d, want 404", w.Code)
	}
}

func TestGzipRequestAndResponse(t *testing.T) {
	s, _ := newServer(t)
	p := storetest.MkProfile("zipped", nil, 50)

	// Upload with Content-Encoding: gzip.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(encodeProfile(t, p)); err != nil {
		t.Fatal(err)
	}
	_ = zw.Close()
	req := httptest.NewRequest(http.MethodPut, "/v1/profiles", &buf)
	req.Header.Set("Content-Encoding", "gzip")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("gzip put = %d: %s", w.Code, w.Body)
	}

	// Download with Accept-Encoding: gzip.
	req = httptest.NewRequest(http.MethodGet, "/v1/profiles?key="+url.QueryEscape(p.Key()), nil)
	req.Header.Set("Accept-Encoding", "gzip")
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("gzip find = %d", w.Code)
	}
	if w.Header().Get("Content-Encoding") != "gzip" {
		t.Fatal("response not gzip-encoded despite Accept-Encoding")
	}
	zr, err := gzip.NewReader(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	var set profile.Set
	if err := json.Unmarshal(data, &set); err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || len(set[0].Samples) != 50 {
		t.Errorf("gzip round trip lost data: %d profiles", len(set))
	}
}

func TestPprofMountOptional(t *testing.T) {
	on := New(store.NewMem(), Config{Pprof: true})
	w := doJSON(t, on, http.MethodGet, "/debug/pprof/", nil)
	if w.Code != http.StatusOK {
		t.Errorf("pprof enabled index = %d", w.Code)
	}
	off, _ := newServer(t)
	w = doJSON(t, off, http.MethodGet, "/debug/pprof/", nil)
	if w.Code == http.StatusOK {
		t.Error("pprof should not be mounted by default")
	}
}

func TestStartAndShutdown(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, _ := newServer(t)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over TCP = %d", resp.StatusCode)
	}
	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr.String() + "/v1/healthz"); err == nil {
		t.Error("server still serving after Shutdown")
	}
}
