package storesrv

import (
	"net/http"
	"strconv"

	"synapse/internal/telemetry"
)

// metrics holds the server's registered instruments: RED metrics per route
// (rate from the request counter, errors from its code label, duration from
// the latency histogram) plus the overload-protection series operators
// watch when tuning -max-inflight and -queue. Everything lives in one
// telemetry.Registry, exposed at /v1/metrics.
type metrics struct {
	reg      *telemetry.Registry
	requests *telemetry.CounterVec   // by route, method, code
	latency  *telemetry.HistogramVec // by route, method
	shed     *telemetry.CounterVec   // by shed code
}

func newMetrics(reg *telemetry.Registry, adm *admission) *metrics {
	m := &metrics{
		reg: reg,
		requests: reg.CounterVec("synapse_http_requests_total",
			"HTTP requests served, by route, method and status code.",
			"route", "method", "code"),
		latency: reg.HistogramVec("synapse_http_request_duration_seconds",
			"HTTP request latency in seconds, by route and method.",
			nil, "route", "method"),
		shed: reg.CounterVec("synapse_admission_shed_total",
			"Requests refused by admission control, by shed code.",
			"code"),
	}
	reg.GaugeFunc("synapse_http_inflight_requests",
		"Requests currently executing (admission-controlled data path).",
		func() float64 { return float64(adm.inflight.Load()) })
	reg.GaugeFunc("synapse_admission_queue_depth",
		"Reads currently parked in the admission queue.",
		func() float64 { return float64(len(adm.queue)) })
	reg.GaugeFunc("synapse_admission_read_only",
		"1 while the server is in read-only degraded mode.",
		func() float64 { return boolGauge(adm.readOnly.Load()) })
	reg.GaugeFunc("synapse_admission_draining",
		"1 while the server is draining for shutdown.",
		func() float64 { return boolGauge(adm.draining.Load()) })
	b := telemetry.BuildInfo()
	reg.GaugeVec("synapse_build_info",
		"Build metadata; the value is always 1.",
		"version", "go_version", "revision").
		With(b.Version, b.GoVersion, b.Revision).Set(1)
	return m
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// routeOf collapses request paths onto a bounded route label set, so a
// client probing random URLs cannot explode series cardinality.
func routeOf(path string) string {
	switch path {
	case "/v1/profiles", "/v1/profiles:batch", "/v1/keys", "/v1/healthz", "/v1/metrics":
		return path
	}
	if len(path) >= len("/debug/pprof") && path[:len("/debug/pprof")] == "/debug/pprof" {
		return "/debug/pprof"
	}
	return "other"
}

// statusRecorder captures the response status for the RED middleware; the
// body streams through untouched (including the gzip writer wrapping).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// observe records one finished request in the RED instruments.
func (m *metrics) observe(route, method string, status int, seconds float64) {
	code := strconv.Itoa(status)
	m.requests.With(route, method, code).Inc()
	m.latency.With(route, method).Observe(seconds)
}
