package storesrv

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"synapse/internal/profile"
	"synapse/internal/store"
	"synapse/internal/store/storetest"
	"synapse/internal/testutil"
)

// gatedStore wraps a Store and blocks reads until released, so tests can
// hold requests in flight deterministically.
type gatedStore struct {
	store.Store
	gate    chan struct{}
	reading atomic.Int64
	peak    atomic.Int64
}

func newGatedStore(inner store.Store) *gatedStore {
	return &gatedStore{Store: inner, gate: make(chan struct{})}
}

func (g *gatedStore) Find(command string, tags map[string]string) (profile.Set, error) {
	n := g.reading.Add(1)
	defer g.reading.Add(-1)
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			break
		}
	}
	<-g.gate
	return g.Store.Find(command, tags)
}

func (g *gatedStore) release() { close(g.gate) }

func mkTestProfile(t *testing.T, command string) *profile.Profile {
	t.Helper()
	return storetest.MkProfile(command, nil, 3)
}

// putBody builds a valid PUT /v1/profiles request body.
func putBody(t *testing.T, command string) *strings.Reader {
	t.Helper()
	data, err := json.Marshal(mkTestProfile(t, command))
	if err != nil {
		t.Fatal(err)
	}
	return strings.NewReader(string(data))
}

func decodeErr(t *testing.T, resp *http.Response) ErrorResponse {
	t.Helper()
	defer resp.Body.Close()
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	return er
}

// TestBoundedInFlightSheds: with MaxInFlight=2 and no queue, a third
// concurrent read is shed with 429 + Retry-After while the backend never
// sees more than two concurrent queries.
func TestBoundedInFlightSheds(t *testing.T) {
	gs := newGatedStore(store.NewSharded(2))
	if err := gs.Store.Put(mkTestProfile(t, "held")); err != nil {
		t.Fatal(err)
	}
	srv := New(gs, Config{MaxInFlight: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	codes := make(chan int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/profiles?key=held")
			if err != nil {
				codes <- -1
				return
			}
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				codes <- -2
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	// Wait until two reads are parked inside the backend, then release.
	deadline := time.Now().Add(2 * time.Second)
	for gs.reading.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // give the rest time to arrive and shed
	gs.release()
	wg.Wait()
	close(codes)

	var ok, shed int
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		case -2:
			t.Fatal("429 response missing Retry-After header")
		default:
			t.Fatalf("unexpected outcome %d", c)
		}
	}
	if ok != 2 || shed != 6 {
		t.Fatalf("ok=%d shed=%d, want 2 admitted and 6 shed", ok, shed)
	}
	if p := gs.peak.Load(); p > 2 {
		t.Fatalf("backend saw %d concurrent reads, bound is 2", p)
	}
	if _, s := srv.Counters(); s != 6 {
		t.Fatalf("shed counter = %d, want 6", s)
	}
}

// TestQueueAdmitsReadsAfterRelease: a read arriving at capacity parks in
// the admission queue and completes once a slot frees, instead of shedding.
func TestQueueAdmitsReadsAfterRelease(t *testing.T) {
	gs := newGatedStore(store.NewSharded(2))
	if err := gs.Store.Put(mkTestProfile(t, "held")); err != nil {
		t.Fatal(err)
	}
	srv := New(gs, Config{MaxInFlight: 1, Queue: 4, RequestTimeout: 5 * time.Second})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Get(ts.URL + "/v1/profiles?key=held")
			if err != nil {
				results <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- resp.StatusCode
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for gs.reading.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // second read should now be queued
	gs.release()
	for i := 0; i < 2; i++ {
		if c := <-results; c != http.StatusOK {
			t.Fatalf("read %d finished with %d, want 200 (queued then admitted)", i, c)
		}
	}
}

// TestWritesShedFirst: at capacity, a write is refused immediately (429)
// even though the read queue has room — only reads may wait.
func TestWritesShedFirst(t *testing.T) {
	gs := newGatedStore(store.NewSharded(2))
	if err := gs.Store.Put(mkTestProfile(t, "held")); err != nil {
		t.Fatal(err)
	}
	srv := New(gs, Config{MaxInFlight: 1, Queue: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/v1/profiles?key=held")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for gs.reading.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/profiles", putBody(t, "newcmd"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("write at capacity got %d, want 429 (writes shed first)", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed write missing Retry-After")
	}
	if er := decodeErr(t, resp); er.Code != CodeOverloaded {
		t.Fatalf("code = %q, want %q", er.Code, CodeOverloaded)
	}
	gs.release()
	<-done
}

// TestQueueWaitBounded: a queued read sheds once the request-timeout wait
// budget burns down, rather than waiting forever on a stuck slot.
func TestQueueWaitBounded(t *testing.T) {
	gs := newGatedStore(store.NewSharded(2))
	if err := gs.Store.Put(mkTestProfile(t, "held")); err != nil {
		t.Fatal(err)
	}
	srv := New(gs, Config{MaxInFlight: 1, Queue: 4, RequestTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer gs.release() // unstick the holder before ts.Close waits on it

	go func() {
		resp, err := http.Get(ts.URL + "/v1/profiles?key=held")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for gs.reading.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/profiles?key=held")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queued read behind a stuck slot got %d, want 429", resp.StatusCode)
	}
	if took := time.Since(start); took < 40*time.Millisecond || took > 2*time.Second {
		t.Fatalf("queue wait lasted %v, want ~50ms", took)
	}
}

// TestReadOnlyMode: writes shed with 503/read_only, reads and health checks
// keep working, and the mode is toggleable at runtime.
func TestReadOnlyMode(t *testing.T) {
	backend := store.NewSharded(2)
	if err := backend.Put(mkTestProfile(t, "existing")); err != nil {
		t.Fatal(err)
	}
	srv := New(backend, Config{ReadOnly: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/profiles", putBody(t, "denied"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write in read-only mode got %d, want 503", resp.StatusCode)
	}
	if er := decodeErr(t, resp); er.Code != CodeReadOnly {
		t.Fatalf("code = %q, want %q", er.Code, CodeReadOnly)
	}

	get, err := http.Get(ts.URL + "/v1/profiles?key=existing")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, get.Body)
	get.Body.Close()
	if get.StatusCode != http.StatusOK {
		t.Fatalf("read in read-only mode got %d, want 200", get.StatusCode)
	}

	hr := healthz(t, ts.URL)
	if hr.Status != "read_only" {
		t.Fatalf("healthz status = %q, want read_only", hr.Status)
	}

	srv.SetReadOnly(false)
	req2, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/profiles", putBody(t, "allowed"))
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("write after SetReadOnly(false) got %d, want 200", resp2.StatusCode)
	}
}

// TestDrainingShedsNewRequests: once Shutdown begins, new data-path
// requests are refused with 503/draining.
func TestDrainingShedsNewRequests(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv := New(store.NewSharded(2), Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/keys")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain got %d, want 503", resp.StatusCode)
	}
	if er := decodeErr(t, resp); er.Code != CodeDraining {
		t.Fatalf("code = %q, want %q", er.Code, CodeDraining)
	}
}

func healthz(t *testing.T, base string) HealthResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	return hr
}

// TestHealthzBypassesAdmissionAndReportsCounters: the health endpoint must
// answer while the data path is saturated, and its counters must reflect
// the in-flight and shed totals.
func TestHealthzBypassesAdmissionAndReportsCounters(t *testing.T) {
	gs := newGatedStore(store.NewSharded(2))
	if err := gs.Store.Put(mkTestProfile(t, "held")); err != nil {
		t.Fatal(err)
	}
	srv := New(gs, Config{MaxInFlight: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/v1/profiles?key=held")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for gs.reading.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Shed one read to move the counter.
	resp, err := http.Get(ts.URL + "/v1/profiles?key=held")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second read got %d, want 429", resp.StatusCode)
	}

	hr := healthz(t, ts.URL)
	if hr.Status != "ok" {
		t.Fatalf("healthz status = %q", hr.Status)
	}
	if hr.InFlight != 1 {
		t.Fatalf("healthz inflight = %d, want 1 (the held read)", hr.InFlight)
	}
	if hr.Shed != 1 {
		t.Fatalf("healthz shed = %d, want 1", hr.Shed)
	}
	if hr.MaxInFlight != 1 {
		t.Fatalf("healthz max_inflight = %d, want 1", hr.MaxInFlight)
	}
	gs.release()
	<-done
}

// TestRequestTimeoutOnContext: admitted requests carry the configured
// server-side deadline on their context.
func TestRequestTimeoutOnContext(t *testing.T) {
	srv := New(store.NewSharded(2), Config{RequestTimeout: 123 * time.Millisecond})
	inner := srv.mux
	var sawDeadline atomic.Bool
	srv.mux = http.NewServeMux()
	srv.mux.Handle("/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, ok := r.Context().Deadline()
		sawDeadline.Store(ok)
		inner.ServeHTTP(w, r)
	}))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/keys")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if !sawDeadline.Load() {
		t.Fatal("admitted request context carries no deadline")
	}
}
