package storesrv

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"synapse/internal/store"
	"synapse/internal/store/storetest"
	"synapse/internal/telemetry"
)

// scrape fetches /v1/metrics and validates it through the telemetry
// package's own exposition parser — the same check CI's smoke runs.
func scrape(t *testing.T, s *Server) *telemetry.Exposition {
	t.Helper()
	w := doJSON(t, s, http.MethodGet, "/v1/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics = %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	exp, err := telemetry.ParseExposition(w.Body.Bytes())
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, w.Body)
	}
	return exp
}

func TestMetricsEndpointServesREDSeries(t *testing.T) {
	s, _ := newServer(t)
	p := storetest.MkProfile("mdsim", map[string]string{"steps": "10"}, 2)
	doJSON(t, s, http.MethodPut, "/v1/profiles", encodeProfile(t, p))
	doJSON(t, s, http.MethodGet, "/v1/profiles?key="+url.QueryEscape(p.Key()), nil)
	doJSON(t, s, http.MethodGet, "/v1/nope", nil)

	exp := scrape(t, s)
	for _, name := range []string{
		"synapse_http_requests_total",
		"synapse_http_request_duration_seconds",
		"synapse_http_inflight_requests",
		"synapse_admission_queue_depth",
		"synapse_build_info",
	} {
		if !exp.Has(name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	// The raw text carries the per-route labels we expect.
	w := doJSON(t, s, http.MethodGet, "/v1/metrics", nil)
	body := w.Body.String()
	for _, series := range []string{
		`synapse_http_requests_total{route="/v1/profiles",method="PUT",code="200"} 1`,
		`synapse_http_requests_total{route="/v1/profiles",method="GET",code="200"} 1`,
		`synapse_http_requests_total{route="other",method="GET",code="404"} 1`,
		`synapse_http_request_duration_seconds_count{route="/v1/profiles",method="PUT"} 1`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("missing series %q in:\n%s", series, body)
		}
	}
}

// TestMetricsBypassesAdmission: scrapes must answer while the data path is
// saturated or draining — observability is most needed during overload.
func TestMetricsBypassesAdmission(t *testing.T) {
	s := New(store.NewSharded(1), Config{MaxInFlight: 1})
	s.adm.draining.Store(true)
	w := doJSON(t, s, http.MethodGet, "/v1/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics during drain = %d", w.Code)
	}
}

func TestShedCountedByCode(t *testing.T) {
	s := New(store.NewSharded(1), Config{ReadOnly: true})
	p := storetest.MkProfile("mdsim", nil, 1)
	w := doJSON(t, s, http.MethodPut, "/v1/profiles", encodeProfile(t, p))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("write in read-only = %d", w.Code)
	}
	body := doJSON(t, s, http.MethodGet, "/v1/metrics", nil).Body.String()
	if !strings.Contains(body, `synapse_admission_shed_total{code="read_only"} 1`) {
		t.Errorf("shed not counted by code:\n%s", body)
	}
	if !strings.Contains(body, "synapse_admission_read_only 1") {
		t.Errorf("read-only gauge not set:\n%s", body)
	}
	// Shed responses still hit the RED counter with their status code.
	if !strings.Contains(body, `synapse_http_requests_total{route="/v1/profiles",method="PUT",code="503"} 1`) {
		t.Errorf("shed request missing from RED counter:\n%s", body)
	}
}

func TestSharedRegistryAcrossServers(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := New(store.NewSharded(1), Config{Metrics: reg})
	if a.Metrics() != reg {
		t.Fatal("server did not adopt the shared registry")
	}
	// Registering the same instruments from a second server must not panic
	// (idempotent registration) — e.g. tests booting several servers.
	b := New(store.NewSharded(1), Config{Metrics: reg})
	doJSON(t, a, http.MethodGet, "/v1/healthz", nil)
	doJSON(t, b, http.MethodGet, "/v1/healthz", nil)
	body := doJSON(t, a, http.MethodGet, "/v1/metrics", nil).Body.String()
	if !strings.Contains(body, `synapse_http_requests_total{route="/v1/healthz",method="GET",code="200"} 2`) {
		t.Errorf("shared registry did not merge counts:\n%s", body)
	}
}

func TestHealthzCarriesBuildBlock(t *testing.T) {
	s, _ := newServer(t)
	w := doJSON(t, s, http.MethodGet, "/v1/healthz", nil)
	var h HealthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Build.GoVersion == "" || h.Build.Version == "" {
		t.Errorf("healthz build block incomplete: %+v", h.Build)
	}
}

func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	s := New(store.NewSharded(1), Config{Logger: log})
	doJSON(t, s, http.MethodGet, "/v1/profiles?key=mdsim", nil)

	var line struct {
		Msg    string  `json:"msg"`
		Route  string  `json:"route"`
		Method string  `json:"method"`
		Code   int     `json:"code"`
		Key    string  `json:"key"`
		Dur    float64 `json:"duration"`
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, buf.String())
	}
	if line.Msg != "request" || line.Route != "/v1/profiles" ||
		line.Method != "GET" || line.Code != http.StatusNotFound || line.Key != "mdsim" {
		t.Errorf("log line fields wrong: %+v (%s)", line, buf.String())
	}
}

func TestRouteOfBoundsCardinality(t *testing.T) {
	for path, want := range map[string]string{
		"/v1/profiles":              "/v1/profiles",
		"/v1/profiles:batch":        "/v1/profiles:batch",
		"/v1/keys":                  "/v1/keys",
		"/v1/healthz":               "/v1/healthz",
		"/v1/metrics":               "/v1/metrics",
		"/debug/pprof/heap":         "/debug/pprof",
		"/v1/profiles/abc/evil":     "other",
		"/totally/made/up/9f8e7d6c": "other",
	} {
		if got := routeOf(path); got != want {
			t.Errorf("routeOf(%q) = %q, want %q", path, got, want)
		}
	}
}
