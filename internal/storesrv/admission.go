package storesrv

import (
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"synapse/internal/telemetry"
)

// Overload-protection error codes (alongside the data-path codes in
// storesrv.go). Clients treat 429 as retry-after-the-hint for any method;
// read_only and draining ride on 503 and are terminal for writes.
const (
	CodeOverloaded = "overloaded"
	CodeReadOnly   = "read_only"
	CodeDraining   = "draining"
)

// shedRetryAfter is the backoff hint attached to shed responses: long
// enough that a retry lands after a transient spike, short enough that
// clients recover promptly.
const shedRetryAfter = 1 // seconds

// defaultQueueWait bounds how long an admitted-but-queued request may wait
// for an execution slot when no RequestTimeout is configured.
const defaultQueueWait = time.Second

// HealthResponse is the /v1/healthz body: liveness plus the overload
// counters operators watch when tuning -max-inflight and -queue, and the
// build block identifying exactly what binary is answering.
type HealthResponse struct {
	Status      string          `json:"status"` // "ok", "read_only", or "draining"
	InFlight    int64           `json:"inflight"`
	MaxInFlight int             `json:"max_inflight,omitempty"`
	Queue       int             `json:"queue,omitempty"`
	Shed        int64           `json:"shed"`
	Build       telemetry.Build `json:"build"`
}

// admission is the server's overload-protection state: a semaphore bounding
// concurrently-executing requests, a small counted queue for reads that
// arrive while the semaphore is full, and the degraded-mode flags.
type admission struct {
	sem     chan struct{} // nil = unbounded
	queue   chan struct{} // waiter slots; nil = no queue
	timeout time.Duration // per-request server-side deadline (0 = none)

	readOnly atomic.Bool
	draining atomic.Bool
	inflight atomic.Int64
	shed     atomic.Int64
}

func newAdmission(cfg Config) *admission {
	a := &admission{timeout: cfg.RequestTimeout}
	if cfg.MaxInFlight > 0 {
		a.sem = make(chan struct{}, cfg.MaxInFlight)
		if cfg.Queue > 0 {
			a.queue = make(chan struct{}, cfg.Queue)
		}
	}
	a.readOnly.Store(cfg.ReadOnly)
	return a
}

// isWrite reports whether the request mutates the store. Writes are shed
// first: they are refused in read-only mode and never queue under load.
func isWrite(r *http.Request) bool {
	return r.Method != http.MethodGet && r.Method != http.MethodHead
}

// bypass reports whether the request skips admission control entirely:
// health checks, metrics scrapes and profiling must answer even
// (especially) when the data path is saturated — an overloaded server that
// stops reporting its own overload is unobservable exactly when it matters.
func bypass(r *http.Request) bool {
	return r.URL.Path == "/v1/healthz" ||
		r.URL.Path == "/v1/metrics" ||
		strings.HasPrefix(r.URL.Path, "/debug/pprof")
}

// admit reserves an execution slot, queueing reads briefly when the server
// is saturated. It returns release=nil when the request was shed (the
// response has already been written).
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func()) {
	a := s.adm
	if a.draining.Load() {
		s.shedResponse(w, r, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return nil
	}
	if isWrite(r) && a.readOnly.Load() {
		s.shedResponse(w, r, http.StatusServiceUnavailable, CodeReadOnly, "server is read-only")
		return nil
	}
	if a.sem == nil {
		return func() {}
	}
	select {
	case a.sem <- struct{}{}:
		return func() { <-a.sem }
	default:
	}
	// Saturated. Writes shed immediately; reads may hold a queue slot and
	// wait (bounded) for capacity.
	if isWrite(r) || !s.await(r) {
		s.shedResponse(w, r, http.StatusTooManyRequests, CodeOverloaded, "server is at capacity")
		return nil
	}
	return func() { <-s.adm.sem }
}

// await parks a read in the admission queue until an execution slot frees
// up, the caller gives up, or the wait budget burns down. True means a
// semaphore slot was acquired.
func (s *Server) await(r *http.Request) bool {
	a := s.adm
	if a.queue == nil {
		return false
	}
	select {
	case a.queue <- struct{}{}:
	default:
		return false // queue full too
	}
	defer func() { <-a.queue }()
	wait := a.timeout
	if wait <= 0 {
		wait = defaultQueueWait
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case a.sem <- struct{}{}:
		return true
	case <-r.Context().Done():
		return false
	case <-t.C:
		return false
	}
}

// shedResponse refuses a request with a structured error and a Retry-After
// hint, counting it.
func (s *Server) shedResponse(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	s.adm.shed.Add(1)
	s.met.shed.With(code).Inc()
	w.Header().Set("Retry-After", "1")
	writeJSON(w, r, status, ErrorResponse{Error: "storesrv: " + msg, Code: code})
}

// SetReadOnly toggles read-only degraded mode at runtime: writes are shed
// with 503/read_only while reads proceed normally.
func (s *Server) SetReadOnly(on bool) { s.adm.readOnly.Store(on) }

// ReadOnly reports whether the server is in read-only degraded mode.
func (s *Server) ReadOnly() bool { return s.adm.readOnly.Load() }

// Counters snapshots the overload counters (currently executing requests
// and total shed responses).
func (s *Server) Counters() (inflight, shed int64) {
	return s.adm.inflight.Load(), s.adm.shed.Load()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	switch {
	case s.adm.draining.Load():
		status = "draining"
	case s.adm.readOnly.Load():
		status = "read_only"
	}
	inflight, shed := s.Counters()
	writeJSON(w, r, http.StatusOK, HealthResponse{
		Status:      status,
		InFlight:    inflight,
		MaxInFlight: cap(s.adm.sem),
		Queue:       cap(s.adm.queue),
		Shed:        shed,
		Build:       s.build,
	})
}
