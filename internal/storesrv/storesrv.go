// Package storesrv is the HTTP profile-store service behind the synapsed
// daemon: it exposes any store.Store backend over a small JSON/REST API so
// many emulation hosts can share one profile database — the paper's
// "profile once, emulate anywhere" workflow (§4), where profiles live in a
// MongoDB service queried by every emulation host.
//
// API (all bodies JSON, gzip accepted and offered via the usual
// Content-Encoding/Accept-Encoding negotiation):
//
//	PUT    /v1/profiles            store one profile (?truncate=1 degrades to
//	                               the document limit instead of failing)
//	POST   /v1/profiles:batch      store many profiles, per-item results
//	GET    /v1/profiles?key=K      all profiles under a key, ETag'd by a
//	                               per-key generation counter (If-None-Match
//	                               returns 304 so clients can cache)
//	DELETE /v1/profiles?key=K      drop a key
//	GET    /v1/keys                list keys
//	GET    /v1/healthz             liveness probe
//	/debug/pprof/*                 optional (Config.Pprof) runtime profiling
//
// Errors round-trip as {"error": ..., "code": ...}; the storeclnt package
// maps codes back onto store.ErrNotFound / store.ErrDocTooLarge.
package storesrv

import (
	"compress/gzip"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"synapse/internal/profile"
	"synapse/internal/store"
	"synapse/internal/telemetry"
)

// Error codes carried in structured error responses.
const (
	CodeNotFound    = "not_found"
	CodeDocTooLarge = "doc_too_large"
	CodeInvalid     = "invalid"
	CodeInternal    = "internal"
)

// ErrorResponse is the wire form of a failed request.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// PutResponse answers a successful single put.
type PutResponse struct {
	Key        string `json:"key"`
	Dropped    int    `json:"dropped,omitempty"`
	Generation uint64 `json:"generation"`
}

// BatchRequest stores several profiles in one round trip.
type BatchRequest struct {
	Profiles []*profile.Profile `json:"profiles"`
	Truncate bool               `json:"truncate,omitempty"`
}

// BatchItem is the per-profile outcome of a batch put.
type BatchItem struct {
	Key     string `json:"key,omitempty"`
	Dropped int    `json:"dropped,omitempty"`
	Error   string `json:"error,omitempty"`
	Code    string `json:"code,omitempty"`
}

// BatchResponse lists one item per submitted profile, in order.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// KeysResponse lists the distinct keys in the backend.
type KeysResponse struct {
	Keys []string `json:"keys"`
}

// Config tunes the service.
type Config struct {
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// MaxInFlight bounds concurrently-executing requests (0 = unbounded).
	// Excess reads wait in the admission queue; excess writes are shed
	// immediately with 429 and a Retry-After hint (writes shed first).
	MaxInFlight int
	// Queue is the admission-queue depth for reads arriving while
	// MaxInFlight requests are executing (0 = shed instead of queueing).
	Queue int
	// RequestTimeout is the server-side deadline applied to each admitted
	// request's context, and the bound on admission-queue waits (0 = none).
	RequestTimeout time.Duration
	// ReadOnly starts the server in read-only degraded mode: writes are
	// shed with 503/read_only, reads proceed. Toggle later via SetReadOnly.
	ReadOnly bool
	// Metrics is the registry the server's instruments register into; it is
	// rendered at GET /v1/metrics in Prometheus text exposition. nil gets a
	// private registry, so metrics always work; pass a shared registry to
	// merge server and client series into one scrape.
	Metrics *telemetry.Registry
	// Logger receives one structured line per request (level DEBUG for
	// successes, WARN for 5xx/shed) plus lifecycle events. nil discards.
	Logger *slog.Logger
}

// Server serves a store.Store over HTTP. Construct with New; it implements
// http.Handler, so it can be mounted in tests (httptest.NewServer) or run
// standalone via Start/Shutdown.
type Server struct {
	backend store.Store
	mux     *http.ServeMux

	// gen counts mutations per key. GET responses carry the generation as
	// an ETag; remote clients revalidate their caches against it with
	// If-None-Match instead of re-downloading profile bodies. The epoch is
	// a per-boot nonce mixed into every ETag: counters restart at zero
	// when the daemon restarts, and without it a client cache primed in a
	// previous boot could collide with the fresh counter and wrongly
	// revalidate stale data against a persistent (file) backend.
	genMu sync.Mutex
	gen   map[string]uint64
	epoch string

	// adm is the overload-protection state: in-flight bounding, admission
	// queue, shedding, and the read-only/draining degraded modes.
	adm *admission

	met   *metrics
	log   *slog.Logger
	build telemetry.Build

	httpSrv *http.Server
}

// New wraps backend in an HTTP service.
func New(backend store.Store, cfg Config) *Server {
	nonce := make([]byte, 6)
	_, _ = rand.Read(nonce)
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	log := cfg.Logger
	if log == nil {
		log = telemetry.NopLogger()
	}
	s := &Server{
		backend: backend,
		mux:     http.NewServeMux(),
		gen:     map[string]uint64{},
		epoch:   hex.EncodeToString(nonce),
		adm:     newAdmission(cfg),
		log:     log,
		build:   telemetry.BuildInfo(),
	}
	s.met = newMetrics(reg, s.adm)
	s.mux.HandleFunc("PUT /v1/profiles", s.handlePut)
	s.mux.HandleFunc("GET /v1/profiles", s.handleFind)
	s.mux.HandleFunc("DELETE /v1/profiles", s.handleDelete)
	s.mux.HandleFunc("POST /v1/profiles:batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/keys", s.handleKeys)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.Handle("GET /v1/metrics", reg.Handler())
	if cfg.Pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler. Every data-path request passes
// admission control (health checks, metrics and pprof bypass it) and runs
// under the configured server-side deadline. All requests — including
// bypassed and shed ones — flow through the RED middleware: the request
// counter, the latency histogram, and one structured log line.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w}
	s.serve(rec, r)
	elapsed := time.Since(start)
	route := routeOf(r.URL.Path)
	status := rec.status
	if status == 0 {
		status = http.StatusOK // handler never wrote; net/http sends 200
	}
	s.met.observe(route, r.Method, status, elapsed.Seconds())
	level := slog.LevelDebug
	if status >= 500 || status == http.StatusTooManyRequests {
		level = slog.LevelWarn
	}
	attrs := []any{
		slog.String("route", route),
		slog.String("method", r.Method),
		slog.Int("code", status),
		slog.Duration("duration", elapsed),
	}
	if key := r.URL.Query().Get("key"); key != "" {
		attrs = append(attrs, slog.String("key", key))
	}
	s.log.Log(r.Context(), level, "request", attrs...)
}

// serve is the pre-telemetry handler chain: bypass, admission, deadline.
func (s *Server) serve(w http.ResponseWriter, r *http.Request) {
	if bypass(r) {
		s.mux.ServeHTTP(w, r)
		return
	}
	release := s.admit(w, r)
	if release == nil {
		return // shed; response already written
	}
	defer release()
	s.adm.inflight.Add(1)
	defer s.adm.inflight.Add(-1)
	if s.adm.timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.adm.timeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.mux.ServeHTTP(w, r)
}

// Metrics returns the registry the server's instruments live in — the same
// one /v1/metrics renders.
func (s *Server) Metrics() *telemetry.Registry { return s.met.reg }

// Start listens on addr (e.g. ":8181" or "127.0.0.1:0") and serves in the
// background, returning the bound address. Stop with Shutdown.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("storesrv: listen %s: %w", addr, err)
	}
	s.httpSrv = &http.Server{Handler: s, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return ln.Addr(), nil
}

// Shutdown gracefully stops a Start'ed server: new data-path requests are
// shed (503/draining) while it stops accepting connections and waits (up to
// ctx) for in-flight requests, then the backend closes.
func (s *Server) Shutdown(ctx context.Context) error {
	s.adm.draining.Store(true)
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	if cerr := s.backend.Close(); err == nil {
		err = cerr
	}
	return err
}

// generation returns the current mutation count for key.
func (s *Server) generation(key string) uint64 {
	s.genMu.Lock()
	defer s.genMu.Unlock()
	return s.gen[key]
}

// bump increments and returns key's generation after a mutation.
func (s *Server) bump(key string) uint64 {
	s.genMu.Lock()
	defer s.genMu.Unlock()
	s.gen[key]++
	return s.gen[key]
}

func (s *Server) etagFor(gen uint64) string { return fmt.Sprintf(`"%s-g%d"`, s.epoch, gen) }

// requestBody returns the request body, transparently gunzipping when the
// client sent Content-Encoding: gzip.
func requestBody(r *http.Request) (io.ReadCloser, error) {
	if strings.EqualFold(r.Header.Get("Content-Encoding"), "gzip") {
		zr, err := gzip.NewReader(r.Body)
		if err != nil {
			return nil, fmt.Errorf("bad gzip body: %w", err)
		}
		return zr, nil
	}
	return r.Body, nil
}

// writeJSON sends v as JSON, gzip-compressed when the client accepts it.
func writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	var out io.Writer = w
	if strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		w.Header().Set("Content-Encoding", "gzip")
		w.WriteHeader(status)
		zw := gzip.NewWriter(w)
		defer zw.Close()
		out = zw
	} else {
		w.WriteHeader(status)
	}
	_ = json.NewEncoder(out).Encode(v)
}

// writeError maps backend errors onto structured responses. The code, not
// the message, is the contract: clients rebuild sentinel errors from it.
func writeError(w http.ResponseWriter, r *http.Request, err error) {
	status, code := http.StatusInternalServerError, CodeInternal
	switch {
	case errors.Is(err, store.ErrNotFound):
		status, code = http.StatusNotFound, CodeNotFound
	case errors.Is(err, store.ErrDocTooLarge):
		status, code = http.StatusRequestEntityTooLarge, CodeDocTooLarge
	}
	writeJSON(w, r, status, ErrorResponse{Error: err.Error(), Code: code})
}

func writeBadRequest(w http.ResponseWriter, r *http.Request, err error) {
	writeJSON(w, r, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Code: CodeInvalid})
}

// decodeProfile reads one profile from the (possibly gzipped) request body.
func decodeProfile(r *http.Request) (*profile.Profile, error) {
	body, err := requestBody(r)
	if err != nil {
		return nil, err
	}
	defer body.Close()
	data, err := io.ReadAll(body)
	if err != nil {
		return nil, fmt.Errorf("read body: %w", err)
	}
	return profile.Decode(data)
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	p, err := decodeProfile(r)
	if err != nil {
		writeBadRequest(w, r, err)
		return
	}
	key := p.Key()
	var dropped int
	if r.URL.Query().Get("truncate") == "1" {
		tr, ok := s.backend.(store.Truncator)
		if !ok {
			// Backends without a document limit cannot overflow; a
			// strict put is equivalent.
			err = s.backend.Put(p)
		} else {
			dropped, err = tr.PutTruncated(p)
		}
	} else {
		err = s.backend.Put(p)
	}
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, r, http.StatusOK, PutResponse{Key: key, Dropped: dropped, Generation: s.bump(key)})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := requestBody(r)
	if err != nil {
		writeBadRequest(w, r, err)
		return
	}
	defer body.Close()
	var req BatchRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeBadRequest(w, r, fmt.Errorf("decode batch: %w", err))
		return
	}
	resp := BatchResponse{Results: make([]BatchItem, len(req.Profiles))}
	for i, p := range req.Profiles {
		item := &resp.Results[i]
		if p == nil {
			item.Error, item.Code = "nil profile", CodeInvalid
			continue
		}
		if err := p.Validate(); err != nil {
			item.Error, item.Code = err.Error(), CodeInvalid
			continue
		}
		var perr error
		tr, isTr := s.backend.(store.Truncator)
		if req.Truncate && isTr {
			item.Dropped, perr = tr.PutTruncated(p)
		} else {
			perr = s.backend.Put(p)
		}
		if perr != nil {
			item.Error = perr.Error()
			switch {
			case errors.Is(perr, store.ErrDocTooLarge):
				item.Code = CodeDocTooLarge
			case errors.Is(perr, store.ErrNotFound):
				item.Code = CodeNotFound
			default:
				item.Code = CodeInternal
			}
			continue
		}
		item.Key = p.Key()
		s.bump(item.Key)
	}
	writeJSON(w, r, http.StatusOK, resp)
}

func (s *Server) handleFind(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeBadRequest(w, r, errors.New("missing key parameter"))
		return
	}
	// Read the generation before the backend: if a put lands in between,
	// the response carries fresh data under a stale tag, which only costs
	// the client one redundant revalidation.
	gen := s.generation(key)
	etag := s.etagFor(gen)
	if match := r.Header.Get("If-None-Match"); match != "" && match == etag {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	command, tags := profile.ParseKey(key)
	set, err := s.backend.Find(command, tags)
	if err != nil {
		writeError(w, r, err)
		return
	}
	w.Header().Set("ETag", etag)
	writeJSON(w, r, http.StatusOK, set)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeBadRequest(w, r, errors.New("missing key parameter"))
		return
	}
	command, tags := profile.ParseKey(key)
	if err := s.backend.Delete(command, tags); err != nil {
		writeError(w, r, err)
		return
	}
	s.bump(key)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleKeys(w http.ResponseWriter, r *http.Request) {
	keys, err := s.backend.Keys()
	if err != nil {
		writeError(w, r, err)
		return
	}
	if keys == nil {
		keys = []string{}
	}
	writeJSON(w, r, http.StatusOK, KeysResponse{Keys: keys})
}
