package perfcount

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddAccumulates(t *testing.T) {
	a := Counters{Cycles: 100, Instructions: 200, ReadBytes: 10, RSS: 5, PeakRSS: 5}
	b := Counters{Cycles: 50, Instructions: 75, ReadBytes: 1, RSS: 3, PeakRSS: 3}
	got := a.Add(b)
	if got.Cycles != 150 || got.Instructions != 275 || got.ReadBytes != 11 {
		t.Errorf("Add cumulative fields wrong: %+v", got)
	}
	if got.RSS != 3 {
		t.Errorf("RSS should take the newer gauge value, got %v", got.RSS)
	}
	if got.PeakRSS != 5 {
		t.Errorf("PeakRSS should keep the high-water mark, got %v", got.PeakRSS)
	}
}

func TestAddPeakTracksRSS(t *testing.T) {
	a := Counters{}
	got := a.Add(Counters{RSS: 9})
	if got.PeakRSS != 9 {
		t.Errorf("PeakRSS should follow RSS upward, got %v", got.PeakRSS)
	}
}

func TestSubDeltas(t *testing.T) {
	prev := Counters{Cycles: 100, WriteBytes: 5, RSS: 4, Threads: 2}
	cur := Counters{Cycles: 180, WriteBytes: 9, RSS: 6, Threads: 3}
	d := cur.Sub(prev)
	if d.Cycles != 80 || d.WriteBytes != 4 {
		t.Errorf("Sub deltas wrong: %+v", d)
	}
	if d.RSS != 6 {
		t.Errorf("Sub should keep current gauge, got %v", d.RSS)
	}
	if d.Threads != 3 {
		t.Errorf("Sub should keep current thread count, got %v", d.Threads)
	}
}

func TestScale(t *testing.T) {
	c := Counters{Cycles: 10, FLOPs: 4, AllocBytes: 8}
	s := c.Scale(0.5)
	if s.Cycles != 5 || s.FLOPs != 2 || s.AllocBytes != 4 {
		t.Errorf("Scale wrong: %+v", s)
	}
}

func TestIsZero(t *testing.T) {
	if !(Counters{}).IsZero() {
		t.Error("zero value should be zero")
	}
	if (Counters{Cycles: 1}).IsZero() {
		t.Error("non-zero counters reported zero")
	}
}

func TestEfficiencyFormula(t *testing.T) {
	c := Counters{Cycles: 80, StalledFront: 10, StalledBack: 10}
	if got := c.Efficiency(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Efficiency = %v, want 0.8", got)
	}
	if !math.IsNaN((Counters{}).Efficiency()) {
		t.Error("Efficiency of empty counters should be NaN")
	}
	// No stalls: perfect efficiency.
	if got := (Counters{Cycles: 5}).Efficiency(); got != 1 {
		t.Errorf("Efficiency without stalls = %v, want 1", got)
	}
}

func TestUtilization(t *testing.T) {
	c := Counters{Cycles: 50}
	if got := c.Utilization(200); got != 0.25 {
		t.Errorf("Utilization = %v, want 0.25", got)
	}
	if !math.IsNaN(c.Utilization(0)) {
		t.Error("Utilization with zero max should be NaN")
	}
}

func TestIPC(t *testing.T) {
	c := Counters{Instructions: 217, Cycles: 100}
	if got := c.IPC(); math.Abs(got-2.17) > 1e-12 {
		t.Errorf("IPC = %v, want 2.17", got)
	}
	if !math.IsNaN((Counters{Instructions: 5}).IPC()) {
		t.Error("IPC with zero cycles should be NaN")
	}
}

func TestFLOPS(t *testing.T) {
	c := Counters{FLOPs: 1e9}
	if got := c.FLOPS(2); got != 5e8 {
		t.Errorf("FLOPS = %v, want 5e8", got)
	}
	if !math.IsNaN(c.FLOPS(0)) {
		t.Error("FLOPS over zero time should be NaN")
	}
}

// Property: Add then Sub round-trips cumulative fields.
func TestAddSubRoundTripProperty(t *testing.T) {
	f := func(ac, ai, bc, bi uint32) bool {
		a := Counters{Cycles: float64(ac), Instructions: float64(ai)}
		b := Counters{Cycles: float64(bc), Instructions: float64(bi)}
		sum := a.Add(b)
		d := sum.Sub(a)
		return d.Cycles == b.Cycles && d.Instructions == b.Instructions
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: efficiency is always within [0, 1] for non-negative counters.
func TestEfficiencyBoundedProperty(t *testing.T) {
	f := func(used, sf, sb uint32) bool {
		c := Counters{Cycles: float64(used), StalledFront: float64(sf), StalledBack: float64(sb)}
		e := c.Efficiency()
		if math.IsNaN(e) {
			return used == 0 && sf == 0 && sb == 0
		}
		return e >= 0 && e <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is associative on cumulative fields.
func TestAddAssociativeProperty(t *testing.T) {
	f := func(xs [3]uint16) bool {
		a := Counters{Cycles: float64(xs[0])}
		b := Counters{Cycles: float64(xs[1])}
		c := Counters{Cycles: float64(xs[2])}
		left := a.Add(b).Add(c)
		right := a.Add(b.Add(c))
		return left.Cycles == right.Cycles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
