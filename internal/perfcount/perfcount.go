// Package perfcount provides the hardware-counter substrate.
//
// The paper's profiler reads CPU activity from perf-stat, memory and disk
// counters from /proc, and process totals from rusage. This reproduction has
// no guaranteed access to perf counters (see DESIGN.md §2), so counters are
// produced either by the machine simulator (internal/proc) or estimated from
// /proc CPU time on the real host (internal/procfs). Either way they flow
// through the Counters type defined here, and the derived metrics
// (efficiency, utilization, instruction rate) use exactly the formulas from
// paper §4.3.
package perfcount

import "math"

// Counters is a snapshot of cumulative resource-consumption counters for one
// process, mirroring the sampled metrics of paper Table 1.
type Counters struct {
	// Compute.
	Instructions float64 // retired instructions
	Cycles       float64 // cycles counted toward the application ("used")
	StalledFront float64 // cycles stalled in the CPU frontend
	StalledBack  float64 // cycles stalled in the CPU backend
	FLOPs        float64 // floating-point operations
	Threads      float64 // number of application threads
	Processes    float64 // number of application processes

	// Storage.
	ReadBytes  float64
	WriteBytes float64
	ReadOps    float64
	WriteOps   float64

	// Memory.
	AllocBytes float64 // cumulative bytes allocated
	FreeBytes  float64 // cumulative bytes freed
	RSS        float64 // resident set size (gauge, not cumulative)
	PeakRSS    float64 // high-water mark of RSS

	// Network.
	NetReadBytes  float64
	NetWriteBytes float64
}

// Add returns c with every cumulative field increased by d's fields. Gauge
// fields (RSS) take d's value; PeakRSS takes the maximum.
func (c Counters) Add(d Counters) Counters {
	c.Instructions += d.Instructions
	c.Cycles += d.Cycles
	c.StalledFront += d.StalledFront
	c.StalledBack += d.StalledBack
	c.FLOPs += d.FLOPs
	c.ReadBytes += d.ReadBytes
	c.WriteBytes += d.WriteBytes
	c.ReadOps += d.ReadOps
	c.WriteOps += d.WriteOps
	c.AllocBytes += d.AllocBytes
	c.FreeBytes += d.FreeBytes
	c.NetReadBytes += d.NetReadBytes
	c.NetWriteBytes += d.NetWriteBytes
	if d.Threads > c.Threads {
		c.Threads = d.Threads
	}
	if d.Processes > c.Processes {
		c.Processes = d.Processes
	}
	c.RSS = d.RSS
	if d.PeakRSS > c.PeakRSS {
		c.PeakRSS = d.PeakRSS
	}
	if c.RSS > c.PeakRSS {
		c.PeakRSS = c.RSS
	}
	return c
}

// Accumulate adds d into c in place, with exactly Add's semantics. The
// emulator's batched replay fold runs it once per atom per sample; the
// in-place form avoids the two ~140-byte struct copies Add pays per call,
// which dominated the replay CPU profile.
func (c *Counters) Accumulate(d *Counters) {
	c.Instructions += d.Instructions
	c.Cycles += d.Cycles
	c.StalledFront += d.StalledFront
	c.StalledBack += d.StalledBack
	c.FLOPs += d.FLOPs
	c.ReadBytes += d.ReadBytes
	c.WriteBytes += d.WriteBytes
	c.ReadOps += d.ReadOps
	c.WriteOps += d.WriteOps
	c.AllocBytes += d.AllocBytes
	c.FreeBytes += d.FreeBytes
	c.NetReadBytes += d.NetReadBytes
	c.NetWriteBytes += d.NetWriteBytes
	if d.Threads > c.Threads {
		c.Threads = d.Threads
	}
	if d.Processes > c.Processes {
		c.Processes = d.Processes
	}
	c.RSS = d.RSS
	if d.PeakRSS > c.PeakRSS {
		c.PeakRSS = d.PeakRSS
	}
	if c.RSS > c.PeakRSS {
		c.PeakRSS = c.RSS
	}
}

// Sub returns the delta c - prev for cumulative fields; gauge fields keep
// c's value. Sub is what turns two successive watcher snapshots into one
// profile sample.
func (c Counters) Sub(prev Counters) Counters {
	d := Counters{
		Instructions:  c.Instructions - prev.Instructions,
		Cycles:        c.Cycles - prev.Cycles,
		StalledFront:  c.StalledFront - prev.StalledFront,
		StalledBack:   c.StalledBack - prev.StalledBack,
		FLOPs:         c.FLOPs - prev.FLOPs,
		ReadBytes:     c.ReadBytes - prev.ReadBytes,
		WriteBytes:    c.WriteBytes - prev.WriteBytes,
		ReadOps:       c.ReadOps - prev.ReadOps,
		WriteOps:      c.WriteOps - prev.WriteOps,
		AllocBytes:    c.AllocBytes - prev.AllocBytes,
		FreeBytes:     c.FreeBytes - prev.FreeBytes,
		NetReadBytes:  c.NetReadBytes - prev.NetReadBytes,
		NetWriteBytes: c.NetWriteBytes - prev.NetWriteBytes,
		Threads:       c.Threads,
		Processes:     c.Processes,
		RSS:           c.RSS,
		PeakRSS:       c.PeakRSS,
	}
	return d
}

// Scale returns c with every cumulative field multiplied by f (gauges are
// scaled too; callers that need gauge preservation should restore them).
func (c Counters) Scale(f float64) Counters {
	c.Instructions *= f
	c.Cycles *= f
	c.StalledFront *= f
	c.StalledBack *= f
	c.FLOPs *= f
	c.ReadBytes *= f
	c.WriteBytes *= f
	c.ReadOps *= f
	c.WriteOps *= f
	c.AllocBytes *= f
	c.FreeBytes *= f
	c.NetReadBytes *= f
	c.NetWriteBytes *= f
	return c
}

// IsZero reports whether every field is zero.
func (c Counters) IsZero() bool { return c == Counters{} }

// StalledTotal returns all wasted cycles. The paper counts both frontend and
// backend stalls as wasted, acknowledging possible double counting (§4.3).
func (c Counters) StalledTotal() float64 { return c.StalledFront + c.StalledBack }

// Efficiency implements the paper's formula:
//
//	efficiency = cycles_used / (cycles_used + cycles_wasted)
//
// It returns NaN when no cycles were observed.
func (c Counters) Efficiency() float64 {
	spent := c.Cycles + c.StalledTotal()
	if spent == 0 {
		return math.NaN()
	}
	return c.Cycles / spent
}

// Utilization implements the paper's formula:
//
//	utilization = cycles_used / cycles_max
//
// where cyclesMax is derived from the machine's clock rate and the observed
// wall time. It returns NaN when cyclesMax is zero.
func (c Counters) Utilization(cyclesMax float64) float64 {
	if cyclesMax == 0 {
		return math.NaN()
	}
	return c.Cycles / cyclesMax
}

// IPC returns retired instructions per used cycle ("instruction rate" in
// paper Fig 11). It returns NaN when no cycles were observed.
func (c Counters) IPC() float64 {
	if c.Cycles == 0 {
		return math.NaN()
	}
	return c.Instructions / c.Cycles
}

// FLOPS returns floating-point operations per second over wall time sec.
func (c Counters) FLOPS(sec float64) float64 {
	if sec <= 0 {
		return math.NaN()
	}
	return c.FLOPs / sec
}
