// Package clock abstracts time so that the same profiling and emulation code
// can run against the host's wall clock or against a deterministic simulated
// clock driven by the machine models in internal/machine.
//
// The paper's profiler samples watchers at a fixed rate and its emulator
// replays samples in order; both only need Now, Sleep and After. Sim
// implements those against a virtual timeline: time only advances when a
// driver calls Advance or AdvanceTo, which makes every experiment in this
// repository deterministic and fast regardless of the host it runs on.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the repository.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the caller for d of this clock's time.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock's time once d has
	// elapsed. The channel has capacity 1 and is never closed.
	After(d time.Duration) <-chan time.Time
}

// Real is a Clock backed by the operating system's wall clock.
type Real struct{}

// NewReal returns a Clock that uses the host wall clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// waiter is a goroutine blocked on the simulated timeline.
type waiter struct {
	at time.Time
	ch chan time.Time
	// seq breaks ties so that waiters with equal deadlines fire in the
	// order they were registered.
	seq uint64
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// Sim is a deterministic simulated clock. Construct with NewSim; the zero
// value is not usable. Goroutines may block on Sleep or After; time moves
// only when a driver calls Advance or AdvanceTo, which releases waiters in
// deadline order (FIFO among equal deadlines).
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     uint64
}

// NewSim returns a simulated clock whose current time is start.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// After implements Clock. The returned channel fires when the simulated time
// reaches now+d.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- s.now
		return ch
	}
	s.seq++
	heap.Push(&s.waiters, &waiter{at: s.now.Add(d), ch: ch, seq: s.seq})
	return ch
}

// Sleep implements Clock. The caller blocks until a driver advances the
// simulated time past the deadline.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := s.After(d)
	<-ch
}

// Advance moves the simulated time forward by d, releasing every waiter whose
// deadline is reached, in deadline order.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceToLocked(s.now.Add(d))
}

// AdvanceTo moves the simulated time to t if t is later than the current
// simulated time.
func (s *Sim) AdvanceTo(t time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceToLocked(t)
}

// Step advances the simulated time just far enough to release the earliest
// waiter, and reports whether a waiter was released. Drivers that interleave
// with sampling goroutines use Step to hand control to exactly one sleeper.
func (s *Sim) Step() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.waiters) == 0 {
		return false
	}
	w := heap.Pop(&s.waiters).(*waiter)
	if w.at.After(s.now) {
		s.now = w.at
	}
	w.ch <- s.now
	return true
}

// advanceToLocked releases waiters up to t and sets now = t.
func (s *Sim) advanceToLocked(t time.Time) {
	if t.Before(s.now) {
		return
	}
	for len(s.waiters) > 0 && !s.waiters[0].at.After(t) {
		w := heap.Pop(&s.waiters).(*waiter)
		if w.at.After(s.now) {
			s.now = w.at
		}
		w.ch <- s.now
	}
	if t.After(s.now) {
		s.now = t
	}
}

// Pending reports how many waiters are currently blocked on the clock.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

// Reset rewinds the clock to start and drops any registered waiters,
// restoring the state NewSim(start) would return. It exists so pooled
// emulation scratch can reuse one clock across replays; resetting a clock
// with goroutines still blocked on it would strand them, so callers only
// reset clocks they drove single-threaded (AutoSim never blocks).
func (s *Sim) Reset(start time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = start
	s.waiters = s.waiters[:0]
	s.seq = 0
}

// Elapsed returns the time elapsed on c since start.
func Elapsed(c Clock, start time.Time) time.Duration { return c.Now().Sub(start) }

// AutoSim wraps Sim so that Sleep advances the virtual time immediately
// instead of blocking for a driver. It is the single-goroutine driver mode
// used by the simulated profiler and emulator: one loop sleeps its way along
// the virtual timeline and simulated runs complete in microseconds of wall
// time.
type AutoSim struct{ *Sim }

// NewAutoSim returns an auto-advancing simulated clock starting at start.
func NewAutoSim(start time.Time) AutoSim { return AutoSim{NewSim(start)} }

// Sleep advances the simulated time by d and returns immediately.
func (a AutoSim) Sleep(d time.Duration) {
	if d > 0 {
		a.Advance(d)
	}
}
