package clock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2016, 5, 23, 0, 0, 0, 0, time.UTC)

func TestSimNowStartsAtEpoch(t *testing.T) {
	s := NewSim(epoch)
	if !s.Now().Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", s.Now(), epoch)
	}
}

func TestSimAdvanceMovesTime(t *testing.T) {
	s := NewSim(epoch)
	s.Advance(3 * time.Second)
	want := epoch.Add(3 * time.Second)
	if !s.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", s.Now(), want)
	}
}

func TestSimAdvanceToBackwardsIsNoop(t *testing.T) {
	s := NewSim(epoch)
	s.Advance(5 * time.Second)
	s.AdvanceTo(epoch) // earlier than now
	want := epoch.Add(5 * time.Second)
	if !s.Now().Equal(want) {
		t.Fatalf("Now() = %v after backwards AdvanceTo, want %v", s.Now(), want)
	}
}

func TestSimAfterFiresAtDeadline(t *testing.T) {
	s := NewSim(epoch)
	ch := s.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before any Advance")
	default:
	}
	s.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before its deadline")
	default:
	}
	s.Advance(time.Second)
	got := <-ch
	want := epoch.Add(10 * time.Second)
	if !got.Equal(want) {
		t.Fatalf("After delivered %v, want %v", got, want)
	}
}

func TestSimAfterNonPositiveFiresImmediately(t *testing.T) {
	s := NewSim(epoch)
	for _, d := range []time.Duration{0, -time.Second} {
		select {
		case got := <-s.After(d):
			if !got.Equal(epoch) {
				t.Fatalf("After(%v) delivered %v, want %v", d, got, epoch)
			}
		default:
			t.Fatalf("After(%v) did not fire immediately", d)
		}
	}
}

func TestSimSleepNonPositiveReturns(t *testing.T) {
	s := NewSim(epoch)
	done := make(chan struct{})
	go func() {
		s.Sleep(0)
		s.Sleep(-time.Minute)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep(<=0) blocked")
	}
}

func TestSimSleepWokenByAdvance(t *testing.T) {
	s := NewSim(epoch)
	done := make(chan time.Time, 1)
	go func() {
		s.Sleep(time.Minute)
		done <- s.Now()
	}()
	// Wait for the sleeper to register.
	for s.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	s.Advance(time.Minute)
	select {
	case got := <-done:
		want := epoch.Add(time.Minute)
		if !got.Equal(want) {
			t.Fatalf("sleeper woke at %v, want %v", got, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sleeper was not woken by Advance")
	}
}

func TestSimWaitersReleasedInDeadlineOrder(t *testing.T) {
	s := NewSim(epoch)
	var mu sync.Mutex
	var order []int

	var wg sync.WaitGroup
	delays := []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second}
	chans := make([]<-chan time.Time, len(delays))
	for i, d := range delays {
		chans[i] = s.After(d)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-chans[i]
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i)
	}
	// Release one at a time so the observed order is deterministic.
	for i := range delays {
		if !s.Step() {
			t.Fatal("Step() found no waiter")
		}
		// Wait until the released goroutine has recorded itself.
		deadline := time.Now().Add(2 * time.Second)
		for {
			mu.Lock()
			n := len(order)
			mu.Unlock()
			if n >= i+1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never recorded its wake-up", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()
	want := []int{1, 2, 0} // sorted by deadline: 10s, 20s, 30s
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	// Step releases in deadline order; goroutine scheduling may reorder the
	// appends only if two releases race, which Step prevents by design of the
	// test loop above. Verify the full order.
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimEqualDeadlinesFIFO(t *testing.T) {
	s := NewSim(epoch)
	const n = 8
	chans := make([]<-chan time.Time, n)
	for i := 0; i < n; i++ {
		chans[i] = s.After(5 * time.Second)
	}
	s.Advance(5 * time.Second)
	// All fired; FIFO is guaranteed by the seq tiebreak, observable through
	// heap pop order which fills the buffered channels in order. Since each
	// channel has its own buffer we can only verify each carries the right
	// timestamp.
	want := epoch.Add(5 * time.Second)
	for i, ch := range chans {
		select {
		case got := <-ch:
			if !got.Equal(want) {
				t.Fatalf("waiter %d woke at %v, want %v", i, got, want)
			}
		default:
			t.Fatalf("waiter %d was not released", i)
		}
	}
}

func TestSimStepOnEmpty(t *testing.T) {
	s := NewSim(epoch)
	if s.Step() {
		t.Fatal("Step() = true on empty clock")
	}
}

func TestSimPendingCounts(t *testing.T) {
	s := NewSim(epoch)
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending() = %d, want 0", got)
	}
	_ = s.After(time.Second)
	_ = s.After(2 * time.Second)
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending() = %d, want 2", got)
	}
	s.Advance(time.Second)
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() = %d after partial advance, want 1", got)
	}
}

func TestRealClockMonotonicEnough(t *testing.T) {
	c := NewReal()
	a := c.Now()
	c.Sleep(time.Millisecond)
	b := c.Now()
	if !b.After(a) {
		t.Fatalf("real clock did not move: %v then %v", a, b)
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("real After never fired")
	}
}

func TestElapsed(t *testing.T) {
	s := NewSim(epoch)
	start := s.Now()
	s.Advance(42 * time.Second)
	if got := Elapsed(s, start); got != 42*time.Second {
		t.Fatalf("Elapsed = %v, want 42s", got)
	}
}

// Property: advancing by a sequence of non-negative durations always yields
// now == start + sum(durations), regardless of how the advances are split.
func TestSimAdvanceAdditiveProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		s := NewSim(epoch)
		var total time.Duration
		for _, st := range steps {
			d := time.Duration(st) * time.Millisecond
			total += d
			s.Advance(d)
		}
		return s.Now().Equal(epoch.Add(total))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a waiter never observes a wake-up time earlier than its deadline.
func TestSimWakeupNotBeforeDeadlineProperty(t *testing.T) {
	f := func(delayMs []uint16, advMs uint16) bool {
		s := NewSim(epoch)
		type pair struct {
			deadline time.Time
			ch       <-chan time.Time
		}
		var ps []pair
		for _, d := range delayMs {
			dd := time.Duration(d) * time.Millisecond
			ps = append(ps, pair{epoch.Add(dd), s.After(dd)})
		}
		s.Advance(time.Duration(advMs) * time.Millisecond)
		for _, p := range ps {
			select {
			case got := <-p.ch:
				if got.Before(p.deadline) {
					return false
				}
			default:
				// Not yet fired: deadline must be in the future.
				if !p.deadline.After(s.Now()) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
