// Package procfs reads per-process resource counters from the Linux /proc
// filesystem: CPU time from /proc/<pid>/stat, memory from /proc/<pid>/status
// and storage I/O from /proc/<pid>/io.
//
// This is the real-mode counterpart of internal/proc: the paper's profiler
// reads exactly these files (plus perf-stat, which this reproduction
// substitutes by deriving cycle counts from CPU time and the machine's
// nominal clock — see DESIGN.md §2). All readers degrade gracefully:
// missing files or foreign platforms yield an error the watchers treat as
// "metric unavailable", matching the paper's observation that profiling
// requires system-level support (§8).
package procfs

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"synapse/internal/perfcount"
)

// ErrUnavailable indicates the requested /proc information cannot be read on
// this system (not Linux, no permissions, or the process exited).
var ErrUnavailable = errors.New("procfs: information unavailable")

// ticksPerSecond is the kernel's USER_HZ; 100 on every mainstream Linux.
const ticksPerSecond = 100

// Root is the proc mount point; variable so tests can point readers at a
// fixture tree.
var Root = "/proc"

// Stat holds the subset of /proc/<pid>/stat the profiler uses.
type Stat struct {
	UTime      time.Duration // user-mode CPU time
	STime      time.Duration // kernel-mode CPU time
	NumThreads int64
	RSSPages   int64
}

// CPUTime returns combined user+system CPU time.
func (s Stat) CPUTime() time.Duration { return s.UTime + s.STime }

// ReadStat parses /proc/<pid>/stat.
func ReadStat(pid int) (Stat, error) {
	data, err := os.ReadFile(fmt.Sprintf("%s/%d/stat", Root, pid))
	if err != nil {
		return Stat{}, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	return parseStat(string(data))
}

// parseStat handles the comm field, which may contain spaces and
// parentheses; fields are indexed after the closing paren.
func parseStat(s string) (Stat, error) {
	close := strings.LastIndexByte(s, ')')
	if close < 0 || close+2 > len(s) {
		return Stat{}, fmt.Errorf("%w: malformed stat line", ErrUnavailable)
	}
	fields := strings.Fields(s[close+2:])
	// Field numbering (1-based, man proc): utime=14, stime=15,
	// num_threads=20, rss=24. After stripping pid and comm, index
	// shifts by 3: utime at fields[11].
	if len(fields) < 22 {
		return Stat{}, fmt.Errorf("%w: stat line too short (%d fields)", ErrUnavailable, len(fields))
	}
	utime, err1 := strconv.ParseInt(fields[11], 10, 64)
	stime, err2 := strconv.ParseInt(fields[12], 10, 64)
	threads, err3 := strconv.ParseInt(fields[17], 10, 64)
	rss, err4 := strconv.ParseInt(fields[21], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		return Stat{}, fmt.Errorf("%w: malformed stat fields", ErrUnavailable)
	}
	tick := time.Second / ticksPerSecond
	return Stat{
		UTime:      time.Duration(utime) * tick,
		STime:      time.Duration(stime) * tick,
		NumThreads: threads,
		RSSPages:   rss,
	}, nil
}

// Status holds the memory figures from /proc/<pid>/status.
type Status struct {
	VmRSS  int64 // resident set size, bytes
	VmHWM  int64 // peak resident set size, bytes
	VmSize int64 // virtual size, bytes
}

// ReadStatus parses /proc/<pid>/status.
func ReadStatus(pid int) (Status, error) {
	data, err := os.ReadFile(fmt.Sprintf("%s/%d/status", Root, pid))
	if err != nil {
		return Status{}, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	return parseStatus(string(data))
}

func parseStatus(s string) (Status, error) {
	var st Status
	found := false
	for _, line := range strings.Split(s, "\n") {
		name, rest, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		var dst *int64
		switch name {
		case "VmRSS":
			dst = &st.VmRSS
		case "VmHWM":
			dst = &st.VmHWM
		case "VmSize":
			dst = &st.VmSize
		default:
			continue
		}
		fs := strings.Fields(rest)
		if len(fs) < 1 {
			continue
		}
		v, err := strconv.ParseInt(fs[0], 10, 64)
		if err != nil {
			continue
		}
		// Values are reported in kB.
		*dst = v << 10
		found = true
	}
	if !found {
		return Status{}, fmt.Errorf("%w: no Vm fields in status", ErrUnavailable)
	}
	return st, nil
}

// IO holds the storage counters from /proc/<pid>/io.
type IO struct {
	ReadBytes  int64 // bytes fetched from the storage layer
	WriteBytes int64 // bytes sent to the storage layer
	RChar      int64 // bytes read via syscalls (includes cache hits)
	WChar      int64 // bytes written via syscalls
	SyscR      int64 // read syscalls
	SyscW      int64 // write syscalls
}

// ReadIO parses /proc/<pid>/io (may need privileges for foreign processes).
func ReadIO(pid int) (IO, error) {
	data, err := os.ReadFile(fmt.Sprintf("%s/%d/io", Root, pid))
	if err != nil {
		return IO{}, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	return parseIO(string(data))
}

func parseIO(s string) (IO, error) {
	var io IO
	found := false
	for _, line := range strings.Split(s, "\n") {
		name, rest, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			continue
		}
		switch name {
		case "read_bytes":
			io.ReadBytes = v
		case "write_bytes":
			io.WriteBytes = v
		case "rchar":
			io.RChar = v
		case "wchar":
			io.WChar = v
		case "syscr":
			io.SyscR = v
		case "syscw":
			io.SyscW = v
		default:
			continue
		}
		found = true
	}
	if !found {
		return IO{}, fmt.Errorf("%w: no counters in io file", ErrUnavailable)
	}
	return io, nil
}

// Alive reports whether the process still has a /proc entry.
func Alive(pid int) bool {
	_, err := os.Stat(fmt.Sprintf("%s/%d", Root, pid))
	return err == nil
}

// Snapshot assembles a perfcount.Counters view of a live process. Cycle and
// instruction counts are *estimates* derived from CPU time and the supplied
// nominal clock rate and IPC — the substitution for perf-stat access
// documented in DESIGN.md §2. Unavailable sub-readers contribute zeros; the
// error reflects the first reader that failed entirely.
func Snapshot(pid int, clockHz, assumedIPC float64) (perfcount.Counters, error) {
	var c perfcount.Counters
	st, err := ReadStat(pid)
	if err != nil {
		return c, err
	}
	cpuSec := st.CPUTime().Seconds()
	c.Cycles = cpuSec * clockHz
	c.Instructions = c.Cycles * assumedIPC
	c.Threads = float64(st.NumThreads)
	c.Processes = 1

	if mem, err := ReadStatus(pid); err == nil {
		c.RSS = float64(mem.VmRSS)
		c.PeakRSS = float64(mem.VmHWM)
	} else {
		// Fall back to the stat RSS (pages of 4 kB).
		c.RSS = float64(st.RSSPages) * 4096
		c.PeakRSS = c.RSS
	}
	if io, err := ReadIO(pid); err == nil {
		// Prefer the syscall-level counters: they match what the
		// application requested, like the paper's emulation targets.
		c.ReadBytes = float64(io.RChar)
		c.WriteBytes = float64(io.WChar)
		c.ReadOps = float64(io.SyscR)
		c.WriteOps = float64(io.SyscW)
	}
	return c, nil
}
