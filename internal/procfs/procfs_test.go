package procfs

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

const statLine = `1234 ((some) prog with space) S 1 1234 1234 0 -1 4194560 12345 0 0 0 250 150 0 0 20 0 7 0 123456 223456789 1500 18446744073709551615 1 1 0 0 0 0 0 0 0 0 0 0 17 3 0 0 0 0 0`

func TestParseStat(t *testing.T) {
	st, err := parseStat(statLine)
	if err != nil {
		t.Fatal(err)
	}
	// utime=250 ticks = 2.5s, stime=150 ticks = 1.5s
	if st.UTime.Seconds() != 2.5 {
		t.Errorf("utime = %v, want 2.5s", st.UTime)
	}
	if st.STime.Seconds() != 1.5 {
		t.Errorf("stime = %v, want 1.5s", st.STime)
	}
	if st.CPUTime().Seconds() != 4.0 {
		t.Errorf("cputime = %v, want 4s", st.CPUTime())
	}
	if st.NumThreads != 7 {
		t.Errorf("threads = %d, want 7", st.NumThreads)
	}
	if st.RSSPages != 1500 {
		t.Errorf("rss pages = %d, want 1500", st.RSSPages)
	}
}

func TestParseStatMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"1234 (prog",
		"1234 (prog) S 1 2 3", // too few fields
		strings.Replace(statLine, " 250 ", " abc ", 1),
	} {
		if _, err := parseStat(bad); err == nil {
			t.Errorf("parseStat(%q) should fail", bad)
		}
	}
}

func TestParseStatus(t *testing.T) {
	status := "Name:\tprog\nVmSize:\t  200000 kB\nVmHWM:\t    6000 kB\nVmRSS:\t    4096 kB\nThreads:\t4\n"
	st, err := parseStatus(status)
	if err != nil {
		t.Fatal(err)
	}
	if st.VmRSS != 4096<<10 {
		t.Errorf("VmRSS = %d", st.VmRSS)
	}
	if st.VmHWM != 6000<<10 {
		t.Errorf("VmHWM = %d", st.VmHWM)
	}
	if st.VmSize != 200000<<10 {
		t.Errorf("VmSize = %d", st.VmSize)
	}
}

func TestParseStatusNoFields(t *testing.T) {
	if _, err := parseStatus("Name: x\nState: R\n"); err == nil {
		t.Error("status without Vm fields should fail")
	}
}

func TestParseIO(t *testing.T) {
	raw := "rchar: 100\nwchar: 200\nsyscr: 3\nsyscw: 4\nread_bytes: 500\nwrite_bytes: 600\ncancelled_write_bytes: 0\n"
	io, err := parseIO(raw)
	if err != nil {
		t.Fatal(err)
	}
	if io.RChar != 100 || io.WChar != 200 || io.SyscR != 3 || io.SyscW != 4 {
		t.Errorf("io = %+v", io)
	}
	if io.ReadBytes != 500 || io.WriteBytes != 600 {
		t.Errorf("io bytes = %+v", io)
	}
}

func TestParseIOGarbage(t *testing.T) {
	if _, err := parseIO("hello world"); err == nil {
		t.Error("garbage io file should fail")
	}
}

// fixture builds a fake /proc tree for ReadStat/ReadStatus/ReadIO.
func fixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	pidDir := filepath.Join(dir, "42")
	if err := os.MkdirAll(pidDir, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"stat":   statLine,
		"status": "VmRSS:\t1024 kB\nVmHWM:\t2048 kB\n",
		"io":     "rchar: 10\nwchar: 20\nsyscr: 1\nsyscw: 2\nread_bytes: 30\nwrite_bytes: 40\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(pidDir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func withRoot(t *testing.T, root string) {
	t.Helper()
	old := Root
	Root = root
	t.Cleanup(func() { Root = old })
}

func TestReadersAgainstFixture(t *testing.T) {
	withRoot(t, fixture(t))

	st, err := ReadStat(42)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumThreads != 7 {
		t.Errorf("threads = %d", st.NumThreads)
	}
	mem, err := ReadStatus(42)
	if err != nil {
		t.Fatal(err)
	}
	if mem.VmRSS != 1024<<10 {
		t.Errorf("VmRSS = %d", mem.VmRSS)
	}
	io, err := ReadIO(42)
	if err != nil {
		t.Fatal(err)
	}
	if io.WChar != 20 {
		t.Errorf("wchar = %d", io.WChar)
	}
	if !Alive(42) {
		t.Error("fixture process should be alive")
	}
	if Alive(43) {
		t.Error("absent pid should not be alive")
	}
}

func TestReadersUnavailable(t *testing.T) {
	withRoot(t, t.TempDir())
	if _, err := ReadStat(1); !errors.Is(err, ErrUnavailable) {
		t.Errorf("ReadStat = %v, want ErrUnavailable", err)
	}
	if _, err := ReadStatus(1); !errors.Is(err, ErrUnavailable) {
		t.Errorf("ReadStatus = %v, want ErrUnavailable", err)
	}
	if _, err := ReadIO(1); !errors.Is(err, ErrUnavailable) {
		t.Errorf("ReadIO = %v, want ErrUnavailable", err)
	}
}

func TestSnapshotFixture(t *testing.T) {
	withRoot(t, fixture(t))
	c, err := Snapshot(42, 2.0e9, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// 4 CPU seconds at 2 GHz.
	if c.Cycles != 8e9 {
		t.Errorf("cycles = %v, want 8e9", c.Cycles)
	}
	if c.Instructions != 12e9 {
		t.Errorf("instructions = %v, want 12e9", c.Instructions)
	}
	if c.RSS != float64(1024<<10) || c.PeakRSS != float64(2048<<10) {
		t.Errorf("memory = rss %v peak %v", c.RSS, c.PeakRSS)
	}
	if c.ReadBytes != 10 || c.WriteBytes != 20 {
		t.Errorf("io = %v/%v", c.ReadBytes, c.WriteBytes)
	}
	if c.Threads != 7 {
		t.Errorf("threads = %v", c.Threads)
	}
}

func TestSnapshotMissingProcess(t *testing.T) {
	withRoot(t, t.TempDir())
	if _, err := Snapshot(12345, 1e9, 1); !errors.Is(err, ErrUnavailable) {
		t.Errorf("Snapshot = %v, want ErrUnavailable", err)
	}
}

// On Linux the readers must work against the live /proc for our own process.
func TestLiveSelfProcess(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("live /proc only on linux")
	}
	if _, err := os.Stat("/proc/self/stat"); err != nil {
		t.Skip("/proc not mounted")
	}
	pid := os.Getpid()
	st, err := ReadStat(pid)
	if err != nil {
		t.Fatalf("ReadStat(self): %v", err)
	}
	if st.NumThreads < 1 {
		t.Errorf("threads = %d", st.NumThreads)
	}
	mem, err := ReadStatus(pid)
	if err != nil {
		t.Fatalf("ReadStatus(self): %v", err)
	}
	if mem.VmRSS <= 0 {
		t.Errorf("VmRSS = %d, want > 0", mem.VmRSS)
	}
	c, err := Snapshot(pid, 2.5e9, 2.0)
	if err != nil {
		t.Fatalf("Snapshot(self): %v", err)
	}
	if c.RSS <= 0 {
		t.Errorf("snapshot rss = %v", c.RSS)
	}
	if !Alive(pid) {
		t.Error("self should be alive")
	}
}
