package watcher

import (
	"context"
	"fmt"
	"time"

	"synapse/internal/clock"
	"synapse/internal/machine"
	"synapse/internal/perfcount"
	"synapse/internal/profile"
)

// Profiler drives a set of watchers over a target at a sampling rate and
// assembles the resulting profile. It is the paper's "main Synapse profiling
// loop" (§4.1).
type Profiler struct {
	// Watchers to run; Default() when nil.
	Watchers []Watcher
	// Rate is the sampling rate in Hz, clamped to MaxRate. Zero selects
	// 1 Hz.
	Rate float64
	// Schedule optionally overrides Rate per elapsed time, enabling the
	// adaptive scheme of paper §6 (high rate during startup, lower
	// after). The returned rate is clamped like Rate.
	Schedule func(elapsed time.Duration) float64
	// Clock paces the loop; a clock.AutoSim makes simulated profiling
	// instantaneous. Defaults to the real clock.
	Clock clock.Clock
	// Machine describes the profiled resource (required).
	Machine *machine.Model
	// StartupDelay is when the first sample is taken.
	StartupDelay time.Duration
}

// AdaptiveSchedule returns a Schedule implementing paper §6's proposal:
// sample at high Hz until switchAfter has elapsed (capturing application
// startup), then at low Hz.
func AdaptiveSchedule(high, low float64, switchAfter time.Duration) func(time.Duration) float64 {
	return func(elapsed time.Duration) float64 {
		if elapsed < switchAfter {
			return high
		}
		return low
	}
}

// clampRate enforces the profiler's rate bounds.
func clampRate(r float64) float64 {
	if r <= 0 {
		return 1
	}
	if r > MaxRate {
		return MaxRate
	}
	return r
}

// Run profiles the target until it exits (or ctx is cancelled) and returns
// the finished profile.
func (pr *Profiler) Run(ctx context.Context, tgt Target) (*profile.Profile, error) {
	if pr.Machine == nil {
		return nil, fmt.Errorf("watcher: profiler needs a machine model")
	}
	watchers := pr.Watchers
	if watchers == nil {
		watchers = Default()
	}
	rate := clampRate(pr.Rate)
	clk := pr.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	startDelay := pr.StartupDelay
	if startDelay <= 0 {
		startDelay = DefaultStartupDelay
	}

	cfg := &Config{Machine: pr.Machine, Rate: rate}
	for _, w := range watchers {
		if err := w.Pre(cfg); err != nil {
			return nil, fmt.Errorf("watcher %s: pre: %w", w.Name(), err)
		}
	}

	p := profile.New(tgt.Command(), tgt.Tags())
	p.Machine = pr.Machine.Name
	p.App = tgt.AppName()
	p.SampleRate = rate
	p.CreatedAt = clk.Now()

	start := clk.Now()
	elapsed := func() time.Duration { return clk.Now().Sub(start) }

	var prev, cur perfcount.Counters
	sample := func(at time.Duration) error {
		c, ok := tgt.Counters(at)
		if !ok {
			return nil
		}
		cur = c
		d := cur.Sub(prev)
		values := make(map[string]float64, 16)
		for _, w := range watchers {
			w.Collect(d, cur, values)
		}
		prev = cur
		return p.Append(profile.Sample{T: at, Values: values})
	}

	// First sample shortly after spawn (paper: ≈0.005 s).
	clk.Sleep(startDelay)
	if !tgt.Exited(elapsed()) {
		if err := sample(elapsed()); err != nil {
			return nil, err
		}
	}

	// Periodic samples on period boundaries. The sampling rate may change
	// between samples under an adaptive schedule, never exceeding MaxRate.
	next := start.Add(periodAt(pr.Schedule, rate, elapsed()))
	for !tgt.Exited(elapsed()) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		if wait := next.Sub(clk.Now()); wait > 0 {
			clk.Sleep(wait)
		}
		at := elapsed()
		if tgt.Exited(at) {
			break
		}
		if err := sample(at); err != nil {
			return nil, err
		}
		next = next.Add(periodAt(pr.Schedule, rate, at))
	}

	// The process has exited. Tx comes from the wrapper around the whole
	// process (the paper uses time -v), not from sampling granularity.
	tx, ok := tgt.Tx(elapsed())
	if !ok {
		tx = elapsed()
	}

	// End-of-run correction: sources with exit totals (perf-stat, rusage)
	// contribute the residual consumption since the last sample.
	if final, ok := tgt.Final(elapsed()); ok {
		d := final.Sub(prev)
		values := make(map[string]float64, 16)
		for _, w := range watchers {
			if w.CorrectsAtExit() {
				w.Collect(d, final, values)
			}
		}
		if len(values) > 0 {
			at := tx
			if n := len(p.Samples); n > 0 && p.Samples[n-1].T > at {
				at = p.Samples[n-1].T
			}
			if err := p.Append(profile.Sample{T: at, Values: values}); err != nil {
				return nil, err
			}
		}
	}

	for _, w := range watchers {
		if err := w.Post(); err != nil {
			return nil, fmt.Errorf("watcher %s: post: %w", w.Name(), err)
		}
	}

	p.Finalize(tx)

	final, hasFinal := tgt.Final(elapsed())
	for _, w := range watchers {
		if err := w.Finalize(p, final, hasFinal); err != nil {
			return nil, fmt.Errorf("watcher %s: finalize: %w", w.Name(), err)
		}
	}
	return p, nil
}

// periodAt evaluates the effective sampling period at the given elapsed
// time.
func periodAt(schedule func(time.Duration) float64, base float64, elapsed time.Duration) time.Duration {
	r := base
	if schedule != nil {
		r = clampRate(schedule(elapsed))
	}
	return time.Duration(float64(time.Second) / r)
}
