package watcher

import (
	"context"
	"math"
	"testing"
	"time"

	"synapse/internal/app"
	"synapse/internal/clock"
	"synapse/internal/machine"
	"synapse/internal/proc"
	"synapse/internal/profile"
)

var t0 = time.Date(2016, 5, 23, 0, 0, 0, 0, time.UTC)

// profileSim profiles an MDSim run on the named machine at the given rate,
// entirely in simulation.
func profileSim(t *testing.T, steps int, machineName string, rate float64, opts proc.Options) *profile.Profile {
	t.Helper()
	m := machine.MustGet(machineName)
	sp, err := proc.Execute(app.MDSim(steps), m, opts)
	if err != nil {
		t.Fatal(err)
	}
	pr := &Profiler{
		Rate:    rate,
		Clock:   clock.NewAutoSim(t0),
		Machine: m,
	}
	p, err := pr.Run(context.Background(), NewSimTarget(sp))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("profile invalid: %v", err)
	}
	return p
}

func TestProfileCapturesTotalsExactly(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	w := app.MDSim(100_000)
	sp, _ := proc.Execute(w, m, proc.Options{})
	want := sp.Final()

	for _, rate := range []float64{0.1, 1, 10} {
		p := profileSim(t, 100_000, machine.Thinkie, rate, proc.Options{})
		// CPU totals are exact at every sampling rate thanks to the
		// end-of-run correction (perf-stat semantics) — paper Fig 6 top.
		if got := p.Total(profile.MetricCPUCycles); math.Abs(got-want.Cycles) > 1e-6*want.Cycles {
			t.Errorf("rate %v: cycles = %v, want %v", rate, got, want.Cycles)
		}
		if got := p.Total(profile.MetricIOWriteBytes); math.Abs(got-want.WriteBytes) > 1e-6 {
			t.Errorf("rate %v: write bytes = %v, want %v", rate, got, want.WriteBytes)
		}
		if got := p.Total(profile.MetricIOReadBytes); math.Abs(got-want.ReadBytes) > 1e-6 {
			t.Errorf("rate %v: read bytes = %v, want %v", rate, got, want.ReadBytes)
		}
	}
}

func TestProfileTxMatchesProcess(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	sp, _ := proc.Execute(app.MDSim(50_000), m, proc.Options{})
	p := profileSim(t, 50_000, machine.Thinkie, 2, proc.Options{})
	if p.Duration != sp.Duration() {
		t.Errorf("profile Tx = %v, process Tx = %v", p.Duration, sp.Duration())
	}
}

func TestSampleCountTracksRate(t *testing.T) {
	p1 := profileSim(t, 200_000, machine.Thinkie, 1, proc.Options{})
	p10 := profileSim(t, 200_000, machine.Thinkie, 10, proc.Options{})
	// Tx ≈ 11 s → about 11 samples at 1 Hz, 110 at 10 Hz (plus startup
	// and correction samples).
	if len(p10.Samples) < 5*len(p1.Samples) {
		t.Errorf("10 Hz should give ~10x samples: %d vs %d", len(p10.Samples), len(p1.Samples))
	}
	tx := p1.Duration.Seconds()
	want1 := tx * 1
	if math.Abs(float64(len(p1.Samples))-want1) > want1/2+3 {
		t.Errorf("1 Hz sample count = %d for Tx %.1fs", len(p1.Samples), tx)
	}
}

// Fig 6 bottom: at rates that allow only one sample during the run, the
// sampled resident memory underestimates; at high rates it approaches the
// true peak.
func TestMemoryUnderestimatedAtLowRates(t *testing.T) {
	const steps = 10_000 // Tx ≈ 0.85s on thinkie
	low := profileSim(t, steps, machine.Thinkie, 0.1, proc.Options{})
	high := profileSim(t, steps, machine.Thinkie, 10, proc.Options{})

	lowRSS := low.Total(profile.MetricMemRSS)
	highRSS := high.Total(profile.MetricMemRSS)
	if lowRSS >= highRSS {
		t.Errorf("low-rate RSS (%v) should underestimate high-rate RSS (%v)", lowRSS, highRSS)
	}
	if lowRSS > app.MDSimRSSBase*1.5 {
		t.Errorf("low-rate RSS = %v, want near base %v", lowRSS, app.MDSimRSSBase)
	}
	// The rusage-derived peak is exact regardless of rate.
	if got := low.Total(profile.MetricMemPeak); math.Abs(got-app.MDSimRSSPeak) > 1 {
		t.Errorf("mem.peak = %v, want exact %v even at 0.1 Hz", got, app.MDSimRSSPeak)
	}
}

func TestSystemInfoRecorded(t *testing.T) {
	p := profileSim(t, 10_000, machine.Supermic, 1, proc.Options{})
	m := machine.MustGet(machine.Supermic)
	if got := p.System[profile.MetricSysCores]; got != float64(m.Cores) {
		t.Errorf("sys.cores = %v, want %v", got, m.Cores)
	}
	if got := p.System[profile.MetricSysClockHz]; got != m.ClockHz {
		t.Errorf("sys.clock_hz = %v, want %v", got, m.ClockHz)
	}
	if got := p.System[profile.MetricSysMemTotal]; got != float64(m.MemBytes) {
		t.Errorf("sys.mem_total = %v", got)
	}
}

func TestDerivedBlockSizes(t *testing.T) {
	p := profileSim(t, 100_000, machine.Thinkie, 1, proc.Options{})
	// MDSim writes 4096-byte trajectory frames.
	if got := p.Total(profile.MetricIOWriteBlock); math.Abs(got-app.MDSimWriteBlock) > 64 {
		t.Errorf("derived write block = %v, want ≈%v", got, app.MDSimWriteBlock)
	}
}

func TestRateClamping(t *testing.T) {
	// 100 Hz must clamp to 10 Hz (perf-stat limit).
	p := profileSim(t, 100_000, machine.Thinkie, 100, proc.Options{})
	if p.SampleRate != MaxRate {
		t.Errorf("rate = %v, want clamped to %v", p.SampleRate, MaxRate)
	}
	// Zero rate defaults to 1 Hz.
	p = profileSim(t, 100_000, machine.Thinkie, 0, proc.Options{})
	if p.SampleRate != 1 {
		t.Errorf("zero rate = %v, want 1", p.SampleRate)
	}
}

func TestAdaptiveSchedule(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	sp, _ := proc.Execute(app.MDSim(200_000), m, proc.Options{}) // Tx ≈ 11 s
	pr := &Profiler{
		Rate:     10,
		Schedule: AdaptiveSchedule(10, 0.5, 2*time.Second),
		Clock:    clock.NewAutoSim(t0),
		Machine:  m,
	}
	p, err := pr.Run(context.Background(), NewSimTarget(sp))
	if err != nil {
		t.Fatal(err)
	}
	// Early interval (first 2 s) should carry ~20 samples; the remaining
	// ~9 s only ~5.
	early, late := 0, 0
	for _, s := range p.Samples {
		if s.T <= 2*time.Second {
			early++
		} else {
			late++
		}
	}
	if early < 15 {
		t.Errorf("adaptive: early samples = %d, want ≈20", early)
	}
	if late > early {
		t.Errorf("adaptive: late samples = %d should be sparse (early %d)", late, early)
	}
	// Totals must still be exact.
	if got, want := p.Total(profile.MetricCPUCycles), sp.Final().Cycles; math.Abs(got-want) > 1e-6*want {
		t.Errorf("adaptive: cycles = %v, want %v", got, want)
	}
}

func TestShortRunStillProfiled(t *testing.T) {
	// A run shorter than the sampling period must still produce a valid
	// profile with exact CPU totals (startup sample + correction).
	m := machine.MustGet(machine.Thinkie)
	sp, _ := proc.Execute(app.MDSim(1000), m, proc.Options{}) // Tx ≈ 0.4 s
	pr := &Profiler{Rate: 0.1, Clock: clock.NewAutoSim(t0), Machine: m}
	p, err := pr.Run(context.Background(), NewSimTarget(sp))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Samples) == 0 {
		t.Fatal("no samples for short run")
	}
	if got, want := p.Total(profile.MetricCPUCycles), sp.Final().Cycles; math.Abs(got-want) > 1e-6*want {
		t.Errorf("cycles = %v, want %v", got, want)
	}
}

func TestProfilerRequiresMachine(t *testing.T) {
	pr := &Profiler{Rate: 1, Clock: clock.NewAutoSim(t0)}
	m := machine.MustGet(machine.Thinkie)
	sp, _ := proc.Execute(app.MDSim(10), m, proc.Options{})
	if _, err := pr.Run(context.Background(), NewSimTarget(sp)); err == nil {
		t.Error("profiler without machine should fail")
	}
}

func TestContextCancellation(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	sp, _ := proc.Execute(app.MDSim(10_000_000), m, proc.Options{}) // long run
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pr := &Profiler{Rate: 10, Clock: clock.NewAutoSim(t0), Machine: m}
	if _, err := pr.Run(ctx, NewSimTarget(sp)); err == nil {
		t.Error("cancelled context should abort profiling")
	}
}

func TestProfileKeyIdentity(t *testing.T) {
	p := profileSim(t, 5000, machine.Thinkie, 1, proc.Options{})
	if p.Command != "mdsim" || p.Tags["steps"] != "5000" {
		t.Errorf("identity = %q %v", p.Command, p.Tags)
	}
	if p.App != machine.AppMDSim {
		t.Errorf("app = %q", p.App)
	}
	if p.Machine != machine.Thinkie {
		t.Errorf("machine = %q", p.Machine)
	}
}

func TestSimTargetVisibilitySemantics(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	sp, _ := proc.Execute(app.MDSim(10_000), m, proc.Options{})
	tgt := NewSimTarget(sp)

	if _, ok := tgt.Counters(0); !ok {
		t.Error("counters should be readable while running")
	}
	if _, ok := tgt.Final(0); ok {
		t.Error("finals should not be readable while running")
	}
	end := sp.Duration()
	if _, ok := tgt.Counters(end); ok {
		t.Error("counters should be unreadable after exit")
	}
	if _, ok := tgt.Final(end); !ok {
		t.Error("finals should be readable after exit")
	}
	if tx, ok := tgt.Tx(end); !ok || tx != sp.Duration() {
		t.Errorf("Tx = %v,%v", tx, ok)
	}
}

func TestWatcherNames(t *testing.T) {
	names := map[string]bool{}
	for _, w := range Default() {
		names[w.Name()] = true
	}
	for _, want := range []string{"sys", "cpu", "mem", "io", "net"} {
		if !names[want] {
			t.Errorf("default watcher set missing %q", want)
		}
	}
}

// Profiling with jittered processes: totals vary across seeds but stay
// consistent (paper Fig 6 top: error bars exist but are small).
func TestProfilingConsistencyUnderNoise(t *testing.T) {
	var cycles []float64
	for seed := uint64(0); seed < 5; seed++ {
		p := profileSim(t, 100_000, machine.Thinkie, 1,
			proc.Options{Seed: seed, Jitter: true, CounterNoise: 0.001})
		cycles = append(cycles, p.Total(profile.MetricCPUCycles))
	}
	mean := 0.0
	for _, c := range cycles {
		mean += c
	}
	mean /= float64(len(cycles))
	for _, c := range cycles {
		if math.Abs(c-mean)/mean > 0.02 {
			t.Errorf("cycles %v deviates more than 2%% from mean %v", c, mean)
		}
	}
}
