// Package watcher implements Synapse's profiling module: pluggable watchers
// that observe one resource type each, and the sampling loop that drives
// them (paper §3.3, §4.1).
//
// A Watcher mirrors the paper's plugin structure (pre_process, sample,
// post_process, finalize). Watchers are driven at a uniform, configurable
// sampling rate with an upper bound of 10 Hz — the paper's perf-stat limit —
// and receive cumulative counter snapshots from a Target, which is either a
// simulated process (internal/proc) or a real one (/proc via
// internal/procfs).
package watcher

import (
	"fmt"
	"time"

	"synapse/internal/machine"
	"synapse/internal/perfcount"
	"synapse/internal/profile"
)

// MaxRate is the highest supported sampling rate in Hz; it coincides with
// the sampling limit of perf-stat (paper §4.1). There is no lower bound.
const MaxRate = 10.0

// DefaultStartupDelay is when the first watcher sample is collected after
// process spawn; the paper reports ≈0.005 s.
const DefaultStartupDelay = 5 * time.Millisecond

// Config is handed to every watcher's Pre hook.
type Config struct {
	// Machine describes the resource the profiled process runs on.
	Machine *machine.Model
	// Rate is the configured sampling rate in Hz (after clamping).
	Rate float64
}

// Target is the process being profiled, viewed as a source of cumulative
// resource counters.
type Target interface {
	// Command and Tags identify the profile in the store.
	Command() string
	Tags() map[string]string
	// AppName hints which application model produced the process ("" for
	// real processes).
	AppName() string

	// Counters returns the cumulative counters at offset t since spawn.
	// ok is false once the process has exited (its /proc entry is gone).
	Counters(t time.Duration) (c perfcount.Counters, ok bool)
	// Exited reports whether the process has exited by offset t.
	Exited(t time.Duration) bool
	// Final returns the exit-time totals (perf-stat / rusage semantics)
	// once the process has exited.
	Final(t time.Duration) (c perfcount.Counters, ok bool)
	// Tx returns the process' exact execution time once exited.
	Tx(t time.Duration) (time.Duration, bool)
}

// Watcher is one profiling plugin. Implementations own a disjoint set of
// metrics; Collect writes those metrics for one sampling interval.
type Watcher interface {
	// Name identifies the plugin ("cpu", "mem", ...).
	Name() string
	// Pre sets up the watcher before sampling starts.
	Pre(cfg *Config) error
	// Collect writes the watcher's metrics into out, given the counter
	// delta d over the interval and the cumulative counters c at its end.
	Collect(d, c perfcount.Counters, out map[string]float64)
	// CorrectsAtExit reports whether the watcher's source provides exit
	// totals that should flow into the end-of-run correction sample.
	// perf-stat and rusage do; /proc gauges (memory) do not — the /proc
	// entry disappears with the process, which is exactly why low
	// sampling rates underestimate resident memory (paper Fig 6 bottom).
	CorrectsAtExit() bool
	// Post tears down after sampling stops.
	Post() error
	// Finalize adjusts the finished profile using exit-time information
	// (e.g. rusage peak RSS).
	Finalize(p *profile.Profile, final perfcount.Counters, hasFinal bool) error
}

// CPU watches the compute counters (the paper's perf-stat watcher).
type CPU struct{}

// Name implements Watcher.
func (CPU) Name() string { return "cpu" }

// Pre implements Watcher.
func (CPU) Pre(*Config) error { return nil }

// Collect implements Watcher.
func (CPU) Collect(d, c perfcount.Counters, out map[string]float64) {
	out[profile.MetricCPUCycles] = d.Cycles
	out[profile.MetricCPUInstructions] = d.Instructions
	out[profile.MetricCPUStalledFront] = d.StalledFront
	out[profile.MetricCPUStalledBack] = d.StalledBack
	out[profile.MetricCPUFLOPs] = d.FLOPs
	out[profile.MetricCPUThreads] = c.Threads
}

// CorrectsAtExit implements Watcher: perf-stat reports totals at exit.
func (CPU) CorrectsAtExit() bool { return true }

// Post implements Watcher.
func (CPU) Post() error { return nil }

// Finalize implements Watcher.
func (CPU) Finalize(p *profile.Profile, final perfcount.Counters, hasFinal bool) error {
	if hasFinal {
		// Thread count is a whole-run property.
		p.Totals[profile.MetricCPUThreads] = final.Threads
	}
	return nil
}

// Mem watches resident memory through /proc (gauge) and memory traffic
// (alloc/free counters).
type Mem struct{}

// Name implements Watcher.
func (Mem) Name() string { return "mem" }

// Pre implements Watcher.
func (Mem) Pre(*Config) error { return nil }

// Collect implements Watcher.
func (Mem) Collect(d, c perfcount.Counters, out map[string]float64) {
	out[profile.MetricMemRSS] = c.RSS
	out[profile.MetricMemAlloc] = d.AllocBytes
	out[profile.MetricMemFree] = d.FreeBytes
}

// CorrectsAtExit implements Watcher: /proc is gone once the process exits,
// so no correction sample is possible for the RSS gauge. Allocation counters
// are corrected through rusage-equivalent totals in Finalize instead.
func (Mem) CorrectsAtExit() bool { return false }

// Post implements Watcher.
func (Mem) Post() error { return nil }

// Finalize implements Watcher: rusage's high-water mark gives the exact peak
// even when sampling missed it.
func (Mem) Finalize(p *profile.Profile, final perfcount.Counters, hasFinal bool) error {
	if hasFinal {
		p.Totals[profile.MetricMemPeak] = final.PeakRSS
	} else if rss := p.Totals[profile.MetricMemRSS]; rss > 0 {
		p.Totals[profile.MetricMemPeak] = rss
	}
	return nil
}

// IO watches storage traffic (the paper's /proc + rusage watcher).
type IO struct{}

// Name implements Watcher.
func (IO) Name() string { return "io" }

// Pre implements Watcher.
func (IO) Pre(*Config) error { return nil }

// Collect implements Watcher.
func (IO) Collect(d, c perfcount.Counters, out map[string]float64) {
	out[profile.MetricIOReadBytes] = d.ReadBytes
	out[profile.MetricIOWriteBytes] = d.WriteBytes
	out[profile.MetricIOReadOps] = d.ReadOps
	out[profile.MetricIOWriteOps] = d.WriteOps
}

// CorrectsAtExit implements Watcher: rusage block counts exist at exit.
func (IO) CorrectsAtExit() bool { return true }

// Post implements Watcher.
func (IO) Post() error { return nil }

// Finalize implements Watcher: derive average observed block sizes — the
// blktrace-inspired extension of paper §6 (experimental watcher plugin).
func (IO) Finalize(p *profile.Profile, final perfcount.Counters, hasFinal bool) error {
	rb, ro := p.Totals[profile.MetricIOReadBytes], p.Totals[profile.MetricIOReadOps]
	if ro > 0 {
		p.Totals[profile.MetricIOReadBlock] = rb / ro
	}
	wb, wo := p.Totals[profile.MetricIOWriteBytes], p.Totals[profile.MetricIOWriteOps]
	if wo > 0 {
		p.Totals[profile.MetricIOWriteBlock] = wb / wo
	}
	return nil
}

// Net watches network traffic. Profiling support is "planned" in the paper
// (Table 1); the simulated substrate provides the counters, so this plugin
// exists and degrades to zeros on real processes.
type Net struct{}

// Name implements Watcher.
func (Net) Name() string { return "net" }

// Pre implements Watcher.
func (Net) Pre(*Config) error { return nil }

// Collect implements Watcher.
func (Net) Collect(d, c perfcount.Counters, out map[string]float64) {
	out[profile.MetricNetReadBytes] = d.NetReadBytes
	out[profile.MetricNetWriteBytes] = d.NetWriteBytes
}

// CorrectsAtExit implements Watcher.
func (Net) CorrectsAtExit() bool { return true }

// Post implements Watcher.
func (Net) Post() error { return nil }

// Finalize implements Watcher.
func (Net) Finalize(*profile.Profile, perfcount.Counters, bool) error { return nil }

// Sys records system information (paper Table 1, System rows). It samples
// nothing; its work happens in Pre/Finalize.
type Sys struct {
	cfg *Config
}

// Name implements Watcher.
func (s *Sys) Name() string { return "sys" }

// Pre implements Watcher.
func (s *Sys) Pre(cfg *Config) error {
	if cfg == nil || cfg.Machine == nil {
		return fmt.Errorf("watcher: sys requires a machine model")
	}
	s.cfg = cfg
	return nil
}

// Collect implements Watcher.
func (s *Sys) Collect(d, c perfcount.Counters, out map[string]float64) {}

// CorrectsAtExit implements Watcher.
func (s *Sys) CorrectsAtExit() bool { return false }

// Post implements Watcher.
func (s *Sys) Post() error { return nil }

// Finalize implements Watcher.
func (s *Sys) Finalize(p *profile.Profile, final perfcount.Counters, hasFinal bool) error {
	m := s.cfg.Machine
	p.System[profile.MetricSysCores] = float64(m.Cores)
	p.System[profile.MetricSysClockHz] = m.ClockHz
	p.System[profile.MetricSysMemTotal] = float64(m.MemBytes)
	return nil
}

// Default returns the standard watcher set: system info, CPU, memory,
// storage and network.
func Default() []Watcher {
	return []Watcher{&Sys{}, CPU{}, Mem{}, IO{}, Net{}}
}
