package watcher

import (
	"context"
	"math"
	"testing"
	"time"

	"synapse/internal/app"
	"synapse/internal/clock"
	"synapse/internal/machine"
	"synapse/internal/proc"
	"synapse/internal/profile"
)

// TestConcurrentProfilingRealClock replays a short simulated process in real
// time with one goroutine per watcher — the paper's threading model.
func TestConcurrentProfilingRealClock(t *testing.T) {
	if testing.Short() {
		t.Skip("real-clock test (~1s)")
	}
	m := machine.MustGet(machine.Thinkie)
	sp, err := proc.Execute(app.MDSim(10_000), m, proc.Options{}) // Tx ≈ 0.85s
	if err != nil {
		t.Fatal(err)
	}
	pr := &Profiler{
		Rate:    10,
		Clock:   clock.NewReal(),
		Machine: m,
	}
	p, err := pr.RunConcurrent(context.Background(), NewSimTarget(sp))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("concurrent profile invalid: %v", err)
	}
	// CPU totals remain exact through the exit correction.
	want := sp.Final().Cycles
	if got := p.Total(profile.MetricCPUCycles); math.Abs(got-want) > 1e-6*want {
		t.Errorf("cycles = %v, want %v", got, want)
	}
	// Multiple watchers produced interleaved samples with drifting
	// timestamps: sample count should exceed a single-loop run's.
	if len(p.Samples) < 8 {
		t.Errorf("expected interleaved samples from concurrent watchers, got %d", len(p.Samples))
	}
	// Timestamps must be non-decreasing after the merge.
	var prev time.Duration = -1
	for i, s := range p.Samples {
		if s.T < prev {
			t.Fatalf("sample %d out of order after merge", i)
		}
		prev = s.T
	}
}

func TestConcurrentProfilingCancellation(t *testing.T) {
	m := machine.MustGet(machine.Thinkie)
	sp, _ := proc.Execute(app.MDSim(10_000_000), m, proc.Options{}) // long
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pr := &Profiler{Rate: 10, Clock: clock.NewReal(), Machine: m}
	if _, err := pr.RunConcurrent(ctx, NewSimTarget(sp)); err == nil {
		t.Error("cancelled context should abort concurrent profiling")
	}
}

func TestConcurrentProfilingRequiresMachine(t *testing.T) {
	pr := &Profiler{Rate: 1}
	m := machine.MustGet(machine.Thinkie)
	sp, _ := proc.Execute(app.MDSim(10), m, proc.Options{})
	if _, err := pr.RunConcurrent(context.Background(), NewSimTarget(sp)); err == nil {
		t.Error("missing machine should fail")
	}
}
