package watcher

import (
	"time"

	"synapse/internal/perfcount"
	"synapse/internal/proc"
)

// SimTarget adapts a simulated process (internal/proc) to the Target
// interface, with the visibility semantics of a real OS process: counters
// are readable only while the process runs; exit-time totals are readable
// afterwards.
type SimTarget struct {
	p *proc.SimProcess
}

// NewSimTarget wraps a simulated process.
func NewSimTarget(p *proc.SimProcess) *SimTarget { return &SimTarget{p: p} }

// Command implements Target.
func (s *SimTarget) Command() string { return s.p.Workload().Command }

// Tags implements Target.
func (s *SimTarget) Tags() map[string]string { return s.p.Workload().Tags }

// AppName implements Target.
func (s *SimTarget) AppName() string { return s.p.Workload().App }

// Counters implements Target: a process that has exited has no /proc entry
// left to sample.
func (s *SimTarget) Counters(t time.Duration) (perfcount.Counters, bool) {
	if s.p.Done(t) {
		return perfcount.Counters{}, false
	}
	return s.p.CountersAt(t), true
}

// Exited implements Target.
func (s *SimTarget) Exited(t time.Duration) bool { return s.p.Done(t) }

// Final implements Target.
func (s *SimTarget) Final(t time.Duration) (perfcount.Counters, bool) {
	if !s.p.Done(t) {
		return perfcount.Counters{}, false
	}
	return s.p.Final(), true
}

// Tx implements Target.
func (s *SimTarget) Tx(t time.Duration) (time.Duration, bool) {
	if !s.p.Done(t) {
		return 0, false
	}
	return s.p.Duration(), true
}

var _ Target = (*SimTarget)(nil)
