package watcher

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"synapse/internal/clock"
	"synapse/internal/perfcount"
	"synapse/internal/profile"
)

// RunConcurrent profiles the target with one goroutine per watcher — the
// paper's threading model (§4.1: "Each watcher plugin runs in its own
// thread", and "the timestamps of the different watchers are not
// synchronized, and can drift relative to each other"). Each watcher samples
// on its own schedule against its own previous snapshot; the per-watcher
// time series are merged into one profile, ordered by timestamp, during
// post-processing — mirroring the paper's "individual time series are
// combined during postprocessing".
//
// RunConcurrent is meant for real-clock runs (real targets, or simulated
// targets replayed in real time); with an auto-advancing simulated clock the
// goroutines would race the timeline, so Run is the right entry point for
// simulation.
func (pr *Profiler) RunConcurrent(ctx context.Context, tgt Target) (*profile.Profile, error) {
	if pr.Machine == nil {
		return nil, fmt.Errorf("watcher: profiler needs a machine model")
	}
	watchers := pr.Watchers
	if watchers == nil {
		watchers = Default()
	}
	rate := clampRate(pr.Rate)
	clk := pr.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	startDelay := pr.StartupDelay
	if startDelay <= 0 {
		startDelay = DefaultStartupDelay
	}

	cfg := &Config{Machine: pr.Machine, Rate: rate}
	for _, w := range watchers {
		if err := w.Pre(cfg); err != nil {
			return nil, fmt.Errorf("watcher %s: pre: %w", w.Name(), err)
		}
	}

	p := profile.New(tgt.Command(), tgt.Tags())
	p.Machine = pr.Machine.Name
	p.App = tgt.AppName()
	p.SampleRate = rate
	p.CreatedAt = clk.Now()

	start := clk.Now()
	period := time.Duration(float64(time.Second) / rate)

	type series struct {
		samples []profile.Sample
		last    perfcount.Counters
		err     error
	}
	results := make([]series, len(watchers))

	var wg sync.WaitGroup
	for i, w := range watchers {
		wg.Add(1)
		go func(i int, w Watcher) {
			defer wg.Done()
			var prev perfcount.Counters
			// Stagger start-up so watcher timestamps drift apart,
			// as on the real system.
			clk.Sleep(startDelay + time.Duration(i)*period/time.Duration(len(watchers)*4+1))
			for {
				select {
				case <-ctx.Done():
					results[i].err = ctx.Err()
					return
				default:
				}
				at := clk.Now().Sub(start)
				if tgt.Exited(at) {
					return
				}
				c, ok := tgt.Counters(at)
				if ok {
					d := c.Sub(prev)
					prev = c
					values := make(map[string]float64, 8)
					w.Collect(d, c, values)
					results[i].samples = append(results[i].samples,
						profile.Sample{T: at, Values: values})
					results[i].last = c
				}
				clk.Sleep(period)
			}
		}(i, w)
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("watcher %s: %w", watchers[i].Name(), r.err)
		}
	}

	// Merge the unsynchronized series by timestamp.
	var all []profile.Sample
	for _, r := range results {
		all = append(all, r.samples...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].T < all[j].T })
	for _, s := range all {
		if err := p.Append(s); err != nil {
			return nil, err
		}
	}

	elapsed := clk.Now().Sub(start)
	tx, ok := tgt.Tx(elapsed)
	if !ok {
		tx = elapsed
	}

	// End-of-run correction from exit totals, against each watcher's own
	// last snapshot.
	if final, ok := tgt.Final(elapsed); ok {
		values := make(map[string]float64, 16)
		for i, w := range watchers {
			if !w.CorrectsAtExit() {
				continue
			}
			d := final.Sub(results[i].last)
			w.Collect(d, final, values)
		}
		if len(values) > 0 {
			at := tx
			if n := len(p.Samples); n > 0 && p.Samples[n-1].T > at {
				at = p.Samples[n-1].T
			}
			if err := p.Append(profile.Sample{T: at, Values: values}); err != nil {
				return nil, err
			}
		}
	}

	for _, w := range watchers {
		if err := w.Post(); err != nil {
			return nil, fmt.Errorf("watcher %s: post: %w", w.Name(), err)
		}
	}
	p.Finalize(tx)
	final, hasFinal := tgt.Final(clk.Now().Sub(start))
	for _, w := range watchers {
		if err := w.Finalize(p, final, hasFinal); err != nil {
			return nil, fmt.Errorf("watcher %s: finalize: %w", w.Name(), err)
		}
	}
	return p, nil
}
