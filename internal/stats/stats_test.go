package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanBasic(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSumMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Sum(xs); got != 11 {
		t.Errorf("Sum = %v, want 11", got)
	}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("Min/Max of empty slice should be 0")
	}
}

func TestVarianceKnown(t *testing.T) {
	// Sample variance of {2,4,4,4,5,5,7,9} with n-1 denominator = 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEq(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if Variance(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Error("Variance of <2 samples should be 0")
	}
}

func TestStdErrShrinksWithN(t *testing.T) {
	a := []float64{1, 3}
	b := []float64{1, 3, 1, 3, 1, 3, 1, 3}
	if StdErr(b) >= StdErr(a) {
		t.Errorf("StdErr should shrink with more data: %v vs %v", StdErr(b), StdErr(a))
	}
}

func TestTCrit99Table(t *testing.T) {
	if got := TCrit99(1); !almostEq(got, 63.657, 1e-9) {
		t.Errorf("TCrit99(1) = %v", got)
	}
	if got := TCrit99(10); !almostEq(got, 3.169, 1e-9) {
		t.Errorf("TCrit99(10) = %v", got)
	}
	if got := TCrit99(1000); !almostEq(got, 2.576, 1e-9) {
		t.Errorf("TCrit99(1000) = %v", got)
	}
	if !math.IsInf(TCrit99(0), 1) {
		t.Error("TCrit99(0) should be +Inf")
	}
}

func TestCI99ContainsMeanOfTightData(t *testing.T) {
	xs := []float64{10, 10.1, 9.9, 10.05, 9.95}
	ci := CI99(xs)
	if ci <= 0 {
		t.Fatalf("CI99 = %v, want > 0", ci)
	}
	if ci > 1 {
		t.Fatalf("CI99 = %v implausibly wide for tight data", ci)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3}
	s := Summarize(xs)
	if s.N != 3 || !almostEq(s.Mean, 2, 1e-12) || !almostEq(s.Min, 1, 0) || !almostEq(s.Max, 3, 0) {
		t.Errorf("Summarize = %+v", s)
	}
	if !almostEq(s.StdDev, 1, 1e-12) {
		t.Errorf("StdDev = %v, want 1", s.StdDev)
	}
}

func TestRelErrAndPctDiff(t *testing.T) {
	if got := RelErr(110, 100); !almostEq(got, 0.1, 1e-12) {
		t.Errorf("RelErr = %v", got)
	}
	if got := RelErr(0, 0); got != 0 {
		t.Errorf("RelErr(0,0) = %v", got)
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr(1,0) should be +Inf")
	}
	if got := PctDiff(60, 100); !almostEq(got, -40, 1e-12) {
		t.Errorf("PctDiff = %v, want -40", got)
	}
	if !math.IsInf(PctDiff(1, 0), 1) {
		t.Error("PctDiff(x,0) should be +Inf")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	} {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile err: %v", err)
		}
		if !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("Percentile of empty slice should error")
	}
	if got, _ := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("Percentile singleton = %v", got)
	}
	// Out-of-range p clamps.
	if got, _ := Percentile(xs, -5); got != 1 {
		t.Errorf("Percentile(-5) = %v, want 1", got)
	}
	if got, _ := Percentile(xs, 200); got != 5 {
		t.Errorf("Percentile(200) = %v, want 5", got)
	}
}

func TestLinearFitExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b, r2, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(a, 1, 1e-9) || !almostEq(b, 2, 1e-9) || !almostEq(r2, 1, 1e-9) {
		t.Errorf("fit = (%v, %v, %v)", a, b, r2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("degenerate x should error")
	}
}

func TestLinearFitConstantY(t *testing.T) {
	a, b, r2, err := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(a, 4, 1e-9) || !almostEq(b, 0, 1e-9) || r2 != 1 {
		t.Errorf("constant-y fit = (%v,%v,%v)", a, b, r2)
	}
}

// Property: mean is bounded by min and max.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is translation invariant and scales quadratically.
func TestVarianceScaleProperty(t *testing.T) {
	f := func(raw []int8, shift int8, scaleRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		scale := 1 + float64(scaleRaw%7)
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v)*scale + float64(shift)
		}
		v1 := Variance(xs) * scale * scale
		v2 := Variance(ys)
		return almostEq(v1, v2, 1e-6*(1+math.Abs(v1)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CI99 half-width is non-negative and zero only for n < 2 or
// identical samples.
func TestCI99NonNegativeProperty(t *testing.T) {
	f := func(raw []int8) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		return CI99(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed should give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(9)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Intn(5) did not cover all values: %v", seen)
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(123)
	const n = 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(10, 2)
	}
	if m := Mean(xs); !almostEq(m, 10, 0.1) {
		t.Errorf("Normal mean = %v, want ~10", m)
	}
	if s := StdDev(xs); !almostEq(s, 2, 0.1) {
		t.Errorf("Normal stddev = %v, want ~2", s)
	}
}

func TestJitter(t *testing.T) {
	r := NewRNG(5)
	if got := r.Jitter(100, 0); got != 100 {
		t.Errorf("Jitter with relStd 0 should be identity, got %v", got)
	}
	for i := 0; i < 1000; i++ {
		if v := r.Jitter(100, 0.05); v <= 0 {
			t.Fatalf("Jitter produced non-positive value %v", v)
		}
	}
}
