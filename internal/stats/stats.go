// Package stats provides the descriptive statistics used across the
// repository: means, standard deviations, confidence intervals (the paper
// reports 99 % CIs in experiment E.3), percentiles, and simple aggregation
// over repeated profiling runs.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reducers that require at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It returns 0 for fewer than two observations.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean of xs.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// tTable99 holds two-sided 99 % critical values of Student's t distribution
// for small degrees of freedom; beyond the table the normal approximation
// (z = 2.576) is used. Values from standard t tables.
var tTable99 = []float64{
	// df: 1      2      3      4      5      6      7      8      9     10
	63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
	// df: 11     12     13     14     15     16     17     18     19    20
	3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
	// df: 21     22     23     24     25     26     27     28     29    30
	2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
}

// TCrit99 returns the two-sided 99 % critical value of Student's t for the
// given degrees of freedom (df >= 1). For df > 30 the normal approximation
// is used.
func TCrit99(df int) float64 {
	if df < 1 {
		return math.Inf(1)
	}
	if df <= len(tTable99) {
		return tTable99[df-1]
	}
	return 2.576
}

// CI99 returns the half-width of the two-sided 99 % confidence interval of
// the mean of xs (mean ± CI99). It returns 0 for fewer than two samples.
func CI99(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return TCrit99(n-1) * StdErr(xs)
}

// Summary condenses repeated observations of one quantity, mirroring the
// "basic statistics analysis" Synapse performs across profiles of the same
// command/tag combination (paper §4).
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	StdErr float64 `json:"stderr"`
	CI99   float64 `json:"ci99"` // half-width of the 99 % CI
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		StdErr: StdErr(xs),
		CI99:   CI99(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}

// RelErr returns the relative error |got-want| / |want| as a fraction.
// It returns +Inf when want == 0 and got != 0, and 0 when both are 0.
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// PctDiff returns the signed percentage difference of got relative to want:
// 100 * (got - want) / want. The paper's figures 5 and 7 plot this as
// "Tx diff (%)".
func PctDiff(got, want float64) float64 {
	if want == 0 {
		return math.Inf(1)
	}
	return 100 * (got - want) / want
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns an error for empty input.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return SortedPercentile(sorted, p), nil
}

// SortedPercentile is Percentile for input already sorted ascending: no
// copy, no sort, no error path. Callers that need several percentiles of
// one sample sort once and query many times — the report fold's summarize
// used to copy and re-sort the sample per percentile. An empty slice
// returns 0. The interpolation is bit-identical to Percentile's.
func SortedPercentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LinearFit fits y = a + b*x by least squares and returns the intercept a,
// slope b and the coefficient of determination r². It returns an error when
// fewer than two points are given or when all x are identical.
func LinearFit(x, y []float64) (a, b, r2 float64, err error) {
	if len(x) != len(y) {
		return 0, 0, 0, errors.New("stats: x and y length mismatch")
	}
	n := len(x)
	if n < 2 {
		return 0, 0, 0, ErrEmpty
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, errors.New("stats: degenerate x (all equal)")
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		// y is constant; the fit is exact.
		return a, b, 1, nil
	}
	r2 = (sxy * sxy) / (sxx * syy)
	return a, b, r2, nil
}
