package stats

import "math"

// RNG is a small deterministic pseudo-random number generator (SplitMix64)
// used to inject reproducible measurement noise into simulated runs. The
// paper's figures carry error bars from system background noise; simulated
// experiments reproduce that with seeded noise so results are stable across
// hosts and runs.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Fill writes the next len(dst) values of the sequence into dst — exactly
// the values len(dst) successive Uint64 calls would return, produced in one
// tight loop over a local state word instead of a method call per draw.
func (r *RNG) Fill(dst []uint64) {
	state := r.state
	for i := range dst {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		dst[i] = z ^ (z >> 31)
	}
	r.state = state
}

// batchSize is how many draws a Batch pre-computes per refill. SplitMix64
// state is one word, so pre-drawing never risks divergence: the k-th value
// served by a Batch is bit-identical to the k-th Uint64 call on the bare
// generator.
const batchSize = 64

// Batch serves draws from an underlying RNG in pre-computed blocks: one
// Fill per batchSize draws replaces a method call (and its state
// read-modify-write) per draw on hot paths that consume randomness per
// event — scenario arrival jitter, random placement. The served sequence is
// exactly the underlying generator's sequence, in order, so swapping a bare
// RNG for a Batch never perturbs a seeded stream; the buffer lives inline
// in the struct, so a Batch costs one allocation for its whole lifetime.
//
// A Batch pre-advances the underlying generator's state; after wrapping,
// draw only through the Batch.
type Batch struct {
	rng *RNG
	buf [batchSize]uint64
	i   int // next unserved index in buf; batchSize forces a refill
}

// NewBatch returns a batching reader over rng.
func NewBatch(rng *RNG) *Batch { return &Batch{rng: rng, i: batchSize} }

// Uint64 returns the next pseudo-random 64-bit value.
func (b *Batch) Uint64() uint64 {
	if b.i == batchSize {
		b.rng.Fill(b.buf[:])
		b.i = 0
	}
	v := b.buf[b.i]
	b.i++
	return v
}

// Float64 returns a uniform value in [0, 1), bit-identical to RNG.Float64.
func (b *Batch) Float64() float64 {
	return float64(b.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n), bit-identical to RNG.Intn. It
// panics if n <= 0.
func (b *Batch) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(b.Uint64() % uint64(n))
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Jitter returns x perturbed by multiplicative Gaussian noise with relative
// standard deviation relStd, clamped to stay positive.
func (r *RNG) Jitter(x, relStd float64) float64 {
	if relStd <= 0 {
		return x
	}
	v := x * (1 + r.Normal(0, relStd))
	if v <= 0 {
		v = x * 1e-3
	}
	return v
}
