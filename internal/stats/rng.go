package stats

import "math"

// RNG is a small deterministic pseudo-random number generator (SplitMix64)
// used to inject reproducible measurement noise into simulated runs. The
// paper's figures carry error bars from system background noise; simulated
// experiments reproduce that with seeded noise so results are stable across
// hosts and runs.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Jitter returns x perturbed by multiplicative Gaussian noise with relative
// standard deviation relStd, clamped to stay positive.
func (r *RNG) Jitter(x, relStd float64) float64 {
	if relStd <= 0 {
		return x
	}
	v := x * (1 + r.Normal(0, relStd))
	if v <= 0 {
		v = x * 1e-3
	}
	return v
}
