//go:build unix

package core

import (
	"os/exec"
	"syscall"
	"time"
)

// childUsage is the subset of rusage the profiler corrects with.
type childUsage struct {
	cpu      time.Duration // user + system CPU time
	maxRSS   int64         // peak resident set size in bytes
	blockIn  int64         // bytes actually read from the block layer
	blockOut int64         // bytes actually written to the block layer
}

// rusageOf extracts the child's rusage after Wait has completed — the
// paper's "POSIX rusage call to obtain runtime process information".
func rusageOf(cmd *exec.Cmd) (childUsage, bool) {
	state := cmd.ProcessState
	if state == nil {
		return childUsage{}, false
	}
	ru, ok := state.SysUsage().(*syscall.Rusage)
	if !ok || ru == nil {
		return childUsage{}, false
	}
	cpu := time.Duration(ru.Utime.Sec+ru.Stime.Sec)*time.Second +
		time.Duration(ru.Utime.Usec+ru.Stime.Usec)*time.Microsecond
	// ru_maxrss is kilobytes on Linux; ru_inblock/oublock are 512B blocks.
	return childUsage{
		cpu:      cpu,
		maxRSS:   ru.Maxrss << 10,
		blockIn:  ru.Inblock * 512,
		blockOut: ru.Oublock * 512,
	}, true
}
