// Package core orchestrates Synapse's two halves — profiling and emulation —
// into the `profile once, emulate anywhere` operations of the paper's §4:
//
//	radical.synapse.profile(command, tags) -> core.Profile
//	radical.synapse.emulate(command, tags) -> core.Emulate
//
// Commands are either synthetic workloads executed on simulated machines
// (every experiment in this repository) or real argv vectors spawned on the
// host and watched through /proc (internal/procfs). Profiles land in a
// store (internal/store) keyed by command and tags; emulation looks them up
// there, aggregates repeated runs, and replays them through the atoms.
package core

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"synapse/internal/app"
	"synapse/internal/atoms"
	"synapse/internal/clock"
	"synapse/internal/emulator"
	"synapse/internal/machine"
	"synapse/internal/proc"
	"synapse/internal/profile"
	"synapse/internal/store"
	"synapse/internal/watcher"
)

// ProfileOptions configure a profiling run.
type ProfileOptions struct {
	// Machine names the catalog machine to simulate on, or "host" for a
	// real run. Empty selects "host" for real commands and an error for
	// simulated workloads.
	Machine string
	// SampleRate in Hz (clamped to 10 Hz).
	SampleRate float64
	// Adaptive enables the adaptive sampling-rate schedule (paper §6):
	// 10 Hz for the first AdaptiveWindow, then SampleRate.
	Adaptive       bool
	AdaptiveWindow time.Duration
	// Store, when set, receives the finished profile (truncating to the
	// backend's document limit if necessary).
	Store store.Store
	// Seed/Jitter/Load/CounterNoise configure the simulated execution.
	Seed         uint64
	Jitter       bool
	Load         float64
	CounterNoise float64
	// Real selects host execution of an argv command.
	Real bool
	// Concurrent runs one goroutine per watcher with unsynchronized
	// timestamps — the paper's threading model (§4.1). Only meaningful
	// with a real clock (real runs, or simulated targets replayed in
	// real time).
	Concurrent bool
	// Clock overrides the pacing clock (tests); defaults to AutoSim for
	// simulated runs and the wall clock for real ones.
	Clock clock.Clock
}

// EmulateOptions configure an emulation run.
type EmulateOptions struct {
	// Machine names the emulation resource (catalog machine or "host").
	Machine string
	// Kernel selects the compute kernel ("asm" when empty).
	Kernel string
	// Workers/Mode inject OpenMP- or MPI-style parallelism (paper E.4).
	Workers int
	Mode    machine.Mode
	// ReadBlock/WriteBlock/Filesystem tune I/O emulation (paper E.5).
	ReadBlock, WriteBlock int64
	Filesystem            string
	// UseProfiledBlocks derives I/O granularity from the profile.
	UseProfiledBlocks bool
	// Load/DiskLoad/MemLoad add artificial background CPU, storage and
	// memory load (paper §4.3's stress capability).
	Load     float64
	DiskLoad float64
	MemLoad  float64
	// Real consumes actual host resources instead of modeling them.
	Real       bool
	ScratchDir string
	// StartupDelay / SampleOverhead override the emulator's modeled
	// driver costs (negative disables).
	StartupDelay   time.Duration
	SampleOverhead time.Duration
	// Disable switches (paper E.3/E.4 disable memory and storage).
	DisableStorage, DisableMemory, DisableNetwork bool
	// TraceLevel tunes how much per-sample detail the report keeps
	// (emulator.TraceFull default; experiments that only read aggregates
	// use emulator.TraceNone to keep the replay loop allocation-free).
	TraceLevel emulator.TraceLevel
	// Clock override (tests).
	Clock clock.Clock
}

// WorkloadFromCommand maps a command line plus tags to a synthetic workload
// model, the inverse of the workload's own Command/Tags identity. It
// recognises the applications shipped with this repository.
func WorkloadFromCommand(command string, tags map[string]string) (app.Workload, error) {
	atoi := func(key string, def int) int {
		if v, ok := tags[key]; ok {
			if n, err := strconv.Atoi(v); err == nil {
				return n
			}
		}
		return def
	}
	atof := func(key string, def float64) float64 {
		if v, ok := tags[key]; ok {
			if f, err := strconv.ParseFloat(v, 64); err == nil {
				return f
			}
		}
		return def
	}
	switch command {
	case "mdsim", "gromacs", "gmx mdrun":
		return app.MDSim(atoi("steps", 10000)), nil
	case "synapse-iobench":
		return app.IOBench(int64(atoi("bytes", 1<<28)), int64(atoi("block", 1<<20)), tags["fs"]), nil
	case "sleep":
		return app.Sleeper(atof("seconds", 1)), nil
	case "synapse-memramp":
		return app.MemRamp(int64(atoi("bytes", 1<<28))), nil
	case "synapse-netecho":
		return app.NetEcho(int64(atoi("bytes", 1<<20)), int64(atoi("block", 64<<10))), nil
	default:
		return app.Workload{}, fmt.Errorf("core: no workload model for command %q", command)
	}
}

// ProfileWorkload profiles a synthetic workload on a simulated machine.
func ProfileWorkload(ctx context.Context, w app.Workload, opts ProfileOptions) (*profile.Profile, error) {
	if opts.Machine == "" {
		return nil, fmt.Errorf("core: simulated profiling needs a machine name")
	}
	m, err := machine.Get(opts.Machine)
	if err != nil {
		return nil, err
	}
	sp, err := proc.Execute(w, m, proc.Options{
		Seed:         opts.Seed,
		Jitter:       opts.Jitter,
		Load:         opts.Load,
		CounterNoise: opts.CounterNoise,
	})
	if err != nil {
		return nil, err
	}
	clk := opts.Clock
	if clk == nil {
		clk = clock.NewAutoSim(time.Unix(0, 0).UTC())
	}
	pr := &watcher.Profiler{
		Rate:    opts.SampleRate,
		Clock:   clk,
		Machine: m,
	}
	if opts.Adaptive {
		win := opts.AdaptiveWindow
		if win <= 0 {
			win = 3 * time.Second
		}
		pr.Schedule = watcher.AdaptiveSchedule(watcher.MaxRate, opts.SampleRate, win)
	}
	p, err := pr.Run(ctx, watcher.NewSimTarget(sp))
	if err != nil {
		return nil, err
	}
	return p, storeProfile(opts.Store, p)
}

// ProfileCommandString profiles the named synthetic command (resolved via
// WorkloadFromCommand) on a simulated machine, or — with opts.Real — spawns
// the argv on the host and profiles it through /proc.
func ProfileCommandString(ctx context.Context, command string, tags map[string]string, opts ProfileOptions) (*profile.Profile, error) {
	if opts.Real {
		return ProfileExec(ctx, command, tags, opts)
	}
	w, err := WorkloadFromCommand(command, tags)
	if err != nil {
		return nil, err
	}
	// Tags given by the caller extend/override the workload's defaults.
	for k, v := range tags {
		w.Tags[k] = v
	}
	return ProfileWorkload(ctx, w, opts)
}

// storeProfile writes p to s if a store is configured, degrading to
// truncation under the Mongo-like backend's document limit.
func storeProfile(s store.Store, p *profile.Profile) error {
	if s == nil {
		return nil
	}
	if tr, ok := s.(store.Truncator); ok {
		_, err := tr.PutTruncated(p)
		return err
	}
	return s.Put(p)
}

// Lookup fetches all stored profiles for command/tags and returns the set.
// ctx bounds the query when the store is remote (see store.FindCtx).
func Lookup(ctx context.Context, s store.Store, command string, tags map[string]string) (profile.Set, error) {
	if s == nil {
		return nil, fmt.Errorf("core: no store configured")
	}
	return store.FindCtx(ctx, s, command, tags)
}

// NewEmulation resolves the machine name and option mapping once and returns
// a reusable emulator run handle for the profile: the scenario engine holds
// one per workload and replays it for every workload instance.
func NewEmulation(p *profile.Profile, opts EmulateOptions) (*emulator.Run, error) {
	eopts, err := emulatorOptions(opts)
	if err != nil {
		return nil, err
	}
	return emulator.NewRun(p, eopts)
}

// NewEmulationOn is NewEmulation for an already-resolved machine model —
// cluster nodes and inline JSON machine descriptions that are not (and must
// not be) registered in the global catalog. opts.Machine is ignored.
func NewEmulationOn(p *profile.Profile, m *machine.Model, opts EmulateOptions) (*emulator.Run, error) {
	if m == nil {
		return nil, fmt.Errorf("core: emulation needs a machine model")
	}
	return emulator.NewRun(p, emulatorOptionsOn(m, opts))
}

// emulatorOptions maps the flat EmulateOptions onto the emulator's Options,
// resolving the machine name against the catalog.
func emulatorOptions(opts EmulateOptions) (emulator.Options, error) {
	if opts.Machine == "" {
		return emulator.Options{}, fmt.Errorf("core: emulation needs a machine name")
	}
	m, err := machine.Get(opts.Machine)
	if err != nil {
		return emulator.Options{}, err
	}
	return emulatorOptionsOn(m, opts), nil
}

// emulatorOptionsOn is the machine-resolved core of emulatorOptions.
func emulatorOptionsOn(m *machine.Model, opts EmulateOptions) emulator.Options {
	return emulator.Options{
		Atoms: atoms.Config{
			Machine:           m,
			Kernel:            opts.Kernel,
			ReadBlock:         opts.ReadBlock,
			WriteBlock:        opts.WriteBlock,
			UseProfiledBlocks: opts.UseProfiledBlocks,
			Filesystem:        opts.Filesystem,
			Workers:           opts.Workers,
			Mode:              opts.Mode,
			Load:              opts.Load,
			DiskLoad:          opts.DiskLoad,
			MemLoad:           opts.MemLoad,
		},
		Real:           opts.Real,
		ScratchDir:     opts.ScratchDir,
		Clock:          opts.Clock,
		StartupDelay:   opts.StartupDelay,
		SampleOverhead: opts.SampleOverhead,
		DisableStorage: opts.DisableStorage,
		DisableMemory:  opts.DisableMemory,
		DisableNetwork: opts.DisableNetwork,
		TraceLevel:     opts.TraceLevel,
	}
}

// EmulateProfile replays one profile with the given options.
func EmulateProfile(ctx context.Context, p *profile.Profile, opts EmulateOptions) (*emulator.Report, error) {
	eopts, err := emulatorOptions(opts)
	if err != nil {
		return nil, err
	}
	return emulator.Emulate(ctx, p, eopts)
}

// Emulate looks up the stored profiles for command/tags, replays the most
// recent one (statistics across the set inform only the report), mirroring
// the paper's emulate(command, tags) call.
func Emulate(ctx context.Context, s store.Store, command string, tags map[string]string, opts EmulateOptions) (*emulator.Report, error) {
	set, err := Lookup(ctx, s, command, tags)
	if err != nil {
		return nil, err
	}
	p := set[len(set)-1]
	return EmulateProfile(ctx, p, opts)
}
