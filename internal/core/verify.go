package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"synapse/internal/clock"
	"synapse/internal/emulator"
	"synapse/internal/machine"
	"synapse/internal/profile"
	"synapse/internal/watcher"
)

// VerifyRow compares one consumption metric between the application profile
// and a re-profiled emulation of it.
type VerifyRow struct {
	Metric   string
	App      float64
	Emulated float64
	// Ratio is Emulated/App (1.0 = perfect agreement; compute metrics
	// carry the kernel calibration bias by design).
	Ratio float64
}

// VerifyEmulation reproduces the paper's E.2 sanity check as a reusable
// operation: it profiles the emulation run itself (through the same watcher
// stack, against the report's reconstructed counters) and compares the
// observed consumption against the source profile, metric by metric.
func VerifyEmulation(ctx context.Context, p *profile.Profile, rep *emulator.Report, machineName string, rate float64) ([]VerifyRow, error) {
	m, err := machine.Get(machineName)
	if err != nil {
		return nil, err
	}
	pr := &watcher.Profiler{
		Rate:    rate,
		Clock:   clock.NewAutoSim(time.Unix(0, 0).UTC()),
		Machine: m,
	}
	reprofiled, err := pr.Run(ctx, emulator.NewReportTarget(rep, p.Command, p.Tags))
	if err != nil {
		return nil, fmt.Errorf("core: re-profiling emulation: %w", err)
	}

	metrics := []string{
		profile.MetricCPUCycles,
		profile.MetricCPUInstructions,
		profile.MetricCPUFLOPs,
		profile.MetricIOReadBytes,
		profile.MetricIOWriteBytes,
		profile.MetricMemAlloc,
		profile.MetricMemFree,
		profile.MetricNetReadBytes,
		profile.MetricNetWriteBytes,
	}
	var rows []VerifyRow
	for _, metric := range metrics {
		app := p.Total(metric)
		emu := reprofiled.Total(metric)
		if app == 0 && emu == 0 {
			continue
		}
		row := VerifyRow{Metric: metric, App: app, Emulated: emu}
		if app != 0 {
			row.Ratio = emu / app
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Metric < rows[j].Metric })
	rows = append(rows, VerifyRow{
		Metric:   "runtime (s)",
		App:      p.Duration.Seconds(),
		Emulated: rep.Tx.Seconds(),
		Ratio:    rep.Tx.Seconds() / p.Duration.Seconds(),
	})
	return rows, nil
}
