//go:build !unix

package core

import (
	"os/exec"
	"time"
)

// childUsage is the subset of rusage the profiler corrects with.
type childUsage struct {
	cpu    time.Duration
	maxRSS int64
}

// rusageOf is unavailable off unix; the profiler falls back to the last
// /proc-style snapshot (itself unavailable off Linux, so real-mode profiling
// degrades to Tx-only observation — matching the paper's caveat that
// profiling needs system-level support).
func rusageOf(*exec.Cmd) (childUsage, bool) { return childUsage{}, false }
