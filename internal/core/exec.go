package core

import (
	"context"
	"fmt"
	"os/exec"
	"strings"
	"sync"
	"time"

	"synapse/internal/clock"
	"synapse/internal/machine"
	"synapse/internal/perfcount"
	"synapse/internal/procfs"
	"synapse/internal/profile"
	"synapse/internal/watcher"
)

// RealTarget adapts a spawned host process to the watcher.Target interface,
// reading counters from /proc and exit totals from the child's rusage — the
// real-mode substitution for perf-stat documented in DESIGN.md §2.
type RealTarget struct {
	command string
	tags    map[string]string
	cmd     *exec.Cmd
	clockHz float64
	ipc     float64

	mu       sync.Mutex
	last     perfcount.Counters
	exited   bool
	exitedAt time.Duration
	start    time.Time
	waitErr  error
}

// StartCommand spawns the argv under profiling observation. command is a
// shell-style string split on whitespace (callers needing richer quoting
// should pass argv through exec directly).
func StartCommand(command string, tags map[string]string, m *machine.Model) (*RealTarget, error) {
	argv := strings.Fields(command)
	if len(argv) == 0 {
		return nil, fmt.Errorf("core: empty command")
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	ap, err := m.App(machine.AppDefault)
	ipc := 1.5
	if err == nil {
		ipc = ap.IPC
	}
	t := &RealTarget{
		command: command,
		tags:    tags,
		cmd:     cmd,
		clockHz: m.ClockHz,
		ipc:     ipc,
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("core: start %q: %w", command, err)
	}
	t.start = time.Now()
	go func() {
		err := cmd.Wait()
		t.mu.Lock()
		defer t.mu.Unlock()
		t.exited = true
		t.exitedAt = time.Since(t.start)
		t.waitErr = err
	}()
	return t, nil
}

// Command implements watcher.Target.
func (t *RealTarget) Command() string { return t.command }

// Tags implements watcher.Target.
func (t *RealTarget) Tags() map[string]string { return t.tags }

// AppName implements watcher.Target (real processes carry no model name).
func (t *RealTarget) AppName() string { return "" }

// Counters implements watcher.Target.
func (t *RealTarget) Counters(time.Duration) (perfcount.Counters, bool) {
	t.mu.Lock()
	if t.exited {
		t.mu.Unlock()
		return perfcount.Counters{}, false
	}
	pid := t.cmd.Process.Pid
	t.mu.Unlock()

	c, err := procfs.Snapshot(pid, t.clockHz, t.ipc)
	if err != nil {
		return perfcount.Counters{}, false
	}
	t.mu.Lock()
	t.last = c
	t.mu.Unlock()
	return c, true
}

// Exited implements watcher.Target.
func (t *RealTarget) Exited(time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.exited
}

// Final implements watcher.Target: the last /proc snapshot refined with the
// child's rusage (exact CPU time and peak RSS at exit).
func (t *RealTarget) Final(time.Duration) (perfcount.Counters, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.exited {
		return perfcount.Counters{}, false
	}
	c := t.last
	if ru, ok := rusageOf(t.cmd); ok {
		if ru.cpu > 0 {
			c.Cycles = ru.cpu.Seconds() * t.clockHz
			c.Instructions = c.Cycles * t.ipc
		}
		if ru.maxRSS > 0 {
			c.PeakRSS = float64(ru.maxRSS)
		}
		// Block-layer totals catch I/O that sampling missed entirely
		// (short-lived children); syscall-level counters from /proc
		// are preferred when they saw more.
		if float64(ru.blockIn) > c.ReadBytes {
			c.ReadBytes = float64(ru.blockIn)
		}
		if float64(ru.blockOut) > c.WriteBytes {
			c.WriteBytes = float64(ru.blockOut)
		}
	}
	if c.Processes == 0 {
		c.Processes = 1
	}
	return c, true
}

// Tx implements watcher.Target.
func (t *RealTarget) Tx(time.Duration) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.exited {
		return 0, false
	}
	return t.exitedAt, true
}

// WaitErr reports the child's exit error (nil for status 0), valid after
// exit.
func (t *RealTarget) WaitErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.waitErr
}

var _ watcher.Target = (*RealTarget)(nil)

// ProfileExec spawns command on the host and profiles it with the real
// clock. The profile's machine is the host model.
func ProfileExec(ctx context.Context, command string, tags map[string]string, opts ProfileOptions) (*profile.Profile, error) {
	m := machine.Host()
	tgt, err := StartCommand(command, tags, m)
	if err != nil {
		return nil, err
	}
	clk := opts.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	pr := &watcher.Profiler{
		Rate:    opts.SampleRate,
		Clock:   clk,
		Machine: m,
	}
	if opts.Adaptive {
		win := opts.AdaptiveWindow
		if win <= 0 {
			win = 3 * time.Second
		}
		pr.Schedule = watcher.AdaptiveSchedule(watcher.MaxRate, opts.SampleRate, win)
	}
	run := pr.Run
	if opts.Concurrent {
		run = pr.RunConcurrent
	}
	p, err := run(ctx, tgt)
	if err != nil {
		// Don't leak the child on profiling errors.
		if proc := tgt.cmd.Process; proc != nil && !tgt.Exited(0) {
			_ = proc.Kill()
		}
		return nil, err
	}
	return p, storeProfile(opts.Store, p)
}
