package core

import (
	"context"
	"math"
	"runtime"
	"testing"
	"time"

	"synapse/internal/machine"
	"synapse/internal/profile"
	"synapse/internal/store"
)

func TestWorkloadFromCommand(t *testing.T) {
	w, err := WorkloadFromCommand("mdsim", map[string]string{"steps": "5000"})
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalComputeUnits() != 5000+6000 {
		t.Errorf("units = %v", w.TotalComputeUnits())
	}
	// Gromacs aliases resolve to the same model.
	if _, err := WorkloadFromCommand("gromacs", nil); err != nil {
		t.Error(err)
	}
	if _, err := WorkloadFromCommand("gmx mdrun", nil); err != nil {
		t.Error(err)
	}
	if _, err := WorkloadFromCommand("sleep", map[string]string{"seconds": "2.5"}); err != nil {
		t.Error(err)
	}
	if _, err := WorkloadFromCommand("synapse-iobench", map[string]string{"bytes": "1024", "block": "64", "fs": "local"}); err != nil {
		t.Error(err)
	}
	if _, err := WorkloadFromCommand("unknown-app", nil); err == nil {
		t.Error("unknown command should fail")
	}
	// Malformed tags fall back to defaults.
	w, err = WorkloadFromCommand("mdsim", map[string]string{"steps": "abc"})
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalComputeUnits() != 10000+6000 {
		t.Errorf("fallback units = %v", w.TotalComputeUnits())
	}
}

func TestProfileThenEmulateRoundTrip(t *testing.T) {
	ctx := context.Background()
	s := store.NewMem()
	tags := map[string]string{"steps": "200000"}

	p, err := ProfileCommandString(ctx, "mdsim", tags, ProfileOptions{
		Machine:    machine.Thinkie,
		SampleRate: 2,
		Store:      s,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Total(profile.MetricCPUCycles) <= 0 {
		t.Fatal("profile has no cycles")
	}

	rep, err := Emulate(ctx, s, "mdsim", tags, EmulateOptions{Machine: machine.Thinkie})
	if err != nil {
		t.Fatal(err)
	}
	diff := (rep.Tx.Seconds() - p.Duration.Seconds()) / p.Duration.Seconds()
	if diff < 0 || diff > 0.25 {
		t.Errorf("same-machine emulation diff = %.1f%%", diff*100)
	}
}

func TestEmulateMissingProfile(t *testing.T) {
	s := store.NewMem()
	if _, err := Emulate(context.Background(), s, "mdsim", nil, EmulateOptions{Machine: machine.Thinkie}); err == nil {
		t.Error("emulating an unprofiled command should fail")
	}
	if _, err := Emulate(context.Background(), nil, "mdsim", nil, EmulateOptions{Machine: machine.Thinkie}); err == nil {
		t.Error("emulating without a store should fail")
	}
}

func TestProfileRequiresMachine(t *testing.T) {
	_, err := ProfileCommandString(context.Background(), "mdsim", nil, ProfileOptions{})
	if err == nil {
		t.Error("simulated profile without machine should fail")
	}
}

func TestProfileUnknownMachine(t *testing.T) {
	_, err := ProfileCommandString(context.Background(), "mdsim", nil, ProfileOptions{Machine: "cray-1"})
	if err == nil {
		t.Error("unknown machine should fail")
	}
}

func TestEmulateProfileUnknownMachine(t *testing.T) {
	p := profile.New("x", nil)
	p.Finalize(0)
	if _, err := EmulateProfile(context.Background(), p, EmulateOptions{Machine: "cray-1"}); err == nil {
		t.Error("unknown machine should fail")
	}
	if _, err := EmulateProfile(context.Background(), p, EmulateOptions{}); err == nil {
		t.Error("missing machine should fail")
	}
}

func TestAdaptiveProfiling(t *testing.T) {
	p, err := ProfileCommandString(context.Background(), "mdsim", map[string]string{"steps": "400000"},
		ProfileOptions{Machine: machine.Thinkie, SampleRate: 0.5, Adaptive: true, AdaptiveWindow: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Samples in the first 2 seconds should be dense (10 Hz).
	dense := 0
	for _, s := range p.Samples {
		if s.T <= 2*time.Second {
			dense++
		}
	}
	if dense < 15 {
		t.Errorf("adaptive window produced only %d samples", dense)
	}
}

func TestStoreTruncationPath(t *testing.T) {
	// A tiny document limit forces PutTruncated to drop samples without
	// failing the profiling run.
	s := store.NewMemWithLimit(8 << 10)
	p, err := ProfileCommandString(context.Background(), "mdsim", map[string]string{"steps": "1000000"},
		ProfileOptions{Machine: machine.Thinkie, SampleRate: 10, Store: s})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Find("mdsim", p.Tags)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Dropped == 0 {
		t.Error("expected dropped samples under the tiny document limit")
	}
}

func TestEmulateStoredProfileUsesLatest(t *testing.T) {
	ctx := context.Background()
	s := store.NewMem()
	tags := map[string]string{"steps": "50000"}
	for seed := uint64(0); seed < 3; seed++ {
		_, err := ProfileCommandString(ctx, "mdsim", tags, ProfileOptions{
			Machine: machine.Thinkie, SampleRate: 1, Store: s, Seed: seed, Jitter: true,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	set, err := Lookup(ctx, s, "mdsim", tags)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Fatalf("stored %d profiles", len(set))
	}
	if _, err := Emulate(ctx, s, "mdsim", tags, EmulateOptions{Machine: machine.Archer}); err != nil {
		t.Fatal(err)
	}
}

// Real process profiling on Linux: profile a short sleep through /proc.
func TestProfileExecSleep(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("real profiling requires linux /proc")
	}
	ctx := context.Background()
	p, err := ProfileCommandString(ctx, "sleep 0.4", nil, ProfileOptions{
		Real:       true,
		SampleRate: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := p.Duration.Seconds()
	if tx < 0.3 || tx > 2.0 {
		t.Errorf("profiled sleep Tx = %.2fs, want ≈0.4s", tx)
	}
	// The paper's sleep(3) limitation: Tx is large, consumption near zero.
	cpuSec := p.Total(profile.MetricCPUCycles) / machine.Host().ClockHz
	if cpuSec > 0.2 {
		t.Errorf("sleep consumed %.2fs of CPU, want ≈0", cpuSec)
	}
	if p.Machine != machine.HostName {
		t.Errorf("machine = %q", p.Machine)
	}
}

func TestProfileExecBadCommand(t *testing.T) {
	_, err := ProfileCommandString(context.Background(), "/nonexistent/binary-xyz", nil,
		ProfileOptions{Real: true, SampleRate: 10})
	if err == nil {
		t.Error("nonexistent binary should fail to start")
	}
	_, err = ProfileCommandString(context.Background(), "   ", nil,
		ProfileOptions{Real: true, SampleRate: 10})
	if err == nil {
		t.Error("empty command should fail")
	}
}

// The sleep limitation end-to-end (paper §4.5): emulating a profiled sleep
// finishes almost immediately because no resource consumption was observed.
func TestSleeperEmulationLimitation(t *testing.T) {
	ctx := context.Background()
	s := store.NewMem()
	_, err := ProfileCommandString(ctx, "sleep", map[string]string{"seconds": "30"},
		ProfileOptions{Machine: machine.Thinkie, SampleRate: 1, Store: s})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Emulate(ctx, s, "sleep", map[string]string{"seconds": "30"},
		EmulateOptions{Machine: machine.Thinkie})
	if err != nil {
		t.Fatal(err)
	}
	// App Tx = 30s; emulation should be dominated by the 1s startup.
	if rep.Tx.Seconds() > 3 {
		t.Errorf("emulated sleep Tx = %v, want ≈startup only", rep.Tx)
	}
}

func TestKernelAndIOKnobsPropagate(t *testing.T) {
	ctx := context.Background()
	s := store.NewMem()
	tags := map[string]string{"steps": "100000"}
	if _, err := ProfileCommandString(ctx, "mdsim", tags, ProfileOptions{
		Machine: machine.Comet, SampleRate: 1, Store: s,
	}); err != nil {
		t.Fatal(err)
	}
	repC, err := Emulate(ctx, s, "mdsim", tags, EmulateOptions{
		Machine: machine.Comet, Kernel: machine.KernelC, DisableStorage: true, DisableMemory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	repA, err := Emulate(ctx, s, "mdsim", tags, EmulateOptions{
		Machine: machine.Comet, Kernel: machine.KernelASM, DisableStorage: true, DisableMemory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if repC.Kernel != machine.KernelC || repA.Kernel != machine.KernelASM {
		t.Error("kernel names not propagated")
	}
	if !(repC.IPC() < repA.IPC()) {
		t.Errorf("C kernel IPC (%v) should be below ASM (%v)", repC.IPC(), repA.IPC())
	}
	if math.IsNaN(repC.IPC()) {
		t.Error("IPC is NaN")
	}
}

// The paper's threading model end to end: profile a real process with one
// goroutine per watcher.
func TestProfileExecConcurrentWatchers(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("real profiling requires linux /proc")
	}
	p, err := ProfileCommandString(context.Background(), "sleep 0.3", nil, ProfileOptions{
		Real:       true,
		Concurrent: true,
		SampleRate: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration.Seconds() < 0.2 || p.Duration.Seconds() > 2 {
		t.Errorf("concurrent profiled Tx = %v", p.Duration)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// The E.2 sanity check as an operation: re-profiling an emulation agrees
// with the source profile on I/O exactly and on compute up to the bias.
func TestVerifyEmulation(t *testing.T) {
	ctx := context.Background()
	s := store.NewMem()
	tags := map[string]string{"steps": "300000"}
	p, err := ProfileCommandString(ctx, "mdsim", tags, ProfileOptions{
		Machine: machine.Comet, SampleRate: 2, Store: s,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Emulate(ctx, s, "mdsim", tags, EmulateOptions{
		Machine: machine.Comet, Kernel: machine.KernelC,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := VerifyEmulation(ctx, p, rep, machine.Comet, 2)
	if err != nil {
		t.Fatal(err)
	}
	byMetric := map[string]VerifyRow{}
	for _, r := range rows {
		byMetric[r.Metric] = r
	}
	kp, _ := machine.MustGet(machine.Comet).Kernel(machine.KernelC)
	if r, ok := byMetric[profile.MetricCPUCycles]; !ok || math.Abs(r.Ratio-kp.CalibBias) > 0.02 {
		t.Errorf("cycles ratio = %+v, want ≈%v", r, kp.CalibBias)
	}
	if r, ok := byMetric[profile.MetricIOWriteBytes]; !ok || math.Abs(r.Ratio-1) > 0.01 {
		t.Errorf("write ratio = %+v, want ≈1", r)
	}
	if r, ok := byMetric["runtime (s)"]; !ok || r.Ratio <= 0 {
		t.Errorf("runtime row missing: %+v", r)
	}
}
