package scenario

import (
	"encoding/csv"
	"fmt"
	"io"
	"time"

	"synapse/internal/cluster"
)

// maxTimelineBuckets bounds the time-series size: a bucket width that
// slices the run into more than this many buckets is a spec mistake, not
// a workable resolution, and would otherwise balloon the report. A var
// (not a const) only so the boundary test can lower it instead of
// materializing a million real buckets.
var maxTimelineBuckets int64 = 1 << 20

// tlChunk is the bucket-arena chunk capacity (see at).
const tlChunk = 256

// Timeline is the report's bucketed time-series view: what the end-of-run
// aggregates average away — when throughput dipped, how deep queues got,
// which nodes sat idle after a failure.
type Timeline struct {
	// Bucket is the fixed bucket width; buckets cover [0, makespan].
	Bucket  Duration         `json:"bucket"`
	Buckets []TimelineBucket `json:"buckets"`
}

// TimelineBucket is one fixed-width slice of the run.
type TimelineBucket struct {
	// Start is the bucket's inclusive lower edge.
	Start Duration `json:"start"`
	// Arrivals, Completions and Kills count events inside the bucket;
	// QueuePeak is the deepest the global queue got within it.
	Arrivals    int `json:"arrivals,omitempty"`
	Completions int `json:"completions,omitempty"`
	Kills       int `json:"kills,omitempty"`
	QueuePeak   int `json:"queue_peak,omitempty"`
	// Workloads holds the per-workload series (spec order, workloads
	// with nothing to say omitted).
	Workloads []TimelineSeries `json:"workloads,omitempty"`
	// Nodes holds per-node occupancy (pool order, idle nodes omitted).
	Nodes []TimelineNode `json:"nodes,omitempty"`
}

// TimelineSeries is one workload's slice of a bucket.
type TimelineSeries struct {
	Workload    string `json:"workload"`
	Completions int    `json:"completions,omitempty"`
	QueuePeak   int    `json:"queue_peak,omitempty"`
}

// TimelineNode is one node's slice of a bucket.
type TimelineNode struct {
	Node string `json:"node"`
	// Occupancy is the node's mean core occupancy over the bucket:
	// core-time in use divided by bucket × cores.
	Occupancy float64 `json:"occupancy"`
}

// tlBucket is the accumulating form of one bucket.
type tlBucket struct {
	arrivals, completions, kills int
	queuePeak                    int
	wCompletions                 []int
	wQueuePeak                   []int
	nodeBusy                     []float64 // core-seconds, indexed by node
}

// timelineSink builds the time-series by observing the scheduler's event
// stream. It runs on the kernel's timeline, so every update is
// deterministic; buckets materialize lazily as virtual time advances.
type timelineSink struct {
	bucket time.Duration
	wls    int
	cl     *cluster.Cluster

	buckets []*tlBucket
	// arena backs the buckets in chunks: pointers into a chunk stay valid
	// because a full chunk is retired, never regrown, so materializing a
	// bucket is bookkeeping, not a per-bucket heap box.
	arena    []tlBucket
	depth    int   // current global queue depth
	wdepth   []int // current per-workload queue depth
	nodeUsed []int // cores currently in use per node
	nodeLast []time.Duration
	// lastT is the latest workload-relevant event time (arrive, start,
	// complete, kill, drop — not bare node-state changes): a kill or
	// strand after the final completion must still make the timeline.
	lastT    time.Duration
	overflow bool
}

func newTimelineSink(bucket time.Duration, workloads int, cl *cluster.Cluster) *timelineSink {
	s := &timelineSink{bucket: bucket, wls: workloads, cl: cl}
	if cl != nil {
		s.nodeUsed = make([]int, cl.Len())
		s.nodeLast = make([]time.Duration, cl.Len())
	}
	return s
}

// bucketIndex returns the index of the bucket covering t, in int64: a
// long horizon over a tiny bucket yields quotients past 2^31, which an
// int conversion would truncate on 32-bit platforms before the
// maxTimelineBuckets guard could reject them.
func (s *timelineSink) bucketIndex(t time.Duration) int64 {
	if s.bucket <= 0 {
		return 0
	}
	return int64(t) / int64(s.bucket)
}

// at returns the bucket covering t, materializing it (and carrying queue
// depths across any skipped buckets) on first touch.
func (s *timelineSink) at(t time.Duration) *tlBucket {
	idx := s.bucketIndex(t)
	if idx >= maxTimelineBuckets {
		s.overflow = true
		idx = maxTimelineBuckets - 1
	}
	for int64(len(s.buckets)) <= idx {
		if len(s.arena) == cap(s.arena) {
			s.arena = make([]tlBucket, 0, tlChunk)
		}
		// One slab serves both per-workload series.
		ww := make([]int, 2*s.wls)
		s.arena = append(s.arena, tlBucket{
			queuePeak:    s.depth,
			wCompletions: ww[:s.wls:s.wls],
			wQueuePeak:   ww[s.wls:],
		})
		b := &s.arena[len(s.arena)-1]
		copy(b.wQueuePeak, s.wdepth)
		s.buckets = append(s.buckets, b)
	}
	return s.buckets[idx]
}

// integrate charges node's in-use cores for the span since its last
// change, splitting the core-time across the buckets the span covers.
func (s *timelineSink) integrate(node int, t time.Duration) {
	for node >= len(s.nodeUsed) {
		s.nodeUsed = append(s.nodeUsed, 0)
		s.nodeLast = append(s.nodeLast, t)
	}
	used := s.nodeUsed[node]
	last := s.nodeLast[node]
	if t <= last {
		// Out-of-order observation: the span up to last is already
		// charged. Rewinding nodeLast here would re-charge [t, last] on
		// the next forward span — double-counted busy core-seconds.
		return
	}
	s.nodeLast[node] = t
	if used == 0 {
		return
	}
	for last < t {
		b := s.at(last)
		end := time.Duration(s.bucketIndex(last)+1) * s.bucket
		// end <= last catches the (idx+1)*bucket multiply wrapping
		// negative near the top of the int64 range.
		if s.overflow || end > t || end <= last {
			end = t
		}
		if len(b.nodeBusy) < len(s.nodeUsed) {
			b.nodeBusy = append(b.nodeBusy, make([]float64, len(s.nodeUsed)-len(b.nodeBusy))...)
		}
		b.nodeBusy[node] += float64(used) * (end - last).Seconds()
		last = end
	}
}

// queueDelta moves the global and per-workload queue depth at t.
func (s *timelineSink) queueDelta(t time.Duration, w, d int) {
	if s.wdepth == nil {
		s.wdepth = make([]int, s.wls)
	}
	b := s.at(t)
	s.depth += d
	s.wdepth[w] += d
	if s.depth > b.queuePeak {
		b.queuePeak = s.depth
	}
	if s.wdepth[w] > b.wQueuePeak[w] {
		b.wQueuePeak[w] = s.wdepth[w]
	}
}

// Observe implements sim.MetricsSink. Events arrive as pointers to the
// scheduler's scratch values; everything is copied out immediately.
func (s *timelineSink) Observe(t time.Duration, ev any) {
	if _, isNode := ev.(*evNode); !isNode && t > s.lastT {
		s.lastT = t
	}
	switch e := ev.(type) {
	case *evArrived:
		s.at(t).arrivals++
		s.queueDelta(t, e.w, 1)
	case *evStarted:
		s.queueDelta(t, e.w, -1)
		if e.node >= 0 {
			s.integrate(e.node, t)
			s.nodeUsed[e.node] += e.cores
		}
	case *evCompleted:
		b := s.at(t)
		b.completions++
		b.wCompletions[e.w]++
		if e.node >= 0 {
			s.integrate(e.node, t)
			s.nodeUsed[e.node] -= e.cores
		}
	case *evKilled:
		s.at(t).kills++
		s.queueDelta(t, e.w, 1) // back in the queue
		s.integrate(e.node, t)
		s.nodeUsed[e.node] -= e.cores
	case *evDropped:
		if e.queued {
			s.queueDelta(t, e.w, -e.n)
		}
	case *evNode:
		// Make sure the node is tracked from its join time on.
		s.integrate(e.node, t)
	}
}

// finalize flattens the accumulated buckets into the report form,
// clipping at the last workload-relevant instant (a kill or strand can
// land after the final completion) and integrating the occupancy tails.
func (s *timelineSink) finalize(makespan time.Duration, wls []*workloadState) (*Timeline, error) {
	if s.overflow {
		return nil, fmt.Errorf("scenario: timeline: bucket %v slices the run into more than %d buckets", s.bucket, maxTimelineBuckets)
	}
	end := makespan
	if s.lastT > end {
		end = s.lastT
	}
	for node := range s.nodeUsed {
		s.integrate(node, end)
	}
	n := int(s.bucketIndex(end)) + 1
	if end == 0 {
		n = 1
	}
	if n > len(s.buckets) {
		n = len(s.buckets)
	}
	tl := &Timeline{Bucket: Duration(s.bucket)}
	for i := 0; i < n; i++ {
		b := s.buckets[i]
		out := TimelineBucket{
			Start:       Duration(time.Duration(i) * s.bucket),
			Arrivals:    b.arrivals,
			Completions: b.completions,
			Kills:       b.kills,
			QueuePeak:   b.queuePeak,
		}
		for w := range wls {
			if b.wCompletions[w] == 0 && b.wQueuePeak[w] == 0 {
				continue
			}
			out.Workloads = append(out.Workloads, TimelineSeries{
				Workload:    wls[w].spec.Name,
				Completions: b.wCompletions[w],
				QueuePeak:   b.wQueuePeak[w],
			})
		}
		if s.cl != nil {
			denom := s.bucket.Seconds()
			for node := 0; node < len(b.nodeBusy) && node < s.cl.Len(); node++ {
				busy := b.nodeBusy[node]
				if busy == 0 {
					continue
				}
				info := s.cl.Info(node)
				occ := 0.0
				if cap := denom * float64(info.Cores); cap > 0 {
					occ = busy / cap
				}
				out.Nodes = append(out.Nodes, TimelineNode{Node: info.Name, Occupancy: occ})
			}
		}
		tl.Buckets = append(tl.Buckets, out)
	}
	return tl, nil
}

// TimelineCSV writes the report's timeline as CSV: one row per bucket,
// one column per global counter, per-workload series and per-node
// occupancy — fixed columns derived from the report, zero-filled, so the
// file loads straight into a dataframe or gnuplot. encoding/csv does the
// quoting, so workload and node names are free to contain anything.
func (r *Report) TimelineCSV(w io.Writer) error {
	if r.Timeline == nil {
		return fmt.Errorf("scenario: report has no timeline (enable it in the spec or with -timeline)")
	}
	cw := csv.NewWriter(w)
	header := []string{"start_s", "arrivals", "completions", "kills", "queue_peak"}
	for _, wr := range r.Workloads {
		header = append(header, "done:"+wr.Name, "queue:"+wr.Name)
	}
	var nodes []string
	if r.Cluster != nil {
		for _, n := range r.Cluster.Nodes {
			nodes = append(nodes, n.Name)
			header = append(header, "occ:"+n.Name)
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, b := range r.Timeline.Buckets {
		row := make([]string, 0, len(header))
		row = append(row,
			fmt.Sprintf("%g", b.Start.D().Seconds()),
			fmt.Sprintf("%d", b.Arrivals),
			fmt.Sprintf("%d", b.Completions),
			fmt.Sprintf("%d", b.Kills),
			fmt.Sprintf("%d", b.QueuePeak),
		)
		series := make(map[string]TimelineSeries, len(b.Workloads))
		for _, ws := range b.Workloads {
			series[ws.Workload] = ws
		}
		for _, wr := range r.Workloads {
			ws := series[wr.Name]
			row = append(row, fmt.Sprintf("%d", ws.Completions), fmt.Sprintf("%d", ws.QueuePeak))
		}
		occ := make(map[string]float64, len(b.Nodes))
		for _, n := range b.Nodes {
			occ[n.Node] = n.Occupancy
		}
		for _, name := range nodes {
			row = append(row, fmt.Sprintf("%g", occ[name]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
