package scenario

import (
	"sort"
	"time"

	"synapse/internal/cluster"
	"synapse/internal/perfcount"
	"synapse/internal/stats"
)

// Report is the aggregate outcome of one scenario run. All times are
// virtual (the emulations' modeled timeline), so reports are comparable
// across hosts; only wall-clock execution speed varies.
type Report struct {
	// Scenario is the spec's name; Seed the seed the run used.
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	// Makespan is when the last admitted instance completed.
	Makespan Duration `json:"makespan"`
	// Emulations counts completed instances across workloads; Dropped
	// counts instances cut by the scenario duration horizon or stranded
	// by a pool that shrank for good; Killed counts kill-and-retry
	// events from node failures (a killed instance still completes — or
	// drops — exactly once, so Emulations+Dropped covers every arrival).
	Emulations int `json:"emulations"`
	Dropped    int `json:"dropped,omitempty"`
	Killed     int `json:"killed,omitempty"`
	// Replays counts the distinct emulations actually executed:
	// instances of one workload with identical options (no load jitter)
	// share a single deterministic replay. With a cluster, "identical"
	// additionally means same node machine and same contention-derived
	// effective load.
	Replays int `json:"replays"`
	// Throughput is completed emulations per virtual second.
	Throughput float64 `json:"throughput_per_s"`
	// Latency summarizes sojourn time (arrival to completion) across all
	// workloads.
	Latency LatencySummary `json:"latency"`
	// Cluster reports placement decisions and per-node utilization when
	// the spec has a cluster block.
	Cluster *ClusterReport `json:"cluster,omitempty"`
	// Workloads reports per-workload detail, in spec order.
	Workloads []WorkloadReport `json:"workloads"`
	// Timeline is the bucketed time-series view, when the spec (or
	// synapse-sim -timeline) asked for one.
	Timeline *Timeline `json:"timeline,omitempty"`
}

// ClusterReport is the placement outcome of a clustered scenario.
type ClusterReport struct {
	// Policy is the placement policy the run used.
	Policy string `json:"policy"`
	// Placements counts successful placement decisions; Rejections
	// counts admission probes that found no feasible node (at most one
	// per workload per scheduling instant) — the cluster-full pressure.
	// Every placement ends in exactly one completion or one kill, so
	// Placements = Report.Emulations + Report.Killed.
	Placements int `json:"placements"`
	Rejections int `json:"rejections,omitempty"`
	// Events counts applied timeline events; Autoscaled counts nodes
	// the autoscale rule created.
	Events     int `json:"events_applied,omitempty"`
	Autoscaled int `json:"autoscaled_nodes,omitempty"`
	// Nodes reports per-node accounting, in pool-join order (spec order,
	// then event- and autoscale-added nodes as they appeared).
	Nodes []NodeReport `json:"nodes"`
}

// NodeReport is one node's slice of the placement outcome.
type NodeReport struct {
	Name    string `json:"name"`
	Machine string `json:"machine"`
	Cores   int    `json:"cores"`
	// State is the node's final lifecycle state, omitted while up.
	State string `json:"state,omitempty"`
	// Placed counts instances placed on this node; PeakCores is the
	// node's maximum simultaneous core occupancy; Killed the instances
	// a node_down cut short here.
	Placed    int `json:"placed"`
	PeakCores int `json:"peak_cores,omitempty"`
	Killed    int `json:"killed,omitempty"`
	// Busy is the node's total core-time (Σ service time × cores over
	// placed instances, partial service from killed ones included);
	// Utilization is Busy over makespan × cores.
	Busy        Duration `json:"busy_core_time"`
	Utilization float64  `json:"utilization"`
}

// WorkloadReport is one workload's slice of the scenario outcome.
type WorkloadReport struct {
	Name string `json:"name"`
	// Machine is the emulation resource instances replayed on; with a
	// cluster block instances replay on the machine of the node they
	// were placed on, and this reads "cluster".
	Machine string `json:"machine"`
	// Emulations counts completed instances; Dropped the ones cut by the
	// horizon (or stranded) before starting; Killed the kill-and-retry
	// events node failures inflicted on this workload.
	Emulations int `json:"emulations"`
	Dropped    int `json:"dropped,omitempty"`
	Killed     int `json:"killed,omitempty"`
	// Throughput is completed instances per virtual second of scenario
	// makespan.
	Throughput float64 `json:"throughput_per_s"`
	// Latency is sojourn time (arrival → completion); Wait the queueing
	// delay before the final placement (arrival → last start); Service
	// the emulation time itself (last start → completion).
	Latency LatencySummary `json:"latency"`
	Wait    LatencySummary `json:"wait"`
	Service LatencySummary `json:"service"`
	// BusyTime breaks down per-atom busy time summed over completed
	// instances, sorted by atom name.
	BusyTime []AtomBusy `json:"busy_time,omitempty"`
	// Consumed aggregates the resources completed instances consumed.
	Consumed perfcount.Counters `json:"consumed"`
}

// AtomBusy is one atom's total busy time within a workload.
type AtomBusy struct {
	Atom string   `json:"atom"`
	Busy Duration `json:"busy"`
}

// LatencySummary condenses a latency distribution.
type LatencySummary struct {
	Mean Duration `json:"mean"`
	P50  Duration `json:"p50"`
	P90  Duration `json:"p90"`
	P99  Duration `json:"p99"`
	Max  Duration `json:"max"`
}

// atomNames are the emulation atoms a report can break busy time down by.
var atomNames = [...]string{"compute", "memory", "network", "storage"}

// reporter is the aggregation sink: it folds the scheduler's event stream
// into the counters the report is built from. Order-sensitive aggregation
// (latency sums, percentiles) happens in assemble, in deterministic
// instance order — the sink only accumulates counts and the makespan,
// which commute.
type reporter struct {
	completed  int
	killed     int
	makespan   time.Duration
	wcompleted []int
	wkilled    []int
}

func newReporter(workloads int) *reporter {
	return &reporter{
		wcompleted: make([]int, workloads),
		wkilled:    make([]int, workloads),
	}
}

// Observe implements sim.MetricsSink. Events arrive as pointers to the
// scheduler's scratch values; everything is copied out immediately.
func (r *reporter) Observe(t time.Duration, ev any) {
	switch e := ev.(type) {
	case *evCompleted:
		r.completed++
		r.wcompleted[e.w]++
		if t > r.makespan {
			r.makespan = t
		}
	case *evKilled:
		r.killed++
		r.wkilled[e.w]++
	}
}

// assemble folds the instance outcomes (condensed to foldRecs) into the
// report, in spec order — every sum runs in deterministic instance order,
// so reports are byte-identical across runs, worker counts, and executors
// (records are keyed by instance, never by who computed them).
func assemble(c *compiled, rp *reporter, recs []*foldRec) *Report {
	makespan := rp.makespan
	rep := &Report{
		Scenario:   c.spec.Name,
		Seed:       c.spec.Seed,
		Makespan:   Duration(makespan),
		Emulations: rp.completed,
		Killed:     rp.killed,
	}
	if secs := makespan.Seconds(); secs > 0 {
		rep.Throughput = float64(rp.completed) / secs
	}
	allSojourn := make([]float64, 0, len(c.insts))
	rep.Workloads = make([]WorkloadReport, 0, len(c.wls))
	// One scratch sample buffer, partitioned per workload: sojourn, wait
	// and service slices carve consecutive windows out of it, so the fold
	// costs three slice headers per workload instead of three growing
	// allocations per workload.
	scratch := make([]float64, 3*len(c.insts))
	for w, ws := range c.wls {
		wr := WorkloadReport{
			Name:    ws.spec.Name,
			Machine: ws.machine,
			Dropped: ws.dropped,
			Killed:  rp.wkilled[w],
		}
		n := len(ws.insts)
		sojourn := scratch[:0:n]
		wait := scratch[n : n : 2*n]
		service := scratch[2*n : 2*n : 3*n]
		// busy is indexed like atomNames; the map an earlier version built
		// here was one allocation (plus hashing) per workload for four
		// fixed keys.
		var busy [len(atomNames)]time.Duration
		for _, id := range ws.insts {
			in := c.insts[id]
			if !in.ran {
				continue
			}
			wr.Emulations++
			sojourn = append(sojourn, float64(in.done-in.arrival))
			wait = append(wait, float64(in.start-in.arrival))
			service = append(service, float64(in.tx))
			rec := recs[id]
			for ai := range atomNames {
				busy[ai] += rec.busy[ai]
			}
			wr.Consumed.Accumulate(&rec.consumed)
		}
		if secs := makespan.Seconds(); secs > 0 {
			wr.Throughput = float64(wr.Emulations) / secs
		}
		// Fold the workload's sojourns into the overall sample before
		// summarize sorts them in place: the overall mean's summation
		// order (instance order) is part of the byte-identity contract.
		allSojourn = append(allSojourn, sojourn...)
		wr.Latency = summarize(sojourn)
		wr.Wait = summarize(wait)
		wr.Service = summarize(service)
		for ai, a := range atomNames {
			if busy[ai] > 0 {
				wr.BusyTime = append(wr.BusyTime, AtomBusy{Atom: a, Busy: Duration(busy[ai])})
			}
		}
		sort.Slice(wr.BusyTime, func(i, j int) bool { return wr.BusyTime[i].Atom < wr.BusyTime[j].Atom })
		rep.Dropped += ws.dropped
		rep.Workloads = append(rep.Workloads, wr)
	}
	rep.Latency = summarize(allSojourn)
	return rep
}

// clusterReport folds the cluster's accounting into the report.
func clusterReport(cl *cluster.Cluster, s *sched, makespan time.Duration) *ClusterReport {
	cr := &ClusterReport{
		Policy:     cl.Policy(),
		Placements: cl.Placements(),
		Rejections: cl.Rejections(),
		Events:     s.eventsApplied,
		Autoscaled: s.autoAdded,
	}
	for i := 0; i < cl.Len(); i++ {
		info := cl.Info(i)
		nr := NodeReport{
			Name:      info.Name,
			Machine:   info.Machine,
			Cores:     info.Cores,
			Placed:    info.Placed,
			PeakCores: info.PeakCores,
			Killed:    info.Killed,
			Busy:      Duration(info.Busy),
		}
		if info.State != cluster.StateUp {
			nr.State = info.State
		}
		if cap := makespan.Seconds() * float64(info.Cores); cap > 0 {
			nr.Utilization = info.Busy.Seconds() / cap
		}
		cr.Nodes = append(cr.Nodes, nr)
	}
	return cr
}

// summarize condenses a duration sample (in float64 nanoseconds) into the
// report's latency summary. It sorts xs in place — one sort serves all
// three percentiles, where stats.Percentile would copy and re-sort the
// sample per percentile — so callers that need the original order must
// fold it out first. Mean and Max read the sample before the sort: the
// mean's float summation order is part of the byte-identity contract.
func summarize(xs []float64) LatencySummary {
	if len(xs) == 0 {
		return LatencySummary{}
	}
	s := LatencySummary{
		Mean: Duration(stats.Mean(xs)),
		Max:  Duration(stats.Max(xs)),
	}
	sort.Float64s(xs)
	s.P50 = Duration(stats.SortedPercentile(xs, 50))
	s.P90 = Duration(stats.SortedPercentile(xs, 90))
	s.P99 = Duration(stats.SortedPercentile(xs, 99))
	return s
}
