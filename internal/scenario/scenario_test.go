package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"synapse/internal/core"
	"synapse/internal/store"
)

// mdTags/sleepTags are the default identity tags of the profiled commands
// (the workload models attach them; the specs must reference the same key).
var (
	mdTags    = map[string]string{"steps": "10000"}
	sleepTags = map[string]string{"seconds": "1"}
)

// seedStore profiles the named commands into a fresh in-memory store.
func seedStore(t testing.TB, cmds ...string) store.Store {
	t.Helper()
	st := store.NewMem()
	for _, cmd := range cmds {
		_, err := core.ProfileCommandString(context.Background(), cmd, nil, core.ProfileOptions{
			Machine:    "thinkie",
			SampleRate: 1,
			Store:      st,
			Seed:       7,
		})
		if err != nil {
			t.Fatalf("profiling %q: %v", cmd, err)
		}
	}
	return st
}

// mixSpec is a two-workload mix: a closed loop and a jittered Poisson
// stream sharing four slots.
func mixSpec() *Spec {
	return &Spec{
		Version:       SpecVersion,
		Name:          "mix",
		Seed:          42,
		MaxConcurrent: 4,
		Workloads: []Workload{
			{
				Name:    "md-closed",
				Profile: ProfileRef{Command: "mdsim", Tags: mdTags},
				Arrival: Arrival{Process: ArrivalClosed, Clients: 2, Iterations: 4},
				Emulation: Emulation{
					Machine: "stampede",
				},
			},
			{
				Name:          "sleep-open",
				Profile:       ProfileRef{Command: "sleep", Tags: sleepTags},
				Arrival:       Arrival{Process: ArrivalPoisson, Rate: 0.05, Count: 8},
				MaxConcurrent: 2,
				Emulation: Emulation{
					Machine:    "comet",
					Load:       0.2,
					LoadJitter: 0.1,
				},
			},
		},
	}
}

func runReport(t *testing.T, spec *Spec, workers int) *Report {
	t.Helper()
	st := seedStore(t, "mdsim", "sleep")
	rep, err := Run(context.Background(), spec, st, RunOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func marshal(t *testing.T, rep *Report) []byte {
	t.Helper()
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSeedDeterminism is the spec's reproducibility contract: the same spec
// and seed produce a byte-identical report, at any worker count.
func TestSeedDeterminism(t *testing.T) {
	a := marshal(t, runReport(t, mixSpec(), 1))
	b := marshal(t, runReport(t, mixSpec(), 1))
	if !bytes.Equal(a, b) {
		t.Fatalf("same spec+seed produced different reports:\n%s\n---\n%s", a, b)
	}
	c := marshal(t, runReport(t, mixSpec(), 8))
	if !bytes.Equal(a, c) {
		t.Fatalf("worker count changed the report:\n%s\n---\n%s", a, c)
	}

	other := mixSpec()
	other.Seed = 43
	d := marshal(t, runReport(t, other, 1))
	if bytes.Equal(a, d) {
		t.Fatal("different seeds produced identical reports (jittered workload should differ)")
	}
}

func TestMixAggregates(t *testing.T) {
	rep := runReport(t, mixSpec(), 0)
	if rep.Scenario != "mix" || rep.Seed != 42 {
		t.Fatalf("report identity = %q/%d", rep.Scenario, rep.Seed)
	}
	if want := 2*4 + 8; rep.Emulations != want {
		t.Fatalf("emulations = %d, want %d", rep.Emulations, want)
	}
	if len(rep.Workloads) != 2 {
		t.Fatalf("workload reports = %d, want 2", len(rep.Workloads))
	}
	md, sl := rep.Workloads[0], rep.Workloads[1]
	if md.Name != "md-closed" || md.Machine != "stampede" || md.Emulations != 8 {
		t.Fatalf("md workload report = %+v", md)
	}
	if sl.Name != "sleep-open" || sl.Machine != "comet" || sl.Emulations != 8 {
		t.Fatalf("sleep workload report = %+v", sl)
	}
	if rep.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	if rep.Throughput <= 0 {
		t.Fatal("zero throughput")
	}
	for _, wr := range rep.Workloads {
		if wr.Latency.P50 <= 0 || wr.Latency.P99 < wr.Latency.P50 || wr.Latency.Max < wr.Latency.P99 {
			t.Fatalf("%s: implausible latency summary %+v", wr.Name, wr.Latency)
		}
		if wr.Service.Mean <= 0 {
			t.Fatalf("%s: no service time", wr.Name)
		}
	}
	// The MD workload burns CPU and writes trajectory frames; the sleeper
	// consumes (almost) nothing — only the former must show a busy-time
	// breakdown and consumed cycles.
	if len(md.BusyTime) == 0 {
		t.Fatalf("md-closed: no busy-time breakdown")
	}
	if md.Consumed.Cycles <= 0 {
		t.Fatalf("md-closed: no consumed cycles")
	}
	// Identical instances share one replay: the jitter-free closed loop
	// contributes 1 distinct emulation, the jittered stream one per
	// instance.
	if want := 1 + 8; rep.Replays != want {
		t.Fatalf("replays = %d, want %d", rep.Replays, want)
	}
}

// TestClosedLoopChains: with no concurrency caps and no jitter, each closed
// client replays back-to-back, so the makespan is iterations × service time
// and nothing ever waits.
func TestClosedLoopChains(t *testing.T) {
	spec := &Spec{
		Version: SpecVersion,
		Name:    "chain",
		Workloads: []Workload{{
			Name:      "md",
			Profile:   ProfileRef{Command: "mdsim", Tags: mdTags},
			Arrival:   Arrival{Process: ArrivalClosed, Clients: 2, Iterations: 3},
			Emulation: Emulation{Machine: "stampede"},
		}},
	}
	rep := runReport(t, spec, 0)
	wr := rep.Workloads[0]
	if wr.Emulations != 6 {
		t.Fatalf("emulations = %d, want 6", wr.Emulations)
	}
	if rep.Replays != 1 {
		t.Fatalf("replays = %d, want 1 (identical instances share one replay)", rep.Replays)
	}
	if wr.Wait.Max != 0 {
		t.Fatalf("uncapped closed loop queued: wait max = %v", wr.Wait.Max)
	}
	// All instances are identical, so service P50 is the service time.
	if want := Duration(3 * wr.Service.P50.D()); rep.Makespan != want {
		t.Fatalf("makespan = %v, want 3×service = %v", rep.Makespan, want)
	}
	if wr.Latency.Max != wr.Service.P50 {
		t.Fatalf("latency max = %v, want service %v", wr.Latency.Max, wr.Service.P50)
	}
}

// TestConcurrencyCapQueues: four simultaneous arrivals through one slot
// serialize; the last one waits three service times.
func TestConcurrencyCapQueues(t *testing.T) {
	spec := &Spec{
		Version:       SpecVersion,
		Name:          "queue",
		MaxConcurrent: 1,
		Workloads: []Workload{{
			Name:      "burst",
			Profile:   ProfileRef{Command: "mdsim", Tags: mdTags},
			Arrival:   Arrival{Process: ArrivalBurst, Burst: 4, Every: Duration(time.Second), Bursts: 1},
			Emulation: Emulation{Machine: "stampede"},
		}},
	}
	rep := runReport(t, spec, 0)
	wr := rep.Workloads[0]
	if wr.Emulations != 4 {
		t.Fatalf("emulations = %d, want 4", wr.Emulations)
	}
	svc := wr.Service.P50.D()
	if want := Duration(3 * svc); wr.Wait.Max != want {
		t.Fatalf("wait max = %v, want 3×service = %v", wr.Wait.Max, want)
	}
	if want := Duration(4 * svc); rep.Makespan != want {
		t.Fatalf("makespan = %v, want 4×service = %v", rep.Makespan, want)
	}
}

// TestHorizonDropsLateArrivals: a 10-instance constant stream cut at 2.5
// virtual seconds only ever admits the arrivals at t=0,1,2.
func TestHorizonDropsLateArrivals(t *testing.T) {
	spec := &Spec{
		Version:  SpecVersion,
		Name:     "horizon",
		Duration: Duration(2500 * time.Millisecond),
		Workloads: []Workload{{
			Name:      "stream",
			Profile:   ProfileRef{Command: "mdsim", Tags: mdTags},
			Arrival:   Arrival{Process: ArrivalConstant, Rate: 1, Count: 10},
			Emulation: Emulation{Machine: "stampede"},
		}},
	}
	rep := runReport(t, spec, 0)
	wr := rep.Workloads[0]
	if wr.Emulations != 3 {
		t.Fatalf("emulations = %d, want 3", wr.Emulations)
	}
	if wr.Dropped != 7 || rep.Dropped != 7 {
		t.Fatalf("dropped = %d/%d, want 7", wr.Dropped, rep.Dropped)
	}
}

// TestHorizonCutsClosedChains: a closed loop against a horizon shorter than
// one service time completes exactly one iteration per client and drops the
// rest of each chain.
func TestHorizonCutsClosedChains(t *testing.T) {
	spec := &Spec{
		Version:  SpecVersion,
		Name:     "cut",
		Duration: Duration(time.Millisecond),
		Workloads: []Workload{{
			Name:      "md",
			Profile:   ProfileRef{Command: "mdsim", Tags: mdTags},
			Arrival:   Arrival{Process: ArrivalClosed, Clients: 2, Iterations: 5},
			Emulation: Emulation{Machine: "stampede"},
		}},
	}
	rep := runReport(t, spec, 0)
	wr := rep.Workloads[0]
	if wr.Emulations != 2 {
		t.Fatalf("emulations = %d, want 2 (one per client)", wr.Emulations)
	}
	if wr.Dropped != 8 {
		t.Fatalf("dropped = %d, want 8", wr.Dropped)
	}
}

func TestMissingProfileFails(t *testing.T) {
	st := store.NewMem()
	spec := validSpec()
	_, err := Run(context.Background(), spec, st, RunOptions{})
	if err == nil || !strings.Contains(err.Error(), `workload "w"`) {
		t.Fatalf("expected resolve error naming the workload, got %v", err)
	}
	if !strings.Contains(err.Error(), "resolve profile") {
		t.Fatalf("expected resolve-profile error, got %v", err)
	}
}

func TestRunNeedsStore(t *testing.T) {
	_, err := Run(context.Background(), validSpec(), nil, RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "no store") {
		t.Fatalf("expected store error, got %v", err)
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	spec := validSpec()
	spec.Version = 3
	_, err := Run(context.Background(), spec, store.NewMem(), RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "unknown spec version") {
		t.Fatalf("expected validation error, got %v", err)
	}
}

// TestCanceledContext: a canceled context aborts the emulation fan-out.
func TestCanceledContext(t *testing.T) {
	st := seedStore(t, "mdsim")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := &Spec{
		Version: SpecVersion,
		Workloads: []Workload{{
			Name:      "md",
			Profile:   ProfileRef{Command: "mdsim", Tags: mdTags},
			Arrival:   Arrival{Process: ArrivalClosed, Clients: 1, Iterations: 4},
			Emulation: Emulation{Machine: "stampede"},
		}},
	}
	if _, err := Run(ctx, spec, st, RunOptions{}); err == nil {
		t.Fatal("expected context error")
	}
}
